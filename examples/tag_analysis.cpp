// Latent-concept analysis of a Delicious-shaped 4-mode bookmarking tensor
// (time x user x resource x tag, paper Table I). After a rank-(4,4,4,4)
// Tucker decomposition, each factor column groups indices that co-occur:
// print the strongest users/resources/tags per latent concept and check
// that concepts separate the planted communities.
//
//   ./tag_analysis
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/hooi.hpp"
#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"
#include "util/random.hpp"

namespace {

// Build a bookmarking tensor with planted communities: users, resources and
// tags are split into `kCommunities` groups; most interactions stay within
// a group.
constexpr int kCommunities = 4;

ht::tensor::CooTensor community_tensor(std::uint64_t seed) {
  using ht::tensor::index_t;
  const ht::tensor::Shape shape = {8, 100, 200, 80};  // t x u x r x g
  ht::tensor::CooTensor x(shape);
  ht::Rng rng(seed);
  const ht::tensor::nnz_t target = 60000;
  std::vector<index_t> idx(4);
  for (ht::tensor::nnz_t e = 0; e < target; ++e) {
    const int community = static_cast<int>(rng.below(kCommunities));
    // 90% of traffic stays inside the community's slice of each mode.
    auto draw = [&](index_t dim) {
      const index_t band = dim / kCommunities;
      if (rng.uniform() < 0.95) {
        return static_cast<index_t>(community * band + rng.below(band));
      }
      return static_cast<index_t>(rng.below(dim));
    };
    idx[0] = static_cast<index_t>(rng.below(shape[0]));
    idx[1] = draw(shape[1]);
    idx[2] = draw(shape[2]);
    idx[3] = draw(shape[3]);
    x.push_back(idx, 1.0 + 0.2 * rng.normal());
  }
  x.sum_duplicates();
  return x;
}

// Community of an index under the planted banding.
int community_of(ht::tensor::index_t i, ht::tensor::index_t dim) {
  return std::min<int>(kCommunities - 1, i / (dim / kCommunities));
}

}  // namespace

int main() {
  using namespace ht;

  const tensor::CooTensor x = community_tensor(21);
  std::printf("bookmarking tensor: %s\n", x.summary().c_str());

  core::HooiOptions options;
  options.ranks = {5, 5, 5, 5};  // paper setting for 4-mode tensors
  options.max_iterations = 20;
  options.fit_tolerance = 1e-6;
  const core::HooiResult result = core::hooi(x, options);
  std::printf("fit %.4f after %d sweeps\n", result.final_fit(),
              result.iterations);

  // Show the strongest tags per latent concept (note: factor columns are an
  // arbitrary rotation of the latent subspace, so one column need not equal
  // one community).
  const la::Matrix& tags = result.decomposition.factors[3];
  for (std::size_t concept_id = 0; concept_id < 4; ++concept_id) {
    std::vector<tensor::index_t> order(tags.rows());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](tensor::index_t a, tensor::index_t b) {
                        return std::abs(tags(a, concept_id)) >
                               std::abs(tags(b, concept_id));
                      });
    std::printf("concept %zu top tags:", concept_id);
    for (int k = 0; k < 5; ++k) {
      std::printf(" #%u(c%d)", order[k],
                  community_of(order[k],
                               static_cast<tensor::index_t>(tags.rows())));
    }
    std::printf("\n");
  }

  // Rotation-invariant community check: tags from the same planted
  // community should have far more similar factor rows (cosine) than tags
  // from different communities. The leading component is excluded — for
  // all-positive data it encodes global popularity and is shared by every
  // tag; community structure lives in the remaining components.
  ht::Rng rng(5);
  auto cosine = [&](tensor::index_t a, tensor::index_t b) {
    double dot = 0, na = 0, nb = 0;
    for (std::size_t j = 1; j < tags.cols(); ++j) {
      dot += tags(a, j) * tags(b, j);
      na += tags(a, j) * tags(a, j);
      nb += tags(b, j) * tags(b, j);
    }
    const double denom = std::sqrt(na * nb);
    return denom > 1e-12 ? dot / denom : 0.0;
  };
  const auto dim = static_cast<tensor::index_t>(tags.rows());
  double same = 0, cross = 0;
  int same_n = 0, cross_n = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const auto a = static_cast<tensor::index_t>(rng.below(dim));
    const auto b = static_cast<tensor::index_t>(rng.below(dim));
    if (a == b) continue;
    if (community_of(a, dim) == community_of(b, dim)) {
      same += cosine(a, b);
      ++same_n;
    } else {
      cross += cosine(a, b);
      ++cross_n;
    }
  }
  same /= same_n;
  cross /= cross_n;
  std::printf("mean factor-row cosine: same community %.3f vs cross %.3f\n",
              same, cross);
  return same > cross + 0.2 ? 0 : 1;
}
