// Command-line Tucker decomposition driver: read a FROSTT-style .tns file,
// run HOOI, print fit diagnostics, optionally export the factor matrices.
//
//   ./tucker_cli INPUT.tns R1,R2,...  [--iters N] [--tol T] [--threads P]
//                [--init random|range]
//                [--ttmc-kernel auto|nnz|fiber|csf|alto]
//                [--structure-budget BYTES]
//                [--fiber-threshold T] [--ttmc-strategy auto|direct|tree]
//                [--trsvd-method lanczos|gram|block|rand|auto]
//                [--trsvd-block B] [--trsvd-oversample P] [--trsvd-power Q]
//                [--export PREFIX] [--sweep] [--save-model FILE.htb]
//   ./tucker_cli INPUT.tns R1,R2,... --completion [--holdout FRAC]
//                [--val FRAC] [--lambda L] [--anneal FACTOR SWEEPS]
//                [--sweeps N] [--cg N] [--seed S] [--threads P]
//                [--save-model FILE.htb]
//   ./tucker_cli --load-model FILE.htb [--copy]
//   ./tucker_cli --inspect-model FILE.htb [--verify]
//   ./tucker_cli --query TARGET "SCORE 3 17 5" ["TOPK 3 10" ...]
//   ./tucker_cli --version
//
// With --sweep, the ranks argument is treated as the *maximum* per mode and
// HOOI is run for a ladder of candidate ranks (reusing one symbolic TTMc),
// reporting the fit of each — the rank-selection workflow from the paper
// (--save-model then stores the sweep's best model).
//
// --load-model restores a saved bundle — mmap'd zero-copy by default,
// heap copies with --copy — and prints its shape, fit, and provenance.
// --inspect-model reads only the header and section table; --verify
// additionally checks every payload checksum.
//
// --query is a tuckerd client: TARGET is a unix socket path (contains '/')
// or host:port; each remaining argument is sent as one protocol line and
// the response is printed. Exits non-zero if any response is an ERR.
//
// --completion switches the solver from HOOI (compression objective: every
// tensor position, zeros included) to masked completion (prediction
// objective: observed entries only). --holdout splits off a seeded test
// fraction whose RMSE/MAE is reported after training and stamped into the
// saved bundle's provenance; --val adds a validation fraction that steers
// early stopping.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/completion.hpp"
#include "core/hooi.hpp"
#include "core/rank_sweep.hpp"
#include "core/split.hpp"
#include "core/tucker_model.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "storage/bundle.hpp"
#include "tensor/io.hpp"
#include "util/table.hpp"
#include "util/version.hpp"

namespace {

std::vector<ht::tensor::index_t> parse_ranks(const std::string& csv) {
  std::vector<ht::tensor::index_t> ranks;
  std::size_t begin = 0;
  while (begin < csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::string item = csv.substr(begin, comma == std::string::npos
                                                   ? std::string::npos
                                                   : comma - begin);
    ranks.push_back(static_cast<ht::tensor::index_t>(std::stoul(item)));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return ranks;
}

void export_factors(const ht::core::TuckerDecomposition& t,
                    const std::string& prefix) {
  for (std::size_t n = 0; n < t.order(); ++n) {
    const std::string path = prefix + ".U" + std::to_string(n + 1) + ".txt";
    std::ofstream out(path);
    const auto& f = t.factors[n];
    for (std::size_t i = 0; i < f.rows(); ++i) {
      for (std::size_t j = 0; j < f.cols(); ++j) {
        out << f(i, j) << (j + 1 == f.cols() ? '\n' : ' ');
      }
    }
    std::printf("wrote %s (%zux%zu)\n", path.c_str(), f.rows(), f.cols());
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: tucker_cli INPUT.tns R1,R2,... [--iters N] [--tol T]"
               " [--threads P] [--init random|range]"
               " [--ttmc-kernel auto|nnz|fiber|csf|alto]"
               " [--structure-budget BYTES] [--fiber-threshold T]"
               " [--ttmc-strategy auto|direct|tree]"
               " [--trsvd-method lanczos|gram|block|rand|auto]"
               " [--trsvd-block B] [--trsvd-oversample P] [--trsvd-power Q]"
               " [--export PREFIX] [--sweep] [--save-model FILE.htb]\n"
               "       tucker_cli INPUT.tns R1,R2,... --completion"
               " [--holdout FRAC] [--val FRAC] [--lambda L]"
               " [--anneal FACTOR SWEEPS] [--sweeps N] [--cg N] [--seed S]"
               " [--threads P] [--save-model FILE.htb]\n"
               "       tucker_cli --load-model FILE.htb [--copy]\n"
               "       tucker_cli --inspect-model FILE.htb [--verify]\n"
               "       tucker_cli --query TARGET LINE [LINE...]\n"
               "       tucker_cli --version\n");
  return 2;
}

int run_query(const std::string& target, int argc, char** argv, int first) {
#if HT_HAVE_SOCKETS
  std::vector<std::string> lines;
  for (int a = first; a < argc; ++a) lines.emplace_back(argv[a]);
  if (lines.empty()) return usage();
  try {
    const auto responses = ht::serve::query_lines(target, lines);
    bool all_ok = true;
    for (const auto& r : responses) {
      std::printf("%s\n", r.c_str());
      all_ok = all_ok && ht::serve::response_ok(r);
    }
    return all_ok ? 0 : 1;
  } catch (const ht::Error& e) {
    std::fprintf(stderr, "query error: %s\n", e.what());
    return 1;
  }
#else
  (void)target; (void)argc; (void)argv; (void)first;
  std::fprintf(stderr, "--query requires POSIX sockets\n");
  return 1;
#endif
}

void print_model(const ht::core::TuckerModel& m, bool mapped) {
  std::string dims, ranks;
  const auto r = m.ranks();
  for (std::size_t n = 0; n < m.dims.size(); ++n) {
    if (n) { dims += "x"; ranks += "x"; }
    dims += std::to_string(m.dims[n]);
    ranks += std::to_string(r[n]);
  }
  std::printf("model: %s -> core %s, fit %.6f, csf %s, alto %s (%s load,"
              " %llu bytes copied)\n",
              dims.c_str(), ranks.c_str(), m.fit,
              m.has_csf() ? "yes" : "no", m.has_alto() ? "yes" : "no",
              mapped ? "mmap" : "heap",
              static_cast<unsigned long long>(ht::storage::CopyStats::bytes()));
  if (m.has_csf()) {
    std::printf("csf structure memory: %zu bytes\n", m.csf->format_bytes());
  }
  if (m.has_alto()) {
    std::printf("alto structure memory: %zu bytes\n", m.alto->format_bytes());
  }
  std::printf("%s", m.provenance_text().c_str());
}

int run_load_model(const std::string& path, bool copy) {
  try {
    ht::storage::CopyStats::reset();
    const auto m = ht::storage::load_bundle(
        path, copy ? ht::storage::LoadMode::kCopy
                   : ht::storage::LoadMode::kMap);
    print_model(m, !copy);
  } catch (const ht::Error& e) {
    std::fprintf(stderr, "error loading %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  return 0;
}

int run_inspect_model(const std::string& path, bool verify) {
  try {
    const auto info = ht::storage::inspect_bundle(path);
    std::printf("%s", ht::storage::describe_bundle(info).c_str());
    // Structure-memory roll-up: payload bytes per index-structure family
    // (the on-disk counterpart of CsfTensor/AltoTensor::format_bytes()).
    std::uint64_t csf_bytes = 0, alto_bytes = 0;
    for (const auto& e : info.sections) {
      const auto kind = static_cast<ht::storage::SectionKind>(e.kind);
      if (kind >= ht::storage::SectionKind::kCsfLevelModes &&
          kind <= ht::storage::SectionKind::kCsfValues) {
        csf_bytes += e.bytes;
      } else if (kind >= ht::storage::SectionKind::kAltoKeysLo &&
                 kind <= ht::storage::SectionKind::kAltoPartMax) {
        alto_bytes += e.bytes;
      }
    }
    if (csf_bytes > 0) {
      std::printf("csf structure memory: %llu bytes\n",
                  static_cast<unsigned long long>(csf_bytes));
    }
    if (alto_bytes > 0) {
      std::printf("alto structure memory: %llu bytes\n",
                  static_cast<unsigned long long>(alto_bytes));
    }
    if (verify) {
      ht::storage::BundleReader reader(path, ht::storage::LoadMode::kMap);
      reader.verify_all();
      std::printf("all %zu payload checksums ok\n", info.sections.size());
    }
  } catch (const ht::Error& e) {
    std::fprintf(stderr, "error inspecting %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  return 0;
}

// Masked-completion mode: deterministic holdout split, tucker_complete on
// the training part, held-out RMSE/MAE report, and (with --save-model) a
// serveable bundle whose provenance records the split alongside the
// completion.* keys the trainer stamps.
int run_completion(const ht::tensor::CooTensor& x,
                   ht::core::CompletionOptions options,
                   double holdout_fraction, double validation_fraction,
                   const std::string& save_model_path) {
  using namespace ht;
  core::SplitOptions split_options;
  split_options.test_fraction = holdout_fraction;
  split_options.validation_fraction = validation_fraction;
  split_options.seed = options.seed;
  const auto split = core::split_tensor(x, split_options);
  std::printf("split (seed %llu): train %llu / validation %llu / test %llu\n",
              static_cast<unsigned long long>(split_options.seed),
              static_cast<unsigned long long>(split.train.nnz()),
              static_cast<unsigned long long>(split.validation.nnz()),
              static_cast<unsigned long long>(split.test.nnz()));

  auto result = core::tucker_complete(
      split.train, split.validation.nnz() ? &split.validation : nullptr,
      options);
  std::printf("completion: %d sweeps (converged=%s, early_stopped=%s),"
              " train RMSE %.6f\n",
              result.sweeps, result.converged ? "yes" : "no",
              result.early_stopped ? "yes" : "no",
              result.final_train_rmse());
  if (result.best_sweep >= 0) {
    std::printf("best validation sweep %d: RMSE %.6f\n", result.best_sweep,
                result.validation_rmse[static_cast<std::size_t>(
                    result.best_sweep)]);
  }
  std::printf("timers: symbolic %.3fs factor %.3fs core %.3fs eval %.3fs\n",
              result.timers.symbolic, result.timers.factor,
              result.timers.core, result.timers.eval);

  std::optional<core::CompletionEval> holdout;
  if (split.test.nnz()) {
    holdout = core::evaluate_model(split.test, result.decomposition);
    std::printf("held-out RMSE %.6f MAE %.6f over %llu entries\n",
                holdout->rmse, holdout->mae,
                static_cast<unsigned long long>(holdout->count));
  }

  if (!save_model_path.empty()) {
    auto model = core::completion_model(split.train, std::move(result),
                                        options);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", holdout_fraction);
    model.provenance.emplace_back("completion.holdout_fraction", buf);
    std::snprintf(buf, sizeof buf, "%.17g", validation_fraction);
    model.provenance.emplace_back("completion.validation_fraction", buf);
    model.provenance.emplace_back("completion.split_seed",
                                  std::to_string(split_options.seed));
    if (holdout) {
      std::snprintf(buf, sizeof buf, "%.17g", holdout->rmse);
      model.provenance.emplace_back("completion.holdout_rmse", buf);
      std::snprintf(buf, sizeof buf, "%.17g", holdout->mae);
      model.provenance.emplace_back("completion.holdout_mae", buf);
    }
    ht::storage::save_bundle(model, save_model_path);
    std::printf("saved completion model to %s\n", save_model_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Model-file and informational modes take no tensor/ranks positionals.
  if (argc >= 2 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", ht::version_line().c_str());
    std::printf("compiler: %s\nflags: %s (%s)\n", ht::kCompiler,
                ht::kCompileFlags, ht::kBuildType);
    return 0;
  }
  if (argc >= 3 && std::strcmp(argv[1], "--load-model") == 0) {
    return run_load_model(argv[2],
                          argc >= 4 && std::strcmp(argv[3], "--copy") == 0);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--inspect-model") == 0) {
    return run_inspect_model(
        argv[2], argc >= 4 && std::strcmp(argv[3], "--verify") == 0);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--query") == 0) {
    return run_query(argv[2], argc, argv, 3);
  }
  if (argc < 3) return usage();

  const std::string input = argv[1];
  const auto max_ranks = parse_ranks(argv[2]);

  ht::core::HooiOptions options;
  options.max_iterations = 20;
  options.fit_tolerance = 1e-5;
  std::string export_prefix;
  std::string save_model_path;
  bool sweep = false;
  bool completion = false;
  double holdout_fraction = 0.1;
  double validation_fraction = 0.0;
  ht::core::CompletionOptions completion_options;

  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      if (a + 1 >= argc) { usage(); std::exit(2); }
      return argv[++a];
    };
    if (arg == "--iters") {
      options.max_iterations = std::atoi(next());
    } else if (arg == "--tol") {
      options.fit_tolerance = std::atof(next());
    } else if (arg == "--threads") {
      options.num_threads = std::atoi(next());
    } else if (arg == "--init") {
      const std::string v = next();
      options.init = v == "range" ? ht::core::HooiInit::kRandomizedRange
                                  : ht::core::HooiInit::kRandom;
    } else if (arg == "--ttmc-kernel") {
      const std::string v = next();
      if (v == "auto") {
        options.ttmc_kernel = ht::core::TtmcKernel::kAuto;
      } else if (v == "nnz") {
        options.ttmc_kernel = ht::core::TtmcKernel::kPerNnz;
      } else if (v == "fiber") {
        options.ttmc_kernel = ht::core::TtmcKernel::kFiberFactored;
      } else if (v == "csf") {
        options.ttmc_kernel = ht::core::TtmcKernel::kCsf;
      } else if (v == "alto") {
        options.ttmc_kernel = ht::core::TtmcKernel::kAlto;
      } else {
        return usage();
      }
    } else if (arg == "--structure-budget") {
      options.ttmc_structure_budget = std::atof(next());
      if (options.ttmc_structure_budget < 0) return usage();
    } else if (arg == "--fiber-threshold") {
      options.ttmc_fiber_threshold = std::atof(next());
    } else if (arg == "--ttmc-strategy") {
      const std::string v = next();
      if (v == "auto") {
        options.ttmc_strategy = ht::core::TtmcStrategy::kAuto;
      } else if (v == "direct") {
        options.ttmc_strategy = ht::core::TtmcStrategy::kDirect;
      } else if (v == "tree") {
        options.ttmc_strategy = ht::core::TtmcStrategy::kTree;
      } else {
        return usage();
      }
    } else if (arg == "--trsvd-method") {
      const auto method = ht::core::parse_trsvd_method(next());
      if (!method) return usage();
      options.trsvd_method = *method;
    } else if (arg == "--trsvd-block") {
      const int v = std::atoi(next());
      if (v < 0) return usage();  // 0 = automatic block size
      options.trsvd.block_size = static_cast<std::size_t>(v);
    } else if (arg == "--trsvd-oversample") {
      const int v = std::atoi(next());
      if (v < 0) return usage();
      options.trsvd.oversample = static_cast<std::size_t>(v);
    } else if (arg == "--trsvd-power") {
      const int v = std::atoi(next());
      if (v < 0) return usage();
      options.trsvd.power_iterations = static_cast<std::size_t>(v);
    } else if (arg == "--export") {
      export_prefix = next();
    } else if (arg == "--save-model") {
      save_model_path = next();
    } else if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--completion") {
      completion = true;
    } else if (arg == "--holdout") {
      holdout_fraction = std::atof(next());
    } else if (arg == "--val") {
      validation_fraction = std::atof(next());
    } else if (arg == "--lambda") {
      completion_options.lambda = std::atof(next());
    } else if (arg == "--anneal") {
      completion_options.lambda_anneal_factor = std::atof(next());
      completion_options.lambda_anneal_sweeps = std::atoi(next());
    } else if (arg == "--sweeps") {
      completion_options.max_sweeps = std::atoi(next());
    } else if (arg == "--cg") {
      completion_options.core_cg_iterations = std::atoi(next());
    } else if (arg == "--seed") {
      completion_options.seed =
          static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else {
      return usage();
    }
  }

  ht::tensor::CooTensor x;
  try {
    x = ht::tensor::read_tns_file(input);
    x.sum_duplicates();
  } catch (const ht::Error& e) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  std::printf("loaded %s: %s\n", input.c_str(), x.summary().c_str());
  if (max_ranks.size() != x.order()) {
    std::fprintf(stderr, "need %zu ranks for a %zu-mode tensor\n", x.order(),
                 x.order());
    return 1;
  }

  try {
    if (completion) {
      completion_options.ranks = max_ranks;
      completion_options.num_threads = options.num_threads;
      return run_completion(x, std::move(completion_options),
                            holdout_fraction, validation_fraction,
                            save_model_path);
    }
    if (sweep) {
      // Ladder of candidates up to the requested maximum, shared symbolic.
      std::vector<std::vector<ht::tensor::index_t>> candidates;
      for (double frac : {0.25, 0.5, 0.75, 1.0}) {
        std::vector<ht::tensor::index_t> r;
        for (auto m : max_ranks) {
          r.push_back(std::max<ht::tensor::index_t>(
              1, static_cast<ht::tensor::index_t>(m * frac)));
        }
        if (candidates.empty() || r != candidates.back()) {
          candidates.push_back(std::move(r));
        }
      }
      const auto sweep_result = ht::core::rank_sweep(x, candidates, options);
      ht::TextTable table({"ranks", "fit", "iters", "seconds"});
      for (const auto& e : sweep_result.entries) {
        std::string rs;
        for (std::size_t n = 0; n < e.ranks.size(); ++n) {
          if (n) rs += ",";
          rs += std::to_string(e.ranks[n]);
        }
        table.add_row({rs, ht::fmt_fixed(e.fit, 5), std::to_string(e.iterations),
                       ht::fmt_time_s(e.seconds)});
      }
      std::printf("%s(symbolic built once: %.3fs)\n",
                  table.to_string().c_str(), sweep_result.symbolic_seconds);
      if (!save_model_path.empty() && sweep_result.best_model) {
        ht::storage::save_bundle(*sweep_result.best_model, save_model_path);
        std::printf("saved best sweep model to %s\n", save_model_path.c_str());
      }
      return 0;
    }

    options.ranks = max_ranks;
    ht::core::HooiResult result;
    std::shared_ptr<const ht::tensor::CsfTensor> csf;
    std::shared_ptr<const ht::tensor::AltoTensor> alto;
    if (save_model_path.empty()) {
      result = ht::core::hooi(x, options);
    } else {
      // Saving a model: run the preprocessing here (the same structures
      // hooi would build internally) so the CSF trees / ALTO arrays can
      // ride along in the bundle instead of being discarded with the
      // solver state.
      const bool with_fibers =
          options.ttmc_kernel == ht::core::TtmcKernel::kAuto ||
          options.ttmc_kernel == ht::core::TtmcKernel::kFiberFactored;
      const auto symbolic = ht::core::SymbolicTtmc::build(x, with_fibers);
      std::optional<ht::core::DimTreePlan> tree;
      if (options.ttmc_strategy != ht::core::TtmcStrategy::kDirect &&
          x.order() >= 2) {
        tree.emplace(ht::core::DimTreePlan::build(x));
      }
      const ht::core::TtmcOptions ttmc_options{
          options.ttmc_schedule, options.ttmc_kernel,
          options.ttmc_fiber_threshold, options.ttmc_strategy,
          options.ttmc_structure_budget};
      if (ht::core::ttmc_wants_csf(symbolic, ttmc_options)) {
        csf = std::make_shared<ht::tensor::CsfTensor>(
            ht::tensor::CsfTensor::build(x));
      }
      if (ht::core::ttmc_wants_alto(symbolic, x.shape(), ttmc_options)) {
        alto = std::make_shared<ht::tensor::AltoTensor>(
            ht::tensor::AltoTensor::build(x));
      }
      result = ht::core::hooi(x, options, symbolic,
                              tree ? &*tree : nullptr, csf.get(), alto.get());
    }
    std::printf("fit %.6f after %d sweeps (converged=%s)\n",
                result.final_fit(), result.iterations,
                result.converged ? "yes" : "no");
    std::printf("timers: symbolic %.3fs ttmc %.3fs trsvd %.3fs core %.3fs\n",
                result.timers.symbolic, result.timers.ttmc,
                result.timers.trsvd, result.timers.core);
    if (!export_prefix.empty()) {
      export_factors(result.decomposition, export_prefix);
    }
    if (!save_model_path.empty()) {
      auto model = ht::core::TuckerModel::from_hooi(x, std::move(result));
      model.csf = std::move(csf);
      model.alto = std::move(alto);
      ht::storage::save_bundle(model, save_model_path);
      std::printf("saved model to %s\n", save_model_path.c_str());
    }
  } catch (const ht::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
