// Command-line Tucker decomposition driver: read a FROSTT-style .tns file,
// run HOOI, print fit diagnostics, optionally export the factor matrices.
//
//   ./tucker_cli INPUT.tns R1,R2,...  [--iters N] [--tol T] [--threads P]
//                [--init random|range] [--ttmc-kernel auto|nnz|fiber|csf]
//                [--fiber-threshold T] [--ttmc-strategy auto|direct|tree]
//                [--trsvd-method lanczos|gram|block|rand|auto]
//                [--trsvd-block B] [--trsvd-oversample P] [--trsvd-power Q]
//                [--export PREFIX] [--sweep]
//
// With --sweep, the ranks argument is treated as the *maximum* per mode and
// HOOI is run for a ladder of candidate ranks (reusing one symbolic TTMc),
// reporting the fit of each — the rank-selection workflow from the paper.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/hooi.hpp"
#include "core/rank_sweep.hpp"
#include "tensor/io.hpp"
#include "util/table.hpp"

namespace {

std::vector<ht::tensor::index_t> parse_ranks(const std::string& csv) {
  std::vector<ht::tensor::index_t> ranks;
  std::size_t begin = 0;
  while (begin < csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::string item = csv.substr(begin, comma == std::string::npos
                                                   ? std::string::npos
                                                   : comma - begin);
    ranks.push_back(static_cast<ht::tensor::index_t>(std::stoul(item)));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return ranks;
}

void export_factors(const ht::core::TuckerDecomposition& t,
                    const std::string& prefix) {
  for (std::size_t n = 0; n < t.order(); ++n) {
    const std::string path = prefix + ".U" + std::to_string(n + 1) + ".txt";
    std::ofstream out(path);
    const auto& f = t.factors[n];
    for (std::size_t i = 0; i < f.rows(); ++i) {
      for (std::size_t j = 0; j < f.cols(); ++j) {
        out << f(i, j) << (j + 1 == f.cols() ? '\n' : ' ');
      }
    }
    std::printf("wrote %s (%zux%zu)\n", path.c_str(), f.rows(), f.cols());
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: tucker_cli INPUT.tns R1,R2,... [--iters N] [--tol T]"
               " [--threads P] [--init random|range]"
               " [--ttmc-kernel auto|nnz|fiber|csf] [--fiber-threshold T]"
               " [--ttmc-strategy auto|direct|tree]"
               " [--trsvd-method lanczos|gram|block|rand|auto]"
               " [--trsvd-block B] [--trsvd-oversample P] [--trsvd-power Q]"
               " [--export PREFIX] [--sweep]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();

  const std::string input = argv[1];
  const auto max_ranks = parse_ranks(argv[2]);

  ht::core::HooiOptions options;
  options.max_iterations = 20;
  options.fit_tolerance = 1e-5;
  std::string export_prefix;
  bool sweep = false;

  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      if (a + 1 >= argc) { usage(); std::exit(2); }
      return argv[++a];
    };
    if (arg == "--iters") {
      options.max_iterations = std::atoi(next());
    } else if (arg == "--tol") {
      options.fit_tolerance = std::atof(next());
    } else if (arg == "--threads") {
      options.num_threads = std::atoi(next());
    } else if (arg == "--init") {
      const std::string v = next();
      options.init = v == "range" ? ht::core::HooiInit::kRandomizedRange
                                  : ht::core::HooiInit::kRandom;
    } else if (arg == "--ttmc-kernel") {
      const std::string v = next();
      if (v == "auto") {
        options.ttmc_kernel = ht::core::TtmcKernel::kAuto;
      } else if (v == "nnz") {
        options.ttmc_kernel = ht::core::TtmcKernel::kPerNnz;
      } else if (v == "fiber") {
        options.ttmc_kernel = ht::core::TtmcKernel::kFiberFactored;
      } else if (v == "csf") {
        options.ttmc_kernel = ht::core::TtmcKernel::kCsf;
      } else {
        return usage();
      }
    } else if (arg == "--fiber-threshold") {
      options.ttmc_fiber_threshold = std::atof(next());
    } else if (arg == "--ttmc-strategy") {
      const std::string v = next();
      if (v == "auto") {
        options.ttmc_strategy = ht::core::TtmcStrategy::kAuto;
      } else if (v == "direct") {
        options.ttmc_strategy = ht::core::TtmcStrategy::kDirect;
      } else if (v == "tree") {
        options.ttmc_strategy = ht::core::TtmcStrategy::kTree;
      } else {
        return usage();
      }
    } else if (arg == "--trsvd-method") {
      const auto method = ht::core::parse_trsvd_method(next());
      if (!method) return usage();
      options.trsvd_method = *method;
    } else if (arg == "--trsvd-block") {
      const int v = std::atoi(next());
      if (v < 0) return usage();  // 0 = automatic block size
      options.trsvd.block_size = static_cast<std::size_t>(v);
    } else if (arg == "--trsvd-oversample") {
      const int v = std::atoi(next());
      if (v < 0) return usage();
      options.trsvd.oversample = static_cast<std::size_t>(v);
    } else if (arg == "--trsvd-power") {
      const int v = std::atoi(next());
      if (v < 0) return usage();
      options.trsvd.power_iterations = static_cast<std::size_t>(v);
    } else if (arg == "--export") {
      export_prefix = next();
    } else if (arg == "--sweep") {
      sweep = true;
    } else {
      return usage();
    }
  }

  ht::tensor::CooTensor x;
  try {
    x = ht::tensor::read_tns_file(input);
    x.sum_duplicates();
  } catch (const ht::Error& e) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  std::printf("loaded %s: %s\n", input.c_str(), x.summary().c_str());
  if (max_ranks.size() != x.order()) {
    std::fprintf(stderr, "need %zu ranks for a %zu-mode tensor\n", x.order(),
                 x.order());
    return 1;
  }

  try {
    if (sweep) {
      // Ladder of candidates up to the requested maximum, shared symbolic.
      std::vector<std::vector<ht::tensor::index_t>> candidates;
      for (double frac : {0.25, 0.5, 0.75, 1.0}) {
        std::vector<ht::tensor::index_t> r;
        for (auto m : max_ranks) {
          r.push_back(std::max<ht::tensor::index_t>(
              1, static_cast<ht::tensor::index_t>(m * frac)));
        }
        if (candidates.empty() || r != candidates.back()) {
          candidates.push_back(std::move(r));
        }
      }
      const auto sweep_result = ht::core::rank_sweep(x, candidates, options);
      ht::TextTable table({"ranks", "fit", "iters", "seconds"});
      for (const auto& e : sweep_result.entries) {
        std::string rs;
        for (std::size_t n = 0; n < e.ranks.size(); ++n) {
          if (n) rs += ",";
          rs += std::to_string(e.ranks[n]);
        }
        table.add_row({rs, ht::fmt_fixed(e.fit, 5), std::to_string(e.iterations),
                       ht::fmt_time_s(e.seconds)});
      }
      std::printf("%s(symbolic built once: %.3fs)\n",
                  table.to_string().c_str(), sweep_result.symbolic_seconds);
      return 0;
    }

    options.ranks = max_ranks;
    const auto result = ht::core::hooi(x, options);
    std::printf("fit %.6f after %d sweeps (converged=%s)\n",
                result.final_fit(), result.iterations,
                result.converged ? "yes" : "no");
    std::printf("timers: symbolic %.3fs ttmc %.3fs trsvd %.3fs core %.3fs\n",
                result.timers.symbolic, result.timers.ttmc,
                result.timers.trsvd, result.timers.core);
    if (!export_prefix.empty()) {
      export_factors(result.decomposition, export_prefix);
    }
  } catch (const ht::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
