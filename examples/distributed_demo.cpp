// Distributed HOOI walkthrough on the simulated message-passing runtime:
// partition a skewed tensor with the fine-grain hypergraph model and with
// random placement, run paper Algorithm 4 under both, and compare fits,
// per-iteration times, and communication volumes (the paper's Table II/III
// story in miniature).
//
//   ./distributed_demo [num_ranks]
#include <cstdio>
#include <cstdlib>

#include "dist/dist_hooi.hpp"
#include "tensor/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ht;

  const int num_ranks = argc > 1 ? std::atoi(argv[1]) : 8;

  tensor::CooTensor x = tensor::random_zipf(
      /*shape=*/{30000, 5000, 600}, /*target_nnz=*/150000,
      /*theta=*/{1.0, 0.9, 0.4}, /*seed=*/33);
  tensor::plant_low_rank_values(x, 6, 0.1, 34);
  std::printf("tensor: %s, %d simulated ranks\n", x.summary().c_str(),
              num_ranks);

  TextTable table({"config", "fit@5", "s/iter", "comm entries (total)",
                   "comm max/avg (worst mode)"});
  for (const auto method : {dist::Method::kHypergraph, dist::Method::kRandom}) {
    dist::DistHooiOptions options;
    options.ranks = {10, 10, 10};
    options.grain = dist::Grain::kFine;
    options.method = method;
    options.num_ranks = num_ranks;
    options.max_iterations = 5;
    const dist::DistHooiResult r = dist::dist_hooi(x, options);

    double worst_ratio = 0;
    std::string worst;
    for (std::size_t n = 0; n < 3; ++n) {
      const auto s = r.stats.comm_summary(n);
      if (s.max > worst_ratio) {
        worst_ratio = s.max;
        worst = human_count(s.max) + " / " + human_count(s.avg);
      }
    }
    table.add_row({r.label, fmt_fixed(r.fits.back(), 4),
                   fmt_time_s(r.seconds_per_iteration),
                   human_count(static_cast<double>(r.stats.total_comm_entries())),
                   worst});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("fine-hp should communicate far less than fine-rd while "
              "reaching the same fit.\n");
  return 0;
}
