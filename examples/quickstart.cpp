// Quickstart: build a sparse tensor, compute a Tucker decomposition with
// HOOI, inspect the result, and round-trip the tensor through the .tns
// format. Start here.
//
//   ./quickstart
#include <cstdio>
#include <sstream>

#include "core/hooi.hpp"
#include "tensor/generators.hpp"
#include "tensor/io.hpp"

int main() {
  using namespace ht;

  // 1. A synthetic 3-mode sparse tensor with planted low-rank structure.
  //    (Load your own data with tensor::read_tns_file("data.tns").)
  tensor::CooTensor x = tensor::random_zipf(
      /*shape=*/{400, 300, 200}, /*target_nnz=*/100000,
      /*theta (per-mode skew)=*/{1.0, 0.8, 0.4}, /*seed=*/42);
  tensor::plant_low_rank_values(x, /*cp_rank=*/8, /*noise=*/0.05, /*seed=*/7);
  std::printf("tensor: %s\n", x.summary().c_str());

  // 2. Tucker decomposition via HOOI (paper Algorithm 3).
  core::HooiOptions options;
  options.ranks = {10, 10, 10};     // core size R1 x R2 x R3
  options.max_iterations = 10;
  options.fit_tolerance = 1e-5;     // stop when the fit stalls
  const core::HooiResult result = core::hooi(x, options);

  std::printf("HOOI: %d iterations, converged=%s\n", result.iterations,
              result.converged ? "yes" : "no");
  for (std::size_t i = 0; i < result.fits.size(); ++i) {
    std::printf("  sweep %zu fit = %.6f\n", i + 1, result.fits[i]);
  }
  std::printf("timers: symbolic %.3fs  ttmc %.3fs  trsvd %.3fs  core %.3fs\n",
              result.timers.symbolic, result.timers.ttmc, result.timers.trsvd,
              result.timers.core);

  // 3. Use the model: factors are orthonormal I_n x R_n matrices; the core
  //    couples them. Reconstruct a few tensor entries.
  const core::TuckerDecomposition& model = result.decomposition;
  std::printf("core tensor: %zux%zux%zu, |G| = %.4f\n",
              std::size_t{model.core.shape()[0]},
              std::size_t{model.core.shape()[1]},
              std::size_t{model.core.shape()[2]},
              model.core.frobenius_norm());
  for (tensor::nnz_t e = 0; e < 3; ++e) {
    const std::vector<tensor::index_t> idx = {x.index(0, e), x.index(1, e),
                                              x.index(2, e)};
    std::printf("  x[%u,%u,%u] = %.4f, model says %.4f\n", idx[0], idx[1],
                idx[2], x.value(e), model.reconstruct_at(idx));
  }

  // 4. Tensors serialize to the FROSTT-style .tns text format.
  std::ostringstream buffer;
  tensor::write_tns(buffer, x);
  std::printf(".tns export: %zu bytes\n", buffer.str().size());
  return 0;
}
