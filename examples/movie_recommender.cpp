// Rating prediction on a Netflix-shaped (user x movie x time) tensor — the
// paper's motivating recommender scenario. Hold out ratings with the seeded
// splitter, train a *masked* completion model on the rest (the prediction
// objective: observed entries only), and compare its held-out RMSE against
// two baselines fit on the same training set: unmasked HOOI at the same
// ranks (the compression objective, which treats every missing rating as a
// zero it must reproduce) and the global mean. Masked training must beat
// both — the unmasked model drags every prediction toward zero because the
// zeros it fit outnumber the ratings ~60:1.
//
// The trained completion model is then saved as a storage bundle and served
// the way a recommender process would: through the serve API (ServeModel +
// QueryEngine over the mmap'd bundle, zero bytes copied). The held-out
// ratings are re-scored through the batched serving endpoint — the serve
// RMSE must match the train-side evaluation to 0 ULP, proving the
// train -> bundle -> serve hand-off is bit-exact — and a top-k
// recommendation pass reports hit rate against the strongly-rated held-out
// entries, with repeated users exercising the per-user contraction cache.
//
//   ./movie_recommender
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/completion.hpp"
#include "core/hooi.hpp"
#include "core/split.hpp"
#include "core/tucker_model.hpp"
#include "serve/query_engine.hpp"
#include "serve/serve_model.hpp"
#include "storage/bundle.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

int main() {
  using namespace ht;

  // Netflix-like shape ratios at laptop scale (dense enough to learn from),
  // heavy user/movie skew.
  tensor::CooTensor all = tensor::random_zipf(
      /*shape=*/{600, 240, 32}, /*target_nnz=*/200000,
      /*theta=*/{0.9, 1.0, 0.4}, /*seed=*/1);
  // Ratings with latent taste structure plus noise, like review scores.
  tensor::plant_low_rank_values(all, /*cp_rank=*/6, /*noise=*/0.15, 2);
  std::printf("ratings tensor: %s\n", all.summary().c_str());

  // Center the ratings: both solvers then model the *deviation from the
  // global mean*, and the mean is added back when predicting (standard
  // practice for recommender tensors).
  double global_mean = 0;
  for (tensor::nnz_t e = 0; e < all.nnz(); ++e) global_mean += all.value(e);
  global_mean /= static_cast<double>(all.nnz());
  for (auto& v : all.values()) v -= global_mean;

  // Seeded train/validation/test split: validation steers early stopping,
  // test is only ever scored.
  core::SplitOptions split_options;
  split_options.validation_fraction = 0.1;
  split_options.test_fraction = 0.1;
  split_options.seed = 3;
  const core::TensorSplit split = core::split_tensor(all, split_options);
  const tensor::CooTensor& test = split.test;
  std::printf("train %llu / validation %llu / test %llu ratings\n",
              static_cast<unsigned long long>(split.train.nnz()),
              static_cast<unsigned long long>(split.validation.nnz()),
              static_cast<unsigned long long>(test.nnz()));

  // Masked completion at the planted rank, ridge-annealed past the sparse
  // ALS swamp, early-stopped on the validation RMSE.
  core::CompletionOptions copt;
  copt.ranks = {6, 6, 6};
  copt.max_sweeps = 30;
  copt.lambda = 0.01;
  copt.lambda_anneal_factor = 100.0;
  copt.lambda_anneal_sweeps = 12;
  copt.core_cg_iterations = 8;
  copt.early_stopping_patience = 3;
  copt.seed = 4;
  core::CompletionResult trained =
      core::tucker_complete(split.train, &split.validation, copt);
  std::printf("masked completion: %d sweeps, train RMSE %.4f"
              " (best validation sweep %d)\n",
              trained.sweeps, trained.final_train_rmse(), trained.best_sweep);

  // Unmasked baseline: HOOI at the same ranks on the same training set.
  core::HooiOptions hooi_options;
  hooi_options.ranks = {6, 6, 6};
  hooi_options.max_iterations = 12;
  hooi_options.fit_tolerance = 1e-5;
  hooi_options.init = core::HooiInit::kRandomizedRange;
  const core::HooiResult unmasked = core::hooi(split.train, hooi_options);
  std::printf("unmasked HOOI baseline: fit %.4f (%d sweeps)\n",
              unmasked.final_fit(), unmasked.iterations);

  // Held-out comparison (train-side reconstruction; the serve pass below
  // must reproduce the masked number bit-exactly).
  const core::CompletionEval masked_eval =
      core::evaluate_model(test, trained.decomposition);
  const core::CompletionEval unmasked_eval =
      core::evaluate_model(test, unmasked.decomposition);
  double se_mean = 0;
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    se_mean += test.value(e) * test.value(e);  // centered: mean predicts 0
  }
  const double rmse_mean = std::sqrt(se_mean / static_cast<double>(test.nnz()));
  std::printf("held-out RMSE: masked %.4f vs unmasked %.4f vs global-mean"
              " %.4f (masked %.1f%% better than unmasked)\n",
              masked_eval.rmse, unmasked_eval.rmse, rmse_mean,
              100.0 * (unmasked_eval.rmse - masked_eval.rmse) /
                  unmasked_eval.rmse);

  // Ship the masked model the way a recommender service would consume it:
  // package the completion run as a serveable bundle (completion.*
  // provenance rides along) plus application state — the rating mean the
  // deviations were centered on and the split that defined the holdout.
  core::TuckerModel model =
      core::completion_model(split.train, std::move(trained), copt);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", global_mean);
  model.provenance.emplace_back("global_mean", buf);
  model.provenance.emplace_back("completion.split_seed",
                                std::to_string(split_options.seed));
  std::snprintf(buf, sizeof buf, "%.17g", masked_eval.rmse);
  model.provenance.emplace_back("completion.holdout_rmse", buf);
  const std::string bundle_path = "movie_model.htb";
  storage::save_bundle(model, bundle_path);

  storage::CopyStats::reset();
  auto served = serve::ServeModel::load(bundle_path);
  std::printf("serving %s: %s load, %llu bytes copied, stored mean %s\n",
              bundle_path.c_str(), served->is_view() ? "mmap" : "heap",
              static_cast<unsigned long long>(storage::CopyStats::bytes()),
              served->model().provenance_value("global_mean").c_str());
  if (!served->is_view() || storage::CopyStats::bytes() != 0) {
    std::fprintf(stderr, "serve load is not zero-copy\n");
    return 1;
  }
  serve::QueryOptions qopt;
  qopt.cache_entries = 256;  // well under the 600 users: evictions happen
  serve::QueryEngine engine(served, qopt);

  // Held-out RMSE through the batched serving endpoint. The test set
  // revisits users, so this pass alone exercises the per-user contraction
  // cache.
  std::vector<std::vector<tensor::index_t>> queries(test.nnz());
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    for (std::size_t n = 0; n < 3; ++n) {
      queries[e].push_back(test.index(n, e));
    }
  }
  const std::vector<double> preds = engine.score_batch(queries);
  const core::CompletionEval served_eval =
      core::evaluate_predictions(test, preds);
  std::printf("held-out RMSE (served): %.6f vs train-side %.6f\n",
              served_eval.rmse, masked_eval.rmse);

  // Top-k recommendation: for every held-out rating in the top quartile
  // (the movies the user demonstrably liked), ask the engine for the k
  // best movies in that time slice and count how often the held-out movie
  // makes the list. Random guessing would land at about k / #movies.
  std::vector<double> truths;
  truths.reserve(test.nnz());
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    truths.push_back(test.value(e));
  }
  std::nth_element(truths.begin(), truths.begin() + truths.size() * 3 / 4,
                   truths.end());
  const double strong = truths[truths.size() * 3 / 4];
  const std::size_t k = 20;
  std::size_t relevant = 0, hits = 0;
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    if (test.value(e) < strong) continue;
    ++relevant;
    const tensor::index_t user = test.index(0, e);
    const tensor::index_t movie = test.index(1, e);
    const tensor::index_t time[] = {test.index(2, e)};
    const auto top = engine.topk(user, k, time);
    for (const auto& s : top) {
      if (s.item == movie) { ++hits; break; }
    }
  }
  const auto cs = engine.cache_stats();
  std::printf("top-%zu hit rate on %zu strong held-out ratings: %.1f%%"
              " (random baseline %.1f%%)\n",
              k, relevant, 100.0 * hits / std::max<std::size_t>(1, relevant),
              100.0 * k / 240.0);
  std::printf("cache: %llu hits / %llu misses / %llu evictions"
              " (capacity %zu)\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions),
              qopt.cache_entries);

  std::remove(bundle_path.c_str());
  if (served_eval.rmse != masked_eval.rmse ||
      served_eval.mae != masked_eval.mae) {
    std::fprintf(stderr, "served predictions are not bit-exact\n");
    return 1;
  }
  if (cs.hits == 0) {
    std::fprintf(stderr, "repeated users never hit the contraction cache\n");
    return 1;
  }
  if (masked_eval.rmse >= unmasked_eval.rmse || masked_eval.rmse >= rmse_mean) {
    std::fprintf(stderr, "masked training did not beat the baselines\n");
    return 1;
  }
  return 0;
}
