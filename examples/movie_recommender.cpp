// Rating prediction on a Netflix-shaped (user x movie x time) tensor — the
// paper's motivating recommender scenario. Hold out 10% of the ratings,
// fit a Tucker model on the rest, and predict the held-out entries with the
// low-rank reconstruction; Tucker should clearly beat predicting the mean.
//
// The trained model is then saved as a storage bundle and reloaded mmap'd —
// the hand-off a serving process would do — and the held-out predictions
// are re-scored from the reloaded model to prove the round trip is exact.
//
//   ./movie_recommender
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/hooi.hpp"
#include "core/tucker_model.hpp"
#include "storage/bundle.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

int main() {
  using namespace ht;

  // Netflix-like shape ratios at laptop scale (dense enough to learn from),
  // heavy user/movie skew.
  tensor::CooTensor all = tensor::random_zipf(
      /*shape=*/{600, 240, 32}, /*target_nnz=*/80000,
      /*theta=*/{0.9, 1.0, 0.4}, /*seed=*/1);
  // Ratings with latent taste structure plus noise, like review scores.
  tensor::plant_low_rank_values(all, /*cp_rank=*/6, /*noise=*/0.15, 2);
  std::printf("ratings tensor: %s\n", all.summary().c_str());

  // Center the ratings: the sparse model treats missing entries as zeros,
  // so we factor the *deviation from the global mean* and add the mean back
  // when predicting (standard practice for recommender tensors).
  double global_mean = 0;
  for (tensor::nnz_t e = 0; e < all.nnz(); ++e) global_mean += all.value(e);
  global_mean /= static_cast<double>(all.nnz());
  for (auto& v : all.values()) v -= global_mean;

  // Train/test split: every 10th nonzero is held out.
  std::vector<tensor::nnz_t> train_ids, test_ids;
  for (tensor::nnz_t e = 0; e < all.nnz(); ++e) {
    (e % 10 == 3 ? test_ids : train_ids).push_back(e);
  }
  const tensor::CooTensor train = all.select(train_ids);
  const tensor::CooTensor test = all.select(test_ids);
  std::printf("train %llu / test %llu ratings\n",
              static_cast<unsigned long long>(train.nnz()),
              static_cast<unsigned long long>(test.nnz()));

  // Fit the Tucker model (paper settings: R = 10 for 3-mode tensors).
  core::HooiOptions options;
  options.ranks = {10, 10, 10};
  options.max_iterations = 12;
  options.fit_tolerance = 1e-5;
  options.init = core::HooiInit::kRandomizedRange;
  const core::HooiResult result = core::hooi(train, options);
  std::printf("model fit on training data: %.4f (%d sweeps)\n",
              result.final_fit(), result.iterations);

  // Baseline: predict the global mean rating (deviation 0).
  double se_model = 0, se_mean = 0;
  std::vector<tensor::index_t> idx(3);
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    for (std::size_t n = 0; n < 3; ++n) idx[n] = test.index(n, e);
    const double truth = test.value(e);  // centered deviation
    const double pred = result.decomposition.reconstruct_at(idx);
    se_model += (pred - truth) * (pred - truth);
    se_mean += truth * truth;
  }
  const double rmse_model = std::sqrt(se_model / test.nnz());
  const double rmse_mean = std::sqrt(se_mean / test.nnz());
  std::printf("held-out RMSE: tucker %.4f vs global-mean %.4f (%.1f%% better)\n",
              rmse_model, rmse_mean,
              100.0 * (rmse_mean - rmse_model) / rmse_mean);

  // Ship the model the way a recommender service would consume it: save a
  // bundle, reload it zero-copy (mmap), and serve the same predictions.
  // Application state rides along in provenance — here the rating mean the
  // deviations were centered on.
  core::TuckerModel model = core::TuckerModel::from_hooi(train, result);
  char mean_buf[64];
  std::snprintf(mean_buf, sizeof mean_buf, "%.17g", global_mean);
  model.provenance.emplace_back("global_mean", mean_buf);
  const std::string bundle_path = "movie_model.htb";
  storage::save_bundle(model, bundle_path);

  storage::CopyStats::reset();
  const core::TuckerModel served =
      storage::load_bundle(bundle_path, storage::LoadMode::kMap);
  double max_dev = 0;
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    for (std::size_t n = 0; n < 3; ++n) idx[n] = test.index(n, e);
    max_dev = std::max(max_dev,
                       std::abs(served.reconstruct_at(idx) -
                                result.decomposition.reconstruct_at(idx)));
  }
  std::printf("bundle round trip: %s, stored mean %s, max prediction"
              " deviation %.3g (%llu bytes copied on load)\n",
              bundle_path.c_str(),
              served.provenance_value("global_mean").c_str(), max_dev,
              static_cast<unsigned long long>(storage::CopyStats::bytes()));
  std::remove(bundle_path.c_str());
  if (max_dev != 0.0) {
    std::fprintf(stderr, "bundle round trip is not bit-exact\n");
    return 1;
  }
  return rmse_model < rmse_mean ? 0 : 1;
}
