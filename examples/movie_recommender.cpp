// Rating prediction on a Netflix-shaped (user x movie x time) tensor — the
// paper's motivating recommender scenario. Hold out 10% of the ratings,
// fit a Tucker model on the rest, and predict the held-out entries with the
// low-rank reconstruction; Tucker should clearly beat predicting the mean.
//
// The trained model is then saved as a storage bundle and served the way a
// recommender process would: through the serve API (ServeModel +
// QueryEngine over the mmap'd bundle, zero bytes copied). The held-out
// ratings are re-scored through the batched serving endpoint — proving the
// train -> bundle -> serve hand-off is bit-exact — and a top-k
// recommendation pass reports hit rate against the strongly-rated held-out
// entries, with repeated users exercising the per-user contraction cache.
//
//   ./movie_recommender
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/hooi.hpp"
#include "core/tucker_model.hpp"
#include "serve/query_engine.hpp"
#include "serve/serve_model.hpp"
#include "storage/bundle.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

int main() {
  using namespace ht;

  // Netflix-like shape ratios at laptop scale (dense enough to learn from),
  // heavy user/movie skew.
  tensor::CooTensor all = tensor::random_zipf(
      /*shape=*/{600, 240, 32}, /*target_nnz=*/80000,
      /*theta=*/{0.9, 1.0, 0.4}, /*seed=*/1);
  // Ratings with latent taste structure plus noise, like review scores.
  tensor::plant_low_rank_values(all, /*cp_rank=*/6, /*noise=*/0.15, 2);
  std::printf("ratings tensor: %s\n", all.summary().c_str());

  // Center the ratings: the sparse model treats missing entries as zeros,
  // so we factor the *deviation from the global mean* and add the mean back
  // when predicting (standard practice for recommender tensors).
  double global_mean = 0;
  for (tensor::nnz_t e = 0; e < all.nnz(); ++e) global_mean += all.value(e);
  global_mean /= static_cast<double>(all.nnz());
  for (auto& v : all.values()) v -= global_mean;

  // Train/test split: every 10th nonzero is held out.
  std::vector<tensor::nnz_t> train_ids, test_ids;
  for (tensor::nnz_t e = 0; e < all.nnz(); ++e) {
    (e % 10 == 3 ? test_ids : train_ids).push_back(e);
  }
  const tensor::CooTensor train = all.select(train_ids);
  const tensor::CooTensor test = all.select(test_ids);
  std::printf("train %llu / test %llu ratings\n",
              static_cast<unsigned long long>(train.nnz()),
              static_cast<unsigned long long>(test.nnz()));

  // Fit the Tucker model (paper settings: R = 10 for 3-mode tensors).
  core::HooiOptions options;
  options.ranks = {10, 10, 10};
  options.max_iterations = 12;
  options.fit_tolerance = 1e-5;
  options.init = core::HooiInit::kRandomizedRange;
  const core::HooiResult result = core::hooi(train, options);
  std::printf("model fit on training data: %.4f (%d sweeps)\n",
              result.final_fit(), result.iterations);

  // Ship the model the way a recommender service would consume it: save a
  // bundle and serve it through the serve API. Application state rides
  // along in provenance — here the rating mean the deviations were
  // centered on.
  core::TuckerModel model = core::TuckerModel::from_hooi(train, result);
  char mean_buf[64];
  std::snprintf(mean_buf, sizeof mean_buf, "%.17g", global_mean);
  model.provenance.emplace_back("global_mean", mean_buf);
  const std::string bundle_path = "movie_model.htb";
  storage::save_bundle(model, bundle_path);

  storage::CopyStats::reset();
  auto served = serve::ServeModel::load(bundle_path);
  std::printf("serving %s: %s load, %llu bytes copied, stored mean %s\n",
              bundle_path.c_str(), served->is_view() ? "mmap" : "heap",
              static_cast<unsigned long long>(storage::CopyStats::bytes()),
              served->model().provenance_value("global_mean").c_str());
  if (!served->is_view() || storage::CopyStats::bytes() != 0) {
    std::fprintf(stderr, "serve load is not zero-copy\n");
    return 1;
  }
  serve::QueryOptions qopt;
  qopt.cache_entries = 256;  // well under the 600 users: evictions happen
  serve::QueryEngine engine(served, qopt);

  // Held-out RMSE through the batched serving endpoint, checked bit-exact
  // against the train-time reconstruction. The test set revisits users, so
  // this pass alone exercises the per-user contraction cache.
  std::vector<std::vector<tensor::index_t>> queries(test.nnz());
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    for (std::size_t n = 0; n < 3; ++n) {
      queries[e].push_back(test.index(n, e));
    }
  }
  const std::vector<double> preds = engine.score_batch(queries);
  double se_model = 0, se_mean = 0, max_dev = 0;
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    const double truth = test.value(e);  // centered deviation
    se_model += (preds[e] - truth) * (preds[e] - truth);
    se_mean += truth * truth;
    max_dev = std::max(
        max_dev,
        std::abs(preds[e] - result.decomposition.reconstruct_at(queries[e])));
  }
  const double rmse_model = std::sqrt(se_model / test.nnz());
  const double rmse_mean = std::sqrt(se_mean / test.nnz());
  std::printf("held-out RMSE (served): tucker %.4f vs global-mean %.4f"
              " (%.1f%% better), max deviation from training model %.3g\n",
              rmse_model, rmse_mean,
              100.0 * (rmse_mean - rmse_model) / rmse_mean, max_dev);

  // Top-k recommendation: for every held-out rating in the top quartile
  // (the movies the user demonstrably liked), ask the engine for the k
  // best movies in that time slice and count how often the held-out movie
  // makes the list. Random guessing would land at about k / #movies.
  std::vector<double> truths;
  truths.reserve(test.nnz());
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    truths.push_back(test.value(e));
  }
  std::nth_element(truths.begin(), truths.begin() + truths.size() * 3 / 4,
                   truths.end());
  const double strong = truths[truths.size() * 3 / 4];
  const std::size_t k = 20;
  std::size_t relevant = 0, hits = 0;
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    if (test.value(e) < strong) continue;
    ++relevant;
    const tensor::index_t user = test.index(0, e);
    const tensor::index_t movie = test.index(1, e);
    const tensor::index_t time[] = {test.index(2, e)};
    const auto top = engine.topk(user, k, time);
    for (const auto& s : top) {
      if (s.item == movie) { ++hits; break; }
    }
  }
  const auto cs = engine.cache_stats();
  std::printf("top-%zu hit rate on %zu strong held-out ratings: %.1f%%"
              " (random baseline %.1f%%)\n",
              k, relevant, 100.0 * hits / std::max<std::size_t>(1, relevant),
              100.0 * k / 240.0);
  std::printf("cache: %llu hits / %llu misses / %llu evictions"
              " (capacity %zu)\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions),
              qopt.cache_entries);

  std::remove(bundle_path.c_str());
  if (max_dev != 0.0) {
    std::fprintf(stderr, "served predictions are not bit-exact\n");
    return 1;
  }
  if (cs.hits == 0) {
    std::fprintf(stderr, "repeated users never hit the contraction cache\n");
    return 1;
  }
  return rmse_model < rmse_mean ? 0 : 1;
}
