// Knowledge-base completion on a NELL-shaped (entity x relation x entity)
// tensor (paper Table I). Score held-out true triples against corrupted
// ones using the Tucker reconstruction — the model should rank the true
// triple higher most of the time (a standard link-prediction check).
//
//   ./knowledge_base
#include <cstdio>
#include <vector>

#include "core/hooi.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

int main() {
  using namespace ht;

  // NELL-like shape: many entities, few relations (dense enough to learn).
  const tensor::Shape shape = {2000, 24, 1500};
  tensor::CooTensor kb = tensor::random_zipf(shape, /*target_nnz=*/60000,
                                             /*theta=*/{1.0, 0.6, 1.0},
                                             /*seed=*/11);
  // Belief scores with latent structure (entities cluster into topics).
  tensor::plant_low_rank_values(kb, /*cp_rank=*/6, /*noise=*/0.05, 12);
  std::printf("knowledge base: %s\n", kb.summary().c_str());

  // Hold out every 20th triple as a test fact.
  std::vector<tensor::nnz_t> train_ids, test_ids;
  for (tensor::nnz_t e = 0; e < kb.nnz(); ++e) {
    (e % 20 == 5 ? test_ids : train_ids).push_back(e);
  }
  const tensor::CooTensor train = kb.select(train_ids);
  const tensor::CooTensor test = kb.select(test_ids);

  core::HooiOptions options;
  options.ranks = {10, 8, 10};
  options.max_iterations = 10;
  options.fit_tolerance = 1e-5;
  const core::HooiResult result = core::hooi(train, options);
  std::printf("fit %.4f after %d sweeps\n", result.final_fit(),
              result.iterations);

  // Link prediction: does the model score the true triple higher than a
  // corrupted triple (random tail entity)?
  Rng rng(99);
  std::size_t wins = 0, trials = 0;
  std::vector<tensor::index_t> idx(3), corrupted(3);
  for (tensor::nnz_t e = 0; e < test.nnz(); ++e) {
    for (std::size_t n = 0; n < 3; ++n) idx[n] = test.index(n, e);
    corrupted = idx;
    corrupted[2] = static_cast<tensor::index_t>(rng.below(shape[2]));
    if (corrupted[2] == idx[2]) continue;
    const double true_score = result.decomposition.reconstruct_at(idx);
    const double fake_score = result.decomposition.reconstruct_at(corrupted);
    wins += (true_score > fake_score);
    ++trials;
  }
  const double accuracy = 100.0 * wins / trials;
  std::printf("true triple outranks corrupted tail: %.1f%% of %zu trials\n",
              accuracy, trials);
  return accuracy > 70.0 ? 0 : 1;
}
