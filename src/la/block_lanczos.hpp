// Block Golub–Kahan–Lanczos bidiagonalization TRSVD.
//
// Same Krylov recurrence as la::lanczos_trsvd, advanced b vectors at a
// time:
//   W_j    = A V_j - U_{j-1} B_{j-1}^T        U_j = orth(W_j),  A_j = U_j^T W_j
//   What_j = A^T U_j - V_j A_j^T              (block reorthogonalized
//                                              against the whole V basis)
//   V_{j+1} = orth(What_j),                   B_j = V_{j+1}^T What_j
// Every operator touch is a block apply — gemm in shared memory, one
// batched fold/expand round in the distributed operator — so a step does b
// columns of progress per pass over A instead of one. The projected matrix
// T = U^T A V is block upper bidiagonal (diagonal blocks A_j, superdiagonal
// B_j^T); its small dense SVD supplies Ritz values, the convergence test
// (residual of triplet i is ||What_j w_i[last block]||, the block analog of
// beta * |last entry|), and the final rotation. Left vectors are recovered
// like the scalar solver: u_i = A (V q_i) / sigma_i in one block apply.
//
// One-sided reorthogonalization on the V basis (Simon & Zha) is retained:
// only the previous U block is stored, so memory stays O(c * steps + m*b).
// Projected blocks are computed as explicit cross-Grams (A_j via
// TrsvdOperator::row_gram, B_j locally), which keeps T exact under the
// eig-QR orthonormalization's rank-deficiency drops — deflated directions
// become zero rows of T, and deficient V blocks are refilled with fresh
// seeded random directions orthogonal to the basis (the block analog of the
// scalar solver's breakdown restart).
//
// Contract: `op` must implement the TrsvdOperator block interface (the
// default scalar-looping implementations suffice); the solver only touches
// it through apply/apply_transpose/row_gram, so row-distributed operators
// work unchanged and column-space quantities stay replicated. Determinism:
// the starting block and every deficiency refill derive from
// TrsvdOptions::seed, column-space reductions go through the blas layer's
// tree reductions, and the iteration order is fixed — two runs with the
// same (operator, options) produce bitwise-identical results for any
// OpenMP thread count, and identical results on every rank of a
// distributed run. Thread-safety: block_lanczos_trsvd keeps all mutable
// state in locals, so concurrent solves over distinct operators are safe;
// a single operator is only shared when its own apply methods are
// const-safe (DistYOperator is — per-rank instances).
#pragma once

#include <cstddef>

#include "la/linear_operator.hpp"
#include "la/trsvd_types.hpp"

namespace ht::la {

/// Leading `rank` singular triplets of `op` by block Lanczos
/// bidiagonalization with block size options.block_size
/// (0 = clamp(rank, 4, 16)).
/// rank must satisfy 1 <= rank <= min(row_global_size, col_size).
/// options.max_steps caps total basis *columns* (0 = automatic, same budget
/// as the scalar solver); the convergence test runs once per block step.
TrsvdResult block_lanczos_trsvd(TrsvdOperator& op, std::size_t rank,
                                const TrsvdOptions& options = {});

}  // namespace ht::la
