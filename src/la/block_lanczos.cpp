#include "la/block_lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "la/blas.hpp"
#include "la/block_ops.hpp"
#include "la/svd.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace ht::la {

namespace {

// Growable row-per-vector store for the V basis (each row is one basis
// vector of length c). Rebuilding the Matrix view after an append copies
// O(cols * c) doubles — noise next to one block pass over A.
class BasisRows {
 public:
  explicit BasisRows(std::size_t c) : c_(c) {}

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] const Matrix& matrix() const { return mat_; }

  /// Append the first `width` columns of `v` (c x >=width) as rows.
  void append_columns(const Matrix& v, std::size_t width) {
    flat_.resize((count_ + width) * c_);
    for (std::size_t j = 0; j < width; ++j) {
      double* row = flat_.data() + (count_ + j) * c_;
      for (std::size_t i = 0; i < c_; ++i) row[i] = v(i, j);
    }
    count_ += width;
    mat_ = Matrix(count_, c_, flat_);
  }

 private:
  std::size_t c_;
  std::size_t count_ = 0;
  std::vector<double> flat_;
  Matrix mat_;
};

// Fill columns [kept, width) of `v` with fresh seeded random directions
// orthogonal to the basis and to v's earlier columns (the block analog of
// the scalar solver's breakdown restart). Returns the final usable width:
// smaller than `width` when the column space is exhausted.
std::size_t fill_deficient_columns(Matrix& v, std::size_t kept,
                                   std::size_t width, const BasisRows& basis,
                                   std::uint64_t& restart_seed) {
  const std::size_t c = v.rows();
  std::vector<double> cand(c);
  for (std::size_t col = kept; col < width; ++col) {
    bool placed = false;
    for (int attempt = 0; attempt < 4 && !placed; ++attempt) {
      Rng rng(++restart_seed);
      for (auto& x : cand) x = rng.normal();
      // Two passes of classical Gram-Schmidt against basis + earlier cols.
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t r = 0; r < basis.count(); ++r) {
          const auto row = basis.matrix().row(r);
          double s = 0.0;
          for (std::size_t i = 0; i < c; ++i) s += row[i] * cand[i];
          for (std::size_t i = 0; i < c; ++i) cand[i] -= s * row[i];
        }
        for (std::size_t k = 0; k < col; ++k) {
          double s = 0.0;
          for (std::size_t i = 0; i < c; ++i) s += v(i, k) * cand[i];
          for (std::size_t i = 0; i < c; ++i) cand[i] -= s * v(i, k);
        }
      }
      const double n = nrm2(cand);
      if (n > 1e-8) {
        for (std::size_t i = 0; i < c; ++i) v(i, col) = cand[i] / n;
        placed = true;
      }
    }
    if (!placed) return col;  // column space exhausted
  }
  return width;
}

// Assemble the block upper bidiagonal projected matrix T (total x total)
// from diagonal blocks A_j and superdiagonal blocks B_j^T.
Matrix assemble_projected(const std::vector<Matrix>& diag,
                          const std::vector<Matrix>& superT,
                          std::size_t total) {
  Matrix t(total, total);
  std::size_t offset = 0;
  for (std::size_t j = 0; j < diag.size(); ++j) {
    const Matrix& a = diag[j];
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t s = 0; s < a.cols(); ++s) t(offset + r, offset + s) = a(r, s);
    }
    if (j < superT.size()) {
      const Matrix& bt = superT[j];  // w_j x w_{j+1}
      for (std::size_t r = 0; r < bt.rows(); ++r) {
        for (std::size_t s = 0; s < bt.cols(); ++s) {
          t(offset + r, offset + a.cols() + s) = bt(r, s);
        }
      }
    }
    offset += a.cols();
  }
  return t;
}

}  // namespace

TrsvdResult block_lanczos_trsvd(TrsvdOperator& op, std::size_t rank,
                                const TrsvdOptions& options) {
  const std::size_t m_local = op.row_local_size();
  const std::size_t m_global = op.row_global_size();
  const std::size_t c = op.col_size();
  HT_CHECK_MSG(rank >= 1, "rank must be positive");
  HT_CHECK_MSG(rank <= std::min(m_global, c),
               "rank " << rank << " exceeds min(" << m_global << ", " << c
                       << ")");

  const std::size_t block =
      std::min(c, options.block_size > 0
                      ? options.block_size
                      : std::clamp<std::size_t>(rank, 4, 16));
  const std::size_t max_cols =
      options.max_steps > 0
          ? std::min(options.max_steps, c)
          : std::min(c, std::max<std::size_t>(2 * rank + 20, 30));

  TrsvdResult result;

  BasisRows basis(c);
  std::vector<Matrix> a_blocks;   // diagonal blocks A_j
  std::vector<Matrix> bt_blocks;  // superdiagonal blocks B_j^T
  std::uint64_t restart_seed = options.seed;

  // Initial block: seeded random, orthonormalized (deficiency refilled).
  Matrix v(c, std::min(block, max_cols));
  {
    Rng rng(options.seed);
    for (auto& x : v.flat()) x = rng.normal();
  }
  Matrix scratch, scratch2;
  {
    const std::size_t kept = orthonormalize_colspace_block(v, scratch);
    const std::size_t width =
        fill_deficient_columns(v, kept, v.cols(), basis, restart_seed);
    HT_CHECK_MSG(width == v.cols(), "degenerate starting block");
  }
  basis.append_columns(v, v.cols());

  Matrix w, u, vhat, vhat_orth, u_prev, bt_prev, gram, tmp;
  std::size_t used = 0;
  SvdResult tsvd;  // SVD of the projected block bidiagonal matrix

  while (true) {
    const std::size_t width = v.cols();

    // W = A V_j - U_{j-1} B_{j-1}^T  (row space, block apply).
    op.apply_block(v, w);
    result.operator_applies += width;
    if (u_prev.cols() > 0) {
      gemm_into(u_prev, bt_prev, tmp);  // (m x w_prev) * (w_prev x w_j)
      axpy(-1.0, tmp.flat(), w.flat());
    }

    // U_j = orth(W); A_j = U_j^T W via the operator's global cross-Gram, so
    // the projected matrix stays exact under deflation drops.
    u = w;
    orthonormalize_rowspace_block(op, u, scratch);
    op.row_gram(u, w, gram);
    a_blocks.push_back(gram);
    used += width;

    // What = A^T U_j - V_j A_j^T, block-reorthogonalized against all of V.
    op.apply_transpose_block(u, vhat);
    result.operator_applies += width;
    gemm_into(v, gram.transposed(), tmp);
    axpy(-1.0, tmp.flat(), vhat.flat());
    reorthogonalize_block(vhat, basis.matrix());

    // Convergence test on T (once per block step; a step covers b columns,
    // so this matches the scalar solver's check_interval cadence).
    if (used >= rank) {
      tsvd = svd_jacobi(assemble_projected(a_blocks, bt_blocks, used));
      const double sigma_max = tsvd.s.empty() ? 0.0 : tsvd.s[0];
      bool all_converged = true;
      std::vector<double> x(width), resid(c);
      for (std::size_t i = 0; i < rank && all_converged; ++i) {
        // Residual of triplet i: || What * (last block of left vector) ||.
        for (std::size_t r = 0; r < width; ++r) {
          x[r] = tsvd.u(used - width + r, i);
        }
        std::fill(resid.begin(), resid.end(), 0.0);
        for (std::size_t r = 0; r < c; ++r) {
          double s = 0.0;
          for (std::size_t k = 0; k < width; ++k) s += vhat(r, k) * x[k];
          resid[r] = s;
        }
        if (nrm2(resid) > options.tol * std::max(sigma_max, 1e-300)) {
          all_converged = false;
        }
      }
      if (all_converged) {
        result.converged = true;
        break;
      }
    }
    if (used >= max_cols) break;

    // Next block V_{j+1} from What; deficient columns (invariant subspace)
    // are refilled with fresh directions orthogonal to the basis.
    const std::size_t next_width = std::min(block, max_cols - used);
    vhat_orth = vhat;
    std::size_t kept = orthonormalize_colspace_block(vhat_orth, scratch2);
    kept = std::min(kept, next_width);
    Matrix v_next(c, next_width);
    for (std::size_t j = 0; j < next_width; ++j) {
      for (std::size_t i = 0; i < c; ++i) v_next(i, j) = vhat_orth(i, j);
    }
    const std::size_t final_width = fill_deficient_columns(
        v_next, kept, next_width, basis, restart_seed);
    if (final_width == 0) break;  // column space exhausted
    if (final_width < next_width) {
      Matrix shrunk(c, final_width);
      for (std::size_t j = 0; j < final_width; ++j) {
        for (std::size_t i = 0; i < c; ++i) shrunk(i, j) = v_next(i, j);
      }
      v_next = std::move(shrunk);
    }

    // B_j^T = What^T V_{j+1}, exact for any orthonormal V_{j+1} (refilled
    // columns included: their overlap with What is what it is).
    bt_blocks.push_back(gemm_tn(vhat, v_next));

    basis.append_columns(v_next, v_next.cols());
    u_prev = std::move(u);
    bt_prev = bt_blocks.back();
    v = std::move(v_next);
  }

  result.steps = used;
  HT_CHECK_MSG(used >= rank, "block Lanczos terminated with " << used
                               << " columns < rank " << rank);

  if (tsvd.s.size() != used) {
    tsvd = svd_jacobi(assemble_projected(a_blocks, bt_blocks, used));
  }

  // Recover left singular vectors in one block apply:
  // u_i = A (V q_i) / sigma_i.
  result.sigma.assign(tsvd.s.begin(), tsvd.s.begin() + static_cast<long>(rank));
  Matrix qcols(used, rank);
  for (std::size_t r = 0; r < used; ++r) {
    for (std::size_t i = 0; i < rank; ++i) qcols(r, i) = tsvd.v(r, i);
  }
  Matrix vq;  // c x rank
  gemm_tn_into(basis.matrix(), qcols, vq);
  Matrix au;
  op.apply_block(vq, au);
  result.operator_applies += rank;
  result.u.resize_zero(m_local, rank);
  for (std::size_t i = 0; i < rank; ++i) {
    const double s = result.sigma[i];
    if (s > 1e-300) {
      for (std::size_t r = 0; r < m_local; ++r) result.u(r, i) = au(r, i) / s;
    }
  }
  return result;
}

}  // namespace ht::la
