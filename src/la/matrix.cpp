#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace ht::la {

void Matrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::resize_zero(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // vector::resize never shrinks capacity: repeated reshapes between mode
  // widths settle at the largest size and stop allocating.
  data_.resize(rows * cols);
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    if (std::abs(data_[k] - other.data_[k]) > tol) return false;
  }
  return true;
}

}  // namespace ht::la
