#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace ht::la {

Matrix Matrix::view(std::size_t rows, std::size_t cols, const double* data,
                    storage::ArenaPtr arena) {
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.store_ =
      storage::Span<double>::view(data, rows * cols, std::move(arena));
  m.refresh();
  return m;
}

void Matrix::set_zero() {
  auto& v = store_.vec();
  std::fill(v.begin(), v.end(), 0.0);
}

void Matrix::resize_zero(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  store_.vec().assign(rows * cols, 0.0);
  refresh();
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // vector::resize never shrinks capacity: repeated reshapes between mode
  // widths settle at the largest size and stop allocating.
  store_.vec().resize(rows * cols);
  refresh();
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : flat()) s += v * v;
  return std::sqrt(s);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t k = 0; k < size(); ++k) {
    if (std::abs(ptr_[k] - other.ptr_[k]) > tol) return false;
  }
  return true;
}

}  // namespace ht::la
