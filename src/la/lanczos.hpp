// Truncated SVD by Golub–Kahan–Lanczos bidiagonalization (SLEPc substitute).
//
// Computes the leading `rank` left singular vectors/values of an operator A
// (m x c) using only A v / A^T u products. Designed for the HOOI TRSVD
// regime: c = prod of Tucker ranks (small), m = tensor mode size (huge).
//
// Memory: only the column-space basis V (c x steps) and two row-space
// vectors are kept; one-sided reorthogonalization on V (Simon & Zha) keeps
// the factorization accurate without storing the long left basis. Left
// vectors are recovered at the end as u_i = A (V q_i) / sigma_i and then
// re-orthonormalized.
#pragma once

#include <cstddef>
#include <vector>

#include "la/linear_operator.hpp"
#include "la/matrix.hpp"

namespace ht::la {

struct TrsvdOptions {
  /// Residual tolerance relative to the largest singular value.
  double tol = 1e-10;
  /// Hard cap on bidiagonalization steps (0 = automatic: min(c, 2*rank+20)).
  std::size_t max_steps = 0;
  /// Steps between convergence tests. The test costs an SVD of the
  /// projected (steps x steps) matrix — running it every step would
  /// dominate the solve for small operators (and is replicated on every
  /// rank in the distributed setting).
  std::size_t check_interval = 4;
  /// Seed for the deterministic starting vector.
  std::uint64_t seed = 0x5eed5eedULL;
};

struct TrsvdResult {
  /// Leading left singular vectors, row_local_size() x rank.
  Matrix u;
  /// Leading singular values, descending.
  std::vector<double> sigma;
  /// Bidiagonalization steps performed.
  std::size_t steps = 0;
  /// Whether all requested triplets met the residual tolerance.
  bool converged = false;
  /// Number of operator applications (A and A^T combined).
  std::size_t operator_applies = 0;
};

/// Leading `rank` singular triplets of `op`. rank must satisfy
/// 1 <= rank <= min(row_global_size, col_size).
TrsvdResult lanczos_trsvd(TrsvdOperator& op, std::size_t rank,
                          const TrsvdOptions& options = {});

/// Gram-matrix TRSVD baseline: forms A^T A (c x c), eigendecomposes it, and
/// recovers U = A V S^{-1}. Used as a cross-check and in ablation benches;
/// *not* usable in the fine-grain distributed setting (the paper's point:
/// it would require assembling Y(n)).
TrsvdResult gram_trsvd(const Matrix& a, std::size_t rank);

}  // namespace ht::la
