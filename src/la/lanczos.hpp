// Truncated SVD by Golub–Kahan–Lanczos bidiagonalization (SLEPc substitute).
//
// Computes the leading `rank` left singular vectors/values of an operator A
// (m x c) using only A v / A^T u products. Designed for the HOOI TRSVD
// regime: c = prod of Tucker ranks (small), m = tensor mode size (huge).
//
// Memory: only the column-space basis V (c x steps) and two row-space
// vectors are kept; one-sided reorthogonalization on V (Simon & Zha) keeps
// the factorization accurate without storing the long left basis. Left
// vectors are recovered at the end as u_i = A (V q_i) / sigma_i and then
// re-orthonormalized.
#pragma once

#include <cstddef>
#include <vector>

#include "la/linear_operator.hpp"
#include "la/matrix.hpp"
#include "la/trsvd_types.hpp"

namespace ht::la {

/// Leading `rank` singular triplets of `op`. rank must satisfy
/// 1 <= rank <= min(row_global_size, col_size).
TrsvdResult lanczos_trsvd(TrsvdOperator& op, std::size_t rank,
                          const TrsvdOptions& options = {});

/// Gram-matrix TRSVD baseline: forms A^T A (c x c), eigendecomposes it, and
/// recovers U = A V S^{-1}. Used as a cross-check and in ablation benches;
/// *not* usable in the fine-grain distributed setting (the paper's point:
/// it would require assembling Y(n)).
TrsvdResult gram_trsvd(const Matrix& a, std::size_t rank);

}  // namespace ht::la
