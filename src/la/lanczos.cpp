#include "la/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "la/eig.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace ht::la {

namespace {

// Orthogonalize `x` against the first `count` columns of basis (c x cap),
// two passes of classical Gram-Schmidt (enough at these sizes).
void reorthogonalize(std::span<double> x, const Matrix& basis,
                     std::size_t count) {
  const std::size_t c = x.size();
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t k = 0; k < count; ++k) {
      double s = 0.0;
      for (std::size_t i = 0; i < c; ++i) s += basis(i, k) * x[i];
      for (std::size_t i = 0; i < c; ++i) x[i] -= s * basis(i, k);
    }
  }
}

// Deterministic unit-norm starting vector; identical on every rank.
std::vector<double> starting_vector(std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(c);
  for (auto& x : v) x = rng.normal();
  const double n = nrm2(v);
  HT_CHECK(n > 0);
  for (auto& x : v) x /= n;
  return v;
}

}  // namespace

TrsvdResult lanczos_trsvd(TrsvdOperator& op, std::size_t rank,
                          const TrsvdOptions& options) {
  const std::size_t m_local = op.row_local_size();
  const std::size_t m_global = op.row_global_size();
  const std::size_t c = op.col_size();
  HT_CHECK_MSG(rank >= 1, "rank must be positive");
  HT_CHECK_MSG(rank <= std::min(m_global, c),
               "rank " << rank << " exceeds min(" << m_global << ", " << c
                       << ")");

  const std::size_t max_steps =
      options.max_steps > 0
          ? std::min(options.max_steps, c)
          : std::min(c, std::max<std::size_t>(2 * rank + 20, 30));

  TrsvdResult result;

  // Column-space basis V: c x max_steps, filled column by column.
  Matrix v_basis(c, max_steps);
  std::vector<double> alphas, betas;  // B diag / superdiag entries
  alphas.reserve(max_steps);
  betas.reserve(max_steps);

  std::vector<double> v = starting_vector(c, options.seed);
  std::vector<double> u_prev(m_local, 0.0), u(m_local, 0.0);
  std::vector<double> vhat(c, 0.0);

  double beta_prev = 0.0;
  std::size_t steps = 0;
  SvdResult bsvd;  // SVD of the projected bidiagonal matrix
  std::uint64_t restart_seed = options.seed;

  while (steps < max_steps) {
    const std::size_t j = steps;
    for (std::size_t i = 0; i < c; ++i) v_basis(i, j) = v[i];

    // u_j = A v_j - beta_{j-1} u_{j-1}
    op.apply(v, u);
    ++result.operator_applies;
    if (beta_prev != 0.0) {
      for (std::size_t i = 0; i < m_local; ++i) u[i] -= beta_prev * u_prev[i];
    }
    double alpha = std::sqrt(std::max(0.0, op.row_dot(u, u)));

    if (alpha <= 1e-13) {
      // Row-space breakdown: the image of the Krylov space lies inside the
      // captured left subspace, i.e. we hold an exact invariant pair. If we
      // already have `rank` directions the Ritz triplets are exact; otherwise
      // record a zero step and restart with a fresh direction if any remain.
      alphas.push_back(0.0);
      betas.push_back(0.0);
      ++steps;
      if (steps >= rank) {
        result.converged = true;
        break;
      }
      if (steps >= max_steps) break;
      std::vector<double> fresh = starting_vector(c, ++restart_seed);
      reorthogonalize(fresh, v_basis, steps);
      const double n = nrm2(fresh);
      if (n <= 1e-12) break;  // column space exhausted
      for (std::size_t i = 0; i < c; ++i) v[i] = fresh[i] / n;
      beta_prev = 0.0;
      continue;
    }
    for (std::size_t i = 0; i < m_local; ++i) u[i] /= alpha;
    alphas.push_back(alpha);

    // vhat = A^T u_j - alpha_j v_j, reorthogonalized against all of V.
    op.apply_transpose(u, vhat);
    ++result.operator_applies;
    for (std::size_t i = 0; i < c; ++i) vhat[i] -= alpha * v[i];
    reorthogonalize(vhat, v_basis, j + 1);
    double beta = nrm2(vhat);

    ++steps;

    // Convergence test on the projected bidiagonal matrix B (steps x steps):
    // residual of triplet i is beta * |last entry of left vector of B|.
    // Tested periodically (and whenever beta collapses or steps run out).
    const std::size_t interval = std::max<std::size_t>(1, options.check_interval);
    const bool do_check =
        steps >= rank && ((steps - rank) % interval == 0 ||
                          steps == max_steps || beta <= 1e-13);
    if (do_check) {
      Matrix b(steps, steps);
      for (std::size_t t = 0; t < steps; ++t) {
        b(t, t) = alphas[t];
        if (t + 1 < steps) b(t, t + 1) = betas.size() > t ? betas[t] : 0.0;
      }
      // betas currently holds beta_1..beta_{steps-1}; entry for this step is
      // appended below.
      bsvd = svd_jacobi(b);
      const double sigma_max = bsvd.s.empty() ? 0.0 : bsvd.s[0];
      bool all_converged = true;
      for (std::size_t i = 0; i < rank; ++i) {
        const double resid = beta * std::abs(bsvd.u(steps - 1, i));
        if (resid > options.tol * std::max(sigma_max, 1e-300)) {
          all_converged = false;
          break;
        }
      }
      if (all_converged) {
        result.converged = true;
        betas.push_back(beta);
        break;
      }
    }

    if (beta <= 1e-13) {
      // Invariant subspace. If we still need more directions, restart with a
      // fresh random vector orthogonal to V; otherwise the factorization is
      // exact and the convergence test above will pass next round.
      if (steps >= std::min(c, m_global)) {
        betas.push_back(0.0);
        break;
      }
      std::vector<double> fresh = starting_vector(c, ++restart_seed);
      reorthogonalize(fresh, v_basis, steps);
      const double n = nrm2(fresh);
      if (n <= 1e-12) {  // column space exhausted
        betas.push_back(0.0);
        break;
      }
      for (std::size_t i = 0; i < c; ++i) v[i] = fresh[i] / n;
      betas.push_back(0.0);
      beta_prev = 0.0;
      std::swap(u_prev, u);
      continue;
    }

    betas.push_back(beta);
    for (std::size_t i = 0; i < c; ++i) v[i] = vhat[i] / beta;
    beta_prev = beta;
    std::swap(u_prev, u);
  }

  result.steps = steps;
  HT_CHECK_MSG(steps >= rank, "Lanczos terminated with " << steps
                                << " steps < rank " << rank);

  // Final projected SVD (if the loop exited without a fresh factorization).
  if (bsvd.s.size() != steps) {
    Matrix b(steps, steps);
    for (std::size_t t = 0; t < steps; ++t) {
      b(t, t) = alphas[t];
      if (t + 1 < steps && t < betas.size()) b(t, t + 1) = betas[t];
    }
    bsvd = svd_jacobi(b);
  }

  // Recover left singular vectors: u_i = A (V q_i) / sigma_i.
  result.sigma.assign(bsvd.s.begin(), bsvd.s.begin() + static_cast<long>(rank));
  result.u.resize_zero(m_local, rank);
  std::vector<double> w(c), au(m_local);
  for (std::size_t i = 0; i < rank; ++i) {
    std::fill(w.begin(), w.end(), 0.0);
    for (std::size_t t = 0; t < steps; ++t) {
      const double q = bsvd.v(t, i);
      for (std::size_t r = 0; r < c; ++r) w[r] += v_basis(r, t) * q;
    }
    op.apply(w, au);
    ++result.operator_applies;
    const double s = result.sigma[i];
    if (s > 1e-300) {
      for (std::size_t r = 0; r < m_local; ++r) result.u(r, i) = au[r] / s;
    }
  }

  return result;
}

TrsvdResult gram_trsvd(const Matrix& a, std::size_t rank) {
  HT_CHECK_MSG(rank >= 1 && rank <= std::min(a.rows(), a.cols()),
               "invalid rank " << rank);
  const Matrix gram = gemm_tn(a, a);  // c x c
  const EigResult eig = eig_sym_jacobi(gram);

  TrsvdResult result;
  result.converged = true;
  result.steps = a.cols();
  result.sigma.resize(rank);
  Matrix w(a.cols(), rank);
  for (std::size_t j = 0; j < rank; ++j) {
    result.sigma[j] = std::sqrt(std::max(0.0, eig.w[j]));
    for (std::size_t i = 0; i < a.cols(); ++i) w(i, j) = eig.v(i, j);
  }
  result.u = gemm(a, w);
  for (std::size_t j = 0; j < rank; ++j) {
    const double s = result.sigma[j];
    if (s > 1e-300) {
      for (std::size_t i = 0; i < result.u.rows(); ++i) result.u(i, j) /= s;
    }
  }
  return result;
}

}  // namespace ht::la
