// Householder QR factorization and orthonormalization.
//
// Used to (re)orthonormalize Lanczos bases and HOOI factor initializations.
#pragma once

#include "la/matrix.hpp"

namespace ht::la {

/// Result of a thin QR factorization A = Q R with Q: m x k, R: k x k,
/// k = min(m, n).
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Thin Householder QR of an m x n matrix (m >= n required for thin form).
QrResult qr_thin(const Matrix& a);

/// Replace the columns of `a` (m x n, m >= n) with an orthonormal basis of
/// their span (thin Q of the QR factorization). Columns that are numerically
/// dependent are completed with canonical directions so the result always has
/// full column rank.
void orthonormalize_columns(Matrix& a);

}  // namespace ht::la
