// Symmetric eigensolver (cyclic Jacobi) for small dense matrices.
//
// Used by the Gram-based TRSVD cross-check (eigenpairs of Y^T Y, which is
// only prod-of-ranks sized) and by tests.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace ht::la {

/// Eigendecomposition A = V diag(w) V^T of a symmetric matrix, eigenvalues
/// sorted descending.
struct EigResult {
  std::vector<double> w;
  Matrix v;  // columns are eigenvectors
};

/// Cyclic Jacobi eigensolver; `a` must be symmetric. Intended for order up
/// to a few hundred.
EigResult eig_sym_jacobi(const Matrix& a);

}  // namespace ht::la
