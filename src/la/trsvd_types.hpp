// Options and result types shared by every TRSVD backend (scalar Lanczos,
// block Lanczos, randomized subspace iteration, Gram cross-check).
//
// Split out of lanczos.hpp so the blocked solvers do not depend on the
// scalar solver's header; lanczos.hpp re-exports both names for existing
// includers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace ht::la {

struct TrsvdOptions {
  /// Residual tolerance relative to the largest singular value.
  double tol = 1e-10;
  /// Hard cap on bidiagonalization steps (0 = automatic: min(c, 2*rank+20)).
  /// Block Lanczos counts *columns*, so b columns per block step draw from
  /// the same budget.
  std::size_t max_steps = 0;
  /// Steps between convergence tests. The test costs an SVD of the
  /// projected (steps x steps) matrix — running it every step would
  /// dominate the solve for small operators (and is replicated on every
  /// rank in the distributed setting).
  std::size_t check_interval = 4;
  /// Seed for the deterministic starting vector / sketch.
  std::uint64_t seed = 0x5eed5eedULL;

  // -- blocked-solver knobs --------------------------------------------------

  /// Block size b for the block Lanczos solver (0 = automatic:
  /// clamp(rank, 4, 16) — one block step then usually covers the target
  /// subspace). Every operator apply carries b row-space vectors at once —
  /// gemm instead of gemv, and one batched fold/expand round in the
  /// distributed operator instead of b latency-bound rounds.
  std::size_t block_size = 0;
  /// Oversampling p for the randomized range finder: the sketch carries
  /// rank + p columns (clamped to the operator's column size).
  std::size_t oversample = 8;
  /// Power (subspace) iterations q for the randomized range finder. Each
  /// adds one A^T-apply + one A-apply block round and sharpens the captured
  /// subspace by a factor (sigma_{l+1}/sigma_rank)^2. One iteration is
  /// enough at HOOI's ALS tolerances (the compact Y(n) spectra decay past
  /// the Tucker rank); raise for gapless spectra or tighter targets.
  std::size_t power_iterations = 1;
};

struct TrsvdResult {
  /// Leading left singular vectors, row_local_size() x rank.
  Matrix u;
  /// Leading singular values, descending.
  std::vector<double> sigma;
  /// Bidiagonalization steps performed (columns of the projected problem;
  /// the randomized solver reports its sketch width).
  std::size_t steps = 0;
  /// Whether all requested triplets met the residual tolerance. The
  /// randomized solver reports true: it runs a fixed budget and its
  /// accuracy is set by oversample/power_iterations, not by tol.
  bool converged = false;
  /// Number of operator applications (A and A^T combined); block applies
  /// count once per carried vector so backends are comparable.
  std::size_t operator_applies = 0;
};

}  // namespace ht::la
