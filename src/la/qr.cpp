#include "la/qr.hpp"

#include <cmath>
#include <vector>

#include "la/blas.hpp"
#include "util/error.hpp"

namespace ht::la {

namespace {

// Apply Householder reflector H = I - tau v v^T (v stored in col j of
// `house`, rows j..m-1, v[j] implicitly 1) to columns jc..n-1 of `a`.
void apply_reflector(Matrix& a, const std::vector<double>& v, double tau,
                     std::size_t j, std::size_t jc_begin) {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t c = jc_begin; c < n; ++c) {
    double s = a(j, c);
    for (std::size_t i = j + 1; i < m; ++i) s += v[i] * a(i, c);
    s *= tau;
    a(j, c) -= s;
    for (std::size_t i = j + 1; i < m; ++i) a(i, c) -= s * v[i];
  }
}

}  // namespace

QrResult qr_thin(const Matrix& a_in) {
  const std::size_t m = a_in.rows(), n = a_in.cols();
  HT_CHECK_MSG(m >= n, "qr_thin requires rows >= cols, got " << m << "x" << n);

  Matrix a = a_in;  // working copy, becomes R in upper triangle
  std::vector<std::vector<double>> vs(n);
  std::vector<double> taus(n, 0.0);

  for (std::size_t j = 0; j < n; ++j) {
    // Build reflector for column j, rows j..m-1.
    double norm2 = 0.0;
    for (std::size_t i = j; i < m; ++i) norm2 += a(i, j) * a(i, j);
    const double norm = std::sqrt(norm2);
    std::vector<double> v(m, 0.0);
    double tau = 0.0;
    if (norm > 0.0) {
      const double alpha = a(j, j);
      const double beta = alpha >= 0 ? -norm : norm;
      const double denom = alpha - beta;
      if (std::abs(denom) > 0.0) {
        for (std::size_t i = j + 1; i < m; ++i) v[i] = a(i, j) / denom;
        double vtv = 1.0;
        for (std::size_t i = j + 1; i < m; ++i) vtv += v[i] * v[i];
        tau = 2.0 / vtv;
        apply_reflector(a, v, tau, j, j);
      }
    }
    vs[j] = std::move(v);
    taus[j] = tau;
  }

  QrResult out;
  out.r.resize_zero(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out.r(i, j) = a(i, j);
  }

  // Accumulate Q by applying reflectors to the first n columns of I.
  Matrix q(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (std::size_t j = n; j-- > 0;) {
    if (taus[j] != 0.0) apply_reflector(q, vs[j], taus[j], j, 0);
  }
  out.q = std::move(q);
  return out;
}

void orthonormalize_columns(Matrix& a) {
  const std::size_t m = a.rows(), n = a.cols();
  HT_CHECK_MSG(m >= n, "orthonormalize requires rows >= cols");

  // Modified Gram-Schmidt with re-orthogonalization pass; rank-deficient
  // columns are replaced by canonical basis vectors orthogonalized in turn.
  for (std::size_t j = 0; j < n; ++j) {
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t k = 0; k < j; ++k) {
        double s = 0.0;
        for (std::size_t i = 0; i < m; ++i) s += a(i, k) * a(i, j);
        for (std::size_t i = 0; i < m; ++i) a(i, j) -= s * a(i, k);
      }
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += a(i, j) * a(i, j);
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (std::size_t i = 0; i < m; ++i) a(i, j) /= norm;
      continue;
    }
    // Degenerate column: try canonical vectors until one survives.
    bool replaced = false;
    for (std::size_t e = 0; e < m && !replaced; ++e) {
      for (std::size_t i = 0; i < m; ++i) a(i, j) = (i == e) ? 1.0 : 0.0;
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t k = 0; k < j; ++k) {
          double s = 0.0;
          for (std::size_t i = 0; i < m; ++i) s += a(i, k) * a(i, j);
          for (std::size_t i = 0; i < m; ++i) a(i, j) -= s * a(i, k);
        }
      }
      double n2 = 0.0;
      for (std::size_t i = 0; i < m; ++i) n2 += a(i, j) * a(i, j);
      if (n2 > 1e-8) {
        const double inv = 1.0 / std::sqrt(n2);
        for (std::size_t i = 0; i < m; ++i) a(i, j) *= inv;
        replaced = true;
      }
    }
    HT_CHECK_MSG(replaced, "could not complete orthonormal basis");
  }
}

}  // namespace ht::la
