#include "la/blas.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/error.hpp"

namespace ht::la {

namespace {
std::atomic<bool> g_threaded{true};

// Rows below this threshold are not worth an OpenMP region.
constexpr std::size_t kParallelRowThreshold = 256;

// Entries below this threshold are not worth an OpenMP region for the
// level-1 kernels (one multiply-add per entry; the fork/join would
// dominate). Column-space vectors (prod-of-ranks sized) stay serial,
// row-space vectors (one entry per tensor slice) go parallel.
constexpr std::size_t kParallelVecThreshold = 16384;
}  // namespace

void set_blas_threading(bool enabled) { g_threaded.store(enabled); }
bool blas_threading() { return g_threaded.load(); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  HT_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
#ifdef _OPENMP
  if (g_threaded.load() && n >= kParallelVecThreshold) {
#pragma omp parallel for simd schedule(static)
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
#endif
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double dot(std::span<const double> x, std::span<const double> y) {
  HT_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  double s = 0.0;
#ifdef _OPENMP
  if (g_threaded.load() && n >= kParallelVecThreshold) {
#pragma omp parallel for simd reduction(+ : s) schedule(static)
    for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
    return s;
  }
#endif
#pragma omp simd reduction(+ : s)
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double nrm2(std::span<const double> x) {
  const std::size_t n = x.size();
  double s = 0.0;
#ifdef _OPENMP
  if (g_threaded.load() && n >= kParallelVecThreshold) {
#pragma omp parallel for simd reduction(+ : s) schedule(static)
    for (std::size_t i = 0; i < n; ++i) s += x[i] * x[i];
    return std::sqrt(s);
  }
#endif
#pragma omp simd reduction(+ : s)
  for (std::size_t i = 0; i < n; ++i) s += x[i] * x[i];
  return std::sqrt(s);
}

void scal(double alpha, std::span<double> x) {
  const std::size_t n = x.size();
#ifdef _OPENMP
  if (g_threaded.load() && n >= kParallelVecThreshold) {
#pragma omp parallel for simd schedule(static)
    for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
    return;
  }
#endif
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  HT_CHECK(x.size() == a.cols());
  HT_CHECK(y.size() == a.rows());
  const std::size_t m = a.rows();
  const bool par = g_threaded.load() && m >= kParallelRowThreshold;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
}

// Shared tail of gemv_t / gemm_tn: per-thread partial buffers of `width`
// entries in one arena, followed by a parallel strided reduction over the
// output entries. Replaces the old `omp critical` accumulation, which
// serialized O(threads * width) work behind a lock at high thread counts;
// the reduction sums thread partials in ascending thread order, so the
// result is deterministic for a fixed thread count.
#ifdef _OPENMP
template <typename FillPartial>
void reduce_over_threads(std::size_t width, std::span<double> out,
                         FillPartial&& fill) {
  std::vector<double> arena;
  int nthreads = 1;
#pragma omp parallel
  {
#pragma omp single
    {
      nthreads = omp_get_num_threads();
      arena.assign(static_cast<std::size_t>(nthreads) * width, 0.0);
    }
    double* local =
        arena.data() + static_cast<std::size_t>(omp_get_thread_num()) * width;
    fill(local);
    // fill's worksharing loop ends with an implicit barrier, so every
    // thread's partial is complete before the reduction below starts.
#pragma omp for schedule(static)
    for (std::size_t j = 0; j < width; ++j) {
      double s = 0.0;
      for (int t = 0; t < nthreads; ++t) {
        s += arena[static_cast<std::size_t>(t) * width + j];
      }
      out[j] = s;
    }
  }
}
#endif

void gemv_t(const Matrix& a, std::span<const double> x, std::span<double> y) {
  HT_CHECK(x.size() == a.rows());
  HT_CHECK(y.size() == a.cols());
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
#ifdef _OPENMP
  const bool par = g_threaded.load() && m >= kParallelRowThreshold && n >= 8;
  if (par) {
    reduce_over_threads(n, y, [&](double* local) {
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < m; ++i) {
        const auto row = a.row(i);
        const double xi = x[i];
        for (std::size_t j = 0; j < n; ++j) local[j] += xi * row[j];
      }
    });
    return;
  }
#endif
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = a.row(i);
    const double xi = x[i];
    for (std::size_t j = 0; j < n; ++j) y[j] += xi * row[j];
  }
}

void gemm_into(const Matrix& a, const Matrix& b, Matrix& c) {
  HT_CHECK_MSG(a.cols() == b.rows(), "gemm shape mismatch: " << a.rows() << "x"
                                       << a.cols() << " * " << b.rows() << "x"
                                       << b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.resize(m, n);
  const bool par = g_threaded.load() && m >= kParallelRowThreshold;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.data() + i * n;
    const double* ai = a.data() + i * k;
    std::fill(ci, ci + n, 0.0);
    for (std::size_t l = 0; l < k; ++l) {
      const double ail = ai[l];
      const double* bl = b.data() + l * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_into(a, b, c);
  return c;
}

void gemm_tn_into(const Matrix& a, const Matrix& b, Matrix& c) {
  HT_CHECK_MSG(a.rows() == b.rows(), "gemm_tn shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.resize(k, n);
#ifdef _OPENMP
  const bool par = g_threaded.load() && m >= kParallelRowThreshold;
  if (par) {
    reduce_over_threads(k * n, c.flat(), [&](double* local) {
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < m; ++i) {
        const double* ai = a.data() + i * k;
        const double* bi = b.data() + i * n;
        for (std::size_t l = 0; l < k; ++l) {
          const double ail = ai[l];
          double* cl = local + l * n;
          for (std::size_t j = 0; j < n; ++j) cl[j] += ail * bi[j];
        }
      }
    });
    return;
  }
#endif
  c.set_zero();
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a.data() + i * k;
    const double* bi = b.data() + i * n;
    for (std::size_t l = 0; l < k; ++l) {
      const double ail = ai[l];
      double* cl = c.data() + l * n;
      for (std::size_t j = 0; j < n; ++j) cl[j] += ail * bi[j];
    }
  }
}

Matrix gemm_tn(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_tn_into(a, b, c);
  return c;
}

Matrix gemm_nt(const Matrix& a, const Matrix& b) {
  HT_CHECK_MSG(a.cols() == b.cols(), "gemm_nt shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  const bool par = g_threaded.load() && m >= kParallelRowThreshold;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a.data() + i * k;
    double* ci = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b.data() + j * k;
      double s = 0.0;
      for (std::size_t l = 0; l < k; ++l) s += ai[l] * bj[l];
      ci[j] = s;
    }
  }
  return c;
}

}  // namespace ht::la
