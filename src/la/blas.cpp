#include "la/blas.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace ht::la {

namespace {
std::atomic<bool> g_threaded{true};

// Rows below this threshold are not worth an OpenMP region.
constexpr std::size_t kParallelRowThreshold = 256;
}  // namespace

void set_blas_threading(bool enabled) { g_threaded.store(enabled); }
bool blas_threading() { return g_threaded.load(); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  HT_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(std::span<const double> x, std::span<const double> y) {
  HT_CHECK(x.size() == y.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double nrm2(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  HT_CHECK(x.size() == a.cols());
  HT_CHECK(y.size() == a.rows());
  const std::size_t m = a.rows();
  const bool par = g_threaded.load() && m >= kParallelRowThreshold;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
}

void gemv_t(const Matrix& a, std::span<const double> x, std::span<double> y) {
  HT_CHECK(x.size() == a.rows());
  HT_CHECK(y.size() == a.cols());
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const bool par = g_threaded.load() && m >= kParallelRowThreshold && n >= 8;
  if (!par) {
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto row = a.row(i);
      const double xi = x[i];
      for (std::size_t j = 0; j < n; ++j) y[j] += xi * row[j];
    }
    return;
  }
  std::fill(y.begin(), y.end(), 0.0);
#pragma omp parallel
  {
    std::vector<double> local(n, 0.0);
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < m; ++i) {
      const auto row = a.row(i);
      const double xi = x[i];
      for (std::size_t j = 0; j < n; ++j) local[j] += xi * row[j];
    }
#pragma omp critical(ht_gemv_t_accum)
    for (std::size_t j = 0; j < n; ++j) y[j] += local[j];
  }
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  HT_CHECK_MSG(a.cols() == b.rows(), "gemm shape mismatch: " << a.rows() << "x"
                                       << a.cols() << " * " << b.rows() << "x"
                                       << b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  const bool par = g_threaded.load() && m >= kParallelRowThreshold;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.data() + i * n;
    const double* ai = a.data() + i * k;
    for (std::size_t l = 0; l < k; ++l) {
      const double ail = ai[l];
      const double* bl = b.data() + l * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
  return c;
}

Matrix gemm_tn(const Matrix& a, const Matrix& b) {
  HT_CHECK_MSG(a.rows() == b.rows(), "gemm_tn shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(k, n);
  const bool par = g_threaded.load() && m >= kParallelRowThreshold;
  if (!par) {
    for (std::size_t i = 0; i < m; ++i) {
      const double* ai = a.data() + i * k;
      const double* bi = b.data() + i * n;
      for (std::size_t l = 0; l < k; ++l) {
        const double ail = ai[l];
        double* cl = c.data() + l * n;
        for (std::size_t j = 0; j < n; ++j) cl[j] += ail * bi[j];
      }
    }
    return c;
  }
#pragma omp parallel
  {
    Matrix local(k, n);
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < m; ++i) {
      const double* ai = a.data() + i * k;
      const double* bi = b.data() + i * n;
      for (std::size_t l = 0; l < k; ++l) {
        const double ail = ai[l];
        double* cl = local.data() + l * n;
        for (std::size_t j = 0; j < n; ++j) cl[j] += ail * bi[j];
      }
    }
#pragma omp critical(ht_gemm_tn_accum)
    {
      double* cd = c.data();
      const double* ld = local.data();
      for (std::size_t idx = 0; idx < k * n; ++idx) cd[idx] += ld[idx];
    }
  }
  return c;
}

Matrix gemm_nt(const Matrix& a, const Matrix& b) {
  HT_CHECK_MSG(a.cols() == b.cols(), "gemm_nt shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  const bool par = g_threaded.load() && m >= kParallelRowThreshold;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a.data() + i * k;
    double* ci = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b.data() + j * k;
      double s = 0.0;
      for (std::size_t l = 0; l < k; ++l) s += ai[l] * bj[l];
      ci[j] = s;
    }
  }
  return c;
}

}  // namespace ht::la
