// Randomized subspace-iteration TRSVD (Halko–Martinsson–Tropp range finder
// with Rayleigh–Ritz extraction).
//
// Designed for the HOOI regime where the scalar Lanczos solver is memory
// bound: A is m x c with m huge (tensor mode size) and c small (prod of
// Tucker ranks), and every Lanczos step streams all of A through a gemv.
// The randomized solver instead makes 2q+2 *block* passes of width
// l = rank + oversample:
//   U = orth(A Omega)                      (seeded Gaussian sketch Omega)
//   repeat q times:  U = orth(A orth(A^T U))   (power iteration)
//   B = A^T U;  SVD(B^T) = W S V^T;  left vectors = U W, sigma = S.
// Every pass is a gemm (or one batched fold/expand round in the
// distributed operator), so the flops-per-byte ratio rises by ~l and the
// total memory traffic falls by steps/(2q+2) versus scalar Lanczos.
//
// Accuracy comes from the budget, not from an iteration-to-tolerance loop:
// the captured subspace error decays as (sigma_{l+1}/sigma_rank)^(2q+1).
// With l >= numerical rank the result is exact; HOOI's loose ALS tolerances
// (1e-7) are reached with the default q = 2, p = 8. Deterministic for a
// fixed seed, and identical on every rank of a distributed operator (the
// sketch is column-space data, which is replicated).
#pragma once

#include <cstddef>

#include "la/linear_operator.hpp"
#include "la/trsvd_types.hpp"

namespace ht::la {

/// Leading `rank` singular triplets of `op` by randomized subspace
/// iteration. rank must satisfy 1 <= rank <= min(row_global_size, col_size).
/// Uses options.seed / options.oversample / options.power_iterations;
/// tol and the step caps are not consulted (fixed budget).
TrsvdResult randomized_trsvd(TrsvdOperator& op, std::size_t rank,
                             const TrsvdOptions& options = {});

}  // namespace ht::la
