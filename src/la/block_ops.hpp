// Block-vector primitives shared by the blocked TRSVD solvers (randomized
// subspace iteration and block Lanczos bidiagonalization).
//
// Row-space blocks (row_local x b, one column per vector) live distributed
// across ranks: their Gram matrices must come from TrsvdOperator::row_gram,
// which counts every global row once and allreduces, so orthonormalization
// is globally consistent and deterministic. Column-space blocks (c x b) are
// replicated and use a local Gram.
//
// Orthonormalization is "eig-QR": G = U^T U is eigendecomposed and U is
// multiplied by V diag(lambda^{-1/2}) with eigenvalues descending, so the
// leading `kept` columns form an orthonormal basis of span(U) and
// numerically dependent directions become trailing zero columns instead of
// amplified noise. Two passes give CholQR2-grade orthonormality; the
// solvers recover exact projected matrices through explicit cross-Grams, so
// the factorization itself never needs a triangular R.
#pragma once

#include <cstddef>

#include "la/linear_operator.hpp"
#include "la/matrix.hpp"

namespace ht::la {

/// Orthonormalize the columns of the row-space block `u` in place using the
/// operator's global Gram. Returns the number of kept (nonzero) columns;
/// dropped directions are trailing zero columns. `scratch` is a reusable
/// buffer (swapped with u internally).
std::size_t orthonormalize_rowspace_block(TrsvdOperator& op, Matrix& u,
                                          Matrix& scratch, int passes = 2);

/// Same for a replicated column-space block (local Gram via gemm_tn).
std::size_t orthonormalize_colspace_block(Matrix& v, Matrix& scratch,
                                          int passes = 2);

/// Two-pass blocked classical Gram-Schmidt: remove from every column of `w`
/// its projection onto the span of the rows of `basis` (each row is one
/// basis vector of length w.rows()). Both passes run through gemm/gemm_tn,
/// so the work parallelizes over basis columns in the OpenMP BLAS layer.
void reorthogonalize_block(Matrix& w, const Matrix& basis);

}  // namespace ht::la
