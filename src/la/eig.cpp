#include "la/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace ht::la {

EigResult eig_sym_jacobi(const Matrix& a_in) {
  HT_CHECK_MSG(a_in.rows() == a_in.cols(), "eig_sym requires a square matrix");
  const std::size_t n = a_in.rows();
  Matrix a = a_in;
  Matrix v = Matrix::identity(n);

  const int max_sweeps = 64;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-26 * std::max(1.0, a.frobenius_norm())) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a(i, p), aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = a(p, i), aqi = a(q, i);
          a(p, i) = c * api - s * aqi;
          a(q, i) = s * api + c * aqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = a(i, i);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return w[x] > w[y]; });

  EigResult out;
  out.w.resize(n);
  out.v.resize_zero(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.w[j] = w[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.v(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace ht::la
