#include "la/block_ops.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "la/blas.hpp"
#include "la/eig.hpp"

namespace ht::la {

namespace {

// Relative eigenvalue cutoff below which a Gram direction is treated as
// numerically dependent. Eigenvalues are squared column norms, so this is a
// ~1e-12 relative column-norm threshold — the same scale the scalar Lanczos
// solver uses for breakdown detection.
constexpr double kGramDropRel = 1e-24;

// u <- u * V diag(lambda^{-1/2}) for the eigenpairs of `gram` (descending),
// zeroing directions below the drop threshold. Returns kept count.
std::size_t whiten_from_gram(Matrix& u, const Matrix& gram, Matrix& scratch) {
  const EigResult eig = eig_sym_jacobi(gram);
  const std::size_t b = gram.rows();
  const double lmax = eig.w.empty() ? 0.0 : std::max(0.0, eig.w[0]);
  Matrix mix(b, b);  // zero-initialized; dropped columns stay zero
  std::size_t kept = 0;
  for (std::size_t j = 0; j < b; ++j) {
    const double lam = eig.w[j];
    if (lam <= 0.0 || lam <= kGramDropRel * lmax) continue;
    const double inv = 1.0 / std::sqrt(lam);
    for (std::size_t i = 0; i < b; ++i) mix(i, j) = eig.v(i, j) * inv;
    ++kept;
  }
  gemm_into(u, mix, scratch);
  std::swap(u, scratch);
  return kept;
}

}  // namespace

std::size_t orthonormalize_rowspace_block(TrsvdOperator& op, Matrix& u,
                                          Matrix& scratch, int passes) {
  Matrix gram;
  std::size_t kept = u.cols();
  for (int pass = 0; pass < passes; ++pass) {
    op.row_gram(u, u, gram);
    kept = whiten_from_gram(u, gram, scratch);
    if (kept == 0) break;
  }
  return kept;
}

std::size_t orthonormalize_colspace_block(Matrix& v, Matrix& scratch,
                                          int passes) {
  Matrix gram;
  std::size_t kept = v.cols();
  for (int pass = 0; pass < passes; ++pass) {
    gemm_tn_into(v, v, gram);
    kept = whiten_from_gram(v, gram, scratch);
    if (kept == 0) break;
  }
  return kept;
}

void reorthogonalize_block(Matrix& w, const Matrix& basis) {
  if (basis.rows() == 0 || w.cols() == 0) return;
  Matrix coeff, correction;
  for (int pass = 0; pass < 2; ++pass) {
    gemm_into(basis, w, coeff);          // basis_rows x b projections
    gemm_tn_into(basis, coeff, correction);  // span-of-basis component
    axpy(-1.0, correction.flat(), w.flat());
  }
}

}  // namespace ht::la
