// Row-major dense matrix.
//
// Factor matrices U_n (I_n x R_n) and matricized TTMc outputs Y(n) are all
// tall-and-skinny row-major matrices; the nonzero-based TTMc kernel works on
// contiguous rows, which is why row-major is the only layout provided.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace ht::la {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols initialized from a flat row-major buffer.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    HT_CHECK_MSG(data_.size() == rows_ * cols_,
                 "data size " << data_.size() << " != " << rows_ << "x"
                              << cols_);
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] const double& operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Contiguous view of row i.
  [[nodiscard]] std::span<double> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  [[nodiscard]] std::span<double> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> flat() const {
    return {data_.data(), data_.size()};
  }

  void set_zero();

  /// Resize to rows x cols; contents are zeroed.
  void resize_zero(std::size_t rows, std::size_t cols);

  /// Resize to rows x cols preserving the underlying capacity; contents are
  /// unspecified afterwards (no zeroing, no reshaped-element preservation).
  /// Hot-path callers that overwrite every row — the TTMc kernels and the
  /// dimension-tree scheduler reuse one Y(n) buffer across modes whose
  /// widths differ — use this to avoid a realloc+memset per mode.
  void resize(std::size_t rows, std::size_t cols);

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  /// Elementwise comparison within absolute tolerance.
  [[nodiscard]] bool approx_equal(const Matrix& other, double tol) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ht::la
