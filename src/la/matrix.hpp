// Row-major dense matrix.
//
// Factor matrices U_n (I_n x R_n) and matricized TTMc outputs Y(n) are all
// tall-and-skinny row-major matrices; the nonzero-based TTMc kernel works on
// contiguous rows, which is why row-major is the only layout provided.
//
// The buffer is held through storage::Span<double>: heap-owned by default
// (exactly the std::vector semantics this class always had), or a read-only
// view into a shared storage::Arena — the state a factor matrix loaded from
// an mmap'd model bundle is in. Reads work identically in both states; the
// mutating accessors (non-const operator()/row()/data()/flat(), set_zero,
// resize*) require the owned state and throw ht::Error on a view —
// ensure_owned() converts a view into an owned deep copy first. Element and
// row access go through pointers cached by refresh(), so the hot kernels
// pay nothing for the indirection.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "storage/span.hpp"
#include "util/error.hpp"

namespace ht::la {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols),
        store_(std::vector<double>(rows * cols, 0.0)) {
    refresh();
  }

  /// rows x cols initialized from a flat row-major buffer.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), store_(std::move(data)) {
    HT_CHECK_MSG(store_.size() == rows_ * cols_,
                 "data size " << store_.size() << " != " << rows_ << "x"
                              << cols_);
    refresh();
  }

  /// rows x cols over `data` inside `arena` (read-only, zero-copy); the
  /// arena is kept alive for the matrix's lifetime.
  static Matrix view(std::size_t rows, std::size_t cols, const double* data,
                     storage::ArenaPtr arena);

  Matrix(const Matrix& o) : rows_(o.rows_), cols_(o.cols_), store_(o.store_) {
    refresh();
  }
  Matrix(Matrix&& o) noexcept
      : rows_(o.rows_), cols_(o.cols_), store_(std::move(o.store_)) {
    refresh();
    o.rows_ = o.cols_ = 0;
    o.refresh();
  }
  Matrix& operator=(const Matrix& o) {
    if (this != &o) {
      rows_ = o.rows_;
      cols_ = o.cols_;
      store_ = o.store_;
      refresh();
    }
    return *this;
  }
  Matrix& operator=(Matrix&& o) noexcept {
    if (this != &o) {
      rows_ = o.rows_;
      cols_ = o.cols_;
      store_ = std::move(o.store_);
      refresh();
      o.rows_ = o.cols_ = 0;
      o.refresh();
    }
    return *this;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// True when the buffer is a read-only view into a shared arena.
  [[nodiscard]] bool is_view() const { return store_.is_view(); }
  /// Deep-copy a view into owned (mutable) storage; no-op when owned.
  void ensure_owned() {
    store_.detach();
    refresh();
  }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    return mut_[i * cols_ + j];
  }
  [[nodiscard]] const double& operator()(std::size_t i, std::size_t j) const {
    return ptr_[i * cols_ + j];
  }

  /// Contiguous view of row i.
  [[nodiscard]] std::span<double> row(std::size_t i) {
    return {mut_ + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {ptr_ + i * cols_, cols_};
  }

  [[nodiscard]] double* data() {
    HT_CHECK_MSG(!is_view(), "cannot mutate a view matrix");
    return mut_;
  }
  [[nodiscard]] const double* data() const { return ptr_; }

  [[nodiscard]] std::span<double> flat() {
    HT_CHECK_MSG(!is_view(), "cannot mutate a view matrix");
    return {mut_, size()};
  }
  [[nodiscard]] std::span<const double> flat() const { return {ptr_, size()}; }

  void set_zero();

  /// Resize to rows x cols; contents are zeroed.
  void resize_zero(std::size_t rows, std::size_t cols);

  /// Resize to rows x cols preserving the underlying capacity; contents are
  /// unspecified afterwards (no zeroing, no reshaped-element preservation).
  /// Hot-path callers that overwrite every row — the TTMc kernels and the
  /// dimension-tree scheduler reuse one Y(n) buffer across modes whose
  /// widths differ — use this to avoid a realloc+memset per mode.
  void resize(std::size_t rows, std::size_t cols);

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  /// Elementwise comparison within absolute tolerance.
  [[nodiscard]] bool approx_equal(const Matrix& other, double tol) const;

 private:
  /// Re-derive the cached element pointers from the store. Every operation
  /// that can move or re-seat the buffer (construction, assignment, resize,
  /// detach) ends with a call to this; nothing else may touch the store's
  /// vector, so the cache can never go stale. mut_ is null for views: the
  /// unchecked hot accessors (operator(), row()) fault immediately instead
  /// of silently writing through a read-only mapping.
  void refresh() {
    ptr_ = store_.data();
    mut_ = store_.is_view() ? nullptr : store_.vec().data();
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  storage::Span<double> store_;
  const double* ptr_ = nullptr;
  double* mut_ = nullptr;
};

}  // namespace ht::la
