#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace ht::la {

SvdResult svd_jacobi(const Matrix& a_in) {
  // One-sided Jacobi on columns: orthogonalize pairs of columns of W = A
  // (work on A^T if m < n so the rotated dimension is the long one).
  const bool transposed = a_in.rows() < a_in.cols();
  Matrix w = transposed ? a_in.transposed() : a_in;
  const std::size_t m = w.rows(), n = w.cols();

  Matrix v = Matrix::identity(n);

  const double eps = 1e-14;
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += w(i, p) * w(i, p);
          aqq += w(i, q) * w(i, q);
          apq += w(i, p) * w(i, q);
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq)) continue;
        off = std::max(off, std::abs(apq) / std::sqrt(app * aqq + 1e-300));

        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wip = w(i, p), wiq = w(i, q);
          w(i, p) = c * wip - s * wiq;
          w(i, q) = s * wip + c * wiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
    if (off < 1e-13) break;
  }

  // Column norms are singular values; normalize to get U.
  std::vector<double> s(n, 0.0);
  Matrix u(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += w(i, j) * w(i, j);
    norm = std::sqrt(norm);
    s[j] = norm;
    if (norm > 1e-300) {
      for (std::size_t i = 0; i < m; ++i) u(i, j) = w(i, j) / norm;
    } else {
      // Zero singular value: leave U column as zero (caller may not need it).
      for (std::size_t i = 0; i < m; ++i) u(i, j) = 0.0;
    }
  }

  // Sort descending by singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return s[x] > s[y]; });
  Matrix us(m, n), vs(n, n);
  std::vector<double> ss(n);
  for (std::size_t j = 0; j < n; ++j) {
    ss[j] = s[order[j]];
    for (std::size_t i = 0; i < m; ++i) us(i, j) = u(i, order[j]);
    for (std::size_t i = 0; i < n; ++i) vs(i, j) = v(i, order[j]);
  }

  SvdResult out;
  if (transposed) {
    // A = (W^T); W = A^T = U_w S V_w^T  =>  A = V_w S U_w^T.
    out.u = std::move(vs);
    out.v = std::move(us);
  } else {
    out.u = std::move(us);
    out.v = std::move(vs);
  }
  out.s = std::move(ss);
  return out;
}

SvdResult svd_truncated_dense(const Matrix& a, std::size_t rank) {
  HT_CHECK_MSG(rank >= 1 && rank <= std::min(a.rows(), a.cols()),
               "invalid truncation rank " << rank << " for " << a.rows() << "x"
                                          << a.cols());
  SvdResult full = svd_jacobi(a);
  SvdResult out;
  out.u.resize_zero(a.rows(), rank);
  out.v.resize_zero(a.cols(), rank);
  out.s.assign(full.s.begin(), full.s.begin() + static_cast<long>(rank));
  for (std::size_t j = 0; j < rank; ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) out.u(i, j) = full.u(i, j);
    for (std::size_t i = 0; i < a.cols(); ++i) out.v(i, j) = full.v(i, j);
  }
  return out;
}

}  // namespace ht::la
