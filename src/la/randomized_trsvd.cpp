#include "la/randomized_trsvd.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "la/block_ops.hpp"
#include "la/svd.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace ht::la {

TrsvdResult randomized_trsvd(TrsvdOperator& op, std::size_t rank,
                             const TrsvdOptions& options) {
  const std::size_t m_global = op.row_global_size();
  const std::size_t c = op.col_size();
  HT_CHECK_MSG(rank >= 1, "rank must be positive");
  HT_CHECK_MSG(rank <= std::min(m_global, c),
               "rank " << rank << " exceeds min(" << m_global << ", " << c
                       << ")");

  // Sketch width: oversampling improves the captured subspace; clamping to
  // c makes the range finder exact whenever the sketch spans all of A's
  // column space. The max() guards rank + oversample overflowing size_t —
  // the sketch must never be narrower than the requested rank.
  const std::size_t l =
      std::min(c, std::max(rank + options.oversample, rank));

  TrsvdResult result;

  // Seeded Gaussian sketch, identical on every rank (column-space data).
  Matrix omega(c, l);
  {
    Rng rng(options.seed);
    for (auto& x : omega.flat()) x = rng.normal();
  }

  Matrix u, z, scratch;
  op.apply_block(omega, u);
  result.operator_applies += l;
  orthonormalize_rowspace_block(op, u, scratch);

  for (std::size_t q = 0; q < options.power_iterations; ++q) {
    op.apply_transpose_block(u, z);
    result.operator_applies += l;
    orthonormalize_colspace_block(z, scratch);
    op.apply_block(z, u);
    result.operator_applies += l;
    orthonormalize_rowspace_block(op, u, scratch);
  }

  // Rayleigh–Ritz on the sketched matrix: B = A^T U is c x l and small, so
  // its dense SVD is cheap and replicated-deterministic. B^T = U^T A is the
  // projection of A onto the captured subspace; its left singular vectors
  // (the right ones of B) rotate U into the Ritz approximations of A's
  // leading left singular vectors.
  op.apply_transpose_block(u, z);
  result.operator_applies += l;
  const SvdResult proj = svd_jacobi(z);

  result.sigma.assign(proj.s.begin(),
                      proj.s.begin() + static_cast<long>(rank));
  Matrix rotate(l, rank);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = 0; j < rank; ++j) rotate(i, j) = proj.v(i, j);
  }
  gemm_into(u, rotate, result.u);

  // Mirror the scalar solver: directions with (numerically) vanished
  // singular values are reported as zero columns, and the caller's scatter
  // path completes them.
  for (std::size_t j = 0; j < rank; ++j) {
    if (result.sigma[j] <= 1e-300) {
      for (std::size_t i = 0; i < result.u.rows(); ++i) result.u(i, j) = 0.0;
    }
  }

  result.steps = l;
  result.converged = true;  // fixed budget; accuracy set by l and q
  return result;
}

}  // namespace ht::la
