// Hand-written BLAS-like kernels (substitute for the paper's ESSL).
//
// Only the shapes HOOI needs are provided: tall-skinny GEMM/GEMV with small
// inner dimensions (ranks R <= ~16, Kronecker widths <= ~10^3). gemm blocks
// for cache and parallelizes over rows with OpenMP when profitable.
#pragma once

#include <cstddef>
#include <span>

#include "la/matrix.hpp"

namespace ht::la {

/// y += alpha * x (vector axpy).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Dot product.
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm.
double nrm2(std::span<const double> x);

/// x *= alpha.
void scal(double alpha, std::span<double> x);

// The level-1 kernels above parallelize (and SIMD-ize) over entries once
// the vector crosses an OpenMP-worthwhile size; they sit on the Lanczos /
// orthogonalization hot path where row-space vectors have one entry per
// tensor slice.

/// y = A * x (A: m x n row-major).
void gemv(const Matrix& a, std::span<const double> x, std::span<double> y);

/// y = A^T * x (A: m x n row-major; y has size n).
void gemv_t(const Matrix& a, std::span<const double> x, std::span<double> y);

/// C = A * B.
Matrix gemm(const Matrix& a, const Matrix& b);

/// C = A * B into a caller-owned output (resized, capacity preserved). The
/// blocked TRSVD solvers call this once per block apply, reusing one buffer
/// across iterations.
void gemm_into(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T * B (A: m x k -> C: k x n). The HOOI core-tensor step
/// G(N) = U_N^T Y(N) is this shape.
Matrix gemm_tn(const Matrix& a, const Matrix& b);

/// C = A^T * B into a caller-owned output (resized, capacity preserved).
void gemm_tn_into(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B^T.
Matrix gemm_nt(const Matrix& a, const Matrix& b);

/// Enable/disable OpenMP inside gemm/gemv (tests exercise both paths).
void set_blas_threading(bool enabled);
bool blas_threading();

}  // namespace ht::la
