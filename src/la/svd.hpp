// Dense SVD via one-sided Jacobi rotations.
//
// Only used on small matrices: the k x k projected bidiagonal problem inside
// the Lanczos TRSVD, reference checks in tests, and the Gram-based TRSVD
// cross-check. Accuracy over speed.
#pragma once

#include "la/matrix.hpp"

#include <vector>

namespace ht::la {

/// Thin SVD A = U diag(s) V^T with U: m x k, V: n x k, k = min(m, n),
/// singular values sorted descending.
struct SvdResult {
  Matrix u;
  std::vector<double> s;
  Matrix v;
};

/// One-sided Jacobi SVD. Intended for min(m, n) up to a few hundred.
SvdResult svd_jacobi(const Matrix& a);

/// Leading `rank` left singular vectors/values of A (m x n) computed by
/// svd_jacobi; rank must be <= min(m, n). Convenience for tests/baselines.
SvdResult svd_truncated_dense(const Matrix& a, std::size_t rank);

}  // namespace ht::la
