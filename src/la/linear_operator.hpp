// Matrix-free operator interface for the truncated SVD solvers.
//
// This is the seam that makes the paper's distributed TRSVD work: the
// Lanczos bidiagonalization below only ever touches the matricized TTMc
// result Y(n) through
//   u = A v        (MxV)
//   v = A^T u      (MTxV)
//   dot(u_a, u_b)  (row-space inner product)
// In shared memory these are plain dense kernels; in the fine-grain
// distributed setting apply() folds partial row sums to row owners, and
// apply_transpose() expands owner entries back to replicas and reduces the
// (small, replicated) column-space vector — without ever assembling Y(n).
//
// The blocked solvers (block Lanczos, randomized subspace iteration) use
// the *_block entry points, which carry b vectors per application: the
// dense operator turns the bandwidth-bound gemv stream into gemm, and the
// distributed operator batches the fold/expand exchange into one message
// round per block instead of b latency-bound rounds. The defaults loop the
// scalar applies, so every operator supports the blocked solvers; overriding
// is purely a performance contract (the backend-equivalence tests pin
// block apply == repeated scalar apply).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace ht::la {

class TrsvdOperator {
 public:
  virtual ~TrsvdOperator() = default;

  /// Length of (local part of) row-space vectors u.
  [[nodiscard]] virtual std::size_t row_local_size() const = 0;

  /// Length of column-space vectors v (replicated everywhere in the
  /// distributed setting; prod of ranks for HOOI).
  [[nodiscard]] virtual std::size_t col_size() const = 0;

  /// u = A v. `v` has col_size() entries, `u` row_local_size() entries.
  virtual void apply(std::span<const double> v, std::span<double> u) = 0;

  /// v = A^T u. Must produce a globally consistent v on every rank.
  virtual void apply_transpose(std::span<const double> u,
                               std::span<double> v) = 0;

  /// Row-space inner product; globally reduced in distributed settings.
  [[nodiscard]] virtual double row_dot(std::span<const double> a,
                                       std::span<const double> b) const {
    return dot(a, b);
  }

  /// Global number of rows (for rank validation); defaults to local size.
  [[nodiscard]] virtual std::size_t row_global_size() const {
    return row_local_size();
  }

  // -- block interface -------------------------------------------------------

  /// U = A V for a block of b column-space vectors: V is col_size() x b
  /// (vectors are columns), U is resized to row_local_size() x b. Default
  /// loops apply() column by column.
  virtual void apply_block(const Matrix& v, Matrix& u) {
    HT_CHECK_MSG(v.rows() == col_size(), "apply_block column-space mismatch");
    const std::size_t b = v.cols();
    u.resize(row_local_size(), b);
    std::vector<double> vj(col_size()), uj(row_local_size());
    for (std::size_t j = 0; j < b; ++j) {
      for (std::size_t i = 0; i < v.rows(); ++i) vj[i] = v(i, j);
      apply(vj, uj);
      for (std::size_t i = 0; i < uj.size(); ++i) u(i, j) = uj[i];
    }
  }

  /// V = A^T U for a block of b row-space vectors: U is row_local_size() x b,
  /// V is resized to col_size() x b and globally consistent on every rank.
  /// Default loops apply_transpose() column by column.
  virtual void apply_transpose_block(const Matrix& u, Matrix& v) {
    HT_CHECK_MSG(u.rows() == row_local_size(),
                 "apply_transpose_block row-space mismatch");
    const std::size_t b = u.cols();
    v.resize(col_size(), b);
    std::vector<double> uj(row_local_size()), vj(col_size());
    for (std::size_t j = 0; j < b; ++j) {
      for (std::size_t i = 0; i < u.rows(); ++i) uj[i] = u(i, j);
      apply_transpose(uj, vj);
      for (std::size_t i = 0; i < vj.size(); ++i) v(i, j) = vj[i];
    }
  }

  /// G = A_blk^T B_blk for row-space blocks (row_local_size() x a / x b):
  /// the Gram/cross-Gram the blocked solvers orthonormalize with. Must count
  /// every *global* row exactly once and produce an identical G on every
  /// rank. Default assumes local rows == global rows (shared memory).
  virtual void row_gram(const Matrix& a, const Matrix& b, Matrix& g) {
    gemm_tn_into(a, b, g);
  }

 protected:
  TrsvdOperator() = default;
};

/// Shared-memory operator over an explicit dense row-major matrix.
class DenseOperator final : public TrsvdOperator {
 public:
  explicit DenseOperator(const Matrix& a) : a_(a) {}

  [[nodiscard]] std::size_t row_local_size() const override { return a_.rows(); }
  [[nodiscard]] std::size_t col_size() const override { return a_.cols(); }

  void apply(std::span<const double> v, std::span<double> u) override {
    gemv(a_, v, u);
  }
  void apply_transpose(std::span<const double> u,
                       std::span<double> v) override {
    gemv_t(a_, u, v);
  }

  // Block applies are single gemm passes over A: ~b times the flops of a
  // gemv for the same memory traffic, which is the whole point of the
  // blocked TRSVD backends in the bandwidth-bound HOOI regime.
  void apply_block(const Matrix& v, Matrix& u) override {
    gemm_into(a_, v, u);
  }
  void apply_transpose_block(const Matrix& u, Matrix& v) override {
    gemm_tn_into(a_, u, v);
  }

 private:
  const Matrix& a_;
};

}  // namespace ht::la
