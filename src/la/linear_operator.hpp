// Matrix-free operator interface for the truncated SVD solver.
//
// This is the seam that makes the paper's distributed TRSVD work: the
// Lanczos bidiagonalization below only ever touches the matricized TTMc
// result Y(n) through
//   u = A v        (MxV)
//   v = A^T u      (MTxV)
//   dot(u_a, u_b)  (row-space inner product)
// In shared memory these are plain dense kernels; in the fine-grain
// distributed setting apply() folds partial row sums to row owners, and
// apply_transpose() expands owner entries back to replicas and reduces the
// (small, replicated) column-space vector — without ever assembling Y(n).
#pragma once

#include <cstddef>
#include <span>

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace ht::la {

class TrsvdOperator {
 public:
  virtual ~TrsvdOperator() = default;

  /// Length of (local part of) row-space vectors u.
  [[nodiscard]] virtual std::size_t row_local_size() const = 0;

  /// Length of column-space vectors v (replicated everywhere in the
  /// distributed setting; prod of ranks for HOOI).
  [[nodiscard]] virtual std::size_t col_size() const = 0;

  /// u = A v. `v` has col_size() entries, `u` row_local_size() entries.
  virtual void apply(std::span<const double> v, std::span<double> u) = 0;

  /// v = A^T u. Must produce a globally consistent v on every rank.
  virtual void apply_transpose(std::span<const double> u,
                               std::span<double> v) = 0;

  /// Row-space inner product; globally reduced in distributed settings.
  [[nodiscard]] virtual double row_dot(std::span<const double> a,
                                       std::span<const double> b) const {
    return dot(a, b);
  }

  /// Global number of rows (for rank validation); defaults to local size.
  [[nodiscard]] virtual std::size_t row_global_size() const {
    return row_local_size();
  }
};

/// Shared-memory operator over an explicit dense row-major matrix.
class DenseOperator final : public TrsvdOperator {
 public:
  explicit DenseOperator(const Matrix& a) : a_(a) {}

  [[nodiscard]] std::size_t row_local_size() const override { return a_.rows(); }
  [[nodiscard]] std::size_t col_size() const override { return a_.cols(); }

  void apply(std::span<const double> v, std::span<double> u) override {
    gemv(a_, v, u);
  }
  void apply_transpose(std::span<const double> u,
                       std::span<double> v) override {
    gemv_t(a_, u, v);
  }

 private:
  const Matrix& a_;
};

}  // namespace ht::la
