#include <exception>
#include <thread>
#include <vector>

#include "smp/communicator.hpp"
#include "util/log.hpp"

namespace ht::smp {

void run_spmd(int nranks, const std::function<void(Communicator&)>& body) {
  HT_CHECK_MSG(nranks >= 1, "need at least one rank");

  World world(nranks);
  std::vector<std::exception_ptr> errors(nranks);
  std::vector<std::thread> threads;
  threads.reserve(nranks);

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(world, r);
      try {
        body(comm);
      } catch (...) {
        errors[r] = std::current_exception();
        // Unblock peers waiting on this rank; they will unwind with an
        // "aborted" error which run_spmd suppresses in favor of ours.
        world.request_abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Prefer reporting a root-cause exception over secondary abort errors.
  std::exception_ptr first_abort;
  for (int r = 0; r < nranks; ++r) {
    if (!errors[r]) continue;
    try {
      std::rethrow_exception(errors[r]);
    } catch (const Error& e) {
      const std::string what = e.what();
      if (what.find("smp: world aborted") != std::string::npos) {
        if (!first_abort) first_abort = errors[r];
        continue;
      }
      std::rethrow_exception(errors[r]);
    } catch (...) {
      std::rethrow_exception(errors[r]);
    }
  }
  if (first_abort) std::rethrow_exception(first_abort);
}

}  // namespace ht::smp
