// Simulated message-passing communicator (MPI substitute; see DESIGN.md).
//
// SPMD ranks run as threads inside one process. The Communicator gives each
// rank MPI-like point-to-point send/recv with (source, tag) matching plus
// the collectives the HOOI algorithms need. Sends are buffered (copy-in,
// never block); receives block until a matching message arrives. Collectives
// exchange data through shared slots guarded by a generation barrier and
// reduce in rank order, so every rank observes bit-identical results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "smp/comm_stats.hpp"
#include "util/error.hpp"

namespace ht::smp {

class World;

/// Per-rank communicator handle. Not thread-safe within a rank (each rank is
/// one thread, as in MPI).
class Communicator {
 public:
  Communicator(World& world, int rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // -- point to point ------------------------------------------------------

  /// Buffered send; returns immediately.
  void send_bytes(int dst, int tag, std::span<const std::byte> payload);

  /// Blocking receive matching (src, tag); FIFO per (src, tag) channel.
  std::vector<std::byte> recv_bytes(int src, int tag);

  template <typename T>
  void send(int dst, int tag, std::span<const T> payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               std::as_bytes(std::span<const T>(payload.data(), payload.size())));
  }

  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> raw = recv_bytes(src, tag);
    HT_CHECK_MSG(raw.size() % sizeof(T) == 0, "payload size mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  // -- collectives ----------------------------------------------------------

  /// Synchronize all ranks.
  void barrier();

  /// Elementwise sum of equally sized vectors; result identical on all ranks.
  void allreduce_sum(std::span<double> inout);

  /// Max reduction of a scalar.
  double allreduce_max(double value);
  std::uint64_t allreduce_max_u64(std::uint64_t value);

  /// Sum reduction of a scalar.
  double allreduce_sum_scalar(double value);

  /// Concatenate per-rank blocks in rank order (blocks may differ in size).
  std::vector<double> allgatherv(std::span<const double> local);
  std::vector<std::uint64_t> allgatherv_u64(std::span<const std::uint64_t> local);

  /// Personalized all-to-all: sendbufs[r] goes to rank r; returns what each
  /// rank sent to this one, indexed by source rank.
  std::vector<std::vector<double>> alltoallv(
      const std::vector<std::vector<double>>& sendbufs);

  /// Broadcast from root (resizes `data` on non-roots).
  void bcast(std::vector<double>& data, int root);

  // -- instrumentation -------------------------------------------------------

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  friend class World;

  World& world_;
  int rank_;
  CommStats stats_;
};

/// Optional network cost model: every transfer charges the participating
/// rank latency + bytes/bandwidth of wall time (busy-wait). Defaults to
/// free/instant, which measures pure computation; the strong-scaling bench
/// enables BlueGene/Q-like parameters so communication volume costs time
/// the way it does on the paper's machine. Configured from the environment:
///   HT_NET_LATENCY_US  per-message latency in microseconds (default 0)
///   HT_NET_GBPS        link bandwidth in GB/s (default 0 = infinite)
struct NetworkModel {
  double latency_ns = 0.0;
  double ns_per_byte = 0.0;

  static NetworkModel from_env();
  [[nodiscard]] bool enabled() const {
    return latency_ns > 0.0 || ns_per_byte > 0.0;
  }
};

/// Shared state for one SPMD execution: mailboxes, collective slots, barrier.
class World {
 public:
  explicit World(int size);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const { return size_; }

  /// Wake every blocked rank with an error; used when one rank throws so the
  /// others do not deadlock in recv()/barrier().
  void request_abort();

 private:
  friend class Communicator;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // (src, tag) -> FIFO of payloads
    std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> queues;
  };

  void deposit(int dst, int src, int tag, std::vector<std::byte> payload);
  std::vector<std::byte> collect(int dst, int src, int tag);

  /// Busy-wait for the modeled transfer time of `bytes` (no-op when the
  /// model is disabled).
  void charge_transfer(std::size_t bytes) const;

  // Two-phase generation barrier used by collectives: publish -> sync ->
  // consume -> sync, so slots can be reused safely.
  void sync();

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Collective exchange slots (one pointer-sized slot per rank).
  std::vector<const void*> slots_;
  std::vector<std::size_t> slot_sizes_;

  // Centralized generation barrier. Spinning (with yield backoff) instead
  // of mutex+condvar: the HOOI TRSVD issues hundreds of collectives per
  // iteration and wakeup latency would otherwise dominate the simulation.
  std::atomic<int> barrier_arrived_{0};
  std::atomic<std::uint64_t> barrier_generation_{0};

  std::atomic<bool> aborted_{false};

  NetworkModel network_ = NetworkModel::from_env();
};

/// Run `body(comm)` on `nranks` threads, SPMD style. Exceptions thrown by any
/// rank are captured and the first one is rethrown after all ranks join.
void run_spmd(int nranks, const std::function<void(Communicator&)>& body);

}  // namespace ht::smp
