// Communication-volume accounting for the simulated message-passing runtime.
//
// The paper's Table III reports per-process send/receive volumes (in vector
// entries); the simulated runtime counts bytes at the same points a real MPI
// implementation would move data. Collectives are credited with ring-model
// volumes (see communicator.cpp), point-to-point with exact payload bytes.
#pragma once

#include <cstdint>

namespace ht::smp {

/// Per-rank communication counters. Each rank only mutates its own instance,
/// so no synchronization is needed for recording; readers snapshot between
/// phases (the SPMD code is barrier-synchronized there).
struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t collectives = 0;

  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_sent + bytes_received;
  }

  /// Volume delta between two snapshots.
  [[nodiscard]] CommStats operator-(const CommStats& other) const {
    return {bytes_sent - other.bytes_sent,
            bytes_received - other.bytes_received,
            messages_sent - other.messages_sent,
            collectives - other.collectives};
  }

  void reset() { *this = CommStats{}; }
};

}  // namespace ht::smp
