#include "smp/communicator.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "util/env.hpp"

namespace ht::smp {

NetworkModel NetworkModel::from_env() {
  NetworkModel m;
  m.latency_ns = env_double("HT_NET_LATENCY_US", 0.0) * 1e3;
  const double gbps = env_double("HT_NET_GBPS", 0.0);
  m.ns_per_byte = gbps > 0.0 ? 1.0 / gbps : 0.0;
  return m;
}

// ---------------------------------------------------------------- World

World::World(int size) : size_(size) {
  HT_CHECK_MSG(size >= 1, "world size must be >= 1");
  mailboxes_.reserve(size);
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  slots_.assign(size, nullptr);
  slot_sizes_.assign(size, 0);
}

World::~World() = default;

void World::request_abort() {
  aborted_.store(true);
  for (auto& box : mailboxes_) {
    const std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
  // Barrier waiters poll aborted_ while spinning; no wakeup needed.
}

void World::charge_transfer(std::size_t bytes) const {
  if (!network_.enabled()) return;
  const auto wait = std::chrono::nanoseconds(static_cast<std::int64_t>(
      network_.latency_ns + network_.ns_per_byte * static_cast<double>(bytes)));
  const auto deadline = std::chrono::steady_clock::now() + wait;
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy-wait: rank threads model dedicated nodes.
  }
}

void World::deposit(int dst, int src, int tag, std::vector<std::byte> payload) {
  Mailbox& box = *mailboxes_[dst];
  {
    const std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[{src, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<std::byte> World::collect(int dst, int src, int tag) {
  Mailbox& box = *mailboxes_[dst];
  std::unique_lock<std::mutex> lock(box.mutex);
  box.cv.wait(lock, [&] {
    if (aborted_.load()) return true;
    auto it = box.queues.find({src, tag});
    return it != box.queues.end() && !it->second.empty();
  });
  if (aborted_.load()) {
    auto it = box.queues.find({src, tag});
    if (it == box.queues.end() || it->second.empty()) {
      throw Error("smp: world aborted while receiving");
    }
  }
  auto it = box.queues.find({src, tag});
  std::vector<std::byte> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

void World::sync() {
  // SPMD discipline guarantees every rank enters each barrier epoch exactly
  // once, so reading the generation before arriving is race-free: the epoch
  // cannot complete without this rank's arrival.
  const std::uint64_t gen = barrier_generation_.load(std::memory_order_acquire);
  if (barrier_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == size_) {
    barrier_arrived_.store(0, std::memory_order_relaxed);
    barrier_generation_.fetch_add(1, std::memory_order_release);
    return;
  }
  int spins = 0;
  while (barrier_generation_.load(std::memory_order_acquire) == gen) {
    if (aborted_.load(std::memory_order_relaxed)) {
      throw Error("smp: world aborted at barrier");
    }
    if (++spins > 1024) {
      std::this_thread::yield();
    }
  }
}

// ---------------------------------------------------------------- Communicator

Communicator::Communicator(World& world, int rank)
    : world_(world), rank_(rank) {
  HT_CHECK(rank >= 0 && rank < world.size());
}

int Communicator::size() const { return world_.size(); }

void Communicator::send_bytes(int dst, int tag,
                              std::span<const std::byte> payload) {
  HT_CHECK_MSG(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  stats_.bytes_sent += payload.size();
  ++stats_.messages_sent;
  world_.charge_transfer(payload.size());
  world_.deposit(dst, rank_, tag,
                 std::vector<std::byte>(payload.begin(), payload.end()));
}

std::vector<std::byte> Communicator::recv_bytes(int src, int tag) {
  HT_CHECK_MSG(src >= 0 && src < size(), "recv from invalid rank " << src);
  std::vector<std::byte> payload = world_.collect(rank_, src, tag);
  stats_.bytes_received += payload.size();
  return payload;
}

void Communicator::barrier() {
  ++stats_.collectives;
  world_.sync();
}

void Communicator::allreduce_sum(std::span<double> inout) {
  const int p = size();
  ++stats_.collectives;
  if (p == 1) return;

  world_.slots_[rank_] = inout.data();
  world_.slot_sizes_[rank_] = inout.size();
  world_.sync();

  // Reduce in rank order: bit-identical result on every rank.
  std::vector<double> acc(inout.size(), 0.0);
  for (int r = 0; r < p; ++r) {
    HT_CHECK_MSG(world_.slot_sizes_[r] == inout.size(),
                 "allreduce size mismatch at rank " << r);
    const auto* src = static_cast<const double*>(world_.slots_[r]);
    for (std::size_t i = 0; i < inout.size(); ++i) acc[i] += src[i];
  }
  world_.sync();  // all ranks done reading the slots
  std::memcpy(inout.data(), acc.data(), inout.size() * sizeof(double));

  // Ring-model volume: reduce-scatter + allgather each move n(p-1)/p.
  const std::uint64_t v = 2 * inout.size() * sizeof(double) *
                          static_cast<unsigned>(p - 1) /
                          static_cast<unsigned>(p);
  stats_.bytes_sent += v;
  stats_.bytes_received += v;
  world_.charge_transfer(v);
  world_.sync();  // slots reusable
}

double Communicator::allreduce_max(double value) {
  ++stats_.collectives;
  const int p = size();
  if (p == 1) return value;
  world_.slots_[rank_] = &value;
  world_.sync();
  double m = value;
  for (int r = 0; r < p; ++r) {
    m = std::max(m, *static_cast<const double*>(world_.slots_[r]));
  }
  world_.sync();
  stats_.bytes_sent += sizeof(double);
  stats_.bytes_received += sizeof(double);
  world_.charge_transfer(sizeof(double));
  world_.sync();
  return m;
}

std::uint64_t Communicator::allreduce_max_u64(std::uint64_t value) {
  ++stats_.collectives;
  const int p = size();
  if (p == 1) return value;
  world_.slots_[rank_] = &value;
  world_.sync();
  std::uint64_t m = value;
  for (int r = 0; r < p; ++r) {
    m = std::max(m, *static_cast<const std::uint64_t*>(world_.slots_[r]));
  }
  world_.sync();
  stats_.bytes_sent += sizeof value;
  stats_.bytes_received += sizeof value;
  world_.charge_transfer(sizeof value);
  world_.sync();
  return m;
}

double Communicator::allreduce_sum_scalar(double value) {
  ++stats_.collectives;
  const int p = size();
  if (p == 1) return value;
  world_.slots_[rank_] = &value;
  world_.sync();
  double s = 0.0;
  for (int r = 0; r < p; ++r) {
    s += *static_cast<const double*>(world_.slots_[r]);
  }
  world_.sync();
  stats_.bytes_sent += sizeof(double);
  stats_.bytes_received += sizeof(double);
  world_.charge_transfer(sizeof(double));
  world_.sync();
  return s;
}

std::vector<double> Communicator::allgatherv(std::span<const double> local) {
  ++stats_.collectives;
  const int p = size();
  if (p == 1) return {local.begin(), local.end()};

  world_.slots_[rank_] = local.data();
  world_.slot_sizes_[rank_] = local.size();
  world_.sync();

  std::size_t total = 0;
  for (int r = 0; r < p; ++r) total += world_.slot_sizes_[r];
  std::vector<double> out;
  out.reserve(total);
  for (int r = 0; r < p; ++r) {
    const auto* src = static_cast<const double*>(world_.slots_[r]);
    out.insert(out.end(), src, src + world_.slot_sizes_[r]);
  }
  world_.sync();

  const std::uint64_t v = (total - local.size()) * sizeof(double);
  stats_.bytes_sent += v;
  stats_.bytes_received += v;
  world_.charge_transfer(v);
  world_.sync();
  return out;
}

std::vector<std::uint64_t> Communicator::allgatherv_u64(
    std::span<const std::uint64_t> local) {
  ++stats_.collectives;
  const int p = size();
  if (p == 1) return {local.begin(), local.end()};

  world_.slots_[rank_] = local.data();
  world_.slot_sizes_[rank_] = local.size();
  world_.sync();

  std::size_t total = 0;
  for (int r = 0; r < p; ++r) total += world_.slot_sizes_[r];
  std::vector<std::uint64_t> out;
  out.reserve(total);
  for (int r = 0; r < p; ++r) {
    const auto* src = static_cast<const std::uint64_t*>(world_.slots_[r]);
    out.insert(out.end(), src, src + world_.slot_sizes_[r]);
  }
  world_.sync();

  const std::uint64_t v = (total - local.size()) * sizeof(std::uint64_t);
  stats_.bytes_sent += v;
  stats_.bytes_received += v;
  world_.charge_transfer(v);
  world_.sync();
  return out;
}

std::vector<std::vector<double>> Communicator::alltoallv(
    const std::vector<std::vector<double>>& sendbufs) {
  const int p = size();
  HT_CHECK_MSG(static_cast<int>(sendbufs.size()) == p,
               "alltoallv needs one buffer per rank");
  ++stats_.collectives;

  world_.slots_[rank_] = &sendbufs;
  world_.sync();

  std::vector<std::vector<double>> out(p);
  for (int r = 0; r < p; ++r) {
    const auto* theirs =
        static_cast<const std::vector<std::vector<double>>*>(world_.slots_[r]);
    out[r] = (*theirs)[rank_];
    if (r != rank_) stats_.bytes_received += out[r].size() * sizeof(double);
  }
  std::uint64_t sent = 0;
  for (int r = 0; r < p; ++r) {
    if (r != rank_) sent += sendbufs[r].size() * sizeof(double);
  }
  stats_.bytes_sent += sent;
  world_.charge_transfer(sent);
  world_.sync();
  world_.sync();
  return out;
}

void Communicator::bcast(std::vector<double>& data, int root) {
  const int p = size();
  HT_CHECK(root >= 0 && root < p);
  ++stats_.collectives;
  if (p == 1) return;

  if (rank_ == root) {
    world_.slots_[root] = data.data();
    world_.slot_sizes_[root] = data.size();
  }
  world_.sync();
  if (rank_ != root) {
    const auto* src = static_cast<const double*>(world_.slots_[root]);
    data.assign(src, src + world_.slot_sizes_[root]);
    stats_.bytes_received += data.size() * sizeof(double);
    world_.charge_transfer(data.size() * sizeof(double));
  } else {
    stats_.bytes_sent += data.size() * sizeof(double) * (p - 1);
    world_.charge_transfer(data.size() * sizeof(double) * (p - 1));
  }
  world_.sync();
  world_.sync();
}

}  // namespace ht::smp
