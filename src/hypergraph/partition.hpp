// Partition representation and quality metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace ht::hypergraph {

/// A k-way assignment of vertices to parts.
struct Partition {
  int num_parts = 1;
  std::vector<int> part_of;  // one entry per vertex

  [[nodiscard]] int operator[](vid_t v) const { return part_of[v]; }
};

/// Connectivity metric: sum over nets of cost * (lambda - 1), where lambda is
/// the number of parts the net's pins touch. Equals the total communication
/// volume of the modeled HOOI iteration.
weight_t connectivity_cutsize(const Hypergraph& h, const Partition& p);

/// Cut-net metric: sum of costs of nets spanning more than one part.
weight_t cutnet_cutsize(const Hypergraph& h, const Partition& p);

/// Total vertex weight per part.
std::vector<weight_t> part_weights(const Hypergraph& h, const Partition& p);

/// max(part weight) / (total weight / k) - 1; zero is perfect balance.
double imbalance(const Hypergraph& h, const Partition& p);

/// Validate: every vertex assigned to [0, num_parts).
void validate_partition(const Hypergraph& h, const Partition& p);

}  // namespace ht::hypergraph
