#include "hypergraph/partition.hpp"

#include <algorithm>

namespace ht::hypergraph {

weight_t connectivity_cutsize(const Hypergraph& h, const Partition& p) {
  weight_t cut = 0;
  std::vector<std::uint32_t> seen(p.num_parts, 0);
  std::uint32_t stamp = 0;
  for (nid_t n = 0; n < h.num_nets(); ++n) {
    ++stamp;
    int lambda = 0;
    for (vid_t v : h.net_pins(n)) {
      const int part = p.part_of[v];
      if (seen[part] != stamp) {
        seen[part] = stamp;
        ++lambda;
      }
    }
    if (lambda > 1) cut += h.net_cost(n) * (lambda - 1);
  }
  return cut;
}

weight_t cutnet_cutsize(const Hypergraph& h, const Partition& p) {
  weight_t cut = 0;
  for (nid_t n = 0; n < h.num_nets(); ++n) {
    const auto pins = h.net_pins(n);
    if (pins.empty()) continue;
    const int first = p.part_of[pins.front()];
    for (vid_t v : pins) {
      if (p.part_of[v] != first) {
        cut += h.net_cost(n);
        break;
      }
    }
  }
  return cut;
}

std::vector<weight_t> part_weights(const Hypergraph& h, const Partition& p) {
  std::vector<weight_t> w(p.num_parts, 0);
  for (vid_t v = 0; v < h.num_vertices(); ++v) {
    w[p.part_of[v]] += h.vertex_weight(v);
  }
  return w;
}

double imbalance(const Hypergraph& h, const Partition& p) {
  if (h.num_vertices() == 0 || h.total_vertex_weight() == 0) return 0.0;
  const auto w = part_weights(h, p);
  const weight_t max_w = *std::max_element(w.begin(), w.end());
  const double avg =
      static_cast<double>(h.total_vertex_weight()) / p.num_parts;
  return static_cast<double>(max_w) / avg - 1.0;
}

void validate_partition(const Hypergraph& h, const Partition& p) {
  HT_CHECK_MSG(p.part_of.size() == h.num_vertices(),
               "partition arity mismatch");
  HT_CHECK_MSG(p.num_parts >= 1, "need at least one part");
  for (int part : p.part_of) {
    HT_CHECK_MSG(part >= 0 && part < p.num_parts,
                 "vertex assigned to invalid part " << part);
  }
}

}  // namespace ht::hypergraph
