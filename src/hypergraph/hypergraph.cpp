#include "hypergraph/hypergraph.hpp"

#include <numeric>

namespace ht::hypergraph {

Hypergraph Hypergraph::build(std::size_t num_vertices,
                             const std::vector<std::vector<vid_t>>& net_pins,
                             std::vector<weight_t> vertex_weights,
                             std::vector<weight_t> net_costs) {
  Hypergraph h;
  h.num_vertices_ = num_vertices;

  if (vertex_weights.empty()) {
    vertex_weights.assign(num_vertices, 1);
  }
  HT_CHECK_MSG(vertex_weights.size() == num_vertices,
               "vertex weight arity mismatch");
  if (net_costs.empty()) {
    net_costs.assign(net_pins.size(), 1);
  }
  HT_CHECK_MSG(net_costs.size() == net_pins.size(), "net cost arity mismatch");

  std::size_t total_pins = 0;
  for (const auto& pins : net_pins) total_pins += pins.size();

  h.net_ptr_.reserve(net_pins.size() + 1);
  h.net_ptr_.push_back(0);
  h.pins_.reserve(total_pins);
  for (const auto& pins : net_pins) {
    for (vid_t v : pins) {
      HT_CHECK_MSG(v < num_vertices, "pin vertex out of range");
      h.pins_.push_back(v);
    }
    h.net_ptr_.push_back(h.pins_.size());
  }

  // Transpose to vertex -> nets.
  h.vertex_ptr_.assign(num_vertices + 1, 0);
  for (vid_t v : h.pins_) ++h.vertex_ptr_[v + 1];
  std::partial_sum(h.vertex_ptr_.begin(), h.vertex_ptr_.end(),
                   h.vertex_ptr_.begin());
  h.nets_.resize(h.pins_.size());
  std::vector<std::size_t> cursor(h.vertex_ptr_.begin(),
                                  h.vertex_ptr_.end() - 1);
  for (nid_t n = 0; n < net_pins.size(); ++n) {
    for (vid_t v : net_pins[n]) h.nets_[cursor[v]++] = n;
  }

  h.vertex_weights_ = std::move(vertex_weights);
  h.net_costs_ = std::move(net_costs);
  h.total_weight_ = std::accumulate(h.vertex_weights_.begin(),
                                    h.vertex_weights_.end(), weight_t{0});
  return h;
}

}  // namespace ht::hypergraph
