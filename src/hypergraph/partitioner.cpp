#include "hypergraph/partitioner.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <queue>

#include "util/log.hpp"
#include "util/random.hpp"

namespace ht::hypergraph {

namespace {

// ---------------------------------------------------------------------------
// Bisection working state: a (possibly coarsened) hypergraph plus 0/1 labels.
// ---------------------------------------------------------------------------

struct Bisection {
  const Hypergraph* h = nullptr;
  std::vector<int> side;               // 0 or 1 per vertex
  std::vector<std::array<std::uint32_t, 2>> pins_in;  // per net
  std::vector<weight_t> gain;          // maintained incrementally
  weight_t cut = 0;
  std::array<weight_t, 2> weight = {0, 0};

  void init_counts() {
    pins_in.assign(h->num_nets(), {0, 0});
    cut = 0;
    weight = {0, 0};
    for (vid_t v = 0; v < h->num_vertices(); ++v) {
      weight[side[v]] += h->vertex_weight(v);
      for (nid_t n : h->vertex_nets(v)) ++pins_in[n][side[v]];
    }
    for (nid_t n = 0; n < h->num_nets(); ++n) {
      if (pins_in[n][0] > 0 && pins_in[n][1] > 0) cut += h->net_cost(n);
    }
    init_gains();
  }

  // gain[v] = cut reduction of moving v; one O(pins) sweep.
  void init_gains() {
    gain.assign(h->num_vertices(), 0);
    for (vid_t v = 0; v < h->num_vertices(); ++v) {
      const int from = side[v];
      weight_t g = 0;
      for (nid_t n : h->vertex_nets(v)) {
        if (pins_in[n][from] == 1) g += h->net_cost(n);       // uncuts
        if (pins_in[n][1 - from] == 0) g -= h->net_cost(n);   // cuts
      }
      gain[v] = g;
    }
  }

  // Apply a move, maintain all gains via the classic FM delta rules, and
  // invoke touch(u) for every vertex whose gain changed (so the caller can
  // refresh its priority queue). Only nets crossing the critical 0/1/2 pin
  // counts propagate updates, which keeps passes near-linear.
  template <typename Touch>
  void apply_move(vid_t v, Touch&& touch) {
    const int from = side[v];
    const int to = 1 - from;
    const weight_t wv = h->vertex_weight(v);

    for (nid_t n : h->vertex_nets(v)) {
      auto& c = pins_in[n];
      const weight_t w = h->net_cost(n);
      const auto pins = h->net_pins(n);

      // Before-move critical cases.
      if (c[to] == 0) {
        // Net becomes cut: every other pin (all on `from`) gains +w.
        cut += w;
        for (vid_t u : pins) {
          if (u != v) {
            gain[u] += w;
            touch(u);
          }
        }
      } else if (c[to] == 1) {
        // The lone `to`-side pin loses its uncut bonus.
        for (vid_t u : pins) {
          if (u != v && side[u] == to) {
            gain[u] -= w;
            touch(u);
          }
        }
      }

      --c[from];
      ++c[to];

      // After-move critical cases.
      if (c[from] == 0) {
        // Net uncut now: every pin (all on `to`) loses w for re-cutting.
        cut -= w;
        for (vid_t u : pins) {
          if (u != v) {
            gain[u] -= w;
            touch(u);
          }
        }
      } else if (c[from] == 1) {
        // The lone remaining `from`-side pin could uncut the net.
        for (vid_t u : pins) {
          if (u != v && side[u] == from) {
            gain[u] += w;
            touch(u);
          }
        }
      }
    }
    weight[from] -= wv;
    weight[to] += wv;
    side[v] = to;
    // v's own gain flips sign (recompute lazily: exact value only matters
    // if v is unlocked later, which plain FM passes never do).
    gain[v] = -gain[v];
  }

  void apply_move(vid_t v) {
    apply_move(v, [](vid_t) {});
  }
};

// ---------------------------------------------------------------------------
// FM refinement (one bisection level).
// ---------------------------------------------------------------------------

// Lazy max-heap entry.
struct HeapEntry {
  weight_t gain;
  vid_t v;
  bool operator<(const HeapEntry& o) const { return gain < o.gain; }
};

void fm_pass(Bisection& b, std::array<weight_t, 2> max_weight,
             std::size_t large_net_threshold, ht::Rng& rng) {
  const Hypergraph& h = *b.h;
  const std::size_t nv = h.num_vertices();
  (void)large_net_threshold;
  (void)rng;

  b.init_gains();  // rollbacks of earlier passes leave gains stale

  // Boundary vertices: touching at least one cut net (or everything for very
  // small graphs, so FM can also fix imbalance).
  std::vector<char> in_queue(nv, 0);
  std::priority_queue<HeapEntry> heap;
  auto push = [&](vid_t v) {
    heap.push({b.gain[v], v});
    in_queue[v] = 1;
  };
  if (nv <= 64) {
    for (vid_t v = 0; v < nv; ++v) push(v);
  } else {
    for (nid_t n = 0; n < h.num_nets(); ++n) {
      if (b.pins_in[n][0] > 0 && b.pins_in[n][1] > 0) {
        for (vid_t v : h.net_pins(n)) {
          if (!in_queue[v]) push(v);
        }
      }
    }
  }

  std::vector<char> moved(nv, 0);
  std::vector<vid_t> move_sequence;
  weight_t best_cut = b.cut;
  std::size_t best_prefix = 0;

  // Early exit after a long run of non-improving moves: full FM sweeps on
  // fine levels cost far more than they recover.
  const std::size_t stall_limit = std::max<std::size_t>(128, nv / 64);
  std::size_t since_best = 0;

  while (!heap.empty() && since_best < stall_limit) {
    const auto [g, v] = heap.top();
    heap.pop();
    if (moved[v]) continue;
    if (g != b.gain[v]) continue;  // stale entry; a fresh one is enqueued
    const int to = 1 - b.side[v];
    if (b.weight[to] + h.vertex_weight(v) > max_weight[to]) continue;

    moved[v] = 1;
    b.apply_move(v, [&](vid_t u) {
      if (!moved[u]) heap.push({b.gain[u], u});
    });
    move_sequence.push_back(v);
    if (b.cut < best_cut) {
      best_cut = b.cut;
      best_prefix = move_sequence.size();
      since_best = 0;
    } else {
      ++since_best;
    }
  }

  // Roll back moves beyond the best prefix (gains go stale; the next pass
  // re-initializes them).
  for (std::size_t i = move_sequence.size(); i-- > best_prefix;) {
    b.apply_move(move_sequence[i]);
  }
}

// ---------------------------------------------------------------------------
// Initial bisection: greedy growth from a random seed + balance fixup.
// ---------------------------------------------------------------------------

void greedy_grow(Bisection& b, weight_t target0, ht::Rng& rng) {
  const Hypergraph& h = *b.h;
  const std::size_t nv = h.num_vertices();
  b.side.assign(nv, 1);

  std::vector<char> visited(nv, 0);
  std::queue<vid_t> frontier;
  weight_t grown = 0;

  while (grown < target0) {
    if (frontier.empty()) {
      // Find an unvisited seed.
      vid_t seed = static_cast<vid_t>(rng.below(nv));
      std::size_t probes = 0;
      while (visited[seed] && probes++ < nv) {
        seed = (seed + 1) % nv;
      }
      if (visited[seed]) break;
      frontier.push(seed);
      visited[seed] = 1;
    }
    const vid_t v = frontier.front();
    frontier.pop();
    b.side[v] = 0;
    grown += h.vertex_weight(v);
    for (nid_t n : h.vertex_nets(v)) {
      const auto pins = h.net_pins(n);
      if (pins.size() > 256) continue;  // don't flood through huge nets
      for (vid_t u : pins) {
        if (!visited[u]) {
          visited[u] = 1;
          frontier.push(u);
        }
      }
    }
  }
  b.init_counts();
}

// Move lightest-impact vertices until both sides satisfy max weights.
void rebalance(Bisection& b, std::array<weight_t, 2> max_weight,
               ht::Rng& rng) {
  const Hypergraph& h = *b.h;
  const std::size_t nv = h.num_vertices();
  for (int iter = 0; iter < 4; ++iter) {
    int over = -1;
    if (b.weight[0] > max_weight[0]) over = 0;
    if (b.weight[1] > max_weight[1]) over = 1;
    if (over < 0) return;

    b.init_gains();
    // Max-heap by gain among vertices on the overloaded side.
    std::priority_queue<HeapEntry> heap;
    for (vid_t v = 0; v < nv; ++v) {
      if (b.side[v] == over) heap.push({b.gain[v], v});
    }
    (void)rng;
    while (b.weight[over] > max_weight[over] && !heap.empty()) {
      const auto [g, v] = heap.top();
      heap.pop();
      if (b.side[v] != over) continue;
      b.apply_move(v);
    }
  }
}

// ---------------------------------------------------------------------------
// Coarsening: heavy-connectivity matching.
// ---------------------------------------------------------------------------

struct CoarseLevel {
  Hypergraph coarse;
  std::vector<vid_t> fine_to_coarse;
};

CoarseLevel coarsen_once(const Hypergraph& h, ht::Rng& rng,
                         std::size_t max_net_size) {
  const std::size_t nv = h.num_vertices();
  std::vector<vid_t> match(nv, static_cast<vid_t>(-1));

  std::vector<vid_t> order(nv);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = nv; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  // Scratch accumulators for connectivity scores.
  std::vector<double> score(nv, 0.0);
  std::vector<vid_t> touched;

  for (vid_t v : order) {
    if (match[v] != static_cast<vid_t>(-1)) continue;
    touched.clear();
    for (nid_t n : h.vertex_nets(v)) {
      const auto pins = h.net_pins(n);
      if (pins.size() > max_net_size || pins.size() < 2) continue;
      const double w =
          static_cast<double>(h.net_cost(n)) / static_cast<double>(pins.size() - 1);
      for (vid_t u : pins) {
        if (u == v || match[u] != static_cast<vid_t>(-1)) continue;
        if (score[u] == 0.0) touched.push_back(u);
        score[u] += w;
      }
    }
    vid_t best = static_cast<vid_t>(-1);
    double best_score = 0.0;
    for (vid_t u : touched) {
      if (score[u] > best_score) {
        best_score = score[u];
        best = u;
      }
      score[u] = 0.0;
    }
    if (best == static_cast<vid_t>(-1)) {
      // No candidate through small nets (vertex only touches huge nets):
      // sample a random co-pin so the coarsening keeps shrinking.
      const auto nets = h.vertex_nets(v);
      for (std::size_t attempt = 0; attempt < 4 && !nets.empty(); ++attempt) {
        const nid_t n = nets[rng.below(nets.size())];
        const auto pins = h.net_pins(n);
        const vid_t u = pins[rng.below(pins.size())];
        if (u != v && match[u] == static_cast<vid_t>(-1)) {
          best = u;
          break;
        }
      }
    }
    if (best != static_cast<vid_t>(-1)) {
      match[v] = best;
      match[best] = v;
    }
  }

  // Assign coarse ids.
  CoarseLevel out;
  out.fine_to_coarse.assign(nv, 0);
  vid_t nc = 0;
  for (vid_t v = 0; v < nv; ++v) {
    if (match[v] == static_cast<vid_t>(-1) || match[v] > v) {
      out.fine_to_coarse[v] = nc++;
    }
  }
  for (vid_t v = 0; v < nv; ++v) {
    if (match[v] != static_cast<vid_t>(-1) && match[v] < v) {
      out.fine_to_coarse[v] = out.fine_to_coarse[match[v]];
    }
  }

  // Coarse vertex weights.
  std::vector<weight_t> cw(nc, 0);
  for (vid_t v = 0; v < nv; ++v) {
    cw[out.fine_to_coarse[v]] += h.vertex_weight(v);
  }

  // Coarse nets: translate pins, dedupe, drop singletons.
  std::vector<std::vector<vid_t>> cnets;
  std::vector<weight_t> ccosts;
  cnets.reserve(h.num_nets());
  std::vector<vid_t> buf;
  for (nid_t n = 0; n < h.num_nets(); ++n) {
    const auto pins = h.net_pins(n);
    buf.clear();
    for (vid_t v : pins) buf.push_back(out.fine_to_coarse[v]);
    std::sort(buf.begin(), buf.end());
    buf.erase(std::unique(buf.begin(), buf.end()), buf.end());
    if (buf.size() >= 2) {
      cnets.push_back(buf);
      ccosts.push_back(h.net_cost(n));
    }
  }

  out.coarse = Hypergraph::build(nc, cnets, std::move(cw), std::move(ccosts));
  return out;
}

// ---------------------------------------------------------------------------
// One multilevel bisection: labels[v] in {0, 1}; side 0 targets `fraction0`
// of the total weight.
// ---------------------------------------------------------------------------

std::vector<int> multilevel_bisect(const Hypergraph& h, double fraction0,
                                   double epsilon,
                                   const PartitionerOptions& options,
                                   ht::Rng& rng) {
  const weight_t total = h.total_vertex_weight();
  const auto target0 = static_cast<weight_t>(
      std::llround(static_cast<double>(total) * fraction0));
  const std::array<weight_t, 2> max_weight = {
      static_cast<weight_t>(std::ceil((1.0 + epsilon) * target0)),
      static_cast<weight_t>(std::ceil((1.0 + epsilon) * (total - target0)))};

  const std::size_t coarsen_to =
      options.coarsen_to > 0 ? options.coarsen_to : std::size_t{160};

  // Coarsening chain.
  std::vector<CoarseLevel> levels;
  const Hypergraph* current = &h;
  while (current->num_vertices() > coarsen_to) {
    CoarseLevel level = coarsen_once(*current, rng, options.large_net_threshold);
    const double shrink = static_cast<double>(level.coarse.num_vertices()) /
                          static_cast<double>(current->num_vertices());
    if (shrink > 0.85) break;  // matching stalled
    levels.push_back(std::move(level));
    current = &levels.back().coarse;
  }

  // Initial bisection portfolio at the coarsest level.
  Bisection best;
  best.h = current;
  bool have_best = false;
  for (int attempt = 0; attempt < options.initial_tries; ++attempt) {
    Bisection b;
    b.h = current;
    greedy_grow(b, target0, rng);
    rebalance(b, max_weight, rng);
    for (int pass = 0; pass < options.refine_passes; ++pass) {
      const weight_t before = b.cut;
      fm_pass(b, max_weight, options.large_net_threshold, rng);
      if (b.cut >= before) break;
    }
    if (!have_best || b.cut < best.cut) {
      best = std::move(b);
      have_best = true;
    }
  }

  // Uncoarsen with refinement at each level.
  std::vector<int> side = std::move(best.side);
  for (std::size_t l = levels.size(); l-- > 0;) {
    const Hypergraph& fine = (l == 0) ? h : levels[l - 1].coarse;
    std::vector<int> fine_side(fine.num_vertices());
    for (vid_t v = 0; v < fine.num_vertices(); ++v) {
      fine_side[v] = side[levels[l].fine_to_coarse[v]];
    }
    Bisection b;
    b.h = &fine;
    b.side = std::move(fine_side);
    b.init_counts();
    rebalance(b, max_weight, rng);
    for (int pass = 0; pass < options.refine_passes; ++pass) {
      const weight_t before = b.cut;
      fm_pass(b, max_weight, options.large_net_threshold, rng);
      if (b.cut >= before) break;
    }
    side = std::move(b.side);
  }
  return side;
}

// Induced sub-hypergraph of the vertices with the given side label.
// Net splitting: a cut net contributes its local pins to both sides.
struct SubHypergraph {
  Hypergraph h;
  std::vector<vid_t> to_parent;
};

SubHypergraph induce(const Hypergraph& h, const std::vector<int>& side,
                     int which) {
  SubHypergraph out;
  std::vector<vid_t> to_sub(h.num_vertices(), static_cast<vid_t>(-1));
  std::vector<weight_t> weights;
  for (vid_t v = 0; v < h.num_vertices(); ++v) {
    if (side[v] == which) {
      to_sub[v] = static_cast<vid_t>(out.to_parent.size());
      out.to_parent.push_back(v);
      weights.push_back(h.vertex_weight(v));
    }
  }
  std::vector<std::vector<vid_t>> nets;
  std::vector<weight_t> costs;
  std::vector<vid_t> buf;
  for (nid_t n = 0; n < h.num_nets(); ++n) {
    buf.clear();
    for (vid_t v : h.net_pins(n)) {
      if (to_sub[v] != static_cast<vid_t>(-1)) buf.push_back(to_sub[v]);
    }
    if (buf.size() >= 2) {
      nets.push_back(buf);
      costs.push_back(h.net_cost(n));
    }
  }
  out.h = Hypergraph::build(out.to_parent.size(), nets, std::move(weights),
                            std::move(costs));
  return out;
}

void recurse(const Hypergraph& h, int k, int part_offset, double epsilon,
             const PartitionerOptions& options, ht::Rng& rng,
             const std::vector<vid_t>& to_root, std::vector<int>& result) {
  if (k == 1 || h.num_vertices() == 0) {
    for (vid_t v = 0; v < h.num_vertices(); ++v) {
      result[to_root[v]] = part_offset;
    }
    return;
  }
  const int k0 = (k + 1) / 2;
  const double fraction0 = static_cast<double>(k0) / k;
  const std::vector<int> side =
      multilevel_bisect(h, fraction0, epsilon, options, rng);

  for (int which = 0; which < 2; ++which) {
    SubHypergraph sub = induce(h, side, which);
    std::vector<vid_t> sub_to_root(sub.to_parent.size());
    for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
      sub_to_root[i] = to_root[sub.to_parent[i]];
    }
    recurse(sub.h, which == 0 ? k0 : k - k0,
            which == 0 ? part_offset : part_offset + k0, epsilon, options, rng,
            sub_to_root, result);
  }
}

}  // namespace

Partition partition_multilevel(const Hypergraph& h,
                               const PartitionerOptions& options) {
  HT_CHECK_MSG(options.num_parts >= 1, "num_parts must be >= 1");
  Partition p;
  p.num_parts = options.num_parts;
  p.part_of.assign(h.num_vertices(), 0);
  if (options.num_parts == 1 || h.num_vertices() == 0) return p;

  // Per-level epsilon so the final k-way imbalance lands near epsilon.
  const int levels = std::max(
      1, static_cast<int>(std::ceil(std::log2(options.num_parts))));
  const double eps_level =
      std::pow(1.0 + options.epsilon, 1.0 / levels) - 1.0;

  ht::Rng rng(options.seed);
  std::vector<vid_t> identity(h.num_vertices());
  std::iota(identity.begin(), identity.end(), 0);
  recurse(h, options.num_parts, 0, eps_level, options, rng, identity,
          p.part_of);
  return p;
}

Partition partition_random(const Hypergraph& h, int num_parts,
                           std::uint64_t seed) {
  HT_CHECK(num_parts >= 1);
  Partition p;
  p.num_parts = num_parts;
  p.part_of.assign(h.num_vertices(), 0);
  if (num_parts == 1) return p;

  ht::Rng rng(seed);
  std::vector<vid_t> order(h.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  // Greedy lightest-part placement in shuffled order: random yet balanced,
  // matching the paper's description of the "-rd" partitions.
  std::vector<weight_t> load(num_parts, 0);
  for (vid_t v : order) {
    const int part = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    p.part_of[v] = part;
    load[part] += h.vertex_weight(v);
  }
  return p;
}

Partition partition_block(std::span<const weight_t> weights, int num_parts) {
  HT_CHECK(num_parts >= 1);
  Partition p;
  p.num_parts = num_parts;
  p.part_of.assign(weights.size(), 0);

  weight_t total = 0;
  for (weight_t w : weights) total += w;
  // Greedy block chopping: each block targets the average of the *remaining*
  // weight; a vertex joins the current block only if that overshoots the
  // target by less than leaving the block short.
  weight_t remaining = total;
  int part = 0;
  weight_t in_part = 0;
  for (std::size_t v = 0; v < weights.size(); ++v) {
    const int parts_left = num_parts - part;
    const double target = static_cast<double>(remaining + in_part) /
                          std::max(1, parts_left);
    const double overshoot = in_part + weights[v] - target;
    const double undershoot = target - in_part;
    if (in_part > 0 && overshoot > undershoot && part + 1 < num_parts) {
      ++part;
      in_part = 0;
      // Recompute nothing: remaining already excludes previous vertices.
    }
    p.part_of[v] = part;
    in_part += weights[v];
    remaining -= weights[v];
  }
  return p;
}

}  // namespace ht::hypergraph
