// Hypergraph data structure (CSR in both directions).
//
// Vertices model computational tasks (nonzeros in the fine-grain model,
// tensor slices in the coarse-grain model); nets model shared data (factor
// matrix rows). Partitioning minimizes the (lambda - 1) connectivity metric,
// which equals the communication volume of the corresponding distributed
// HOOI iteration (paper Section III-B, citing Kaya & Uçar SC'15).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace ht::hypergraph {

using vid_t = std::uint32_t;     // vertex id
using nid_t = std::uint32_t;     // net id
using weight_t = std::int64_t;   // vertex weight / net cost

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Build from net pin lists. Vertex weights default to 1; net costs to 1.
  static Hypergraph build(std::size_t num_vertices,
                          const std::vector<std::vector<vid_t>>& net_pins,
                          std::vector<weight_t> vertex_weights = {},
                          std::vector<weight_t> net_costs = {});

  [[nodiscard]] std::size_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::size_t num_nets() const { return net_ptr_.empty() ? 0 : net_ptr_.size() - 1; }
  [[nodiscard]] std::size_t num_pins() const { return pins_.size(); }

  /// Pins (vertices) of net n.
  [[nodiscard]] std::span<const vid_t> net_pins(nid_t n) const {
    return {pins_.data() + net_ptr_[n], net_ptr_[n + 1] - net_ptr_[n]};
  }

  /// Nets incident to vertex v.
  [[nodiscard]] std::span<const nid_t> vertex_nets(vid_t v) const {
    return {nets_.data() + vertex_ptr_[v], vertex_ptr_[v + 1] - vertex_ptr_[v]};
  }

  [[nodiscard]] weight_t vertex_weight(vid_t v) const { return vertex_weights_[v]; }
  [[nodiscard]] weight_t net_cost(nid_t n) const { return net_costs_[n]; }
  [[nodiscard]] weight_t total_vertex_weight() const { return total_weight_; }

  [[nodiscard]] std::span<const weight_t> vertex_weights() const {
    return vertex_weights_;
  }

 private:
  std::size_t num_vertices_ = 0;
  std::vector<std::size_t> net_ptr_;     // nets -> pin ranges
  std::vector<vid_t> pins_;
  std::vector<std::size_t> vertex_ptr_;  // vertices -> net ranges
  std::vector<nid_t> nets_;
  std::vector<weight_t> vertex_weights_;
  std::vector<weight_t> net_costs_;
  weight_t total_weight_ = 0;
};

}  // namespace ht::hypergraph
