// Hypergraph partitioners (PaToH substitute; see DESIGN.md).
//
// partition_multilevel: recursive bisection with
//   * heavy-connectivity agglomerative matching for coarsening,
//   * portfolio of greedy-growth initial bisections,
//   * boundary Fiduccia–Mattheyses refinement at every uncoarsening level,
//   * net splitting across recursion levels, which makes the sum of level
//     cuts equal the k-way (lambda - 1) connectivity cutsize.
//
// partition_random / partition_block provide the "-rd" and "-bl" baselines
// used in the paper's Table II.
#pragma once

#include <cstdint>
#include <span>

#include "hypergraph/partition.hpp"

namespace ht::hypergraph {

struct PartitionerOptions {
  int num_parts = 2;
  /// Allowed imbalance: max part weight <= (1 + epsilon) * ideal.
  double epsilon = 0.10;
  std::uint64_t seed = 1;
  /// Stop coarsening below this many vertices (0 = automatic).
  std::size_t coarsen_to = 0;
  /// FM passes per refinement level.
  int refine_passes = 4;
  /// Number of random initial bisections tried at the coarsest level.
  int initial_tries = 4;
  /// Nets larger than this are tracked for cut counting but skipped when
  /// propagating FM gain updates (they practically never become uncut).
  std::size_t large_net_threshold = 512;
};

/// Multilevel k-way partition minimizing (lambda-1) connectivity.
Partition partition_multilevel(const Hypergraph& h,
                               const PartitionerOptions& options);

/// Weight-balanced random assignment (paper's "fine-rd"): vertices visited
/// in random order, each placed on the currently lightest part.
Partition partition_random(const Hypergraph& h, int num_parts,
                           std::uint64_t seed);

/// Contiguous blocks balanced by weight (paper's "coarse-bl").
Partition partition_block(std::span<const weight_t> weights, int num_parts);

}  // namespace ht::hypergraph
