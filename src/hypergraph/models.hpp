// Tensor -> hypergraph models (paper Section III-B, after Kaya & Uçar SC'15).
//
// Fine-grain model: one vertex per nonzero (unit weight: TTMc work per
// nonzero is identical), one net per (mode, row) pair connecting the
// nonzeros sharing that index. The (lambda-1) cutsize equals the per-
// iteration communication volume of the fine-grain HOOI: factor-row expands
// after TRSVD and y-entry folds/expands inside it.
//
// Coarse-grain model: one hypergraph per mode; vertices are the mode's rows
// weighted by slice nonzero count (TTMc work), nets are the rows of the
// *other* modes, connecting the mode-rows that reference them. Partitioning
// each mode independently approximates PaToH's multi-constraint run from the
// paper (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "tensor/coo_tensor.hpp"

namespace ht::hypergraph {

struct FineGrainModel {
  Hypergraph hg;
  /// Net k models factor row (net_mode[k], net_index[k]).
  std::vector<std::uint8_t> net_mode;
  std::vector<tensor::index_t> net_index;
};

/// Build the fine-grain model. Rows referenced by a single nonzero are not
/// emitted as nets (they can never be cut).
FineGrainModel build_fine_grain_model(const tensor::CooTensor& x);

struct CoarseGrainModel {
  /// Vertices are the mode's *non-empty* rows (empty slices carry no work
  /// and would bloat the model on huge sparse modes); vertex v is global
  /// row `rows[v]`.
  Hypergraph hg;
  std::vector<tensor::index_t> rows;
};

/// Build the coarse-grain (column-net) model for one mode. Nets wider than
/// `max_net_pins` connect nearly every slice, carry no partitioning signal,
/// and dominate the cost — they are dropped (PaToH-style huge-net removal).
CoarseGrainModel build_coarse_grain_model(const tensor::CooTensor& x,
                                          std::size_t mode,
                                          std::size_t max_net_pins = 4096);

}  // namespace ht::hypergraph
