#include "hypergraph/models.hpp"

#include <algorithm>
#include <numeric>

namespace ht::hypergraph {

using tensor::CooTensor;
using tensor::index_t;
using tensor::nnz_t;

FineGrainModel build_fine_grain_model(const CooTensor& x) {
  HT_CHECK_MSG(x.nnz() < (nnz_t{1} << 32),
               "fine-grain model limited to 2^32 nonzeros");
  FineGrainModel model;
  std::vector<std::vector<vid_t>> nets;

  for (std::size_t mode = 0; mode < x.order(); ++mode) {
    const auto idx = x.indices(mode);
    // Counting sort of nonzero ordinals by row index.
    std::vector<nnz_t> row_ptr(x.dim(mode) + 1, 0);
    for (index_t i : idx) ++row_ptr[i + 1];
    std::partial_sum(row_ptr.begin(), row_ptr.end(), row_ptr.begin());
    std::vector<vid_t> by_row(x.nnz());
    std::vector<nnz_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
    for (nnz_t t = 0; t < x.nnz(); ++t) {
      by_row[cursor[idx[t]]++] = static_cast<vid_t>(t);
    }
    for (index_t i = 0; i < x.dim(mode); ++i) {
      const nnz_t begin = row_ptr[i], end = row_ptr[i + 1];
      if (end - begin < 2) continue;  // single-pin nets can't be cut
      nets.emplace_back(by_row.begin() + static_cast<long>(begin),
                        by_row.begin() + static_cast<long>(end));
      model.net_mode.push_back(static_cast<std::uint8_t>(mode));
      model.net_index.push_back(i);
    }
  }

  model.hg = Hypergraph::build(x.nnz(), nets);
  return model;
}

CoarseGrainModel build_coarse_grain_model(const CooTensor& x,
                                          std::size_t mode,
                                          std::size_t max_net_pins) {
  HT_CHECK(mode < x.order());

  // Compact to non-empty rows; weights are slice nonzero counts (the TTMc
  // work of task t^mode_i).
  std::vector<nnz_t> hist(x.dim(mode), 0);
  for (index_t i : x.indices(mode)) ++hist[i];
  CoarseGrainModel model;
  std::vector<vid_t> compact_of(x.dim(mode), 0);
  std::vector<weight_t> weights;
  for (index_t i = 0; i < x.dim(mode); ++i) {
    if (hist[i] == 0) continue;
    compact_of[i] = static_cast<vid_t>(model.rows.size());
    model.rows.push_back(i);
    weights.push_back(static_cast<weight_t>(hist[i]));
  }

  std::vector<std::vector<vid_t>> nets;
  const auto mode_idx = x.indices(mode);
  std::vector<std::uint64_t> pairs;
  pairs.reserve(x.nnz());
  for (std::size_t t = 0; t < x.order(); ++t) {
    if (t == mode) continue;
    const auto other_idx = x.indices(t);
    // (other row j, compact mode row i) pairs; sort + unique gives deduped
    // pins grouped by j.
    pairs.clear();
    for (nnz_t e = 0; e < x.nnz(); ++e) {
      pairs.push_back((static_cast<std::uint64_t>(other_idx[e]) << 32) |
                      compact_of[mode_idx[e]]);
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

    std::size_t begin = 0;
    while (begin < pairs.size()) {
      const std::uint64_t j = pairs[begin] >> 32;
      std::size_t end = begin;
      while (end < pairs.size() && (pairs[end] >> 32) == j) ++end;
      if (end - begin >= 2 && end - begin <= max_net_pins) {
        std::vector<vid_t> pins;
        pins.reserve(end - begin);
        for (std::size_t k = begin; k < end; ++k) {
          pins.push_back(static_cast<vid_t>(pairs[k] & 0xffffffffULL));
        }
        nets.push_back(std::move(pins));
      }
      begin = end;
    }
  }

  model.hg = Hypergraph::build(model.rows.size(), nets, std::move(weights));
  return model;
}

}  // namespace ht::hypergraph
