#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace ht {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  HT_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  HT_CHECK_MSG(row.size() == header_.size(),
               "row arity " << row.size() << " != header arity "
                            << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto print_sep = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "| ";
      if (c == 0) {  // left-align label column
        os << cell << std::string(width[c] - cell.size(), ' ');
      } else {  // right-align data columns
        os << std::string(width[c] - cell.size(), ' ') << cell;
      }
      os << ' ';
    }
    os << "|\n";
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_row(row);
    }
  }
  print_sep();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_time_s(double seconds) {
  char buf[64];
  if (seconds >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.1f", seconds);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f", seconds);
  }
  return buf;
}

}  // namespace ht
