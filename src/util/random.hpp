// Deterministic, seedable random number generation.
//
// Uses SplitMix64 for seeding and Xoshiro256** as the main engine; both are
// tiny, fast, and give identical streams on every platform (std::mt19937
// distributions are not portable across standard libraries, which would make
// the reproduction's synthetic tensors non-reproducible).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ht {

/// SplitMix64: used to expand one 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234567890abcdefULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = operator()();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    have_spare_ = true;
    return u * f;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ht
