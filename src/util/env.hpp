// Environment-variable configuration helpers for the benchmark harnesses
// (e.g. HT_SCALE to grow the synthetic datasets toward paper size).
#pragma once

#include <cstdint>
#include <string>

namespace ht {

/// Read an integer env var; returns fallback when unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read a double env var; returns fallback when unset or unparsable.
double env_double(const char* name, double fallback);

/// Read a string env var; returns fallback when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace ht
