// Wall-clock timers used by the HOOI drivers and benchmark harnesses.
#pragma once

#include <chrono>

namespace ht {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed time across start()/stop() intervals; used for the
/// per-step (TTMc / TRSVD / core) breakdowns of paper Table IV.
class PhaseTimer {
 public:
  void start() { timer_.reset(); running_ = true; }

  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      ++intervals_;
      running_ = false;
    }
  }

  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] long intervals() const { return intervals_; }

  void reset() { total_ = 0.0; intervals_ = 0; running_ = false; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  long intervals_ = 0;
  bool running_ = false;
};

}  // namespace ht
