// Minimal leveled logging. Controlled by HT_LOG_LEVEL env (error|warn|info|
// debug) or programmatically; thread-safe line-at-a-time output.
#pragma once

#include <sstream>
#include <string>

namespace ht {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log level; defaults from HT_LOG_LEVEL env var (default: warn).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace ht

#define HT_LOG(level, msg)                                         \
  do {                                                             \
    if (static_cast<int>(level) <= static_cast<int>(::ht::log_level())) { \
      std::ostringstream ht_log_os_;                               \
      ht_log_os_ << msg;                                           \
      ::ht::detail::log_line(level, ht_log_os_.str());             \
    }                                                              \
  } while (false)

#define HT_LOG_INFO(msg) HT_LOG(::ht::LogLevel::kInfo, msg)
#define HT_LOG_WARN(msg) HT_LOG(::ht::LogLevel::kWarn, msg)
#define HT_LOG_ERROR(msg) HT_LOG(::ht::LogLevel::kError, msg)
#define HT_LOG_DEBUG(msg) HT_LOG(::ht::LogLevel::kDebug, msg)
