// ASCII table printer used by the benchmark harnesses to render the paper's
// tables (Table I..V) with aligned columns.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ht {

/// Column-aligned text table. Cells are strings; numeric formatting is the
/// caller's concern (see util/stats.hpp human_count and fmt helpers here).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Insert a horizontal separator before the next added row.
  void add_separator();

  /// Render with single-space-padded, right-aligned numeric-looking cells
  /// (left-aligned first column).
  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
};

/// Format a double with fixed precision.
std::string fmt_fixed(double v, int digits = 1);

/// Format a double in engineering style for timings, e.g. "12.2".
std::string fmt_time_s(double seconds);

}  // namespace ht
