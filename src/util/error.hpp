// Error handling for HyperTensor.
//
// All precondition/invariant violations throw ht::Error via the HT_CHECK
// family so callers can test failure paths (no abort()).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ht {

/// Base exception for all HyperTensor errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on malformed user input (bad file, bad shape, bad rank request).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an IO operation fails.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ht

/// Precondition/invariant check; throws ht::Error with location info.
#define HT_CHECK(expr)                                                        \
  do {                                                                        \
    if (!(expr)) ::ht::detail::throw_check_failure(#expr, __FILE__, __LINE__, \
                                                   std::string{});            \
  } while (false)

/// Check with a formatted message (streamed).
#define HT_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream ht_check_os_;                                \
      ht_check_os_ << msg;                                            \
      ::ht::detail::throw_check_failure(#expr, __FILE__, __LINE__,    \
                                        ht_check_os_.str());          \
    }                                                                 \
  } while (false)
