#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ht {

namespace {

LogLevel level_from_env() {
  const char* v = std::getenv("HT_LOG_LEVEL");
  if (v == nullptr) return LogLevel::kWarn;
  if (std::strcmp(v, "error") == 0) return LogLevel::kError;
  if (std::strcmp(v, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(v, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(v, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int> g_level{static_cast<int>(level_from_env())};
std::mutex g_out_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  const std::lock_guard<std::mutex> lock(g_out_mutex);
  std::fprintf(stderr, "[ht %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace ht
