#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ht {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::min() const { return n_ ? min_ : 0.0; }
double RunningStats::max() const { return n_ ? max_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LoadSummary summarize_load(std::span<const double> values) {
  LoadSummary s;
  if (values.empty()) return s;
  double sum = 0.0;
  for (double v : values) {
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.avg = sum / static_cast<double>(values.size());
  return s;
}

LoadSummary summarize_load(std::span<const std::uint64_t> values) {
  std::vector<double> d(values.begin(), values.end());
  return summarize_load(std::span<const double>(d));
}

std::string human_count(double value) {
  char buf[64];
  const double a = std::abs(value);
  if (a >= 1e7) {
    std::snprintf(buf, sizeof buf, "%.0fM", value / 1e6);
  } else if (a >= 1e4) {
    std::snprintf(buf, sizeof buf, "%.0fK", value / 1e3);
  } else if (a == std::floor(a)) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", value);
  }
  return buf;
}

}  // namespace ht
