// Small statistics helpers used by the instrumentation layer (Table III
// reports max/avg of per-rank computation and communication loads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ht {

/// Streaming mean/min/max/stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Max/avg summary of a per-rank load vector; imbalance = max/avg.
struct LoadSummary {
  double max = 0.0;
  double avg = 0.0;

  [[nodiscard]] double imbalance() const { return avg > 0 ? max / avg : 0.0; }
};

/// Summarize a span of per-rank values.
LoadSummary summarize_load(std::span<const double> values);
LoadSummary summarize_load(std::span<const std::uint64_t> values);

/// Render a count the way the paper prints them: "543K", "20M", "1744K"...
/// Values below 10'000 print exactly.
std::string human_count(double value);

}  // namespace ht
