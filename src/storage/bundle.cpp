#include "storage/bundle.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>

#include "storage/mapped_file.hpp"
#include "tensor/alto.hpp"
#include "tensor/csf.hpp"
#include "util/version.hpp"

namespace ht::storage {

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

const char* section_kind_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kMeta: return "meta";
    case SectionKind::kDims: return "dims";
    case SectionKind::kRanks: return "ranks";
    case SectionKind::kFactor: return "factor";
    case SectionKind::kCore: return "core";
    case SectionKind::kCsfLevelModes: return "csf.level_modes";
    case SectionKind::kCsfIdx: return "csf.idx";
    case SectionKind::kCsfPtr: return "csf.ptr";
    case SectionKind::kCsfLeafEntry: return "csf.leaf_entry";
    case SectionKind::kCsfRootLeafPtr: return "csf.root_leaf_ptr";
    case SectionKind::kCsfValues: return "csf.values";
    case SectionKind::kAltoKeysLo: return "alto.keys_lo";
    case SectionKind::kAltoKeysHi: return "alto.keys_hi";
    case SectionKind::kAltoValues: return "alto.values";
    case SectionKind::kAltoPerm: return "alto.perm";
    case SectionKind::kAltoPartPtr: return "alto.part_ptr";
    case SectionKind::kAltoPartMin: return "alto.part_min";
    case SectionKind::kAltoPartMax: return "alto.part_max";
  }
  return "unknown";
}

// ---- writer -----------------------------------------------------------------

BundleWriter::BundleWriter(const std::string& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    throw IoError("cannot create bundle file: " + path);
  }
  // Placeholder header; finish() rewrites it with real counts. A reader
  // never accepts this zeroed header, so a crash mid-write cannot pass for
  // a valid bundle.
  BundleHeader zero{};
  if (std::fwrite(&zero, 1, sizeof zero, f_) != sizeof zero) {
    std::fclose(f_);
    f_ = nullptr;
    throw IoError("short write on bundle header: " + path);
  }
  cursor_ = sizeof zero;
}

BundleWriter::~BundleWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void BundleWriter::pad_to_alignment() {
  static constexpr char kZeros[kBundleAlign] = {};
  const std::size_t rem = cursor_ % kBundleAlign;
  if (rem == 0) return;
  const std::size_t pad = kBundleAlign - rem;
  if (std::fwrite(kZeros, 1, pad, f_) != pad) {
    throw IoError("short write on bundle padding: " + path_);
  }
  cursor_ += pad;
}

void BundleWriter::add_section(SectionKind kind, std::uint32_t a,
                               std::uint32_t b, std::uint32_t elem_bytes,
                               const void* data, std::uint64_t bytes,
                               std::uint64_t rows, std::uint64_t cols) {
  HT_CHECK_MSG(!finished_, "add_section after finish");
  HT_CHECK_MSG(data != nullptr || bytes == 0, "null section payload");
  pad_to_alignment();
  SectionEntry e{};
  e.kind = static_cast<std::uint32_t>(kind);
  e.a = a;
  e.b = b;
  e.elem_bytes = elem_bytes;
  e.offset = cursor_;
  e.bytes = bytes;
  e.rows = rows;
  e.cols = cols;
  e.checksum = fnv1a64(data, bytes);
  if (bytes > 0 && std::fwrite(data, 1, bytes, f_) != bytes) {
    throw IoError("short write on bundle section: " + path_);
  }
  cursor_ += bytes;
  table_.push_back(e);
}

void BundleWriter::finish() {
  HT_CHECK_MSG(!finished_, "finish called twice");
  pad_to_alignment();
  const std::uint64_t table_offset = cursor_;
  const std::size_t table_bytes = table_.size() * sizeof(SectionEntry);
  if (table_bytes > 0 &&
      std::fwrite(table_.data(), 1, table_bytes, f_) != table_bytes) {
    throw IoError("short write on bundle section table: " + path_);
  }
  cursor_ += table_bytes;

  BundleHeader h{};
  std::memcpy(h.magic, kBundleMagic, sizeof h.magic);
  h.version = kBundleVersion;
  h.section_count = static_cast<std::uint32_t>(table_.size());
  h.table_offset = table_offset;
  h.file_bytes = cursor_;
  h.table_checksum = fnv1a64(table_.data(), table_bytes);
  if (std::fseek(f_, 0, SEEK_SET) != 0 ||
      std::fwrite(&h, 1, sizeof h, f_) != sizeof h) {
    throw IoError("cannot rewrite bundle header: " + path_);
  }
  if (std::fclose(f_) != 0) {
    f_ = nullptr;
    throw IoError("cannot close bundle file: " + path_);
  }
  f_ = nullptr;
  finished_ = true;
}

// ---- reader -----------------------------------------------------------------

BundleReader::BundleReader(const std::string& path, LoadMode mode)
    : mode_(mode) {
  arena_ = MappedFile::open(path);
  const std::byte* base = arena_->data();
  const std::size_t size = arena_->size();

  if (size < sizeof(BundleHeader)) {
    throw IoError("bundle truncated (smaller than header): " + path);
  }
  std::memcpy(&header_, base, sizeof header_);
  if (std::memcmp(header_.magic, kBundleMagic, sizeof kBundleMagic) != 0) {
    throw IoError("not a model bundle (bad magic): " + path);
  }
  if (header_.version != kBundleVersion) {
    throw IoError("unsupported bundle version " +
                  std::to_string(header_.version) + ": " + path);
  }
  if (header_.file_bytes != size) {
    throw IoError("bundle truncated (header says " +
                  std::to_string(header_.file_bytes) + " bytes, file has " +
                  std::to_string(size) + "): " + path);
  }
  const std::uint64_t table_bytes =
      std::uint64_t{header_.section_count} * sizeof(SectionEntry);
  if (header_.table_offset > size || table_bytes > size - header_.table_offset) {
    throw IoError("bundle section table out of bounds: " + path);
  }
  if (fnv1a64(base + header_.table_offset, table_bytes) !=
      header_.table_checksum) {
    throw IoError("bundle section table checksum mismatch: " + path);
  }
  table_.resize(header_.section_count);
  std::memcpy(table_.data(), base + header_.table_offset, table_bytes);

  for (const SectionEntry& e : table_) {
    if (e.offset % kBundleAlign != 0 || e.offset > header_.table_offset ||
        e.bytes > header_.table_offset - e.offset) {
      throw IoError("bundle section out of bounds: " + path);
    }
    if (e.elem_bytes > 0) {
      if (e.bytes % e.elem_bytes != 0 ||
          e.rows * e.cols * e.elem_bytes != e.bytes) {
        throw IoError("bundle section shape inconsistent with size: " + path);
      }
    }
  }
}

const SectionEntry* BundleReader::find(SectionKind kind, std::uint32_t a,
                                       std::uint32_t b) const {
  for (const SectionEntry& e : table_) {
    if (e.kind == static_cast<std::uint32_t>(kind) && e.a == a && e.b == b) {
      return &e;
    }
  }
  return nullptr;
}

const SectionEntry& BundleReader::require(SectionKind kind, std::uint32_t a,
                                          std::uint32_t b) const {
  const SectionEntry* e = find(kind, a, b);
  if (e == nullptr) {
    throw IoError(std::string("bundle missing required section ") +
                  section_kind_name(kind) + "[" + std::to_string(a) + "," +
                  std::to_string(b) + "]");
  }
  return *e;
}

const std::byte* BundleReader::payload(const SectionEntry& e) const {
  return arena_->data() + e.offset;
}

void BundleReader::verify_payload(const SectionEntry& e) const {
  if (fnv1a64(payload(e), e.bytes) != e.checksum) {
    throw IoError(std::string("bundle payload checksum mismatch in section ") +
                  section_kind_name(static_cast<SectionKind>(e.kind)));
  }
}

void BundleReader::verify_all() const {
  for (const SectionEntry& e : table_) verify_payload(e);
}

std::vector<std::pair<std::string, std::string>> BundleReader::read_meta(
    const SectionEntry& e) const {
  verify_payload(e);  // meta is tiny; always checked, even on kMap
  const char* p = reinterpret_cast<const char*>(payload(e));
  std::vector<std::pair<std::string, std::string>> kv;
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= e.bytes; ++i) {
    if (i == e.bytes || p[i] == '\n') {
      if (i > line_start) {
        const std::string line(p + line_start, i - line_start);
        const std::size_t eq = line.find('=');
        if (eq != std::string::npos) {
          kv.emplace_back(line.substr(0, eq), line.substr(eq + 1));
        }
      }
      line_start = i + 1;
    }
  }
  return kv;
}

// ---- model <-> bundle -------------------------------------------------------

namespace {

// Reserved meta keys describe the model itself; provenance entries are
// namespaced with this prefix so a trainer-supplied key can never collide
// with (or spoof) a reserved one.
constexpr const char* kProvPrefix = "prov:";

std::string format_meta(const core::TuckerModel& m) {
  char fitbuf[64];
  // %.17g round-trips every double exactly: the bit-exact fit requirement.
  std::snprintf(fitbuf, sizeof fitbuf, "%.17g", m.fit);
  std::string s;
  s += "format=HTBNDL\n";
  s += "format_version=" + std::to_string(kBundleVersion) + "\n";
  s += "order=" + std::to_string(m.order()) + "\n";
  s += std::string("fit=") + fitbuf + "\n";
  s += std::string("has_csf=") + (m.has_csf() ? "1" : "0") + "\n";
  s += std::string("has_alto=") + (m.has_alto() ? "1" : "0") + "\n";
  for (const auto& [key, value] : m.provenance) {
    HT_CHECK_MSG(key.find('\n') == std::string::npos &&
                     key.find('=') == std::string::npos &&
                     value.find('\n') == std::string::npos,
                 "provenance entries must not contain '\\n' or '=' keys");
    s += kProvPrefix + key + "=" + value + "\n";
  }
  return s;
}

void write_csf_tree(BundleWriter& w, const tensor::CsfTree& t,
                    std::uint32_t n) {
  // level_modes is std::size_t in memory; stored as fixed-width u64.
  std::vector<std::uint64_t> lm(t.level_modes.begin(), t.level_modes.end());
  w.add_array(SectionKind::kCsfLevelModes, n, 0, lm.data(), lm.size());
  for (std::size_t d = 0; d < t.levels(); ++d) {
    w.add_array(SectionKind::kCsfIdx, n, static_cast<std::uint32_t>(d),
                t.idx[d].data(), t.idx[d].size());
    if (d >= 1) {
      w.add_array(SectionKind::kCsfPtr, n, static_cast<std::uint32_t>(d),
                  t.ptr[d].data(), t.ptr[d].size());
    }
  }
  w.add_array(SectionKind::kCsfLeafEntry, n, 0, t.leaf_entry.data(),
              t.leaf_entry.size());
  w.add_array(SectionKind::kCsfRootLeafPtr, n, 0, t.root_leaf_ptr.data(),
              t.root_leaf_ptr.size());
  if (t.has_values()) {
    w.add_array(SectionKind::kCsfValues, n, 0, t.values.data(),
                t.values.size());
  }
}

la::Matrix load_factor(const BundleReader& r, const SectionEntry& e) {
  Span<double> s = r.load<double>(e);
  const auto rows = static_cast<std::size_t>(e.rows);
  const auto cols = static_cast<std::size_t>(e.cols);
  if (r.mode() == LoadMode::kMap) {
    return la::Matrix::view(rows, cols, s.data(), s.arena());
  }
  return la::Matrix(rows, cols, std::move(s.vec()));
}

tensor::CsfTree load_csf_tree(const BundleReader& r, std::uint32_t n,
                              std::size_t order) {
  tensor::CsfTree t;
  const SectionEntry& lme = r.require(SectionKind::kCsfLevelModes, n);
  // Level maps and the per-level span vectors are O(order) metadata: copied
  // unconditionally (and deliberately not counted by CopyStats, which
  // tracks payload bytes only).
  r.verify_payload(lme);
  const auto* lm = reinterpret_cast<const std::uint64_t*>(r.payload(lme));
  t.level_modes.assign(lm, lm + lme.rows);
  HT_CHECK_MSG(t.level_modes.size() == order,
               "bundle CSF level count != tensor order");

  t.idx.resize(order);
  t.ptr.resize(order);
  for (std::size_t d = 0; d < order; ++d) {
    t.idx[d] = r.load<tensor::index_t>(
        r.require(SectionKind::kCsfIdx, n, static_cast<std::uint32_t>(d)));
    if (d >= 1) {
      t.ptr[d] = r.load<tensor::nnz_t>(
          r.require(SectionKind::kCsfPtr, n, static_cast<std::uint32_t>(d)));
    }
  }
  t.leaf_entry = r.load<tensor::nnz_t>(r.require(SectionKind::kCsfLeafEntry, n));
  t.root_leaf_ptr =
      r.load<tensor::nnz_t>(r.require(SectionKind::kCsfRootLeafPtr, n));
  if (const SectionEntry* ve = r.find(SectionKind::kCsfValues, n)) {
    t.values = r.load<double>(*ve);
  }
  return t;
}

}  // namespace

void save_bundle(const core::TuckerModel& m, const std::string& path) {
  HT_CHECK_MSG(m.order() >= 1, "cannot save an empty model");
  HT_CHECK_MSG(m.dims.size() == m.order(),
               "model dims/factor count mismatch");

  const std::string tmp = path + ".tmp";
  {
    BundleWriter w(tmp);

    const std::string meta = format_meta(m);
    w.add_section(SectionKind::kMeta, 0, 0, 1, meta.data(), meta.size(),
                  meta.size(), 1);
    w.add_array(SectionKind::kDims, 0, 0, m.dims.data(), m.dims.size());
    const std::vector<tensor::index_t> ranks = m.ranks();
    w.add_array(SectionKind::kRanks, 0, 0, ranks.data(), ranks.size());

    for (std::size_t n = 0; n < m.order(); ++n) {
      const la::Matrix& u = m.decomposition.factors[n];
      w.add_section(SectionKind::kFactor, static_cast<std::uint32_t>(n), 0,
                    sizeof(double), u.data(), u.size() * sizeof(double),
                    u.rows(), u.cols());
    }
    const std::span<const double> core = m.decomposition.core.flat();
    w.add_section(SectionKind::kCore, 0, 0, sizeof(double), core.data(),
                  core.size() * sizeof(double), core.size(), 1);

    if (m.has_csf()) {
      for (std::size_t n = 0; n < m.csf->modes.size(); ++n) {
        write_csf_tree(w, m.csf->modes[n], static_cast<std::uint32_t>(n));
      }
    }
    if (m.has_alto()) {
      const tensor::AltoTensor& a = *m.alto;
      w.add_array(SectionKind::kAltoKeysLo, 0, 0, a.key_lo.data(),
                  a.key_lo.size());
      if (!a.key_hi.empty()) {
        w.add_array(SectionKind::kAltoKeysHi, 0, 0, a.key_hi.data(),
                    a.key_hi.size());
      }
      if (a.has_values()) {
        w.add_array(SectionKind::kAltoValues, 0, 0, a.values.data(),
                    a.values.size());
      }
      w.add_array(SectionKind::kAltoPerm, 0, 0, a.perm.data(), a.perm.size());
      w.add_array(SectionKind::kAltoPartPtr, 0, 0, a.part_ptr.data(),
                  a.part_ptr.size());
      w.add_array(SectionKind::kAltoPartMin, 0, 0, a.part_min.data(),
                  a.part_min.size());
      w.add_array(SectionKind::kAltoPartMax, 0, 0, a.part_max.data(),
                  a.part_max.size());
    }
    w.finish();
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot move bundle into place: " + path);
  }
}

core::TuckerModel load_bundle(const std::string& path, LoadMode mode) {
  BundleReader r(path, mode);
  core::TuckerModel m;

  const auto kv = r.read_meta(r.require(SectionKind::kMeta));
  for (const auto& [key, value] : kv) {
    if (key == "fit") {
      m.fit = std::strtod(value.c_str(), nullptr);
    } else if (key.rfind(kProvPrefix, 0) == 0) {
      m.provenance.emplace_back(key.substr(std::strlen(kProvPrefix)), value);
    }
  }

  const SectionEntry& de = r.require(SectionKind::kDims);
  r.verify_payload(de);
  const auto* dp = reinterpret_cast<const tensor::index_t*>(r.payload(de));
  m.dims.assign(dp, dp + de.rows);
  const std::size_t order = m.dims.size();
  HT_CHECK_MSG(order >= 1, "bundle has no dims");

  const SectionEntry& re = r.require(SectionKind::kRanks);
  r.verify_payload(re);
  const auto* rp = reinterpret_cast<const tensor::index_t*>(r.payload(re));
  tensor::Shape ranks(rp, rp + re.rows);
  HT_CHECK_MSG(ranks.size() == order, "bundle ranks/dims order mismatch");

  m.decomposition.factors.reserve(order);
  for (std::size_t n = 0; n < order; ++n) {
    const SectionEntry& fe =
        r.require(SectionKind::kFactor, static_cast<std::uint32_t>(n));
    HT_CHECK_MSG(fe.rows == m.dims[n] && fe.cols == ranks[n],
                 "bundle factor " << n << " shape mismatch");
    m.decomposition.factors.push_back(load_factor(r, fe));
  }

  const SectionEntry& ce = r.require(SectionKind::kCore);
  Span<double> core = r.load<double>(ce);
  std::size_t core_total = 1;
  for (tensor::index_t rk : ranks) core_total *= rk;
  HT_CHECK_MSG(core.size() == core_total, "bundle core size mismatch");
  if (mode == LoadMode::kMap) {
    m.decomposition.core =
        tensor::DenseTensor::view(ranks, core.data(), core.arena());
  } else {
    m.decomposition.core = tensor::DenseTensor(ranks, std::move(core.vec()));
  }

  if (r.find(SectionKind::kCsfLevelModes, 0) != nullptr) {
    auto csf = std::make_shared<tensor::CsfTensor>();
    csf->modes.reserve(order);
    for (std::size_t n = 0; n < order; ++n) {
      csf->modes.push_back(
          load_csf_tree(r, static_cast<std::uint32_t>(n), order));
    }
    m.csf = std::move(csf);
  }

  if (const SectionEntry* lo = r.find(SectionKind::kAltoKeysLo)) {
    // Optional sections come back empty when absent; from_views recomputes
    // the delinearization masks from dims and cross-validates the lengths.
    Span<std::uint64_t> hi;
    if (const SectionEntry* e = r.find(SectionKind::kAltoKeysHi)) {
      hi = r.load<std::uint64_t>(*e);
    }
    Span<double> values;
    if (const SectionEntry* e = r.find(SectionKind::kAltoValues)) {
      values = r.load<double>(*e);
    }
    m.alto = std::make_shared<tensor::AltoTensor>(tensor::AltoTensor::from_views(
        m.dims, r.load<std::uint64_t>(*lo), std::move(hi),
        r.load<tensor::nnz_t>(r.require(SectionKind::kAltoPerm)),
        std::move(values),
        r.load<tensor::nnz_t>(r.require(SectionKind::kAltoPartPtr)),
        r.load<tensor::index_t>(r.require(SectionKind::kAltoPartMin)),
        r.load<tensor::index_t>(r.require(SectionKind::kAltoPartMax))));
  }
  return m;
}

BundleInfo inspect_bundle(const std::string& path) {
  BundleReader r(path, LoadMode::kMap);
  BundleInfo info;
  info.header = r.header();
  info.sections = r.sections();
  for (const SectionEntry& e : info.sections) {
    info.payload_bytes += e.bytes;
  }
  if (const SectionEntry* me = r.find(SectionKind::kMeta)) {
    info.meta = r.read_meta(*me);
  }
  return info;
}

std::string describe_bundle(const BundleInfo& info) {
  std::ostringstream os;
  os << "bundle: version " << info.header.version << ", "
     << info.header.section_count << " sections, " << info.header.file_bytes
     << " bytes (" << info.payload_bytes << " payload)\n";
  for (const auto& [key, value] : info.meta) {
    os << "  " << key << " = " << value << "\n";
  }
  for (const SectionEntry& e : info.sections) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %-18s a=%u b=%u  %8" PRIu64 " B  (%" PRIu64 " x %" PRIu64
                  " x %uB) @ %" PRIu64 "\n",
                  section_kind_name(static_cast<SectionKind>(e.kind)), e.a,
                  e.b, e.bytes, e.rows, e.cols, e.elem_bytes, e.offset);
    os << line;
  }
  return os.str();
}

}  // namespace ht::storage
