// Backing-store abstraction of the storage layer.
//
// An Arena is a contiguous, immutable block of bytes with shared ownership:
// the memory a read-only data structure's views point into. Two kinds exist
// today — HeapArena (bytes read into malloc'd memory) and MappedFile (bytes
// mmap'd straight from disk, see mapped_file.hpp) — and every zero-copy
// container (storage::Span<T>, and through it la::Matrix, tensor::CooTensor,
// tensor::CsfTree, tensor::DenseTensor) keeps its backing arena alive via
// shared_ptr, so a loaded model bundle stays valid for exactly as long as
// any structure still references it.
//
// Thread-safety: arenas are immutable after construction and may be shared
// by any number of concurrent readers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ht::storage {

class Arena {
 public:
  virtual ~Arena() = default;

  /// First byte of the block (nullptr iff size() == 0).
  [[nodiscard]] virtual const std::byte* data() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// True when the bytes live in ordinary process memory (heap), false when
  /// they are demand-paged from a file (mmap) and may fault on first touch.
  [[nodiscard]] virtual bool resident() const = 0;

  /// Human-readable origin ("heap", or the mapped file's path).
  [[nodiscard]] virtual std::string origin() const = 0;
};

using ArenaPtr = std::shared_ptr<const Arena>;

/// Arena over process-heap bytes; used when a bundle is loaded in copy mode
/// (LoadMode::kCopy) or on platforms without mmap.
class HeapArena final : public Arena {
 public:
  HeapArena() = default;
  explicit HeapArena(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] const std::byte* data() const override {
    return bytes_.data();
  }
  [[nodiscard]] std::size_t size() const override { return bytes_.size(); }
  [[nodiscard]] bool resident() const override { return true; }
  [[nodiscard]] std::string origin() const override { return "heap"; }

  [[nodiscard]] std::vector<std::byte>& bytes() { return bytes_; }

 private:
  std::vector<std::byte> bytes_;
};

/// Test hook counting per-entry payload copies performed by the storage
/// layer's *load* paths (bundle section materialization and view
/// detachment). The zero-copy acceptance test resets the counters, loads a
/// bundle via mmap, and asserts nothing was copied for the factor/core/CSF
/// sections; small metadata (header, section table, dims/ranks, level maps)
/// is deliberately not counted — zero-copy is a statement about the O(nnz)
/// and O(I*R) arrays, not the O(order) ones.
struct CopyStats {
  /// Payload bytes copied into heap-owned storage.
  static std::atomic<std::uint64_t> bytes_copied;
  /// Number of distinct array copies.
  static std::atomic<std::uint64_t> copies;

  static void reset() {
    bytes_copied.store(0, std::memory_order_relaxed);
    copies.store(0, std::memory_order_relaxed);
  }
  static void record(std::size_t bytes) {
    bytes_copied.fetch_add(bytes, std::memory_order_relaxed);
    copies.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] static std::uint64_t bytes() {
    return bytes_copied.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static std::uint64_t count() {
    return copies.load(std::memory_order_relaxed);
  }
};

}  // namespace ht::storage
