// Owned-or-borrowed typed buffer: the view layer every HyperTensor data
// structure holds its arrays through.
//
// A Span<T> is in one of two states:
//   - owned: wraps a std::vector<T> (the default; mutable via vec()). This
//     is the train-time state and is behaviorally identical to the plain
//     vector members it replaced.
//   - view: a (pointer, size) window into a shared Arena — typically a
//     MappedFile holding a model bundle — kept alive by shared_ptr. Views
//     are strictly read-only; every mutating accessor throws ht::Error, so
//     a serve-time structure can never scribble on (or fault writing to) a
//     PROT_READ mapping.
//
// Reads (data/size/operator[]/iteration) work identically in both states,
// which is what lets the TTMc/TRSVD kernels run unchanged on heap-owned and
// mmap-backed memory: they already consume std::span<const T> built from
// data()+size() once per call. The accessors branch on the state instead of
// caching pointers, so mutating the owned vector through vec() can never
// leave a stale cached pointer behind.
//
// Copying an owned Span deep-copies the vector (value semantics, as
// before); copying a view copies the window and shares the arena (cheap —
// serve-time readers hand models around by value without duplicating the
// mapping). detach() converts a view into an owned deep copy and records
// the copy in CopyStats (the zero-copy test hook).
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "storage/arena.hpp"
#include "util/error.hpp"

namespace ht::storage {

template <typename T>
class Span {
 public:
  using value_type = T;
  using const_iterator = const T*;

  Span() = default;

  /// Owned state, taking the vector over (implicit on purpose: assigning a
  /// freshly built std::vector to a structure member keeps working).
  /*implicit*/ Span(std::vector<T> v) : own_(std::move(v)) {}

  /// View state: a window of `size` elements at `data` inside `arena`.
  /// The arena participates in shared ownership; `data` must stay valid for
  /// the arena's lifetime.
  static Span view(const T* data, std::size_t size, ArenaPtr arena) {
    HT_CHECK_MSG(data != nullptr || size == 0, "null view with nonzero size");
    Span s;
    s.view_ = data;
    s.view_size_ = size;
    s.arena_ = std::move(arena);
    return s;
  }

  // ---- state ---------------------------------------------------------------

  [[nodiscard]] bool is_view() const { return arena_ != nullptr; }
  /// The backing arena of a view (nullptr in the owned state).
  [[nodiscard]] const ArenaPtr& arena() const { return arena_; }

  // ---- read access (both states) -------------------------------------------

  [[nodiscard]] const T* data() const {
    return is_view() ? view_ : own_.data();
  }
  [[nodiscard]] std::size_t size() const {
    return is_view() ? view_size_ : own_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] const T& front() const { return data()[0]; }
  [[nodiscard]] const T& back() const { return data()[size() - 1]; }
  [[nodiscard]] const_iterator begin() const { return data(); }
  [[nodiscard]] const_iterator end() const { return data() + size(); }

  /*implicit*/ operator std::span<const T>() const { return {data(), size()}; }
  /// Materialize a heap copy (tests and small metadata paths).
  /*implicit*/ operator std::vector<T>() const { return {begin(), end()}; }

  // ---- mutation (owned state only) -----------------------------------------

  /// The underlying vector; mutate freely (reads always consult the vector,
  /// nothing caches its data pointer). Throws on a view.
  [[nodiscard]] std::vector<T>& vec() {
    HT_CHECK_MSG(!is_view(), "cannot mutate a storage view (mmap-backed "
                             "buffers are read-only; detach() first)");
    return own_;
  }
  [[nodiscard]] T* mutable_data() { return vec().data(); }

  /// Replace a view with an owned deep copy (no-op when already owned).
  /// Records the copied bytes in CopyStats.
  void detach() {
    if (!is_view()) return;
    std::vector<T> copy(view_, view_ + view_size_);
    CopyStats::record(view_size_ * sizeof(T));
    arena_.reset();
    view_ = nullptr;
    view_size_ = 0;
    own_ = std::move(copy);
  }

  /// Element-wise equality (state-agnostic: a view equals the owned copy of
  /// the same data).
  friend bool operator==(const Span& a, const Span& b) {
    if (a.size() != b.size()) return false;
    if (a.data() == b.data()) return true;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  std::vector<T> own_;
  const T* view_ = nullptr;
  std::size_t view_size_ = 0;
  ArenaPtr arena_;
};

}  // namespace ht::storage
