#include "storage/arena.hpp"

namespace ht::storage {

std::atomic<std::uint64_t> CopyStats::bytes_copied{0};
std::atomic<std::uint64_t> CopyStats::copies{0};

}  // namespace ht::storage
