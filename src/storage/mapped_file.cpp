#include "storage/mapped_file.hpp"

#include <cstdio>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HT_HAVE_MMAP 0
#endif

namespace ht::storage {

MappedFile::~MappedFile() {
#if HT_HAVE_MMAP
  if (mapped_ != nullptr) ::munmap(mapped_, map_length_);
#endif
}

std::shared_ptr<MappedFile> MappedFile::open(const std::string& path) {
  // std::make_shared cannot reach the private constructor; the explicit
  // shared_ptr keeps the ctor hidden from everyone else.
  std::shared_ptr<MappedFile> f(new MappedFile());
  f->path_ = path;
#if HT_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open " + path);
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("cannot stat " + path);
  }
  const auto length = static_cast<std::size_t>(st.st_size);
  if (length == 0) {
    ::close(fd);
    return f;  // valid empty arena; mmap(0) is not portable
  }
  void* p = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (p == MAP_FAILED) throw IoError("cannot mmap " + path);
  f->mapped_ = p;
  f->map_length_ = length;
  f->data_ = static_cast<const std::byte*>(p);
  f->size_ = length;
#else
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) throw IoError("cannot open " + path);
  std::fseek(fp, 0, SEEK_END);
  const long end = std::ftell(fp);
  if (end < 0) {
    std::fclose(fp);
    throw IoError("cannot determine size of " + path);
  }
  std::fseek(fp, 0, SEEK_SET);
  f->fallback_.resize(static_cast<std::size_t>(end));
  const std::size_t got =
      f->fallback_.empty()
          ? 0
          : std::fread(f->fallback_.data(), 1, f->fallback_.size(), fp);
  std::fclose(fp);
  if (got != f->fallback_.size()) throw IoError("short read of " + path);
  f->data_ = f->fallback_.data();
  f->size_ = f->fallback_.size();
#endif
  return f;
}

}  // namespace ht::storage
