// Read-only memory-mapped file arena.
//
// MappedFile mmap()s a whole file PROT_READ and exposes it as an Arena, so
// loading a model bundle is O(1) in the data size: the section table is
// validated eagerly, the payload pages fault in lazily as queries touch
// them, and the dataset can exceed physical RAM (the kernel evicts clean
// pages freely — they are backed by the file itself). This is the mechanism
// behind LoadMode::kMap in storage/bundle.hpp and the prerequisite for the
// out-of-core roadmap items.
//
// On platforms without mmap (gated on POSIX feature macros) open() falls
// back to reading the file into a HeapArena-style buffer — same interface,
// no zero-copy guarantee (resident() reports true in that case).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "storage/arena.hpp"

namespace ht::storage {

class MappedFile final : public Arena {
 public:
  ~MappedFile() override;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map `path` read-only; throws ht::IoError on open/stat/map failure.
  /// An empty file maps to a valid zero-length arena.
  static std::shared_ptr<MappedFile> open(const std::string& path);

  [[nodiscard]] const std::byte* data() const override { return data_; }
  [[nodiscard]] std::size_t size() const override { return size_; }
  /// False for a real mapping (pages fault in on demand); true when the
  /// no-mmap fallback read the file into heap memory.
  [[nodiscard]] bool resident() const override { return mapped_ == nullptr; }
  [[nodiscard]] std::string origin() const override { return path_; }

 private:
  MappedFile() = default;

  std::string path_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapped_ = nullptr;        // munmap target (null under the fallback)
  std::size_t map_length_ = 0;    // munmap length
  std::vector<std::byte> fallback_;  // heap copy when mmap is unavailable
};

}  // namespace ht::storage
