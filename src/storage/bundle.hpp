// Versioned, checksummed binary model-bundle container.
//
// A bundle is one self-describing file holding every array of a trained
// core::TuckerModel — factor matrices, core tensor, dims/ranks, provenance
// metadata, and (optionally) the per-mode CSF trees and/or the linearized
// ALTO form of the training tensor.
// The layout is designed for the two ways a model is consumed:
//
//   - LoadMode::kCopy: every payload is read into fresh heap vectors (each
//     copy recorded in storage::CopyStats). The loaded model is fully
//     mutable — this is the path dist_hooi restart uses, since it keeps
//     iterating on the factors.
//   - LoadMode::kMap: the file is mmap'd (storage::MappedFile) and every
//     array becomes a storage::Span view into the mapping — zero payload
//     copies, O(1) load time regardless of model size, pages faulted in on
//     first touch. This is the serve-time path: a cold process answers its
//     first reconstruct_at() query after reading only the 64-byte header
//     and the section table.
//
// File layout (all integers little-endian, the only byte order the paper's
// platforms — and this repo's CI — use):
//
//   [ BundleHeader: 64 bytes ]
//   [ payload 0 ] ... [ payload k ]     each 64-byte aligned, zero-padded
//   [ section table: section_count * 64-byte SectionEntry ]
//
//   BundleHeader { magic "HTBNDL1\0", version, section_count, table_offset,
//                  file_bytes, table_checksum }
//   SectionEntry { kind, a, b, elem_bytes, offset, bytes, rows, cols,
//                  checksum }
//
// `a`/`b` disambiguate repeated kinds: for kFactor, a = mode; for CSF
// sections, a = root mode and b = tree level. Payloads are 64-byte aligned
// so an mmap'd view of any element type is correctly aligned (mmap bases
// are page-aligned, so offset alignment is file-offset alignment).
//
// Integrity: the header is validated structurally (magic, version, file
// size); the section table always has its FNV-1a checksum verified; payload
// checksums are always verified on kCopy loads and for small sections on
// kMap loads. Large-payload checksums are skipped on kMap on purpose —
// checksumming would fault in every page and forfeit the O(1) cold load the
// mode exists for. `tucker_cli --inspect-model --verify` runs the full
// check explicitly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/tucker_model.hpp"
#include "storage/arena.hpp"
#include "storage/span.hpp"
#include "util/error.hpp"

namespace ht::storage {

inline constexpr char kBundleMagic[8] = {'H', 'T', 'B', 'N', 'D', 'L',
                                         '1', '\0'};
inline constexpr std::uint32_t kBundleVersion = 1;
inline constexpr std::size_t kBundleAlign = 64;

/// What a section holds. `a`/`b` meaning per kind is given inline.
enum class SectionKind : std::uint32_t {
  kMeta = 1,            // "key=value\n" text (provenance, fit, order)
  kDims = 2,            // index_t[order]: training-tensor mode sizes
  kRanks = 3,           // index_t[order]: decomposition ranks
  kFactor = 4,          // double[rows*cols], row-major; a = mode
  kCore = 5,            // double[prod(ranks)], DenseTensor layout
  kCsfLevelModes = 6,   // u64[order]: level -> tensor mode; a = root mode
  kCsfIdx = 7,          // index_t[]: a = root mode, b = level
  kCsfPtr = 8,          // nnz_t[]:   a = root mode, b = level (b >= 1)
  kCsfLeafEntry = 9,    // nnz_t[num_leaves]; a = root mode
  kCsfRootLeafPtr = 10, // nnz_t[num_roots + 1]; a = root mode
  kCsfValues = 11,      // double[num_leaves]; a = root mode
  // ALTO sections (tensor/alto.hpp): the delinearization masks are a pure
  // function of kDims, so only the key/value/partition arrays are stored.
  kAltoKeysLo = 12,     // u64[nnz]: low key words, ascending
  kAltoKeysHi = 13,     // u64[nnz]: high key words (key_bits > 64 only)
  kAltoValues = 14,     // double[nnz]: values in key order
  kAltoPerm = 15,       // nnz_t[nnz]: slot -> original ordinal
  kAltoPartPtr = 16,    // nnz_t[parts + 1]: partition slot intervals
  kAltoPartMin = 17,    // index_t[parts * order], row-major [part][mode]
  kAltoPartMax = 18,    // index_t[parts * order], row-major [part][mode]
};

/// 64-byte on-disk header. Plain-old-data, written/read by memcpy.
struct BundleHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t section_count;
  std::uint64_t table_offset;
  std::uint64_t file_bytes;
  std::uint64_t table_checksum;
  std::uint8_t reserved[24];
};
static_assert(sizeof(BundleHeader) == 64);

/// 64-byte on-disk section-table entry. rows/cols carry the logical shape
/// for matrix sections (rows = element count, cols = 1 elsewhere).
struct SectionEntry {
  std::uint32_t kind;
  std::uint32_t a;
  std::uint32_t b;
  std::uint32_t elem_bytes;
  std::uint64_t offset;
  std::uint64_t bytes;
  std::uint64_t rows;
  std::uint64_t cols;
  std::uint64_t checksum;
  std::uint64_t reserved;
};
static_assert(sizeof(SectionEntry) == 64);

/// FNV-1a 64-bit over a byte range. Dependency-free, order-sensitive, good
/// enough to catch truncation/corruption (not an integrity MAC).
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// Streaming bundle writer: open -> add sections -> finish. finish() seals
/// the file by appending the section table and rewriting the header with
/// the final counts and checksums; a crash before finish() leaves a file
/// whose zeroed header no reader accepts.
class BundleWriter {
 public:
  explicit BundleWriter(const std::string& path);
  ~BundleWriter();
  BundleWriter(const BundleWriter&) = delete;
  BundleWriter& operator=(const BundleWriter&) = delete;

  /// Append one section payload (64-byte aligned automatically).
  void add_section(SectionKind kind, std::uint32_t a, std::uint32_t b,
                   std::uint32_t elem_bytes, const void* data,
                   std::uint64_t bytes, std::uint64_t rows,
                   std::uint64_t cols);

  /// Typed convenience: element count becomes rows, cols = 1.
  template <typename T>
  void add_array(SectionKind kind, std::uint32_t a, std::uint32_t b,
                 const T* data, std::size_t count) {
    add_section(kind, a, b, sizeof(T), data, count * sizeof(T), count, 1);
  }

  /// Write table + final header and close. Must be called exactly once.
  void finish();

 private:
  std::FILE* f_ = nullptr;
  std::string path_;
  std::uint64_t cursor_ = 0;
  std::vector<SectionEntry> table_;
  bool finished_ = false;

  void pad_to_alignment();
};

enum class LoadMode {
  kCopy,  // heap-owned vectors; payload checksums verified; mutable
  kMap,   // zero-copy mmap views; O(1) load; read-only structures
};

/// Validated random-access reader over a bundle file. Construction reads
/// and verifies the header + section table only; payloads are touched when
/// a section is materialized (or never, for unused sections in kMap mode).
class BundleReader {
 public:
  BundleReader(const std::string& path, LoadMode mode);

  [[nodiscard]] LoadMode mode() const { return mode_; }
  [[nodiscard]] const BundleHeader& header() const { return header_; }
  [[nodiscard]] const std::vector<SectionEntry>& sections() const {
    return table_;
  }
  [[nodiscard]] const ArenaPtr& arena() const { return arena_; }

  /// First section matching (kind, a, b); nullptr when absent.
  [[nodiscard]] const SectionEntry* find(SectionKind kind, std::uint32_t a = 0,
                                         std::uint32_t b = 0) const;
  /// find() that throws ht::IoError when the section is missing.
  [[nodiscard]] const SectionEntry& require(SectionKind kind,
                                            std::uint32_t a = 0,
                                            std::uint32_t b = 0) const;

  /// Raw payload pointer (validated against the file bounds at open).
  [[nodiscard]] const std::byte* payload(const SectionEntry& e) const;

  /// Materialize a section as a typed Span: a zero-copy view (kMap) or an
  /// owned, checksum-verified heap copy (kCopy, recorded in CopyStats).
  /// Checks elem_bytes and alignment against T.
  template <typename T>
  [[nodiscard]] Span<T> load(const SectionEntry& e) const {
    HT_CHECK_MSG(e.elem_bytes == sizeof(T),
                 "bundle section element size mismatch");
    HT_CHECK_MSG(e.bytes % sizeof(T) == 0, "bundle section size mismatch");
    HT_CHECK_MSG(e.offset % alignof(T) == 0,
                 "bundle section misaligned for element type");
    const T* p = reinterpret_cast<const T*>(payload(e));
    const std::size_t count = e.bytes / sizeof(T);
    if (mode_ == LoadMode::kMap) {
      return Span<T>::view(p, count, arena_);
    }
    verify_payload(e);
    CopyStats::record(e.bytes);
    return Span<T>(std::vector<T>(p, p + count));
  }

  /// Verify one section's payload checksum (throws ht::IoError on
  /// mismatch). kCopy loads call this implicitly; kMap consumers can run it
  /// explicitly (tucker_cli --inspect-model --verify).
  void verify_payload(const SectionEntry& e) const;
  /// Verify every section payload.
  void verify_all() const;

  /// Parse a kMeta section into ordered key/value pairs.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> read_meta(
      const SectionEntry& e) const;

 private:
  LoadMode mode_;
  ArenaPtr arena_;
  BundleHeader header_{};
  std::vector<SectionEntry> table_;
};

// ---- model-level API --------------------------------------------------------

/// Serialize a model to `path` (atomic: written to a temp sibling and
/// renamed into place). CSF sections are written only when m.csf is set,
/// ALTO sections only when m.alto is set.
void save_bundle(const core::TuckerModel& m, const std::string& path);

/// Load a model bundle. kMap keeps every array as a view into the mapped
/// file (held alive by shared ownership inside the returned structures);
/// kCopy materializes independent heap copies.
core::TuckerModel load_bundle(const std::string& path,
                              LoadMode mode = LoadMode::kMap);

/// Header/table-level summary (no payload reads): what --inspect-model
/// prints before deciding whether to pay for --verify.
struct BundleInfo {
  BundleHeader header{};
  std::vector<SectionEntry> sections;
  std::vector<std::pair<std::string, std::string>> meta;
  std::uint64_t payload_bytes = 0;
};

[[nodiscard]] BundleInfo inspect_bundle(const std::string& path);

/// Human-readable multi-line rendering of a BundleInfo.
[[nodiscard]] std::string describe_bundle(const BundleInfo& info);

[[nodiscard]] const char* section_kind_name(SectionKind kind);

}  // namespace ht::storage
