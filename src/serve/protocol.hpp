// tuckerd wire protocol: newline-delimited text requests and responses.
//
// One request per line; one response line per request. Responses start with
// "OK" or "ERR". Values are printed with %.17g, so a double round-trips the
// wire bit-exactly.
//
//   PING                         -> OK pong
//   INFO                         -> OK epoch=3 order=3 dims=600x240x32
//                                   ranks=10x10x10 fit=0.412003 view=mmap
//   SCORE i0 i1 ... i{N-1}       -> OK <value>
//   SCOREB i,i,i;i,i,i;...       -> OK <v1> <v2> ...        (batched)
//   TOPK entity k [rest...]      -> OK item:score item:score ...
//   STATS                        -> OK epoch=3 reloads=2 hits=10 misses=4
//                                   evictions=0 cached=4
//   RELOAD                       -> OK epoch=4           (force reload now)
//   SHUTDOWN                     -> OK bye               (daemon exits)
//   QUIT                         -> OK bye               (connection closes)
//
// Parsing and formatting are plain functions so the daemon, the
// tucker_cli client mode, and the unit tests share one implementation
// without touching sockets.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "serve/query_engine.hpp"
#include "tensor/types.hpp"

namespace ht::serve {

enum class RequestType {
  kPing,
  kInfo,
  kScore,
  kScoreBatch,
  kTopk,
  kStats,
  kReload,
  kShutdown,
  kQuit,
  kInvalid,
};

struct Request {
  RequestType type = RequestType::kInvalid;
  /// kScore: one entry; kScoreBatch: one entry per ';' group.
  std::vector<std::vector<index_t>> queries;
  index_t entity = 0;       // kTopk
  std::size_t k = 0;        // kTopk
  std::vector<index_t> rest;  // kTopk fixed coordinates
  std::string error;        // kInvalid: why parsing failed
};

/// Parse one request line (leading/trailing whitespace ignored). Never
/// throws; malformed input yields kInvalid with `error` set.
[[nodiscard]] Request parse_request(const std::string& line);

[[nodiscard]] std::string format_value(double v);
[[nodiscard]] std::string format_scores(std::span<const double> values);
[[nodiscard]] std::string format_topk(std::span<const Scored> items);
[[nodiscard]] std::string format_err(const std::string& message);

/// True when a response line indicates success.
[[nodiscard]] bool response_ok(const std::string& response);

}  // namespace ht::serve
