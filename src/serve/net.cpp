#include "serve/net.hpp"

#if HT_HAVE_SOCKETS

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "util/error.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace ht::serve {

namespace {

void send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      HT_CHECK_MSG(false, "socket send failed: " << std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

void send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  send_all(fd, framed.data(), framed.size());
}

/// Pull one newline-terminated line out of (fd, carry). Returns false on
/// clean EOF with no buffered data.
bool recv_line(int fd, std::string& carry, std::string& line) {
  for (;;) {
    const std::size_t pos = carry.find('\n');
    if (pos != std::string::npos) {
      line.assign(carry, 0, pos);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      carry.erase(0, pos + 1);
      return true;
    }
    char buf[4096];
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;  // connection reset: treat as EOF
    }
    if (r == 0) {
      if (carry.empty()) return false;
      line = std::move(carry);  // final unterminated line
      carry.clear();
      return true;
    }
    carry.append(buf, static_cast<std::size_t>(r));
  }
}

int connect_target(const std::string& target) {
  if (target.find('/') != std::string::npos) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    HT_CHECK_MSG(target.size() < sizeof(addr.sun_path),
                 "unix socket path too long: " << target);
    std::strncpy(addr.sun_path, target.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    HT_CHECK_MSG(fd >= 0, "socket(): " << std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      const int err = errno;
      ::close(fd);
      HT_CHECK_MSG(false, "connect(" << target
                                     << "): " << std::strerror(err));
    }
    return fd;
  }

  std::string host = "127.0.0.1", port = target;
  const std::size_t colon = target.rfind(':');
  if (colon != std::string::npos) {
    host = target.substr(0, colon);
    port = target.substr(colon + 1);
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  HT_CHECK_MSG(rc == 0 && res != nullptr,
               "cannot resolve " << target << ": " << ::gai_strerror(rc));
  int fd = -1;
  int err = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) { err = errno; continue; }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    err = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  HT_CHECK_MSG(fd >= 0,
               "connect(" << target << "): " << std::strerror(err));
  return fd;
}

}  // namespace

SocketServer::~SocketServer() {
  shutdown();
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void SocketServer::listen_unix(const std::string& path) {
  HT_CHECK_MSG(listen_fd_ < 0, "server is already listening");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HT_CHECK_MSG(path.size() < sizeof(addr.sun_path),
               "unix socket path too long: " << path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HT_CHECK_MSG(fd >= 0, "socket(): " << std::strerror(errno));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    HT_CHECK_MSG(false, "bind/listen(" << path
                                       << "): " << std::strerror(err));
  }
  listen_fd_ = fd;
  unix_path_ = path;
}

void SocketServer::listen_tcp(int port) {
  HT_CHECK_MSG(listen_fd_ < 0, "server is already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HT_CHECK_MSG(fd >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    HT_CHECK_MSG(false, "bind/listen(127.0.0.1:"
                            << port << "): " << std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
}

void SocketServer::serve(Handler handler) {
  HT_CHECK_MSG(listen_fd_ >= 0, "serve() before listen");
  handler_ = std::move(handler);
  running_.store(true, std::memory_order_release);
  accept_loop();
}

void SocketServer::serve_async(Handler handler) {
  HT_CHECK_MSG(listen_fd_ >= 0, "serve_async() before listen");
  handler_ = std::move(handler);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&SocketServer::accept_loop, this);
}

void SocketServer::accept_loop() {
  // Snapshot the fd: shutdown() closes it (which unblocks accept) but only
  // clears the member after this thread is joined, so no racy member read.
  const int listen_fd = listen_fd_;
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by shutdown()
    }
    reap_finished();
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void SocketServer::handle_connection(int fd) {
  std::string carry, line;
  while (recv_line(fd, carry, line)) {
    std::string response;
    try {
      response = handler_(line);
    } catch (const std::exception& e) {
      response = std::string("ERR ") + e.what();
    }
    try {
      send_line(fd, response);
    } catch (const std::exception&) {
      break;  // peer went away mid-response
    }
    // Protocol-level close: QUIT/SHUTDOWN answer "OK bye" then hang up.
    if (response == "OK bye") break;
  }
  ::close(fd);
}

void SocketServer::reap_finished() {
  // Joining here keeps the worker list from growing without bound on a
  // long-lived daemon; finished threads join instantly.
  std::lock_guard<std::mutex> lock(workers_mutex_);
  if (workers_.size() < 64) return;
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void SocketServer::shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel) &&
      listen_fd_ < 0) {
    return;
  }
  if (listen_fd_ >= 0) {
    // Closing the listen socket unblocks the accept loop; the member is
    // cleared only after the accept thread is joined below (it still
    // holds its own copy of the fd value).
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& w : workers_) w.join();
  workers_.clear();
}

std::vector<std::string> query_lines(const std::string& target,
                                     const std::vector<std::string>& lines) {
#if !defined(MSG_NOSIGNAL) || MSG_NOSIGNAL == 0
  ::signal(SIGPIPE, SIG_IGN);
#endif
  const int fd = connect_target(target);
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  std::string carry, line;
  try {
    for (const std::string& req : lines) {
      send_line(fd, req);
      HT_CHECK_MSG(recv_line(fd, carry, line),
                   "server closed the connection before responding");
      responses.push_back(line);
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return responses;
}

std::string query_line(const std::string& target, const std::string& line) {
  return query_lines(target, {line}).front();
}

}  // namespace ht::serve

#endif  // HT_HAVE_SOCKETS
