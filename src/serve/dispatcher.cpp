#include "serve/dispatcher.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace ht::serve {

Dispatcher::Dispatcher(ModelHandle& handle, QueryOptions options,
                       DispatcherHooks hooks)
    : handle_(handle), options_(options), hooks_(std::move(hooks)) {}

std::shared_ptr<QueryEngine> Dispatcher::engine() {
  const std::uint64_t epoch = handle_.epoch();
  std::lock_guard<std::mutex> lock(mutex_);
  if (engine_ == nullptr || engine_epoch_ != epoch) {
    auto snap = handle_.snapshot();
    if (snap == nullptr) return nullptr;
    engine_ = std::make_shared<QueryEngine>(std::move(snap), options_);
    engine_epoch_ = epoch;
  }
  return engine_;
}

std::string Dispatcher::handle_line(const std::string& line) {
  const Request req = parse_request(line);
  try {
    switch (req.type) {
      case RequestType::kInvalid:
        return format_err(req.error);
      case RequestType::kPing:
        return "OK pong";
      case RequestType::kQuit:
      case RequestType::kShutdown:
        if (req.type == RequestType::kShutdown) {
          if (!hooks_.shutdown) return format_err("shutdown not available");
          hooks_.shutdown();
        }
        return "OK bye";
      case RequestType::kReload: {
        if (!hooks_.reload) return format_err("reload not available");
        hooks_.reload();
        char buf[48];
        std::snprintf(buf, sizeof buf, "OK epoch=%llu",
                      static_cast<unsigned long long>(handle_.epoch()));
        return buf;
      }
      case RequestType::kInfo: {
        auto eng = engine();
        if (eng == nullptr) return format_err("no model published");
        const ServeModel& m = eng->model();
        std::string dims, ranks;
        for (std::size_t n = 0; n < m.order(); ++n) {
          if (n) { dims += 'x'; ranks += 'x'; }
          dims += std::to_string(m.dims()[n]);
          ranks += std::to_string(m.ranks()[n]);
        }
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "OK epoch=%llu order=%zu dims=%s ranks=%s fit=%.6f"
                      " view=%s",
                      static_cast<unsigned long long>(handle_.epoch()),
                      m.order(), dims.c_str(), ranks.c_str(), m.fit(),
                      m.is_view() ? "mmap" : "heap");
        return buf;
      }
      case RequestType::kStats: {
        auto eng = engine();
        if (eng == nullptr) return format_err("no model published");
        const CacheStats s = eng->cache_stats();
        char buf[192];
        std::snprintf(
            buf, sizeof buf,
            "OK epoch=%llu reloads=%llu hits=%llu misses=%llu"
            " evictions=%llu capacity=%zu",
            static_cast<unsigned long long>(handle_.epoch()),
            static_cast<unsigned long long>(handle_.reloads()),
            static_cast<unsigned long long>(s.hits),
            static_cast<unsigned long long>(s.misses),
            static_cast<unsigned long long>(s.evictions),
            eng->options().cache_entries);
        return buf;
      }
      case RequestType::kScore: {
        auto eng = engine();
        if (eng == nullptr) return format_err("no model published");
        const auto& idx = req.queries[0];
        if (idx.size() != eng->model().order()) {
          return format_err("need " + std::to_string(eng->model().order()) +
                            " coordinates");
        }
        for (std::size_t n = 0; n < idx.size(); ++n) {
          if (idx[n] >= eng->model().dims()[n]) {
            return format_err("coordinate " + std::to_string(n) +
                              " out of range");
          }
        }
        return format_value(eng->score(idx));
      }
      case RequestType::kScoreBatch: {
        auto eng = engine();
        if (eng == nullptr) return format_err("no model published");
        for (const auto& idx : req.queries) {
          if (idx.size() != eng->model().order()) {
            return format_err("every query needs " +
                              std::to_string(eng->model().order()) +
                              " coordinates");
          }
          for (std::size_t n = 0; n < idx.size(); ++n) {
            if (idx[n] >= eng->model().dims()[n]) {
              return format_err("coordinate out of range");
            }
          }
        }
        return format_scores(eng->score_batch(req.queries));
      }
      case RequestType::kTopk: {
        auto eng = engine();
        if (eng == nullptr) return format_err("no model published");
        const ServeModel& m = eng->model();
        const QueryOptions& o = eng->options();
        if (req.entity >= m.dims()[o.entity_mode]) {
          return format_err("entity out of range");
        }
        if (req.rest.size() != m.order() - 2) {
          return format_err("TOPK needs " + std::to_string(m.order() - 2) +
                            " fixed coordinates");
        }
        std::size_t r = 0;
        for (std::size_t n = 0; n < m.order(); ++n) {
          if (n == o.entity_mode || n == o.item_mode) continue;
          if (req.rest[r++] >= m.dims()[n]) {
            return format_err("fixed coordinate out of range");
          }
        }
        return format_topk(eng->topk(req.entity, req.k, req.rest));
      }
    }
  } catch (const std::exception& e) {
    return format_err(e.what());
  }
  return format_err("unhandled request");
}

}  // namespace ht::serve
