#include "serve/query_engine.hpp"

#include <algorithm>

#include "parallel/thread_info.hpp"
#include "util/error.hpp"

namespace ht::serve {

QueryEngine::QueryEngine(std::shared_ptr<const ServeModel> model,
                         QueryOptions options)
    : model_(std::move(model)), options_(options) {
  HT_CHECK_MSG(model_ != nullptr, "QueryEngine needs a model");
  const std::size_t order = model_->order();
  HT_CHECK_MSG(options_.entity_mode < order,
               "entity mode " << options_.entity_mode << " out of range");
  HT_CHECK_MSG(options_.item_mode < order &&
                   options_.item_mode != options_.entity_mode,
               "item mode " << options_.item_mode << " invalid");
}

QueryEngine::SlicePtr QueryEngine::slice_for(index_t entity) {
  if (options_.cache_entries == 0) {
    auto slice = std::make_shared<std::vector<double>>(
        model_->slice_size(options_.entity_mode));
    model_->entity_slice(options_.entity_mode, entity, *slice);
    return slice;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(entity);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++stats_.hits;
      return it->second->second;
    }
    ++stats_.misses;
  }
  // Compute outside the lock; a concurrent miss on the same entity does
  // redundant work but both slices are bit-identical, so either may win.
  auto slice = std::make_shared<std::vector<double>>(
      model_->slice_size(options_.entity_mode));
  model_->entity_slice(options_.entity_mode, entity, *slice);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(entity);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(entity, slice);
  cache_[entity] = lru_.begin();
  while (cache_.size() > options_.cache_entries) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return slice;
}

double QueryEngine::score(std::span<const index_t> idx) {
  HT_CHECK(idx.size() == model_->order());
  const SlicePtr slice = slice_for(idx[options_.entity_mode]);
  return model_->score_from_slice(options_.entity_mode, *slice, idx,
                                  core::ReconstructWorkspace::tls());
}

void QueryEngine::full_idx(index_t entity, std::span<const index_t> rest,
                           std::vector<index_t>& idx) const {
  const std::size_t order = model_->order();
  HT_CHECK_MSG(rest.size() == order - 2,
               "topk needs " << order - 2 << " fixed coordinates, got "
                             << rest.size());
  idx.assign(order, 0);
  idx[options_.entity_mode] = entity;
  std::size_t r = 0;
  for (std::size_t n = 0; n < order; ++n) {
    if (n == options_.entity_mode || n == options_.item_mode) continue;
    idx[n] = rest[r++];
  }
}

std::vector<Scored> QueryEngine::topk_one(index_t entity, std::size_t k,
                                          std::span<const index_t> rest,
                                          core::ReconstructWorkspace& ws) {
  const std::size_t item_mode = options_.item_mode;
  const index_t items = model_->dims()[item_mode];
  const std::size_t rank = model_->ranks()[item_mode];
  std::vector<index_t> idx;
  full_idx(entity, rest, idx);

  const SlicePtr slice = slice_for(entity);
  if (ws.vec.size() < rank) ws.vec.resize(rank);
  std::span<double> v{ws.vec.data(), rank};
  model_->mode_vector_from_slice(options_.entity_mode, *slice, item_mode, idx,
                                 ws, v);

  // Score every item (a tall gemv over the item factor), then select.
  std::vector<Scored> scored(items);
  for (index_t i = 0; i < items; ++i) {
    const auto row = model_->factor_row(item_mode, i);
    double acc = 0.0;
    for (std::size_t r = 0; r < rank; ++r) acc += row[r] * v[r];
    scored[i] = {i, acc};
  }
  const std::size_t kk = std::min<std::size_t>(k, items);
  const auto better = [](const Scored& a, const Scored& b) {
    return a.score > b.score || (a.score == b.score && a.item < b.item);
  };
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(kk),
                    scored.end(), better);
  scored.resize(kk);
  return scored;
}

std::vector<Scored> QueryEngine::topk(index_t entity, std::size_t k,
                                      std::span<const index_t> rest) {
  return topk_one(entity, k, rest, core::ReconstructWorkspace::tls());
}

std::vector<double> QueryEngine::score_batch(
    const std::vector<std::vector<index_t>>& queries) {
  std::vector<double> out(queries.size());
  parallel::ThreadScope threads(options_.num_threads);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::size_t q = 0; q < queries.size(); ++q) {
    out[q] = score(queries[q]);
  }
  return out;
}

std::vector<std::vector<Scored>> QueryEngine::topk_batch(
    std::span<const index_t> entities, std::size_t k,
    std::span<const index_t> rest) {
  std::vector<std::vector<Scored>> out(entities.size());
  parallel::ThreadScope threads(options_.num_threads);
#pragma omp parallel for schedule(dynamic, 8)
  for (std::size_t e = 0; e < entities.size(); ++e) {
    out[e] = topk_one(entities[e], k, rest,
                      core::ReconstructWorkspace::tls());
  }
  return out;
}

CacheStats QueryEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void QueryEngine::clear_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  cache_.clear();
  stats_ = {};
}

}  // namespace ht::serve
