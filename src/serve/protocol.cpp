#include "serve/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ht::serve {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t begin = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

bool parse_index(const std::string& s, index_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  if (v > 0xffffffffull) return false;
  out = static_cast<index_t>(v);
  return true;
}

Request invalid(const std::string& why) {
  Request r;
  r.type = RequestType::kInvalid;
  r.error = why;
  return r;
}

}  // namespace

Request parse_request(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return invalid("empty request");
  const std::string& cmd = tokens[0];
  Request r;

  if (cmd == "PING") {
    r.type = RequestType::kPing;
  } else if (cmd == "INFO") {
    r.type = RequestType::kInfo;
  } else if (cmd == "STATS") {
    r.type = RequestType::kStats;
  } else if (cmd == "RELOAD") {
    r.type = RequestType::kReload;
  } else if (cmd == "SHUTDOWN") {
    r.type = RequestType::kShutdown;
  } else if (cmd == "QUIT") {
    r.type = RequestType::kQuit;
  } else if (cmd == "SCORE") {
    if (tokens.size() < 2) return invalid("SCORE needs coordinates");
    std::vector<index_t> idx;
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      index_t v;
      if (!parse_index(tokens[t], v)) {
        return invalid("bad coordinate '" + tokens[t] + "'");
      }
      idx.push_back(v);
    }
    r.type = RequestType::kScore;
    r.queries.push_back(std::move(idx));
  } else if (cmd == "SCOREB") {
    if (tokens.size() != 2) {
      return invalid("SCOREB needs one i,i,..;i,i,.. argument");
    }
    const std::string& arg = tokens[1];
    std::vector<index_t> idx;
    std::string cur;
    for (std::size_t i = 0; i <= arg.size(); ++i) {
      const char c = i < arg.size() ? arg[i] : ';';
      if (c == ',' || c == ';') {
        index_t v;
        if (!parse_index(cur, v)) {
          return invalid("bad coordinate '" + cur + "'");
        }
        idx.push_back(v);
        cur.clear();
        if (c == ';' && !idx.empty()) {
          r.queries.push_back(std::move(idx));
          idx.clear();
        }
      } else {
        cur += c;
      }
    }
    if (r.queries.empty()) return invalid("SCOREB got no queries");
    r.type = RequestType::kScoreBatch;
  } else if (cmd == "TOPK") {
    if (tokens.size() < 3) return invalid("TOPK needs entity and k");
    index_t entity;
    if (!parse_index(tokens[1], entity)) {
      return invalid("bad entity '" + tokens[1] + "'");
    }
    index_t k;
    if (!parse_index(tokens[2], k) || k == 0) {
      return invalid("bad k '" + tokens[2] + "'");
    }
    for (std::size_t t = 3; t < tokens.size(); ++t) {
      index_t v;
      if (!parse_index(tokens[t], v)) {
        return invalid("bad coordinate '" + tokens[t] + "'");
      }
      r.rest.push_back(v);
    }
    r.type = RequestType::kTopk;
    r.entity = entity;
    r.k = k;
  } else {
    return invalid("unknown command '" + cmd + "'");
  }
  return r;
}

std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "OK %.17g", v);
  return buf;
}

std::string format_scores(std::span<const double> values) {
  std::string out = "OK";
  char buf[40];
  for (const double v : values) {
    std::snprintf(buf, sizeof buf, " %.17g", v);
    out += buf;
  }
  return out;
}

std::string format_topk(std::span<const Scored> items) {
  std::string out = "OK";
  char buf[64];
  for (const Scored& s : items) {
    std::snprintf(buf, sizeof buf, " %u:%.17g", s.item, s.score);
    out += buf;
  }
  return out;
}

std::string format_err(const std::string& message) {
  std::string out = "ERR ";
  for (const char c : message) out += c == '\n' ? ' ' : c;
  return out;
}

bool response_ok(const std::string& response) {
  return response.rfind("OK", 0) == 0 &&
         (response.size() == 2 || response[2] == ' ');
}

}  // namespace ht::serve
