// Hot-swapping model handle: epoch-versioned RCU publication of ServeModel
// snapshots, with an optional background thread that watches a bundle path
// and republishes when the file changes.
//
// Swap protocol (reader side is wait-free in the RCU sense):
//   - readers call snapshot() and get a shared_ptr<const ServeModel>; they
//     keep querying that snapshot for as long as they hold the pointer —
//     a concurrent publish never mutates it (ServeModel is immutable), so
//     no query ever observes a torn model.
//   - publish() atomically replaces the current pointer under a mutex held
//     for the pointer swap only, and bumps the epoch. The OLD model — and
//     through it the old bundle's storage arena / file mapping — stays
//     alive until the last in-flight reader drops its shared_ptr, at which
//     point the mapping is unmapped by the arena's destructor.
//   - the watcher thread polls stat(2) (mtime+size+inode) at the reload
//     interval. When the file changes it loads the new bundle (kMap),
//     validates it — full payload checksums via verify_all, then shape
//     checks against the live model (same order; provenance present) —
//     and publishes. A bundle that fails to load or validate is REJECTED:
//     the old model keeps serving and last_error() records why. Bundle
//     writes are atomic (tmp + rename), so a half-written file is never
//     observed as a valid bundle.
//
// This is the first long-lived shared mutable state in the codebase; the
// CI ThreadSanitizer job runs the serve tests against exactly this class.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/serve_model.hpp"

namespace ht::serve {

class ModelHandle {
 public:
  ModelHandle() = default;
  /// Convenience: load + publish an initial model (verify on).
  explicit ModelHandle(const std::string& path) { load_and_publish(path); }
  ~ModelHandle() { stop_watch(); }

  ModelHandle(const ModelHandle&) = delete;
  ModelHandle& operator=(const ModelHandle&) = delete;

  /// Current model (nullptr before the first publish). The returned
  /// snapshot stays valid — and keeps its bundle mapping alive — for as
  /// long as the caller holds it, across any number of concurrent swaps.
  [[nodiscard]] std::shared_ptr<const ServeModel> snapshot() const;

  /// Monotonic publication count (0 before the first publish).
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Atomically publish a new model and bump the epoch.
  void publish(std::shared_ptr<const ServeModel> model);

  /// Load `path` (mmap), validate (verify_all + shape checks against the
  /// live model when one exists), publish. Throws ht::Error on failure —
  /// the current model is left untouched.
  void load_and_publish(const std::string& path, bool verify = true);

  /// Start the background watcher on `path`. Polls every `interval_s`
  /// seconds; a change triggers load_and_publish, and a failed reload
  /// keeps the old model (see last_error()). No-op if already watching.
  void start_watch(const std::string& path, double interval_s,
                   bool verify = true);
  void stop_watch();
  [[nodiscard]] bool watching() const { return watcher_.joinable(); }

  /// Most recent reload failure ("" when the last reload succeeded).
  [[nodiscard]] std::string last_error() const;
  /// Successful background reloads performed by the watcher.
  [[nodiscard]] std::uint64_t reloads() const {
    return reloads_.load(std::memory_order_relaxed);
  }

 private:
  struct FileSig {
    std::int64_t mtime_ns = -1;
    std::uint64_t size = 0;
    std::uint64_t inode = 0;
    bool operator==(const FileSig&) const = default;
  };
  static FileSig file_signature(const std::string& path);

  void watch_loop(std::string path, double interval_s, bool verify,
                  FileSig last);
  void validate_against_current(const ServeModel& incoming) const;

  mutable std::mutex mutex_;           // guards model_ and last_error_
  std::shared_ptr<const ServeModel> model_;
  std::string last_error_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> reloads_{0};

  std::thread watcher_;
  std::mutex watch_mutex_;             // guards stop_ + cv for the watcher
  std::condition_variable watch_cv_;
  bool stop_ = false;
};

}  // namespace ht::serve
