// Request dispatcher: the glue between the wire protocol and the serving
// stack (ModelHandle -> ServeModel -> QueryEngine).
//
// The dispatcher tracks the handle's epoch: when a new model has been
// published it builds a fresh QueryEngine on the new snapshot (the
// per-user cache starts cold — slices of the old core are invalid by
// definition) and swaps it in behind a mutex held for the pointer swap
// only. In-flight requests keep using the engine they grabbed, which keeps
// the old ServeModel — and its bundle mapping — alive until they finish:
// the reader half of the RCU protocol described in model_handle.hpp.
//
// handle_line() is safe to call from any number of server threads.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "serve/model_handle.hpp"
#include "serve/protocol.hpp"
#include "serve/query_engine.hpp"

namespace ht::serve {

/// Daemon actions a request can trigger; unset hooks make the request an
/// ERR (the in-process/test configuration).
struct DispatcherHooks {
  /// RELOAD: force a reload now; throws ht::Error on failure.
  std::function<void()> reload;
  /// SHUTDOWN: ask the daemon to exit after responding.
  std::function<void()> shutdown;
};

class Dispatcher {
 public:
  Dispatcher(ModelHandle& handle, QueryOptions options,
             DispatcherHooks hooks = {});

  /// Handle one request line; always returns a single response line
  /// (no trailing newline). Never throws.
  std::string handle_line(const std::string& line);

  /// Current engine, rebuilt on epoch change (nullptr before the first
  /// publish).
  std::shared_ptr<QueryEngine> engine();

 private:
  ModelHandle& handle_;
  QueryOptions options_;
  DispatcherHooks hooks_;

  std::mutex mutex_;  // guards engine_ / engine_epoch_
  std::shared_ptr<QueryEngine> engine_;
  std::uint64_t engine_epoch_ = 0;
};

}  // namespace ht::serve
