// Minimal POSIX socket server + client helper for the tuckerd line
// protocol. Unix-domain and 127.0.0.1 TCP listeners are supported; the
// target string picks the transport: anything containing '/' is a unix
// socket path, otherwise it is host:port (client) or a bare port was
// already resolved by the caller (server).
//
// The server runs one accept loop and a bounded pool of connection
// threads; each connection reads newline-delimited requests and writes
// one response line per request via a caller-supplied handler. shutdown()
// closes the listen socket, unblocks accept(), and joins every worker —
// safe to call from a handler thread through a deferred hook.
#pragma once

#if defined(__unix__) || defined(__APPLE__)
#define HT_HAVE_SOCKETS 1
#else
#define HT_HAVE_SOCKETS 0
#endif

#if HT_HAVE_SOCKETS

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ht::serve {

class SocketServer {
 public:
  /// Handler: one request line in (no newline), one response line out.
  using Handler = std::function<std::string(const std::string&)>;

  SocketServer() = default;
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Listen on a unix-domain socket path (unlinks a stale socket first).
  void listen_unix(const std::string& path);
  /// Listen on 127.0.0.1:port; port 0 picks a free port (see port()).
  void listen_tcp(int port);

  /// Bound TCP port (after listen_tcp), 0 for unix sockets.
  [[nodiscard]] int port() const { return port_; }

  /// Accept + serve until shutdown(). Blocks the calling thread.
  void serve(Handler handler);
  /// Run serve() on a background thread.
  void serve_async(Handler handler);

  /// Stop accepting, close the listen socket, join all workers.
  void shutdown();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void accept_loop();
  void handle_connection(int fd);
  void reap_finished();

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string unix_path_;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

/// Client: connect to `target`, send each line, collect one response line
/// per request. A target containing '/' is a unix socket path, otherwise
/// "host:port". Throws ht::Error on connection or I/O failure.
std::vector<std::string> query_lines(const std::string& target,
                                     const std::vector<std::string>& lines);

/// Single-request convenience wrapper over query_lines().
std::string query_line(const std::string& target, const std::string& line);

}  // namespace ht::serve

#endif  // HT_HAVE_SOCKETS
