// Read-only serve-time model: the one-way hand-off from training.
//
// Train-time code works on mutable structures (HooiResult, TuckerModel with
// owned factor buffers); serve-time code answers queries against an
// immutable snapshot, typically aliased zero-copy out of an mmap'd .htb
// bundle (storage::LoadMode::kMap). ServeModel is that snapshot as a
// first-class type:
//
//   - construction VALIDATES the model (factor/core/dims shape agreement)
//     and precomputes the per-mode core unfoldings G(m) — small, rank-sized
//     matrices that turn "contract the core against one factor row" into a
//     contiguous gemv. After construction every query runs off const data:
//     a ServeModel is safe for any number of concurrent reader threads.
//   - the underlying TuckerModel keeps its storage arenas alive, so a
//     ServeModel handed around by shared_ptr pins the mapped bundle (or
//     heap copy) for exactly as long as any reader holds it — the RCU
//     keep-alive serve::ModelHandle relies on during hot swap.
//   - queries delegate to the core::reconstruct kernels, the same
//     single implementation behind TuckerDecomposition::reconstruct_at, so
//     a served answer is bit-identical to the train-time one.
//
// Layering: serve sits above core and storage; nothing below ever depends
// on it.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/reconstruct.hpp"
#include "core/tucker_model.hpp"
#include "storage/bundle.hpp"

namespace ht::serve {

using tensor::index_t;

class ServeModel {
 public:
  /// Wrap a loaded model (validates shapes; factors/core may be owned or
  /// mmap-backed views — both serve identically).
  explicit ServeModel(core::TuckerModel model);

  /// Load a bundle for serving: mmap'd zero-copy views (LoadMode::kMap).
  /// With verify = true the full payload-checksum pass (verify_all) runs
  /// first — the validation gate the hot-swap reload path uses.
  static std::shared_ptr<const ServeModel> load(const std::string& path,
                                                bool verify = false);

  // ---- metadata -------------------------------------------------------------

  [[nodiscard]] std::size_t order() const { return model_.order(); }
  [[nodiscard]] const tensor::Shape& dims() const { return model_.dims; }
  [[nodiscard]] const tensor::Shape& ranks() const { return ranks_; }
  [[nodiscard]] double fit() const { return model_.fit; }
  [[nodiscard]] const core::TuckerModel& model() const { return model_; }
  /// True when any factor/core buffer aliases a storage arena (mmap).
  [[nodiscard]] bool is_view() const;

  // ---- queries (const, thread-safe) -----------------------------------------

  /// Point query at full coordinates; bit-identical to
  /// TuckerDecomposition::reconstruct_at. Allocation-free on the caller's
  /// workspace.
  double score(std::span<const index_t> idx,
               core::ReconstructWorkspace& ws) const;
  double score(std::span<const index_t> idx) const;

  /// Elements of a mode-`mode` entity slice (prod of ranks except mode).
  [[nodiscard]] std::size_t slice_size(std::size_t mode) const;

  /// Step-1 contraction: the core contracted against U_mode(i, :) via the
  /// precomputed unfolding. This is the per-user slice the QueryEngine
  /// caches; out.size() must equal slice_size(mode).
  void entity_slice(std::size_t mode, index_t i, std::span<double> out) const;

  /// Finish a point query from a precomputed entity slice — bit-identical
  /// to score() at the same coordinates (idx[mode] is ignored).
  double score_from_slice(std::size_t mode, std::span<const double> slice,
                          std::span<const index_t> idx,
                          core::ReconstructWorkspace& ws) const;

  /// Collapse an entity slice to a vector over mode `target`'s rank (the
  /// top-k kernel input); out.size() must equal ranks()[target].
  void mode_vector_from_slice(std::size_t mode, std::span<const double> slice,
                              std::size_t target,
                              std::span<const index_t> idx,
                              core::ReconstructWorkspace& ws,
                              std::span<double> out) const;

  /// Factor row for the final top-k dot products.
  [[nodiscard]] std::span<const double> factor_row(std::size_t mode,
                                                   index_t i) const {
    return model_.decomposition.factors[mode].row(i);
  }

 private:
  core::TuckerModel model_;
  tensor::Shape ranks_;
  /// Per-mode core unfoldings G(m), R_m x prod(other ranks) row-major.
  /// unfold_[0] is empty: the mode-0 unfolding IS the core's flat layout,
  /// so mode-0 queries read the (possibly mmap-backed) core directly.
  std::vector<std::vector<double>> unfold_;

  [[nodiscard]] std::span<const double> unfolding(std::size_t mode) const;
};

}  // namespace ht::serve
