#include "serve/serve_model.hpp"

#include "util/error.hpp"

namespace ht::serve {

ServeModel::ServeModel(core::TuckerModel model) : model_(std::move(model)) {
  const auto& d = model_.decomposition;
  HT_CHECK_MSG(!d.factors.empty(), "serve model has no factors");
  HT_CHECK_MSG(d.core.order() == d.factors.size(),
               "core order " << d.core.order() << " != " << d.factors.size()
                             << " factors");
  HT_CHECK_MSG(model_.dims.size() == d.factors.size(),
               "dims/order mismatch in serve model");
  for (std::size_t n = 0; n < d.factors.size(); ++n) {
    HT_CHECK_MSG(d.factors[n].rows() == model_.dims[n],
                 "factor " << n << " has " << d.factors[n].rows()
                           << " rows, dims say " << model_.dims[n]);
    HT_CHECK_MSG(d.factors[n].cols() == d.core.shape()[n],
                 "factor " << n << " rank " << d.factors[n].cols()
                           << " != core dim " << d.core.shape()[n]);
  }
  ranks_ = d.core.shape();

  // Precompute the per-mode core unfoldings (mode 0 is the flat layout
  // itself). Each is prod(ranks) doubles — serving metadata, not model
  // payload, so building them off a mapped core does not break the
  // zero-copy contract (CopyStats counts load-path copies only).
  unfold_.resize(ranks_.size());
  const auto flat = d.core.flat();
  for (std::size_t m = 1; m < ranks_.size(); ++m) {
    auto& u = unfold_[m];
    u.assign(flat.size(), 0.0);
    std::size_t lead = 1, trail = 1;
    for (std::size_t n = 0; n < m; ++n) lead *= ranks_[n];
    for (std::size_t n = m + 1; n < ranks_.size(); ++n) trail *= ranks_[n];
    const std::size_t rm = ranks_[m];
    const std::size_t cols = lead * trail;
    // G(m)[r][p*trail + q] = G[..., p fixed leading, r at mode m, q trailing]
    for (std::size_t p = 0; p < lead; ++p) {
      for (std::size_t r = 0; r < rm; ++r) {
        const double* src = flat.data() + (p * rm + r) * trail;
        double* dst = u.data() + r * cols + p * trail;
        for (std::size_t q = 0; q < trail; ++q) dst[q] = src[q];
      }
    }
  }
}

std::shared_ptr<const ServeModel> ServeModel::load(const std::string& path,
                                                   bool verify) {
  if (verify) {
    storage::BundleReader reader(path, storage::LoadMode::kMap);
    reader.verify_all();
  }
  return std::make_shared<const ServeModel>(
      storage::load_bundle(path, storage::LoadMode::kMap));
}

bool ServeModel::is_view() const {
  const auto& d = model_.decomposition;
  if (d.core.is_view()) return true;
  for (const auto& f : d.factors) {
    if (f.is_view()) return true;
  }
  return false;
}

std::span<const double> ServeModel::unfolding(std::size_t mode) const {
  HT_CHECK(mode < ranks_.size());
  if (mode == 0) return model_.decomposition.core.flat();
  return unfold_[mode];
}

double ServeModel::score(std::span<const index_t> idx,
                         core::ReconstructWorkspace& ws) const {
  return core::reconstruct_at(model_.decomposition.core,
                              model_.decomposition.factors, idx, ws);
}

double ServeModel::score(std::span<const index_t> idx) const {
  return score(idx, core::ReconstructWorkspace::tls());
}

std::size_t ServeModel::slice_size(std::size_t mode) const {
  return core::slice_size(ranks_, mode);
}

void ServeModel::entity_slice(std::size_t mode, index_t i,
                              std::span<double> out) const {
  HT_CHECK_MSG(i < model_.dims[mode],
               "entity index " << i << " out of range for mode " << mode);
  core::contract_unfolding(unfolding(mode),
                           model_.decomposition.factors[mode].row(i), out);
}

double ServeModel::score_from_slice(std::size_t mode,
                                    std::span<const double> slice,
                                    std::span<const index_t> idx,
                                    core::ReconstructWorkspace& ws) const {
  return core::score_slice(slice, ranks_, mode,
                           model_.decomposition.factors, idx, ws);
}

void ServeModel::mode_vector_from_slice(std::size_t mode,
                                        std::span<const double> slice,
                                        std::size_t target,
                                        std::span<const index_t> idx,
                                        core::ReconstructWorkspace& ws,
                                        std::span<double> out) const {
  core::slice_mode_vector(slice, ranks_, mode, target,
                          model_.decomposition.factors, idx, ws, out);
}

}  // namespace ht::serve
