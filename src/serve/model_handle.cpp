#include "serve/model_handle.hpp"

#include <sys/stat.h>

#include <chrono>

#include "util/error.hpp"

namespace ht::serve {

std::shared_ptr<const ServeModel> ModelHandle::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_;
}

void ModelHandle::publish(std::shared_ptr<const ServeModel> model) {
  HT_CHECK_MSG(model != nullptr, "cannot publish a null model");
  std::shared_ptr<const ServeModel> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    old = std::move(model_);  // dropped outside the lock
    model_ = std::move(model);
    last_error_.clear();
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  // `old` goes out of scope here; if this was the last reference the old
  // bundle arena (mmap) is released now, otherwise when the final
  // in-flight reader drops its snapshot.
}

void ModelHandle::validate_against_current(const ServeModel& incoming) const {
  // ServeModel's constructor already validated internal shape agreement;
  // here we check the swap makes sense against what is being served.
  std::shared_ptr<const ServeModel> current = snapshot();
  if (current == nullptr) return;
  HT_CHECK_MSG(incoming.order() == current->order(),
               "refusing hot swap: model order changed from "
                   << current->order() << " to " << incoming.order());
  HT_CHECK_MSG(!incoming.model().provenance.empty(),
               "refusing hot swap: bundle carries no provenance");
}

void ModelHandle::load_and_publish(const std::string& path, bool verify) {
  auto incoming = ServeModel::load(path, verify);
  validate_against_current(*incoming);
  publish(std::move(incoming));
}

ModelHandle::FileSig ModelHandle::file_signature(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return {};
  FileSig sig;
  sig.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                 st.st_mtim.tv_nsec;
  sig.size = static_cast<std::uint64_t>(st.st_size);
  sig.inode = static_cast<std::uint64_t>(st.st_ino);
  return sig;
}

void ModelHandle::start_watch(const std::string& path, double interval_s,
                              bool verify) {
  if (watcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watch_mutex_);
    stop_ = false;
  }
  // Baseline signature taken HERE, not on the watcher thread: any file
  // replacement after start_watch() returns is guaranteed to be seen,
  // even one racing the thread's startup.
  const FileSig last = file_signature(path);
  watcher_ = std::thread(&ModelHandle::watch_loop, this, path, interval_s,
                         verify, last);
}

void ModelHandle::stop_watch() {
  if (!watcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watch_mutex_);
    stop_ = true;
  }
  watch_cv_.notify_all();
  watcher_.join();
}

void ModelHandle::watch_loop(std::string path, double interval_s,
                             bool verify, FileSig last) {
  const auto interval = std::chrono::duration<double>(interval_s);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watch_mutex_);
      if (watch_cv_.wait_for(lock, interval, [&] { return stop_; })) return;
    }
    const FileSig sig = file_signature(path);
    if (sig == last || sig.mtime_ns < 0) continue;
    // Bundle writes are atomic (tmp + rename), so a changed signature
    // means a complete file — but the publish can still be rejected by
    // validation, in which case the old model keeps serving.
    try {
      load_and_publish(path, verify);
      reloads_.fetch_add(1, std::memory_order_relaxed);
      last = sig;
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mutex_);
      last_error_ = e.what();
      last = sig;  // don't retry the same bad file every tick
    }
  }
}

std::string ModelHandle::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

}  // namespace ht::serve
