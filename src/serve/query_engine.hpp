// Serving query engine: point scores, top-k recommendation, and batched
// endpoints over one immutable ServeModel snapshot, with a bounded LRU
// cache of per-entity core contractions for hot users.
//
// Every query on entity e (default: mode 0, the user mode) factors into
//   slice_e = G contracted with U_e(e, :)     [~prod(R) flops, cacheable]
//   score   = slice_e contracted with the remaining factor rows [~sum R]
// so for a hot user the expensive step is paid once and every subsequent
// point/top-k query is rank-sized work. The cache stores slices as
// shared_ptr<const vector>: a hit can keep using its slice after eviction,
// and cached vs uncached answers are bit-identical because both run the
// same core::reconstruct kernels in the same order.
//
// Thread-safety: the engine is safe for concurrent use. The cache is the
// only mutable state and is guarded by a mutex held for map/list surgery
// only — slice computation and scoring run outside the lock. Batched
// endpoints parallelize over OpenMP and return results bit-identical to
// the sequential loop (each query's arithmetic is independent and
// deterministic; only scheduling varies).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "serve/serve_model.hpp"

namespace ht::serve {

struct QueryOptions {
  /// LRU capacity in entity slices (0 disables caching). A slice is
  /// prod(ranks except entity mode) doubles — 800 B at R=10^3.
  std::size_t cache_entries = 4096;
  /// Mode whose slices are cached (the "user" mode).
  std::size_t entity_mode = 0;
  /// Mode ranked by topk (the "item" mode).
  std::size_t item_mode = 1;
  /// OpenMP threads for the batched endpoints (0 = runtime default).
  int num_threads = 0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// One top-k result entry.
struct Scored {
  index_t item = 0;
  double score = 0.0;
};

class QueryEngine {
 public:
  QueryEngine(std::shared_ptr<const ServeModel> model, QueryOptions options);

  [[nodiscard]] const ServeModel& model() const { return *model_; }
  [[nodiscard]] const std::shared_ptr<const ServeModel>& model_ptr() const {
    return model_;
  }
  [[nodiscard]] const QueryOptions& options() const { return options_; }

  /// Point query at full coordinates (uses the entity cache).
  double score(std::span<const index_t> idx);

  /// Top-k items for an entity. `rest` holds the coordinates of every mode
  /// that is neither the entity nor the item mode, in increasing mode
  /// order (empty for 2-mode models). Results are sorted by score
  /// descending, ties broken by ascending item index — fully deterministic.
  std::vector<Scored> topk(index_t entity, std::size_t k,
                           std::span<const index_t> rest = {});

  /// Batched point queries; bit-identical to calling score() per row.
  std::vector<double> score_batch(
      const std::vector<std::vector<index_t>>& queries);

  /// Batched top-k; bit-identical to calling topk() per entity.
  std::vector<std::vector<Scored>> topk_batch(
      std::span<const index_t> entities, std::size_t k,
      std::span<const index_t> rest = {});

  [[nodiscard]] CacheStats cache_stats() const;
  void clear_cache();

 private:
  using SlicePtr = std::shared_ptr<const std::vector<double>>;

  /// Entity slice through the LRU (computes + inserts on miss).
  SlicePtr slice_for(index_t entity);
  /// Assemble full coordinates for topk from (entity, rest) with a
  /// placeholder item index.
  void full_idx(index_t entity, std::span<const index_t> rest,
                std::vector<index_t>& idx) const;
  /// One top-k evaluation on a caller-provided workspace (the unit the
  /// batched endpoint parallelizes).
  std::vector<Scored> topk_one(index_t entity, std::size_t k,
                               std::span<const index_t> rest,
                               core::ReconstructWorkspace& ws);

  std::shared_ptr<const ServeModel> model_;
  QueryOptions options_;

  // LRU: most-recent at list front; map points into the list.
  mutable std::mutex mutex_;
  std::list<std::pair<index_t, SlicePtr>> lru_;
  std::unordered_map<index_t,
                     std::list<std::pair<index_t, SlicePtr>>::iterator>
      cache_;
  CacheStats stats_;
};

}  // namespace ht::serve
