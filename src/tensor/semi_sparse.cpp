#include "tensor/semi_sparse.hpp"

#include <algorithm>
#include <numeric>

#include "tensor/radix_sort.hpp"
#include "util/error.hpp"

namespace ht::tensor {

namespace {

// Stable lexicographic order over the surviving coordinates (the shared
// LSD counting sort; entry ordinal is the final tie-break, so plans are
// deterministic).
std::vector<nnz_t> sort_by_surviving_coords(const PatternView& in,
                                            std::size_t skip_pos) {
  std::vector<std::span<const index_t>> keys;
  keys.reserve(in.sparse_modes.size());
  for (std::size_t k = 0; k < in.sparse_modes.size(); ++k) {
    if (k != skip_pos) keys.push_back(in.idx[k]);
  }
  return lexicographic_order(in.entries(), keys);
}

}  // namespace

SemiSparse SemiSparse::lift(const CooTensor& x) {
  SemiSparse s;
  s.sparse_modes.resize(x.order());
  std::iota(s.sparse_modes.begin(), s.sparse_modes.end(), std::size_t{0});
  s.idx.resize(x.order());
  for (std::size_t n = 0; n < x.order(); ++n) {
    const auto src = x.indices(n);
    s.idx[n].assign(src.begin(), src.end());
  }
  s.values.assign(x.values().begin(), x.values().end());
  s.block = 1;
  return s;
}

PatternView PatternView::of(const CooTensor& x,
                            std::vector<std::size_t>& modes) {
  modes.resize(x.order());
  std::iota(modes.begin(), modes.end(), std::size_t{0});
  PatternView v;
  v.sparse_modes = modes;
  v.idx.reserve(x.order());
  for (std::size_t n = 0; n < x.order(); ++n) v.idx.push_back(x.indices(n));
  return v;
}

PatternView PatternView::of(const SemiSparse& s) {
  PatternView v;
  v.sparse_modes = s.sparse_modes;
  v.idx.reserve(s.idx.size());
  for (const auto& a : s.idx) v.idx.emplace_back(a);
  return v;
}

PatternView TtmPlan::out_pattern() const {
  HT_CHECK_MSG(out_idx.size() == out_sparse_modes.size(),
               "plan output coordinates were shrunk away");
  PatternView v;
  v.sparse_modes = out_sparse_modes;
  v.idx.reserve(out_idx.size());
  for (const auto& a : out_idx) v.idx.emplace_back(a);
  return v;
}

TtmPlan build_ttm_plan(const PatternView& in, std::size_t mode, bool prepend) {
  const auto it = std::find(in.sparse_modes.begin(), in.sparse_modes.end(), mode);
  HT_CHECK_MSG(it != in.sparse_modes.end(), "mode already contracted");
  const auto pos = static_cast<std::size_t>(it - in.sparse_modes.begin());
  const std::size_t n_entries = in.entries();

  TtmPlan plan;
  plan.source_mode = mode;
  plan.prepend = prepend;
  for (std::size_t k = 0; k < in.sparse_modes.size(); ++k) {
    if (k != pos) plan.out_sparse_modes.push_back(in.sparse_modes[k]);
  }

  plan.src_entry = sort_by_surviving_coords(in, pos);
  plan.src_row.resize(n_entries);
  for (std::size_t s = 0; s < n_entries; ++s) {
    plan.src_row[s] = in.idx[pos][plan.src_entry[s]];
  }

  auto same_group = [&](nnz_t a, nnz_t b) {
    for (std::size_t k = 0; k < in.sparse_modes.size(); ++k) {
      if (k == pos) continue;
      if (in.idx[k][a] != in.idx[k][b]) return false;
    }
    return true;
  };

  plan.out_idx.resize(plan.out_sparse_modes.size());
  plan.group_ptr.push_back(0);
  for (std::size_t s = 0; s < n_entries; ++s) {
    if (s > 0 && same_group(plan.src_entry[s], plan.src_entry[s - 1])) continue;
    if (s > 0) plan.group_ptr.push_back(s);
    std::size_t out_k = 0;
    for (std::size_t k = 0; k < in.sparse_modes.size(); ++k) {
      if (k == pos) continue;
      plan.out_idx[out_k++].push_back(in.idx[k][plan.src_entry[s]]);
    }
  }
  plan.group_ptr.push_back(n_entries);
  if (n_entries == 0) plan.group_ptr.assign(1, 0);
  return plan;
}

namespace {

// Shared body of the full and subset applies: compute one group's output
// block. The two layouts differ only in which operand indexes the slow
// dimension of the rank-1 update.
inline void apply_group(const TtmPlan& plan, nnz_t g, std::size_t in_block,
                        std::span<const double> in_values, const la::Matrix& u,
                        double* out, bool gathered_input) {
  const std::size_t rank = u.cols();
  const std::size_t out_block = in_block * rank;
  std::fill(out, out + out_block, 0.0);
  for (nnz_t s = plan.group_ptr[g]; s < plan.group_ptr[g + 1]; ++s) {
    const double* blk =
        in_values.data() +
        (gathered_input ? static_cast<std::size_t>(s)
                        : static_cast<std::size_t>(plan.src_entry[s])) *
            in_block;
    const auto urow = u.row(plan.src_row[s]);
    if (plan.prepend) {
      for (std::size_t r = 0; r < rank; ++r) {
        const double ur = urow[r];
        double* dst = out + r * in_block;
        for (std::size_t b = 0; b < in_block; ++b) dst[b] += ur * blk[b];
      }
    } else {
      for (std::size_t b = 0; b < in_block; ++b) {
        const double vb = blk[b];
        double* dst = out + b * rank;
        for (std::size_t r = 0; r < rank; ++r) dst[r] += vb * urow[r];
      }
    }
  }
}

}  // namespace

void ttm_apply(const TtmPlan& plan, std::size_t in_block,
               std::span<const double> in_values, const la::Matrix& u,
               std::span<double> out, bool gathered_input,
               bool dynamic_schedule) {
  const std::size_t out_block = in_block * u.cols();
  HT_CHECK_MSG(out.size() == plan.num_groups() * out_block,
               "ttm_apply output size mismatch");
  const auto n_groups = static_cast<std::ptrdiff_t>(plan.num_groups());
  if (dynamic_schedule) {
#pragma omp parallel for schedule(dynamic, 16)
    for (std::ptrdiff_t g = 0; g < n_groups; ++g) {
      apply_group(plan, static_cast<nnz_t>(g), in_block, in_values, u,
                  out.data() + static_cast<std::size_t>(g) * out_block,
                  gathered_input);
    }
  } else {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t g = 0; g < n_groups; ++g) {
      apply_group(plan, static_cast<nnz_t>(g), in_block, in_values, u,
                  out.data() + static_cast<std::size_t>(g) * out_block,
                  gathered_input);
    }
  }
}

void ttm_apply_subset(const TtmPlan& plan, std::size_t in_block,
                      std::span<const double> in_values, const la::Matrix& u,
                      std::span<const std::uint32_t> positions,
                      std::span<double> out, bool dynamic_schedule) {
  const std::size_t out_block = in_block * u.cols();
  HT_CHECK_MSG(out.size() == positions.size() * out_block,
               "ttm_apply_subset output size mismatch");
  const auto npos = static_cast<std::ptrdiff_t>(positions.size());
  if (dynamic_schedule) {
#pragma omp parallel for schedule(dynamic, 16)
    for (std::ptrdiff_t p = 0; p < npos; ++p) {
      apply_group(plan, positions[static_cast<std::size_t>(p)], in_block,
                  in_values, u,
                  out.data() + static_cast<std::size_t>(p) * out_block,
                  /*gathered_input=*/false);
    }
  } else {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t p = 0; p < npos; ++p) {
      apply_group(plan, positions[static_cast<std::size_t>(p)], in_block,
                  in_values, u,
                  out.data() + static_cast<std::size_t>(p) * out_block,
                  /*gathered_input=*/false);
    }
  }
}

SemiSparse ttm_contract(const SemiSparse& s, std::size_t mode,
                        const la::Matrix& u) {
  const PatternView view = PatternView::of(s);
  TtmPlan plan = build_ttm_plan(view, mode, /*prepend=*/false);
  SemiSparse out;
  out.sparse_modes = plan.out_sparse_modes;
  out.block = s.block * u.cols();
  out.values.resize(plan.num_groups() * out.block);
  ttm_apply(plan, s.block, s.values, u, out.values);
  out.idx = std::move(plan.out_idx);
  return out;
}

}  // namespace ht::tensor
