#include "tensor/alto.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

#include "tensor/radix_sort.hpp"
#include "util/error.hpp"

namespace ht::tensor {

namespace {

/// Bits needed to address [0, dim): ceil(log2(dim)), 0 for dim 1.
unsigned mode_bit_width(index_t dim) {
  HT_CHECK_MSG(dim >= 1, "zero-sized mode");
  return static_cast<unsigned>(
      std::bit_width(static_cast<std::uint64_t>(dim) - 1));
}

}  // namespace

unsigned AltoTensor::key_bits_for(const Shape& shape) {
  unsigned total = 0;
  for (index_t dim : shape) total += mode_bit_width(dim);
  if (total > 128) {
    std::ostringstream os;
    os << "ALTO linearization needs " << total << " key bits for shape ";
    for (std::size_t n = 0; n < shape.size(); ++n) {
      os << (n ? "x" : "") << shape[n];
    }
    os << ", which exceeds the 128-bit key budget (two 64-bit words); "
          "this tensor cannot be linearized without truncation — use a "
          "coordinate-based kernel (per-nnz, fiber, or CSF) instead";
    throw InvalidArgument(os.str());
  }
  return total;
}

bool AltoTensor::fits_key_budget(const Shape& shape) noexcept {
  unsigned total = 0;
  for (index_t dim : shape) {
    if (dim < 1) return false;
    total += static_cast<unsigned>(
        std::bit_width(static_cast<std::uint64_t>(dim) - 1));
  }
  return total <= 128;
}

void AltoTensor::derive_encoding() {
  const std::size_t order = shape.size();
  mode_bits.assign(order, 0);
  for (std::size_t n = 0; n < order; ++n) mode_bits[n] = mode_bit_width(shape[n]);
  key_bits = key_bits_for(shape);

  // Round-robin interleave, LSB -> MSB, increasing mode id within a round;
  // a mode leaves the rotation when its bits are exhausted. pos[n][j] is
  // the key bit carrying index bit j of mode n.
  std::vector<std::vector<std::uint8_t>> pos(order);
  for (std::size_t n = 0; n < order; ++n) pos[n].reserve(mode_bits[n]);
  unsigned next = 0;
  bool assigned = true;
  while (assigned) {
    assigned = false;
    for (std::size_t n = 0; n < order; ++n) {
      if (pos[n].size() < mode_bits[n]) {
        pos[n].push_back(static_cast<std::uint8_t>(next++));
        assigned = true;
      }
    }
  }

  // Collapse each mode's bit positions into maximal contiguous runs within
  // one key word: consecutive index bits whose key bits are consecutive
  // extract with a single shift+mask.
  mode_runs.assign(order, {});
  for (std::size_t n = 0; n < order; ++n) {
    std::size_t j = 0;
    while (j < pos[n].size()) {
      const unsigned word = pos[n][j] / 64;
      std::size_t len = 1;
      while (j + len < pos[n].size() &&
             pos[n][j + len] == pos[n][j] + len &&
             pos[n][j + len] / 64 == word) {
        ++len;
      }
      AltoRun r;
      r.word = static_cast<std::uint8_t>(word);
      r.key_shift = static_cast<std::uint8_t>(pos[n][j] % 64);
      r.index_shift = static_cast<std::uint8_t>(j);
      r.mask = (std::uint64_t{1} << len) - 1;
      mode_runs[n].push_back(r);
      j += len;
    }
  }
}

AltoTensor AltoTensor::build_pattern(const CooTensor& x) {
  AltoTensor a;
  a.shape = x.shape();
  a.derive_encoding();
  const std::size_t order = a.order();
  const nnz_t nnz = x.nnz();
  const bool wide = a.key_bits > 64;

  // Encode every nonzero's coordinates into its key (runs in reverse:
  // word |= ((idx >> index_shift) & mask) << key_shift).
  std::vector<std::uint64_t> lo(nnz, 0);
  std::vector<std::uint64_t> hi(wide ? nnz : 0, 0);
  std::vector<std::span<const index_t>> coord(order);
  for (std::size_t n = 0; n < order; ++n) coord[n] = x.indices(n);
  const auto c_nnz = static_cast<std::ptrdiff_t>(nnz);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t t = 0; t < c_nnz; ++t) {
    const auto s = static_cast<std::size_t>(t);
    std::uint64_t w0 = 0;
    std::uint64_t w1 = 0;
    for (std::size_t n = 0; n < order; ++n) {
      const auto idx = static_cast<std::uint64_t>(coord[n][s]);
      for (const AltoRun& r : a.mode_runs[n]) {
        const std::uint64_t bits = ((idx >> r.index_shift) & r.mask)
                                   << r.key_shift;
        if (r.word == 0) {
          w0 |= bits;
        } else {
          w1 |= bits;
        }
      }
    }
    lo[s] = w0;
    if (wide) hi[s] = w1;
  }

  // Sort slots by key (stable, ordinal tie-break) and gather the key
  // arrays into sorted order; the permutation itself is the gather map.
  std::vector<nnz_t> perm = linearized_order(lo, hi);
  std::vector<std::uint64_t> sorted_lo(nnz);
  std::vector<std::uint64_t> sorted_hi(wide ? nnz : 0);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t t = 0; t < c_nnz; ++t) {
    const auto s = static_cast<std::size_t>(t);
    sorted_lo[s] = lo[perm[s]];
    if (wide) sorted_hi[s] = hi[perm[s]];
  }
  a.key_lo = std::move(sorted_lo);
  a.key_hi = std::move(sorted_hi);
  a.perm = std::move(perm);

  // nnz-balanced partition intervals over the sorted (= linearized-space)
  // order, with per-partition per-mode index ranges. Fixed ~kAltoPartNnz
  // target so the partition table is machine-independent.
  if (nnz > 0) {
    const std::size_t parts =
        static_cast<std::size_t>((nnz + kAltoPartNnz - 1) / kAltoPartNnz);
    std::vector<nnz_t> ptr(parts + 1);
    for (std::size_t p = 0; p <= parts; ++p) {
      ptr[p] = nnz * static_cast<nnz_t>(p) / static_cast<nnz_t>(parts);
    }
    std::vector<index_t> pmin(parts * order,
                              std::numeric_limits<index_t>::max());
    std::vector<index_t> pmax(parts * order, 0);
    const auto c_parts = static_cast<std::ptrdiff_t>(parts);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t cp = 0; cp < c_parts; ++cp) {
      const auto p = static_cast<std::size_t>(cp);
      index_t* mn = pmin.data() + p * order;
      index_t* mx = pmax.data() + p * order;
      for (nnz_t s = ptr[p]; s < ptr[p + 1]; ++s) {
        for (std::size_t n = 0; n < order; ++n) {
          const index_t i = a.mode_index(n, s);
          mn[n] = std::min(mn[n], i);
          mx[n] = std::max(mx[n], i);
        }
      }
    }
    a.part_ptr = std::move(ptr);
    a.part_min = std::move(pmin);
    a.part_max = std::move(pmax);
  }
  return a;
}

void AltoTensor::attach_values(const CooTensor& x) {
  HT_CHECK_MSG(x.nnz() == perm.size(),
               "value count does not match the ALTO pattern");
  const auto vals = x.values();
  // Gather into a fresh owned buffer, then swap it in (also converts a
  // bundle-loaded view back into the mutable state, mirroring
  // CsfTree::attach_values).
  std::vector<double> gathered(perm.size());
  const auto n = static_cast<std::ptrdiff_t>(perm.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t s = 0; s < n; ++s) {
    gathered[static_cast<std::size_t>(s)] =
        vals[perm[static_cast<std::size_t>(s)]];
  }
  values = std::move(gathered);
}

AltoTensor AltoTensor::build(const CooTensor& x) {
  AltoTensor a = build_pattern(x);
  a.attach_values(x);
  return a;
}

AltoTensor AltoTensor::from_views(Shape shape, storage::Span<std::uint64_t> lo,
                                  storage::Span<std::uint64_t> hi,
                                  storage::Span<nnz_t> perm,
                                  storage::Span<double> values,
                                  storage::Span<nnz_t> part_ptr,
                                  storage::Span<index_t> part_min,
                                  storage::Span<index_t> part_max) {
  AltoTensor a;
  a.shape = std::move(shape);
  a.derive_encoding();
  const nnz_t nnz = lo.size();
  HT_CHECK_MSG(a.key_bits <= 64 ? hi.empty() : hi.size() == nnz,
               "ALTO high key word does not match the shape's key width");
  HT_CHECK_MSG(perm.size() == nnz, "ALTO gather map length mismatch");
  HT_CHECK_MSG(values.empty() || values.size() == nnz,
               "ALTO value length mismatch");
  if (nnz == 0) {
    HT_CHECK_MSG(part_ptr.size() <= 1 && part_min.empty() && part_max.empty(),
                 "ALTO partition table on an empty tensor");
  } else {
    HT_CHECK_MSG(part_ptr.size() >= 2 && part_ptr[0] == 0 &&
                     part_ptr.back() == nnz,
                 "malformed ALTO partition intervals");
    const std::size_t parts = part_ptr.size() - 1;
    HT_CHECK_MSG(part_min.size() == parts * a.order() &&
                     part_max.size() == parts * a.order(),
                 "malformed ALTO partition ranges");
  }
  a.key_lo = std::move(lo);
  a.key_hi = std::move(hi);
  a.perm = std::move(perm);
  a.values = std::move(values);
  a.part_ptr = std::move(part_ptr);
  a.part_min = std::move(part_min);
  a.part_max = std::move(part_max);
  return a;
}

std::size_t AltoTensor::format_bytes() const {
  return key_lo.size() * sizeof(std::uint64_t) +
         key_hi.size() * sizeof(std::uint64_t) + perm.size() * sizeof(nnz_t) +
         values.size() * sizeof(double) + part_ptr.size() * sizeof(nnz_t) +
         (part_min.size() + part_max.size()) * sizeof(index_t);
}

}  // namespace ht::tensor
