// Tensor file IO.
//
// Text format: FROSTT-style ".tns" — one nonzero per line, 1-based indices
// followed by the value; '#' starts a comment. The shape is inferred from
// the maximum index per mode unless given.
//
// Binary format: "HTNSB1" magic, little-endian u64 order/shape/nnz, then
// per-mode u32 index arrays and f64 values. Used to cache generated tensors.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/coo_tensor.hpp"

namespace ht::tensor {

/// Read a .tns text stream. If `shape` is empty it is inferred.
CooTensor read_tns(std::istream& in, Shape shape = {});
CooTensor read_tns_file(const std::string& path, Shape shape = {});

/// Write .tns text (1-based indices).
void write_tns(std::ostream& out, const CooTensor& x);
void write_tns_file(const std::string& path, const CooTensor& x);

/// Binary round-trip.
void write_binary_file(const std::string& path, const CooTensor& x);
CooTensor read_binary_file(const std::string& path);

}  // namespace ht::tensor
