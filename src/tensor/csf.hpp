// Compressed sparse fiber (CSF) trees: the hierarchical tensor layout of
// SPLATT (Smith & Karypis) adapted to the compact TTMc of this repo.
//
// One tree per root mode n. Nonzeros are sorted lexicographically by
// (i_n, i_{m_1}, ..., i_{m_{L-1}}) and equal-prefix runs are collapsed into
// nodes: level 0 holds one node per non-empty mode-n row (exactly the
// compact row set J_n of core::ModeSymbolic, in the same sorted order),
// level d holds one node per distinct (root..d)-prefix, and the leaf level
// holds one entry per nonzero with its trailing coordinate and value
// gathered into tree order. Where the flat fiber index of core/symbolic.*
// chases a permutation (`nnz_order[i]` then `values[e]`, `idx[e]` — two
// random reads per nonzero), a CSF walk streams coordinates and values
// sequentially and pays each shared prefix's factor-row product once — the
// locality the kCsf TTMc kernel in core/ttmc.cpp exploits.
//
// Internal level order (the mode-permutation heuristic): below the root the
// remaining modes are sorted shortest-mode-first (ascending dimension size,
// ties by mode id). Short modes near the root have few distinct indices, so
// upper-level runs are long and more nonzeros share each stored prefix. The
// kernel un-permutes at the root: a served row is produced in tree Kronecker
// order and scattered once into ttmc_mode's increasing-mode layout.
//
// Construction is pattern-only: the tree structure and the leaf gather map
// (`leaf_entry`) depend on the nonzero pattern alone, so one CsfTensor is
// reused across HOOI iterations, HOOI runs, and the rank grid of a
// rank_sweep, mirroring how semi_sparse.cpp's TtmPlans are cached;
// attach_values() re-gathers values without rebuilding (the tensor values
// never change inside a decomposition, so build() does both once).
//
// Determinism: the lexicographic sort breaks ties by nonzero ordinal, so
// the tree — and therefore the kCsf kernel's per-row accumulation order —
// is a pure function of the tensor, independent of thread count.
// Thread-safety: CsfTree/CsfTensor are immutable after build and may be
// shared by any number of concurrent readers.
#pragma once

#include <cstddef>
#include <vector>

#include "storage/span.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/types.hpp"

namespace ht::tensor {

/// Compressed fiber tree rooted at one mode. The node arrays are held
/// through storage::Span — heap-owned when built from a CooTensor, or
/// zero-copy views into an mmap'd model bundle (storage/bundle.hpp); the
/// kCsf kernel and the structure invariants are identical in both states.
struct CsfTree {
  /// Tree level -> tensor mode; level_modes[0] is the root mode, the rest
  /// are the remaining modes shortest-first. Size = tensor order.
  std::vector<std::size_t> level_modes;
  /// idx[d][k]: coordinate (along level_modes[d]) of node k at level d.
  /// Level 0 enumerates the non-empty root-mode rows in increasing order —
  /// node k IS compact row k of core::ModeSymbolic for the root mode. The
  /// deepest level has one entry per nonzero, in tree order.
  std::vector<storage::Span<index_t>> idx;
  /// ptr[d] (d >= 1, size num_nodes(d-1) + 1): node k at level d-1 owns the
  /// level-d children [ptr[d][k], ptr[d][k+1]). ptr[0] is empty.
  std::vector<storage::Span<nnz_t>> ptr;
  /// Leaf slot -> original nonzero ordinal (the pattern-only gather map).
  storage::Span<nnz_t> leaf_entry;
  /// Leaf span under each root subtree (size num_roots() + 1): the nnz
  /// weights the kernel's tile scheduler balances on.
  storage::Span<nnz_t> root_leaf_ptr;
  /// Tensor values gathered into leaf order; empty until attach_values()
  /// (or build(), which gathers immediately).
  storage::Span<double> values;

  [[nodiscard]] std::size_t levels() const { return level_modes.size(); }
  [[nodiscard]] std::size_t root_mode() const { return level_modes[0]; }
  [[nodiscard]] std::size_t num_nodes(std::size_t d) const {
    return idx[d].size();
  }
  [[nodiscard]] std::size_t num_roots() const {
    return idx.empty() ? 0 : idx[0].size();
  }
  [[nodiscard]] std::size_t num_leaves() const { return leaf_entry.size(); }
  [[nodiscard]] bool has_values() const {
    return values.size() == leaf_entry.size() && !leaf_entry.empty();
  }

  /// Mean leaves per deepest internal node — the CSF analog of
  /// ModeSymbolic::avg_fiber_length() (under the tree's own level order,
  /// which may group better than the flat index's increasing-mode order).
  /// The kAuto kernel heuristic tests this against
  /// TtmcOptions::fiber_threshold. Zero for an empty tree.
  [[nodiscard]] double avg_leaf_fiber_length() const;

  /// Index-traversal compression: (leaves * internal levels) / stored
  /// internal+leaf nodes. 1.0 means every nonzero walks its own path (no
  /// sharing, CSF degenerates to COO); larger means each stored prefix is
  /// amortized over that many path visits. Zero for an empty tree.
  [[nodiscard]] double prefix_sharing_ratio() const;

  /// nnz under root node k — the tile scheduler's balance weight.
  [[nodiscard]] nnz_t root_nnz(std::size_t k) const {
    return root_leaf_ptr[k + 1] - root_leaf_ptr[k];
  }

  /// Bytes of this tree's node, pointer, gather, and value arrays.
  [[nodiscard]] std::size_t format_bytes() const;

  /// Pattern-only build (no values). Requires order >= 2, root < order.
  static CsfTree build_pattern(const CooTensor& x, std::size_t root);

  /// Gather `x`'s values into leaf order through leaf_entry.
  void attach_values(const CooTensor& x);
};

/// One CSF tree per root mode. Built once per tensor and shared across
/// HOOI iterations, runs, ranks grids, and concurrent schedulers.
struct CsfTensor {
  std::vector<CsfTree> modes;

  [[nodiscard]] std::size_t order() const { return modes.size(); }

  /// Bytes across all per-mode trees — the "N trees" side of the
  /// one-structure-vs-N-trees memory comparison against
  /// AltoTensor::format_bytes().
  [[nodiscard]] std::size_t format_bytes() const;

  /// Build all per-mode trees with values attached (modes in parallel).
  static CsfTensor build(const CooTensor& x);

  /// Pattern-only variant; call attach_values() before handing the trees
  /// to a numeric kernel.
  static CsfTensor build_pattern(const CooTensor& x);

  /// Gather values into every tree.
  void attach_values(const CooTensor& x);
};

}  // namespace ht::tensor
