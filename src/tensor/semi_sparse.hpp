// Semi-sparse tensor: sparse in a subset of the modes, with a dense block
// of already-contracted ranks attached to every remaining nonzero entry.
//
// Promoted out of the sequential MET baseline into a first-class parallel
// structure: a TTM along one sparse mode is split into a *symbolic merge
// plan* (sort entries by the surviving coordinates, record the merge groups
// — each group is exactly one fiber of the contracted mode) computed once,
// and a *numeric apply* that streams the plan with an OpenMP loop over
// groups. Groups write disjoint output blocks, so the numeric pass is a
// lock-free parfor, mirroring the row-parallel TTMc kernels. Plans depend
// only on the nonzero pattern: they are reused across HOOI iterations and
// across runs with different ranks (the dimension-tree scheduler in
// core/dim_tree.* is built on exactly this reuse).
//
// Block layout convention: a contraction either *appends* the factor rank as
// the fastest-varying dense dimension (out[b * R + r]) or *prepends* it as
// the slowest (out[r * B + b]). The dimension-tree scheduler needs both to
// serve Y(n) in ttmc_mode's Kronecker order (factors of increasing mode,
// last one fastest) no matter where mode n sits in the mode order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/types.hpp"

namespace ht::tensor {

/// Semi-sparse tensor storage. `idx[k]` holds the coordinates along
/// `sparse_modes[k]` (increasing mode ids) for every entry; `values` holds
/// `entries() * block` doubles, one dense block per entry.
struct SemiSparse {
  std::vector<std::size_t> sparse_modes;   // increasing
  std::vector<std::vector<index_t>> idx;   // [pos in sparse_modes][entry]
  std::size_t block = 1;
  std::vector<double> values;              // entries() * block

  [[nodiscard]] std::size_t entries() const {
    return block == 0 ? 0 : values.size() / block;
  }

  /// Lift a COO tensor into the semi-sparse representation (block = 1).
  static SemiSparse lift(const CooTensor& x);
};

/// Non-owning view of a semi-sparse nonzero pattern (no values, no block):
/// the input of symbolic plan construction.
struct PatternView {
  std::span<const std::size_t> sparse_modes;
  std::vector<std::span<const index_t>> idx;  // aligned with sparse_modes

  [[nodiscard]] std::size_t entries() const {
    return idx.empty() ? 0 : idx[0].size();
  }

  /// View over a COO tensor (all modes sparse).
  static PatternView of(const CooTensor& x, std::vector<std::size_t>& modes);
  /// View over a SemiSparse.
  static PatternView of(const SemiSparse& s);
};

/// Symbolic merge plan for contracting one sparse mode out of a pattern.
///
/// Entries are permuted so that the ones sharing every *surviving*
/// coordinate — one fiber of the contracted mode — are contiguous; group g
/// spans slots [group_ptr[g], group_ptr[g+1]). Groups are ordered
/// lexicographically by the surviving coordinates (ties between entries by
/// original ordinal), so the output entry order is deterministic and, once
/// a single sparse mode remains, sorted by that mode's row index — exactly
/// the compact row order of core::ModeSymbolic.
struct TtmPlan {
  std::size_t source_mode = 0;  // tensor mode being contracted
  bool prepend = false;         // factor rank prepended vs appended
  std::vector<std::size_t> out_sparse_modes;
  std::vector<nnz_t> group_ptr;            // size num_groups() + 1
  std::vector<nnz_t> src_entry;            // input entry per slot
  std::vector<index_t> src_row;            // factor row per slot
  std::vector<std::vector<index_t>> out_idx;  // [pos][group]; see shrink()

  [[nodiscard]] std::size_t num_groups() const {
    return group_ptr.empty() ? 0 : group_ptr.size() - 1;
  }
  [[nodiscard]] std::size_t num_slots() const { return src_entry.size(); }

  /// Output pattern view (valid while out_idx is populated).
  [[nodiscard]] PatternView out_pattern() const;

  /// Drop the output coordinates once no further plan depends on them; the
  /// numeric apply never reads them.
  void shrink() { out_idx.clear(); out_idx.shrink_to_fit(); }
};

/// Build the merge plan contracting `mode` out of `in`.
TtmPlan build_ttm_plan(const PatternView& in, std::size_t mode, bool prepend);

/// Numeric apply: for every group, out block = sum over the group's slots of
/// u.row(src_row) (x) input block (append) or its transpose-kron (prepend).
/// `out` must hold num_groups() * in_block * u.cols() doubles; every group
/// block is zeroed then accumulated (single writer, OpenMP over groups).
/// With `gathered_input`, slot k reads in_values[k * in_block] directly —
/// the caller pre-permuted the input by src_entry (done once per HOOI run
/// for the leaf level, where the tensor values never change).
void ttm_apply(const TtmPlan& plan, std::size_t in_block,
               std::span<const double> in_values, const la::Matrix& u,
               std::span<double> out, bool gathered_input = false,
               bool dynamic_schedule = true);

/// Numeric apply restricted to a subset of the groups: output row p holds
/// group positions[p]. The coarse-grain distributed HOOI serves only its
/// owned compact rows this way.
void ttm_apply_subset(const TtmPlan& plan, std::size_t in_block,
                      std::span<const double> in_values, const la::Matrix& u,
                      std::span<const std::uint32_t> positions,
                      std::span<double> out, bool dynamic_schedule = true);

/// One-shot contraction (plan built internally, append layout): multiplies
/// along `mode` with U (I_mode x R), contracting the mode away and appending
/// R as the fastest dense dimension. The MET baseline's TTM chain is this
/// call in a loop; performance-sensitive callers build plans once instead.
SemiSparse ttm_contract(const SemiSparse& s, std::size_t mode,
                        const la::Matrix& u);

}  // namespace ht::tensor
