#include "tensor/dense_tensor.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ht::tensor {

namespace {
constexpr std::size_t kDenseSizeLimit = std::size_t{1} << 30;  // 8 GiB of doubles
}

DenseTensor::DenseTensor(Shape shape) : shape_(std::move(shape)) {
  HT_CHECK_MSG(!shape_.empty(), "tensor order must be >= 1");
  std::size_t total = 1;
  for (index_t d : shape_) {
    HT_CHECK_MSG(d > 0, "all mode sizes must be positive");
    total *= d;
    HT_CHECK_MSG(total <= kDenseSizeLimit, "dense tensor too large");
  }
  data_ = std::vector<double>(total, 0.0);
}

DenseTensor::DenseTensor(Shape shape, std::vector<double> data)
    : shape_(std::move(shape)) {
  HT_CHECK_MSG(!shape_.empty(), "tensor order must be >= 1");
  std::size_t total = 1;
  for (index_t d : shape_) {
    HT_CHECK_MSG(d > 0, "all mode sizes must be positive");
    total *= d;
  }
  HT_CHECK_MSG(data.size() == total,
               "flat buffer size " << data.size() << " != shape product "
                                   << total);
  data_ = std::move(data);
}

DenseTensor DenseTensor::view(Shape shape, const double* data,
                              storage::ArenaPtr arena) {
  DenseTensor t;
  t.shape_ = std::move(shape);
  HT_CHECK_MSG(!t.shape_.empty(), "tensor order must be >= 1");
  std::size_t total = 1;
  for (index_t d : t.shape_) {
    HT_CHECK_MSG(d > 0, "all mode sizes must be positive");
    total *= d;
  }
  t.data_ = storage::Span<double>::view(data, total, std::move(arena));
  return t;
}

std::size_t DenseTensor::offset(std::span<const index_t> idx) const {
  HT_CHECK(idx.size() == order());
  std::size_t off = 0;
  for (std::size_t n = 0; n < order(); ++n) {
    HT_CHECK(idx[n] < shape_[n]);
    off = off * shape_[n] + idx[n];
  }
  return off;
}

double DenseTensor::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

la::Matrix DenseTensor::matricize(std::size_t mode) const {
  HT_CHECK(mode < order());
  const std::size_t rows = shape_[mode];
  const std::size_t cols = data_.size() / rows;
  la::Matrix m(rows, cols);

  std::vector<index_t> idx(order(), 0);
  for (std::size_t off = 0; off < data_.size(); ++off) {
    // Column index: remaining modes in increasing order, last fastest.
    std::size_t col = 0;
    for (std::size_t n = 0; n < order(); ++n) {
      if (n == mode) continue;
      col = col * shape_[n] + idx[n];
    }
    m(idx[mode], col) = data_[off];

    // Increment multi-index (row-major order matches `off`).
    for (std::size_t n = order(); n-- > 0;) {
      if (++idx[n] < shape_[n]) break;
      idx[n] = 0;
    }
  }
  return m;
}

DenseTensor DenseTensor::dematricize(const la::Matrix& m, const Shape& shape,
                                     std::size_t mode) {
  DenseTensor t(shape);
  HT_CHECK(mode < shape.size());
  HT_CHECK(m.rows() == shape[mode]);
  HT_CHECK(m.rows() * m.cols() == t.size());

  std::vector<index_t> idx(shape.size(), 0);
  std::vector<double>& out = t.data_.vec();
  for (std::size_t off = 0; off < t.size(); ++off) {
    std::size_t col = 0;
    for (std::size_t n = 0; n < shape.size(); ++n) {
      if (n == mode) continue;
      col = col * shape[n] + idx[n];
    }
    out[off] = m(idx[mode], col);
    for (std::size_t n = shape.size(); n-- > 0;) {
      if (++idx[n] < shape[n]) break;
      idx[n] = 0;
    }
  }
  return t;
}

DenseTensor DenseTensor::from_coo(const CooTensor& x) {
  DenseTensor t(x.shape());
  std::vector<index_t> idx(x.order());
  for (nnz_t k = 0; k < x.nnz(); ++k) {
    for (std::size_t n = 0; n < x.order(); ++n) idx[n] = x.index(n, k);
    t.at(idx) += x.value(k);
  }
  return t;
}

DenseTensor dense_ttm(const DenseTensor& x, std::size_t mode,
                      const la::Matrix& u) {
  HT_CHECK(mode < x.order());
  HT_CHECK_MSG(u.rows() == x.shape()[mode],
               "ttm factor rows " << u.rows() << " != mode size "
                                  << x.shape()[mode]);
  Shape out_shape = x.shape();
  out_shape[mode] = static_cast<index_t>(u.cols());
  DenseTensor y(out_shape);

  std::vector<index_t> idx(x.order(), 0);
  std::vector<index_t> out_idx(x.order(), 0);
  const std::size_t total = x.size();
  for (std::size_t off = 0; off < total; ++off) {
    const double v = x.flat()[off];
    if (v != 0.0) {
      out_idx = idx;
      const index_t i = idx[mode];
      for (std::size_t r = 0; r < u.cols(); ++r) {
        out_idx[mode] = static_cast<index_t>(r);
        y.at(out_idx) += v * u(i, r);
      }
    }
    for (std::size_t n = x.order(); n-- > 0;) {
      if (++idx[n] < x.shape()[n]) break;
      idx[n] = 0;
    }
  }
  return y;
}

DenseTensor dense_ttmc_except(const DenseTensor& x, std::size_t skip,
                              std::span<const la::Matrix> factors) {
  HT_CHECK(factors.size() == x.order());
  DenseTensor y = x;
  for (std::size_t n = 0; n < x.order(); ++n) {
    if (n == skip) continue;
    y = dense_ttm(y, n, factors[n]);
  }
  return y;
}

}  // namespace ht::tensor
