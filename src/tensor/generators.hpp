// Synthetic sparse tensor generators (substitute for the paper's Netflix /
// NELL / Delicious / Flickr datasets; see DESIGN.md "Substitutions").
//
// Coordinates are drawn per mode from a truncated Zipf-like power law (real
// user/item/tag data is heavily skewed), then de-duplicated; values carry a
// planted low-rank (CP) structure plus noise so HOOI has signal to recover.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"

namespace ht::tensor {

/// Uniform random coordinates, uniform values in [0, 1). Duplicates summed.
CooTensor random_uniform(const Shape& shape, nnz_t target_nnz,
                         std::uint64_t seed);

/// Zipf(theta)-skewed coordinates per mode (theta = 0 gives uniform).
/// Index popularity is decorrelated from index order by a bijective
/// multiplicative shuffle, so block partitions don't align with popularity.
CooTensor random_zipf(const Shape& shape, nnz_t target_nnz,
                      const std::vector<double>& theta, std::uint64_t seed);

/// Zipf-skewed coordinates with planted cross-mode *communities*: indices
/// are split into `communities` bands per mode, and with probability
/// `affinity` a nonzero draws all its indices from one community's bands
/// (Zipf within the band). Real user/item/tag tensors exhibit exactly this
/// co-occurrence locality — it is what hypergraph partitioning exploits
/// (without it, fine-hp cannot beat fine-rd and the paper's Table II/III
/// contrasts disappear).
CooTensor random_zipf_communities(const Shape& shape, nnz_t target_nnz,
                                  const std::vector<double>& theta,
                                  std::size_t communities, double affinity,
                                  std::uint64_t seed);

/// Fiber-structured tensor: `num_fibers` random last-mode fibers, each
/// holding a contiguous run of `fiber_len` nonzeros (all indices fixed
/// except the last mode). Average fiber length as seen by the TTMc fiber
/// index is therefore ~`fiber_len` for every mode whose leading other mode
/// is not the last — the regime the fiber-factored kernels target.
/// Duplicate fibers are summed, so the nonzero count can land slightly
/// below num_fibers * fiber_len. Values are uniform in [0, 1).
CooTensor random_fibered(const Shape& shape, nnz_t num_fibers,
                         index_t fiber_len, std::uint64_t seed);

/// Overwrite the values of `x` with a rank-`cp_rank` CP model evaluated at
/// each coordinate, plus Gaussian noise of the given relative magnitude.
void plant_low_rank_values(CooTensor& x, std::size_t cp_rank,
                           double noise_level, std::uint64_t seed);

/// A planted-Tucker tensor with a known noise floor, for completion tests:
/// the observed values are clean + noise where `clean` is an exact
/// rank-`ranks` Tucker model (Gaussian core and factors) normalized to unit
/// RMS over the observed entries, and the noise is i.i.d. Gaussian with
/// standard deviation `noise_sigma == relative_noise`. A completion model
/// that recovers the planted signal therefore has held-out RMSE approaching
/// `noise_sigma` — the floor tests pin against.
struct LowRankTensor {
  CooTensor tensor;             // observed entries: clean[t] + noise
  std::vector<value_t> clean;   // noiseless planted value per nonzero
  double noise_sigma = 0.0;     // exact std-dev of the added noise
};

/// Uniform-coordinate sparse sample of a planted rank-`ranks` Tucker model
/// plus Gaussian noise. `ranks` must have one entry per mode, each within
/// the mode size. Deterministic in (shape, target_nnz, ranks,
/// relative_noise, seed).
LowRankTensor random_low_rank(const Shape& shape, nnz_t target_nnz,
                              const Shape& ranks, double relative_noise,
                              std::uint64_t seed);

/// One paper dataset preset (Table I), scaled down for laptop execution.
struct PresetSpec {
  std::string name;
  Shape shape;              // scaled mode sizes
  nnz_t nnz = 0;            // scaled nonzero target
  std::vector<double> theta;  // per-mode skew
  std::vector<index_t> ranks;  // decomposition ranks used by the paper
};

/// Presets: "netflix", "nell" (3-mode, R = 10), "delicious", "flickr"
/// (4-mode, R = 5). `scale` multiplies mode sizes and nonzero count toward
/// the paper's sizes (scale = 1 is the laptop default, ~0.4M nonzeros).
PresetSpec paper_preset(const std::string& name, double scale = 1.0);

/// Names of all four presets in Table I order.
const std::vector<std::string>& paper_preset_names();

/// Generate the tensor for a preset: Zipf coordinates + planted low rank.
CooTensor generate_preset(const PresetSpec& spec, std::uint64_t seed = 42);

}  // namespace ht::tensor
