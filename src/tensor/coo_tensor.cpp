#include "tensor/coo_tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace ht::tensor {

CooTensor::CooTensor(Shape shape) : shape_(std::move(shape)) {
  HT_CHECK_MSG(!shape_.empty(), "tensor order must be >= 1");
  for (index_t d : shape_) {
    HT_CHECK_MSG(d > 0, "all mode sizes must be positive");
  }
  indices_.resize(shape_.size());
}

CooTensor CooTensor::from_views(Shape shape,
                                std::vector<storage::Span<index_t>> indices,
                                storage::Span<value_t> values) {
  CooTensor x(std::move(shape));
  HT_CHECK_MSG(indices.size() == x.order(),
               "need one index array per mode");
  for (const auto& idx : indices) {
    HT_CHECK_MSG(idx.size() == values.size(),
                 "index array length does not match value count");
  }
  x.indices_ = std::move(indices);
  x.values_ = std::move(values);
  return x;
}

bool CooTensor::is_view() const {
  if (values_.is_view()) return true;
  for (const auto& idx : indices_) {
    if (idx.is_view()) return true;
  }
  return false;
}

void CooTensor::push_back(std::span<const index_t> idx, value_t value) {
  HT_CHECK_MSG(idx.size() == order(), "coordinate arity mismatch");
  for (std::size_t n = 0; n < order(); ++n) {
    HT_CHECK_MSG(idx[n] < shape_[n], "index " << idx[n] << " out of bounds for"
                                              << " mode " << n << " (size "
                                              << shape_[n] << ")");
    indices_[n].vec().push_back(idx[n]);
  }
  values_.vec().push_back(value);
}

void CooTensor::reserve(nnz_t n) {
  for (auto& v : indices_) v.vec().reserve(n);
  values_.vec().reserve(n);
}

void CooTensor::sort_lexicographic() {
  const nnz_t n = nnz();
  std::vector<nnz_t> perm(n);
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  std::sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
    for (std::size_t m = 0; m < order(); ++m) {
      if (indices_[m][a] != indices_[m][b]) {
        return indices_[m][a] < indices_[m][b];
      }
    }
    return false;
  });

  for (std::size_t m = 0; m < order(); ++m) {
    std::vector<index_t> tmp(n);
    for (nnz_t t = 0; t < n; ++t) tmp[t] = indices_[m][perm[t]];
    indices_[m].vec() = std::move(tmp);
  }
  std::vector<value_t> tmpv(n);
  for (nnz_t t = 0; t < n; ++t) tmpv[t] = values_[perm[t]];
  values_.vec() = std::move(tmpv);
}

void CooTensor::sum_duplicates() {
  if (empty()) return;
  sort_lexicographic();
  const nnz_t n = nnz();
  std::vector<value_t>& vals = values_.vec();
  nnz_t w = 0;  // write cursor
  for (nnz_t t = 1; t < n; ++t) {
    bool same = true;
    for (std::size_t m = 0; m < order(); ++m) {
      if (indices_[m][t] != indices_[m][w]) {
        same = false;
        break;
      }
    }
    if (same) {
      vals[w] += vals[t];
    } else {
      ++w;
      for (std::size_t m = 0; m < order(); ++m) {
        indices_[m].vec()[w] = indices_[m][t];
      }
      vals[w] = vals[t];
    }
  }
  const nnz_t kept = w + 1;
  for (std::size_t m = 0; m < order(); ++m) indices_[m].vec().resize(kept);
  vals.resize(kept);
}

double CooTensor::norm2_squared() const {
  double s = 0.0;
  for (value_t v : values_) s += static_cast<double>(v) * v;
  return s;
}

std::vector<nnz_t> CooTensor::slice_nnz(std::size_t mode) const {
  HT_CHECK(mode < order());
  std::vector<nnz_t> hist(shape_[mode], 0);
  for (index_t i : indices_[mode]) ++hist[i];
  return hist;
}

CooTensor CooTensor::select(std::span<const nnz_t> ordinals) const {
  CooTensor out(shape_);
  out.reserve(ordinals.size());
  for (nnz_t t : ordinals) {
    HT_CHECK_MSG(t < nnz(), "ordinal " << t << " out of range");
    for (std::size_t m = 0; m < order(); ++m) {
      out.indices_[m].vec().push_back(indices_[m][t]);
    }
    out.values_.vec().push_back(values_[t]);
  }
  return out;
}

void CooTensor::validate() const {
  for (std::size_t m = 0; m < order(); ++m) {
    HT_CHECK_MSG(indices_[m].size() == values_.size(),
                 "index array length mismatch in mode " << m);
    for (index_t i : indices_[m]) {
      if (i >= shape_[m]) {
        throw InvalidArgument("tensor index out of bounds in mode " +
                              std::to_string(m));
      }
    }
  }
}

std::string CooTensor::summary() const {
  std::ostringstream os;
  os << order() << "-mode ";
  for (std::size_t m = 0; m < order(); ++m) {
    if (m) os << 'x';
    os << shape_[m];
  }
  os << ", " << nnz() << " nnz";
  return os.str();
}

}  // namespace ht::tensor
