#include "tensor/csf.hpp"

#include <algorithm>

#include "tensor/radix_sort.hpp"
#include "util/error.hpp"

namespace ht::tensor {

double CsfTree::avg_leaf_fiber_length() const {
  if (levels() < 2 || num_leaves() == 0) return 0.0;
  const std::size_t parents = num_nodes(levels() - 2);
  return parents == 0 ? 0.0
                      : static_cast<double>(num_leaves()) /
                            static_cast<double>(parents);
}

double CsfTree::prefix_sharing_ratio() const {
  if (levels() < 2 || num_leaves() == 0) return 0.0;
  std::size_t stored = 0;
  for (std::size_t d = 1; d < levels(); ++d) stored += num_nodes(d);
  return static_cast<double>(num_leaves()) *
         static_cast<double>(levels() - 1) / static_cast<double>(stored);
}

std::size_t CsfTree::format_bytes() const {
  std::size_t bytes = level_modes.size() * sizeof(std::size_t);
  for (const auto& a : idx) bytes += a.size() * sizeof(index_t);
  for (const auto& a : ptr) bytes += a.size() * sizeof(nnz_t);
  bytes += (leaf_entry.size() + root_leaf_ptr.size()) * sizeof(nnz_t);
  bytes += values.size() * sizeof(double);
  return bytes;
}

CsfTree CsfTree::build_pattern(const CooTensor& x, std::size_t root) {
  const std::size_t order = x.order();
  HT_CHECK_MSG(order >= 2, "CSF needs at least 2 modes");
  HT_CHECK(root < order);

  CsfTree t;
  t.level_modes.push_back(root);
  for (std::size_t m = 0; m < order; ++m) {
    if (m != root) t.level_modes.push_back(m);
  }
  // Shortest-mode-first below the root: short modes have few distinct
  // indices, so placing them high maximizes the prefix runs each stored
  // node amortizes. stable_sort keeps ties in increasing mode order.
  std::stable_sort(t.level_modes.begin() + 1, t.level_modes.end(),
                   [&](std::size_t a, std::size_t b) {
                     return x.dim(a) < x.dim(b);
                   });

  const std::size_t L = order;
  std::vector<std::span<const index_t>> coord(L);
  for (std::size_t d = 0; d < L; ++d) coord[d] = x.indices(t.level_modes[d]);

  // Lexicographic sort of nonzero ordinals by the level coordinates (the
  // shared LSD counting sort), ties by ordinal: the tree — and every
  // kernel accumulation order derived from it — is a pure function of the
  // tensor.
  std::vector<nnz_t> perm = lexicographic_order(x.nnz(), coord);

  // break_level[s]: shallowest level whose coordinate differs from slot
  // s-1 (0 for the first slot). A node at level d < L-1 starts exactly at
  // slots with break_level <= d; every slot is a leaf node (duplicate
  // coordinates stay separate leaves and accumulate, matching the other
  // kernels' treatment of unsummed duplicates).
  const std::size_t nslots = perm.size();
  std::vector<std::size_t> break_level(nslots, 0);
  for (std::size_t s = 1; s < nslots; ++s) {
    std::size_t d = 0;
    while (d < L && coord[d][perm[s]] == coord[d][perm[s - 1]]) ++d;
    break_level[s] = std::min(d, L - 1);
  }

  t.idx.resize(L);
  t.ptr.resize(L);
  t.leaf_entry = std::move(perm);
  for (std::size_t d = 0; d < L; ++d) {
    // Nodes at level d, and the CSR split of level-d nodes by their
    // level-(d-1) parent. Parent starts are a subset of child starts
    // (break_level <= d-1 implies <= d), so one pass emits both.
    std::vector<index_t>& ids = t.idx[d].vec();
    std::vector<nnz_t>& parent_ptr = t.ptr[d].vec();
    for (std::size_t s = 0; s < nslots; ++s) {
      const bool starts = d + 1 == L || break_level[s] <= d;
      if (d >= 1 && break_level[s] <= d - 1) parent_ptr.push_back(ids.size());
      if (starts) ids.push_back(coord[d][t.leaf_entry[s]]);
    }
    if (d >= 1) parent_ptr.push_back(ids.size());
  }

  std::vector<nnz_t>& root_ptr = t.root_leaf_ptr.vec();
  root_ptr.reserve(t.num_roots() + 1);
  for (std::size_t s = 0; s < nslots; ++s) {
    if (break_level[s] == 0) root_ptr.push_back(s);
  }
  root_ptr.push_back(nslots);
  return t;
}

void CsfTree::attach_values(const CooTensor& x) {
  HT_CHECK_MSG(x.nnz() == leaf_entry.size(),
               "value count does not match the CSF pattern");
  const auto vals = x.values();
  // Gather into a fresh owned buffer, then swap it in: this also converts a
  // bundle-loaded view back into the mutable state (re-attaching values to
  // a mapped pattern is a legitimate way to reuse a stored pattern against
  // a new value stream).
  std::vector<double> gathered(leaf_entry.size());
  const auto n = static_cast<std::ptrdiff_t>(leaf_entry.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t s = 0; s < n; ++s) {
    gathered[static_cast<std::size_t>(s)] =
        vals[leaf_entry[static_cast<std::size_t>(s)]];
  }
  values = std::move(gathered);
}

std::size_t CsfTensor::format_bytes() const {
  std::size_t bytes = 0;
  for (const auto& t : modes) bytes += t.format_bytes();
  return bytes;
}

CsfTensor CsfTensor::build(const CooTensor& x) {
  CsfTensor c = build_pattern(x);
  c.attach_values(x);
  return c;
}

CsfTensor CsfTensor::build_pattern(const CooTensor& x) {
  HT_CHECK_MSG(x.order() >= 2, "CSF needs at least 2 modes");
  CsfTensor c;
  c.modes.resize(x.order());
  // Per-root builds are independent (each sorts its own ordinal
  // permutation); the tensor order bounds the parallelism, like the
  // symbolic pass.
  const auto order = static_cast<int>(x.order());
#pragma omp parallel for schedule(dynamic, 1)
  for (int n = 0; n < order; ++n) {
    c.modes[static_cast<std::size_t>(n)] =
        CsfTree::build_pattern(x, static_cast<std::size_t>(n));
  }
  return c;
}

void CsfTensor::attach_values(const CooTensor& x) {
  for (auto& t : modes) t.attach_values(x);
}

}  // namespace ht::tensor
