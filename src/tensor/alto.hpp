// ALTO: adaptive linearized tensor order. One bit-interleaved key per
// nonzero replaces the per-mode coordinate tuple — and, downstream, the
// per-mode CSF forest — with a single mode-agnostic structure.
//
// Key encoding (the "adaptive" part): each mode n contributes exactly
// ceil(log2(dim_n)) bits, sized from the actual shape rather than a fixed
// field width, so no bit of the 64/128-bit key budget is wasted on
// padding. Index bits are interleaved round-robin from the key's LSB
// upward, visiting modes in increasing mode id within each round; a mode
// drops out of the rotation once its bits are exhausted. Consequences:
//   - low index bits of every mode share the low key bits, so ascending
//     key order is a locality-preserving space-filling traversal — nearby
//     nonzeros in key order are nearby in *every* mode's index space, not
//     just the root mode's as in a CSF tree;
//   - the longest modes' surplus high bits occupy the key's MSBs, so a
//     contiguous slot range of the sorted array spans a narrow index range
//     precisely in the modes where narrowness buys the most (small dense
//     staging rows for the kAlto TTMc kernel's partition accumulators).
// A shape whose summed bit-widths exceed 128 bits is rejected with
// ht::InvalidArgument at build time — never silently truncated.
//
// Layout: nonzeros are sorted once by key (tensor/radix_sort, stable, ties
// by ordinal), values are gathered into key order, and `perm` keeps the
// slot -> original-ordinal map (the pattern-only gather map, mirroring
// CSF's leaf_entry) so attach_values() can re-gather without rebuilding.
// The sorted array is cut into nnz-balanced partitions of ~kAltoPartNnz
// slots — the flattened form of ALTO's recursive halving of the
// linearized space, which lands on equal-population key intervals — and
// each partition records its per-mode [min, max] index range. Those ranges
// are what let a TTMc thread accumulate a partition into a small dense
// staging block and let the merge phase touch only the partitions whose
// range covers a given output row (conflict-free, cheaply reduced).
//
// Per-mode delinearization is mask-based: the scatter of one mode's bits
// across the key is precomputed as a handful of contiguous-run
// (shift, mask) extractions — portable bit arithmetic, a few ops per mode
// per nonzero, no BMI2 dependency. The runs are a pure function of the
// shape, so a bundle stores only the key/value/partition arrays and
// recomputes the masks at load time.
//
// Storage: every per-nonzero and per-partition array is held through
// storage::Span — heap-owned when built from a CooTensor, or zero-copy
// views into an mmap'd model bundle (storage/bundle.hpp). One AltoTensor
// serves TTMc for every mode, which is the memory headline: ~24 B/nnz
// (key + value + gather map) against the CSF forest's N trees at
// >= 20 B/nnz each.
//
// Determinism: the key sort is stable with ordinal tie-break and the
// partition boundaries depend only on nnz, so the whole structure — and
// every kernel accumulation order derived from it — is a pure function of
// the tensor, independent of thread count. Thread-safety: immutable after
// build; any number of concurrent readers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/span.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/types.hpp"

namespace ht::tensor {

/// Target nonzeros per ALTO partition. Fixed (not thread-count-derived) so
/// partition boundaries — and the kAlto kernel's reduction order over
/// partitions — never depend on the machine.
constexpr nnz_t kAltoPartNnz = 8192;

/// One contiguous bit run of a mode's delinearization mask:
/// index |= ((word >> key_shift) & mask) << index_shift, where word is
/// key_lo (word 0) or key_hi (word 1). Encoding inverts the same run.
struct AltoRun {
  std::uint8_t word;         ///< 0 = key_lo, 1 = key_hi
  std::uint8_t key_shift;    ///< bit offset of the run within the word
  std::uint8_t index_shift;  ///< bit offset of the run within the index
  std::uint64_t mask;        ///< (1 << run_length) - 1
};

struct AltoTensor {
  Shape shape;

  // ---- derived from the shape (recomputed on bundle load, never stored) --
  /// Bits mode n contributes to the key: ceil(log2(dim_n)), 0 for dim 1.
  std::vector<unsigned> mode_bits;
  /// Total key bits = sum(mode_bits); <= 64 means key_hi is unused.
  unsigned key_bits = 0;
  /// Per-mode contiguous-run extraction masks (see AltoRun).
  std::vector<std::vector<AltoRun>> mode_runs;

  // ---- persistent arrays (what a bundle stores) --------------------------
  /// Low 64 key bits of each nonzero, ascending (the sort order).
  storage::Span<std::uint64_t> key_lo;
  /// High key bits (key_bits > 64 only); empty otherwise.
  storage::Span<std::uint64_t> key_hi;
  /// Slot -> original nonzero ordinal (the pattern-only gather map).
  storage::Span<nnz_t> perm;
  /// Values gathered into key order; empty until attach_values() (or
  /// build(), which gathers immediately).
  storage::Span<double> values;
  /// Partition slot intervals: partition p owns [part_ptr[p], part_ptr[p+1]).
  /// Size num_partitions() + 1; empty for an empty tensor.
  storage::Span<nnz_t> part_ptr;
  /// Per-partition per-mode index ranges, row-major [partition][mode]:
  /// every nonzero of partition p has part_min[p*order + n] <=
  /// index(n) <= part_max[p*order + n].
  storage::Span<index_t> part_min;
  storage::Span<index_t> part_max;

  [[nodiscard]] std::size_t order() const { return shape.size(); }
  [[nodiscard]] nnz_t nnz() const { return key_lo.size(); }
  [[nodiscard]] std::size_t num_partitions() const {
    return part_ptr.empty() ? 0 : part_ptr.size() - 1;
  }
  [[nodiscard]] bool has_values() const {
    return values.size() == key_lo.size() && !key_lo.empty();
  }

  /// Mode-n index of the nonzero in slot s (delinearize from the key).
  [[nodiscard]] index_t mode_index(std::size_t mode, nnz_t s) const {
    std::uint64_t idx = 0;
    for (const AltoRun& r : mode_runs[mode]) {
      const std::uint64_t w = r.word == 0 ? key_lo[s] : key_hi[s];
      idx |= ((w >> r.key_shift) & r.mask) << r.index_shift;
    }
    return static_cast<index_t>(idx);
  }

  /// Mode-n index range of partition p (inclusive bounds).
  [[nodiscard]] index_t partition_min(std::size_t p, std::size_t mode) const {
    return part_min[p * order() + mode];
  }
  [[nodiscard]] index_t partition_max(std::size_t p, std::size_t mode) const {
    return part_max[p * order() + mode];
  }
  /// nnz of partition p — the balance weight.
  [[nodiscard]] nnz_t partition_nnz(std::size_t p) const {
    return part_ptr[p + 1] - part_ptr[p];
  }

  /// Bytes of the persistent arrays (keys, gather map, values, partition
  /// table) — the structure-memory number bench_ablation and
  /// --inspect-model report against the CSF forest's format_bytes().
  [[nodiscard]] std::size_t format_bytes() const;

  /// Summed per-mode bit-widths of `shape`. Throws ht::InvalidArgument
  /// when the total exceeds the 128-bit key budget (two 64-bit words).
  static unsigned key_bits_for(const Shape& shape);

  /// Non-throwing form of the budget check: can this shape be linearized?
  static bool fits_key_budget(const Shape& shape) noexcept;

  /// Build with values attached.
  static AltoTensor build(const CooTensor& x);

  /// Pattern-only variant (keys, perm, partitions; no values); call
  /// attach_values() before handing the structure to a numeric kernel.
  static AltoTensor build_pattern(const CooTensor& x);

  /// Gather `x`'s values into key order through perm.
  void attach_values(const CooTensor& x);

  /// Reassemble from externally backed arrays (the bundle load path):
  /// adopts the spans and recomputes mode_bits/key_bits/mode_runs from the
  /// shape. Validates array lengths against each other.
  static AltoTensor from_views(Shape shape, storage::Span<std::uint64_t> lo,
                               storage::Span<std::uint64_t> hi,
                               storage::Span<nnz_t> perm,
                               storage::Span<double> values,
                               storage::Span<nnz_t> part_ptr,
                               storage::Span<index_t> part_min,
                               storage::Span<index_t> part_max);

 private:
  /// Populate mode_bits/key_bits/mode_runs from shape.
  void derive_encoding();
};

}  // namespace ht::tensor
