// Stable lexicographic ordering of entry ordinals by coordinate keys.
//
// One stable LSD counting-sort pass per key: O(keys * (entries + max_key))
// with streaming sweeps, instead of a comparison sort whose K-way
// coordinate comparator does O(entries log entries) random reads. Keys
// whose maximum exceeds 16 bits are decomposed into stable 16-bit digit
// passes, bounding the histogram at 64Ki buckets — the counter allocation
// never scales with the key magnitude, only the pass count does (at most
// two passes for 32-bit indices). Shared by the semi-sparse merge-plan
// builder, the CSF tree builder, and the ALTO linearized-key build — all
// sort millions of nonzeros by small-domain digits, exactly the shape
// counting sort is built for.
//
// Parallelism: above a size threshold each histogram+scatter pass runs
// over OpenMP with per-chunk bucket counts merged by a bucket-major,
// chunk-minor exclusive prefix. Each chunk then scatters into disjoint,
// precomputed destination ranges, so the parallel pass produces the exact
// output of the sequential stable pass for any thread or chunk count.
//
// Determinism: every pass is stable and the sort starts from ordinal
// order, so entry ordinal is the final tie-break — the returned
// permutation is a pure function of the keys, independent of thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/types.hpp"

namespace ht::tensor {

/// Permutation of [0, entries) ordering entries lexicographically by the
/// given coordinate keys, most-significant first, ties by ordinal. Every
/// key span must have length `entries`; with no keys the identity
/// permutation comes back (all entries tie).
std::vector<nnz_t> lexicographic_order(
    std::size_t entries, std::span<const std::span<const index_t>> keys);

/// Permutation of [0, key_lo.size()) ordering entries by an up-to-128-bit
/// key ascending, ties by ordinal. `key_hi` holds the high 64 bits and may
/// be empty (pure 64-bit keys); otherwise it must match `key_lo`'s length.
/// This is the ALTO linearized-key sort: stable LSD over 16-bit digits,
/// with all-zero digit positions skipped, parallel like the passes above.
std::vector<nnz_t> linearized_order(std::span<const std::uint64_t> key_lo,
                                    std::span<const std::uint64_t> key_hi);

}  // namespace ht::tensor
