// Stable lexicographic ordering of entry ordinals by coordinate keys.
//
// One stable LSD counting-sort pass per key: O(keys * (entries + max_key))
// with purely sequential sweeps, instead of a comparison sort whose K-way
// coordinate comparator does O(entries log entries) random reads. Keys
// whose maximum exceeds 16 bits are decomposed into stable 16-bit digit
// passes, bounding the histogram at 64Ki buckets — the counter allocation
// never scales with the key magnitude, only the pass count does (at most
// two passes for 32-bit indices). Shared by the semi-sparse merge-plan
// builder and the CSF tree builder — both sort millions of nonzeros by a
// handful of small-domain coordinates, exactly the shape counting sort is
// built for.
//
// Determinism: the sort is stable and starts from ordinal order, so entry
// ordinal is the final tie-break — the returned permutation is a pure
// function of the keys.
#pragma once

#include <span>
#include <vector>

#include "tensor/types.hpp"

namespace ht::tensor {

/// Permutation of [0, entries) ordering entries lexicographically by the
/// given coordinate keys, most-significant first, ties by ordinal. Every
/// key span must have length `entries`; with no keys the identity
/// permutation comes back (all entries tie).
std::vector<nnz_t> lexicographic_order(
    std::size_t entries, std::span<const std::span<const index_t>> keys);

}  // namespace ht::tensor
