// Fundamental index types shared across the tensor subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ht::tensor {

/// Index along one tensor mode. 32-bit indices cover all paper datasets
/// (largest mode: 28M) while halving the memory traffic of the symbolic and
/// numeric TTMc passes, which are latency/bandwidth bound.
using index_t = std::uint32_t;

/// Nonzero ordinal. Tensor nonzero counts can exceed 2^32 in principle.
using nnz_t = std::uint64_t;

/// Value type of tensor entries.
using value_t = double;

/// Shape of an N-mode tensor: size of each mode.
using Shape = std::vector<index_t>;

/// Product of all mode sizes except `skip` (pass modes() for none).
inline std::uint64_t shape_product_except(const Shape& shape,
                                          std::size_t skip) {
  std::uint64_t p = 1;
  for (std::size_t n = 0; n < shape.size(); ++n) {
    if (n != skip) p *= shape[n];
  }
  return p;
}

}  // namespace ht::tensor
