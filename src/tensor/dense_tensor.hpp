// Dense N-mode tensor, used for the (small) core tensor G, for brute-force
// reference computations in tests, and for matricization.
//
// Layout convention used across HyperTensor: row-major with the LAST mode
// varying fastest. The mode-n matricization X(n) arranges rows by mode-n
// index and columns by the remaining modes in increasing mode order, last
// fastest — matching the Kronecker-product order of the nonzero-based TTMc
// formulation (paper Eq. 4). Column order of Y(n) is irrelevant to its left
// singular vectors, so this choice is free but must be consistent.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "storage/span.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/types.hpp"

namespace ht::tensor {

class DenseTensor {
 public:
  DenseTensor() = default;

  /// Zero-initialized dense tensor of the given shape.
  explicit DenseTensor(Shape shape);

  /// Take ownership of a prefilled flat buffer of prod(shape) doubles
  /// (row-major, last mode fastest) — the bundle kCopy load path.
  DenseTensor(Shape shape, std::vector<double> data);

  /// Zero-copy tensor over an externally backed buffer of prod(shape)
  /// doubles (read-only; the arena is kept alive for the tensor's
  /// lifetime). The serve-time state of a core tensor loaded from an
  /// mmap'd model bundle.
  static DenseTensor view(Shape shape, const double* data,
                          storage::ArenaPtr arena);

  [[nodiscard]] std::size_t order() const { return shape_.size(); }
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// True when the buffer is a read-only view into a shared arena.
  [[nodiscard]] bool is_view() const { return data_.is_view(); }

  [[nodiscard]] std::span<const double> flat() const { return data_; }
  [[nodiscard]] std::span<double> flat() {
    auto& v = data_.vec();
    return {v.data(), v.size()};
  }

  /// Linear offset of a multi-index (row-major, last mode fastest).
  [[nodiscard]] std::size_t offset(std::span<const index_t> idx) const;

  [[nodiscard]] double& at(std::span<const index_t> idx) {
    return data_.vec()[offset(idx)];
  }
  [[nodiscard]] const double& at(std::span<const index_t> idx) const {
    return data_[offset(idx)];
  }

  [[nodiscard]] double frobenius_norm() const;

  /// Mode-n matricization as a dense matrix (copies).
  [[nodiscard]] la::Matrix matricize(std::size_t mode) const;

  /// Inverse of matricize: scatter a matrix back into tensor layout.
  static DenseTensor dematricize(const la::Matrix& m, const Shape& shape,
                                 std::size_t mode);

  /// Densify a sparse tensor (test sizes only; checks total size).
  static DenseTensor from_coo(const CooTensor& x);

 private:
  Shape shape_;
  storage::Span<double> data_;
};

/// Dense mode-n tensor-times-matrix product with the factor applied as in
/// HOOI: result(..., r, ...) = sum_i x(..., i, ...) * u(i, r), i.e.
/// Y = X x_n U^T in the paper's notation with U of size I_n x R.
DenseTensor dense_ttm(const DenseTensor& x, std::size_t mode,
                      const la::Matrix& u);

/// Reference TTMc: apply dense_ttm in every mode except `skip` (all modes if
/// skip == order). Brute force; tests only.
DenseTensor dense_ttmc_except(const DenseTensor& x, std::size_t skip,
                              std::span<const la::Matrix> factors);

}  // namespace ht::tensor
