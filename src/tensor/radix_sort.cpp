#include "tensor/radix_sort.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace ht::tensor {

namespace {

// Keys below this get one exact-width counting pass (small histogram, hot
// in cache). At or above it the key is split into 16-bit digits: the
// histogram is then bounded at 64Ki buckets no matter how large the key
// values are — a key near max(index_t) must not drive a ~max_key-entry
// counter allocation (tens of GB for 32-bit indices).
constexpr std::size_t kDirectBucketLimit = std::size_t{1} << 16;

// One stable counting pass over `order` by digit(key[e]); result in `tmp`,
// then swapped into `order`. `buckets` is the digit alphabet size.
template <typename Digit>
void counting_pass(std::vector<nnz_t>& order, std::vector<nnz_t>& tmp,
                   std::vector<nnz_t>& count, std::size_t buckets,
                   std::span<const index_t> key, Digit digit) {
  count.assign(buckets + 1, 0);
  for (nnz_t e : order) ++count[digit(key[e]) + 1];
  for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  for (nnz_t e : order) tmp[count[digit(key[e])]++] = e;
  order.swap(tmp);
}

}  // namespace

std::vector<nnz_t> lexicographic_order(
    std::size_t entries, std::span<const std::span<const index_t>> keys) {
  const std::size_t n_entries = entries;
  std::vector<nnz_t> order(n_entries);
  std::iota(order.begin(), order.end(), nnz_t{0});
  std::vector<nnz_t> tmp(n_entries);
  std::vector<nnz_t> count;
  // LSD: least-significant key first, each pass stable over the previous.
  for (std::size_t k = keys.size(); k-- > 0;) {
    const auto key = keys[k];
    HT_CHECK_MSG(key.size() == n_entries, "key length mismatch");
    index_t max_key = 0;
    for (index_t v : key) max_key = std::max(max_key, v);
    if (static_cast<std::size_t>(max_key) + 1 <= kDirectBucketLimit) {
      counting_pass(order, tmp, count, static_cast<std::size_t>(max_key) + 1,
                    key, [](index_t v) { return static_cast<std::size_t>(v); });
    } else {
      // Wide key: LSD over 16-bit digits of this key (stable passes, so the
      // digit decomposition sorts exactly like the direct pass would).
      // Digits beyond the key's magnitude are all-zero and skipped.
      for (unsigned shift = 0;
           shift < 8 * sizeof(index_t) && (max_key >> shift) != 0;
           shift += 16) {
        counting_pass(order, tmp, count, kDirectBucketLimit, key,
                      [shift](index_t v) {
                        return static_cast<std::size_t>((v >> shift) & 0xFFFF);
                      });
      }
    }
  }
  return order;
}

}  // namespace ht::tensor
