#include "tensor/radix_sort.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace ht::tensor {

std::vector<nnz_t> lexicographic_order(
    std::size_t entries, std::span<const std::span<const index_t>> keys) {
  const std::size_t n_entries = entries;
  std::vector<nnz_t> order(n_entries);
  std::iota(order.begin(), order.end(), nnz_t{0});
  std::vector<nnz_t> tmp(n_entries);
  std::vector<nnz_t> count;
  // LSD: least-significant key first, each pass stable over the previous.
  for (std::size_t k = keys.size(); k-- > 0;) {
    const auto key = keys[k];
    HT_CHECK_MSG(key.size() == n_entries, "key length mismatch");
    index_t max_key = 0;
    for (index_t v : key) max_key = std::max(max_key, v);
    count.assign(static_cast<std::size_t>(max_key) + 2, 0);
    for (nnz_t e : order) ++count[key[e] + 1];
    for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
    for (nnz_t e : order) tmp[count[key[e]]++] = e;
    order.swap(tmp);
  }
  return order;
}

}  // namespace ht::tensor
