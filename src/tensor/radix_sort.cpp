#include "tensor/radix_sort.hpp"

#include <algorithm>
#include <numeric>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/error.hpp"

namespace ht::tensor {

namespace {

// Keys below this get one exact-width counting pass (small histogram, hot
// in cache). At or above it the key is split into 16-bit digits: the
// histogram is then bounded at 64Ki buckets no matter how large the key
// values are — a key near max(index_t) must not drive a ~max_key-entry
// counter allocation (tens of GB for 32-bit indices).
constexpr std::size_t kDirectBucketLimit = std::size_t{1} << 16;

// Entries below this run the sequential pass: the per-chunk histogram
// matrix and the parallel-region overhead only pay off on bulk sorts.
constexpr std::size_t kParallelSortGrain = std::size_t{1} << 15;

// Cap on histogram chunks: the prefix merge walks buckets * chunks
// counters (64Ki * 16 = 1M at the cap — microseconds), and more chunks
// than this add merge cost faster than scatter parallelism.
constexpr std::size_t kMaxSortChunks = 16;

// How many chunks a parallel pass over n entries uses (1 = sequential).
std::size_t pass_chunks(std::size_t n) {
#ifdef _OPENMP
  if (n >= kParallelSortGrain && omp_get_max_threads() > 1) {
    return std::min<std::size_t>(
        {kMaxSortChunks, static_cast<std::size_t>(omp_get_max_threads()),
         n / (kParallelSortGrain / 4)});
  }
#endif
  (void)n;
  return 1;
}

// One stable counting pass over `order` by digit(key[e]); result in `tmp`,
// then swapped into `order`. `buckets` is the digit alphabet size.
//
// Parallel form: `order` is cut into `chunks` contiguous chunks; each
// chunk histograms independently, then a bucket-major chunk-minor
// exclusive prefix assigns every (chunk, bucket) pair its disjoint
// destination range — elements of chunk c with digit b land after all
// elements with smaller digits and after same-digit elements of earlier
// chunks, preserving input order within the chunk. That is exactly the
// stable sequential scatter, so the output is invariant in `chunks`.
template <typename Key, typename Digit>
void counting_pass(std::vector<nnz_t>& order, std::vector<nnz_t>& tmp,
                   std::vector<nnz_t>& count, std::size_t buckets,
                   std::span<const Key> key, Digit digit) {
  const std::size_t n = order.size();
  const std::size_t chunks = pass_chunks(n);
  if (chunks <= 1) {
    count.assign(buckets + 1, 0);
    for (nnz_t e : order) ++count[digit(key[e]) + 1];
    for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
    for (nnz_t e : order) tmp[count[digit(key[e])]++] = e;
    order.swap(tmp);
    return;
  }
  const auto chunk_begin = [n, chunks](std::size_t c) {
    return n * c / chunks;
  };
  count.assign(chunks * buckets, 0);
  const auto c_chunks = static_cast<std::ptrdiff_t>(chunks);
#pragma omp parallel for schedule(static, 1)
  for (std::ptrdiff_t c = 0; c < c_chunks; ++c) {
    nnz_t* my = count.data() + static_cast<std::size_t>(c) * buckets;
    const std::size_t end = chunk_begin(static_cast<std::size_t>(c) + 1);
    for (std::size_t s = chunk_begin(static_cast<std::size_t>(c)); s < end;
         ++s) {
      ++my[digit(key[order[s]])];
    }
  }
  nnz_t running = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    for (std::size_t c = 0; c < chunks; ++c) {
      nnz_t& slot = count[c * buckets + b];
      const nnz_t v = slot;
      slot = running;
      running += v;
    }
  }
#pragma omp parallel for schedule(static, 1)
  for (std::ptrdiff_t c = 0; c < c_chunks; ++c) {
    nnz_t* my = count.data() + static_cast<std::size_t>(c) * buckets;
    const std::size_t end = chunk_begin(static_cast<std::size_t>(c) + 1);
    for (std::size_t s = chunk_begin(static_cast<std::size_t>(c)); s < end;
         ++s) {
      const nnz_t e = order[s];
      tmp[my[digit(key[e])]++] = e;
    }
  }
  order.swap(tmp);
}

}  // namespace

std::vector<nnz_t> lexicographic_order(
    std::size_t entries, std::span<const std::span<const index_t>> keys) {
  const std::size_t n_entries = entries;
  std::vector<nnz_t> order(n_entries);
  std::iota(order.begin(), order.end(), nnz_t{0});
  std::vector<nnz_t> tmp(n_entries);
  std::vector<nnz_t> count;
  // LSD: least-significant key first, each pass stable over the previous.
  for (std::size_t k = keys.size(); k-- > 0;) {
    const auto key = keys[k];
    HT_CHECK_MSG(key.size() == n_entries, "key length mismatch");
    index_t max_key = 0;
    for (index_t v : key) max_key = std::max(max_key, v);
    if (static_cast<std::size_t>(max_key) + 1 <= kDirectBucketLimit) {
      counting_pass(order, tmp, count, static_cast<std::size_t>(max_key) + 1,
                    key, [](index_t v) { return static_cast<std::size_t>(v); });
    } else {
      // Wide key: LSD over 16-bit digits of this key (stable passes, so the
      // digit decomposition sorts exactly like the direct pass would).
      // Digits beyond the key's magnitude are all-zero and skipped.
      for (unsigned shift = 0;
           shift < 8 * sizeof(index_t) && (max_key >> shift) != 0;
           shift += 16) {
        counting_pass(order, tmp, count, kDirectBucketLimit, key,
                      [shift](index_t v) {
                        return static_cast<std::size_t>((v >> shift) & 0xFFFF);
                      });
      }
    }
  }
  return order;
}

std::vector<nnz_t> linearized_order(std::span<const std::uint64_t> key_lo,
                                    std::span<const std::uint64_t> key_hi) {
  HT_CHECK_MSG(key_hi.empty() || key_hi.size() == key_lo.size(),
               "high key word length mismatch");
  const std::size_t n = key_lo.size();
  std::vector<nnz_t> order(n);
  std::iota(order.begin(), order.end(), nnz_t{0});
  std::vector<nnz_t> tmp(n);
  std::vector<nnz_t> count;
  const auto word_passes = [&](std::span<const std::uint64_t> word) {
    std::uint64_t bits = 0;  // OR of all keys: which digits carry data
    for (std::uint64_t v : word) bits |= v;
    for (unsigned shift = 0; shift < 64 && (bits >> shift) != 0; shift += 16) {
      counting_pass(order, tmp, count, kDirectBucketLimit, word,
                    [shift](std::uint64_t v) {
                      return static_cast<std::size_t>((v >> shift) & 0xFFFF);
                    });
    }
  };
  // LSD: low word first, then the high word's stable passes dominate.
  word_passes(key_lo);
  if (!key_hi.empty()) word_passes(key_hi);
  return order;
}

}  // namespace ht::tensor
