// Sparse N-mode tensor in coordinate (COO) format.
//
// Structure-of-arrays layout: one contiguous index array per mode plus one
// value array. The nonzero-based TTMc kernel reads every mode index of every
// nonzero, and the symbolic pass streams one mode's array at a time — both
// favor SoA over an array-of-tuples layout.
//
// The arrays are held through storage::Span: heap-owned by default (fully
// mutable, the train-time state), or read-only views into a shared
// storage::Arena (from_views — the mmap-backed serve/out-of-core state).
// All read paths work identically in both states; the mutating entry points
// (push_back, sort_lexicographic, sum_duplicates, non-const indices()/
// values()) throw ht::Error on a view instead of writing through a
// read-only mapping.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "storage/span.hpp"
#include "tensor/types.hpp"
#include "util/error.hpp"

namespace ht::tensor {

class CooTensor {
 public:
  CooTensor() = default;

  /// Empty tensor with the given shape.
  explicit CooTensor(Shape shape);

  /// Zero-copy tensor over externally backed index/value arrays (one index
  /// span per mode, all of equal length). The spans' arenas are kept alive
  /// for the tensor's lifetime.
  static CooTensor from_views(Shape shape,
                              std::vector<storage::Span<index_t>> indices,
                              storage::Span<value_t> values);

  [[nodiscard]] std::size_t order() const { return shape_.size(); }
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] index_t dim(std::size_t mode) const { return shape_[mode]; }
  [[nodiscard]] nnz_t nnz() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// True when any buffer is a read-only view into a shared arena.
  [[nodiscard]] bool is_view() const;

  /// Index array of one mode (length nnz).
  [[nodiscard]] std::span<const index_t> indices(std::size_t mode) const {
    return indices_[mode];
  }
  [[nodiscard]] std::span<index_t> indices(std::size_t mode) {
    auto& v = indices_[mode].vec();
    return {v.data(), v.size()};
  }

  [[nodiscard]] std::span<const value_t> values() const { return values_; }
  [[nodiscard]] std::span<value_t> values() {
    auto& v = values_.vec();
    return {v.data(), v.size()};
  }

  /// Mode index of nonzero t along mode n.
  [[nodiscard]] index_t index(std::size_t mode, nnz_t t) const {
    return indices_[mode][t];
  }
  [[nodiscard]] value_t value(nnz_t t) const { return values_[t]; }

  /// Append one nonzero; `idx` must have order() entries within the shape.
  void push_back(std::span<const index_t> idx, value_t value);

  /// Reserve capacity for n nonzeros.
  void reserve(nnz_t n);

  /// Sort nonzeros lexicographically by (mode 0, mode 1, ...).
  void sort_lexicographic();

  /// Sum duplicate coordinates (requires any consistent order; sorts first).
  /// Entries that cancel to exactly zero are kept (harmless).
  void sum_duplicates();

  /// Squared Frobenius norm: sum of squared values.
  [[nodiscard]] double norm2_squared() const;

  /// Number of nonzeros in each mode-n slice (histogram of mode indices);
  /// the coarse-grain partitioners balance on this.
  [[nodiscard]] std::vector<nnz_t> slice_nnz(std::size_t mode) const;

  /// Subset of nonzeros selected by ordinal; keeps shape. Used to build
  /// per-rank local tensors from a fine-grain partition.
  [[nodiscard]] CooTensor select(std::span<const nnz_t> ordinals) const;

  /// Validate all indices are within shape; throws ht::InvalidArgument.
  void validate() const;

  /// Human-readable one-line summary, e.g. "3-mode 100x80x60, 5000 nnz".
  [[nodiscard]] std::string summary() const;

 private:
  Shape shape_;
  std::vector<storage::Span<index_t>> indices_;  // [mode][nonzero]
  storage::Span<value_t> values_;
};

}  // namespace ht::tensor
