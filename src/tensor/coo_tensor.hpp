// Sparse N-mode tensor in coordinate (COO) format.
//
// Structure-of-arrays layout: one contiguous index array per mode plus one
// value array. The nonzero-based TTMc kernel reads every mode index of every
// nonzero, and the symbolic pass streams one mode's array at a time — both
// favor SoA over an array-of-tuples layout.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/types.hpp"
#include "util/error.hpp"

namespace ht::tensor {

class CooTensor {
 public:
  CooTensor() = default;

  /// Empty tensor with the given shape.
  explicit CooTensor(Shape shape);

  [[nodiscard]] std::size_t order() const { return shape_.size(); }
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] index_t dim(std::size_t mode) const { return shape_[mode]; }
  [[nodiscard]] nnz_t nnz() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Index array of one mode (length nnz).
  [[nodiscard]] std::span<const index_t> indices(std::size_t mode) const {
    return indices_[mode];
  }
  [[nodiscard]] std::span<index_t> indices(std::size_t mode) {
    return indices_[mode];
  }

  [[nodiscard]] std::span<const value_t> values() const { return values_; }
  [[nodiscard]] std::span<value_t> values() { return values_; }

  /// Mode index of nonzero t along mode n.
  [[nodiscard]] index_t index(std::size_t mode, nnz_t t) const {
    return indices_[mode][t];
  }
  [[nodiscard]] value_t value(nnz_t t) const { return values_[t]; }

  /// Append one nonzero; `idx` must have order() entries within the shape.
  void push_back(std::span<const index_t> idx, value_t value);

  /// Reserve capacity for n nonzeros.
  void reserve(nnz_t n);

  /// Sort nonzeros lexicographically by (mode 0, mode 1, ...).
  void sort_lexicographic();

  /// Sum duplicate coordinates (requires any consistent order; sorts first).
  /// Entries that cancel to exactly zero are kept (harmless).
  void sum_duplicates();

  /// Squared Frobenius norm: sum of squared values.
  [[nodiscard]] double norm2_squared() const;

  /// Number of nonzeros in each mode-n slice (histogram of mode indices);
  /// the coarse-grain partitioners balance on this.
  [[nodiscard]] std::vector<nnz_t> slice_nnz(std::size_t mode) const;

  /// Subset of nonzeros selected by ordinal; keeps shape. Used to build
  /// per-rank local tensors from a fine-grain partition.
  [[nodiscard]] CooTensor select(std::span<const nnz_t> ordinals) const;

  /// Validate all indices are within shape; throws ht::InvalidArgument.
  void validate() const;

  /// Human-readable one-line summary, e.g. "3-mode 100x80x60, 5000 nnz".
  [[nodiscard]] std::string summary() const;

 private:
  Shape shape_;
  std::vector<std::vector<index_t>> indices_;  // [mode][nonzero]
  std::vector<value_t> values_;
};

}  // namespace ht::tensor
