#include "tensor/io.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace ht::tensor {

namespace {

struct ParsedLine {
  std::vector<index_t> idx;
  value_t value = 0;
};

// Parse "i1 i2 ... iN v"; returns false for blank/comment lines.
bool parse_line(const std::string& line, std::size_t expected_order,
                ParsedLine& out, std::size_t line_no) {
  std::size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '#') return false;

  std::istringstream is(line);
  std::vector<double> fields;
  double f;
  while (is >> f) fields.push_back(f);
  if (fields.empty()) {
    throw IoError("line " + std::to_string(line_no) + ": unparsable");
  }

  if (expected_order != 0 && fields.size() != expected_order + 1) {
    throw IoError("line " + std::to_string(line_no) + ": expected " +
                  std::to_string(expected_order + 1) + " fields, got " +
                  std::to_string(fields.size()));
  }
  if (fields.size() < 2) {
    throw IoError("line " + std::to_string(line_no) +
                  ": need at least one index and a value");
  }

  out.idx.clear();
  // The largest usable 1-based index: mode sizes are index_t themselves, so
  // a 1-based index above max(index_t) can never satisfy a shape check (and
  // would wrap shape inference's dim = idx + 1 to zero). Values this small
  // are exactly representable in a double, so checking the range first also
  // rejects every magnitude where a double has already lost integer
  // precision (>= 2^53), and makes the integrality cast below safe (casting
  // an out-of-range double to integer is UB).
  constexpr double kMaxIndex =
      static_cast<double>(std::numeric_limits<index_t>::max());
  for (std::size_t n = 0; n + 1 < fields.size(); ++n) {
    const double v = fields[n];
    if (v < 1 || v > kMaxIndex) {
      throw IoError("line " + std::to_string(line_no) + ": index " +
                    std::to_string(v) + " out of range [1, " +
                    std::to_string(static_cast<std::uint64_t>(kMaxIndex)) +
                    "]");
    }
    if (v != static_cast<double>(static_cast<std::uint64_t>(v))) {
      throw IoError("line " + std::to_string(line_no) +
                    ": indices must be positive integers (1-based)");
    }
    out.idx.push_back(static_cast<index_t>(v - 1));  // to 0-based
  }
  out.value = fields.back();
  return true;
}

}  // namespace

CooTensor read_tns(std::istream& in, Shape shape) {
  std::vector<ParsedLine> entries;
  std::string line;
  std::size_t order = shape.size();
  std::size_t line_no = 0;
  ParsedLine parsed;
  while (std::getline(in, line)) {
    ++line_no;
    if (!parse_line(line, order, parsed, line_no)) continue;
    if (order == 0) order = parsed.idx.size();
    entries.push_back(parsed);
  }
  if (order == 0) throw IoError("empty tensor file");

  if (shape.empty()) {
    shape.assign(order, 0);
    for (const auto& e : entries) {
      for (std::size_t n = 0; n < order; ++n) {
        shape[n] = std::max(shape[n], static_cast<index_t>(e.idx[n] + 1));
      }
    }
  }

  CooTensor x(shape);
  x.reserve(entries.size());
  for (const auto& e : entries) {
    if (e.idx.size() != order) throw IoError("inconsistent arity");
    for (std::size_t n = 0; n < order; ++n) {
      if (e.idx[n] >= shape[n]) {
        throw IoError("index exceeds declared shape in mode " +
                      std::to_string(n));
      }
    }
    x.push_back(e.idx, e.value);
  }
  return x;
}

CooTensor read_tns_file(const std::string& path, Shape shape) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return read_tns(in, std::move(shape));
}

void write_tns(std::ostream& out, const CooTensor& x) {
  out << "# HyperTensor .tns export: " << x.summary() << '\n';
  for (nnz_t t = 0; t < x.nnz(); ++t) {
    for (std::size_t n = 0; n < x.order(); ++n) {
      out << (x.index(n, t) + 1) << ' ';
    }
    out << x.value(t) << '\n';
  }
}

void write_tns_file(const std::string& path, const CooTensor& x) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path + " for writing");
  write_tns(out, x);
  if (!out) throw IoError("write failed: " + path);
}

namespace {
constexpr char kMagic[6] = {'H', 'T', 'N', 'S', 'B', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::istream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw IoError("truncated binary tensor file");
  return v;
}
}  // namespace

void write_binary_file(const std::string& path, const CooTensor& x) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof kMagic);
  write_pod<std::uint64_t>(out, x.order());
  for (index_t d : x.shape()) write_pod<std::uint32_t>(out, d);
  write_pod<std::uint64_t>(out, x.nnz());
  for (std::size_t n = 0; n < x.order(); ++n) {
    const auto idx = x.indices(n);
    out.write(reinterpret_cast<const char*>(idx.data()),
              static_cast<std::streamsize>(idx.size() * sizeof(index_t)));
  }
  const auto vals = x.values();
  out.write(reinterpret_cast<const char*>(vals.data()),
            static_cast<std::streamsize>(vals.size() * sizeof(value_t)));
  if (!out) throw IoError("write failed: " + path);
}

CooTensor read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  char magic[6];
  in.read(magic, sizeof magic);
  if (!in || std::string(magic, 6) != std::string(kMagic, 6)) {
    throw IoError("bad magic in " + path);
  }
  const auto order = read_pod<std::uint64_t>(in);
  if (order == 0 || order > 16) throw IoError("implausible tensor order");
  Shape shape(order);
  for (std::size_t n = 0; n < order; ++n) {
    shape[n] = read_pod<std::uint32_t>(in);
    if (shape[n] == 0) {
      throw IoError("zero-sized mode " + std::to_string(n) + " in " + path);
    }
  }
  const auto nnz = read_pod<std::uint64_t>(in);

  // Validate the declared payload against the bytes actually present before
  // trusting nnz for allocation: a corrupt or truncated header would
  // otherwise drive a multi-GB allocation (or bad_alloc) instead of a clean
  // IoError.
  const std::streamoff header_end = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streamoff file_end = in.tellg();
  in.seekg(header_end, std::ios::beg);
  if (header_end < 0 || file_end < header_end) {
    throw IoError("cannot determine payload size of " + path);
  }
  const auto available = static_cast<std::uint64_t>(file_end - header_end);
  const std::uint64_t bytes_per_nnz =
      order * sizeof(index_t) + sizeof(value_t);
  if (nnz > available / bytes_per_nnz) {
    throw IoError("header of " + path + " declares " + std::to_string(nnz) +
                  " nonzeros but only " + std::to_string(available) +
                  " payload bytes are present");
  }
  // The payload must also not be *longer* than declared: trailing bytes mean
  // the header and body disagree (e.g. an interrupted rewrite over a larger
  // file), and silently ignoring them would return a tensor that matches
  // neither the old nor the new contents.
  if (available != nnz * bytes_per_nnz) {
    throw IoError("payload of " + path + " has " + std::to_string(available) +
                  " bytes, expected exactly " +
                  std::to_string(nnz * bytes_per_nnz));
  }

  CooTensor x(shape);
  x.reserve(nnz);
  std::vector<std::vector<index_t>> idx(order, std::vector<index_t>(nnz));
  for (std::size_t n = 0; n < order; ++n) {
    in.read(reinterpret_cast<char*>(idx[n].data()),
            static_cast<std::streamsize>(nnz * sizeof(index_t)));
    if (!in ||
        in.gcount() != static_cast<std::streamsize>(nnz * sizeof(index_t))) {
      throw IoError("truncated index data in " + path);
    }
  }
  std::vector<value_t> vals(nnz);
  in.read(reinterpret_cast<char*>(vals.data()),
          static_cast<std::streamsize>(nnz * sizeof(value_t)));
  if (!in ||
      in.gcount() != static_cast<std::streamsize>(nnz * sizeof(value_t))) {
    throw IoError("truncated value data in " + path);
  }

  std::vector<index_t> coord(order);
  for (nnz_t t = 0; t < nnz; ++t) {
    for (std::size_t n = 0; n < order; ++n) {
      coord[n] = idx[n][t];
      if (coord[n] >= shape[n]) {
        throw IoError("nonzero " + std::to_string(t) + " of " + path +
                      " has mode-" + std::to_string(n) +
                      " index outside the declared shape");
      }
    }
    x.push_back(coord, vals[t]);
  }
  return x;
}

}  // namespace ht::tensor
