#include "tensor/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/matrix.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/random.hpp"

namespace ht::tensor {

namespace {

// Truncated power-law sampler over [0, n): p(i) ~ 1/(i+1)^theta, via the
// continuous inverse-CDF approximation. theta = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(index_t n, double theta) : n_(n), theta_(theta) {
    HT_CHECK(n > 0);
    if (theta_ > 0.0 && std::abs(theta_ - 1.0) > 1e-9) {
      const double e = 1.0 - theta_;
      pow_range_ = std::pow(static_cast<double>(n_) + 1.0, e) - 1.0;
    }
    // Bijective decorrelating shuffle i -> (a * i + b) mod n with gcd(a,n)=1.
    mult_ = 0;
    for (std::uint64_t a = (2 * static_cast<std::uint64_t>(n) / 3) | 1;; a += 2) {
      if (std::gcd(a, static_cast<std::uint64_t>(n)) == 1) {
        mult_ = a;
        break;
      }
    }
    offset_ = static_cast<std::uint64_t>(n) / 7;
  }

  index_t operator()(Rng& rng) const {
    index_t raw;
    if (theta_ <= 0.0) {
      raw = static_cast<index_t>(rng.below(n_));
    } else if (std::abs(theta_ - 1.0) <= 1e-9) {
      const double x = std::exp(rng.uniform() * std::log(n_ + 1.0));
      raw = static_cast<index_t>(std::min<double>(x - 1.0, n_ - 1.0));
    } else {
      const double e = 1.0 - theta_;
      const double x = std::pow(1.0 + rng.uniform() * pow_range_, 1.0 / e);
      raw = static_cast<index_t>(std::min<double>(x - 1.0, n_ - 1.0));
    }
    return static_cast<index_t>(
        (static_cast<std::uint64_t>(raw) * mult_ + offset_) % n_);
  }

 private:
  index_t n_;
  double theta_;
  double pow_range_ = 0.0;
  std::uint64_t mult_ = 1;
  std::uint64_t offset_ = 0;
};

CooTensor generate_coordinates(const Shape& shape, nnz_t target_nnz,
                               const std::vector<double>& theta,
                               std::uint64_t seed,
                               std::size_t communities = 1,
                               double affinity = 0.0) {
  HT_CHECK_MSG(theta.size() == shape.size(), "theta arity mismatch");
  std::uint64_t capacity = 1;
  bool overflow = false;
  for (index_t d : shape) {
    if (capacity > (std::uint64_t{1} << 62) / d) {
      overflow = true;
      break;
    }
    capacity *= d;
  }
  HT_CHECK_MSG(overflow || target_nnz <= capacity,
               "requested more nonzeros than tensor positions");

  std::vector<ZipfSampler> samplers;
  samplers.reserve(shape.size());
  for (std::size_t n = 0; n < shape.size(); ++n) {
    samplers.emplace_back(shape[n], theta[n]);
  }

  // Per-community band samplers (communities > 1): community c draws from
  // the contiguous band [c*band, (c+1)*band) of each mode, Zipf within it.
  const std::size_t nc =
      std::max<std::size_t>(1, std::min<std::size_t>(communities,
                                                     *std::min_element(
                                                         shape.begin(),
                                                         shape.end())));
  std::vector<std::vector<ZipfSampler>> band_samplers;  // [mode][community]
  std::vector<std::vector<index_t>> band_offset(shape.size());
  if (nc > 1) {
    band_samplers.resize(shape.size());
    for (std::size_t n = 0; n < shape.size(); ++n) {
      const index_t band = shape[n] / static_cast<index_t>(nc);
      for (std::size_t c = 0; c < nc; ++c) {
        const index_t begin = static_cast<index_t>(c) * band;
        const index_t width =
            (c + 1 == nc) ? shape[n] - begin : band;  // last band takes slack
        band_samplers[n].emplace_back(std::max<index_t>(1, width), theta[n]);
        band_offset[n].push_back(begin);
      }
    }
  }

  Rng rng(seed);
  CooTensor x(shape);
  x.reserve(target_nnz + target_nnz / 8);
  std::vector<index_t> coord(shape.size());

  // Draw, dedupe, and top up until the target is met (or progress stalls,
  // which can happen for extremely skewed tiny tensors).
  int stalls = 0;
  while (x.nnz() < target_nnz && stalls < 8) {
    const nnz_t missing = target_nnz - x.nnz();
    const nnz_t batch = missing + missing / 4 + 16;
    for (nnz_t t = 0; t < batch; ++t) {
      if (nc > 1 && rng.uniform() < affinity) {
        const std::size_t c = rng.below(nc);
        for (std::size_t n = 0; n < shape.size(); ++n) {
          // Per-mode popularity mixing: even community-local activity hits
          // the globally popular items part of the time (the top tag is the
          // top tag in every community) — this is what creates the giant
          // indivisible slices behind the paper's coarse-grain imbalance.
          if (rng.uniform() < 0.35) {
            coord[n] = samplers[n](rng);
          } else {
            coord[n] = band_offset[n][c] + band_samplers[n][c](rng);
          }
        }
      } else {
        for (std::size_t n = 0; n < shape.size(); ++n) {
          coord[n] = samplers[n](rng);
        }
      }
      x.push_back(coord, 1.0);
    }
    const nnz_t before = x.nnz();
    x.sum_duplicates();
    if (x.nnz() >= before - batch / 2 && x.nnz() < target_nnz) {
      // fine, keep topping up
    }
    if (x.nnz() == before) ++stalls;
  }
  if (x.nnz() > target_nnz) {
    std::vector<nnz_t> keep(target_nnz);
    std::iota(keep.begin(), keep.end(), nnz_t{0});
    x = x.select(keep);
  }
  if (x.nnz() < target_nnz) {
    HT_LOG_WARN("generator stalled at " << x.nnz() << " / " << target_nnz
                                        << " nonzeros for shape "
                                        << x.summary());
  }
  return x;
}

}  // namespace

CooTensor random_uniform(const Shape& shape, nnz_t target_nnz,
                         std::uint64_t seed) {
  std::vector<double> theta(shape.size(), 0.0);
  CooTensor x = generate_coordinates(shape, target_nnz, theta, seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (auto& v : x.values()) v = rng.uniform();
  return x;
}

CooTensor random_zipf(const Shape& shape, nnz_t target_nnz,
                      const std::vector<double>& theta, std::uint64_t seed) {
  CooTensor x = generate_coordinates(shape, target_nnz, theta, seed);
  Rng rng(seed ^ 0xdeadbeefcafef00dULL);
  for (auto& v : x.values()) v = rng.uniform();
  return x;
}

CooTensor random_zipf_communities(const Shape& shape, nnz_t target_nnz,
                                  const std::vector<double>& theta,
                                  std::size_t communities, double affinity,
                                  std::uint64_t seed) {
  HT_CHECK_MSG(affinity >= 0.0 && affinity <= 1.0, "affinity must be in [0,1]");
  CooTensor x = generate_coordinates(shape, target_nnz, theta, seed,
                                     communities, affinity);
  Rng rng(seed ^ 0xdeadbeefcafef00dULL);
  for (auto& v : x.values()) v = rng.uniform();
  return x;
}

CooTensor random_fibered(const Shape& shape, nnz_t num_fibers,
                         index_t fiber_len, std::uint64_t seed) {
  HT_CHECK_MSG(shape.size() >= 2, "fibered tensors need at least two modes");
  HT_CHECK_MSG(fiber_len >= 1 && fiber_len <= shape.back(),
               "fiber_len must be in [1, last mode size]");
  const std::size_t order = shape.size();
  Rng rng(seed ^ 0xf1be7f1be7f1be70ULL);
  CooTensor x(shape);
  x.reserve(num_fibers * fiber_len);
  std::vector<index_t> coord(order);
  for (nnz_t f = 0; f < num_fibers; ++f) {
    for (std::size_t n = 0; n + 1 < order; ++n) {
      coord[n] = static_cast<index_t>(rng.below(shape[n]));
    }
    const auto start =
        static_cast<index_t>(rng.below(shape.back() - fiber_len + 1));
    for (index_t k = 0; k < fiber_len; ++k) {
      coord[order - 1] = start + k;
      x.push_back(coord, rng.uniform());
    }
  }
  x.sum_duplicates();
  return x;
}

void plant_low_rank_values(CooTensor& x, std::size_t cp_rank,
                           double noise_level, std::uint64_t seed) {
  HT_CHECK(cp_rank >= 1);
  Rng rng(seed);
  // Random CP factors, one I_n x cp_rank matrix per mode. Component weights
  // decay like a power law so every matricization has a decaying singular
  // spectrum — the signature of real-world data, and what lets iterative
  // TRSVD solvers converge in a few steps (paper: "TRSVD converged in less
  // than 5 iterations").
  std::vector<la::Matrix> factors;
  factors.reserve(x.order());
  for (std::size_t n = 0; n < x.order(); ++n) {
    la::Matrix f(x.dim(n), cp_rank);
    for (auto& v : f.flat()) v = rng.uniform(0.2, 1.0);
    factors.push_back(std::move(f));
  }
  std::vector<double> component_weight(cp_rank);
  for (std::size_t r = 0; r < cp_rank; ++r) {
    component_weight[r] = 1.0 / std::pow(1.0 + static_cast<double>(r), 1.2);
  }
  for (nnz_t t = 0; t < x.nnz(); ++t) {
    double v = 0.0;
    for (std::size_t r = 0; r < cp_rank; ++r) {
      double prod = component_weight[r];
      for (std::size_t n = 0; n < x.order(); ++n) {
        prod *= factors[n](x.index(n, t), r);
      }
      v += prod;
    }
    x.values()[t] = v + noise_level * rng.normal();
  }
}

LowRankTensor random_low_rank(const Shape& shape, nnz_t target_nnz,
                              const Shape& ranks, double relative_noise,
                              std::uint64_t seed) {
  HT_CHECK_MSG(ranks.size() == shape.size(), "need one rank per mode");
  for (std::size_t n = 0; n < shape.size(); ++n) {
    HT_CHECK_MSG(ranks[n] >= 1 && ranks[n] <= shape[n],
                 "planted rank out of range");
  }
  HT_CHECK_MSG(relative_noise >= 0.0, "relative_noise must be non-negative");

  // Uniform coordinates: completion recoverability needs every row of every
  // mode observed with roughly equal probability (a Zipf mask leaves cold
  // rows under-determined, which is a property of the mask, not the solver).
  const std::vector<double> theta(shape.size(), 0.0);
  LowRankTensor out;
  out.tensor = generate_coordinates(shape, target_nnz, theta, seed);

  // Gaussian core and factor entries give a generic (well-conditioned)
  // Tucker model with no structure beyond its rank.
  Rng rng(seed ^ 0x70c4e2d1a5f0b37bULL);
  std::vector<la::Matrix> factors;
  factors.reserve(shape.size());
  for (std::size_t n = 0; n < shape.size(); ++n) {
    la::Matrix f(shape[n], ranks[n]);
    for (auto& v : f.flat()) v = rng.normal();
    factors.push_back(std::move(f));
  }
  std::size_t core_len = 1;
  for (const index_t r : ranks) core_len *= r;
  std::vector<double> core(core_len);
  for (auto& v : core) v = rng.normal();

  // Evaluate the model at every observed coordinate (flat core walk with
  // digit decoding — generator-side code, clarity over speed).
  const nnz_t nnz = out.tensor.nnz();
  out.clean.resize(nnz);
  double sum_sq = 0.0;
  for (nnz_t t = 0; t < nnz; ++t) {
    double v = 0.0;
    for (std::size_t c = 0; c < core_len; ++c) {
      double prod = core[c];
      std::size_t rem = c;
      for (std::size_t n = shape.size(); n-- > 0;) {
        const std::size_t r = rem % ranks[n];
        rem /= ranks[n];
        prod *= factors[n](out.tensor.index(n, t), r);
      }
      v += prod;
    }
    out.clean[t] = v;
    sum_sq += v * v;
  }

  // Normalize the clean signal to unit RMS over the observed entries, so
  // the additive noise sigma IS the relative noise level and the held-out
  // noise floor is exactly `relative_noise`.
  const double rms = std::sqrt(sum_sq / std::max<nnz_t>(nnz, 1));
  HT_CHECK_MSG(rms > 0.0, "planted signal degenerated to zero");
  const double inv_rms = 1.0 / rms;
  out.noise_sigma = relative_noise;
  auto values = out.tensor.values();
  for (nnz_t t = 0; t < nnz; ++t) {
    out.clean[t] *= inv_rms;
    values[t] = out.clean[t] + relative_noise * rng.normal();
  }
  return out;
}

PresetSpec paper_preset(const std::string& name, double scale) {
  HT_CHECK_MSG(scale > 0, "scale must be positive");

  // Paper Table I shapes; scaled_dim keeps tiny modes intact (NELL's
  // 301-wide relation mode is part of its character) while dividing large
  // modes by 32/scale. Mode sizes shrink harder than nonzero counts so the
  // nonzeros-per-slice ratio stays closer to the paper's (which sets the
  // TTMc : TRSVD work balance).
  auto scaled_dim = [&](double orig) -> index_t {
    const double shrink = 32.0 / scale;
    const double d = std::max(std::min(orig, 32.0), orig / shrink);
    return static_cast<index_t>(std::max(2.0, std::round(d)));
  };
  auto scaled_nnz = [&](double /*orig*/) -> nnz_t {
    return static_cast<nnz_t>(400000.0 * scale);
  };

  PresetSpec s;
  s.name = name;
  if (name == "netflix") {
    s.shape = {scaled_dim(480e3), scaled_dim(17e3), scaled_dim(2e3)};
    s.nnz = scaled_nnz(100e6);
    s.theta = {1.0, 1.1, 0.5};
    s.ranks = {10, 10, 10};
  } else if (name == "nell") {
    s.shape = {scaled_dim(3.2e6), scaled_dim(301), scaled_dim(638e3)};
    s.nnz = scaled_nnz(78e6);
    s.theta = {1.2, 0.8, 1.2};
    s.ranks = {10, 10, 10};
  } else if (name == "delicious") {
    s.shape = {scaled_dim(1.4e3), scaled_dim(532e3), scaled_dim(17e6),
               scaled_dim(2.4e6)};
    s.nnz = scaled_nnz(140e6);
    s.theta = {0.6, 1.1, 1.2, 1.25};
    s.ranks = {5, 5, 5, 5};
  } else if (name == "flickr") {
    s.shape = {scaled_dim(731), scaled_dim(319e3), scaled_dim(28e6),
               scaled_dim(1.6e6)};
    s.nnz = scaled_nnz(112e6);
    s.theta = {0.6, 1.1, 1.25, 1.25};
    s.ranks = {5, 5, 5, 5};
  } else {
    throw InvalidArgument("unknown preset: " + name);
  }
  return s;
}

const std::vector<std::string>& paper_preset_names() {
  static const std::vector<std::string> names = {"netflix", "nell",
                                                 "delicious", "flickr"};
  return names;
}

CooTensor generate_preset(const PresetSpec& spec, std::uint64_t seed) {
  // 24 communities at 85% affinity: the co-occurrence locality real
  // user/item/tag data exhibits (and hypergraph partitioning exploits).
  CooTensor x = random_zipf_communities(spec.shape, spec.nnz, spec.theta,
                                        /*communities=*/24, /*affinity=*/0.85,
                                        seed);
  // Rank well past the decomposition ranks, with decaying weights: the
  // spectrum keeps decaying through R_n, as in real data.
  plant_low_rank_values(x, 24, 0.02, seed ^ 0x5ca1ab1eULL);
  return x;
}

}  // namespace ht::tensor
