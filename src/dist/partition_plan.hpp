// Data-distribution plans for the distributed-memory HOOI (paper Sec. III-B).
//
// A plan answers two questions ahead of any iteration:
//   * who owns what — per-mode factor-row owners (both grains) plus, for the
//     fine grain, a nonzero owner for every tensor entry;
//   * who talks to whom — per-mode, per-pair communication lists for the
//     fold (partial results -> row owner) and expand (updated factor row ->
//     replicas) phases of paper Algorithm 4.
//
// Grains and methods follow the paper's Table II configurations:
//   fine-hp    fine-grain hypergraph partition (Kaya & Uçar SC'15 model)
//   fine-rd    fine-grain balanced random nonzero placement
//   coarse-hp  per-mode coarse-grain (column-net) hypergraph partition
//   coarse-bl  contiguous slice blocks balanced by slice nonzero count
//
// The two-stage API mirrors the paper's offline partitioning: a GlobalPlan
// records ownership only (cheap to inspect, independent of decomposition
// ranks); build_rank_plans then materializes per-rank local tensors
// (reindexed to dense local ids), communication lists, and the initial
// factor slices for a specific rank vector.
//
// Contract: plans are built against one tensor and one PlanOptions; every
// mode of every rank gets fold/expand lists that are pairwise symmetric
// (rank p's send list to q equals q's receive list from p, in the same row
// order), local tensors partition the nonzeros exactly (fine grain) or by
// whole owned slices (coarse grain), and initial factor slices are derived
// from the seed so a distributed run is reproducible from (tensor,
// options) alone. Determinism: partitioners (hypergraph refinement, random
// placement, block splitting) are seeded and single-threaded per
// structure; building the same plan twice yields identical ownership,
// orderings, and communication lists — bench_table2 relies on this to
// reuse plans across timing runs, and the dist tests on plan equality
// across repeated builds. Thread-safety: GlobalPlan and RankPlan are
// immutable after construction and are shared read-only by all SPMD ranks;
// build_rank_plans itself is not reentrant on a shared output vector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"

namespace ht::dist {

using tensor::CooTensor;
using tensor::index_t;
using tensor::nnz_t;

/// Task granularity of the data distribution (paper Sec. III-B).
enum class Grain { kFine, kCoarse };

/// Partitioning method used to derive ownership.
enum class Method { kHypergraph, kRandom, kBlock };

/// Paper configuration label, e.g. "fine-hp", "coarse-bl" (Table II).
std::string config_label(Grain grain, Method method);

struct PlanOptions {
  Grain grain = Grain::kFine;
  Method method = Method::kHypergraph;
  int num_ranks = 1;
  /// Seed for the partitioners (hypergraph refinement, random placement).
  std::uint64_t seed = 42;
  /// Allowed part-weight imbalance for the hypergraph partitioner.
  double epsilon = 0.10;
};

/// Ownership only: which rank owns each factor row (per mode) and, for the
/// fine grain, each nonzero. Empty rows get a deterministic owner in
/// [0, num_ranks) but carry no data or communication.
struct GlobalPlan {
  Grain grain = Grain::kFine;
  Method method = Method::kHypergraph;
  int num_ranks = 1;
  /// row_owner[mode][global row] in [0, num_ranks).
  std::vector<std::vector<int>> row_owner;
  /// Fine grain only: owner of each nonzero ordinal (empty for coarse).
  std::vector<int> nnz_owner;
};

/// Partition the tensor. Fine grain partitions nonzeros and anchors each
/// non-empty row to the rank holding most of its nonzeros; coarse grain
/// partitions each mode's slices independently (owners hold whole slices).
GlobalPlan build_global_plan(const CooTensor& x, const PlanOptions& options);

/// One direction of a point-to-point exchange: the local row positions
/// (indices into ModePlan::local_rows, equivalently rows of the local
/// compact Y / factor slice) to be sent to / received from `peer`. Matching
/// send and recv lists enumerate the same global rows in the same
/// (ascending) order.
struct CommList {
  int peer = -1;
  std::vector<std::uint32_t> positions;
};

/// Per-mode view of one rank's plan.
struct ModePlan {
  /// Sorted global rows this rank owns (covers all globally non-empty rows
  /// exactly once across ranks).
  std::vector<index_t> owned_rows;
  /// Sorted global rows referenced by this rank's local nonzeros; local row
  /// id i corresponds to global row local_rows[i].
  std::vector<index_t> local_rows;
  /// Expand phase: owner sends the updated factor row to every replica.
  std::vector<CommList> factor_send, factor_recv;
  /// Fold phase (fine grain only): replicas send partial row results to the
  /// owner, which accumulates them in ascending peer order.
  std::vector<CommList> fold_send, fold_recv;
};

/// Everything one simulated rank needs to run HOOI.
struct RankPlan {
  int rank = 0;
  /// Local nonzeros with indices reindexed to dense local row ids. Fine
  /// grain: disjoint across ranks; coarse grain: the union of the rank's
  /// owned slices over all modes (each nonzero stored once per rank).
  CooTensor local;
  std::vector<ModePlan> modes;
  /// Local slices (rows = local_rows) of the deterministic global initial
  /// factors for the given seed — depends only on (shape, ranks, seed), not
  /// on the partition, so plans built from differently-seeded GlobalPlans
  /// still start HOOI from the same point.
  std::vector<la::Matrix> initial_factors;
};

/// Materialize per-rank plans for a decomposition with the given ranks.
/// `seed` drives only the initial factors (matches core::hooi with the same
/// seed); the partition is fully determined by `plan`.
std::vector<RankPlan> build_rank_plans(const CooTensor& x,
                                       const GlobalPlan& plan,
                                       const std::vector<index_t>& ranks,
                                       std::uint64_t seed);

/// Position of global row `g` in a sorted local row list (the local row id,
/// equivalently the row of the local compact Y / factor slice); throws if
/// the row is not local.
std::uint32_t local_row_position(const std::vector<index_t>& local_rows,
                                 index_t g);

}  // namespace ht::dist
