// Distributed-memory HOOI (paper Algorithm 4) on the simulated
// message-passing runtime.
//
// `num_ranks` SPMD ranks run as threads over smp::Communicator. Each rank
// holds a reindexed local tensor and local factor slices from a
// partition_plan; one ALS sweep then performs, per mode,
//   (i)   local TTMc over the rank's nonzeros (partial rows under the fine
//         grain, complete owned rows under the coarse grain),
//   (ii)  distributed TRSVD: Lanczos over a row-distributed operator whose
//         apply() folds partial row results to row owners and expands them
//         back to replicas — Y(n) is never assembled (the paper's argument
//         for Lanczos over Gram methods),
//   (iii) factor-row exchange and, after the last mode, an allreduce'd core
//         tensor G = U_N^T Y(N) from which the exact fit is monitored.
// With num_ranks = 1 every collective degenerates to the identity and the
// iteration reproduces core::hooi bit for bit.
//
// Per-mode/per-rank computation and communication loads (paper Table III)
// are reported in DistStats; communication volumes are derived from the
// partition's fold/expand lists, so they are a property of the data
// distribution, not of the simulated network speed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hooi.hpp"
#include "core/tucker.hpp"
#include "dist/partition_plan.hpp"
#include "la/lanczos.hpp"
#include "util/stats.hpp"

namespace ht::dist {

struct DistHooiOptions {
  /// Decomposition ranks, one per mode (required).
  std::vector<index_t> ranks;
  Grain grain = Grain::kFine;
  Method method = Method::kHypergraph;
  /// Simulated process count.
  int num_ranks = 1;
  int max_iterations = 5;  // the paper's benchmark setting
  /// Stop when the fit improves by less than this between sweeps. The
  /// distributed default runs all iterations (the paper times fixed sweeps).
  double fit_tolerance = 0.0;
  /// OpenMP threads inside each simulated rank (0 = runtime default);
  /// models the paper's hybrid MPI+OpenMP configurations.
  int threads_per_rank = 0;
  std::uint64_t seed = 42;
  core::Schedule ttmc_schedule = core::Schedule::kDynamic;
  /// TTMc kernel family for the per-rank local kernels (both grains);
  /// kAuto applies the fiber-length heuristic to each rank's local tensor.
  /// kCsf (and kAuto, when the local statistics favor it) builds CSF trees
  /// over the rank-local tensor: the coarse grain computes its owned rows
  /// through the CSF subset path, the fine grain its local partial rows.
  /// kAlto likewise builds a rank-local linearized (ALTO) structure and
  /// serves both grains through the kAlto kernel's row maps.
  core::TtmcKernel ttmc_kernel = core::TtmcKernel::kAuto;
  double ttmc_fiber_threshold = core::TtmcOptions{}.fiber_threshold;
  /// Per-rank structure-memory budget in bytes for kAuto's CSF-vs-ALTO
  /// footprint trade (core::TtmcOptions::structure_budget_bytes); 0 = off.
  double ttmc_structure_budget = 0.0;
  /// Cross-mode TTMc strategy, resolved per rank against its local tensor.
  /// Under the coarse grain the owned-row subsets are served straight from
  /// the rank's partials; under the fine grain the partials hold the
  /// rank-local partial sums the fold later combines.
  core::TtmcStrategy ttmc_strategy = core::TtmcStrategy::kAuto;
  /// TRSVD backend, resolved per mode (kAuto) against the global compact
  /// problem size. The blocked backends batch the fold/expand exchange into
  /// one message round per block apply instead of one per Lanczos vector.
  /// kGram is rejected: it would require assembling Y(n) (the paper's
  /// argument for matrix-free solvers in the fine-grain setting).
  core::TrsvdMethod trsvd_method = core::TrsvdMethod::kLanczos;
  /// Inner-solver controls; defaults match core::HooiOptions.
  la::TrsvdOptions trsvd = {.tol = 1e-7};
  /// Hypergraph partitioner imbalance tolerance (plan construction only).
  double epsilon = 0.10;
  /// Directory for rank-local restart bundles ("" = no checkpointing).
  /// When set, every rank writes its local factor slices to
  /// <dir>/rank<r>.htb (storage/bundle.hpp format) after its iteration
  /// loop, and a later run over the same plan warm-starts from those
  /// slices instead of the plan's random initialization — the fit
  /// trajectory continues exactly where the checkpointed run stopped.
  std::string checkpoint_dir;
};

/// Per-mode/per-rank loads of one HOOI iteration (paper Table III).
struct DistLoad {
  /// TTMc work: nonzeros this rank processes for the mode.
  std::uint64_t w_ttmc = 0;
  /// TRSVD work: entries of the rank's local part of Y(n).
  std::uint64_t w_trsvd = 0;
  /// Modeled communication volume in vector entries (fold + expand rows,
  /// sent and received, times the mode's factor rank).
  std::uint64_t comm_entries = 0;
  /// Measured TRSVD communication rounds (fold/expand exchanges plus
  /// column-space/Gram allreduces), summed over iterations. Unlike the
  /// modeled fields above, this is observed during the run: the blocked
  /// backends batch b vectors per round, so it drops by ~b versus scalar
  /// Lanczos on the same partition.
  std::uint64_t trsvd_rounds = 0;
};

class DistStats {
 public:
  DistStats() = default;
  DistStats(std::size_t num_modes, std::size_t num_ranks)
      : modes_(num_modes), ranks_(num_ranks), cells_(num_modes * num_ranks) {}

  [[nodiscard]] std::size_t modes() const { return modes_; }
  [[nodiscard]] std::size_t ranks() const { return ranks_; }

  [[nodiscard]] DistLoad& at(std::size_t mode, std::size_t rank) {
    return cells_[mode * ranks_ + rank];
  }
  [[nodiscard]] const DistLoad& at(std::size_t mode, std::size_t rank) const {
    return cells_[mode * ranks_ + rank];
  }

  /// Max/avg over ranks of the mode's loads (imbalance = max/avg).
  [[nodiscard]] LoadSummary ttmc_summary(std::size_t mode) const;
  [[nodiscard]] LoadSummary trsvd_summary(std::size_t mode) const;
  [[nodiscard]] LoadSummary comm_summary(std::size_t mode) const;
  [[nodiscard]] LoadSummary trsvd_rounds_summary(std::size_t mode) const;

  /// Total modeled communication volume over all modes and ranks.
  [[nodiscard]] std::uint64_t total_comm_entries() const;

  /// Total measured TRSVD communication rounds over all modes and ranks.
  [[nodiscard]] std::uint64_t total_trsvd_rounds() const;

 private:
  std::size_t modes_ = 0;
  std::size_t ranks_ = 0;
  std::vector<DistLoad> cells_;
};

struct DistHooiResult {
  core::TuckerDecomposition decomposition;
  /// Fit after each completed sweep (identical on every rank).
  std::vector<double> fits;
  DistStats stats;
  /// TRSVD backend resolved per mode (kAuto applies the cost model to the
  /// global compact problem; identical on every rank).
  std::vector<core::TrsvdMethod> trsvd_methods;
  /// Paper configuration label, e.g. "fine-hp".
  std::string label;
  int iterations = 0;
  bool converged = false;
  /// Wall time of the slowest rank's iteration loop divided by iterations.
  double seconds_per_iteration = 0.0;
  /// Slowest-rank per-step times (paper Table IV breakdown).
  core::HooiTimers timers;
};

/// Run distributed HOOI; partitions the tensor internally with the options'
/// grain/method/seed.
DistHooiResult dist_hooi(const CooTensor& x, const DistHooiOptions& options);

/// Run distributed HOOI over prebuilt plans (the paper partitions offline;
/// bench_table2 reuses plans across timing runs).
DistHooiResult dist_hooi(const CooTensor& x, const DistHooiOptions& options,
                         const GlobalPlan& gplan,
                         const std::vector<RankPlan>& rplans);

/// Validate options against the tensor; throws ht::InvalidArgument.
void validate_dist_options(const CooTensor& x, const DistHooiOptions& options);

}  // namespace ht::dist
