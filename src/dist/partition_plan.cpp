#include "dist/partition_plan.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

#include "core/hosvd.hpp"
#include "hypergraph/models.hpp"
#include "hypergraph/partitioner.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace ht::dist {

namespace {

using hypergraph::Partition;
using hypergraph::PartitionerOptions;
using hypergraph::weight_t;

const char* method_suffix(Method method) {
  switch (method) {
    case Method::kHypergraph:
      return "hp";
    case Method::kRandom:
      return "rd";
    case Method::kBlock:
      return "bl";
  }
  return "??";
}

// Greedy lightest-part placement in shuffled order (the paper's "-rd"
// baselines): random yet weight-balanced. Mirrors partition_random but works
// on a bare weight span so the fine grain does not have to build a model.
std::vector<int> weighted_random_assignment(std::span<const weight_t> weights,
                                            int num_parts,
                                            std::uint64_t seed) {
  std::vector<int> owner(weights.size(), 0);
  if (num_parts == 1) return owner;
  Rng rng(seed);
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::vector<weight_t> load(num_parts, 0);
  for (std::size_t v : order) {
    const int part = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    owner[v] = part;
    load[part] += weights[v];
  }
  return owner;
}

// Fine grain: one owner per nonzero ordinal.
std::vector<int> partition_nonzeros(const CooTensor& x,
                                    const PlanOptions& options) {
  const nnz_t nnz = x.nnz();
  const int p = options.num_ranks;
  std::vector<int> owner(nnz, 0);
  if (p == 1) return owner;

  switch (options.method) {
    case Method::kHypergraph: {
      const auto model = hypergraph::build_fine_grain_model(x);
      PartitionerOptions po;
      po.num_parts = p;
      po.epsilon = options.epsilon;
      po.seed = options.seed;
      const Partition part = hypergraph::partition_multilevel(model.hg, po);
      for (nnz_t e = 0; e < nnz; ++e) {
        owner[e] = part.part_of[static_cast<std::size_t>(e)];
      }
      break;
    }
    case Method::kRandom: {
      const std::vector<weight_t> unit(nnz, 1);
      owner = weighted_random_assignment(unit, p, options.seed);
      break;
    }
    case Method::kBlock: {
      for (nnz_t e = 0; e < nnz; ++e) {
        owner[e] = static_cast<int>(
            (static_cast<std::uint64_t>(e) * static_cast<std::uint64_t>(p)) /
            nnz);
      }
      break;
    }
  }
  return owner;
}

// Coarse grain: one owner per mode-`mode` slice. Only non-empty rows carry
// weight; empty rows are assigned round-robin afterwards by the caller.
std::vector<int> partition_slices(const CooTensor& x, std::size_t mode,
                                  std::span<const nnz_t> hist,
                                  const PlanOptions& options) {
  const index_t dim = x.dim(mode);
  const int p = options.num_ranks;
  std::vector<int> owner(dim, -1);
  if (p == 1) {
    std::fill(owner.begin(), owner.end(), 0);
    return owner;
  }

  std::vector<index_t> rows;
  std::vector<weight_t> weights;
  for (index_t g = 0; g < dim; ++g) {
    if (hist[g] == 0) continue;
    rows.push_back(g);
    weights.push_back(static_cast<weight_t>(hist[g]));
  }

  switch (options.method) {
    case Method::kHypergraph: {
      const auto model = hypergraph::build_coarse_grain_model(x, mode);
      PartitionerOptions po;
      po.num_parts = p;
      po.epsilon = options.epsilon;
      po.seed = options.seed + 0x9e3779b9ULL * (mode + 1);
      const Partition part = hypergraph::partition_multilevel(model.hg, po);
      HT_CHECK(model.rows.size() == part.part_of.size());
      for (std::size_t v = 0; v < model.rows.size(); ++v) {
        owner[model.rows[v]] = part.part_of[v];
      }
      break;
    }
    case Method::kRandom: {
      const auto assigned = weighted_random_assignment(
          weights, p, options.seed + 0x9e3779b9ULL * (mode + 1));
      for (std::size_t v = 0; v < rows.size(); ++v) owner[rows[v]] = assigned[v];
      break;
    }
    case Method::kBlock: {
      const Partition part = hypergraph::partition_block(weights, p);
      for (std::size_t v = 0; v < rows.size(); ++v) {
        owner[rows[v]] = part.part_of[v];
      }
      break;
    }
  }
  // Deterministic placeholder owners for empty rows (no data, no comm).
  for (index_t g = 0; g < dim; ++g) {
    if (owner[g] < 0) owner[g] = static_cast<int>(g % p);
  }
  return owner;
}

// Accumulating builder for the four per-peer position lists of one mode.
struct CommListBuilder {
  std::map<int, std::vector<std::uint32_t>> factor_send, factor_recv;
  std::map<int, std::vector<std::uint32_t>> fold_send, fold_recv;
};

std::vector<CommList> flatten(std::map<int, std::vector<std::uint32_t>>& m) {
  std::vector<CommList> out;
  out.reserve(m.size());
  for (auto& [peer, positions] : m) {
    out.push_back(CommList{peer, std::move(positions)});
  }
  return out;
}

}  // namespace

std::uint32_t local_row_position(const std::vector<index_t>& local_rows,
                                 index_t g) {
  const auto it = std::lower_bound(local_rows.begin(), local_rows.end(), g);
  HT_CHECK_MSG(it != local_rows.end() && *it == g, "row not local");
  return static_cast<std::uint32_t>(it - local_rows.begin());
}

std::string config_label(Grain grain, Method method) {
  return std::string(grain == Grain::kFine ? "fine" : "coarse") + "-" +
         method_suffix(method);
}

GlobalPlan build_global_plan(const CooTensor& x, const PlanOptions& options) {
  if (options.num_ranks < 1) {
    throw InvalidArgument("num_ranks must be >= 1");
  }
  if (x.nnz() == 0) {
    throw InvalidArgument("cannot partition an empty tensor");
  }

  const std::size_t order = x.order();
  const int p = options.num_ranks;

  GlobalPlan plan;
  plan.grain = options.grain;
  plan.method = options.method;
  plan.num_ranks = p;
  plan.row_owner.resize(order);

  if (options.grain == Grain::kFine) {
    plan.nnz_owner = partition_nonzeros(x, options);
    // Anchor each non-empty row to the rank holding most of its nonzeros
    // (ties to the lowest rank): the owner then always has local data for
    // the row, as paper Algorithm 4 assumes.
    for (std::size_t n = 0; n < order; ++n) {
      const index_t dim = x.dim(n);
      const auto idx = x.indices(n);
      std::vector<std::uint64_t> count(static_cast<std::size_t>(dim) * p, 0);
      for (nnz_t e = 0; e < x.nnz(); ++e) {
        ++count[static_cast<std::size_t>(idx[e]) * p + plan.nnz_owner[e]];
      }
      auto& owner = plan.row_owner[n];
      owner.assign(dim, 0);
      for (index_t g = 0; g < dim; ++g) {
        const std::uint64_t* row = count.data() + static_cast<std::size_t>(g) * p;
        std::uint64_t best = 0;
        int best_rank = static_cast<int>(g % p);  // empty rows: round-robin
        for (int r = 0; r < p; ++r) {
          if (row[r] > best) {
            best = row[r];
            best_rank = r;
          }
        }
        owner[g] = best_rank;
      }
    }
  } else {
    for (std::size_t n = 0; n < order; ++n) {
      const auto hist = x.slice_nnz(n);
      plan.row_owner[n] = partition_slices(x, n, hist, options);
    }
  }
  return plan;
}

std::vector<RankPlan> build_rank_plans(const CooTensor& x,
                                       const GlobalPlan& plan,
                                       const std::vector<index_t>& ranks,
                                       std::uint64_t seed) {
  const std::size_t order = x.order();
  const int p = plan.num_ranks;
  HT_CHECK_MSG(p >= 1, "plan has no ranks");
  HT_CHECK_MSG(plan.row_owner.size() == order, "plan/tensor order mismatch");
  for (std::size_t n = 0; n < order; ++n) {
    HT_CHECK_MSG(plan.row_owner[n].size() == x.dim(n),
                 "plan row_owner size mismatch in mode " << n);
  }
  if (plan.grain == Grain::kFine) {
    HT_CHECK_MSG(plan.nnz_owner.size() == x.nnz(),
                 "plan nnz_owner does not match tensor");
  }
  if (ranks.size() != order) {
    throw InvalidArgument("need one decomposition rank per tensor mode");
  }

  // Global initial factors: a function of (shape, ranks, seed) only, shared
  // with core::hooi so distributed runs start from the same factors.
  const std::vector<la::Matrix> init =
      core::random_orthonormal_factors(x.shape(), ranks, seed);

  // Nonzero ordinals per rank, in ascending ordinal order (this preserves
  // the relative nonzero order inside every slice, which keeps local TTMc
  // accumulation order identical to the shared-memory kernel).
  std::vector<std::vector<nnz_t>> ordinals(p);
  if (plan.grain == Grain::kFine) {
    for (nnz_t e = 0; e < x.nnz(); ++e) {
      ordinals[plan.nnz_owner[e]].push_back(e);
    }
  } else {
    std::vector<int> holders;  // owners of this nonzero, deduplicated
    for (nnz_t e = 0; e < x.nnz(); ++e) {
      holders.clear();
      for (std::size_t n = 0; n < order; ++n) {
        const int r = plan.row_owner[n][x.index(n, e)];
        if (std::find(holders.begin(), holders.end(), r) == holders.end()) {
          holders.push_back(r);
          ordinals[r].push_back(e);
        }
      }
    }
  }

  std::vector<RankPlan> rplans(p);
  const auto nil = std::numeric_limits<index_t>::max();
  std::vector<index_t> g2l;  // reused global -> local map

  for (int r = 0; r < p; ++r) {
    RankPlan& rp = rplans[r];
    rp.rank = r;
    rp.modes.resize(order);

    // Local rows per mode: sorted unique global rows among local nonzeros.
    for (std::size_t n = 0; n < order; ++n) {
      auto& lr = rp.modes[n].local_rows;
      lr.reserve(ordinals[r].size());
      for (nnz_t e : ordinals[r]) lr.push_back(x.index(n, e));
      std::sort(lr.begin(), lr.end());
      lr.erase(std::unique(lr.begin(), lr.end()), lr.end());
    }

    // Reindexed local tensor. Modes with no local rows get a padding
    // dimension of 1 (CooTensor requires positive mode sizes); the padding
    // row never appears in any nonzero.
    tensor::Shape local_shape(order);
    for (std::size_t n = 0; n < order; ++n) {
      local_shape[n] = std::max<index_t>(
          1, static_cast<index_t>(rp.modes[n].local_rows.size()));
    }
    rp.local = CooTensor(local_shape);
    rp.local.reserve(ordinals[r].size());
    {
      std::vector<std::vector<index_t>> maps(order);
      for (std::size_t n = 0; n < order; ++n) {
        g2l.assign(x.dim(n), nil);
        const auto& lr = rp.modes[n].local_rows;
        for (std::size_t i = 0; i < lr.size(); ++i) {
          g2l[lr[i]] = static_cast<index_t>(i);
        }
        maps[n] = g2l;
      }
      std::vector<index_t> idx(order);
      for (nnz_t e : ordinals[r]) {
        for (std::size_t n = 0; n < order; ++n) {
          idx[n] = maps[n][x.index(n, e)];
        }
        rp.local.push_back(idx, x.value(e));
      }
    }

    // Initial factor slices, padded like the local shape.
    rp.initial_factors.resize(order);
    for (std::size_t n = 0; n < order; ++n) {
      const auto& lr = rp.modes[n].local_rows;
      la::Matrix f(local_shape[n], init[n].cols());
      for (std::size_t i = 0; i < lr.size(); ++i) {
        const auto src = init[n].row(lr[i]);
        std::copy(src.begin(), src.end(), f.row(i).begin());
      }
      rp.initial_factors[n] = std::move(f);
    }
  }

  // Owned rows and communication lists, mode by mode.
  for (std::size_t n = 0; n < order; ++n) {
    const index_t dim = x.dim(n);
    const auto hist = x.slice_nnz(n);

    // Ranks holding each row, in ascending rank order by construction.
    std::vector<std::vector<int>> holders(dim);
    for (int r = 0; r < p; ++r) {
      for (index_t g : rplans[r].modes[n].local_rows) holders[g].push_back(r);
    }

    std::vector<CommListBuilder> builders(p);
    for (index_t g = 0; g < dim; ++g) {
      if (hist[g] == 0) continue;
      const int o = plan.row_owner[n][g];
      rplans[o].modes[n].owned_rows.push_back(g);
      HT_CHECK_MSG(!holders[g].empty(), "non-empty row with no holder");
      HT_CHECK_MSG(std::binary_search(holders[g].begin(), holders[g].end(), o),
                   "owner of row " << g << " holds no local data (mode " << n
                                   << ")");
      if (holders[g].size() < 2) continue;
      const std::uint32_t pos_o = local_row_position(rplans[o].modes[n].local_rows, g);
      for (int r : holders[g]) {
        if (r == o) continue;
        const std::uint32_t pos_r = local_row_position(rplans[r].modes[n].local_rows, g);
        builders[o].factor_send[r].push_back(pos_o);
        builders[r].factor_recv[o].push_back(pos_r);
        if (plan.grain == Grain::kFine) {
          builders[r].fold_send[o].push_back(pos_r);
          builders[o].fold_recv[r].push_back(pos_o);
        }
      }
    }
    for (int r = 0; r < p; ++r) {
      ModePlan& mp = rplans[r].modes[n];
      mp.factor_send = flatten(builders[r].factor_send);
      mp.factor_recv = flatten(builders[r].factor_recv);
      mp.fold_send = flatten(builders[r].fold_send);
      mp.fold_recv = flatten(builders[r].fold_recv);
    }
  }

  return rplans;
}

}  // namespace ht::dist
