#include "dist/dist_hooi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <utility>

#include "core/dim_tree.hpp"
#include "core/symbolic.hpp"
#include "core/trsvd.hpp"
#include "core/ttmc.hpp"
#include "core/tucker_model.hpp"
#include "la/blas.hpp"
#include "storage/bundle.hpp"
#include "parallel/thread_info.hpp"
#include "smp/communicator.hpp"
#include "tensor/dense_tensor.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace ht::dist {

namespace {

// Fold/expand row exchange of a b-wide block of row-space vectors stored
// row-major at `data` (row r of the block starts at data + r * width): for
// every send list, ship the b-entry rows at the listed local positions to
// the peer in one message; for every receive list (ascending peer order, so
// accumulation is deterministic), combine the incoming rows at the listed
// positions. One call is one message round regardless of width — this is
// the batching that makes the blocked TRSVD backends pay one latency per
// block apply instead of one per Lanczos vector (width 1 reproduces the
// scalar exchange).
void exchange_row_blocks(smp::Communicator& comm, double* data,
                         std::size_t width, const std::vector<CommList>& send,
                         const std::vector<CommList>& recv, int tag,
                         bool accumulate) {
  std::vector<double> buf;
  for (const CommList& s : send) {
    buf.resize(s.positions.size() * width);
    for (std::size_t i = 0; i < s.positions.size(); ++i) {
      const double* row = data + static_cast<std::size_t>(s.positions[i]) * width;
      std::copy(row, row + width, buf.begin() + static_cast<long>(i * width));
    }
    comm.send<double>(s.peer, tag, buf);
  }
  for (const CommList& rc : recv) {
    const std::vector<double> vals = comm.recv<double>(rc.peer, tag);
    HT_CHECK_MSG(vals.size() == rc.positions.size() * width,
                 "fold/expand payload size mismatch");
    if (accumulate) {
      for (std::size_t i = 0; i < rc.positions.size(); ++i) {
        double* row = data + static_cast<std::size_t>(rc.positions[i]) * width;
        for (std::size_t j = 0; j < width; ++j) row[j] += vals[i * width + j];
      }
    } else {
      for (std::size_t i = 0; i < rc.positions.size(); ++i) {
        double* row = data + static_cast<std::size_t>(rc.positions[i]) * width;
        for (std::size_t j = 0; j < width; ++j) row[j] = vals[i * width + j];
      }
    }
  }
}

// Row-distributed view of Y(n) for the Lanczos TRSVD (paper Sec. III-B):
// the local matrix holds this rank's rows of Y(n) — partial sums over the
// rank's nonzeros under the fine grain, complete owned rows under the
// coarse grain. Y(n) is never assembled:
//   apply():           u = Y_local v, then (fine grain) fold partial row
//                      entries to their owners and expand the folded values
//                      back, leaving u globally consistent at every local
//                      position;
//   apply_transpose(): v = Y_local^T u summed over ranks — partial local
//                      rows add up to the true rows, so a plain allreduce
//                      of the small column-space vector is exact;
//   row_dot():         each global row counted once (owned positions only),
//                      then reduced.
// With one rank all lists are empty and every collective is the identity,
// so the operator degenerates to la::DenseOperator over the compact Y(n).
//
// The block entry points batch b vectors per communication round: one
// fold/expand exchange carries b-wide row blocks and one allreduce carries
// the whole c x b column-space block, so the blocked TRSVD backends pay
// ~1/b of the scalar solver's message rounds (comm_rounds() reports the
// measured count, surfaced through DistStats).
class DistYOperator final : public la::TrsvdOperator {
 public:
  DistYOperator(const la::Matrix& y, const ModePlan& mp,
                std::span<const std::uint32_t> owned_pos,
                std::size_t global_rows, smp::Communicator& comm, int tag_base)
      : y_(y),
        mp_(mp),
        owned_pos_(owned_pos),
        global_rows_(global_rows),
        comm_(comm),
        tag_base_(tag_base) {
    owned_is_all_rows_ = owned_pos_.size() == y_.rows();
    for (std::size_t i = 0; owned_is_all_rows_ && i < owned_pos_.size(); ++i) {
      owned_is_all_rows_ = owned_pos_[i] == i;
    }
  }

  [[nodiscard]] std::size_t row_local_size() const override {
    return y_.rows();
  }
  [[nodiscard]] std::size_t row_global_size() const override {
    return global_rows_;
  }
  [[nodiscard]] std::size_t col_size() const override { return y_.cols(); }

  void apply(std::span<const double> v, std::span<double> u) override {
    la::gemv(y_, v, u);
    fold_expand(u.data(), 1);
  }

  void apply_transpose(std::span<const double> u,
                       std::span<double> v) override {
    la::gemv_t(y_, u, v);
    comm_.allreduce_sum(v);
    ++comm_rounds_;
  }

  [[nodiscard]] double row_dot(std::span<const double> a,
                               std::span<const double> b) const override {
    double s = 0.0;
    for (std::uint32_t pos : owned_pos_) s += a[pos] * b[pos];
    ++comm_rounds_;
    return comm_.allreduce_sum_scalar(s);
  }

  void apply_block(const la::Matrix& v, la::Matrix& u) override {
    la::gemm_into(y_, v, u);
    fold_expand(u.data(), u.cols());
  }

  void apply_transpose_block(const la::Matrix& u, la::Matrix& v) override {
    la::gemm_tn_into(y_, u, v);
    comm_.allreduce_sum(v.flat());
    ++comm_rounds_;
  }

  void row_gram(const la::Matrix& a, const la::Matrix& b,
                la::Matrix& g) override {
    if (owned_is_all_rows_) {
      // Same code path as the shared-memory default, so a single-rank run
      // bit-matches core::hooi.
      la::gemm_tn_into(a, b, g);
    } else {
      // Fine grain, p > 1: count every global row once (owned positions).
      gather_rows(a, ga_);
      gather_rows(b, gb_);
      la::gemm_tn_into(ga_, gb_, g);
    }
    comm_.allreduce_sum(g.flat());
    ++comm_rounds_;
  }

  /// Measured communication rounds (exchanges + allreduces) so far.
  [[nodiscard]] std::uint64_t comm_rounds() const { return comm_rounds_; }

 private:
  void fold_expand(double* data, std::size_t width) {
    if (!mp_.fold_send.empty() || !mp_.fold_recv.empty()) {
      exchange_row_blocks(comm_, data, width, mp_.fold_send, mp_.fold_recv,
                          tag_base_, /*accumulate=*/true);
      ++comm_rounds_;
    }
    if (!mp_.factor_send.empty() || !mp_.factor_recv.empty()) {
      exchange_row_blocks(comm_, data, width, mp_.factor_send,
                          mp_.factor_recv, tag_base_ + 1,
                          /*accumulate=*/false);
      ++comm_rounds_;
    }
  }

  void gather_rows(const la::Matrix& src, la::Matrix& dst) const {
    dst.resize(owned_pos_.size(), src.cols());
    for (std::size_t i = 0; i < owned_pos_.size(); ++i) {
      const auto row = src.row(owned_pos_[i]);
      std::copy(row.begin(), row.end(), dst.row(i).begin());
    }
  }

  const la::Matrix& y_;
  const ModePlan& mp_;
  std::span<const std::uint32_t> owned_pos_;
  std::size_t global_rows_;
  smp::Communicator& comm_;
  int tag_base_;
  bool owned_is_all_rows_ = false;
  la::Matrix ga_, gb_;  // gathered owned rows, reused across Gram calls
  mutable std::uint64_t comm_rounds_ = 0;
};

// Replicated per-mode geometry shared by all ranks.
struct ModeGlobal {
  /// J_n: sorted global rows with nonzeros (the shared-memory compact set).
  std::vector<index_t> rows;
  /// Assembly permutation: sorted position k corresponds to entry
  /// gather_perm[k] of the rank-order concatenation of owned_rows.
  std::vector<std::uint32_t> gather_perm;
  std::size_t width = 0;     // prod of ranks over the other modes
  std::size_t solvable = 0;  // min(rank, |J_n|, width)
};

std::uint64_t comm_list_rows(const std::vector<CommList>& lists) {
  std::uint64_t total = 0;
  for (const CommList& l : lists) total += l.positions.size();
  return total;
}

LoadSummary summarize_cells(const DistStats& stats, std::size_t mode,
                            std::uint64_t DistLoad::*field) {
  std::vector<std::uint64_t> values(stats.ranks());
  for (std::size_t r = 0; r < stats.ranks(); ++r) {
    values[r] = stats.at(mode, r).*field;
  }
  return summarize_load(values);
}

// ---- rank-local restart checkpoints -----------------------------------------
//
// Each rank's checkpoint is a small model bundle holding only its local
// factor slices plus provenance meta. Ranks write disjoint files, so there
// is no cross-rank coordination; the atomic temp+rename inside the writer
// means a run killed mid-checkpoint leaves the previous checkpoint intact.

std::string checkpoint_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".htb";
}

bool checkpoint_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

void save_checkpoint(const std::string& path,
                     const std::vector<la::Matrix>& factors, int rank,
                     int iterations) {
  const std::string tmp = path + ".tmp";
  {
    storage::BundleWriter w(tmp);
    std::string meta;
    meta += "kind=dist_checkpoint\n";
    meta += "rank=" + std::to_string(rank) + "\n";
    meta += "iterations=" + std::to_string(iterations) + "\n";
    for (const auto& [key, value] : core::TuckerModel::build_provenance()) {
      meta += "prov:" + key + "=" + value + "\n";
    }
    w.add_section(storage::SectionKind::kMeta, 0, 0, 1, meta.data(),
                  meta.size(), meta.size(), 1);
    for (std::size_t n = 0; n < factors.size(); ++n) {
      const la::Matrix& f = factors[n];
      w.add_section(storage::SectionKind::kFactor,
                    static_cast<std::uint32_t>(n), 0, sizeof(double),
                    f.data(), f.size() * sizeof(double), f.rows(), f.cols());
    }
    w.finish();
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot move checkpoint into place: " + path);
  }
}

// Replace the plan's random initial slices with the checkpointed ones.
// LoadMode::kCopy on purpose: the loop keeps mutating the factors.
void load_checkpoint(const std::string& path,
                     std::vector<la::Matrix>& factors) {
  storage::BundleReader r(path, storage::LoadMode::kCopy);
  for (std::size_t n = 0; n < factors.size(); ++n) {
    const storage::SectionEntry& e =
        r.require(storage::SectionKind::kFactor, static_cast<std::uint32_t>(n));
    HT_CHECK_MSG(e.rows == factors[n].rows() && e.cols == factors[n].cols(),
                 "checkpoint factor " << n << " shape mismatch (got "
                                      << e.rows << "x" << e.cols
                                      << ", plan wants " << factors[n].rows()
                                      << "x" << factors[n].cols() << ")");
    storage::Span<double> s = r.load<double>(e);
    factors[n] = la::Matrix(e.rows, e.cols, std::move(s.vec()));
  }
}

}  // namespace

LoadSummary DistStats::ttmc_summary(std::size_t mode) const {
  return summarize_cells(*this, mode, &DistLoad::w_ttmc);
}

LoadSummary DistStats::trsvd_summary(std::size_t mode) const {
  return summarize_cells(*this, mode, &DistLoad::w_trsvd);
}

LoadSummary DistStats::comm_summary(std::size_t mode) const {
  return summarize_cells(*this, mode, &DistLoad::comm_entries);
}

LoadSummary DistStats::trsvd_rounds_summary(std::size_t mode) const {
  return summarize_cells(*this, mode, &DistLoad::trsvd_rounds);
}

std::uint64_t DistStats::total_comm_entries() const {
  std::uint64_t total = 0;
  for (const DistLoad& c : cells_) total += c.comm_entries;
  return total;
}

std::uint64_t DistStats::total_trsvd_rounds() const {
  std::uint64_t total = 0;
  for (const DistLoad& c : cells_) total += c.trsvd_rounds;
  return total;
}

void validate_dist_options(const CooTensor& x, const DistHooiOptions& options) {
  if (x.nnz() == 0) {
    throw InvalidArgument("distributed HOOI needs a nonempty tensor");
  }
  if (options.ranks.size() != x.order()) {
    throw InvalidArgument("need one rank per tensor mode");
  }
  for (std::size_t n = 0; n < x.order(); ++n) {
    if (options.ranks[n] < 1 || options.ranks[n] > x.dim(n)) {
      throw InvalidArgument("rank out of range for mode " + std::to_string(n));
    }
  }
  if (options.max_iterations < 1) {
    throw InvalidArgument("max_iterations must be >= 1");
  }
  if (options.num_ranks < 1) {
    throw InvalidArgument("num_ranks must be >= 1");
  }
  if (options.trsvd_method == core::TrsvdMethod::kGram) {
    throw InvalidArgument(
        "Gram TRSVD would require assembling Y(n); pick a matrix-free "
        "backend for distributed HOOI");
  }
}

DistHooiResult dist_hooi(const CooTensor& x, const DistHooiOptions& options) {
  validate_dist_options(x, options);
  PlanOptions popt;
  popt.grain = options.grain;
  popt.method = options.method;
  popt.num_ranks = options.num_ranks;
  popt.seed = options.seed;
  popt.epsilon = options.epsilon;
  const GlobalPlan gplan = build_global_plan(x, popt);
  const std::vector<RankPlan> rplans =
      build_rank_plans(x, gplan, options.ranks, options.seed);
  return dist_hooi(x, options, gplan, rplans);
}

DistHooiResult dist_hooi(const CooTensor& x, const DistHooiOptions& options,
                         const GlobalPlan& gplan,
                         const std::vector<RankPlan>& rplans) {
  validate_dist_options(x, options);
  const int p = options.num_ranks;
  HT_CHECK_MSG(gplan.num_ranks == p, "plan was built for "
                                         << gplan.num_ranks
                                         << " ranks, options request " << p);
  HT_CHECK_MSG(rplans.size() == static_cast<std::size_t>(p),
               "rank plan count mismatch");
  const std::size_t order = x.order();

  // Replicated geometry.
  std::vector<ModeGlobal> geo(order);
  for (std::size_t n = 0; n < order; ++n) {
    ModeGlobal& g = geo[n];
    g.width = 1;
    for (std::size_t t = 0; t < order; ++t) {
      if (t != n) g.width *= options.ranks[t];
    }
    std::vector<std::pair<index_t, std::uint32_t>> concat;
    for (int r = 0; r < p; ++r) {
      for (index_t row : rplans[r].modes[n].owned_rows) {
        concat.emplace_back(row, static_cast<std::uint32_t>(concat.size()));
      }
    }
    std::sort(concat.begin(), concat.end());
    g.rows.reserve(concat.size());
    g.gather_perm.reserve(concat.size());
    for (const auto& [row, pos] : concat) {
      g.rows.push_back(row);
      g.gather_perm.push_back(pos);
    }
    g.solvable = std::min({static_cast<std::size_t>(options.ranks[n]),
                           g.rows.size(), g.width});
  }

  DistHooiResult result;
  result.label = config_label(gplan.grain, gplan.method);

  // Resolve the TRSVD backend per mode against the *global* compact problem
  // (|J_n| x prod-of-other-ranks): the choice must be identical on every
  // rank since the solvers make collective calls in lockstep.
  result.trsvd_methods.resize(order);
  for (std::size_t n = 0; n < order; ++n) {
    result.trsvd_methods[n] = core::resolve_trsvd_method(
        options.trsvd_method, geo[n].rows.size(), geo[n].width,
        geo[n].solvable, options.trsvd);
  }

  // Table III loads: a property of the partition, computed from the plans.
  result.stats = DistStats(order, static_cast<std::size_t>(p));
  for (std::size_t n = 0; n < order; ++n) {
    const auto hist = x.slice_nnz(n);
    for (int r = 0; r < p; ++r) {
      const ModePlan& mp = rplans[r].modes[n];
      DistLoad& load = result.stats.at(n, static_cast<std::size_t>(r));
      if (gplan.grain == Grain::kFine) {
        load.w_ttmc = rplans[r].local.nnz();
        load.w_trsvd = mp.local_rows.size() * geo[n].width;
      } else {
        for (index_t g : mp.owned_rows) load.w_ttmc += hist[g];
        load.w_trsvd = mp.owned_rows.size() * geo[n].width;
      }
      const std::uint64_t rows_moved =
          comm_list_rows(mp.fold_send) + comm_list_rows(mp.fold_recv) +
          comm_list_rows(mp.factor_send) + comm_list_rows(mp.factor_recv);
      load.comm_entries = rows_moved * options.ranks[n];
    }
  }

  const double x_norm2 = x.norm2_squared();
  const core::TtmcOptions ttmc_options{
      options.ttmc_schedule, options.ttmc_kernel,
      options.ttmc_fiber_threshold, options.ttmc_strategy,
      options.ttmc_structure_budget};
  const tensor::Shape core_shape(options.ranks.begin(), options.ranks.end());

  smp::run_spmd(p, [&](smp::Communicator& comm) {
    const int rank = comm.rank();
    const RankPlan& rp = rplans[static_cast<std::size_t>(rank)];
    parallel::ThreadScope threads(options.threads_per_rank);

    WallTimer t_symbolic;
    const bool with_fibers =
        options.ttmc_kernel == core::TtmcKernel::kAuto ||
        options.ttmc_kernel == core::TtmcKernel::kFiberFactored;
    const core::SymbolicTtmc symbolic =
        core::SymbolicTtmc::build(rp.local, with_fibers);
    // Each rank plans its dimension tree over its own local tensor: the
    // merge structure of local nonzeros has nothing to do with the other
    // ranks', and the cost model resolves kAuto per rank.
    std::optional<core::DimTreePlan> tree;
    if (options.ttmc_strategy != core::TtmcStrategy::kDirect &&
        rp.local.order() >= 2) {
      tree.emplace(core::DimTreePlan::build(rp.local));
    }
    // CSF trees over the rank-local tensor, when the kernel options want
    // them: the coarse grain then serves its owned rows through the CSF
    // subset path, the fine grain its local partial rows. Preprocessing,
    // like the symbolic pass — reused across all iterations.
    std::optional<tensor::CsfTensor> csf;
    if (core::ttmc_wants_csf(symbolic, ttmc_options) &&
        rp.local.nnz() > 0) {
      csf.emplace(tensor::CsfTensor::build(rp.local));
    }
    // ALTO over the rank-local tensor under the same contract: one sorted
    // key/value array per rank serves every mode of its local TTMc.
    std::optional<tensor::AltoTensor> alto;
    if (core::ttmc_wants_alto(symbolic, rp.local.shape(), ttmc_options) &&
        rp.local.nnz() > 0) {
      alto.emplace(tensor::AltoTensor::build(rp.local));
    }
    core::HooiTimers timers;
    timers.symbolic = t_symbolic.seconds();

    // Positions of owned rows inside the local row set (== local compact Y
    // rows: every local row is non-empty by construction), plus the
    // operator's owned positions within its row space: all local rows under
    // the fine grain, the owned rows themselves (identity) under the coarse
    // grain, where Y holds owned rows only.
    const bool fine = gplan.grain == Grain::kFine;
    std::vector<std::vector<std::uint32_t>> owned_pos(order);
    std::vector<std::vector<std::uint32_t>> op_owned_pos(order);
    for (std::size_t n = 0; n < order; ++n) {
      HT_CHECK(symbolic.modes[n].rows.size() == rp.modes[n].local_rows.size());
      owned_pos[n].reserve(rp.modes[n].owned_rows.size());
      for (index_t g : rp.modes[n].owned_rows) {
        owned_pos[n].push_back(local_row_position(rp.modes[n].local_rows, g));
      }
      if (fine) {
        op_owned_pos[n] = owned_pos[n];
      } else {
        op_owned_pos[n].resize(rp.modes[n].owned_rows.size());
        std::iota(op_owned_pos[n].begin(), op_owned_pos[n].end(), 0u);
      }
    }

    core::TtmcScheduler scheduler(rp.local, symbolic,
                                  tree ? &*tree : nullptr, options.ranks,
                                  ttmc_options, csf ? &*csf : nullptr,
                                  alto ? &*alto : nullptr);

    std::vector<la::Matrix> factors = rp.initial_factors;  // local slices
    // Warm restart: adopt this rank's factor slices from a previous run's
    // checkpoint when one exists. Only the initialization changes — the
    // iteration loop is oblivious, so a 2-iteration checkpoint followed by
    // a 2-iteration restart walks the same fit trajectory as 4 straight
    // iterations.
    if (!options.checkpoint_dir.empty()) {
      const std::string ckpt = checkpoint_path(options.checkpoint_dir, rank);
      if (checkpoint_exists(ckpt)) load_checkpoint(ckpt, factors);
    }
    std::vector<la::Matrix> full_factors(order);           // assembled U_n
    la::Matrix y;  // local part of compact Y(n), reused across modes
    tensor::DenseTensor core_tensor;
    std::vector<double> fits;
    int iterations = 0;
    bool converged = false;
    double previous_fit = -1.0;

    WallTimer loop_timer;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
      for (std::size_t n = 0; n < order; ++n) {
        const ModePlan& mp = rp.modes[n];
        const ModeGlobal& g = geo[n];
        const auto rank_n = static_cast<std::size_t>(options.ranks[n]);

        WallTimer t_ttmc;
        if (fine) {
          // Partial rows over every local row; folded inside the TRSVD.
          scheduler.compute(factors, n, y);
        } else {
          // Owners hold whole slices: owned rows are complete — and under
          // the tree strategy served straight from this rank's partial.
          scheduler.compute_subset(factors, n, owned_pos[n], y);
        }
        timers.ttmc += t_ttmc.seconds();

        WallTimer t_trsvd;
        // Row space of the operator: all local rows (fine, partial) or the
        // owned rows only (coarse, complete — no fold/expand lists needed).
        static const ModePlan kNoComm;
        const ModePlan& op_plan = fine ? mp : kNoComm;
        DistYOperator op(y, op_plan, op_owned_pos[n], g.rows.size(), comm,
                         static_cast<int>(2 * n));
        la::TrsvdResult solved = core::run_trsvd_backend(
            op, result.trsvd_methods[n], g.solvable, options.trsvd);
        // Each rank owns its stats cell; writes from SPMD threads touch
        // disjoint DistLoad objects.
        result.stats.at(n, static_cast<std::size_t>(rank)).trsvd_rounds +=
            op.comm_rounds();

        // Gather the owners' rows of U and assemble the replicated compact
        // solution in global row order (identical on every rank: collectives
        // concatenate in rank order and the permutation is precomputed).
        std::vector<double> mine(mp.owned_rows.size() * g.solvable);
        for (std::size_t i = 0; i < mp.owned_rows.size(); ++i) {
          const std::size_t src = fine ? owned_pos[n][i] : i;
          for (std::size_t j = 0; j < g.solvable; ++j) {
            mine[i * g.solvable + j] = solved.u(src, j);
          }
        }
        const std::vector<double> gathered = comm.allgatherv(mine);
        HT_CHECK(gathered.size() == g.rows.size() * g.solvable);
        la::TrsvdResult global = std::move(solved);
        global.u.resize_zero(g.rows.size(), g.solvable);
        for (std::size_t k = 0; k < g.rows.size(); ++k) {
          const double* src = gathered.data() +
                              static_cast<std::size_t>(g.gather_perm[k]) *
                                  g.solvable;
          std::copy(src, src + g.solvable, global.u.row(k).begin());
        }
        const core::FactorTrsvd svd = core::scatter_trsvd_solution(
            global, g.solvable, g.rows, x.dim(n), rank_n);

        // Refresh the local factor slice (padded like the local tensor).
        la::Matrix local_f(rp.local.dim(n), rank_n);
        for (std::size_t i = 0; i < mp.local_rows.size(); ++i) {
          const auto src = svd.factor.row(mp.local_rows[i]);
          std::copy(src.begin(), src.end(), local_f.row(i).begin());
        }
        factors[n] = std::move(local_f);
        full_factors[n] = svd.factor;
        timers.trsvd += t_trsvd.seconds();

        if (n + 1 == order) {
          // Core tensor: G(N) = U_N^T Y(N) summed over ranks — partial
          // local Y rows (fine) or disjoint owned rows (coarse) both add up
          // to the global product (paper's core+comm step).
          WallTimer t_core;
          la::Matrix u_slice(y.rows(), rank_n);
          const std::vector<index_t>& rows =
              fine ? mp.local_rows : mp.owned_rows;
          for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto src = svd.factor.row(rows[i]);
            std::copy(src.begin(), src.end(), u_slice.row(i).begin());
          }
          la::Matrix g_mat = la::gemm_tn(u_slice, y);
          comm.allreduce_sum(g_mat.flat());
          core_tensor =
              tensor::DenseTensor::dematricize(g_mat, core_shape, order - 1);
          timers.core += t_core.seconds();
        }
      }

      const double core_norm = core_tensor.frobenius_norm();
      const double fit = core::fit_from_core_norm(x_norm2, core_norm * core_norm);
      fits.push_back(fit);
      iterations = iter + 1;

      if (previous_fit >= 0.0 &&
          std::abs(fit - previous_fit) < options.fit_tolerance) {
        converged = true;
        break;
      }
      previous_fit = fit;
    }
    const double loop_seconds = loop_timer.seconds();

    if (!options.checkpoint_dir.empty()) {
      save_checkpoint(checkpoint_path(options.checkpoint_dir, rank), factors,
                      rank, iterations);
    }

    // Slowest-rank step times (every rank participates in the reductions).
    core::HooiTimers reduced;
    reduced.symbolic = comm.allreduce_max(timers.symbolic);
    reduced.ttmc = comm.allreduce_max(timers.ttmc);
    reduced.trsvd = comm.allreduce_max(timers.trsvd);
    reduced.core = comm.allreduce_max(timers.core);
    const double max_loop = comm.allreduce_max(loop_seconds);

    if (rank == 0) {
      result.decomposition.core = std::move(core_tensor);
      result.decomposition.factors = std::move(full_factors);
      result.fits = std::move(fits);
      result.iterations = iterations;
      result.converged = converged;
      result.timers = reduced;
      result.seconds_per_iteration =
          iterations > 0 ? max_loop / iterations : 0.0;
    }
  });

  return result;
}

}  // namespace ht::dist
