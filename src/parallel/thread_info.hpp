// Shared-memory thread configuration.
//
// The HOOI drivers take an explicit thread count (paper Table V sweeps 1..32
// threads); these helpers scope OpenMP's team size without leaking the
// setting into unrelated code.
#pragma once

namespace ht::parallel {

/// Number of hardware threads OpenMP will use by default.
int max_threads();

/// RAII scope that pins omp_set_num_threads(n) and restores the previous
/// value on destruction. n <= 0 means "leave unchanged".
class ThreadScope {
 public:
  explicit ThreadScope(int n);
  ~ThreadScope();

  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int previous_;
  bool active_;
};

}  // namespace ht::parallel
