#include "parallel/thread_info.hpp"

#include <omp.h>

namespace ht::parallel {

int max_threads() { return omp_get_max_threads(); }

ThreadScope::ThreadScope(int n)
    : previous_(omp_get_max_threads()), active_(n > 0) {
  if (active_) omp_set_num_threads(n);
}

ThreadScope::~ThreadScope() {
  if (active_) omp_set_num_threads(previous_);
}

}  // namespace ht::parallel
