#include "parallel/thread_info.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ht::parallel {

// Builds without OpenMP (e.g. -DHT_SANITIZE=thread, where libgomp would
// trip TSan) run single-threaded: one hardware thread, ThreadScope a no-op.
#ifdef _OPENMP

int max_threads() { return omp_get_max_threads(); }

ThreadScope::ThreadScope(int n)
    : previous_(omp_get_max_threads()), active_(n > 0) {
  if (active_) omp_set_num_threads(n);
}

ThreadScope::~ThreadScope() {
  if (active_) omp_set_num_threads(previous_);
}

#else

int max_threads() { return 1; }

ThreadScope::ThreadScope(int n) : previous_(1), active_(n > 0) {}

ThreadScope::~ThreadScope() = default;

#endif

}  // namespace ht::parallel
