#include "core/reconstruct.hpp"

#include <cstring>

#include "util/error.hpp"

namespace ht::core {

namespace {

/// In-place contraction of the mode at position `pos` of a dense buffer
/// whose live shape is `dims` (row-major, last fastest) against `row`.
/// After the call the buffer holds the contracted tensor (dims without
/// pos) and `dims` is updated. Summation order is ascending rank index per
/// output element; element (p, q) is written only after every read it
/// depends on, so the contraction is safely in-place.
void contract_at(double* buf, std::vector<index_t>& dims, std::size_t pos,
                 std::span<const double> row) {
  std::size_t lead = 1, trail = 1;
  for (std::size_t j = 0; j < pos; ++j) lead *= dims[j];
  for (std::size_t j = pos + 1; j < dims.size(); ++j) trail *= dims[j];
  const std::size_t r_count = dims[pos];
  for (std::size_t p = 0; p < lead; ++p) {
    const double* in = buf + p * r_count * trail;
    double* out = buf + p * trail;
    for (std::size_t q = 0; q < trail; ++q) {
      double acc = 0.0;
      for (std::size_t r = 0; r < r_count; ++r) {
        acc += row[r] * in[r * trail + q];
      }
      out[q] = acc;
    }
  }
  dims.erase(dims.begin() + static_cast<std::ptrdiff_t>(pos));
}

/// Load the working copy of a slice and its live dims (the remaining modes
/// of `core_shape` after removing `entity`) into the workspace.
double* load_slice(std::span<const double> slice,
                   const tensor::Shape& core_shape, std::size_t entity,
                   ReconstructWorkspace& ws) {
  if (ws.slice.size() < slice.size()) ws.slice.resize(slice.size());
  std::memcpy(ws.slice.data(), slice.data(), slice.size() * sizeof(double));
  ws.dims.clear();
  for (std::size_t n = 0; n < core_shape.size(); ++n) {
    if (n != entity) ws.dims.push_back(core_shape[n]);
  }
  return ws.slice.data();
}

}  // namespace

ReconstructWorkspace& ReconstructWorkspace::tls() {
  thread_local ReconstructWorkspace ws;
  return ws;
}

std::size_t slice_size(const tensor::Shape& core_shape, std::size_t mode) {
  std::size_t s = 1;
  for (std::size_t n = 0; n < core_shape.size(); ++n) {
    if (n != mode) s *= core_shape[n];
  }
  return s;
}

void contract_unfolding(std::span<const double> unfold,
                        std::span<const double> row, std::span<double> out) {
  const std::size_t cols = out.size();
  HT_CHECK(unfold.size() == row.size() * cols);
  for (std::size_t q = 0; q < cols; ++q) out[q] = 0.0;
  for (std::size_t r = 0; r < row.size(); ++r) {
    const double w = row[r];
    const double* u = unfold.data() + r * cols;
    for (std::size_t q = 0; q < cols; ++q) out[q] += w * u[q];
  }
}

void contract_entity(std::span<const double> core,
                     const tensor::Shape& core_shape, std::size_t mode,
                     std::span<const double> row, std::span<double> out) {
  HT_CHECK(mode < core_shape.size());
  HT_CHECK(row.size() == core_shape[mode]);
  std::size_t lead = 1, trail = 1;
  for (std::size_t n = 0; n < mode; ++n) lead *= core_shape[n];
  for (std::size_t n = mode + 1; n < core_shape.size(); ++n) {
    trail *= core_shape[n];
  }
  HT_CHECK(out.size() == lead * trail);
  const std::size_t r_count = row.size();
  // Matches contract_unfolding over the mode-`mode` unfolding bit for bit:
  // every output element accumulates its rank terms in ascending-r order.
  for (std::size_t p = 0; p < lead; ++p) {
    const double* in = core.data() + p * r_count * trail;
    double* o = out.data() + p * trail;
    for (std::size_t q = 0; q < trail; ++q) o[q] = 0.0;
    for (std::size_t r = 0; r < r_count; ++r) {
      const double w = row[r];
      const double* u = in + r * trail;
      for (std::size_t q = 0; q < trail; ++q) o[q] += w * u[q];
    }
  }
}

double score_slice(std::span<const double> slice,
                   const tensor::Shape& core_shape, std::size_t entity,
                   std::span<const la::Matrix> factors,
                   std::span<const index_t> idx, ReconstructWorkspace& ws) {
  const std::size_t order = core_shape.size();
  HT_CHECK(entity < order && factors.size() == order && idx.size() == order);
  double* buf = load_slice(slice, core_shape, entity, ws);
  // Remaining modes in increasing order; dims tracks them positionally.
  std::vector<index_t>& dims = ws.dims;
  std::size_t first_mode = entity == 0 ? 1 : 0;
  if (dims.empty()) return buf[0];  // order-1 model: slice is the value
  // Trailing-first contraction down to the first remaining mode.
  for (std::size_t pos = dims.size(); pos-- > 1;) {
    // Position pos holds the (pos+1)-th remaining mode.
    std::size_t mode = 0;
    for (std::size_t n = 0, seen = 0; n < order; ++n) {
      if (n == entity) continue;
      if (seen++ == pos) { mode = n; break; }
    }
    contract_at(buf, dims, pos, factors[mode].row(idx[mode]));
  }
  const auto row = factors[first_mode].row(idx[first_mode]);
  double acc = 0.0;
  for (std::size_t r = 0; r < dims[0]; ++r) acc += row[r] * buf[r];
  return acc;
}

void slice_mode_vector(std::span<const double> slice,
                       const tensor::Shape& core_shape, std::size_t entity,
                       std::size_t target,
                       std::span<const la::Matrix> factors,
                       std::span<const index_t> idx, ReconstructWorkspace& ws,
                       std::span<double> out) {
  const std::size_t order = core_shape.size();
  HT_CHECK(entity < order && target < order && target != entity);
  HT_CHECK(factors.size() == order && idx.size() == order);
  HT_CHECK(out.size() == core_shape[target]);
  double* buf = load_slice(slice, core_shape, entity, ws);
  std::vector<index_t>& dims = ws.dims;
  // Remaining modes in increasing order (entity removed).
  std::vector<std::size_t> modes;
  modes.reserve(dims.size());
  for (std::size_t n = 0; n < order; ++n) {
    if (n != entity) modes.push_back(n);
  }
  // Contract every remaining mode except `target`, trailing-first — the
  // same order score_slice uses, so when `target` is the first remaining
  // mode the result is exactly its pre-dot vector.
  for (std::size_t j = modes.size(); j-- > 0;) {
    if (modes[j] == target) continue;
    const std::size_t mode = modes[j];
    // Current position of `mode` in the shrinking dims list.
    std::size_t pos = 0;
    for (std::size_t k = 0; k < j; ++k) {
      if (modes[k] != std::size_t(-1)) ++pos;
    }
    contract_at(buf, dims, pos, factors[mode].row(idx[mode]));
    modes[j] = std::size_t(-1);  // removed
  }
  for (std::size_t r = 0; r < out.size(); ++r) out[r] = buf[r];
}

double reconstruct_at(const tensor::DenseTensor& core,
                      std::span<const la::Matrix> factors,
                      std::span<const index_t> idx, ReconstructWorkspace& ws) {
  const tensor::Shape& shape = core.shape();
  HT_CHECK(idx.size() == shape.size() && factors.size() == shape.size());
  if (shape.empty()) return 0.0;
  const std::size_t s = slice_size(shape, 0);
  if (ws.entity.size() < s) ws.entity.resize(s);
  std::span<double> slice{ws.entity.data(), s};
  // The mode-0 unfolding of the core is its flat buffer.
  contract_unfolding(core.flat(), factors[0].row(idx[0]), slice);
  return score_slice(slice, shape, /*entity=*/0, factors, idx, ws);
}

}  // namespace ht::core
