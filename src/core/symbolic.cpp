#include "core/symbolic.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace ht::core {

namespace {

// Sort each row's update list so nonzeros sharing the leading other-mode
// index (and, for two keys, the second other-mode index) are contiguous,
// then record the run boundaries. The nonzero ordinal is the final sort key,
// so the ordering — and therefore the per-nonzero kernels' accumulation
// order — is deterministic.
void build_fiber_index(const CooTensor& x, std::size_t mode,
                       ModeSymbolic& sym) {
  const std::size_t order = x.order();
  if (order != 3 && order != 4) return;

  std::size_t others[3];
  std::size_t count = 0;
  for (std::size_t t = 0; t < order; ++t) {
    if (t != mode) others[count++] = t;
  }
  const auto idx_a = x.indices(others[0]);
  const bool two_level = order == 4;
  const auto idx_b = two_level ? x.indices(others[1]) : idx_a;

  // Rows are independent, and the per-row sorts dominate the fiber-index
  // cost, so parallelize across rows (the caller's mode-level loop caps out
  // at the tensor order).
  const auto nrows = static_cast<std::ptrdiff_t>(sym.num_rows());
#pragma omp parallel for schedule(dynamic, 64)
  for (std::ptrdiff_t r = 0; r < nrows; ++r) {
    auto* begin = sym.nnz_order.data() + sym.row_ptr[r];
    auto* end = sym.nnz_order.data() + sym.row_ptr[r + 1];
    if (two_level) {
      std::sort(begin, end, [&](nnz_t lhs, nnz_t rhs) {
        if (idx_a[lhs] != idx_a[rhs]) return idx_a[lhs] < idx_a[rhs];
        if (idx_b[lhs] != idx_b[rhs]) return idx_b[lhs] < idx_b[rhs];
        return lhs < rhs;
      });
    } else {
      std::sort(begin, end, [&](nnz_t lhs, nnz_t rhs) {
        if (idx_a[lhs] != idx_a[rhs]) return idx_a[lhs] < idx_a[rhs];
        return lhs < rhs;
      });
    }
  }

  sym.fiber_row_ptr.assign(sym.num_rows() + 1, 0);
  sym.fiber_ptr.clear();
  sym.fiber_ptr.push_back(0);
  if (two_level) {
    sym.subfiber_fiber_ptr.clear();
    sym.subfiber_fiber_ptr.push_back(0);
    sym.subfiber_ptr.clear();
    sym.subfiber_ptr.push_back(0);
  }
  for (std::size_t r = 0; r < sym.num_rows(); ++r) {
    const nnz_t row_end = sym.row_ptr[r + 1];
    nnz_t i = sym.row_ptr[r];
    while (i < row_end) {
      const index_t a = idx_a[sym.nnz_order[i]];
      nnz_t j = i;
      while (j < row_end && idx_a[sym.nnz_order[j]] == a) {
        if (two_level) {
          const index_t b = idx_b[sym.nnz_order[j]];
          while (j < row_end && idx_a[sym.nnz_order[j]] == a &&
                 idx_b[sym.nnz_order[j]] == b) {
            ++j;
          }
          sym.subfiber_ptr.push_back(j);
        } else {
          ++j;
        }
      }
      sym.fiber_ptr.push_back(j);
      if (two_level) sym.subfiber_fiber_ptr.push_back(sym.subfiber_ptr.size() - 1);
      i = j;
    }
    sym.fiber_row_ptr[r + 1] = sym.fiber_ptr.size() - 1;
  }
}

}  // namespace

ModeSymbolic build_mode_symbolic(const CooTensor& x, std::size_t mode,
                                 bool with_fibers) {
  HT_CHECK(mode < x.order());
  ModeSymbolic sym;
  const auto idx = x.indices(mode);

  // Histogram of row populations (counting sort).
  std::vector<nnz_t> count(x.dim(mode), 0);
  for (index_t i : idx) ++count[i];

  // Compact non-empty rows, in increasing row order.
  std::vector<nnz_t> compact_of(x.dim(mode), 0);
  sym.row_ptr.push_back(0);
  for (index_t i = 0; i < x.dim(mode); ++i) {
    if (count[i] == 0) continue;
    compact_of[i] = sym.rows.size();
    sym.rows.push_back(i);
    sym.row_ptr.push_back(sym.row_ptr.back() + count[i]);
  }

  // Scatter nonzero ordinals into their row buckets.
  sym.nnz_order.resize(x.nnz());
  std::vector<nnz_t> cursor(sym.row_ptr.begin(), sym.row_ptr.end() - 1);
  for (nnz_t t = 0; t < x.nnz(); ++t) {
    sym.nnz_order[cursor[compact_of[idx[t]]]++] = t;
  }

  if (with_fibers) build_fiber_index(x, mode, sym);
  return sym;
}

SymbolicTtmc SymbolicTtmc::build(const CooTensor& x, bool with_fibers) {
  SymbolicTtmc sym;
  const auto order = static_cast<int>(x.order());
  sym.modes.resize(order);
  // Base structure: modes in parallel (a handful of independent passes).
  // The fiber index runs after, one mode at a time, so its row-level parfor
  // gets the full thread pool instead of nesting inside the mode loop.
#pragma omp parallel for schedule(dynamic, 1)
  for (int n = 0; n < order; ++n) {
    sym.modes[n] = build_mode_symbolic(x, static_cast<std::size_t>(n),
                                       /*with_fibers=*/false);
  }
  if (with_fibers) {
    for (int n = 0; n < order; ++n) {
      build_fiber_index(x, static_cast<std::size_t>(n),
                        sym.modes[static_cast<std::size_t>(n)]);
    }
  }
  return sym;
}

}  // namespace ht::core
