#include "core/symbolic.hpp"

#include <numeric>

#include "util/error.hpp"

namespace ht::core {

ModeSymbolic build_mode_symbolic(const CooTensor& x, std::size_t mode) {
  HT_CHECK(mode < x.order());
  ModeSymbolic sym;
  const auto idx = x.indices(mode);

  // Histogram of row populations (counting sort).
  std::vector<nnz_t> count(x.dim(mode), 0);
  for (index_t i : idx) ++count[i];

  // Compact non-empty rows, in increasing row order.
  std::vector<nnz_t> compact_of(x.dim(mode), 0);
  sym.row_ptr.push_back(0);
  for (index_t i = 0; i < x.dim(mode); ++i) {
    if (count[i] == 0) continue;
    compact_of[i] = sym.rows.size();
    sym.rows.push_back(i);
    sym.row_ptr.push_back(sym.row_ptr.back() + count[i]);
  }

  // Scatter nonzero ordinals into their row buckets.
  sym.nnz_order.resize(x.nnz());
  std::vector<nnz_t> cursor(sym.row_ptr.begin(), sym.row_ptr.end() - 1);
  for (nnz_t t = 0; t < x.nnz(); ++t) {
    sym.nnz_order[cursor[compact_of[idx[t]]]++] = t;
  }
  return sym;
}

SymbolicTtmc SymbolicTtmc::build(const CooTensor& x) {
  SymbolicTtmc sym;
  const auto order = static_cast<int>(x.order());
  sym.modes.resize(order);
#pragma omp parallel for schedule(dynamic, 1)
  for (int n = 0; n < order; ++n) {
    sym.modes[n] = build_mode_symbolic(x, static_cast<std::size_t>(n));
  }
  return sym;
}

}  // namespace ht::core
