// Numeric TTMc: the nonzero-based formulation of paper Eq. (4) /
// Algorithm 2, evaluated with the precomputed symbolic update lists.
//
// For mode n, computes the compact matricized product
//   Y(n)(i, :) = sum_{x in ul_n(i)} x * kron_{t != n} U_t(i_t, :)
// with one dense row of width prod_{t != n} R_t per non-empty row i in J_n.
// Rows are independent (single writer), so the loop is a lock-free OpenMP
// parfor; the paper uses dynamic scheduling to absorb slice-size skew.
//
// Four kernel families are provided per mode:
//   per-nnz:        every nonzero pays the full Kronecker-row expansion
//                   (R_a*R_b flops for 3-mode, R_a*R_b*R_c for 4-mode);
//   fiber-factored: nonzeros sharing the leading other-mode index (one
//                   tensor fiber, see the symbolic fiber index) accumulate
//                   the inner partial t[jb] += v*u_b[jb] at R_b flops each,
//                   and the fiber expands y += u_a (x) t once — for 4-mode,
//                   two-level factoring y += u_a (x) (u_b (x) t);
//   CSF:            a depth-first walk of the mode's compressed fiber tree
//                   (tensor/csf.*, any order >= 2): leaf runs accumulate
//                   the trailing-rank partial from *streamed* values and
//                   coordinates, every internal node expands its partial
//                   into its parent's once, and finished root rows are
//                   scattered from tree Kronecker order into Y(n)'s layout.
//                   Root subtrees are dispatched in nnz-balanced tiles so
//                   skewed rows cannot serialize a thread.
//   ALTO:           a two-phase sweep over the single linearized structure
//                   (tensor/alto.*, any order >= 2, the same structure for
//                   every mode): phase 1 streams each nnz-balanced
//                   partition's keys and values sequentially, delinearizes,
//                   and accumulates the Kronecker expansion into a dense
//                   staging block over the partition's narrow mode-n index
//                   range; phase 2 merges staging rows into Y(n) in fixed
//                   partition order with one writer per output row.
//                   Partitions are processed in fixed-byte waves so staging
//                   memory is bounded by a machine-independent constant.
// TtmcKernel::kAuto picks a factored kernel when the mode's average fiber
// length (flat index or CSF leaf runs) clears TtmcOptions::fiber_threshold,
// preferring CSF when a tree was supplied (same flops as fiber-factored,
// strictly less index traffic), takes ALTO on out-of-cache tensors when the
// linearized structure is the only streaming layout in hand, and falls back
// to per-nnz on fiber-sparse in-cache inputs where neither the per-fiber
// expansion nor the streaming layout would pay.
#pragma once

#include <cstddef>
#include <vector>

#include "core/symbolic.hpp"
#include "la/matrix.hpp"
#include "tensor/alto.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/csf.hpp"

namespace ht::core {

enum class Schedule { kDynamic, kStatic };

/// Numeric kernel family. kFiberFactored silently degrades to per-nnz when
/// the symbolic structure carries no fiber index (orders other than 3/4, or
/// built with with_fibers = false). kCsf degrades to the closest available
/// factored kernel (fiber-factored, then per-nnz) when the caller supplied
/// no CSF tree for the mode. kAlto degrades the same way when no ALTO
/// structure was supplied (CSF first if one is in hand), or when one mode's
/// per-partition staging blocks would exceed the fixed wave budget (a
/// pathological range x width combination).
enum class TtmcKernel { kAuto, kPerNnz, kFiberFactored, kCsf, kAlto };

/// Cross-mode evaluation strategy (consumed by core::TtmcScheduler, not by
/// the single-mode entry points below):
///   kDirect  every mode recomputes Y(n) from raw nonzeros (paper Alg. 2);
///   kTree    modes are served from the dimension tree's semi-sparse
///            partial contractions (core/dim_tree.*);
///   kAuto    per-mode flop model picks direct vs tree-served.
enum class TtmcStrategy { kAuto, kDirect, kTree };

struct TtmcOptions {
  Schedule schedule = Schedule::kDynamic;
  TtmcKernel kernel = TtmcKernel::kAuto;
  /// kAuto selects the fiber-factored kernel when the mode's average fiber
  /// length (ModeSymbolic::avg_fiber_length) is at least this. Below it the
  /// per-fiber expansion does not amortize over enough nonzeros to win.
  double fiber_threshold = 2.0;
  /// Cross-mode strategy; only TtmcScheduler reads it (ttmc_mode and
  /// ttmc_mode_subset *are* the direct path).
  TtmcStrategy strategy = TtmcStrategy::kAuto;
  /// Structure-memory budget in bytes for kAuto's preprocessing decisions
  /// (0 = unlimited). When the estimated N-tree CSF forest would exceed it,
  /// ttmc_wants_csf says no and ttmc_wants_alto offers the single
  /// linearized structure instead (~1/N the footprint) — the
  /// serve/out-of-core regime where N trees may not fit at all. Explicit
  /// kernel requests are honored regardless of the budget.
  double structure_budget_bytes = 0.0;
};

/// The kernel kAuto (or an explicit request) resolves to for this mode,
/// given the optional CSF tree rooted at it and/or the optional ALTO
/// structure (nullptr: not available). Exposed for benches and tests that
/// assert on the heuristic.
TtmcKernel ttmc_selected_kernel(const ModeSymbolic& sym, std::size_t order,
                                const TtmcOptions& options,
                                const tensor::CsfTree* csf = nullptr,
                                const tensor::AltoTensor* alto = nullptr);

/// Whether the options ask for CSF trees at all: an explicit kCsf request,
/// or kAuto on a tensor where some mode's statistics favor a factored
/// kernel (any 3/4-mode with avg fiber length past the threshold, or order
/// >= 5 where CSF is the only factored family) — unless the forest's
/// estimated footprint blows TtmcOptions::structure_budget_bytes, in which
/// case ttmc_wants_alto takes over. Callers that own the preprocessing
/// (hooi, rank_sweep, dist_hooi) use this to decide whether building a
/// tensor::CsfTensor will pay for itself.
bool ttmc_wants_csf(const SymbolicTtmc& symbolic, const TtmcOptions& options);

/// Whether the options ask for an ALTO structure: an explicit kAlto
/// request, or kAuto under a structure budget that the CSF forest exceeds
/// but the single linearized structure fits (with the same time heuristics
/// that would have wanted the forest). Always false when the shape exceeds
/// the 128-bit key budget.
bool ttmc_wants_alto(const SymbolicTtmc& symbolic, const tensor::Shape& shape,
                     const TtmcOptions& options);

/// Build-free planning estimates of structure memory (bytes): the N-tree
/// CSF forest vs the single ALTO structure for a tensor of this size.
/// ttmc_wants_csf/ttmc_wants_alto compare these against the structure
/// budget before committing to a build.
double csf_forest_bytes_estimate(std::size_t nnz, std::size_t order);
double alto_bytes_estimate(std::size_t nnz, const tensor::Shape& shape);

/// Width of Y(n) rows: product of factor column counts over modes != n.
std::size_t ttmc_row_width(const std::vector<la::Matrix>& factors,
                           std::size_t mode);

/// Compute the compact Y(n): row r corresponds to global row sym.rows[r].
/// `y` is resized to (sym.num_rows() x ttmc_row_width()). `csf`, when
/// non-null, must be the tree rooted at `mode` built from the same tensor
/// (its root nodes then coincide with the compact symbolic rows). `alto`,
/// when non-null, must be built from the same tensor (one structure serves
/// every mode, so unlike `csf` it is not per-mode).
void ttmc_mode(const CooTensor& x, const std::vector<la::Matrix>& factors,
               std::size_t mode, const ModeSymbolic& sym, la::Matrix& y,
               const TtmcOptions& options = {},
               const tensor::CsfTree* csf = nullptr,
               const tensor::AltoTensor* alto = nullptr);

/// Single-nonzero contribution: out += value * kron_{t != n} U_t(idx_t, :).
/// Exposed for tests and the fine-grain distributed path.
void accumulate_kron(const CooTensor& x, nnz_t e,
                     const std::vector<la::Matrix>& factors, std::size_t mode,
                     std::span<double> out);

/// TTMc restricted to a subset of the symbolic rows: row p of `y` is the
/// compact row positions[p] of the full computation. The coarse-grain
/// distributed algorithm computes only its owned rows this way (paper
/// Algorithm 4, K_n = I_n^k).
void ttmc_mode_subset(const CooTensor& x,
                      const std::vector<la::Matrix>& factors, std::size_t mode,
                      const ModeSymbolic& sym,
                      std::span<const std::uint32_t> positions, la::Matrix& y,
                      const TtmcOptions& options = {},
                      const tensor::CsfTree* csf = nullptr,
                      const tensor::AltoTensor* alto = nullptr);

}  // namespace ht::core
