// Tensor completion: weighted (masked) Tucker factorization over the
// observed-entry mask.
//
// HOOI (core/hooi.hpp) fits the reconstruction over *all* tensor positions,
// treating missing entries as zeros — the right objective for compression,
// the wrong one for prediction. Completion minimizes only over the observed
// coordinates Omega, with L2 regularization:
//
//   min_{G, U_1..U_N}  sum_{t in Omega} (x_t - Xhat(i_t))^2
//                      + lambda * (sum_n ||U_n||_F^2 + ||G||_F^2).
//
// The solver is alternating least squares with P-Tucker-style row-wise
// factor updates ("Scalable Tucker Factorization for Sparse Tensors",
// PAPERS.md): for mode n, every row u = U_n(i, :) has a closed-form ridge
// solution assembled ONLY from that row's observed entries,
//
//   (B_i + lambda I) u = c_i,    B_i = sum_t d_t d_t^T,  c_i = sum_t x_t d_t,
//
// where d_t in R^{R_n} is the core contracted against every OTHER mode's
// factor row at t's coordinates (computed by the shared core/reconstruct
// kernels, so it is bit-identical to the serving contraction). The row
// lists are exactly core/symbolic's ModeSymbolic update lists — the same
// structure the TTMc kernels iterate — so the masked sweep reuses the
// existing symbolic preprocessing unchanged. The core is refreshed by
// warm-started conjugate gradients on its (ridge) normal equations; each
// half-step minimizes the objective exactly (rows) or monotonically
// decreases it (CG), so the training objective is non-increasing per sweep.
//
// Determinism: rows are solved in parallel but each row's accumulation is
// sequential over its update list, rows write disjoint factor rows, and
// every cross-nonzero reduction (core gradient, RMSE/objective sums) runs
// over FIXED 8192-nonzero blocks whose partials are combined in ascending
// block order — the same arena discipline as la/blas.cpp — so results are
// bitwise identical across runs, thread counts, and schedules.
//
// The row update is exposed stand-alone (masked_update_rows) on a caller-
// chosen row subset: the delta-ingestion / stochastic-refresh path of
// ROADMAP item 2 re-solves only the rows a delta touched through the same
// entry point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/symbolic.hpp"
#include "core/tucker.hpp"
#include "core/tucker_model.hpp"
#include "tensor/coo_tensor.hpp"

namespace ht::core {

struct CompletionOptions {
  /// Decomposition ranks, one per mode (required).
  std::vector<index_t> ranks;
  int max_sweeps = 30;
  /// L2 regularization strength on every factor row and the core.
  double lambda = 1e-3;
  /// Ridge annealing: sweep s < lambda_anneal_sweeps uses
  ///   lambda * factor^((anneal_sweeps - s) / anneal_sweeps),
  /// a geometric decay from lambda*factor down to lambda. The heavy early
  /// ridge keeps the first sweeps from committing to a spurious fit of the
  /// sparse mask (the ALS "swamp"), then relaxes; factor = 1 or
  /// sweeps = 0 disables. While annealing is active the recorded objective
  /// uses that sweep's effective lambda (not comparable across sweeps), and
  /// the objective-tolerance convergence check and the early-stopping
  /// patience counter are held off until the final lambda is reached.
  double lambda_anneal_factor = 1.0;
  int lambda_anneal_sweeps = 0;
  /// Stop when the relative objective decrease between sweeps falls below
  /// this (training-side convergence).
  double objective_tolerance = 1e-5;
  /// Core refresh: CG iteration cap and relative residual target on the
  /// core's normal equations.
  int core_cg_iterations = 20;
  double core_cg_tolerance = 1e-9;
  /// Early stopping on the validation RMSE (only with a validation set):
  /// stop after `patience` consecutive sweeps without an improvement of at
  /// least `min_delta`; patience <= 0 disables.
  int early_stopping_patience = 3;
  double early_stopping_min_delta = 1e-5;
  /// Restore the factors/core of the best-validation sweep before
  /// returning (only with a validation set).
  bool restore_best = true;
  /// OpenMP threads (0 = runtime default).
  int num_threads = 0;
  /// Seed for the factor initialization.
  std::uint64_t seed = 42;
};

struct CompletionTimers {
  double symbolic = 0;
  double factor = 0;
  double core = 0;
  double eval = 0;
};

/// Deterministic prediction-quality measures over one observed-entry set.
struct CompletionEval {
  double rmse = 0;
  double mae = 0;
  nnz_t count = 0;
};

struct CompletionResult {
  TuckerDecomposition decomposition;
  /// Training objective (SSE + lambda * squared norms) after each sweep.
  std::vector<double> objective;
  /// Training RMSE over the observed entries after each sweep.
  std::vector<double> train_rmse;
  /// Validation RMSE after each sweep (empty without a validation set).
  std::vector<double> validation_rmse;
  int sweeps = 0;
  bool converged = false;       // objective_tolerance reached
  bool early_stopped = false;   // validation patience exhausted
  /// Sweep (0-based) of the best validation RMSE; -1 without validation.
  int best_sweep = -1;
  CompletionTimers timers;

  [[nodiscard]] double final_train_rmse() const {
    return train_rmse.empty() ? 0.0 : train_rmse.back();
  }
};

/// Train a completion model on the observed entries of `train`.
CompletionResult tucker_complete(const CooTensor& train,
                                 const CompletionOptions& options);

/// Train with a validation set steering early stopping. `validation` may be
/// null or empty (then identical to the overload above); it must share the
/// training tensor's shape.
CompletionResult tucker_complete(const CooTensor& train,
                                 const CooTensor* validation,
                                 const CompletionOptions& options);

/// One masked row-wise update of mode `mode` restricted to the compacted
/// row ordinals `rows` (indices into sym.rows / sym.update_list). Solves
/// each row's ridge normal equations from its observed entries and writes
/// the solution into t.factors[mode]; all other state is read-only. Rows
/// are independent — the call is OpenMP-parallel over `rows` and bitwise
/// deterministic for any thread count.
void masked_update_rows(const CooTensor& x, const ModeSymbolic& sym,
                        std::size_t mode, double lambda,
                        std::span<const std::size_t> rows,
                        TuckerDecomposition& t);

/// Masked row update over every observed row of `mode`.
void masked_update_mode(const CooTensor& x, const ModeSymbolic& sym,
                        std::size_t mode, double lambda,
                        TuckerDecomposition& t);

/// Warm-started CG refresh of the core against the observed entries:
/// solves (A^T A + lambda I) g = A^T x where row t of A is the Kronecker
/// product of the factor rows at t's coordinates. Starts from the current
/// core values and monotonically decreases the objective. Returns the CG
/// iterations used. Deterministic (fixed-block gradient reduction).
int masked_update_core(const CooTensor& x, double lambda, int max_iterations,
                       double tolerance, TuckerDecomposition& t);

/// Training objective: SSE over the observed entries plus
/// lambda * (sum_n ||U_n||^2 + ||G||^2). Deterministic.
double masked_objective(const CooTensor& x, const TuckerDecomposition& t,
                        double lambda);

/// RMSE/MAE of per-entry predictions `preds` (one per nonzero of `x`,
/// e.g. from serve::QueryEngine::score_batch). Fixed-block accumulation:
/// the result is a pure function of (x.values, preds), so a serve-path
/// evaluation matches a train-side one to 0 ULP whenever the predictions
/// are bit-identical.
CompletionEval evaluate_predictions(const CooTensor& x,
                                    std::span<const double> preds);

/// Evaluate a decomposition on the observed entries of `x`: predictions
/// via the shared reconstruct kernels, then evaluate_predictions.
CompletionEval evaluate_model(const CooTensor& x,
                              const TuckerDecomposition& t);

/// Package a completion run as a serveable TuckerModel: dims/fit from the
/// training tensor (fit = 1 - ||P_Omega(X - Xhat)|| / ||X||, the masked
/// counterpart of the HOOI fit), build provenance, and `completion.*`
/// provenance keys (lambda, seed, sweeps, train RMSE, stop reason).
/// Callers append split/holdout keys they know about (completion.split_seed,
/// completion.holdout_rmse, ...) before saving the bundle.
TuckerModel completion_model(const CooTensor& train, CompletionResult&& result,
                             const CompletionOptions& options);

/// Validate options against the tensor; throws ht::InvalidArgument.
void validate_completion_options(const CooTensor& x,
                                 const CompletionOptions& options);

}  // namespace ht::core
