// Symbolic TTMc (paper Section III-A.1), extended with a fiber index.
//
// One preprocessing pass per mode builds the update list ul_n: for every
// mode-n row i with nonzeros, the list of nonzero ordinals contributing to
// Y(n)(i, :). Stored as CSR over the *compacted* set of non-empty rows J_n,
// holding nonzero ordinals (the paper's "we only store the index t of the
// nonzero"). This resolves every index computation and write dependency
// before the HOOI iterations: the numeric TTMc becomes a lock-free parallel
// loop over rows of Y(n), and the symbolic result is reused across all
// iterations (and across HOOI runs with different ranks).
//
// Fiber index: for 3- and 4-mode tensors each row's update list is
// additionally sorted by the leading other-mode index (and, for 4-mode, the
// second other-mode index), and the run boundaries are recorded. Nonzeros in
// a run share every index except the trailing mode, i.e. they lie on one
// tensor fiber — exactly the redundancy fiber-compressed layouts (SPLATT's
// CSF) exploit. The fiber-factored numeric kernels in ttmc.cpp hoist the
// shared Kronecker factors out of the per-nonzero loop, turning the
// R_a*R_b(*R_c) per-nonzero expansion into R_b(*R_c) per nonzero plus one
// expansion per fiber.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/coo_tensor.hpp"

namespace ht::core {

using tensor::CooTensor;
using tensor::index_t;
using tensor::nnz_t;

/// Update lists of one mode.
struct ModeSymbolic {
  /// J_n: sorted global row indices with at least one nonzero.
  std::vector<index_t> rows;
  /// CSR offsets into nnz_order, size rows.size() + 1.
  std::vector<nnz_t> row_ptr;
  /// Nonzero ordinals grouped by row (a permutation of 0..nnz-1).
  std::vector<nnz_t> nnz_order;

  /// Fiber index over nnz_order (built for 3- and 4-mode tensors; empty
  /// otherwise, or when built with with_fibers = false). Fiber k spans
  /// nnz_order[fiber_ptr[k] .. fiber_ptr[k+1]); row r owns fibers
  /// [fiber_row_ptr[r], fiber_row_ptr[r+1]). All nonzeros of a fiber share
  /// the leading other-mode index.
  std::vector<nnz_t> fiber_ptr;
  std::vector<nnz_t> fiber_row_ptr;

  /// Second fiber level (4-mode only): fiber k owns subfibers
  /// [subfiber_fiber_ptr[k], subfiber_fiber_ptr[k+1]); subfiber j spans
  /// nnz_order[subfiber_ptr[j] .. subfiber_ptr[j+1]). All nonzeros of a
  /// subfiber share the first *two* other-mode indices.
  std::vector<nnz_t> subfiber_ptr;
  std::vector<nnz_t> subfiber_fiber_ptr;

  [[nodiscard]] std::size_t num_rows() const { return rows.size(); }

  /// Update list of the r-th compacted row.
  [[nodiscard]] std::span<const nnz_t> update_list(std::size_t r) const {
    return {nnz_order.data() + row_ptr[r], row_ptr[r + 1] - row_ptr[r]};
  }

  [[nodiscard]] bool has_fibers() const { return !fiber_ptr.empty(); }

  [[nodiscard]] std::size_t num_fibers() const {
    return fiber_ptr.empty() ? 0 : fiber_ptr.size() - 1;
  }

  /// Mean nonzeros per fiber — the quantity the kernel heuristic tests
  /// against TtmcOptions::fiber_threshold. Zero when no fiber index exists.
  [[nodiscard]] double avg_fiber_length() const {
    const std::size_t f = num_fibers();
    return f == 0 ? 0.0
                  : static_cast<double>(nnz_order.size()) /
                        static_cast<double>(f);
  }

  /// Bytes of this mode's update-list and fiber-index arrays — the
  /// structure-memory number bench_ablation reports alongside
  /// CsfTensor::format_bytes() and AltoTensor::format_bytes().
  [[nodiscard]] std::size_t format_bytes() const {
    return rows.size() * sizeof(index_t) +
           (row_ptr.size() + nnz_order.size() + fiber_ptr.size() +
            fiber_row_ptr.size() + subfiber_ptr.size() +
            subfiber_fiber_ptr.size()) *
               sizeof(nnz_t);
  }
};

/// Symbolic TTMc for all modes. Modes are processed in parallel (they are
/// independent, as the paper notes). `with_fibers` controls the fiber-index
/// construction (a per-row sort; skip it to reproduce the plain paper
/// preprocessing cost).
struct SymbolicTtmc {
  std::vector<ModeSymbolic> modes;

  static SymbolicTtmc build(const CooTensor& x, bool with_fibers = true);
};

/// Symbolic pass for a single mode.
ModeSymbolic build_mode_symbolic(const CooTensor& x, std::size_t mode,
                                 bool with_fibers = true);

}  // namespace ht::core
