// Symbolic TTMc (paper Section III-A.1).
//
// One preprocessing pass per mode builds the update list ul_n: for every
// mode-n row i with nonzeros, the list of nonzero ordinals contributing to
// Y(n)(i, :). Stored as CSR over the *compacted* set of non-empty rows J_n,
// holding nonzero ordinals (the paper's "we only store the index t of the
// nonzero"). This resolves every index computation and write dependency
// before the HOOI iterations: the numeric TTMc becomes a lock-free parallel
// loop over rows of Y(n), and the symbolic result is reused across all
// iterations (and across HOOI runs with different ranks).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/coo_tensor.hpp"

namespace ht::core {

using tensor::CooTensor;
using tensor::index_t;
using tensor::nnz_t;

/// Update lists of one mode.
struct ModeSymbolic {
  /// J_n: sorted global row indices with at least one nonzero.
  std::vector<index_t> rows;
  /// CSR offsets into nnz_order, size rows.size() + 1.
  std::vector<nnz_t> row_ptr;
  /// Nonzero ordinals grouped by row (a permutation of 0..nnz-1).
  std::vector<nnz_t> nnz_order;

  [[nodiscard]] std::size_t num_rows() const { return rows.size(); }

  /// Update list of the r-th compacted row.
  [[nodiscard]] std::span<const nnz_t> update_list(std::size_t r) const {
    return {nnz_order.data() + row_ptr[r], row_ptr[r + 1] - row_ptr[r]};
  }
};

/// Symbolic TTMc for all modes. Modes are processed in parallel (they are
/// independent, as the paper notes).
struct SymbolicTtmc {
  std::vector<ModeSymbolic> modes;

  static SymbolicTtmc build(const CooTensor& x);
};

/// Symbolic pass for a single mode.
ModeSymbolic build_mode_symbolic(const CooTensor& x, std::size_t mode);

}  // namespace ht::core
