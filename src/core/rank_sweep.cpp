#include "core/rank_sweep.hpp"

#include <memory>
#include <numeric>
#include <optional>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace ht::core {

const RankSweepEntry& RankSweepResult::pick(double fit_fraction) const {
  HT_CHECK_MSG(!entries.empty(), "empty rank sweep");
  double best_fit = 0.0;
  for (const auto& e : entries) best_fit = std::max(best_fit, e.fit);

  const RankSweepEntry* chosen = nullptr;
  std::uint64_t chosen_core = 0;
  for (const auto& e : entries) {
    if (e.fit + 1e-15 < fit_fraction * best_fit) continue;
    const std::uint64_t core_size = std::accumulate(
        e.ranks.begin(), e.ranks.end(), std::uint64_t{1},
        [](std::uint64_t a, index_t r) { return a * r; });
    if (chosen == nullptr || core_size < chosen_core) {
      chosen = &e;
      chosen_core = core_size;
    }
  }
  HT_CHECK(chosen != nullptr);
  return *chosen;
}

RankSweepResult rank_sweep(const CooTensor& x,
                           const std::vector<std::vector<index_t>>& candidates,
                           const HooiOptions& base) {
  HT_CHECK_MSG(!candidates.empty(), "need at least one rank candidate");

  RankSweepResult result;
  WallTimer t_sym;
  const bool with_fibers = base.ttmc_kernel == TtmcKernel::kAuto ||
                           base.ttmc_kernel == TtmcKernel::kFiberFactored;
  const SymbolicTtmc symbolic = SymbolicTtmc::build(x, with_fibers);
  // The dimension-tree plan is symbolic too (it depends on the nonzero
  // pattern only, not the ranks): one plan serves the whole rank grid.
  std::optional<DimTreePlan> tree;
  if (base.ttmc_strategy != TtmcStrategy::kDirect && x.order() >= 2) {
    tree.emplace(DimTreePlan::build(x));
  }
  // CSF trees are pattern-only as well: one build serves every rank choice.
  const TtmcOptions ttmc_options{base.ttmc_schedule, base.ttmc_kernel,
                                 base.ttmc_fiber_threshold,
                                 base.ttmc_strategy,
                                 base.ttmc_structure_budget};
  std::optional<tensor::CsfTensor> csf;
  if (ttmc_wants_csf(symbolic, ttmc_options)) {
    csf.emplace(tensor::CsfTensor::build(x));
  }
  // Likewise the ALTO structure: the key sort is rank-independent.
  std::optional<tensor::AltoTensor> alto;
  if (ttmc_wants_alto(symbolic, x.shape(), ttmc_options)) {
    alto.emplace(tensor::AltoTensor::build(x));
  }
  result.symbolic_seconds = t_sym.seconds();

  double best_fit = -1.0;
  for (const auto& ranks : candidates) {
    HooiOptions options = base;
    options.ranks = ranks;
    WallTimer t;
    HooiResult run = hooi(x, options, symbolic,
                          tree ? &*tree : nullptr, csf ? &*csf : nullptr,
                          alto ? &*alto : nullptr);
    RankSweepEntry entry;
    entry.ranks = ranks;
    entry.fit = run.final_fit();
    entry.iterations = run.iterations;
    entry.seconds = t.seconds();
    if (entry.fit > best_fit) {
      best_fit = entry.fit;
      result.best_model = TuckerModel::from_hooi(x, std::move(run));
    }
    result.entries.push_back(std::move(entry));
  }
  // The sweep's CSF trees are pattern-only and rank-independent, so the
  // winning model can carry them into a bundle: a serve/restart process
  // then runs kCsf TTMc without re-sorting the tensor.
  if (result.best_model && csf) {
    result.best_model->csf =
        std::make_shared<tensor::CsfTensor>(std::move(*csf));
  }
  // Same for the ALTO structure — it carries its own sorted value array,
  // so a serve process can run kAlto TTMc straight from the bundle.
  if (result.best_model && alto) {
    result.best_model->alto =
        std::make_shared<tensor::AltoTensor>(std::move(*alto));
  }
  return result;
}

}  // namespace ht::core
