#include "core/tucker_model.hpp"

#include "util/version.hpp"

namespace ht::core {

std::string TuckerModel::provenance_value(const std::string& key) const {
  for (const auto& [k, v] : provenance) {
    if (k == key) return v;
  }
  return {};
}

std::string TuckerModel::provenance_text() const {
  std::string s;
  for (const auto& [k, v] : provenance) {
    s += k;
    s += '=';
    s += v;
    s += '\n';
  }
  return s;
}

std::vector<std::pair<std::string, std::string>>
TuckerModel::build_provenance() {
  return {
      {"version", kVersion},
      {"git_hash", kGitHash},
      {"compiler", kCompiler},
      {"compile_flags", kCompileFlags},
      {"build_type", kBuildType},
  };
}

namespace {

TuckerModel assemble(const tensor::CooTensor& x, TuckerDecomposition dec,
                     const HooiResult& result) {
  TuckerModel m;
  m.decomposition = std::move(dec);
  m.dims = x.shape();
  m.fit = result.final_fit();
  m.provenance = TuckerModel::build_provenance();
  m.provenance.emplace_back("iterations", std::to_string(result.iterations));
  m.provenance.emplace_back("converged", result.converged ? "1" : "0");
  m.provenance.emplace_back("nnz", std::to_string(x.nnz()));
  return m;
}

}  // namespace

TuckerModel TuckerModel::from_hooi(const tensor::CooTensor& x,
                                   const HooiResult& result) {
  return assemble(x, result.decomposition, result);
}

TuckerModel TuckerModel::from_hooi(const tensor::CooTensor& x,
                                   HooiResult&& result) {
  return assemble(x, std::move(result.decomposition), result);
}

}  // namespace ht::core
