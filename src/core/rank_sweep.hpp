// Rank selection by sweeping HOOI over candidate core sizes.
//
// The paper (Sec. V, citing Kiers & der Kinderen) notes that finding a good
// Tucker approximation typically means running HOOI with several rank
// choices, and that the symbolic TTMc can be computed once and reused for
// all of them — this utility is that workflow.
#pragma once

#include <optional>
#include <vector>

#include "core/hooi.hpp"
#include "core/tucker_model.hpp"

namespace ht::core {

struct RankSweepEntry {
  std::vector<index_t> ranks;
  double fit = 0.0;
  int iterations = 0;
  double seconds = 0.0;
};

struct RankSweepResult {
  std::vector<RankSweepEntry> entries;
  /// Seconds spent building the shared symbolic structure (paid once).
  double symbolic_seconds = 0.0;
  /// The best-fit run packaged as a first-class model (provenance stamped,
  /// shared CSF trees / ALTO structure attached when the sweep built them),
  /// ready for storage::save_bundle. Only the winner is kept — the sweep
  /// never holds more than one extra decomposition.
  std::optional<TuckerModel> best_model;

  /// Entry with the smallest core that reaches `fit_fraction` of the best
  /// observed fit (a simple elbow heuristic).
  [[nodiscard]] const RankSweepEntry& pick(double fit_fraction = 0.95) const;
};

/// Run HOOI for every candidate rank vector, reusing one symbolic TTMc.
/// `base` supplies everything except the ranks.
RankSweepResult rank_sweep(const CooTensor& x,
                           const std::vector<std::vector<index_t>>& candidates,
                           const HooiOptions& base);

}  // namespace ht::core
