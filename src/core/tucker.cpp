#include "core/tucker.hpp"

#include <cmath>

#include "core/reconstruct.hpp"
#include "util/error.hpp"

namespace ht::core {

std::vector<index_t> TuckerDecomposition::ranks() const {
  std::vector<index_t> r;
  r.reserve(factors.size());
  for (const auto& f : factors) r.push_back(static_cast<index_t>(f.cols()));
  return r;
}

double TuckerDecomposition::reconstruct_at(std::span<const index_t> idx) const {
  HT_CHECK(idx.size() == order());
  // Sequential-contraction kernel with thread-local scratch: no per-call
  // allocation (this is the serving hot path), bit-identical to the
  // serve-layer cached/batched paths which share the same kernels.
  return core::reconstruct_at(core, factors, idx,
                              ReconstructWorkspace::tls());
}

tensor::DenseTensor TuckerDecomposition::reconstruct_dense() const {
  // Densify through the same contraction kernels the point query uses: one
  // entity slice per mode-0 index (reused across the whole hyperslice,
  // exactly like the serve layer's per-user cache), then score_slice per
  // remaining coordinate (test sizes only).
  tensor::Shape shape;
  for (const auto& f : factors) {
    shape.push_back(static_cast<index_t>(f.rows()));
  }
  tensor::DenseTensor x{shape};
  if (shape.empty()) return x;
  ReconstructWorkspace& ws = ReconstructWorkspace::tls();
  const tensor::Shape& ranks = core.shape();
  const std::size_t s = core::slice_size(ranks, 0);
  std::vector<double> slice(s);
  std::vector<index_t> idx(order(), 0);
  auto flat = x.flat();
  // Odometer, last mode fastest (the flat layout); mode 0 is slowest, so
  // the entity slice is recomputed exactly shape[0] times.
  std::size_t hyperslice = 1;
  for (std::size_t n = 1; n < shape.size(); ++n) hyperslice *= shape[n];
  for (std::size_t off = 0; off < flat.size(); ++off) {
    if (off % hyperslice == 0) {
      core::contract_unfolding(core.flat(), factors[0].row(idx[0]), slice);
    }
    flat[off] = core::score_slice(slice, ranks, 0, factors, idx, ws);
    for (std::size_t n = order(); n-- > 0;) {
      if (++idx[n] < shape[n]) break;
      idx[n] = 0;
    }
  }
  return x;
}

double fit_from_core_norm(double x_norm2, double core_norm2) {
  HT_CHECK_MSG(x_norm2 > 0, "fit undefined for zero tensor");
  const double resid2 = std::max(0.0, x_norm2 - core_norm2);
  return 1.0 - std::sqrt(resid2) / std::sqrt(x_norm2);
}

double fit_exact(const tensor::CooTensor& x, const TuckerDecomposition& t) {
  HT_CHECK(x.order() == t.order());
  // ||X - Xhat||^2 = sum_{nz} (x - xhat)^2 + (||Xhat||^2 - sum_{nz} xhat^2).
  double resid2 = 0.0;
  double model_on_support2 = 0.0;
  std::vector<index_t> idx(x.order());
  for (tensor::nnz_t e = 0; e < x.nnz(); ++e) {
    for (std::size_t n = 0; n < x.order(); ++n) idx[n] = x.index(n, e);
    const double xhat = t.reconstruct_at(idx);
    const double d = x.value(e) - xhat;
    resid2 += d * d;
    model_on_support2 += xhat * xhat;
  }
  // ||Xhat||^2 == ||G||^2 for orthonormal factors.
  const double core_norm = t.core.frobenius_norm();
  resid2 += std::max(0.0, core_norm * core_norm - model_on_support2);
  const double x_norm2 = x.norm2_squared();
  HT_CHECK_MSG(x_norm2 > 0, "fit undefined for zero tensor");
  return 1.0 - std::sqrt(resid2) / std::sqrt(x_norm2);
}

}  // namespace ht::core
