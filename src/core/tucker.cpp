#include "core/tucker.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ht::core {

std::vector<index_t> TuckerDecomposition::ranks() const {
  std::vector<index_t> r;
  r.reserve(factors.size());
  for (const auto& f : factors) r.push_back(static_cast<index_t>(f.cols()));
  return r;
}

double TuckerDecomposition::reconstruct_at(std::span<const index_t> idx) const {
  HT_CHECK(idx.size() == order());
  const auto& shape = core.shape();
  // Odometer over the core, last mode fastest — matches core.flat() layout.
  std::vector<index_t> r(order(), 0);
  double value = 0.0;
  for (std::size_t off = 0; off < core.size(); ++off) {
    double term = core.flat()[off];
    if (term != 0.0) {
      for (std::size_t n = 0; n < order(); ++n) {
        term *= factors[n](idx[n], r[n]);
      }
      value += term;
    }
    for (std::size_t n = order(); n-- > 0;) {
      if (++r[n] < shape[n]) break;
      r[n] = 0;
    }
  }
  return value;
}

tensor::DenseTensor TuckerDecomposition::reconstruct_dense() const {
  tensor::DenseTensor x = core;
  // X = G x_1 U_1 x_2 ... x_N U_N; dense_ttm applies factors as U^T with U
  // of size (input mode size x output size), so pass U_n transposed.
  for (std::size_t n = 0; n < order(); ++n) {
    x = tensor::dense_ttm(x, n, factors[n].transposed());
  }
  return x;
}

double fit_from_core_norm(double x_norm2, double core_norm2) {
  HT_CHECK_MSG(x_norm2 > 0, "fit undefined for zero tensor");
  const double resid2 = std::max(0.0, x_norm2 - core_norm2);
  return 1.0 - std::sqrt(resid2) / std::sqrt(x_norm2);
}

double fit_exact(const tensor::CooTensor& x, const TuckerDecomposition& t) {
  HT_CHECK(x.order() == t.order());
  // ||X - Xhat||^2 = sum_{nz} (x - xhat)^2 + (||Xhat||^2 - sum_{nz} xhat^2).
  double resid2 = 0.0;
  double model_on_support2 = 0.0;
  std::vector<index_t> idx(x.order());
  for (tensor::nnz_t e = 0; e < x.nnz(); ++e) {
    for (std::size_t n = 0; n < x.order(); ++n) idx[n] = x.index(n, e);
    const double xhat = t.reconstruct_at(idx);
    const double d = x.value(e) - xhat;
    resid2 += d * d;
    model_on_support2 += xhat * xhat;
  }
  // ||Xhat||^2 == ||G||^2 for orthonormal factors.
  const double core_norm = t.core.frobenius_norm();
  resid2 += std::max(0.0, core_norm * core_norm - model_on_support2);
  const double x_norm2 = x.norm2_squared();
  HT_CHECK_MSG(x_norm2 > 0, "fit undefined for zero tensor");
  return 1.0 - std::sqrt(resid2) / std::sqrt(x_norm2);
}

}  // namespace ht::core
