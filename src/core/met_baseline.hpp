// MET-style baseline: HOOI whose TTMc materializes intermediate semi-sparse
// tensors mode by mode (the evaluation order of the MATLAB Tensor Toolbox's
// Memory-Efficient Tucker), instead of the paper's fused nonzero-based
// formulation. Reproduces the sequential comparison in Section V
// ("87.2 s MET vs 11.3 s ours" on a random 10K^3 / 1M-nnz tensor).
//
// The semi-sparse representation and TTM contraction themselves are the
// shared ones in tensor/semi_sparse.* (also the substrate of the
// dimension-tree TTMc scheduler); what makes this the *baseline* is the
// evaluation order — a fresh full-length TTM chain per mode per iteration,
// merge plans rebuilt every contraction, no cross-mode reuse.
#pragma once

#include "core/hooi.hpp"

namespace ht::core {

/// HOOI with TTM-chain (materialized) TTMc. Same options/result contract as
/// hooi(); ttmc_schedule/kernel/strategy are ignored (the chain
/// parallelizes per merge group).
HooiResult hooi_met_baseline(const CooTensor& x, const HooiOptions& options);

}  // namespace ht::core
