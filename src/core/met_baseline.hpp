// MET-style baseline: HOOI whose TTMc materializes intermediate semi-sparse
// tensors mode by mode (the evaluation order of the MATLAB Tensor Toolbox's
// Memory-Efficient Tucker), instead of the paper's fused nonzero-based
// formulation. Reproduces the sequential comparison in Section V
// ("87.2 s MET vs 11.3 s ours" on a random 10K^3 / 1M-nnz tensor).
#pragma once

#include "core/hooi.hpp"

namespace ht::core {

/// HOOI with TTM-chain (materialized) TTMc. Same options/result contract as
/// hooi(); ttmc_schedule is ignored (the chain parallelizes per group).
HooiResult hooi_met_baseline(const CooTensor& x, const HooiOptions& options);

namespace met_detail {

/// Semi-sparse tensor: entries are sparse in `sparse_modes` and carry a
/// dense block of the ranks processed so far (last-processed fastest).
struct SemiSparse {
  std::vector<std::size_t> sparse_modes;          // increasing
  std::vector<std::vector<index_t>> idx;          // [pos in sparse_modes][entry]
  std::size_t block = 1;
  std::vector<double> values;                     // entries * block

  [[nodiscard]] std::size_t entries() const {
    return block == 0 ? 0 : values.size() / block;
  }
};

/// Lift a COO tensor into the semi-sparse representation (block = 1).
SemiSparse lift(const CooTensor& x);

/// Multiply along `mode` with factor U (I_mode x R): contracts the mode away
/// and appends R as the fastest dense dimension, merging entries that share
/// the remaining sparse coordinates.
SemiSparse ttm_contract(const SemiSparse& s, std::size_t mode,
                        const la::Matrix& u);

}  // namespace met_detail
}  // namespace ht::core
