#include "core/hosvd.hpp"

#include "la/qr.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace ht::core {

std::vector<la::Matrix> random_orthonormal_factors(
    const tensor::Shape& shape, std::span<const index_t> ranks,
    std::uint64_t seed) {
  HT_CHECK_MSG(ranks.size() == shape.size(), "rank arity mismatch");
  std::vector<la::Matrix> factors;
  factors.reserve(shape.size());
  for (std::size_t n = 0; n < shape.size(); ++n) {
    HT_CHECK_MSG(ranks[n] >= 1 && ranks[n] <= shape[n],
                 "rank " << ranks[n] << " invalid for mode size " << shape[n]);
    Rng rng(seed + 0x9e37 * (n + 1));
    la::Matrix f(shape[n], ranks[n]);
    for (auto& v : f.flat()) v = rng.normal();
    la::orthonormalize_columns(f);
    factors.push_back(std::move(f));
  }
  return factors;
}

namespace {

// Deterministic Rademacher sketch entry for (column key, sketch column j).
inline double sketch_entry(std::uint64_t key, std::size_t j) {
  SplitMix64 sm(key ^ (0x517cc1b727220a95ULL * (j + 1)));
  return (sm.next() & 1) ? 1.0 : -1.0;
}

}  // namespace

std::vector<la::Matrix> randomized_range_factors(const CooTensor& x,
                                                 std::span<const index_t> ranks,
                                                 std::uint64_t seed,
                                                 std::size_t oversample) {
  HT_CHECK_MSG(ranks.size() == x.order(), "rank arity mismatch");
  std::vector<la::Matrix> factors(x.order());

  for (std::size_t n = 0; n < x.order(); ++n) {
    const index_t dim = x.dim(n);
    HT_CHECK_MSG(ranks[n] >= 1 && ranks[n] <= dim,
                 "rank " << ranks[n] << " invalid for mode size " << dim);
    const std::size_t sketch =
        std::min<std::size_t>(ranks[n] + oversample, dim);

    // B = X(n) * Omega accumulated nonzero by nonzero; the column key packs
    // the other-mode indices (the actual linearized value does not matter,
    // only that equal columns hash equally).
    la::Matrix b(dim, sketch);
    for (tensor::nnz_t e = 0; e < x.nnz(); ++e) {
      std::uint64_t key = seed ^ (0xabcdef12345ULL + n);
      for (std::size_t t = 0; t < x.order(); ++t) {
        if (t == n) continue;
        key = key * 0x100000001b3ULL + x.index(t, e) + 1;
      }
      const double v = x.value(e);
      auto row = b.row(x.index(n, e));
      for (std::size_t j = 0; j < sketch; ++j) {
        row[j] += v * sketch_entry(key, j);
      }
    }

    la::orthonormalize_columns(b);
    la::Matrix f(dim, ranks[n]);
    for (index_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < ranks[n]; ++j) f(i, j) = b(i, j);
    }
    factors[n] = std::move(f);
  }
  return factors;
}

}  // namespace ht::core
