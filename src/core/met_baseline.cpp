#include "core/met_baseline.hpp"

#include <algorithm>
#include <numeric>

#include "core/hosvd.hpp"
#include "la/blas.hpp"
#include "parallel/thread_info.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace ht::core {
namespace met_detail {

SemiSparse lift(const CooTensor& x) {
  SemiSparse s;
  s.sparse_modes.resize(x.order());
  std::iota(s.sparse_modes.begin(), s.sparse_modes.end(), 0);
  s.idx.resize(x.order());
  for (std::size_t n = 0; n < x.order(); ++n) {
    const auto src = x.indices(n);
    s.idx[n].assign(src.begin(), src.end());
  }
  s.values.assign(x.values().begin(), x.values().end());
  s.block = 1;
  return s;
}

SemiSparse ttm_contract(const SemiSparse& s, std::size_t mode,
                        const la::Matrix& u) {
  // Position of `mode` within the sparse mode list.
  const auto it =
      std::find(s.sparse_modes.begin(), s.sparse_modes.end(), mode);
  HT_CHECK_MSG(it != s.sparse_modes.end(), "mode already contracted");
  const std::size_t pos =
      static_cast<std::size_t>(it - s.sparse_modes.begin());

  const std::size_t n_entries = s.entries();
  const std::size_t rank = u.cols();

  // Sort entry ordinals by the remaining sparse coordinates.
  std::vector<std::uint32_t> order(n_entries);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    for (std::size_t k = 0; k < s.sparse_modes.size(); ++k) {
      if (k == pos) continue;
      if (s.idx[k][a] != s.idx[k][b]) return s.idx[k][a] < s.idx[k][b];
    }
    return false;
  });

  auto same_group = [&](std::uint32_t a, std::uint32_t b) {
    for (std::size_t k = 0; k < s.sparse_modes.size(); ++k) {
      if (k == pos) continue;
      if (s.idx[k][a] != s.idx[k][b]) return false;
    }
    return true;
  };

  SemiSparse out;
  out.sparse_modes.reserve(s.sparse_modes.size() - 1);
  for (std::size_t k = 0; k < s.sparse_modes.size(); ++k) {
    if (k != pos) out.sparse_modes.push_back(s.sparse_modes[k]);
  }
  out.idx.resize(out.sparse_modes.size());
  out.block = s.block * rank;

  // Materialize group by group: out_block = sum_e block_e (x) U(i_mode(e),:)
  std::size_t begin = 0;
  while (begin < n_entries) {
    std::size_t end = begin + 1;
    while (end < n_entries && same_group(order[begin], order[end])) ++end;

    std::size_t out_k = 0;
    for (std::size_t k = 0; k < s.sparse_modes.size(); ++k) {
      if (k == pos) continue;
      out.idx[out_k++].push_back(s.idx[k][order[begin]]);
    }
    const std::size_t base = out.values.size();
    out.values.resize(base + out.block, 0.0);
    double* dst = out.values.data() + base;
    for (std::size_t g = begin; g < end; ++g) {
      const std::uint32_t e = order[g];
      const double* blk = s.values.data() + std::size_t{e} * s.block;
      const auto urow = u.row(s.idx[pos][e]);
      for (std::size_t b = 0; b < s.block; ++b) {
        const double v = blk[b];
        double* cell = dst + b * rank;
        for (std::size_t r = 0; r < rank; ++r) cell[r] += v * urow[r];
      }
    }
    begin = end;
  }
  return out;
}

}  // namespace met_detail

HooiResult hooi_met_baseline(const CooTensor& x, const HooiOptions& options) {
  validate_hooi_options(x, options);
  HT_CHECK_MSG(x.nnz() < (tensor::nnz_t{1} << 32),
               "MET baseline limited to 2^32 nonzeros");
  parallel::ThreadScope threads(options.num_threads);

  const std::size_t order = x.order();
  HooiResult result;

  std::vector<la::Matrix> factors =
      options.init == HooiInit::kRandom
          ? random_orthonormal_factors(x.shape(), options.ranks, options.seed)
          : randomized_range_factors(x, options.ranks, options.seed);

  const double x_norm2 = x.norm2_squared();
  const met_detail::SemiSparse lifted = met_detail::lift(x);

  la::Matrix y;
  la::Matrix last_compact_u;
  std::vector<index_t> rows;
  double previous_fit = -1.0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (std::size_t n = 0; n < order; ++n) {
      WallTimer t_ttmc;
      // Materialized TTM chain over all modes but n, in increasing order —
      // the dense block dimension ordering then matches ttmc_mode's.
      met_detail::SemiSparse z = lifted;
      for (std::size_t t = 0; t < order; ++t) {
        if (t == n) continue;
        z = met_detail::ttm_contract(z, t, factors[t]);
      }
      // z is now sparse in mode n only: gather rows of Y(n).
      HT_CHECK(z.sparse_modes.size() == 1 && z.sparse_modes[0] == n);
      const std::size_t n_entries = z.entries();
      std::vector<std::uint32_t> order_rows(n_entries);
      std::iota(order_rows.begin(), order_rows.end(), 0);
      std::sort(order_rows.begin(), order_rows.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return z.idx[0][a] < z.idx[0][b];
                });
      rows.clear();
      y.resize_zero(0, 0);
      // First pass: count distinct rows.
      for (std::size_t e = 0; e < n_entries; ++e) {
        if (e == 0 || z.idx[0][order_rows[e]] != z.idx[0][order_rows[e - 1]]) {
          rows.push_back(z.idx[0][order_rows[e]]);
        }
      }
      y.resize_zero(rows.size(), z.block);
      std::size_t r = 0;
      for (std::size_t e = 0; e < n_entries; ++e) {
        const std::uint32_t ord = order_rows[e];
        if (e > 0 && z.idx[0][ord] != z.idx[0][order_rows[e - 1]]) ++r;
        const double* blk = z.values.data() + std::size_t{ord} * z.block;
        auto dst = y.row(r);
        for (std::size_t b = 0; b < z.block; ++b) dst[b] += blk[b];
      }
      result.timers.ttmc += t_ttmc.seconds();

      WallTimer t_trsvd;
      FactorTrsvd svd = trsvd_factor(y, rows, x.dim(n), options.ranks[n],
                                     options.trsvd_method, options.trsvd);
      result.timers.trsvd += t_trsvd.seconds();
      factors[n] = std::move(svd.factor);
      if (n + 1 == order) last_compact_u = std::move(svd.compact_u);
    }

    WallTimer t_core;
    const la::Matrix g_mat = la::gemm_tn(last_compact_u, y);
    tensor::Shape core_shape(options.ranks.begin(), options.ranks.end());
    result.decomposition.core =
        tensor::DenseTensor::dematricize(g_mat, core_shape, order - 1);
    result.timers.core += t_core.seconds();

    const double core_norm = result.decomposition.core.frobenius_norm();
    const double fit = fit_from_core_norm(x_norm2, core_norm * core_norm);
    result.fits.push_back(fit);
    result.iterations = iter + 1;

    if (previous_fit >= 0.0 &&
        std::abs(fit - previous_fit) < options.fit_tolerance) {
      result.converged = true;
      break;
    }
    previous_fit = fit;
  }

  result.decomposition.factors = std::move(factors);
  return result;
}

}  // namespace ht::core
