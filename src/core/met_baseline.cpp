#include "core/met_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "core/hosvd.hpp"
#include "la/blas.hpp"
#include "parallel/thread_info.hpp"
#include "tensor/semi_sparse.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace ht::core {

HooiResult hooi_met_baseline(const CooTensor& x, const HooiOptions& options) {
  validate_hooi_options(x, options);
  parallel::ThreadScope threads(options.num_threads);

  const std::size_t order = x.order();
  HooiResult result;

  std::vector<la::Matrix> factors =
      options.init == HooiInit::kRandom
          ? random_orthonormal_factors(x.shape(), options.ranks, options.seed)
          : randomized_range_factors(x, options.ranks, options.seed);

  const double x_norm2 = x.norm2_squared();
  const tensor::SemiSparse lifted = tensor::SemiSparse::lift(x);

  la::Matrix y;
  la::Matrix last_compact_u;
  std::vector<index_t> rows;
  double previous_fit = -1.0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (std::size_t n = 0; n < order; ++n) {
      WallTimer t_ttmc;
      // Materialized TTM chain over all modes but n, in increasing order —
      // the dense block dimension ordering then matches ttmc_mode's. Each
      // ttm_contract builds its merge plan from scratch: MET's cost model,
      // unlike the dimension-tree scheduler which builds plans once.
      tensor::SemiSparse z = lifted;
      for (std::size_t t = 0; t < order; ++t) {
        if (t == n) continue;
        z = tensor::ttm_contract(z, t, factors[t]);
      }
      // z is now sparse in mode n only, merged and sorted by row index (the
      // contraction orders groups by the surviving coordinates): its
      // entries are exactly the compact rows of Y(n).
      HT_CHECK(z.sparse_modes.size() == 1 && z.sparse_modes[0] == n);
      rows.assign(z.idx[0].begin(), z.idx[0].end());
      y.resize(z.entries(), z.block);
      std::copy(z.values.begin(), z.values.end(), y.data());
      result.timers.ttmc += t_ttmc.seconds();

      WallTimer t_trsvd;
      FactorTrsvd svd = trsvd_factor(y, rows, x.dim(n), options.ranks[n],
                                     options.trsvd_method, options.trsvd);
      result.timers.trsvd += t_trsvd.seconds();
      factors[n] = std::move(svd.factor);
      if (n + 1 == order) last_compact_u = std::move(svd.compact_u);
    }

    WallTimer t_core;
    const la::Matrix g_mat = la::gemm_tn(last_compact_u, y);
    tensor::Shape core_shape(options.ranks.begin(), options.ranks.end());
    result.decomposition.core =
        tensor::DenseTensor::dematricize(g_mat, core_shape, order - 1);
    result.timers.core += t_core.seconds();

    const double core_norm = result.decomposition.core.frobenius_norm();
    const double fit = fit_from_core_norm(x_norm2, core_norm * core_norm);
    result.fits.push_back(fit);
    result.iterations = iter + 1;

    if (previous_fit >= 0.0 &&
        std::abs(fit - previous_fit) < options.fit_tolerance) {
      result.converged = true;
      break;
    }
    previous_fit = fit;
  }

  result.decomposition.factors = std::move(factors);
  return result;
}

}  // namespace ht::core
