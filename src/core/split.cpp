#include "core/split.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/random.hpp"

namespace ht::core {

TensorSplit split_tensor(const CooTensor& x, const SplitOptions& options) {
  if (options.validation_fraction < 0.0 || options.validation_fraction >= 1.0 ||
      options.test_fraction < 0.0 || options.test_fraction >= 1.0) {
    throw InvalidArgument("split fractions must lie in [0, 1)");
  }
  if (options.validation_fraction + options.test_fraction >= 1.0) {
    throw InvalidArgument("validation + test fractions must leave room for "
                          "training data");
  }
  const nnz_t n = x.nnz();
  const auto part_size = [n](double frac) {
    return static_cast<nnz_t>(std::llround(frac * static_cast<double>(n)));
  };
  const nnz_t n_test = part_size(options.test_fraction);
  const nnz_t n_val = part_size(options.validation_fraction);
  if (n_test + n_val >= n) {
    throw InvalidArgument("split leaves no training nonzeros");
  }

  // Seeded Fisher-Yates over the ordinals; the prefix becomes the held-out
  // parts. Test before validation so the test set is invariant under
  // changes to validation_fraction (the same holdout scores models trained
  // with and without early stopping).
  std::vector<nnz_t> perm(n);
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  Rng rng(options.seed ^ 0x5b117c0a1e5ce7ULL);
  for (nnz_t i = n; i-- > 1;) {
    const nnz_t j = rng.below(i + 1);
    std::swap(perm[i], perm[j]);
  }

  TensorSplit split;
  split.test_ids.assign(perm.begin(), perm.begin() + n_test);
  split.validation_ids.assign(perm.begin() + n_test,
                              perm.begin() + n_test + n_val);
  split.train_ids.assign(perm.begin() + n_test + n_val, perm.end());
  std::sort(split.test_ids.begin(), split.test_ids.end());
  std::sort(split.validation_ids.begin(), split.validation_ids.end());
  std::sort(split.train_ids.begin(), split.train_ids.end());

  split.train = x.select(split.train_ids);
  split.validation = x.select(split.validation_ids);
  split.test = x.select(split.test_ids);
  return split;
}

}  // namespace ht::core
