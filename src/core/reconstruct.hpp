// Model-reconstruction contraction kernels — the single implementation
// behind every "evaluate the Tucker model" path: train-time
// TuckerDecomposition::reconstruct_at/reconstruct_dense, the serve-time
// ServeModel/QueryEngine point and top-k queries, and fit_exact.
//
// A point query
//   Xhat(i_0, ..., i_{N-1}) = sum_r G(r) * prod_n U_n(i_n, r_n)
// is evaluated by *sequential* contraction instead of a full core walk:
//
//   1. contract the ENTITY mode e (default 0) against U_e(i_e, :) — an
//      R_e x S gemv over the mode-e unfolding of G — leaving a slice over
//      the remaining modes (~prod R flops, the only rank-product-sized
//      step, and exactly what the serve layer caches per hot user);
//   2. contract the remaining modes trailing-first (in-place, each step
//      shrinks the slice by one rank factor);
//   3. finish with a rank-sized dot product against the first remaining
//      mode's factor row.
//
// Every kernel fixes the floating-point summation order (ascending rank
// index per output element), so a query answered from a cached step-1 slice
// is bit-identical to an uncached one, a batched query is bit-identical to
// a sequential one, and a view-backed (mmap'd) model answers bit-identically
// to the owned model it was saved from.
//
// All kernels are allocation-free given a caller-provided (or thread-local)
// ReconstructWorkspace whose buffers grow monotonically and are reused
// across calls — reconstruct_at is the serving hot path and must not touch
// the allocator per query.
#pragma once

#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/types.hpp"

namespace ht::core {

using tensor::index_t;

/// Reusable scratch for the contraction kernels. Buffers only ever grow;
/// steady-state queries allocate nothing.
struct ReconstructWorkspace {
  std::vector<double> slice;       // in-place step-2 contraction buffer
  std::vector<double> entity;      // step-1 entity-slice buffer
  std::vector<index_t> dims;       // live mode sizes of `slice`
  std::vector<double> vec;         // top-k mode-vector scratch

  /// Thread-local instance used by the workspace-free convenience
  /// overloads (TuckerDecomposition::reconstruct_at and fit_exact).
  static ReconstructWorkspace& tls();
};

/// Number of elements of an entity slice: prod of core dims except `mode`.
std::size_t slice_size(const tensor::Shape& core_shape, std::size_t mode);

/// Step 1 for entity mode 0 — and the shared inner kernel for any
/// precomputed unfolding: out[q] = sum_r row[r] * unfold[r*cols + q] with
/// `unfold` an (row.size() x cols) row-major matrix. The mode-0 unfolding
/// of the core is its flat buffer, so the train-time path passes
/// core.flat() directly; ServeModel passes its precomputed per-mode
/// unfoldings. Ascending-r summation order per output element.
void contract_unfolding(std::span<const double> unfold,
                        std::span<const double> row, std::span<double> out);

/// Step 1 for an arbitrary entity mode, working on the core's natural
/// layout (row-major, last mode fastest) without materializing an
/// unfolding. `out` holds the slice over the remaining modes in increasing
/// mode order, last fastest — identical layout and bit-identical values to
/// contract_unfolding over the mode-`mode` unfolding.
void contract_entity(std::span<const double> core,
                     const tensor::Shape& core_shape, std::size_t mode,
                     std::span<const double> row, std::span<double> out);

/// Steps 2+3: collapse an entity slice to a scalar. `idx` are the FULL
/// query coordinates (order entries); the entity coordinate idx[entity] is
/// ignored. Contracts the remaining modes trailing-first against the
/// corresponding factor rows, then dots with the first remaining mode's
/// row.
double score_slice(std::span<const double> slice,
                   const tensor::Shape& core_shape, std::size_t entity,
                   std::span<const la::Matrix> factors,
                   std::span<const index_t> idx, ReconstructWorkspace& ws);

/// Steps 2+3 stopping one mode short: collapse an entity slice to a vector
/// over mode `target`'s rank by contracting every remaining mode except
/// `target` (trailing-first, same order as score_slice). The top-k kernel:
/// the score of item i is then dot(out, U_target.row(i)), bit-identical to
/// score_slice at the same coordinates when `target` is the first
/// remaining mode. idx[entity] and idx[target] are ignored.
void slice_mode_vector(std::span<const double> slice,
                       const tensor::Shape& core_shape, std::size_t entity,
                       std::size_t target,
                       std::span<const la::Matrix> factors,
                       std::span<const index_t> idx, ReconstructWorkspace& ws,
                       std::span<double> out);

/// Full point query via steps 1-3 (entity mode 0). The implementation
/// behind TuckerDecomposition::reconstruct_at and the uncached serve path.
double reconstruct_at(const tensor::DenseTensor& core,
                      std::span<const la::Matrix> factors,
                      std::span<const index_t> idx, ReconstructWorkspace& ws);

}  // namespace ht::core
