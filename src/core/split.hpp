// Deterministic seeded train/validation/test splitting of a sparse tensor.
//
// Completion training (core/completion.hpp) needs held-out nonzeros that
// the model never sees: a validation set steering early stopping and a test
// set scoring the final model. The split is a seeded Fisher-Yates shuffle
// of the nonzero ordinals followed by a prefix cut, so it
//   - is a function of (nnz, fractions, seed) only — bit-identical across
//     runs, platforms, and thread counts;
//   - partitions the nonzeros exactly (every ordinal lands in exactly one
//     part, none are lost or duplicated);
//   - hits the requested fractions to within rounding (the part sizes are
//     llround(frac * nnz), not per-entry coin flips with binomial spread).
//
// The ordinal lists are returned sorted ascending, so each part preserves
// the source tensor's nonzero order (CooTensor::select keeps the order it
// is given) — predictions and evaluation sums are then reproducible
// regardless of how the shuffle scattered the ordinals.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/coo_tensor.hpp"

namespace ht::core {

using tensor::CooTensor;
using tensor::nnz_t;

struct SplitOptions {
  /// Fraction of nonzeros held out for early stopping (0 = no validation
  /// part; completion then stops on the training objective alone).
  double validation_fraction = 0.0;
  /// Fraction of nonzeros held out for final scoring.
  double test_fraction = 0.1;
  std::uint64_t seed = 42;
};

struct TensorSplit {
  CooTensor train;
  CooTensor validation;  // empty tensor when validation_fraction == 0
  CooTensor test;        // empty tensor when test_fraction == 0

  /// Ordinals into the source tensor, each sorted ascending; together a
  /// partition of [0, nnz).
  std::vector<nnz_t> train_ids;
  std::vector<nnz_t> validation_ids;
  std::vector<nnz_t> test_ids;
};

/// Split the nonzeros of `x` into train / validation / test parts. Throws
/// ht::InvalidArgument when a fraction is outside [0, 1), the fractions sum
/// to >= 1, or the training part would come out empty.
TensorSplit split_tensor(const CooTensor& x, const SplitOptions& options);

}  // namespace ht::core
