// First-class trained-model container: the serve-time counterpart of the
// loose HooiResult/TuckerDecomposition field access.
//
// A TuckerModel bundles everything a downstream consumer (the CLI, the
// examples, the future tuckerd serving daemon) needs to answer queries
// without re-deriving context from the training call site: the
// decomposition itself, the original tensor dimensions, the achieved fit,
// build provenance (which build produced it, from util/version.hpp), and —
// optionally — the per-mode CSF patterns of the training tensor so a serve
// or restart process can run kCsf TTMc without re-sorting the data.
//
// Models round-trip through the versioned binary bundle format of
// storage/bundle.hpp: save_bundle() writes every array verbatim,
// load_bundle() restores them either heap-owned (LoadMode::kCopy) or as
// zero-copy views into an mmap'd file (LoadMode::kMap) — bit-identical
// either way.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/hooi.hpp"
#include "core/tucker.hpp"
#include "tensor/alto.hpp"
#include "tensor/csf.hpp"

namespace ht::core {

struct TuckerModel {
  TuckerDecomposition decomposition;
  /// Shape of the tensor the model was trained on.
  tensor::Shape dims;
  /// Final training fit 1 - ||X - Xhat|| / ||X||.
  double fit = 0.0;
  /// Ordered key/value provenance: build info (version, git hash, compiler,
  /// flags) plus trainer-supplied entries (iterations, seed, ...).
  std::vector<std::pair<std::string, std::string>> provenance;
  /// Optional per-mode CSF patterns (+values) of the training tensor;
  /// shared_ptr so serve-time readers can alias one tree set.
  std::shared_ptr<const tensor::CsfTensor> csf;
  /// Optional linearized (ALTO) form of the training tensor — one sorted
  /// key/value array serving every mode's kAlto TTMc; shared_ptr for the
  /// same serve-time aliasing.
  std::shared_ptr<const tensor::AltoTensor> alto;

  [[nodiscard]] std::size_t order() const { return decomposition.order(); }
  [[nodiscard]] std::vector<tensor::index_t> ranks() const {
    return decomposition.ranks();
  }
  [[nodiscard]] bool has_csf() const { return csf != nullptr; }
  [[nodiscard]] bool has_alto() const { return alto != nullptr; }

  /// Model value at one coordinate (the serving query primitive).
  [[nodiscard]] double reconstruct_at(std::span<const tensor::index_t> idx) const {
    return decomposition.reconstruct_at(idx);
  }

  /// Provenance lookup; empty string when the key is absent.
  [[nodiscard]] std::string provenance_value(const std::string& key) const;

  /// One provenance line per entry, "key=value".
  [[nodiscard]] std::string provenance_text() const;

  /// Package a finished HOOI run: captures dims from `x`, the final fit,
  /// and stamps build provenance. Steals nothing — the result keeps its
  /// decomposition (copied); pass `std::move(result.decomposition)` via the
  /// second overload to avoid the copy.
  static TuckerModel from_hooi(const tensor::CooTensor& x,
                               const HooiResult& result);
  static TuckerModel from_hooi(const tensor::CooTensor& x, HooiResult&& result);

  /// Build-provenance entries alone (version/git/compiler/flags), the
  /// prefix every construction path shares.
  static std::vector<std::pair<std::string, std::string>> build_provenance();
};

}  // namespace ht::core
