#include "core/trsvd.hpp"

#include <algorithm>

#include "la/linear_operator.hpp"
#include "la/qr.hpp"
#include "util/error.hpp"

namespace ht::core {

FactorTrsvd trsvd_factor(const la::Matrix& y, std::span<const index_t> rows,
                         index_t dim, std::size_t rank, TrsvdMethod method,
                         const la::TrsvdOptions& options) {
  HT_CHECK_MSG(rank >= 1, "rank must be positive");
  HT_CHECK_MSG(rank <= dim, "rank " << rank << " exceeds mode size " << dim);
  HT_CHECK_MSG(y.rows() == rows.size(), "compact row map arity mismatch");

#ifndef NDEBUG
  // Debug-only: HOOI calls this once per mode per iteration with the
  // symbolic row map, which is fixed at symbolic construction; a serial
  // O(|J_n|) scan per call sits needlessly in the per-mode hot path (same
  // bug class as the subset bounds scan ttmc_mode_subset used to pay).
  // Callers own the contract; CI's Debug job keeps the check live.
  for (index_t r : rows) {
    HT_CHECK_MSG(r < dim, "compact row index out of range");
  }
#endif

  FactorTrsvd out;

  // The compact problem can only deliver min(y.rows, y.cols) directions;
  // remaining columns are completed over the empty rows afterwards.
  const std::size_t solvable =
      std::min({rank, y.rows(), y.cols()});

  la::TrsvdResult solved;
  if (solvable >= 1) {
    if (method == TrsvdMethod::kLanczos) {
      la::DenseOperator op(y);
      solved = la::lanczos_trsvd(op, solvable, options);
    } else {
      solved = la::gram_trsvd(y, solvable);
    }
  }
  out = scatter_trsvd_solution(solved, solvable, rows, dim, rank);
  return out;
}

FactorTrsvd scatter_trsvd_solution(const la::TrsvdResult& solved,
                                   std::size_t solvable,
                                   std::span<const index_t> rows, index_t dim,
                                   std::size_t rank) {
  FactorTrsvd out;
  out.solver_steps = solved.steps;

  out.sigma.assign(rank, 0.0);
  std::copy(solved.sigma.begin(), solved.sigma.end(), out.sigma.begin());

  out.factor.resize_zero(dim, rank);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t j = 0; j < solvable; ++j) {
      out.factor(rows[r], j) = solved.u(r, j);
    }
  }

  if (solvable < rank || !solved.converged) {
    // Rank-deficient or unconverged compact problem: make sure the factor
    // still has orthonormal columns (HOOI's fit formula depends on it).
    la::orthonormalize_columns(out.factor);
  }

  out.compact_u.resize_zero(rows.size(), rank);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t j = 0; j < rank; ++j) {
      out.compact_u(r, j) = out.factor(rows[r], j);
    }
  }
  return out;
}

}  // namespace ht::core
