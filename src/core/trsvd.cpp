#include "core/trsvd.hpp"

#include <algorithm>
#include <cmath>

#include "la/block_lanczos.hpp"
#include "la/linear_operator.hpp"
#include "la/qr.hpp"
#include "la/randomized_trsvd.hpp"
#include "util/error.hpp"

namespace ht::core {

namespace {

// Calibrated cost-model constants (see resolve_trsvd_method docs).
//
// Problems whose compact Y(n) fits comfortably in cache gain nothing from
// blocking — the scalar solver converges in fewer effective passes and has
// the lowest per-step constant.
constexpr std::size_t kSmallProblemEntries = std::size_t{1} << 18;
// Below this tolerance the fixed-budget randomized sketch cannot be
// trusted to hit the target; the iterate-to-tolerance block solver takes
// over.
constexpr double kRandomizedTolFloor = 1e-9;
// Memory-traffic charge per streamed Y(n) entry, in flop-equivalents: a
// full pass over Y(n) costs m*c*(kPassMemCharge + 2*width). Calibrated on
// the bench_ablation TRSVD arm (400k x 100): it reproduces the measured
// ~4x gap in per-pass throughput between the width-1 gemv stream and the
// width-18 gemm.
constexpr double kPassMemCharge = 8.0;

std::size_t default_block(std::size_t rank, const la::TrsvdOptions& options) {
  return options.block_size > 0 ? options.block_size
                                : std::clamp<std::size_t>(rank, 4, 16);
}

std::size_t estimated_lanczos_steps(std::size_t cols, std::size_t rank) {
  return std::min(cols, std::max<std::size_t>(2 * rank + 20, 30));
}

// One full pass over Y(n) carrying `width` vectors: stream + flops.
double pass_cost(double m, double c, double width) {
  return m * c * (kPassMemCharge + 2.0 * width);
}

}  // namespace

double trsvd_method_cost(TrsvdMethod method, std::size_t rows,
                         std::size_t cols, std::size_t rank,
                         const la::TrsvdOptions& options) {
  const auto m = static_cast<double>(rows);
  const auto c = static_cast<double>(cols);
  const auto r = static_cast<double>(rank);
  const auto steps = static_cast<double>(estimated_lanczos_steps(cols, rank));
  switch (method) {
    case TrsvdMethod::kLanczos:
      // Two width-1 passes per step plus the recovery passes.
      return (2.0 * steps + r) * pass_cost(m, c, 1.0);
    case TrsvdMethod::kGram:
      // One width-c pass forming Y^T Y plus the recovery gemm.
      return pass_cost(m, c, c) + pass_cost(m, c, r);
    case TrsvdMethod::kRandomized: {
      const auto l = static_cast<double>(
          std::min(cols, rank + options.oversample));
      const auto q = static_cast<double>(options.power_iterations);
      // 2q+2 block passes, the whitening gemms (8 m l^2 per two-pass
      // orthonormalization), and the final rotation.
      return (2.0 * q + 2.0) * pass_cost(m, c, l) +
             (q + 2.0) * 8.0 * m * l * l + 2.0 * m * l * r;
    }
    case TrsvdMethod::kBlockLanczos: {
      const auto b = static_cast<double>(default_block(rank, options));
      const double block_steps = std::ceil(steps / b);
      // Two block passes per step, the row-space orthonormalization and
      // cross-Gram (10 m b^2 per step), and the recovery pass.
      return block_steps * (2.0 * pass_cost(m, c, b) + 10.0 * m * b * b) +
             pass_cost(m, c, r);
    }
    case TrsvdMethod::kAuto:
      break;
  }
  HT_CHECK_MSG(false, "trsvd_method_cost called with kAuto");
  return 0.0;
}

TrsvdMethod resolve_trsvd_method(TrsvdMethod method, std::size_t rows,
                                 std::size_t cols, std::size_t rank,
                                 const la::TrsvdOptions& options) {
  if (method != TrsvdMethod::kAuto) return method;
  // Small problems: every backend is sub-millisecond and the scalar
  // solver's constant is lowest (measured on the bench_ablation small-mode
  // control) — stay within noise of kLanczos.
  if (rows * cols <= kSmallProblemEntries) return TrsvdMethod::kLanczos;
  // Tight tolerances need an iterate-to-tolerance Krylov solver; the
  // randomized sketch's accuracy is capped by its fixed budget.
  if (options.tol < kRandomizedTolFloor) return TrsvdMethod::kBlockLanczos;
  // ALS-grade tolerances on large problems: randomized subspace iteration
  // makes the fewest passes over Y(n) (2q+2 versus 2*steps/b) and measures
  // fastest; the cost model agrees wherever the pass counts differ.
  const double rand_cost =
      trsvd_method_cost(TrsvdMethod::kRandomized, rows, cols, rank, options);
  const double block_cost = trsvd_method_cost(TrsvdMethod::kBlockLanczos,
                                              rows, cols, rank, options);
  return rand_cost <= block_cost ? TrsvdMethod::kRandomized
                                 : TrsvdMethod::kBlockLanczos;
}

std::optional<TrsvdMethod> parse_trsvd_method(std::string_view name) {
  if (name == "lanczos") return TrsvdMethod::kLanczos;
  if (name == "gram") return TrsvdMethod::kGram;
  if (name == "block" || name == "block-lanczos") {
    return TrsvdMethod::kBlockLanczos;
  }
  if (name == "rand" || name == "randomized") return TrsvdMethod::kRandomized;
  if (name == "auto") return TrsvdMethod::kAuto;
  return std::nullopt;
}

const char* trsvd_method_name(TrsvdMethod method) {
  switch (method) {
    case TrsvdMethod::kLanczos: return "lanczos";
    case TrsvdMethod::kGram: return "gram";
    case TrsvdMethod::kBlockLanczos: return "block";
    case TrsvdMethod::kRandomized: return "rand";
    case TrsvdMethod::kAuto: return "auto";
  }
  return "?";
}

la::TrsvdResult run_trsvd_backend(la::TrsvdOperator& op, TrsvdMethod method,
                                  std::size_t rank,
                                  const la::TrsvdOptions& options) {
  switch (method) {
    case TrsvdMethod::kLanczos:
      return la::lanczos_trsvd(op, rank, options);
    case TrsvdMethod::kBlockLanczos:
      return la::block_lanczos_trsvd(op, rank, options);
    case TrsvdMethod::kRandomized:
      return la::randomized_trsvd(op, rank, options);
    case TrsvdMethod::kGram:
    case TrsvdMethod::kAuto:
      break;
  }
  HT_CHECK_MSG(false, "run_trsvd_backend needs a resolved matrix-free method");
  return {};
}

FactorTrsvd trsvd_factor(const la::Matrix& y, std::span<const index_t> rows,
                         index_t dim, std::size_t rank, TrsvdMethod method,
                         const la::TrsvdOptions& options) {
  HT_CHECK_MSG(rank >= 1, "rank must be positive");
  HT_CHECK_MSG(rank <= dim, "rank " << rank << " exceeds mode size " << dim);
  HT_CHECK_MSG(y.rows() == rows.size(), "compact row map arity mismatch");

#ifndef NDEBUG
  // Debug-only: HOOI calls this once per mode per iteration with the
  // symbolic row map, which is fixed at symbolic construction; a serial
  // O(|J_n|) scan per call sits needlessly in the per-mode hot path (same
  // bug class as the subset bounds scan ttmc_mode_subset used to pay).
  // Callers own the contract; CI's Debug job keeps the check live.
  for (index_t r : rows) {
    HT_CHECK_MSG(r < dim, "compact row index out of range");
  }
#endif

  // The compact problem can only deliver min(y.rows, y.cols) directions;
  // remaining columns are completed over the empty rows afterwards.
  const std::size_t solvable = std::min({rank, y.rows(), y.cols()});
  const TrsvdMethod resolved =
      resolve_trsvd_method(method, y.rows(), y.cols(), solvable, options);

  la::TrsvdResult solved;
  if (solvable >= 1) {
    if (resolved == TrsvdMethod::kGram) {
      solved = la::gram_trsvd(y, solvable);
    } else {
      la::DenseOperator op(y);
      solved = run_trsvd_backend(op, resolved, solvable, options);
    }
  }
  FactorTrsvd out = scatter_trsvd_solution(solved, solvable, rows, dim, rank);
  out.method_used = resolved;
  return out;
}

FactorTrsvd scatter_trsvd_solution(const la::TrsvdResult& solved,
                                   std::size_t solvable,
                                   std::span<const index_t> rows, index_t dim,
                                   std::size_t rank) {
  FactorTrsvd out;
  out.solver_steps = solved.steps;

  out.sigma.assign(rank, 0.0);
  std::copy(solved.sigma.begin(), solved.sigma.end(), out.sigma.begin());

  // O(|J_n|*R) per mode per HOOI iteration; rows are distinct by the
  // compact-row-map contract, so the scatter is race-free.
  const std::size_t nrows = rows.size();
  const bool par = la::blas_threading() && nrows * rank >= (std::size_t{1} << 14);
  out.factor.resize_zero(dim, rank);
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t r = 0; r < nrows; ++r) {
    for (std::size_t j = 0; j < solvable; ++j) {
      out.factor(rows[r], j) = solved.u(r, j);
    }
  }

  if (solvable < rank || !solved.converged) {
    // Rank-deficient or unconverged compact problem: make sure the factor
    // still has orthonormal columns (HOOI's fit formula depends on it).
    la::orthonormalize_columns(out.factor);
  }

  out.compact_u.resize_zero(nrows, rank);
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t r = 0; r < nrows; ++r) {
    for (std::size_t j = 0; j < rank; ++j) {
      out.compact_u(r, j) = out.factor(rows[r], j);
    }
  }
  return out;
}

}  // namespace ht::core
