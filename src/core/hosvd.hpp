// Factor matrix initialization for HOOI.
//
// The paper initializes "randomly or using the higher-order SVD". A true
// sparse HOSVD would need singular vectors of X(n) whose column dimension is
// prod of the other mode sizes — astronomically large for the paper's
// tensors — so alongside plain random-orthonormal init we provide a
// randomized range-finder init: Y_n = X(n) * Omega with an *implicit*
// Rademacher sketch Omega whose rows are generated on the fly from a hash of
// the (linearized) column index, so nothing of size prod(I_t) is ever
// materialized. orth(Y_n) approximates the leading left subspace of X(n).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"

namespace ht::core {

using tensor::CooTensor;
using tensor::index_t;

/// Independent random orthonormal factors, I_n x R_n each.
std::vector<la::Matrix> random_orthonormal_factors(
    const tensor::Shape& shape, std::span<const index_t> ranks,
    std::uint64_t seed);

/// Randomized range-finder approximation of the HOSVD factors.
/// `oversample` extra sketch columns improve the subspace before truncation.
std::vector<la::Matrix> randomized_range_factors(const CooTensor& x,
                                                 std::span<const index_t> ranks,
                                                 std::uint64_t seed,
                                                 std::size_t oversample = 4);

}  // namespace ht::core
