#include "core/dim_tree.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ht::core {

using tensor::PatternView;
using tensor::TtmPlan;

// ---- DimTreePlan -----------------------------------------------------------

DimTreePlan DimTreePlan::build(const CooTensor& x) {
  DimTreePlan plan;
  plan.order_ = x.order();
  HT_CHECK_MSG(plan.order_ >= 2, "dimension tree needs at least 2 modes");
  plan.split_ = (plan.order_ + 1) / 2;

  std::vector<std::size_t> base_modes;
  const PatternView base = PatternView::of(x, base_modes);

  // Contract a mode range out of X in increasing order with append layout:
  // the partial's block ends up ordered by increasing mode, fastest last —
  // the tail of ttmc_mode's Kronecker order.
  auto build_chain = [&](std::size_t lo, std::size_t hi) {
    std::vector<TtmPlan> chain;
    for (std::size_t t = lo; t < hi; ++t) {
      const PatternView cur =
          chain.empty() ? base : chain.back().out_pattern();
      chain.push_back(tensor::build_ttm_plan(cur, t, /*prepend=*/false));
    }
    return chain;
  };
  plan.contract_left_ = build_chain(0, plan.split_);
  plan.contract_right_ = build_chain(plan.split_, plan.order_);

  // Serve chains. A left mode prepends the remaining left factors in
  // decreasing mode order (they sit *before* the partial's right-mode ranks
  // in Y(n)'s layout); a right mode appends the remaining right factors in
  // increasing mode order. Either way the final groups are sorted by the
  // mode-n row index — the compact row order of ModeSymbolic.
  plan.serve_.resize(plan.order_);
  plan.serve_rows_.assign(plan.order_, 0);
  for (std::size_t n = 0; n < plan.order_; ++n) {
    const bool left = plan.in_left(n);
    const auto& partial_chain =
        left ? plan.contract_right_ : plan.contract_left_;
    std::vector<TtmPlan>& chain = plan.serve_[n];
    auto add_step = [&](std::size_t t, bool prepend) {
      const PatternView cur =
          chain.empty() ? partial_chain.back().out_pattern()
                        : chain.back().out_pattern();
      chain.push_back(tensor::build_ttm_plan(cur, t, prepend));
    };
    if (left) {
      for (std::size_t t = plan.split_; t-- > 0;) {
        if (t != n) add_step(t, /*prepend=*/true);
      }
    } else {
      for (std::size_t t = plan.split_; t < plan.order_; ++t) {
        if (t != n) add_step(t, /*prepend=*/false);
      }
    }
    plan.serve_rows_[n] =
        chain.empty() ? partial_chain.back().num_groups()
                      : chain.back().num_groups();
  }

  // The numeric applies never read output coordinates; keep only the final
  // steps' (tests inspect the served row ids) and drop the intermediates.
  auto shrink_chain = [](std::vector<TtmPlan>& chain) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) chain[i].shrink();
  };
  shrink_chain(plan.contract_left_);
  shrink_chain(plan.contract_right_);
  for (auto& chain : plan.serve_) shrink_chain(chain);
  return plan;
}

// Cost-model calibration (flop-equivalents per slot/nonzero). Flops alone
// misprice these kernels: they are memory-bound, and the per-element
// *indirection* traffic differs by path. A direct kernel chases nnz_order,
// a mode index, a value, and a random factor row per nonzero; a tree step
// chases src_entry + src_row per slot — except the leaf step of a partial
// build, whose values the scheduler pre-gathers into slot order once per
// run, leaving a sequential stream. Measured on bench_ablation arm 5, the
// tree's leaf pass runs ~1.5-2x faster per nonzero than a direct kernel
// pass at equal flops; these constants encode that asymmetry.
namespace {
constexpr double kSlotIndirectCost = 4.0;  // direct kernels, non-leaf steps
constexpr double kSlotGatheredCost = 2.0;  // pre-gathered leaf steps
}  // namespace

double DimTreePlan::chain_cost(const std::vector<TtmPlan>& chain,
                               std::size_t in_block,
                               std::span<const index_t> ranks,
                               bool leaf_gathered) {
  double cost = 0.0;
  double block = static_cast<double>(in_block);
  bool first = true;
  for (const TtmPlan& step : chain) {
    const auto rank = static_cast<double>(ranks[step.source_mode]);
    const auto slots = static_cast<double>(step.num_slots());
    // Accumulation over every slot plus the zero-and-write of the output,
    // plus the slot indirection traffic.
    cost += slots * block * rank +
            static_cast<double>(step.num_groups()) * block * rank +
            slots * (first && leaf_gathered ? kSlotGatheredCost
                                            : kSlotIndirectCost);
    block *= rank;
    first = false;
  }
  return cost;
}

double DimTreePlan::contract_cost(bool left,
                                  std::span<const index_t> ranks) const {
  return chain_cost(contract_chain(left), 1, ranks, /*leaf_gathered=*/true);
}

double DimTreePlan::serve_cost(std::size_t mode,
                               std::span<const index_t> ranks) const {
  const bool left = in_left(mode);
  std::size_t in_block = 1;
  if (left) {
    for (std::size_t t = split_; t < order_; ++t) in_block *= ranks[t];
  } else {
    for (std::size_t t = 0; t < split_; ++t) in_block *= ranks[t];
  }
  const auto& chain = serve_[mode];
  if (chain.empty()) {
    // Row gather only: one block copy per served row.
    return static_cast<double>(serve_rows_[mode]) *
           static_cast<double>(in_block);
  }
  return chain_cost(chain, in_block, ranks, /*leaf_gathered=*/false);
}

// ---- TtmcScheduler ---------------------------------------------------------

namespace {

// Cost estimate of the direct kernel ttmc_selected_kernel would run for
// the mode, including the zero-and-write of the compact output and the
// per-nonzero indirection charge (see the calibration constants above).
// Mirrors the kernels in ttmc.cpp: per-nnz pays the full Kronecker row per
// nonzero; fiber-factored pays the trailing rank per nonzero plus one
// expansion per (sub)fiber.
double direct_mode_cost(const ModeSymbolic& sym, std::size_t order,
                        std::size_t mode, std::span<const index_t> ranks,
                        const TtmcOptions& options,
                        const tensor::CsfTree* csf,
                        const tensor::AltoTensor* alto) {
  const auto nnz = static_cast<double>(sym.nnz_order.size());
  double width = 1.0;
  for (std::size_t t = 0; t < order; ++t) {
    if (t != mode) width *= static_cast<double>(ranks[t]);
  }
  const double rows_write = static_cast<double>(sym.num_rows()) * width;
  const double nnz_traffic = nnz * kSlotIndirectCost;
  const TtmcKernel kernel =
      ttmc_selected_kernel(sym, order, options, csf, alto);
  if (kernel == TtmcKernel::kAlto) {
    // Phase 1 pays the full Kronecker expansion per nonzero (like per-nnz)
    // but streams keys/values sequentially (the gathered traffic rate);
    // phase 2 adds one staged row per touched (partition, row) pair, at
    // most min(range, partition nnz) rows each.
    double merge_rows = 0.0;
    for (std::size_t p = 0; p < alto->num_partitions(); ++p) {
      const double range =
          static_cast<double>(alto->partition_max(p, mode) -
                              alto->partition_min(p, mode)) +
          1.0;
      merge_rows += std::min(range, static_cast<double>(alto->partition_nnz(p)));
    }
    return nnz * width + merge_rows * width + rows_write +
           nnz * kSlotGatheredCost;
  }
  if (kernel == TtmcKernel::kCsf) {
    // Every node at level d pays one expansion of its partial into its
    // parent's (width of the parent partial); leaves are the d = L-1 term.
    // Values and coordinates stream in tree order, so the traffic charge is
    // the pre-gathered one, like the tree scheduler's leaf pass.
    double cost = rows_write + nnz * kSlotGatheredCost;
    double level_width = width;  // parent-partial width at level d = 1
    for (std::size_t d = 1; d < csf->levels(); ++d) {
      cost += static_cast<double>(csf->num_nodes(d)) * level_width;
      level_width /= static_cast<double>(ranks[csf->level_modes[d]]);
    }
    return cost;
  }
  if (kernel == TtmcKernel::kPerNnz) {
    return nnz * width + rows_write + nnz_traffic;
  }
  std::size_t others[3];
  std::size_t count = 0;
  for (std::size_t t = 0; t < order; ++t) {
    if (t != mode) others[count++] = t;
  }
  const auto fibers = static_cast<double>(sym.num_fibers());
  if (order == 3) {
    return nnz * static_cast<double>(ranks[others[1]]) + fibers * width +
           rows_write + nnz_traffic;
  }
  const auto subfibers =
      static_cast<double>(sym.subfiber_ptr.empty()
                              ? 0
                              : sym.subfiber_ptr.size() - 1);
  return nnz * static_cast<double>(ranks[others[2]]) +
         subfibers * static_cast<double>(ranks[others[1]]) *
             static_cast<double>(ranks[others[2]]) +
         fibers * width + rows_write + nnz_traffic;
}

}  // namespace

TtmcScheduler::TtmcScheduler(const CooTensor& x, const SymbolicTtmc& symbolic,
                             const DimTreePlan* tree,
                             std::span<const index_t> ranks,
                             const TtmcOptions& options,
                             const tensor::CsfTensor* csf,
                             const tensor::AltoTensor* alto)
    : x_(&x),
      symbolic_(&symbolic),
      tree_(tree),
      csf_(csf),
      alto_(alto),
      ranks_(ranks.begin(), ranks.end()),
      options_(options) {
  const std::size_t order = x.order();
  HT_CHECK_MSG(symbolic.modes.size() == order,
               "symbolic structure does not match tensor");
  HT_CHECK_MSG(ranks_.size() == order, "need one rank per mode");
  HT_CHECK_MSG(csf_ == nullptr || csf_->order() == order,
               "CSF trees built for another tensor order");
  HT_CHECK_MSG(alto_ == nullptr || alto_->shape == x.shape(),
               "ALTO structure built for another shape");
  if (tree_ != nullptr) {
    HT_CHECK_MSG(tree_->order() == order, "tree plan built for another order");
    for (std::size_t n = 0; n < order; ++n) {
      HT_CHECK_MSG(tree_->serve_rows(n) == symbolic.modes[n].num_rows(),
                   "tree plan row count disagrees with symbolic for mode "
                       << n);
    }
  }
  select_strategies();
}

void TtmcScheduler::select_strategies() {
  const std::size_t order = symbolic_->modes.size();
  selected_.assign(order, TtmcStrategy::kDirect);
  direct_cost_.assign(order, 0.0);
  serve_cost_.assign(order, 0.0);
  for (std::size_t n = 0; n < order; ++n) {
    direct_cost_[n] = direct_mode_cost(symbolic_->modes[n], order, n, ranks_,
                                       options_, csf_tree(n), alto_);
  }
  if (tree_ == nullptr) {
    HT_CHECK_MSG(options_.strategy != TtmcStrategy::kTree,
                 "TtmcStrategy::kTree requires a DimTreePlan");
    return;
  }
  for (std::size_t n = 0; n < order; ++n) {
    serve_cost_[n] = tree_->serve_cost(n, ranks_);
  }
  if (options_.strategy == TtmcStrategy::kDirect) return;
  if (options_.strategy == TtmcStrategy::kTree) {
    selected_.assign(order, TtmcStrategy::kTree);
    return;
  }

  // kAuto: decide per group. A mode joins the served set only if its serve
  // step alone beats the direct kernel; the group then goes tree-served if
  // the shared partial build plus the serves still beat direct with a
  // safety margin (biasing ties toward direct keeps kAuto within noise of
  // direct on tensors where the tree cannot win).
  constexpr double kTreeSafety = 0.9;
  const std::size_t split = tree_->split();
  const struct {
    std::size_t lo, hi;
    bool left;
  } groups[2] = {{0, split, true}, {split, order, false}};
  for (const auto& g : groups) {
    double sum_serve = 0.0, sum_direct = 0.0;
    std::vector<std::size_t> chosen;
    for (std::size_t n = g.lo; n < g.hi; ++n) {
      if (serve_cost_[n] < direct_cost_[n]) {
        chosen.push_back(n);
        sum_serve += serve_cost_[n];
        sum_direct += direct_cost_[n];
      }
    }
    if (chosen.empty()) continue;
    // The partial serving this group contracts the *other* group's modes.
    const double build = tree_->contract_cost(/*left=*/!g.left, ranks_);
    if (build + sum_serve < kTreeSafety * sum_direct) {
      for (std::size_t n : chosen) selected_[n] = TtmcStrategy::kTree;
    }
  }
}

void TtmcScheduler::invalidate() {
  partial_[0].valid = false;
  partial_[1].valid = false;
}

void TtmcScheduler::refresh_partial(std::size_t side,
                                    const std::vector<la::Matrix>& factors) {
  const bool left_chain = side == 0;
  const auto& chain = tree_->contract_chain(left_chain);
  Partial& p = partial_[side];

  // Leaf level: pre-permute the (immutable) tensor values by the first
  // step's slot order once, so every rebuild streams them sequentially
  // instead of chasing src_entry per nonzero.
  std::vector<double>& leaf = leaf_values_[side];
  const TtmPlan& first = chain.front();
  if (leaf.size() != first.num_slots()) {
    leaf.resize(first.num_slots());
    const auto values = x_->values();
    for (std::size_t s = 0; s < leaf.size(); ++s) {
      leaf[s] = values[first.src_entry[s]];
    }
  }

  const bool dyn = options_.schedule == Schedule::kDynamic;
  std::size_t in_block = 1;
  const std::vector<double>* cur = &leaf;
  bool gathered = true;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const TtmPlan& step = chain[i];
    const la::Matrix& u = factors[step.source_mode];
    const std::size_t out_block = in_block * u.cols();
    std::vector<double>* dst =
        i + 1 == chain.size()
            ? &p.values
            : (cur == &chain_scratch_[0] ? &chain_scratch_[1]
                                         : &chain_scratch_[0]);
    dst->resize(step.num_groups() * out_block);
    tensor::ttm_apply(step, in_block, *cur, u, {dst->data(), dst->size()},
                      gathered, dyn);
    cur = dst;
    in_block = out_block;
    gathered = false;
  }
  p.block = in_block;
  p.valid = true;
}

void TtmcScheduler::serve(const std::vector<la::Matrix>& factors,
                          std::size_t mode, const std::uint32_t* positions,
                          std::size_t npos, la::Matrix& y) {
  const std::size_t side = serving_side(mode);
  if (!partial_[side].valid) refresh_partial(side, factors);
  const Partial& p = partial_[side];

  const bool dyn = options_.schedule == Schedule::kDynamic;
  const std::size_t width = ttmc_row_width(factors, mode);
  const std::size_t rows =
      positions != nullptr ? npos : tree_->serve_rows(mode);
  y.resize(rows, width);

  const auto& chain = tree_->serve_chain(mode);
  if (chain.empty()) {
    // Singleton group: the partial's groups are the compact Y(n) rows.
    HT_CHECK_MSG(p.block == width, "partial block width mismatch");
    if (positions == nullptr) {
      std::copy(p.values.begin(), p.values.end(), y.data());
    } else {
      const auto n = static_cast<std::ptrdiff_t>(npos);
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < n; ++i) {
        const double* src =
            p.values.data() +
            static_cast<std::size_t>(positions[i]) * p.block;
        std::copy(src, src + p.block,
                  y.row(static_cast<std::size_t>(i)).begin());
      }
    }
    return;
  }

  std::size_t in_block = p.block;
  const std::vector<double>* cur = &p.values;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    // Intermediate serve steps run over all groups even for a subset
    // request: only the final step knows which rows the caller owns.
    const TtmPlan& step = chain[i];
    const la::Matrix& u = factors[step.source_mode];
    const std::size_t out_block = in_block * u.cols();
    std::vector<double>* dst = cur == &chain_scratch_[0]
                                   ? &chain_scratch_[1]
                                   : &chain_scratch_[0];
    dst->resize(step.num_groups() * out_block);
    tensor::ttm_apply(step, in_block, *cur, u, {dst->data(), dst->size()},
                      /*gathered_input=*/false, dyn);
    cur = dst;
    in_block = out_block;
  }
  const TtmPlan& last = chain.back();
  const la::Matrix& u = factors[last.source_mode];
  HT_CHECK_MSG(in_block * u.cols() == width, "served row width mismatch");
  if (positions == nullptr) {
    tensor::ttm_apply(last, in_block, *cur, u, y.flat(),
                      /*gathered_input=*/false, dyn);
  } else {
    tensor::ttm_apply_subset(last, in_block, *cur, u, {positions, npos},
                             y.flat(), dyn);
  }
}

void TtmcScheduler::compute(const std::vector<la::Matrix>& factors,
                            std::size_t mode, la::Matrix& y) {
  if (selected_[mode] == TtmcStrategy::kTree) {
    serve(factors, mode, nullptr, 0, y);
  } else {
    ttmc_mode(*x_, factors, mode, symbolic_->modes[mode], y, options_,
              csf_tree(mode), alto_);
  }
  // The caller updates factors[mode] next (HOOI's contract): the partial
  // contracted over mode's own group goes stale. Conservative for callers
  // that do not update the factor — they just pay a rebuild.
  if (tree_ != nullptr) {
    partial_[tree_->in_left(mode) ? 0 : 1].valid = false;
  }
}

void TtmcScheduler::compute_subset(const std::vector<la::Matrix>& factors,
                                   std::size_t mode,
                                   std::span<const std::uint32_t> positions,
                                   la::Matrix& y) {
  if (selected_[mode] == TtmcStrategy::kTree) {
    serve(factors, mode, positions.data(), positions.size(), y);
  } else {
    ttmc_mode_subset(*x_, factors, mode, symbolic_->modes[mode], positions, y,
                     options_, csf_tree(mode), alto_);
  }
  if (tree_ != nullptr) {
    partial_[tree_->in_left(mode) ? 0 : 1].valid = false;
  }
}

}  // namespace ht::core
