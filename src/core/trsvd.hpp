// TRSVD step of HOOI: leading left singular vectors of the (compact)
// matricized TTMc result Y(n) (paper Section III-A.2).
//
// Four interchangeable backends sit behind TrsvdMethod:
//   kLanczos       matrix-free scalar Golub–Kahan–Lanczos (the paper's
//                  SLEPc substitute) — lowest constant, but every step is a
//                  bandwidth-bound gemv pass over Y(n);
//   kGram          eigendecomposition of Y^T Y (prod-of-ranks sized);
//                  cross-check/ablation only — the paper's argument against
//                  Gram methods concerns Y Y^T and, in the fine-grain
//                  distributed setting, any method that would require
//                  assembling Y(n);
//   kBlockLanczos  block bidiagonalization: b columns of Krylov progress
//                  per gemm-rich pass, iterates to tolerance;
//   kRandomized    HMT randomized subspace iteration: fixed budget of
//                  2q+2 block passes, accuracy set by oversampling/power
//                  iterations — the cheapest backend at ALS-grade
//                  tolerances;
//   kAuto          per-mode choice from the calibrated cost model in
//                  resolve_trsvd_method (the TRSVD analog of PR 3's
//                  TtmcStrategy::kAuto).
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "la/lanczos.hpp"
#include "la/matrix.hpp"
#include "tensor/types.hpp"

namespace ht::core {

using tensor::index_t;

enum class TrsvdMethod { kLanczos, kGram, kBlockLanczos, kRandomized, kAuto };

/// Resolve kAuto for a compact problem of `rows` x `cols` at the given
/// target rank (returns non-auto methods unchanged). The model is the one
/// the README documents: small problems (rows*cols under a cache-sized
/// threshold) stay on the scalar Lanczos solver whose constant is lowest;
/// large problems go to a gemm-rich blocked backend — randomized subspace
/// iteration at ALS-grade tolerances, block Lanczos when options.tol is
/// tight enough to need an iterate-to-tolerance solver — picked by modeled
/// pass counts over Y(n) (the dominant cost in the bandwidth-bound regime).
TrsvdMethod resolve_trsvd_method(TrsvdMethod method, std::size_t rows,
                                 std::size_t cols, std::size_t rank,
                                 const la::TrsvdOptions& options);

/// Modeled cost (flop-equivalents, memory-traffic charged) behind the
/// resolve_trsvd_method decision; exposed for tests and benches.
double trsvd_method_cost(TrsvdMethod method, std::size_t rows,
                         std::size_t cols, std::size_t rank,
                         const la::TrsvdOptions& options);

/// CLI/bench name <-> enum helpers ("lanczos", "gram", "block", "rand",
/// "auto"); parse returns nullopt on unknown names.
std::optional<TrsvdMethod> parse_trsvd_method(std::string_view name);
const char* trsvd_method_name(TrsvdMethod method);

/// Run a *matrix-free* backend (kLanczos/kBlockLanczos/kRandomized) over an
/// operator. Shared by the shared-memory dispatch below and the distributed
/// driver, so a new backend is wired in exactly one place. kGram (needs the
/// assembled matrix) and unresolved kAuto are programming errors here.
la::TrsvdResult run_trsvd_backend(la::TrsvdOperator& op, TrsvdMethod method,
                                  std::size_t rank,
                                  const la::TrsvdOptions& options);

struct FactorTrsvd {
  /// Full factor U_n: dim x rank, orthonormal columns. Rows outside the
  /// compact row set are zero (or canonical completions when the compact
  /// problem is rank-deficient).
  la::Matrix factor;
  /// Compact left singular vectors (rows.size() x rank) — the rows of
  /// `factor` at the compact row positions; the HOOI core step uses this.
  la::Matrix compact_u;
  std::vector<double> sigma;
  std::size_t solver_steps = 0;
  /// Backend that actually ran (kAuto resolved).
  TrsvdMethod method_used = TrsvdMethod::kLanczos;
};

/// Compute the leading `rank` left singular vectors of the compact matrix
/// `y` whose row r is global row rows[r] of the full (dim x y.cols())
/// matricized tensor, and scatter them into a dim x rank factor.
FactorTrsvd trsvd_factor(const la::Matrix& y, std::span<const index_t> rows,
                         index_t dim, std::size_t rank,
                         TrsvdMethod method = TrsvdMethod::kLanczos,
                         const la::TrsvdOptions& options = {});

/// Scatter an already-solved compact SVD (`solved.u`: rows.size() x
/// >=solvable) into a full dim x rank factor, completing rank-deficient or
/// unconverged solutions to orthonormal columns. This is the tail of
/// trsvd_factor, exposed so the distributed driver — which obtains
/// `solved` from a Lanczos run over a row-distributed operator — goes
/// through the exact same completion path as the shared-memory solver.
FactorTrsvd scatter_trsvd_solution(const la::TrsvdResult& solved,
                                   std::size_t solvable,
                                   std::span<const index_t> rows, index_t dim,
                                   std::size_t rank);

}  // namespace ht::core
