// TRSVD step of HOOI: leading left singular vectors of the (compact)
// matricized TTMc result Y(n) (paper Section III-A.2).
//
// Default method is the matrix-free Lanczos solver (the paper's SLEPc
// substitute). The Gram-matrix method — eigendecomposition of Y^T Y, which
// is only prod-of-ranks sized — is provided as a cross-check and ablation;
// the paper's argument against Gram methods concerns Y Y^T (I_n x I_n) and,
// in the fine-grain distributed setting, any method that would require
// assembling Y(n).
#pragma once

#include <span>
#include <vector>

#include "la/lanczos.hpp"
#include "la/matrix.hpp"
#include "tensor/types.hpp"

namespace ht::core {

using tensor::index_t;

enum class TrsvdMethod { kLanczos, kGram };

struct FactorTrsvd {
  /// Full factor U_n: dim x rank, orthonormal columns. Rows outside the
  /// compact row set are zero (or canonical completions when the compact
  /// problem is rank-deficient).
  la::Matrix factor;
  /// Compact left singular vectors (rows.size() x rank) — the rows of
  /// `factor` at the compact row positions; the HOOI core step uses this.
  la::Matrix compact_u;
  std::vector<double> sigma;
  std::size_t solver_steps = 0;
};

/// Compute the leading `rank` left singular vectors of the compact matrix
/// `y` whose row r is global row rows[r] of the full (dim x y.cols())
/// matricized tensor, and scatter them into a dim x rank factor.
FactorTrsvd trsvd_factor(const la::Matrix& y, std::span<const index_t> rows,
                         index_t dim, std::size_t rank,
                         TrsvdMethod method = TrsvdMethod::kLanczos,
                         const la::TrsvdOptions& options = {});

/// Scatter an already-solved compact SVD (`solved.u`: rows.size() x
/// >=solvable) into a full dim x rank factor, completing rank-deficient or
/// unconverged solutions to orthonormal columns. This is the tail of
/// trsvd_factor, exposed so the distributed driver — which obtains
/// `solved` from a Lanczos run over a row-distributed operator — goes
/// through the exact same completion path as the shared-memory solver.
FactorTrsvd scatter_trsvd_solution(const la::TrsvdResult& solved,
                                   std::size_t solvable,
                                   std::span<const index_t> rows, index_t dim,
                                   std::size_t rank);

}  // namespace ht::core
