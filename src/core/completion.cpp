#include "core/completion.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>

#include "core/hosvd.hpp"
#include "core/reconstruct.hpp"
#include "parallel/thread_info.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace ht::core {

namespace {

using tensor::Shape;

/// Fixed reduction granularity: every cross-nonzero sum is accumulated per
/// 8192-nonzero block and the block partials are combined in ascending
/// block order, so the result never depends on the thread count (same
/// discipline as la/blas.cpp's per-thread arenas, keyed on data position
/// instead of thread id).
constexpr nnz_t kReduceBlock = 8192;

std::size_t core_size(const Shape& ranks) {
  std::size_t s = 1;
  for (const index_t r : ranks) s *= r;
  return s;
}

/// Kronecker product of the factor rows at `idx`, laid out like the flat
/// core buffer (mode 0 slowest, last mode fastest):
///   buf[((r_0 R_1 + r_1) R_2 + ...)] = prod_n U_n(idx[n], r_n).
/// In-place expansion, descending source index, so no scratch is needed.
void kron_rows(std::span<const la::Matrix> factors,
               std::span<const index_t> idx, double* buf) {
  std::size_t len = 1;
  buf[0] = 1.0;
  for (std::size_t n = 0; n < factors.size(); ++n) {
    const auto row = factors[n].row(idx[n]);
    const std::size_t r_count = row.size();
    for (std::size_t p = len; p-- > 0;) {
      const double w = buf[p];
      double* out = buf + p * r_count;
      for (std::size_t r = r_count; r-- > 0;) out[r] = w * row[r];
    }
    len *= r_count;
  }
}

/// Solve (B + reg I) u = c for SPD B via in-place Cholesky. B is row-major
/// n x n (destroyed); c is overwritten with the solution. If a pivot
/// collapses (reg = 0 on a rank-deficient system), the ridge is increased
/// deterministically and the factorization retried.
void solve_ridge(std::size_t n, std::vector<double>& b_mat,
                 std::vector<double>& c, double reg) {
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, b_mat[i * n + i]);
  }
  const std::vector<double> saved = b_mat;  // pristine copy for retries
  double jitter = 0.0;
  for (;;) {
    bool ok = true;
    // Lower Cholesky over the (symmetric) matrix with ridge reg + jitter.
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double s = b_mat[i * n + j];
        for (std::size_t k = 0; k < j; ++k) {
          s -= b_mat[i * n + k] * b_mat[j * n + k];
        }
        if (i == j) {
          s += reg + jitter;
          if (s <= 0.0 || !std::isfinite(s)) {
            ok = false;
            break;
          }
          b_mat[i * n + i] = std::sqrt(s);
        } else {
          b_mat[i * n + j] = s / b_mat[j * n + j];
        }
      }
    }
    if (ok) break;
    // Deterministic jitter escalation: a rank-deficient system (a row with
    // fewer observations than R_n and reg == 0) gets the minimum-norm-ish
    // ridge solution instead of a crash.
    jitter = jitter == 0.0 ? std::max(1e-12, 1e-12 * max_diag) : jitter * 16.0;
    HT_CHECK_MSG(jitter < 1e6 * std::max(1.0, max_diag),
                 "masked row solve: normal equations are not positive "
                 "definite even under heavy jitter");
    b_mat = saved;
  }
  // Forward substitution L y = c.
  for (std::size_t i = 0; i < n; ++i) {
    double s = c[i];
    for (std::size_t k = 0; k < i; ++k) s -= b_mat[i * n + k] * c[k];
    c[i] = s / b_mat[i * n + i];
  }
  // Back substitution L^T u = y.
  for (std::size_t i = n; i-- > 0;) {
    double s = c[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= b_mat[k * n + i] * c[k];
    c[i] = s / b_mat[i * n + i];
  }
}

/// Per-thread scratch for the row updates.
struct RowScratch {
  std::vector<double> slice;   // entity slice over the non-entity modes
  std::vector<double> delta;   // d_t in R^{R_n}
  std::vector<double> b_mat;   // R_n x R_n normal matrix
  std::vector<double> rhs;     // right-hand side / solution
  std::vector<index_t> idx;    // coordinates of one nonzero
  ReconstructWorkspace rws;
};

RowScratch& row_scratch_tls() {
  thread_local RowScratch scratch;
  return scratch;
}

/// Sum of squared / absolute errors with the fixed-block discipline.
struct ErrorSums {
  double sse = 0;
  double sae = 0;
};

ErrorSums accumulate_errors(std::span<const tensor::value_t> truth,
                            std::span<const double> preds) {
  HT_CHECK(truth.size() == preds.size());
  const nnz_t n = truth.size();
  const nnz_t blocks = (n + kReduceBlock - 1) / kReduceBlock;
  std::vector<double> partial_sse(blocks, 0.0), partial_sae(blocks, 0.0);
#pragma omp parallel for schedule(static)
  for (nnz_t b = 0; b < blocks; ++b) {
    const nnz_t begin = b * kReduceBlock;
    const nnz_t end = std::min<nnz_t>(begin + kReduceBlock, n);
    double sse = 0, sae = 0;
    for (nnz_t t = begin; t < end; ++t) {
      const double d = preds[t] - truth[t];
      sse += d * d;
      sae += std::abs(d);
    }
    partial_sse[b] = sse;
    partial_sae[b] = sae;
  }
  ErrorSums sums;
  for (nnz_t b = 0; b < blocks; ++b) {
    sums.sse += partial_sse[b];
    sums.sae += partial_sae[b];
  }
  return sums;
}

/// Model predictions at every nonzero of `x` (parallel; each entry is
/// independent, so the output is bitwise thread-count-invariant).
void predict_all(const CooTensor& x, const TuckerDecomposition& t,
                 std::vector<double>& preds) {
  const nnz_t n = x.nnz();
  preds.resize(n);
  const std::size_t order = x.order();
#pragma omp parallel
  {
    std::vector<index_t> idx(order);
#pragma omp for schedule(static)
    for (nnz_t e = 0; e < n; ++e) {
      for (std::size_t m = 0; m < order; ++m) idx[m] = x.index(m, e);
      preds[e] = reconstruct_at(t.core, t.factors, idx,
                                ReconstructWorkspace::tls());
    }
  }
}

double squared_frobenius(const TuckerDecomposition& t) {
  double s = 0.0;
  for (const auto& f : t.factors) {
    for (const double v : f.flat()) s += v * v;
  }
  for (const double v : t.core.flat()) s += v * v;
  return s;
}

/// out = A^T (A v) where row t of A is kron_rows at nonzero t; when
/// `use_values` is set the forward product is replaced by x's values
/// (computing A^T x instead). Fixed-block deterministic reduction.
void masked_normal_apply(const CooTensor& x,
                         std::span<const la::Matrix> factors,
                         std::span<const double> v, bool use_values,
                         std::vector<double>& out,
                         std::vector<double>& block_partials) {
  const std::size_t len = v.size();
  const nnz_t n = x.nnz();
  const nnz_t blocks = (n + kReduceBlock - 1) / kReduceBlock;
  block_partials.assign(blocks * len, 0.0);
  const std::size_t order = x.order();
#pragma omp parallel
  {
    std::vector<double> kron(len);
    std::vector<index_t> idx(order);
#pragma omp for schedule(dynamic)
    for (nnz_t b = 0; b < blocks; ++b) {
      double* local = block_partials.data() + b * len;
      const nnz_t begin = b * kReduceBlock;
      const nnz_t end = std::min<nnz_t>(begin + kReduceBlock, n);
      for (nnz_t e = begin; e < end; ++e) {
        for (std::size_t m = 0; m < order; ++m) idx[m] = x.index(m, e);
        kron_rows(factors, idx, kron.data());
        double p;
        if (use_values) {
          p = x.value(e);
        } else {
          p = 0.0;
          for (std::size_t j = 0; j < len; ++j) p += kron[j] * v[j];
        }
        for (std::size_t j = 0; j < len; ++j) local[j] += p * kron[j];
      }
    }
  }
  out.assign(len, 0.0);
#pragma omp parallel for schedule(static) if (len >= 1024)
  for (std::size_t j = 0; j < len; ++j) {
    double s = 0.0;
    for (nnz_t b = 0; b < blocks; ++b) s += block_partials[b * len + j];
    out[j] = s;
  }
}

double vec_dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

void validate_completion_options(const CooTensor& x,
                                 const CompletionOptions& options) {
  if (x.nnz() == 0) throw InvalidArgument("completion needs observed entries");
  if (x.order() < 2) {
    throw InvalidArgument("completion needs an order >= 2 tensor");
  }
  if (options.ranks.size() != x.order()) {
    throw InvalidArgument("need one rank per tensor mode");
  }
  for (std::size_t n = 0; n < x.order(); ++n) {
    if (options.ranks[n] < 1 || options.ranks[n] > x.dim(n)) {
      throw InvalidArgument("rank out of range for mode " + std::to_string(n));
    }
  }
  if (options.max_sweeps < 1) {
    throw InvalidArgument("max_sweeps must be >= 1");
  }
  if (options.lambda < 0.0) {
    throw InvalidArgument("lambda must be non-negative");
  }
  if (options.core_cg_iterations < 1) {
    throw InvalidArgument("core_cg_iterations must be >= 1");
  }
  if (options.lambda_anneal_factor < 1.0) {
    throw InvalidArgument("lambda_anneal_factor must be >= 1");
  }
  if (options.lambda_anneal_sweeps < 0) {
    throw InvalidArgument("lambda_anneal_sweeps must be >= 0");
  }
}

void masked_update_rows(const CooTensor& x, const ModeSymbolic& sym,
                        std::size_t mode, double lambda,
                        std::span<const std::size_t> rows,
                        TuckerDecomposition& t) {
  HT_CHECK_MSG(mode < t.order(), "mode out of range");
  const Shape& cs = t.core.shape();
  const std::size_t r_n = cs[mode];
  const std::size_t order = t.order();
  const std::size_t entity = mode == 0 ? 1 : 0;
  const std::size_t entity_slice = slice_size(cs, entity);
  const auto core = t.core.flat();
  // The row solves read every OTHER mode's factor (and the core) and write
  // only mode-`mode` rows, so updating in place is race-free and
  // order-independent.
  la::Matrix& target = t.factors[mode];
  const std::span<const la::Matrix> factors{t.factors.data(),
                                            t.factors.size()};

#pragma omp parallel for schedule(dynamic, 8)
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const std::size_t r = rows[k];
    RowScratch& ws = row_scratch_tls();
    ws.slice.resize(entity_slice);
    ws.delta.resize(r_n);
    ws.b_mat.assign(r_n * r_n, 0.0);
    ws.rhs.assign(r_n, 0.0);
    ws.idx.resize(order);
    for (const nnz_t e : sym.update_list(r)) {
      for (std::size_t m = 0; m < order; ++m) ws.idx[m] = x.index(m, e);
      contract_entity(core, cs, entity, factors[entity].row(ws.idx[entity]),
                      ws.slice);
      slice_mode_vector(ws.slice, cs, entity, mode, factors, ws.idx, ws.rws,
                        ws.delta);
      const double v = x.value(e);
      for (std::size_t i = 0; i < r_n; ++i) {
        const double di = ws.delta[i];
        ws.rhs[i] += v * di;
        double* bi = ws.b_mat.data() + i * r_n;
        for (std::size_t j = 0; j <= i; ++j) bi[j] += di * ws.delta[j];
      }
    }
    // Mirror the lower triangle (Cholesky below only reads j <= i, but the
    // reference check in tests reads the full matrix semantics).
    for (std::size_t i = 0; i < r_n; ++i) {
      for (std::size_t j = i + 1; j < r_n; ++j) {
        ws.b_mat[i * r_n + j] = ws.b_mat[j * r_n + i];
      }
    }
    solve_ridge(r_n, ws.b_mat, ws.rhs, lambda);
    const auto out = target.row(sym.rows[r]);
    for (std::size_t i = 0; i < r_n; ++i) out[i] = ws.rhs[i];
  }
}

void masked_update_mode(const CooTensor& x, const ModeSymbolic& sym,
                        std::size_t mode, double lambda,
                        TuckerDecomposition& t) {
  std::vector<std::size_t> rows(sym.num_rows());
  for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  masked_update_rows(x, sym, mode, lambda, rows, t);
}

int masked_update_core(const CooTensor& x, double lambda, int max_iterations,
                       double tolerance, TuckerDecomposition& t) {
  const std::size_t len = core_size(t.core.shape());
  const std::span<const la::Matrix> factors{t.factors.data(),
                                            t.factors.size()};
  std::vector<double> scratch;
  std::vector<double> b;
  masked_normal_apply(x, factors, std::vector<double>(len, 0.0), true, b,
                      scratch);
  const double b_norm = std::sqrt(vec_dot(b, b));

  auto core = t.core.flat();
  std::vector<double> g(core.begin(), core.end());
  std::vector<double> mg, mp;
  const auto normal_matvec = [&](std::span<const double> v,
                                 std::vector<double>& out) {
    masked_normal_apply(x, factors, v, false, out, scratch);
    for (std::size_t j = 0; j < len; ++j) out[j] += lambda * v[j];
  };

  normal_matvec(g, mg);
  std::vector<double> r(len), p(len);
  for (std::size_t j = 0; j < len; ++j) r[j] = b[j] - mg[j];
  p = r;
  double rs = vec_dot(r, r);
  int iters = 0;
  while (iters < max_iterations &&
         std::sqrt(rs) > tolerance * std::max(b_norm, 1e-300)) {
    normal_matvec(p, mp);
    const double denom = vec_dot(p, mp);
    if (!(denom > 0.0)) break;  // numerically flat direction: stop
    const double alpha = rs / denom;
    for (std::size_t j = 0; j < len; ++j) {
      g[j] += alpha * p[j];
      r[j] -= alpha * mp[j];
    }
    const double rs_next = vec_dot(r, r);
    const double beta = rs_next / rs;
    for (std::size_t j = 0; j < len; ++j) p[j] = r[j] + beta * p[j];
    rs = rs_next;
    ++iters;
  }
  std::copy(g.begin(), g.end(), core.begin());
  return iters;
}

double masked_objective(const CooTensor& x, const TuckerDecomposition& t,
                        double lambda) {
  std::vector<double> preds;
  predict_all(x, t, preds);
  const ErrorSums sums = accumulate_errors(x.values(), preds);
  return sums.sse + lambda * squared_frobenius(t);
}

CompletionEval evaluate_predictions(const CooTensor& x,
                                    std::span<const double> preds) {
  HT_CHECK_MSG(preds.size() == x.nnz(),
               "need one prediction per observed entry");
  CompletionEval eval;
  eval.count = x.nnz();
  if (eval.count == 0) return eval;
  const ErrorSums sums = accumulate_errors(x.values(), preds);
  eval.rmse = std::sqrt(sums.sse / static_cast<double>(eval.count));
  eval.mae = sums.sae / static_cast<double>(eval.count);
  return eval;
}

CompletionEval evaluate_model(const CooTensor& x,
                              const TuckerDecomposition& t) {
  std::vector<double> preds;
  predict_all(x, t, preds);
  return evaluate_predictions(x, preds);
}

CompletionResult tucker_complete(const CooTensor& train,
                                 const CompletionOptions& options) {
  return tucker_complete(train, nullptr, options);
}

CompletionResult tucker_complete(const CooTensor& train,
                                 const CooTensor* validation,
                                 const CompletionOptions& options) {
  validate_completion_options(train, options);
  const bool with_validation = validation != nullptr && validation->nnz() > 0;
  if (with_validation && validation->shape() != train.shape()) {
    throw InvalidArgument("validation tensor shape differs from training");
  }
  parallel::ThreadScope threads(options.num_threads);

  CompletionResult result;
  WallTimer t_sym;
  const SymbolicTtmc symbolic =
      SymbolicTtmc::build(train, /*with_fibers=*/false);
  result.timers.symbolic = t_sym.seconds();

  // Init: random orthonormal factors; rows with no observed entries are
  // zeroed so unobserved entities predict 0 (the regularized solution they
  // would converge to anyway — and the sane serving default after mean
  // centering). The core starts from the ridge LS fit to those factors.
  TuckerDecomposition& t = result.decomposition;
  t.factors = random_orthonormal_factors(train.shape(), options.ranks,
                                         options.seed);
  for (std::size_t n = 0; n < train.order(); ++n) {
    const auto& observed = symbolic.modes[n].rows;
    std::size_t next = 0;
    for (index_t i = 0; i < train.dim(n); ++i) {
      if (next < observed.size() && observed[next] == i) {
        ++next;
        continue;
      }
      auto row = t.factors[n].row(i);
      std::fill(row.begin(), row.end(), 0.0);
    }
  }
  t.core = tensor::DenseTensor(
      Shape(options.ranks.begin(), options.ranks.end()));

  // Effective ridge for sweep s: geometric decay from
  // lambda * anneal_factor down to lambda over the annealing window.
  const auto effective_lambda = [&options](int sweep) {
    if (options.lambda_anneal_sweeps <= 0 ||
        options.lambda_anneal_factor <= 1.0 ||
        sweep >= options.lambda_anneal_sweeps) {
      return options.lambda;
    }
    const double frac =
        static_cast<double>(options.lambda_anneal_sweeps - sweep) /
        static_cast<double>(options.lambda_anneal_sweeps);
    return options.lambda * std::pow(options.lambda_anneal_factor, frac);
  };

  {
    WallTimer t_core;
    masked_update_core(train, effective_lambda(0), options.core_cg_iterations,
                       options.core_cg_tolerance, t);
    result.timers.core += t_core.seconds();
  }

  double best_val = std::numeric_limits<double>::infinity();
  std::optional<TuckerDecomposition> best_snapshot;
  int sweeps_since_best = 0;
  std::vector<double> preds;

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const double lambda = effective_lambda(sweep);
    // Annealing still active: objective values are not comparable across
    // sweeps and validation RMSE is still dominated by the shrinking
    // ridge — hold off the convergence check and the patience counter.
    const bool annealing = lambda != options.lambda;
    {
      WallTimer t_factor;
      for (std::size_t n = 0; n < train.order(); ++n) {
        masked_update_mode(train, symbolic.modes[n], n, lambda, t);
      }
      result.timers.factor += t_factor.seconds();
    }
    {
      WallTimer t_core;
      masked_update_core(train, lambda, options.core_cg_iterations,
                         options.core_cg_tolerance, t);
      result.timers.core += t_core.seconds();
    }

    WallTimer t_eval;
    predict_all(train, t, preds);
    const ErrorSums train_err = accumulate_errors(train.values(), preds);
    const double objective = train_err.sse + lambda * squared_frobenius(t);
    result.objective.push_back(objective);
    result.train_rmse.push_back(
        std::sqrt(train_err.sse / static_cast<double>(train.nnz())));
    result.sweeps = sweep + 1;

    if (with_validation) {
      const CompletionEval val = evaluate_model(*validation, t);
      result.validation_rmse.push_back(val.rmse);
      // Patience needs an improvement of at least min_delta, but the best
      // snapshot tracks ANY improvement so the restored model is exactly
      // the argmin of the validation curve.
      if (annealing || val.rmse < best_val - options.early_stopping_min_delta) {
        sweeps_since_best = 0;
      } else {
        ++sweeps_since_best;
      }
      if (val.rmse < best_val) {
        best_val = val.rmse;
        result.best_sweep = sweep;
        if (options.restore_best) best_snapshot = t;
      }
    }
    result.timers.eval += t_eval.seconds();

    if (with_validation && options.early_stopping_patience > 0 &&
        sweeps_since_best >= options.early_stopping_patience) {
      result.early_stopped = true;
      break;
    }
    if (sweep > 0 && !annealing &&
        effective_lambda(sweep - 1) == options.lambda) {
      const double prev = result.objective[sweep - 1];
      if (prev - objective <
          options.objective_tolerance * std::max(prev, 1e-300)) {
        result.converged = true;
        break;
      }
    }
  }

  if (with_validation && options.restore_best && best_snapshot &&
      result.best_sweep >= 0 &&
      result.best_sweep + 1 != result.sweeps) {
    t = std::move(*best_snapshot);
  }
  return result;
}

TuckerModel completion_model(const CooTensor& train, CompletionResult&& result,
                             const CompletionOptions& options) {
  TuckerModel m;
  m.dims = train.shape();
  const double train_rmse = result.final_train_rmse();
  const double sse =
      train_rmse * train_rmse * static_cast<double>(train.nnz());
  const double x_norm2 = train.norm2_squared();
  m.fit = x_norm2 > 0.0 ? 1.0 - std::sqrt(sse / x_norm2) : 0.0;
  m.provenance = TuckerModel::build_provenance();
  char buf[64];
  const auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  m.provenance.emplace_back("completion.lambda", fmt(options.lambda));
  if (options.lambda_anneal_factor > 1.0 && options.lambda_anneal_sweeps > 0) {
    m.provenance.emplace_back("completion.lambda_anneal_factor",
                              fmt(options.lambda_anneal_factor));
    m.provenance.emplace_back("completion.lambda_anneal_sweeps",
                              std::to_string(options.lambda_anneal_sweeps));
  }
  m.provenance.emplace_back("completion.seed",
                            std::to_string(options.seed));
  m.provenance.emplace_back("completion.sweeps",
                            std::to_string(result.sweeps));
  m.provenance.emplace_back("completion.train_rmse", fmt(train_rmse));
  m.provenance.emplace_back("completion.converged",
                            result.converged ? "1" : "0");
  m.provenance.emplace_back("completion.early_stopped",
                            result.early_stopped ? "1" : "0");
  if (result.best_sweep >= 0) {
    m.provenance.emplace_back("completion.best_sweep",
                              std::to_string(result.best_sweep));
    m.provenance.emplace_back(
        "completion.validation_rmse",
        fmt(result.validation_rmse[static_cast<std::size_t>(
            std::min<int>(result.best_sweep,
                          static_cast<int>(result.validation_rmse.size()) -
                              1))]));
  }
  m.provenance.emplace_back("nnz", std::to_string(train.nnz()));
  m.decomposition = std::move(result.decomposition);
  return m;
}

}  // namespace ht::core
