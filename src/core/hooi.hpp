// Shared-memory parallel HOOI (paper Algorithm 3).
//
// Symbolic TTMc runs once; each ALS sweep then performs, per mode,
//   (i)  numeric TTMc into the compact Y(n)            [lock-free parfor]
//   (ii) TRSVD of Y(n) -> U_n                          [matrix-free Lanczos]
// and forms the core G = Y x_N U_N^T after the last mode (one GEMM, since
// Y(N) already holds X x_{-N} U). Convergence is monitored through the fit
// 1 - ||X - Xhat||/||X||, evaluated exactly from ||G|| (paper's check).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dim_tree.hpp"
#include "core/symbolic.hpp"
#include "core/trsvd.hpp"
#include "core/ttmc.hpp"
#include "core/tucker.hpp"
#include "tensor/coo_tensor.hpp"

namespace ht::core {

enum class HooiInit { kRandom, kRandomizedRange };

struct HooiOptions {
  /// Decomposition ranks, one per mode (required).
  std::vector<index_t> ranks;
  int max_iterations = 5;  // the paper's benchmark setting
  /// Stop when the fit improves by less than this between sweeps.
  double fit_tolerance = 1e-6;
  HooiInit init = HooiInit::kRandom;
  /// TRSVD backend per mode; kAuto applies the resolve_trsvd_method cost
  /// model to each mode's compact problem (block-size/oversample/power
  /// knobs live in `trsvd` below).
  TrsvdMethod trsvd_method = TrsvdMethod::kLanczos;
  Schedule ttmc_schedule = Schedule::kDynamic;
  /// Kernel family per TTMc mode; kAuto applies the fiber-length heuristic.
  TtmcKernel ttmc_kernel = TtmcKernel::kAuto;
  /// Average-fiber-length threshold used by TtmcKernel::kAuto.
  double ttmc_fiber_threshold = TtmcOptions{}.fiber_threshold;
  /// Cross-mode evaluation strategy: direct kernels per mode, dimension-tree
  /// serving from shared partials, or the per-mode flop model (kAuto).
  TtmcStrategy ttmc_strategy = TtmcStrategy::kAuto;
  /// Soft memory budget (bytes) for per-kernel index structures under
  /// kAuto: when the CSF forest estimate exceeds it but the single ALTO
  /// array fits, kAuto builds ALTO instead. 0 = unlimited (no trade).
  double ttmc_structure_budget = 0.0;
  /// OpenMP threads (0 = runtime default). Paper Table V sweeps this.
  int num_threads = 0;
  std::uint64_t seed = 42;
  /// Inner-solver controls; ALS does not need tight residuals here (the
  /// factors move every sweep anyway).
  la::TrsvdOptions trsvd = {.tol = 1e-7};
};

struct HooiTimers {
  double symbolic = 0;
  double ttmc = 0;
  double trsvd = 0;
  double core = 0;

  [[nodiscard]] double iteration_total() const { return ttmc + trsvd + core; }
};

struct HooiResult {
  TuckerDecomposition decomposition;
  /// Fit after each completed sweep.
  std::vector<double> fits;
  int iterations = 0;
  bool converged = false;
  HooiTimers timers;

  [[nodiscard]] double final_fit() const {
    return fits.empty() ? 0.0 : fits.back();
  }
};

/// Run HOOI; builds the symbolic structure internally.
HooiResult hooi(const CooTensor& x, const HooiOptions& options);

/// Run HOOI reusing a prebuilt symbolic structure (the paper reuses it
/// across runs with different ranks); builds a dimension-tree plan
/// internally unless options.ttmc_strategy is kDirect.
HooiResult hooi(const CooTensor& x, const HooiOptions& options,
                const SymbolicTtmc& symbolic);

/// Run HOOI reusing both a prebuilt symbolic structure and a prebuilt
/// dimension-tree plan (nullable: no tree => every mode evaluated
/// directly). rank_sweep shares one plan across its whole rank grid.
/// Builds CSF trees internally when ttmc_wants_csf says the kernel options
/// ask for them (time charged to timers.symbolic).
HooiResult hooi(const CooTensor& x, const HooiOptions& options,
                const SymbolicTtmc& symbolic, const DimTreePlan* tree);

/// Fully preprocessed variant: additionally reuses prebuilt CSF trees
/// (nullable: the direct TTMc path then uses the flat-index kernels, or
/// builds nothing if none are wanted). rank_sweep builds the trees once for
/// its whole grid; every structure is pattern-only and rank-independent.
/// Builds an ALTO structure internally when ttmc_wants_alto says the
/// kernel options ask for one (time charged to timers.symbolic).
HooiResult hooi(const CooTensor& x, const HooiOptions& options,
                const SymbolicTtmc& symbolic, const DimTreePlan* tree,
                const tensor::CsfTensor* csf);

/// Fully preprocessed variant with a prebuilt ALTO structure as well
/// (nullable: the direct TTMc path then never uses the kAlto kernel).
/// Unlike the CSF trees, ALTO carries its own value array, so a prebuilt
/// one must have values attached.
HooiResult hooi(const CooTensor& x, const HooiOptions& options,
                const SymbolicTtmc& symbolic, const DimTreePlan* tree,
                const tensor::CsfTensor* csf, const tensor::AltoTensor* alto);

/// Validate options against the tensor; throws ht::InvalidArgument.
void validate_hooi_options(const CooTensor& x, const HooiOptions& options);

}  // namespace ht::core
