#include "core/ttmc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ht::core {

namespace {

// One scratch arena per thread, shared by every kernel in this translation
// unit. The kernels are function templates (one instantiation per row map),
// so a thread_local inside each body would be duplicated per instantiation
// and per kernel; routing them all through one arena means the buffers grow
// once and are reused across rows, calls, kernels, and modes.
struct KernelScratch {
  std::vector<double> a;
  std::vector<double> b;
};

inline KernelScratch& kernel_scratch() {
  thread_local KernelScratch scratch;
  return scratch;
}

// Specialized 3-mode kernel: y[ja * Rb + jb] += v * ua[ja] * ub[jb].
inline void kron2_accumulate(double v, std::span<const double> ua,
                             std::span<const double> ub, double* y) {
  const std::size_t ra = ua.size(), rb = ub.size();
  for (std::size_t ja = 0; ja < ra; ++ja) {
    const double s = v * ua[ja];
    double* yrow = y + ja * rb;
    for (std::size_t jb = 0; jb < rb; ++jb) yrow[jb] += s * ub[jb];
  }
}

// Specialized 4-mode kernel.
inline void kron3_accumulate(double v, std::span<const double> ua,
                             std::span<const double> ub,
                             std::span<const double> uc, double* y) {
  const std::size_t ra = ua.size(), rb = ub.size(), rc = uc.size();
  for (std::size_t ja = 0; ja < ra; ++ja) {
    const double sa = v * ua[ja];
    for (std::size_t jb = 0; jb < rb; ++jb) {
      const double sab = sa * ub[jb];
      double* yrow = y + (ja * rb + jb) * rc;
      for (std::size_t jc = 0; jc < rc; ++jc) yrow[jc] += sab * uc[jc];
    }
  }
}

// General-N kernel: progressive in-place expansion into a scratch buffer of
// the full row width, then accumulate into the output row.
void kron_general_accumulate(const CooTensor& x, nnz_t e,
                             const std::vector<la::Matrix>& factors,
                             std::size_t mode, std::span<double> out,
                             std::vector<double>& scratch) {
  scratch.resize(out.size());
  scratch[0] = x.value(e);
  std::size_t len = 1;
  for (std::size_t t = 0; t < x.order(); ++t) {
    if (t == mode) continue;
    const auto u = factors[t].row(x.index(t, e));
    const std::size_t r = u.size();
    for (std::size_t i = len; i-- > 0;) {
      const double s = scratch[i];
      double* dst = scratch.data() + i * r;
      for (std::size_t j = r; j-- > 0;) dst[j] = s * u[j];
    }
    len *= r;
  }
  HT_CHECK(len == out.size());
  for (std::size_t i = 0; i < len; ++i) out[i] += scratch[i];
}

// Modes other than `skip`, in increasing order (Kronecker factor order).
struct OtherModes {
  std::size_t m[3];
  std::size_t count;
};

inline OtherModes other_modes(std::size_t order, std::size_t skip) {
  OtherModes o{};
  o.count = 0;
  for (std::size_t t = 0; t < order; ++t) {
    if (t != skip) o.m[o.count++] = t;
  }
  return o;
}

// Run `body(r)` over [0, nrows) with the requested OpenMP schedule. The
// dynamic/static choice is the paper's load-balancing knob (Sec. III-A.1);
// the ablation bench compares both.
template <typename Body>
void parallel_rows(std::ptrdiff_t nrows, Schedule schedule, Body&& body) {
  if (schedule == Schedule::kDynamic) {
#pragma omp parallel for schedule(dynamic, 16)
    for (std::ptrdiff_t r = 0; r < nrows; ++r) body(r);
  } else {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t r = 0; r < nrows; ++r) body(r);
  }
}

// The full-mode and subset entry points share every kernel below through a
// row map: the loop index r runs over output rows, map(r) names the compact
// symbolic row it computes.

struct IdentityRowMap {
  std::size_t operator()(std::ptrdiff_t r) const {
    return static_cast<std::size_t>(r);
  }
};

struct SubsetRowMap {
  std::span<const std::uint32_t> positions;
  std::size_t operator()(std::ptrdiff_t r) const {
    return positions[static_cast<std::size_t>(r)];
  }
};

// ---- per-nonzero kernels --------------------------------------------------

template <typename RowMap>
void ttmc3_per_nnz(const CooTensor& x, const std::vector<la::Matrix>& factors,
                   std::size_t mode, const ModeSymbolic& sym,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(map(r))) {
      kron2_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                       row.data());
    }
  });
}

template <typename RowMap>
void ttmc4_per_nnz(const CooTensor& x, const std::vector<la::Matrix>& factors,
                   std::size_t mode, const ModeSymbolic& sym,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto idx_c = x.indices(o.m[2]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  const la::Matrix& fc = factors[o.m[2]];
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(map(r))) {
      kron3_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                       fc.row(idx_c[e]), row.data());
    }
  });
}

template <typename RowMap>
void ttmc_general_per_nnz(const CooTensor& x,
                          const std::vector<la::Matrix>& factors,
                          std::size_t mode, const ModeSymbolic& sym,
                          std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                          const TtmcOptions& options) {
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(map(r))) {
      kron_general_accumulate(x, e, factors, mode, row, kernel_scratch().a);
    }
  });
}

// ---- fiber-factored kernels -----------------------------------------------

// 3-mode: within a fiber every nonzero shares i_a, so the inner partial
//   t[jb] += v * u_b(i_b, jb)                       (R_b flops per nonzero)
// is expanded once per fiber as y += u_a(i_a, :) (x) t (R_a*R_b per fiber).
template <typename RowMap>
void ttmc3_fiber(const CooTensor& x, const std::vector<la::Matrix>& factors,
                 std::size_t mode, const ModeSymbolic& sym,
                 std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                 const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  const std::size_t rb = fb.cols();
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    std::vector<double>& t = kernel_scratch().a;
    t.resize(rb);
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    const std::size_t cr = map(r);
    for (nnz_t k = sym.fiber_row_ptr[cr]; k < sym.fiber_row_ptr[cr + 1]; ++k) {
      const nnz_t begin = sym.fiber_ptr[k], end = sym.fiber_ptr[k + 1];
      std::fill(t.begin(), t.end(), 0.0);
      for (nnz_t i = begin; i < end; ++i) {
        const nnz_t e = sym.nnz_order[i];
        const double v = values[e];
        const auto ub = fb.row(idx_b[e]);
        for (std::size_t jb = 0; jb < rb; ++jb) t[jb] += v * ub[jb];
      }
      const auto ua = fa.row(idx_a[sym.nnz_order[begin]]);
      for (std::size_t ja = 0; ja < ua.size(); ++ja) {
        const double s = ua[ja];
        double* yrow = row.data() + ja * rb;
        for (std::size_t jb = 0; jb < rb; ++jb) yrow[jb] += s * t[jb];
      }
    }
  });
}

// 4-mode, two-level: subfibers share (i_a, i_b) and accumulate
//   t_c[jc] += v * u_c(i_c, jc)                     (R_c flops per nonzero),
// expanded per subfiber into t_bc += u_b (x) t_c    (R_b*R_c per subfiber),
// expanded per fiber into y += u_a (x) t_bc         (R_a*R_b*R_c per fiber).
template <typename RowMap>
void ttmc4_fiber(const CooTensor& x, const std::vector<la::Matrix>& factors,
                 std::size_t mode, const ModeSymbolic& sym,
                 std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                 const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto idx_c = x.indices(o.m[2]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  const la::Matrix& fc = factors[o.m[2]];
  const std::size_t rb = fb.cols(), rc = fc.cols();
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    std::vector<double>& t_c = kernel_scratch().a;
    std::vector<double>& t_bc = kernel_scratch().b;
    t_c.resize(rc);
    t_bc.resize(rb * rc);
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    const std::size_t cr = map(r);
    for (nnz_t k = sym.fiber_row_ptr[cr]; k < sym.fiber_row_ptr[cr + 1]; ++k) {
      std::fill(t_bc.begin(), t_bc.end(), 0.0);
      for (nnz_t j = sym.subfiber_fiber_ptr[k]; j < sym.subfiber_fiber_ptr[k + 1];
           ++j) {
        const nnz_t begin = sym.subfiber_ptr[j], end = sym.subfiber_ptr[j + 1];
        std::fill(t_c.begin(), t_c.end(), 0.0);
        for (nnz_t i = begin; i < end; ++i) {
          const nnz_t e = sym.nnz_order[i];
          const double v = values[e];
          const auto uc = fc.row(idx_c[e]);
          for (std::size_t jc = 0; jc < rc; ++jc) t_c[jc] += v * uc[jc];
        }
        const auto ub = fb.row(idx_b[sym.nnz_order[begin]]);
        for (std::size_t jb = 0; jb < rb; ++jb) {
          const double s = ub[jb];
          double* dst = t_bc.data() + jb * rc;
          for (std::size_t jc = 0; jc < rc; ++jc) dst[jc] += s * t_c[jc];
        }
      }
      const auto ua = fa.row(idx_a[sym.nnz_order[sym.fiber_ptr[k]]]);
      for (std::size_t ja = 0; ja < ua.size(); ++ja) {
        const double s = ua[ja];
        double* yrow = row.data() + ja * rb * rc;
        for (std::size_t jbc = 0; jbc < rb * rc; ++jbc) {
          yrow[jbc] += s * t_bc[jbc];
        }
      }
    }
  });
}

// ---- CSF kernel ------------------------------------------------------------

// Deepest CSF tree the kernel's fixed-size per-level arrays accommodate;
// higher orders stay on the general per-nnz kernel (the selection logic
// never offers CSF trees past this depth to the dispatcher).
constexpr std::size_t kCsfMaxOrder = 8;

// Read-only per-invocation context of the CSF depth-first walk, shared by
// every thread (per-thread state is only the partial buffers).
struct CsfWalkCtx {
  const tensor::CsfTree* tree = nullptr;
  std::size_t nlevels = 0;
  // Per tree level: factor of that level's mode, and the width of a node
  // partial at that level (product of the ranks of all deeper levels).
  const la::Matrix* u[kCsfMaxOrder] = {};
  std::size_t width[kCsfMaxOrder] = {};
};

// DFS over one subtree: fills part[d] (width[d] doubles) with the node's
// partial contraction in tree Kronecker order. Leaf runs stream values and
// trailing coordinates sequentially (they were gathered into tree order at
// build time); every internal node pays its factor-row expansion exactly
// once, so shared prefixes amortize across all leaves below them.
void csf_walk(const CsfWalkCtx& c, std::size_t d, nnz_t node,
              double* const* part) {
  double* acc = part[d];
  std::fill(acc, acc + c.width[d], 0.0);
  const nnz_t* cptr = c.tree->ptr[d + 1].data();
  const nnz_t begin = cptr[node], end = cptr[node + 1];
  if (d + 2 == c.nlevels) {
    // Children are leaves: acc has the trailing factor's width.
    const index_t* leaf_idx = c.tree->idx[c.nlevels - 1].data();
    const double* vals = c.tree->values.data();
    const la::Matrix& uf = *c.u[c.nlevels - 1];
    const std::size_t r = c.width[d];
    for (nnz_t s = begin; s < end; ++s) {
      const double v = vals[s];
      const double* urow = uf.data() + static_cast<std::size_t>(leaf_idx[s]) * r;
      for (std::size_t j = 0; j < r; ++j) acc[j] += v * urow[j];
    }
    return;
  }
  const index_t* child_idx = c.tree->idx[d + 1].data();
  const la::Matrix& uc = *c.u[d + 1];
  const std::size_t rc = uc.cols();
  const std::size_t wc = c.width[d + 1];
  for (nnz_t k = begin; k < end; ++k) {
    csf_walk(c, d + 1, k, part);
    const double* child = part[d + 1];
    const double* urow = uc.data() + static_cast<std::size_t>(child_idx[k]) * rc;
    for (std::size_t j = 0; j < rc; ++j) {
      const double s = urow[j];
      double* dst = acc + j * wc;
      for (std::size_t q = 0; q < wc; ++q) dst[q] += s * child[q];
    }
  }
}

// Tile target: a tile closes once it holds this many leaves, so one giant
// root row becomes its own tile while sparse rows coalesce. The constant is
// independent of the thread count — tiling only partitions work, each row
// is still accumulated sequentially by one thread, so results are bitwise
// reproducible for any OpenMP configuration.
constexpr nnz_t kCsfTileNnz = 8192;

template <typename RowMap>
void ttmc_csf_tree(const std::vector<la::Matrix>& factors,
                   const tensor::CsfTree& tree, std::size_t mode,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options) {
  const std::size_t L = tree.levels();
  HT_CHECK_MSG(L <= kCsfMaxOrder, "CSF kernel supports tensors up to order 8");
  CsfWalkCtx c;
  c.tree = &tree;
  c.nlevels = L;
  for (std::size_t d = 0; d < L; ++d) c.u[d] = &factors[tree.level_modes[d]];
  c.width[L - 1] = 1;
  for (std::size_t d = L - 1; d-- > 0;) {
    c.width[d] = c.width[d + 1] * c.u[d + 1]->cols();
  }

  // The walk produces rows in *tree* Kronecker order (level 1 slowest, the
  // leaf level fastest). When the shortest-mode-first permutation reordered
  // the internal levels, a precomputed digit permutation scatters each
  // finished row into Y(n)'s increasing-mode layout; when the orders agree
  // the walk writes the output row in place.
  const bool identity = std::is_sorted(tree.level_modes.begin() + 1,
                                       tree.level_modes.end());
  std::vector<std::uint32_t> perm;
  if (!identity) {
    std::size_t stride_y[kCsfMaxOrder] = {};  // per tree level, stride in Y(n)'s layout
    for (std::size_t d = 1; d < L; ++d) {
      std::size_t stride = 1;
      for (std::size_t t = factors.size(); t-- > 0;) {
        if (t == mode) continue;
        if (t > tree.level_modes[d]) stride *= factors[t].cols();
      }
      stride_y[d] = stride;
    }
    perm.resize(c.width[0]);
    for (std::size_t p = 0; p < perm.size(); ++p) {
      std::size_t rem = p, q = 0;
      for (std::size_t d = 1; d < L; ++d) {
        q += (rem / c.width[d]) * stride_y[d];
        rem %= c.width[d];
      }
      perm[p] = static_cast<std::uint32_t>(q);
    }
  }

  // nnz-balanced tiles over the output rows.
  std::vector<std::ptrdiff_t> tile{0};
  nnz_t acc = 0;
  for (std::ptrdiff_t r = 0; r < nrows; ++r) {
    acc += tree.root_nnz(map(r));
    if (acc >= kCsfTileNnz) {
      tile.push_back(r + 1);
      acc = 0;
    }
  }
  if (tile.back() != nrows) tile.push_back(nrows);
  const auto ntiles = static_cast<std::ptrdiff_t>(tile.size() - 1);

  // Per-thread partial buffers, one per level 0..L-2, from the shared arena.
  std::size_t off[kCsfMaxOrder] = {};
  std::size_t total = 0;
  for (std::size_t d = 0; d + 1 < L; ++d) {
    off[d] = total;
    total += c.width[d];
  }

  const auto body = [&](std::ptrdiff_t ti) {
    std::vector<double>& buf = kernel_scratch().a;
    buf.resize(total);
    double* part[kCsfMaxOrder] = {};
    for (std::size_t d = 0; d + 1 < L; ++d) part[d] = buf.data() + off[d];
    for (std::ptrdiff_t r = tile[ti]; r < tile[ti + 1]; ++r) {
      auto row = y.row(static_cast<std::size_t>(r));
      if (identity) {
        part[0] = row.data();  // csf_walk zero-fills before accumulating
        csf_walk(c, 0, map(r), part);
      } else {
        part[0] = buf.data() + off[0];
        csf_walk(c, 0, map(r), part);
        const double* src = part[0];
        for (std::size_t p = 0; p < perm.size(); ++p) row[perm[p]] = src[p];
      }
    }
  };
  // Chunk size 1: tiles are already coarse, nnz-balanced units.
  if (options.schedule == Schedule::kDynamic) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::ptrdiff_t ti = 0; ti < ntiles; ++ti) body(ti);
  } else {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t ti = 0; ti < ntiles; ++ti) body(ti);
  }
}

// ---- dispatch --------------------------------------------------------------

template <typename RowMap>
void ttmc_dispatch(const CooTensor& x, const std::vector<la::Matrix>& factors,
                   std::size_t mode, const ModeSymbolic& sym,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options, const tensor::CsfTree* csf) {
  const std::size_t order = x.order();
  const TtmcKernel kernel = ttmc_selected_kernel(sym, order, options, csf);
  if (kernel == TtmcKernel::kCsf) {
    HT_CHECK_MSG(csf->num_roots() == sym.num_rows(),
                 "CSF tree does not match the symbolic structure");
    ttmc_csf_tree(factors, *csf, mode, nrows, map, y, options);
    return;
  }
  if (order == 3) {
    if (kernel == TtmcKernel::kFiberFactored) {
      ttmc3_fiber(x, factors, mode, sym, nrows, map, y, options);
    } else {
      ttmc3_per_nnz(x, factors, mode, sym, nrows, map, y, options);
    }
    return;
  }
  if (order == 4) {
    if (kernel == TtmcKernel::kFiberFactored) {
      ttmc4_fiber(x, factors, mode, sym, nrows, map, y, options);
    } else {
      ttmc4_per_nnz(x, factors, mode, sym, nrows, map, y, options);
    }
    return;
  }
  ttmc_general_per_nnz(x, factors, mode, sym, nrows, map, y, options);
}

void check_inputs(const CooTensor& x, const std::vector<la::Matrix>& factors,
                  std::size_t mode) {
  HT_CHECK_MSG(factors.size() == x.order(), "factor arity mismatch");
  HT_CHECK(mode < x.order());
  for (std::size_t t = 0; t < x.order(); ++t) {
    HT_CHECK_MSG(factors[t].rows() == x.dim(t),
                 "factor " << t << " has " << factors[t].rows()
                           << " rows, mode size is " << x.dim(t));
  }
}

}  // namespace

// Working-set threshold of the kAuto streaming rule: past this many bytes
// of per-nonzero traffic a flat kernel's random reads leave the last-level
// cache and the CSF walk's sequential streams win on bandwidth alone.
// Sized at a typical LLC; the exact value only matters near the boundary,
// where the kernels tie anyway.
constexpr double kCsfStreamBytes = 24.0 * 1024.0 * 1024.0;

// The streaming rule itself, shared by kernel selection and the
// tree-construction gate so the two can never disagree: per nonzero a flat
// kernel touches the value (8B), the nnz_order indirection (8B), and one
// 4B index per other mode (order - 1 of them, rounded up to order).
static bool streaming_favors_csf(std::size_t nnz, std::size_t order) {
  return static_cast<double>(nnz) *
             (16.0 + 4.0 * static_cast<double>(order)) >=
         kCsfStreamBytes;
}

std::size_t ttmc_row_width(const std::vector<la::Matrix>& factors,
                           std::size_t mode) {
  std::size_t width = 1;
  for (std::size_t t = 0; t < factors.size(); ++t) {
    if (t != mode) width *= factors[t].cols();
  }
  return width;
}

TtmcKernel ttmc_selected_kernel(const ModeSymbolic& sym, std::size_t order,
                                const TtmcOptions& options,
                                const tensor::CsfTree* csf) {
  const bool fiber_capable = (order == 3 || order == 4) && sym.has_fibers();
  const bool csf_capable = csf != nullptr && csf->levels() == order &&
                           order >= 2 && order <= kCsfMaxOrder &&
                           csf->has_values();
  switch (options.kernel) {
    case TtmcKernel::kPerNnz:
      return TtmcKernel::kPerNnz;
    case TtmcKernel::kFiberFactored:
      return fiber_capable ? TtmcKernel::kFiberFactored : TtmcKernel::kPerNnz;
    case TtmcKernel::kCsf:
      if (csf_capable) return TtmcKernel::kCsf;
      return fiber_capable ? TtmcKernel::kFiberFactored : TtmcKernel::kPerNnz;
    case TtmcKernel::kAuto:
      break;
  }
  // kAuto with a CSF tree in hand: two independent ways the walk wins.
  //  (i) Flop amortization — leaf runs long enough that the per-(sub)fiber
  //      expansion pays, judged by the tree's own leaf-run statistic (its
  //      shortest-mode-first ordering can group better than the flat
  //      index's increasing-mode order).
  // (ii) Memory-bound streaming — once the flat kernels' per-nonzero
  //      working set (value + other-mode indices + the nnz_order
  //      indirection) spills out of cache, their two random reads per
  //      nonzero dominate; the CSF walk streams values and coordinates in
  //      tree order and wins even on singleton leaf runs (measured ~1.4x
  //      on a scattered 2M-nnz mode, bench_ablation arm 7). In-cache
  //      tensors stay on the flat kernels, whose per-row constants are
  //      lower.
  if (csf_capable) {
    if (csf->avg_leaf_fiber_length() >= options.fiber_threshold) {
      return TtmcKernel::kCsf;
    }
    if (streaming_favors_csf(sym.nnz_order.size(), order)) {
      return TtmcKernel::kCsf;
    }
  }
  return fiber_capable && sym.avg_fiber_length() >= options.fiber_threshold
             ? TtmcKernel::kFiberFactored
             : TtmcKernel::kPerNnz;
}

bool ttmc_wants_csf(const SymbolicTtmc& symbolic, const TtmcOptions& options) {
  const std::size_t order = symbolic.modes.size();
  if (order < 2 || order > kCsfMaxOrder) return false;
  // Every mode tree-served by explicit request: the direct kernels — and
  // therefore the trees — never run.
  if (options.strategy == TtmcStrategy::kTree) return false;
  if (options.kernel == TtmcKernel::kCsf) return true;
  if (options.kernel != TtmcKernel::kAuto) return false;
  // Order >= 5 has no flat fiber index: CSF is the only factored family,
  // and the build is the only way to learn whether prefixes are shared.
  if (order >= 5) return true;
  for (const ModeSymbolic& m : symbolic.modes) {
    if (m.has_fibers() && m.avg_fiber_length() >= options.fiber_threshold) {
      return true;
    }
    // Out-of-cache tensors take the streaming branch of the selection rule
    // whatever their fiber statistics; see kCsfStreamBytes.
    if (streaming_favors_csf(m.nnz_order.size(), order)) return true;
  }
  return false;
}

void accumulate_kron(const CooTensor& x, nnz_t e,
                     const std::vector<la::Matrix>& factors, std::size_t mode,
                     std::span<double> out) {
  const std::size_t order = x.order();
  const double v = x.value(e);
  if (order == 3) {
    const auto o = other_modes(order, mode);
    kron2_accumulate(v, factors[o.m[0]].row(x.index(o.m[0], e)),
                     factors[o.m[1]].row(x.index(o.m[1], e)), out.data());
    return;
  }
  if (order == 4) {
    const auto o = other_modes(order, mode);
    kron3_accumulate(v, factors[o.m[0]].row(x.index(o.m[0], e)),
                     factors[o.m[1]].row(x.index(o.m[1], e)),
                     factors[o.m[2]].row(x.index(o.m[2], e)), out.data());
    return;
  }
  kron_general_accumulate(x, e, factors, mode, out, kernel_scratch().a);
}

void ttmc_mode(const CooTensor& x, const std::vector<la::Matrix>& factors,
               std::size_t mode, const ModeSymbolic& sym, la::Matrix& y,
               const TtmcOptions& options, const tensor::CsfTree* csf) {
  check_inputs(x, factors, mode);
  HT_CHECK_MSG(csf == nullptr || csf->root_mode() == mode,
               "CSF tree is rooted at another mode");
  // Capacity-preserving: every kernel zeroes each output row before
  // accumulating, so the realloc+memset of resize_zero would be pure waste
  // when mode widths differ across modes/iterations.
  y.resize(sym.num_rows(), ttmc_row_width(factors, mode));
  ttmc_dispatch(x, factors, mode, sym,
                static_cast<std::ptrdiff_t>(sym.num_rows()), IdentityRowMap{},
                y, options, csf);
}

void ttmc_mode_subset(const CooTensor& x,
                      const std::vector<la::Matrix>& factors, std::size_t mode,
                      const ModeSymbolic& sym,
                      std::span<const std::uint32_t> positions, la::Matrix& y,
                      const TtmcOptions& options, const tensor::CsfTree* csf) {
  check_inputs(x, factors, mode);
  HT_CHECK_MSG(csf == nullptr || csf->root_mode() == mode,
               "CSF tree is rooted at another mode");

#ifndef NDEBUG
  // Debug-only: dist_hooi calls this once per mode per HOOI iteration with
  // plan-derived positions that are fixed at plan construction; an
  // O(|positions|) per-call scan would serialize the hot loop for nothing.
  // In Release an out-of-range position is undefined behavior (the row loop
  // reads fiber_row_ptr/row_ptr past the end) — callers own the contract,
  // and CI's Debug job keeps this check live.
  for (std::uint32_t p : positions) {
    HT_CHECK_MSG(p < sym.num_rows(), "subset position out of range");
  }
#endif

  const auto npos = static_cast<std::ptrdiff_t>(positions.size());
  y.resize(positions.size(), ttmc_row_width(factors, mode));
  ttmc_dispatch(x, factors, mode, sym, npos, SubsetRowMap{positions}, y,
                options, csf);
}

}  // namespace ht::core
