#include "core/ttmc.hpp"

#include <algorithm>
#include <bit>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/error.hpp"

namespace ht::core {

namespace {

// One scratch arena per thread, shared by every kernel in this translation
// unit. The kernels are function templates (one instantiation per row map),
// so a thread_local inside each body would be duplicated per instantiation
// and per kernel; routing them all through one arena means the buffers grow
// once and are reused across rows, calls, kernels, and modes.
struct KernelScratch {
  std::vector<double> a;
  std::vector<double> b;
  std::vector<tensor::index_t> idx;
  // ALTO staging arena (tens of MB): persists across calls so the kernel
  // does not re-fault a fresh allocation every mode of every iteration.
  std::vector<double> stage;
};

inline KernelScratch& kernel_scratch() {
  thread_local KernelScratch scratch;
  return scratch;
}

// Specialized 3-mode kernel: y[ja * Rb + jb] += v * ua[ja] * ub[jb].
inline void kron2_accumulate(double v, std::span<const double> ua,
                             std::span<const double> ub, double* y) {
  const std::size_t ra = ua.size(), rb = ub.size();
  for (std::size_t ja = 0; ja < ra; ++ja) {
    const double s = v * ua[ja];
    double* yrow = y + ja * rb;
    for (std::size_t jb = 0; jb < rb; ++jb) yrow[jb] += s * ub[jb];
  }
}

// Specialized 4-mode kernel.
inline void kron3_accumulate(double v, std::span<const double> ua,
                             std::span<const double> ub,
                             std::span<const double> uc, double* y) {
  const std::size_t ra = ua.size(), rb = ub.size(), rc = uc.size();
  for (std::size_t ja = 0; ja < ra; ++ja) {
    const double sa = v * ua[ja];
    for (std::size_t jb = 0; jb < rb; ++jb) {
      const double sab = sa * ub[jb];
      double* yrow = y + (ja * rb + jb) * rc;
      for (std::size_t jc = 0; jc < rc; ++jc) yrow[jc] += sab * uc[jc];
    }
  }
}

// General-N kernel: progressive in-place expansion into a scratch buffer of
// the full row width, then accumulate into the output row.
void kron_general_accumulate(const CooTensor& x, nnz_t e,
                             const std::vector<la::Matrix>& factors,
                             std::size_t mode, std::span<double> out,
                             std::vector<double>& scratch) {
  scratch.resize(out.size());
  scratch[0] = x.value(e);
  std::size_t len = 1;
  for (std::size_t t = 0; t < x.order(); ++t) {
    if (t == mode) continue;
    const auto u = factors[t].row(x.index(t, e));
    const std::size_t r = u.size();
    for (std::size_t i = len; i-- > 0;) {
      const double s = scratch[i];
      double* dst = scratch.data() + i * r;
      for (std::size_t j = r; j-- > 0;) dst[j] = s * u[j];
    }
    len *= r;
  }
  HT_CHECK(len == out.size());
  for (std::size_t i = 0; i < len; ++i) out[i] += scratch[i];
}

// Modes other than `skip`, in increasing order (Kronecker factor order).
struct OtherModes {
  std::size_t m[3];
  std::size_t count;
};

inline OtherModes other_modes(std::size_t order, std::size_t skip) {
  OtherModes o{};
  o.count = 0;
  for (std::size_t t = 0; t < order; ++t) {
    if (t != skip) o.m[o.count++] = t;
  }
  return o;
}

// Run `body(r)` over [0, nrows) with the requested OpenMP schedule. The
// dynamic/static choice is the paper's load-balancing knob (Sec. III-A.1);
// the ablation bench compares both.
template <typename Body>
void parallel_rows(std::ptrdiff_t nrows, Schedule schedule, Body&& body) {
  if (schedule == Schedule::kDynamic) {
#pragma omp parallel for schedule(dynamic, 16)
    for (std::ptrdiff_t r = 0; r < nrows; ++r) body(r);
  } else {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t r = 0; r < nrows; ++r) body(r);
  }
}

// The full-mode and subset entry points share every kernel below through a
// row map: the loop index r runs over output rows, map(r) names the compact
// symbolic row it computes.

struct IdentityRowMap {
  std::size_t operator()(std::ptrdiff_t r) const {
    return static_cast<std::size_t>(r);
  }
};

struct SubsetRowMap {
  std::span<const std::uint32_t> positions;
  std::size_t operator()(std::ptrdiff_t r) const {
    return positions[static_cast<std::size_t>(r)];
  }
};

// ---- per-nonzero kernels --------------------------------------------------

template <typename RowMap>
void ttmc3_per_nnz(const CooTensor& x, const std::vector<la::Matrix>& factors,
                   std::size_t mode, const ModeSymbolic& sym,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(map(r))) {
      kron2_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                       row.data());
    }
  });
}

template <typename RowMap>
void ttmc4_per_nnz(const CooTensor& x, const std::vector<la::Matrix>& factors,
                   std::size_t mode, const ModeSymbolic& sym,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto idx_c = x.indices(o.m[2]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  const la::Matrix& fc = factors[o.m[2]];
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(map(r))) {
      kron3_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                       fc.row(idx_c[e]), row.data());
    }
  });
}

template <typename RowMap>
void ttmc_general_per_nnz(const CooTensor& x,
                          const std::vector<la::Matrix>& factors,
                          std::size_t mode, const ModeSymbolic& sym,
                          std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                          const TtmcOptions& options) {
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(map(r))) {
      kron_general_accumulate(x, e, factors, mode, row, kernel_scratch().a);
    }
  });
}

// ---- fiber-factored kernels -----------------------------------------------

// 3-mode: within a fiber every nonzero shares i_a, so the inner partial
//   t[jb] += v * u_b(i_b, jb)                       (R_b flops per nonzero)
// is expanded once per fiber as y += u_a(i_a, :) (x) t (R_a*R_b per fiber).
template <typename RowMap>
void ttmc3_fiber(const CooTensor& x, const std::vector<la::Matrix>& factors,
                 std::size_t mode, const ModeSymbolic& sym,
                 std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                 const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  const std::size_t rb = fb.cols();
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    std::vector<double>& t = kernel_scratch().a;
    t.resize(rb);
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    const std::size_t cr = map(r);
    for (nnz_t k = sym.fiber_row_ptr[cr]; k < sym.fiber_row_ptr[cr + 1]; ++k) {
      const nnz_t begin = sym.fiber_ptr[k], end = sym.fiber_ptr[k + 1];
      std::fill(t.begin(), t.end(), 0.0);
      for (nnz_t i = begin; i < end; ++i) {
        const nnz_t e = sym.nnz_order[i];
        const double v = values[e];
        const auto ub = fb.row(idx_b[e]);
        for (std::size_t jb = 0; jb < rb; ++jb) t[jb] += v * ub[jb];
      }
      const auto ua = fa.row(idx_a[sym.nnz_order[begin]]);
      for (std::size_t ja = 0; ja < ua.size(); ++ja) {
        const double s = ua[ja];
        double* yrow = row.data() + ja * rb;
        for (std::size_t jb = 0; jb < rb; ++jb) yrow[jb] += s * t[jb];
      }
    }
  });
}

// 4-mode, two-level: subfibers share (i_a, i_b) and accumulate
//   t_c[jc] += v * u_c(i_c, jc)                     (R_c flops per nonzero),
// expanded per subfiber into t_bc += u_b (x) t_c    (R_b*R_c per subfiber),
// expanded per fiber into y += u_a (x) t_bc         (R_a*R_b*R_c per fiber).
template <typename RowMap>
void ttmc4_fiber(const CooTensor& x, const std::vector<la::Matrix>& factors,
                 std::size_t mode, const ModeSymbolic& sym,
                 std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                 const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto idx_c = x.indices(o.m[2]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  const la::Matrix& fc = factors[o.m[2]];
  const std::size_t rb = fb.cols(), rc = fc.cols();
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    std::vector<double>& t_c = kernel_scratch().a;
    std::vector<double>& t_bc = kernel_scratch().b;
    t_c.resize(rc);
    t_bc.resize(rb * rc);
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    const std::size_t cr = map(r);
    for (nnz_t k = sym.fiber_row_ptr[cr]; k < sym.fiber_row_ptr[cr + 1]; ++k) {
      std::fill(t_bc.begin(), t_bc.end(), 0.0);
      for (nnz_t j = sym.subfiber_fiber_ptr[k]; j < sym.subfiber_fiber_ptr[k + 1];
           ++j) {
        const nnz_t begin = sym.subfiber_ptr[j], end = sym.subfiber_ptr[j + 1];
        std::fill(t_c.begin(), t_c.end(), 0.0);
        for (nnz_t i = begin; i < end; ++i) {
          const nnz_t e = sym.nnz_order[i];
          const double v = values[e];
          const auto uc = fc.row(idx_c[e]);
          for (std::size_t jc = 0; jc < rc; ++jc) t_c[jc] += v * uc[jc];
        }
        const auto ub = fb.row(idx_b[sym.nnz_order[begin]]);
        for (std::size_t jb = 0; jb < rb; ++jb) {
          const double s = ub[jb];
          double* dst = t_bc.data() + jb * rc;
          for (std::size_t jc = 0; jc < rc; ++jc) dst[jc] += s * t_c[jc];
        }
      }
      const auto ua = fa.row(idx_a[sym.nnz_order[sym.fiber_ptr[k]]]);
      for (std::size_t ja = 0; ja < ua.size(); ++ja) {
        const double s = ua[ja];
        double* yrow = row.data() + ja * rb * rc;
        for (std::size_t jbc = 0; jbc < rb * rc; ++jbc) {
          yrow[jbc] += s * t_bc[jbc];
        }
      }
    }
  });
}

// ---- CSF kernel ------------------------------------------------------------

// Deepest CSF tree the kernel's fixed-size per-level arrays accommodate;
// higher orders stay on the general per-nnz kernel (the selection logic
// never offers CSF trees past this depth to the dispatcher).
constexpr std::size_t kCsfMaxOrder = 8;

// Read-only per-invocation context of the CSF depth-first walk, shared by
// every thread (per-thread state is only the partial buffers).
struct CsfWalkCtx {
  const tensor::CsfTree* tree = nullptr;
  std::size_t nlevels = 0;
  // Per tree level: factor of that level's mode, and the width of a node
  // partial at that level (product of the ranks of all deeper levels).
  const la::Matrix* u[kCsfMaxOrder] = {};
  std::size_t width[kCsfMaxOrder] = {};
};

// DFS over one subtree: fills part[d] (width[d] doubles) with the node's
// partial contraction in tree Kronecker order. Leaf runs stream values and
// trailing coordinates sequentially (they were gathered into tree order at
// build time); every internal node pays its factor-row expansion exactly
// once, so shared prefixes amortize across all leaves below them.
void csf_walk(const CsfWalkCtx& c, std::size_t d, nnz_t node,
              double* const* part) {
  double* acc = part[d];
  std::fill(acc, acc + c.width[d], 0.0);
  const nnz_t* cptr = c.tree->ptr[d + 1].data();
  const nnz_t begin = cptr[node], end = cptr[node + 1];
  if (d + 2 == c.nlevels) {
    // Children are leaves: acc has the trailing factor's width.
    const index_t* leaf_idx = c.tree->idx[c.nlevels - 1].data();
    const double* vals = c.tree->values.data();
    const la::Matrix& uf = *c.u[c.nlevels - 1];
    const std::size_t r = c.width[d];
    for (nnz_t s = begin; s < end; ++s) {
      const double v = vals[s];
      const double* urow = uf.data() + static_cast<std::size_t>(leaf_idx[s]) * r;
      for (std::size_t j = 0; j < r; ++j) acc[j] += v * urow[j];
    }
    return;
  }
  const index_t* child_idx = c.tree->idx[d + 1].data();
  const la::Matrix& uc = *c.u[d + 1];
  const std::size_t rc = uc.cols();
  const std::size_t wc = c.width[d + 1];
  for (nnz_t k = begin; k < end; ++k) {
    csf_walk(c, d + 1, k, part);
    const double* child = part[d + 1];
    const double* urow = uc.data() + static_cast<std::size_t>(child_idx[k]) * rc;
    for (std::size_t j = 0; j < rc; ++j) {
      const double s = urow[j];
      double* dst = acc + j * wc;
      for (std::size_t q = 0; q < wc; ++q) dst[q] += s * child[q];
    }
  }
}

// Tile target: a tile closes once it holds this many leaves, so one giant
// root row becomes its own tile while sparse rows coalesce. The constant is
// independent of the thread count — tiling only partitions work, each row
// is still accumulated sequentially by one thread, so results are bitwise
// reproducible for any OpenMP configuration.
constexpr nnz_t kCsfTileNnz = 8192;

template <typename RowMap>
void ttmc_csf_tree(const std::vector<la::Matrix>& factors,
                   const tensor::CsfTree& tree, std::size_t mode,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options) {
  const std::size_t L = tree.levels();
  HT_CHECK_MSG(L <= kCsfMaxOrder, "CSF kernel supports tensors up to order 8");
  CsfWalkCtx c;
  c.tree = &tree;
  c.nlevels = L;
  for (std::size_t d = 0; d < L; ++d) c.u[d] = &factors[tree.level_modes[d]];
  c.width[L - 1] = 1;
  for (std::size_t d = L - 1; d-- > 0;) {
    c.width[d] = c.width[d + 1] * c.u[d + 1]->cols();
  }

  // The walk produces rows in *tree* Kronecker order (level 1 slowest, the
  // leaf level fastest). When the shortest-mode-first permutation reordered
  // the internal levels, a precomputed digit permutation scatters each
  // finished row into Y(n)'s increasing-mode layout; when the orders agree
  // the walk writes the output row in place.
  const bool identity = std::is_sorted(tree.level_modes.begin() + 1,
                                       tree.level_modes.end());
  std::vector<std::uint32_t> perm;
  if (!identity) {
    std::size_t stride_y[kCsfMaxOrder] = {};  // per tree level, stride in Y(n)'s layout
    for (std::size_t d = 1; d < L; ++d) {
      std::size_t stride = 1;
      for (std::size_t t = factors.size(); t-- > 0;) {
        if (t == mode) continue;
        if (t > tree.level_modes[d]) stride *= factors[t].cols();
      }
      stride_y[d] = stride;
    }
    perm.resize(c.width[0]);
    for (std::size_t p = 0; p < perm.size(); ++p) {
      std::size_t rem = p, q = 0;
      for (std::size_t d = 1; d < L; ++d) {
        q += (rem / c.width[d]) * stride_y[d];
        rem %= c.width[d];
      }
      perm[p] = static_cast<std::uint32_t>(q);
    }
  }

  // nnz-balanced tiles over the output rows.
  std::vector<std::ptrdiff_t> tile{0};
  nnz_t acc = 0;
  for (std::ptrdiff_t r = 0; r < nrows; ++r) {
    acc += tree.root_nnz(map(r));
    if (acc >= kCsfTileNnz) {
      tile.push_back(r + 1);
      acc = 0;
    }
  }
  if (tile.back() != nrows) tile.push_back(nrows);
  const auto ntiles = static_cast<std::ptrdiff_t>(tile.size() - 1);

  // Per-thread partial buffers, one per level 0..L-2, from the shared arena.
  std::size_t off[kCsfMaxOrder] = {};
  std::size_t total = 0;
  for (std::size_t d = 0; d + 1 < L; ++d) {
    off[d] = total;
    total += c.width[d];
  }

  const auto body = [&](std::ptrdiff_t ti) {
    std::vector<double>& buf = kernel_scratch().a;
    buf.resize(total);
    double* part[kCsfMaxOrder] = {};
    for (std::size_t d = 0; d + 1 < L; ++d) part[d] = buf.data() + off[d];
    for (std::ptrdiff_t r = tile[ti]; r < tile[ti + 1]; ++r) {
      auto row = y.row(static_cast<std::size_t>(r));
      if (identity) {
        part[0] = row.data();  // csf_walk zero-fills before accumulating
        csf_walk(c, 0, map(r), part);
      } else {
        part[0] = buf.data() + off[0];
        csf_walk(c, 0, map(r), part);
        const double* src = part[0];
        for (std::size_t p = 0; p < perm.size(); ++p) row[perm[p]] = src[p];
      }
    }
  };
  // Chunk size 1: tiles are already coarse, nnz-balanced units.
  if (options.schedule == Schedule::kDynamic) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::ptrdiff_t ti = 0; ti < ntiles; ++ti) body(ti);
  } else {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t ti = 0; ti < ntiles; ++ti) body(ti);
  }
}

// ---- ALTO kernel -----------------------------------------------------------

// Total staging doubles live per wave (64 MB). Fixed — never derived from
// the thread count or the machine — so wave boundaries, and therefore the
// per-row merge order, are reproducible anywhere. A mode whose largest
// per-partition staging block (index range x row width) cannot fit in one
// wave is not ALTO-feasible and the dispatcher degrades to a coordinate
// kernel for that mode.
constexpr std::size_t kAltoWaveDoubles = std::size_t{1} << 23;

// Ceiling of the dense path's single staging block (16 MB): modes whose
// full output block fits accumulate into one shared dim x width buffer
// with the columns split across threads; larger modes take the wave path.
constexpr std::size_t kAltoDenseDoubles = std::size_t{1} << 21;

// Flattened per-mode delinearization: one extraction mask per key word
// instead of AltoTensor::mode_index's per-run loop. The round-robin
// interleave assigns each mode's bits to the key in increasing index-bit
// order, so a parallel bit extract over the word mask concatenates them
// exactly — on BMI2 hardware that is one PEXT per word; the portable
// fallback walks the runs with the key words hoisted into registers.
struct AltoDecoder {
  struct Mode {
    std::uint64_t mask_lo = 0;   // extraction mask within key_lo
    std::uint64_t mask_hi = 0;   // extraction mask within key_hi
    unsigned lo_bits = 0;        // index bits coming from key_lo
    const tensor::AltoRun* runs = nullptr;
    std::size_t num_runs = 0;
  };
  std::vector<Mode> modes;
  std::size_t order = 0;

  explicit AltoDecoder(const tensor::AltoTensor& alto)
      : modes(alto.order()), order(alto.order()) {
    for (std::size_t n = 0; n < order; ++n) {
      Mode& m = modes[n];
      m.runs = alto.mode_runs[n].data();
      m.num_runs = alto.mode_runs[n].size();
      for (const tensor::AltoRun& r : alto.mode_runs[n]) {
        if (r.word == 0) {
          m.mask_lo |= r.mask << r.key_shift;
          m.lo_bits += static_cast<unsigned>(std::popcount(r.mask));
        } else {
          m.mask_hi |= r.mask << r.key_shift;
        }
      }
    }
  }

  inline void decode_runs(std::uint64_t lo, std::uint64_t hi,
                          index_t* idx) const {
    for (std::size_t n = 0; n < order; ++n) {
      const Mode& m = modes[n];
      std::uint64_t v = 0;
      for (std::size_t r = 0; r < m.num_runs; ++r) {
        const tensor::AltoRun& run = m.runs[r];
        const std::uint64_t w = run.word == 0 ? lo : hi;
        v |= ((w >> run.key_shift) & run.mask) << run.index_shift;
      }
      idx[n] = static_cast<index_t>(v);
    }
  }

  inline index_t decode_one_runs(std::uint64_t lo, std::uint64_t hi,
                                 std::size_t n) const {
    const Mode& m = modes[n];
    std::uint64_t v = 0;
    for (std::size_t r = 0; r < m.num_runs; ++r) {
      const tensor::AltoRun& run = m.runs[r];
      const std::uint64_t w = run.word == 0 ? lo : hi;
      v |= ((w >> run.key_shift) & run.mask) << run.index_shift;
    }
    return static_cast<index_t>(v);
  }

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  __attribute__((target("bmi2"))) inline void decode_pext(
      std::uint64_t lo, std::uint64_t hi, index_t* idx) const {
    for (std::size_t n = 0; n < order; ++n) {
      const Mode& m = modes[n];
      std::uint64_t v = __builtin_ia32_pext_di(lo, m.mask_lo);
      if (m.mask_hi != 0) {
        v |= __builtin_ia32_pext_di(hi, m.mask_hi) << m.lo_bits;
      }
      idx[n] = static_cast<index_t>(v);
    }
  }
  __attribute__((target("bmi2"))) inline index_t decode_one_pext(
      std::uint64_t lo, std::uint64_t hi, std::size_t n) const {
    const Mode& m = modes[n];
    std::uint64_t v = __builtin_ia32_pext_di(lo, m.mask_lo);
    if (m.mask_hi != 0) {
      v |= __builtin_ia32_pext_di(hi, m.mask_hi) << m.lo_bits;
    }
    return static_cast<index_t>(v);
  }
  static bool pext_available() {
    static const bool ok = __builtin_cpu_supports("bmi2");
    return ok;
  }
#else
  inline void decode_pext(std::uint64_t, std::uint64_t, index_t*) const {}
  inline index_t decode_one_pext(std::uint64_t, std::uint64_t,
                                 std::size_t) const {
    return 0;
  }
  static bool pext_available() { return false; }
#endif

  // One perfectly-predicted branch per nonzero; both arms produce the same
  // indices, so the kernel's arithmetic is identical either way.
  inline void decode(std::uint64_t lo, std::uint64_t hi, index_t* idx,
                     bool pext) const {
    if (pext) {
      decode_pext(lo, hi, idx);
    } else {
      decode_runs(lo, hi, idx);
    }
  }

  // Just one mode's index — cheap enough to run ahead of the main stream
  // for prefetching the staging row it targets.
  inline index_t decode_one(std::uint64_t lo, std::uint64_t hi, std::size_t n,
                            bool pext) const {
    return pext ? decode_one_pext(lo, hi, n) : decode_one_runs(lo, hi, n);
  }
};

inline std::size_t alto_stage_rows(const tensor::AltoTensor& alto,
                                   std::size_t p, std::size_t mode) {
  return static_cast<std::size_t>(alto.partition_max(p, mode) -
                                  alto.partition_min(p, mode)) +
         1;
}

bool alto_mode_feasible(const tensor::AltoTensor& alto, std::size_t mode,
                        std::size_t width) {
  const std::size_t cap = kAltoWaveDoubles / std::max<std::size_t>(width, 1);
  for (std::size_t p = 0; p < alto.num_partitions(); ++p) {
    if (alto_stage_rows(alto, p, mode) > cap) return false;
  }
  return true;
}

// General-N single-nonzero expansion from delinearized indices: the
// kron_general_accumulate shape without a CooTensor behind it.
void kron_idx_accumulate(double v, const std::vector<la::Matrix>& factors,
                         std::size_t mode, const index_t* idx, double* out,
                         std::size_t width, std::vector<double>& scratch) {
  scratch.resize(width);
  scratch[0] = v;
  std::size_t len = 1;
  for (std::size_t t = 0; t < factors.size(); ++t) {
    if (t == mode) continue;
    const auto u = factors[t].row(idx[t]);
    const std::size_t r = u.size();
    for (std::size_t i = len; i-- > 0;) {
      const double s = scratch[i];
      double* dst = scratch.data() + i * r;
      for (std::size_t j = r; j-- > 0;) dst[j] = s * u[j];
    }
    len *= r;
  }
  for (std::size_t i = 0; i < width; ++i) out[i] += scratch[i];
}

// Two-phase mode-agnostic TTMc over the single linearized structure, with
// two staging layouts behind the same deterministic contract:
//
// Dense column-split path (mode's full output block fits kAltoDenseDoubles):
// one shared dim x width staging block whose columns are carved into
// per-thread chunks along the leading other-mode's rank range. Each chunk
// streams every slot in order and accumulates only its column slice, so a
// given output column is always summed in slot order — the carve (and
// therefore the thread count) cannot change any sum's order, and a serial
// run is a single pass over a single block with no merge-sum at all.
// Phase B copies the requested rows out of the block.
//
// Wave path (huge modes): partitions are processed in waves bounded by
// kAltoWaveDoubles of staging. Phase 1 gives each partition to one thread,
// accumulating into a block indexed by (i_mode - partition_min) with
// lazy zeroing + a touched list; phase 2 merges partitions in increasing
// order, parallel over each partition's touched rows (single writer per
// row). Wave boundaries are budget-derived, never thread-derived.
//
// Both paths stream keys/values in slot order and fix every summation
// order structurally, so the result is bitwise identical for any thread
// count, schedule, and entry point (full or subset) — the CSF tiler's
// guarantee. Which path runs depends only on the tensor shape and rank
// widths, never on the machine.
template <typename RowMap>
void ttmc_alto(const std::vector<la::Matrix>& factors,
               const tensor::AltoTensor& alto, std::size_t mode,
               const ModeSymbolic& sym, std::ptrdiff_t nrows, RowMap map,
               la::Matrix& y, const TtmcOptions& options) {
  const std::size_t order = alto.order();
  const std::size_t width = y.cols();
  const std::size_t parts = alto.num_partitions();
  if (parts == 0 || nrows == 0 || width == 0) {
    parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
      auto row = y.row(static_cast<std::size_t>(r));
      std::fill(row.begin(), row.end(), 0.0);
    });
    return;
  }

  const AltoDecoder dec(alto);
  const bool pext = AltoDecoder::pext_available();
  const std::uint64_t* klo = alto.key_lo.data();
  const std::uint64_t* khi = alto.key_hi.empty() ? nullptr : alto.key_hi.data();
  const double* vals = alto.values.data();

  OtherModes om{};
  const la::Matrix* fa = nullptr;
  const la::Matrix* fb = nullptr;
  const la::Matrix* fc = nullptr;
  if (order == 3 || order == 4) {
    om = other_modes(order, mode);
    fa = &factors[om.m[0]];
    fb = &factors[om.m[1]];
    if (order == 4) fc = &factors[om.m[2]];
  }

  // Stream [begin, end) slots, accumulating each nonzero's expansion into
  // the staging row srow_of(i_mode). Shared by both paths. addr_of(i_mode)
  // is the side-effect-free address of that row: the accumulation is a
  // read-modify-write of a key-dependent row, so a lookahead decode of just
  // the target mode (one PEXT) plus a write prefetch hides most of the
  // staging block's access latency.
  auto accumulate_slots = [&](nnz_t begin, nnz_t end, auto&& srow_of,
                              auto&& addr_of) {
    constexpr nnz_t kLookahead = 8;
    std::vector<index_t>& idx = kernel_scratch().idx;
    idx.resize(order);
    for (nnz_t s = begin; s < end; ++s) {
      if (s + kLookahead < end) {
        const nnz_t q = s + kLookahead;
        const std::uint64_t qhi = khi != nullptr ? khi[q] : 0;
        const double* pr = addr_of(dec.decode_one(klo[q], qhi, mode, pext));
        for (std::size_t b = 0; b < width; b += 8) {
          __builtin_prefetch(pr + b, 1);
        }
      }
      const std::uint64_t lo = klo[s];
      const std::uint64_t hi = khi != nullptr ? khi[s] : 0;
      dec.decode(lo, hi, idx.data(), pext);
      double* srow = srow_of(idx[mode]);
      const double v = vals[s];
      if (order == 3) {
        kron2_accumulate(v, fa->row(idx[om.m[0]]), fb->row(idx[om.m[1]]),
                         srow);
      } else if (order == 4) {
        kron3_accumulate(v, fa->row(idx[om.m[0]]), fb->row(idx[om.m[1]]),
                         fc->row(idx[om.m[2]]), srow);
      } else {
        kron_idx_accumulate(v, factors, mode, idx.data(), srow, width,
                            kernel_scratch().a);
      }
    }
  };

  const std::size_t dim = alto.shape[mode];
  if (dim * width <= kAltoDenseDoubles) {
    // ---- dense column-split path ----
    // One shared dim x width staging block; threads split the *columns* by
    // carving the leading other-mode's rank range [0, ra) into contiguous
    // chunks (so a chunk's columns are served by a sliced leading factor
    // row). Every thread streams all slots, but each output column is
    // accumulated by exactly one thread in slot order — so the sums are
    // bitwise identical for ANY chunk carve, and the chunk count can
    // follow the machine's thread count without breaking determinism.
    // Serially this degenerates to one pass over one block: no staging
    // replication, no merge-sum — staging traffic is one zero + one copy
    // of dim x width.
    const std::size_t lead = mode == 0 ? 1 : 0;
    const la::Matrix& flead = factors[lead];
    const std::size_t ra = flead.cols();
    const std::size_t inner = ra > 0 ? width / ra : width;
#ifdef _OPENMP
    const std::size_t nblocks = std::clamp<std::size_t>(
        static_cast<std::size_t>(omp_get_max_threads()), std::size_t{1},
        std::max<std::size_t>(ra, 1));
#else
    const std::size_t nblocks = 1;
#endif

    // Accumulate every slot's expansion restricted to leading-factor
    // columns [a0, a1): the chunk's slice of the full Kronecker row.
    auto accumulate_chunk = [&](std::size_t a0, std::size_t a1,
                                double* block) {
      const std::size_t wt = (a1 - a0) * inner;
      std::vector<index_t>& idx = kernel_scratch().idx;
      idx.resize(order);
      std::vector<double>& tail = kernel_scratch().b;
      const nnz_t begin = alto.part_ptr[0];
      const nnz_t end = alto.part_ptr[parts];
      for (nnz_t s = begin; s < end; ++s) {
        const std::uint64_t lo = klo[s];
        const std::uint64_t hi = khi != nullptr ? khi[s] : 0;
        dec.decode(lo, hi, idx.data(), pext);
        double* srow = block + idx[mode] * wt;
        const double v = vals[s];
        const auto ua = flead.row(idx[lead]).subspan(a0, a1 - a0);
        if (order == 3) {
          kron2_accumulate(v, ua, fb->row(idx[om.m[1]]), srow);
        } else if (order == 4) {
          kron3_accumulate(v, ua, fb->row(idx[om.m[1]]),
                           fc->row(idx[om.m[2]]), srow);
        } else {
          // Order 2 (empty tail = the scalar 1) and order >= 5: expand the
          // trailing modes' Kronecker row once, then the sliced outer.
          tail.resize(std::max<std::size_t>(inner, 1));
          tail[0] = 1.0;
          std::size_t len = 1;
          for (std::size_t t2 = 0; t2 < order; ++t2) {
            if (t2 == mode || t2 == lead) continue;
            const auto u = factors[t2].row(idx[t2]);
            const std::size_t r = u.size();
            for (std::size_t i = len; i-- > 0;) {
              const double sc = tail[i];
              double* dst = tail.data() + i * r;
              for (std::size_t j = r; j-- > 0;) dst[j] = sc * u[j];
            }
            len *= r;
          }
          kron2_accumulate(v, ua, std::span<const double>(tail.data(), len),
                           srow);
        }
      }
    };

    std::vector<double>& stage = kernel_scratch().stage;
    stage.resize(dim * width);
    const auto c_blocks = static_cast<std::ptrdiff_t>(nblocks);
#pragma omp parallel for schedule(static, 1)
    for (std::ptrdiff_t t = 0; t < c_blocks; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      const std::size_t a0 = ra * ti / nblocks;
      const std::size_t a1 = ra * (ti + 1) / nblocks;
      if (a0 == a1) continue;
      const std::size_t wt = (a1 - a0) * inner;
      double* block = stage.data() + dim * a0 * inner;
      std::fill(block, block + dim * wt, 0.0);
      accumulate_chunk(a0, a1, block);
    }
    // Phase B: copy each requested row's column chunks out of the shared
    // block (assignment, not accumulation — the chunks are disjoint).
    parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
      const std::size_t i = sym.rows[map(r)];
      auto yrow = y.row(static_cast<std::size_t>(r));
      for (std::size_t t = 0; t < nblocks; ++t) {
        const std::size_t a0 = ra * t / nblocks;
        const std::size_t a1 = ra * (t + 1) / nblocks;
        if (a0 == a1) continue;
        const std::size_t wt = (a1 - a0) * inner;
        const double* src = stage.data() + dim * a0 * inner + i * wt;
        double* dst = yrow.data() + a0 * inner;
        for (std::size_t j = 0; j < wt; ++j) dst[j] = src[j];
      }
    });
    return;
  }

  // ---- wave path ----
  // Zero the output first; the merge phase only adds rows that partitions
  // touched (rows with no nonzeros in the subset stay zero).
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
  });

  // Output row of each compact symbolic row (identity for the full entry,
  // sparse for a subset). kNoRow rows still accumulate in staging — their
  // partitions cannot know — but are skipped at merge time.
  constexpr std::uint32_t kNoRow = 0xFFFFFFFFu;
  std::vector<std::uint32_t> out_row(sym.num_rows(), kNoRow);
  for (std::ptrdiff_t r = 0; r < nrows; ++r) {
    out_row[map(r)] = static_cast<std::uint32_t>(r);
  }

  std::vector<double>& stage = kernel_scratch().stage;
  std::vector<std::uint8_t> touched_flag;
  std::vector<std::vector<index_t>> touched;
  std::vector<std::size_t> off;

  std::size_t wave_begin = 0;
  while (wave_begin < parts) {
    // Greedy fixed-budget wave [wave_begin, wave_end).
    std::size_t wave_end = wave_begin;
    std::size_t doubles = 0;
    off.clear();
    while (wave_end < parts) {
      const std::size_t need = alto_stage_rows(alto, wave_end, mode) * width;
      if (wave_end > wave_begin && doubles + need > kAltoWaveDoubles) break;
      off.push_back(doubles);
      doubles += need;
      ++wave_end;
    }
    HT_CHECK_MSG(doubles <= kAltoWaveDoubles,
                 "ALTO staging block exceeds the wave budget");
    const std::size_t wave_n = wave_end - wave_begin;
    stage.resize(doubles);
    touched_flag.assign(doubles / width, 0);
    touched.assign(wave_n, {});

    // Phase 1: accumulate every partition into its staging block.
    const auto c_wave = static_cast<std::ptrdiff_t>(wave_n);
#pragma omp parallel for schedule(dynamic, 1)
    for (std::ptrdiff_t w = 0; w < c_wave; ++w) {
      const auto wi = static_cast<std::size_t>(w);
      const std::size_t p = wave_begin + wi;
      const index_t base = alto.partition_min(p, mode);
      double* block = stage.data() + off[wi];
      std::uint8_t* flag = touched_flag.data() + off[wi] / width;
      std::vector<index_t>& rows_hit = touched[wi];
      accumulate_slots(alto.part_ptr[p], alto.part_ptr[p + 1],
                       [&](index_t i) {
                         const auto local = static_cast<std::size_t>(i - base);
                         double* srow = block + local * width;
                         if (!flag[local]) {
                           flag[local] = 1;
                           rows_hit.push_back(static_cast<index_t>(local));
                           std::fill(srow, srow + width, 0.0);
                         }
                         return srow;
                       },
                       [&](index_t i) -> const double* {
                         return block + static_cast<std::size_t>(i - base) *
                                            width;
                       });
    }

    // Phase 2: merge, one partition at a time in increasing order.
    for (std::size_t w = 0; w < wave_n; ++w) {
      const std::size_t p = wave_begin + w;
      const index_t base = alto.partition_min(p, mode);
      const double* block = stage.data() + off[w];
      const std::vector<index_t>& rows_hit = touched[w];
      const auto c_hits = static_cast<std::ptrdiff_t>(rows_hit.size());
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t h = 0; h < c_hits; ++h) {
        const index_t local = rows_hit[static_cast<std::size_t>(h)];
        const index_t i = base + local;
        // Compact row of global row i: present by construction (the row
        // has nonzeros), found by binary search in the sorted row set.
        const auto it =
            std::lower_bound(sym.rows.begin(), sym.rows.end(), i);
        const auto cr = static_cast<std::size_t>(it - sym.rows.begin());
        const std::uint32_t outr = out_row[cr];
        if (outr == kNoRow) continue;
        auto yrow = y.row(outr);
        const double* srow = block + static_cast<std::size_t>(local) * width;
        for (std::size_t j = 0; j < width; ++j) yrow[j] += srow[j];
      }
    }
    wave_begin = wave_end;
  }
}

// ---- dispatch --------------------------------------------------------------

template <typename RowMap>
void ttmc_dispatch(const CooTensor& x, const std::vector<la::Matrix>& factors,
                   std::size_t mode, const ModeSymbolic& sym,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options, const tensor::CsfTree* csf,
                   const tensor::AltoTensor* alto) {
  const std::size_t order = x.order();
  TtmcKernel kernel = ttmc_selected_kernel(sym, order, options, csf, alto);
  if (kernel == TtmcKernel::kAlto &&
      !alto_mode_feasible(*alto, mode, y.cols())) {
    // Pathological index-range x width staging for this mode: re-select as
    // if no ALTO structure were in hand.
    kernel = ttmc_selected_kernel(sym, order, options, csf, nullptr);
  }
  if (kernel == TtmcKernel::kAlto) {
    HT_CHECK_MSG(alto->nnz() == sym.nnz_order.size(),
                 "ALTO structure does not match the symbolic structure");
    ttmc_alto(factors, *alto, mode, sym, nrows, map, y, options);
    return;
  }
  if (kernel == TtmcKernel::kCsf) {
    HT_CHECK_MSG(csf->num_roots() == sym.num_rows(),
                 "CSF tree does not match the symbolic structure");
    ttmc_csf_tree(factors, *csf, mode, nrows, map, y, options);
    return;
  }
  if (order == 3) {
    if (kernel == TtmcKernel::kFiberFactored) {
      ttmc3_fiber(x, factors, mode, sym, nrows, map, y, options);
    } else {
      ttmc3_per_nnz(x, factors, mode, sym, nrows, map, y, options);
    }
    return;
  }
  if (order == 4) {
    if (kernel == TtmcKernel::kFiberFactored) {
      ttmc4_fiber(x, factors, mode, sym, nrows, map, y, options);
    } else {
      ttmc4_per_nnz(x, factors, mode, sym, nrows, map, y, options);
    }
    return;
  }
  ttmc_general_per_nnz(x, factors, mode, sym, nrows, map, y, options);
}

void check_inputs(const CooTensor& x, const std::vector<la::Matrix>& factors,
                  std::size_t mode) {
  HT_CHECK_MSG(factors.size() == x.order(), "factor arity mismatch");
  HT_CHECK(mode < x.order());
  for (std::size_t t = 0; t < x.order(); ++t) {
    HT_CHECK_MSG(factors[t].rows() == x.dim(t),
                 "factor " << t << " has " << factors[t].rows()
                           << " rows, mode size is " << x.dim(t));
  }
}

}  // namespace

// Working-set threshold of the kAuto streaming rule: past this many bytes
// of per-nonzero traffic a flat kernel's random reads leave the last-level
// cache and the CSF walk's sequential streams win on bandwidth alone.
// Sized at a typical LLC; the exact value only matters near the boundary,
// where the kernels tie anyway.
constexpr double kCsfStreamBytes = 24.0 * 1024.0 * 1024.0;

// The streaming rule itself, shared by kernel selection and the
// tree-construction gate so the two can never disagree: per nonzero a flat
// kernel touches the value (8B), the nnz_order indirection (8B), and one
// 4B index per other mode (order - 1 of them, rounded up to order).
static bool streaming_favors_csf(std::size_t nnz, std::size_t order) {
  return static_cast<double>(nnz) *
             (16.0 + 4.0 * static_cast<double>(order)) >=
         kCsfStreamBytes;
}

std::size_t ttmc_row_width(const std::vector<la::Matrix>& factors,
                           std::size_t mode) {
  std::size_t width = 1;
  for (std::size_t t = 0; t < factors.size(); ++t) {
    if (t != mode) width *= factors[t].cols();
  }
  return width;
}

TtmcKernel ttmc_selected_kernel(const ModeSymbolic& sym, std::size_t order,
                                const TtmcOptions& options,
                                const tensor::CsfTree* csf,
                                const tensor::AltoTensor* alto) {
  const bool fiber_capable = (order == 3 || order == 4) && sym.has_fibers();
  const bool csf_capable = csf != nullptr && csf->levels() == order &&
                           order >= 2 && order <= kCsfMaxOrder &&
                           csf->has_values();
  const bool alto_capable = alto != nullptr && alto->order() == order &&
                            order >= 2 && alto->has_values();
  switch (options.kernel) {
    case TtmcKernel::kPerNnz:
      return TtmcKernel::kPerNnz;
    case TtmcKernel::kFiberFactored:
      return fiber_capable ? TtmcKernel::kFiberFactored : TtmcKernel::kPerNnz;
    case TtmcKernel::kCsf:
      if (csf_capable) return TtmcKernel::kCsf;
      return fiber_capable ? TtmcKernel::kFiberFactored : TtmcKernel::kPerNnz;
    case TtmcKernel::kAlto:
      if (alto_capable) return TtmcKernel::kAlto;
      if (csf_capable) return TtmcKernel::kCsf;
      return fiber_capable ? TtmcKernel::kFiberFactored : TtmcKernel::kPerNnz;
    case TtmcKernel::kAuto:
      break;
  }
  // kAuto with a CSF tree in hand: two independent ways the walk wins.
  //  (i) Flop amortization — leaf runs long enough that the per-(sub)fiber
  //      expansion pays, judged by the tree's own leaf-run statistic (its
  //      shortest-mode-first ordering can group better than the flat
  //      index's increasing-mode order).
  // (ii) Memory-bound streaming — once the flat kernels' per-nonzero
  //      working set (value + other-mode indices + the nnz_order
  //      indirection) spills out of cache, their two random reads per
  //      nonzero dominate; the CSF walk streams values and coordinates in
  //      tree order and wins even on singleton leaf runs (measured ~1.4x
  //      on a scattered 2M-nnz mode, bench_ablation arm 7). In-cache
  //      tensors stay on the flat kernels, whose per-row constants are
  //      lower.
  if (csf_capable) {
    if (csf->avg_leaf_fiber_length() >= options.fiber_threshold) {
      return TtmcKernel::kCsf;
    }
    if (streaming_favors_csf(sym.nnz_order.size(), order)) {
      return TtmcKernel::kCsf;
    }
  }
  if (fiber_capable && sym.avg_fiber_length() >= options.fiber_threshold) {
    return TtmcKernel::kFiberFactored;
  }
  // No CSF tree and no long fibers, but an ALTO structure is in hand: on
  // out-of-cache tensors its sequential key/value streams and dense
  // staging accumulation beat the flat kernels' two random reads per
  // nonzero — the same streaming argument as rule (ii) above, served by
  // the single linearized structure instead of a per-mode tree.
  if (alto_capable && streaming_favors_csf(sym.nnz_order.size(), order)) {
    return TtmcKernel::kAlto;
  }
  return TtmcKernel::kPerNnz;
}

double csf_forest_bytes_estimate(std::size_t nnz, std::size_t order) {
  // Per tree and per nonzero, worst case: a 4B leaf coordinate, ~8B of
  // level pointers, the 8B leaf gather map, and the 8B gathered value.
  // Internal-level coordinates compress below this; the estimate errs
  // toward the uncompressed bound, which is the safe direction for a
  // memory budget.
  return static_cast<double>(order) * static_cast<double>(nnz) * 28.0;
}

double alto_bytes_estimate(std::size_t nnz, const tensor::Shape& shape) {
  const unsigned words =
      tensor::AltoTensor::fits_key_budget(shape) &&
              tensor::AltoTensor::key_bits_for(shape) > 64
          ? 2
          : 1;
  // Keys + gather map + gathered values; the partition table is O(nnz /
  // kAltoPartNnz) and disappears in the rounding.
  return static_cast<double>(nnz) * (8.0 * words + 8.0 + 8.0);
}

bool ttmc_wants_csf(const SymbolicTtmc& symbolic, const TtmcOptions& options) {
  const std::size_t order = symbolic.modes.size();
  if (order < 2 || order > kCsfMaxOrder) return false;
  // Every mode tree-served by explicit request: the direct kernels — and
  // therefore the trees — never run.
  if (options.strategy == TtmcStrategy::kTree) return false;
  if (options.kernel == TtmcKernel::kCsf) return true;
  if (options.kernel != TtmcKernel::kAuto) return false;
  const std::size_t nnz =
      symbolic.modes.empty() ? 0 : symbolic.modes[0].nnz_order.size();
  // Memory gate: under a structure budget the N-tree forest may simply not
  // fit (the serve/out-of-core regime). ttmc_wants_alto offers the single
  // linearized structure for the same tensors instead.
  if (options.structure_budget_bytes > 0 &&
      csf_forest_bytes_estimate(nnz, order) > options.structure_budget_bytes) {
    return false;
  }
  // Order >= 5 has no flat fiber index: CSF is the only factored family,
  // and the build is the only way to learn whether prefixes are shared.
  if (order >= 5) return true;
  for (const ModeSymbolic& m : symbolic.modes) {
    if (m.has_fibers() && m.avg_fiber_length() >= options.fiber_threshold) {
      return true;
    }
    // Out-of-cache tensors take the streaming branch of the selection rule
    // whatever their fiber statistics; see kCsfStreamBytes.
    if (streaming_favors_csf(m.nnz_order.size(), order)) return true;
  }
  return false;
}

bool ttmc_wants_alto(const SymbolicTtmc& symbolic, const tensor::Shape& shape,
                     const TtmcOptions& options) {
  const std::size_t order = symbolic.modes.size();
  if (order < 2) return false;
  if (options.strategy == TtmcStrategy::kTree) return false;
  if (!tensor::AltoTensor::fits_key_budget(shape)) return false;
  if (options.kernel == TtmcKernel::kAlto) return true;
  if (options.kernel != TtmcKernel::kAuto) return false;
  // kAuto: ALTO steps in exactly when a factored/streaming structure would
  // pay by the time heuristics but the CSF forest blows the structure
  // budget and the single linearized structure fits — the
  // footprint-vs-speed trade the budget exists to arbitrate.
  if (options.structure_budget_bytes <= 0) return false;
  const std::size_t nnz =
      symbolic.modes.empty() ? 0 : symbolic.modes[0].nnz_order.size();
  if (csf_forest_bytes_estimate(nnz, order) <=
      options.structure_budget_bytes) {
    return false;  // the faster forest fits; ttmc_wants_csf said yes
  }
  if (alto_bytes_estimate(nnz, shape) > options.structure_budget_bytes) {
    return false;  // nothing fits; stay on the structure-free flat kernels
  }
  // Time gate, mirroring the one trigger the kAuto selection rule actually
  // uses for ALTO: the out-of-cache streaming win. (In-cache tensors stay
  // on the flat kernels, whose per-row constants are lower, so building a
  // structure for them would be pure waste.)
  return streaming_favors_csf(nnz, order);
}

void accumulate_kron(const CooTensor& x, nnz_t e,
                     const std::vector<la::Matrix>& factors, std::size_t mode,
                     std::span<double> out) {
  const std::size_t order = x.order();
  const double v = x.value(e);
  if (order == 3) {
    const auto o = other_modes(order, mode);
    kron2_accumulate(v, factors[o.m[0]].row(x.index(o.m[0], e)),
                     factors[o.m[1]].row(x.index(o.m[1], e)), out.data());
    return;
  }
  if (order == 4) {
    const auto o = other_modes(order, mode);
    kron3_accumulate(v, factors[o.m[0]].row(x.index(o.m[0], e)),
                     factors[o.m[1]].row(x.index(o.m[1], e)),
                     factors[o.m[2]].row(x.index(o.m[2], e)), out.data());
    return;
  }
  kron_general_accumulate(x, e, factors, mode, out, kernel_scratch().a);
}

void ttmc_mode(const CooTensor& x, const std::vector<la::Matrix>& factors,
               std::size_t mode, const ModeSymbolic& sym, la::Matrix& y,
               const TtmcOptions& options, const tensor::CsfTree* csf,
               const tensor::AltoTensor* alto) {
  check_inputs(x, factors, mode);
  HT_CHECK_MSG(csf == nullptr || csf->root_mode() == mode,
               "CSF tree is rooted at another mode");
  HT_CHECK_MSG(alto == nullptr || alto->shape == x.shape(),
               "ALTO structure was built for another shape");
  // Capacity-preserving: every kernel zeroes each output row before
  // accumulating, so the realloc+memset of resize_zero would be pure waste
  // when mode widths differ across modes/iterations.
  y.resize(sym.num_rows(), ttmc_row_width(factors, mode));
  ttmc_dispatch(x, factors, mode, sym,
                static_cast<std::ptrdiff_t>(sym.num_rows()), IdentityRowMap{},
                y, options, csf, alto);
}

void ttmc_mode_subset(const CooTensor& x,
                      const std::vector<la::Matrix>& factors, std::size_t mode,
                      const ModeSymbolic& sym,
                      std::span<const std::uint32_t> positions, la::Matrix& y,
                      const TtmcOptions& options, const tensor::CsfTree* csf,
                      const tensor::AltoTensor* alto) {
  check_inputs(x, factors, mode);
  HT_CHECK_MSG(csf == nullptr || csf->root_mode() == mode,
               "CSF tree is rooted at another mode");
  HT_CHECK_MSG(alto == nullptr || alto->shape == x.shape(),
               "ALTO structure was built for another shape");

#ifndef NDEBUG
  // Debug-only: dist_hooi calls this once per mode per HOOI iteration with
  // plan-derived positions that are fixed at plan construction; an
  // O(|positions|) per-call scan would serialize the hot loop for nothing.
  // In Release an out-of-range position is undefined behavior (the row loop
  // reads fiber_row_ptr/row_ptr past the end) — callers own the contract,
  // and CI's Debug job keeps this check live.
  for (std::uint32_t p : positions) {
    HT_CHECK_MSG(p < sym.num_rows(), "subset position out of range");
  }
#endif

  const auto npos = static_cast<std::ptrdiff_t>(positions.size());
  y.resize(positions.size(), ttmc_row_width(factors, mode));
  ttmc_dispatch(x, factors, mode, sym, npos, SubsetRowMap{positions}, y,
                options, csf, alto);
}

}  // namespace ht::core
