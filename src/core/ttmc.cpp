#include "core/ttmc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ht::core {

namespace {

// Specialized 3-mode kernel: y[ja * Rb + jb] += v * ua[ja] * ub[jb].
inline void kron2_accumulate(double v, std::span<const double> ua,
                             std::span<const double> ub, double* y) {
  const std::size_t ra = ua.size(), rb = ub.size();
  for (std::size_t ja = 0; ja < ra; ++ja) {
    const double s = v * ua[ja];
    double* yrow = y + ja * rb;
    for (std::size_t jb = 0; jb < rb; ++jb) yrow[jb] += s * ub[jb];
  }
}

// Specialized 4-mode kernel.
inline void kron3_accumulate(double v, std::span<const double> ua,
                             std::span<const double> ub,
                             std::span<const double> uc, double* y) {
  const std::size_t ra = ua.size(), rb = ub.size(), rc = uc.size();
  for (std::size_t ja = 0; ja < ra; ++ja) {
    const double sa = v * ua[ja];
    for (std::size_t jb = 0; jb < rb; ++jb) {
      const double sab = sa * ub[jb];
      double* yrow = y + (ja * rb + jb) * rc;
      for (std::size_t jc = 0; jc < rc; ++jc) yrow[jc] += sab * uc[jc];
    }
  }
}

// General-N kernel: progressive in-place expansion into a scratch buffer of
// the full row width, then accumulate into the output row.
void kron_general_accumulate(const CooTensor& x, nnz_t e,
                             const std::vector<la::Matrix>& factors,
                             std::size_t mode, std::span<double> out,
                             std::vector<double>& scratch) {
  scratch.resize(out.size());
  scratch[0] = x.value(e);
  std::size_t len = 1;
  for (std::size_t t = 0; t < x.order(); ++t) {
    if (t == mode) continue;
    const auto u = factors[t].row(x.index(t, e));
    const std::size_t r = u.size();
    for (std::size_t i = len; i-- > 0;) {
      const double s = scratch[i];
      double* dst = scratch.data() + i * r;
      for (std::size_t j = r; j-- > 0;) dst[j] = s * u[j];
    }
    len *= r;
  }
  HT_CHECK(len == out.size());
  for (std::size_t i = 0; i < len; ++i) out[i] += scratch[i];
}

// Modes other than `skip`, in increasing order (Kronecker factor order).
struct OtherModes {
  std::size_t m[3];
  std::size_t count;
};

inline OtherModes other_modes(std::size_t order, std::size_t skip) {
  OtherModes o{};
  o.count = 0;
  for (std::size_t t = 0; t < order; ++t) {
    if (t != skip) o.m[o.count++] = t;
  }
  return o;
}

// Run `body(r)` over [0, nrows) with the requested OpenMP schedule. The
// dynamic/static choice is the paper's load-balancing knob (Sec. III-A.1);
// the ablation bench compares both.
template <typename Body>
void parallel_rows(std::ptrdiff_t nrows, Schedule schedule, Body&& body) {
  if (schedule == Schedule::kDynamic) {
#pragma omp parallel for schedule(dynamic, 16)
    for (std::ptrdiff_t r = 0; r < nrows; ++r) body(r);
  } else {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t r = 0; r < nrows; ++r) body(r);
  }
}

}  // namespace

std::size_t ttmc_row_width(const std::vector<la::Matrix>& factors,
                           std::size_t mode) {
  std::size_t width = 1;
  for (std::size_t t = 0; t < factors.size(); ++t) {
    if (t != mode) width *= factors[t].cols();
  }
  return width;
}

void accumulate_kron(const CooTensor& x, nnz_t e,
                     const std::vector<la::Matrix>& factors, std::size_t mode,
                     std::span<double> out) {
  const std::size_t order = x.order();
  const double v = x.value(e);
  if (order == 3) {
    const auto o = other_modes(order, mode);
    kron2_accumulate(v, factors[o.m[0]].row(x.index(o.m[0], e)),
                     factors[o.m[1]].row(x.index(o.m[1], e)), out.data());
    return;
  }
  if (order == 4) {
    const auto o = other_modes(order, mode);
    kron3_accumulate(v, factors[o.m[0]].row(x.index(o.m[0], e)),
                     factors[o.m[1]].row(x.index(o.m[1], e)),
                     factors[o.m[2]].row(x.index(o.m[2], e)), out.data());
    return;
  }
  thread_local std::vector<double> scratch;
  kron_general_accumulate(x, e, factors, mode, out, scratch);
}

void ttmc_mode(const CooTensor& x, const std::vector<la::Matrix>& factors,
               std::size_t mode, const ModeSymbolic& sym, la::Matrix& y,
               const TtmcOptions& options) {
  HT_CHECK_MSG(factors.size() == x.order(), "factor arity mismatch");
  HT_CHECK(mode < x.order());
  for (std::size_t t = 0; t < x.order(); ++t) {
    HT_CHECK_MSG(factors[t].rows() == x.dim(t),
                 "factor " << t << " has " << factors[t].rows()
                           << " rows, mode size is " << x.dim(t));
  }

  const std::size_t width = ttmc_row_width(factors, mode);
  const auto nrows = static_cast<std::ptrdiff_t>(sym.num_rows());
  if (y.rows() != sym.num_rows() || y.cols() != width) {
    y.resize_zero(sym.num_rows(), width);
  }

  const std::size_t order = x.order();

  if (order == 3) {
    const auto o = other_modes(order, mode);
    const auto idx_a = x.indices(o.m[0]);
    const auto idx_b = x.indices(o.m[1]);
    const auto values = x.values();
    const la::Matrix& fa = factors[o.m[0]];
    const la::Matrix& fb = factors[o.m[1]];
    parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
      auto row = y.row(static_cast<std::size_t>(r));
      std::fill(row.begin(), row.end(), 0.0);
      for (nnz_t e : sym.update_list(static_cast<std::size_t>(r))) {
        kron2_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                         row.data());
      }
    });
    return;
  }

  if (order == 4) {
    const auto o = other_modes(order, mode);
    const auto idx_a = x.indices(o.m[0]);
    const auto idx_b = x.indices(o.m[1]);
    const auto idx_c = x.indices(o.m[2]);
    const auto values = x.values();
    const la::Matrix& fa = factors[o.m[0]];
    const la::Matrix& fb = factors[o.m[1]];
    const la::Matrix& fc = factors[o.m[2]];
    parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
      auto row = y.row(static_cast<std::size_t>(r));
      std::fill(row.begin(), row.end(), 0.0);
      for (nnz_t e : sym.update_list(static_cast<std::size_t>(r))) {
        kron3_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                         fc.row(idx_c[e]), row.data());
      }
    });
    return;
  }

  // General N: per-thread scratch buffer for the Kronecker expansion.
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    thread_local std::vector<double> scratch;
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(static_cast<std::size_t>(r))) {
      kron_general_accumulate(x, e, factors, mode, row, scratch);
    }
  });
}

void ttmc_mode_subset(const CooTensor& x,
                      const std::vector<la::Matrix>& factors, std::size_t mode,
                      const ModeSymbolic& sym,
                      std::span<const std::uint32_t> positions, la::Matrix& y,
                      const TtmcOptions& options) {
  HT_CHECK_MSG(factors.size() == x.order(), "factor arity mismatch");
  HT_CHECK(mode < x.order());
  for (std::uint32_t p : positions) {
    HT_CHECK_MSG(p < sym.num_rows(), "subset position out of range");
  }

  const std::size_t width = ttmc_row_width(factors, mode);
  if (y.rows() != positions.size() || y.cols() != width) {
    y.resize_zero(positions.size(), width);
  }
  const auto nrows = static_cast<std::ptrdiff_t>(positions.size());
  const std::size_t order = x.order();

  if (order == 3) {
    const auto o = other_modes(order, mode);
    const auto idx_a = x.indices(o.m[0]);
    const auto idx_b = x.indices(o.m[1]);
    const auto values = x.values();
    const la::Matrix& fa = factors[o.m[0]];
    const la::Matrix& fb = factors[o.m[1]];
    parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
      auto row = y.row(static_cast<std::size_t>(r));
      std::fill(row.begin(), row.end(), 0.0);
      for (nnz_t e : sym.update_list(positions[static_cast<std::size_t>(r)])) {
        kron2_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                         row.data());
      }
    });
    return;
  }

  if (order == 4) {
    const auto o = other_modes(order, mode);
    const auto idx_a = x.indices(o.m[0]);
    const auto idx_b = x.indices(o.m[1]);
    const auto idx_c = x.indices(o.m[2]);
    const auto values = x.values();
    const la::Matrix& fa = factors[o.m[0]];
    const la::Matrix& fb = factors[o.m[1]];
    const la::Matrix& fc = factors[o.m[2]];
    parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
      auto row = y.row(static_cast<std::size_t>(r));
      std::fill(row.begin(), row.end(), 0.0);
      for (nnz_t e : sym.update_list(positions[static_cast<std::size_t>(r)])) {
        kron3_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                         fc.row(idx_c[e]), row.data());
      }
    });
    return;
  }

  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    thread_local std::vector<double> scratch;
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(positions[static_cast<std::size_t>(r)])) {
      kron_general_accumulate(x, e, factors, mode, row, scratch);
    }
  });
}

}  // namespace ht::core
