#include "core/ttmc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ht::core {

namespace {

// One scratch arena per thread, shared by every kernel in this translation
// unit. The kernels are function templates (one instantiation per row map),
// so a thread_local inside each body would be duplicated per instantiation
// and per kernel; routing them all through one arena means the buffers grow
// once and are reused across rows, calls, kernels, and modes.
struct KernelScratch {
  std::vector<double> a;
  std::vector<double> b;
};

inline KernelScratch& kernel_scratch() {
  thread_local KernelScratch scratch;
  return scratch;
}

// Specialized 3-mode kernel: y[ja * Rb + jb] += v * ua[ja] * ub[jb].
inline void kron2_accumulate(double v, std::span<const double> ua,
                             std::span<const double> ub, double* y) {
  const std::size_t ra = ua.size(), rb = ub.size();
  for (std::size_t ja = 0; ja < ra; ++ja) {
    const double s = v * ua[ja];
    double* yrow = y + ja * rb;
    for (std::size_t jb = 0; jb < rb; ++jb) yrow[jb] += s * ub[jb];
  }
}

// Specialized 4-mode kernel.
inline void kron3_accumulate(double v, std::span<const double> ua,
                             std::span<const double> ub,
                             std::span<const double> uc, double* y) {
  const std::size_t ra = ua.size(), rb = ub.size(), rc = uc.size();
  for (std::size_t ja = 0; ja < ra; ++ja) {
    const double sa = v * ua[ja];
    for (std::size_t jb = 0; jb < rb; ++jb) {
      const double sab = sa * ub[jb];
      double* yrow = y + (ja * rb + jb) * rc;
      for (std::size_t jc = 0; jc < rc; ++jc) yrow[jc] += sab * uc[jc];
    }
  }
}

// General-N kernel: progressive in-place expansion into a scratch buffer of
// the full row width, then accumulate into the output row.
void kron_general_accumulate(const CooTensor& x, nnz_t e,
                             const std::vector<la::Matrix>& factors,
                             std::size_t mode, std::span<double> out,
                             std::vector<double>& scratch) {
  scratch.resize(out.size());
  scratch[0] = x.value(e);
  std::size_t len = 1;
  for (std::size_t t = 0; t < x.order(); ++t) {
    if (t == mode) continue;
    const auto u = factors[t].row(x.index(t, e));
    const std::size_t r = u.size();
    for (std::size_t i = len; i-- > 0;) {
      const double s = scratch[i];
      double* dst = scratch.data() + i * r;
      for (std::size_t j = r; j-- > 0;) dst[j] = s * u[j];
    }
    len *= r;
  }
  HT_CHECK(len == out.size());
  for (std::size_t i = 0; i < len; ++i) out[i] += scratch[i];
}

// Modes other than `skip`, in increasing order (Kronecker factor order).
struct OtherModes {
  std::size_t m[3];
  std::size_t count;
};

inline OtherModes other_modes(std::size_t order, std::size_t skip) {
  OtherModes o{};
  o.count = 0;
  for (std::size_t t = 0; t < order; ++t) {
    if (t != skip) o.m[o.count++] = t;
  }
  return o;
}

// Run `body(r)` over [0, nrows) with the requested OpenMP schedule. The
// dynamic/static choice is the paper's load-balancing knob (Sec. III-A.1);
// the ablation bench compares both.
template <typename Body>
void parallel_rows(std::ptrdiff_t nrows, Schedule schedule, Body&& body) {
  if (schedule == Schedule::kDynamic) {
#pragma omp parallel for schedule(dynamic, 16)
    for (std::ptrdiff_t r = 0; r < nrows; ++r) body(r);
  } else {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t r = 0; r < nrows; ++r) body(r);
  }
}

// The full-mode and subset entry points share every kernel below through a
// row map: the loop index r runs over output rows, map(r) names the compact
// symbolic row it computes.

struct IdentityRowMap {
  std::size_t operator()(std::ptrdiff_t r) const {
    return static_cast<std::size_t>(r);
  }
};

struct SubsetRowMap {
  std::span<const std::uint32_t> positions;
  std::size_t operator()(std::ptrdiff_t r) const {
    return positions[static_cast<std::size_t>(r)];
  }
};

// ---- per-nonzero kernels --------------------------------------------------

template <typename RowMap>
void ttmc3_per_nnz(const CooTensor& x, const std::vector<la::Matrix>& factors,
                   std::size_t mode, const ModeSymbolic& sym,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(map(r))) {
      kron2_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                       row.data());
    }
  });
}

template <typename RowMap>
void ttmc4_per_nnz(const CooTensor& x, const std::vector<la::Matrix>& factors,
                   std::size_t mode, const ModeSymbolic& sym,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto idx_c = x.indices(o.m[2]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  const la::Matrix& fc = factors[o.m[2]];
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(map(r))) {
      kron3_accumulate(values[e], fa.row(idx_a[e]), fb.row(idx_b[e]),
                       fc.row(idx_c[e]), row.data());
    }
  });
}

template <typename RowMap>
void ttmc_general_per_nnz(const CooTensor& x,
                          const std::vector<la::Matrix>& factors,
                          std::size_t mode, const ModeSymbolic& sym,
                          std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                          const TtmcOptions& options) {
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    for (nnz_t e : sym.update_list(map(r))) {
      kron_general_accumulate(x, e, factors, mode, row, kernel_scratch().a);
    }
  });
}

// ---- fiber-factored kernels -----------------------------------------------

// 3-mode: within a fiber every nonzero shares i_a, so the inner partial
//   t[jb] += v * u_b(i_b, jb)                       (R_b flops per nonzero)
// is expanded once per fiber as y += u_a(i_a, :) (x) t (R_a*R_b per fiber).
template <typename RowMap>
void ttmc3_fiber(const CooTensor& x, const std::vector<la::Matrix>& factors,
                 std::size_t mode, const ModeSymbolic& sym,
                 std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                 const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  const std::size_t rb = fb.cols();
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    std::vector<double>& t = kernel_scratch().a;
    t.resize(rb);
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    const std::size_t cr = map(r);
    for (nnz_t k = sym.fiber_row_ptr[cr]; k < sym.fiber_row_ptr[cr + 1]; ++k) {
      const nnz_t begin = sym.fiber_ptr[k], end = sym.fiber_ptr[k + 1];
      std::fill(t.begin(), t.end(), 0.0);
      for (nnz_t i = begin; i < end; ++i) {
        const nnz_t e = sym.nnz_order[i];
        const double v = values[e];
        const auto ub = fb.row(idx_b[e]);
        for (std::size_t jb = 0; jb < rb; ++jb) t[jb] += v * ub[jb];
      }
      const auto ua = fa.row(idx_a[sym.nnz_order[begin]]);
      for (std::size_t ja = 0; ja < ua.size(); ++ja) {
        const double s = ua[ja];
        double* yrow = row.data() + ja * rb;
        for (std::size_t jb = 0; jb < rb; ++jb) yrow[jb] += s * t[jb];
      }
    }
  });
}

// 4-mode, two-level: subfibers share (i_a, i_b) and accumulate
//   t_c[jc] += v * u_c(i_c, jc)                     (R_c flops per nonzero),
// expanded per subfiber into t_bc += u_b (x) t_c    (R_b*R_c per subfiber),
// expanded per fiber into y += u_a (x) t_bc         (R_a*R_b*R_c per fiber).
template <typename RowMap>
void ttmc4_fiber(const CooTensor& x, const std::vector<la::Matrix>& factors,
                 std::size_t mode, const ModeSymbolic& sym,
                 std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                 const TtmcOptions& options) {
  const auto o = other_modes(x.order(), mode);
  const auto idx_a = x.indices(o.m[0]);
  const auto idx_b = x.indices(o.m[1]);
  const auto idx_c = x.indices(o.m[2]);
  const auto values = x.values();
  const la::Matrix& fa = factors[o.m[0]];
  const la::Matrix& fb = factors[o.m[1]];
  const la::Matrix& fc = factors[o.m[2]];
  const std::size_t rb = fb.cols(), rc = fc.cols();
  parallel_rows(nrows, options.schedule, [&](std::ptrdiff_t r) {
    std::vector<double>& t_c = kernel_scratch().a;
    std::vector<double>& t_bc = kernel_scratch().b;
    t_c.resize(rc);
    t_bc.resize(rb * rc);
    auto row = y.row(static_cast<std::size_t>(r));
    std::fill(row.begin(), row.end(), 0.0);
    const std::size_t cr = map(r);
    for (nnz_t k = sym.fiber_row_ptr[cr]; k < sym.fiber_row_ptr[cr + 1]; ++k) {
      std::fill(t_bc.begin(), t_bc.end(), 0.0);
      for (nnz_t j = sym.subfiber_fiber_ptr[k]; j < sym.subfiber_fiber_ptr[k + 1];
           ++j) {
        const nnz_t begin = sym.subfiber_ptr[j], end = sym.subfiber_ptr[j + 1];
        std::fill(t_c.begin(), t_c.end(), 0.0);
        for (nnz_t i = begin; i < end; ++i) {
          const nnz_t e = sym.nnz_order[i];
          const double v = values[e];
          const auto uc = fc.row(idx_c[e]);
          for (std::size_t jc = 0; jc < rc; ++jc) t_c[jc] += v * uc[jc];
        }
        const auto ub = fb.row(idx_b[sym.nnz_order[begin]]);
        for (std::size_t jb = 0; jb < rb; ++jb) {
          const double s = ub[jb];
          double* dst = t_bc.data() + jb * rc;
          for (std::size_t jc = 0; jc < rc; ++jc) dst[jc] += s * t_c[jc];
        }
      }
      const auto ua = fa.row(idx_a[sym.nnz_order[sym.fiber_ptr[k]]]);
      for (std::size_t ja = 0; ja < ua.size(); ++ja) {
        const double s = ua[ja];
        double* yrow = row.data() + ja * rb * rc;
        for (std::size_t jbc = 0; jbc < rb * rc; ++jbc) {
          yrow[jbc] += s * t_bc[jbc];
        }
      }
    }
  });
}

// ---- dispatch --------------------------------------------------------------

template <typename RowMap>
void ttmc_dispatch(const CooTensor& x, const std::vector<la::Matrix>& factors,
                   std::size_t mode, const ModeSymbolic& sym,
                   std::ptrdiff_t nrows, RowMap map, la::Matrix& y,
                   const TtmcOptions& options) {
  const std::size_t order = x.order();
  const TtmcKernel kernel = ttmc_selected_kernel(sym, order, options);
  if (order == 3) {
    if (kernel == TtmcKernel::kFiberFactored) {
      ttmc3_fiber(x, factors, mode, sym, nrows, map, y, options);
    } else {
      ttmc3_per_nnz(x, factors, mode, sym, nrows, map, y, options);
    }
    return;
  }
  if (order == 4) {
    if (kernel == TtmcKernel::kFiberFactored) {
      ttmc4_fiber(x, factors, mode, sym, nrows, map, y, options);
    } else {
      ttmc4_per_nnz(x, factors, mode, sym, nrows, map, y, options);
    }
    return;
  }
  ttmc_general_per_nnz(x, factors, mode, sym, nrows, map, y, options);
}

void check_inputs(const CooTensor& x, const std::vector<la::Matrix>& factors,
                  std::size_t mode) {
  HT_CHECK_MSG(factors.size() == x.order(), "factor arity mismatch");
  HT_CHECK(mode < x.order());
  for (std::size_t t = 0; t < x.order(); ++t) {
    HT_CHECK_MSG(factors[t].rows() == x.dim(t),
                 "factor " << t << " has " << factors[t].rows()
                           << " rows, mode size is " << x.dim(t));
  }
}

}  // namespace

std::size_t ttmc_row_width(const std::vector<la::Matrix>& factors,
                           std::size_t mode) {
  std::size_t width = 1;
  for (std::size_t t = 0; t < factors.size(); ++t) {
    if (t != mode) width *= factors[t].cols();
  }
  return width;
}

TtmcKernel ttmc_selected_kernel(const ModeSymbolic& sym, std::size_t order,
                                const TtmcOptions& options) {
  const bool fiber_capable = (order == 3 || order == 4) && sym.has_fibers();
  switch (options.kernel) {
    case TtmcKernel::kPerNnz:
      return TtmcKernel::kPerNnz;
    case TtmcKernel::kFiberFactored:
      return fiber_capable ? TtmcKernel::kFiberFactored : TtmcKernel::kPerNnz;
    case TtmcKernel::kAuto:
      break;
  }
  return fiber_capable && sym.avg_fiber_length() >= options.fiber_threshold
             ? TtmcKernel::kFiberFactored
             : TtmcKernel::kPerNnz;
}

void accumulate_kron(const CooTensor& x, nnz_t e,
                     const std::vector<la::Matrix>& factors, std::size_t mode,
                     std::span<double> out) {
  const std::size_t order = x.order();
  const double v = x.value(e);
  if (order == 3) {
    const auto o = other_modes(order, mode);
    kron2_accumulate(v, factors[o.m[0]].row(x.index(o.m[0], e)),
                     factors[o.m[1]].row(x.index(o.m[1], e)), out.data());
    return;
  }
  if (order == 4) {
    const auto o = other_modes(order, mode);
    kron3_accumulate(v, factors[o.m[0]].row(x.index(o.m[0], e)),
                     factors[o.m[1]].row(x.index(o.m[1], e)),
                     factors[o.m[2]].row(x.index(o.m[2], e)), out.data());
    return;
  }
  kron_general_accumulate(x, e, factors, mode, out, kernel_scratch().a);
}

void ttmc_mode(const CooTensor& x, const std::vector<la::Matrix>& factors,
               std::size_t mode, const ModeSymbolic& sym, la::Matrix& y,
               const TtmcOptions& options) {
  check_inputs(x, factors, mode);
  // Capacity-preserving: every kernel zeroes each output row before
  // accumulating, so the realloc+memset of resize_zero would be pure waste
  // when mode widths differ across modes/iterations.
  y.resize(sym.num_rows(), ttmc_row_width(factors, mode));
  ttmc_dispatch(x, factors, mode, sym,
                static_cast<std::ptrdiff_t>(sym.num_rows()), IdentityRowMap{},
                y, options);
}

void ttmc_mode_subset(const CooTensor& x,
                      const std::vector<la::Matrix>& factors, std::size_t mode,
                      const ModeSymbolic& sym,
                      std::span<const std::uint32_t> positions, la::Matrix& y,
                      const TtmcOptions& options) {
  check_inputs(x, factors, mode);

#ifndef NDEBUG
  // Debug-only: dist_hooi calls this once per mode per HOOI iteration with
  // plan-derived positions that are fixed at plan construction; an
  // O(|positions|) per-call scan would serialize the hot loop for nothing.
  // In Release an out-of-range position is undefined behavior (the row loop
  // reads fiber_row_ptr/row_ptr past the end) — callers own the contract,
  // and CI's Debug job keeps this check live.
  for (std::uint32_t p : positions) {
    HT_CHECK_MSG(p < sym.num_rows(), "subset position out of range");
  }
#endif

  const auto npos = static_cast<std::ptrdiff_t>(positions.size());
  y.resize(positions.size(), ttmc_row_width(factors, mode));
  ttmc_dispatch(x, factors, mode, sym, npos, SubsetRowMap{positions}, y,
                options);
}

}  // namespace ht::core
