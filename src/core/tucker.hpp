// Tucker decomposition container and quality measures.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/dense_tensor.hpp"

namespace ht::core {

using tensor::index_t;

/// [[G; U_1, ..., U_N]]: a core tensor of shape ranks and one orthonormal
/// factor matrix (I_n x R_n) per mode.
struct TuckerDecomposition {
  tensor::DenseTensor core;
  std::vector<la::Matrix> factors;

  [[nodiscard]] std::size_t order() const { return factors.size(); }
  [[nodiscard]] std::vector<index_t> ranks() const;

  /// Model value at one coordinate:
  ///   sum_{r} G(r) * prod_n U_n(i_n, r_n).
  /// Used by the recommender/prediction examples.
  [[nodiscard]] double reconstruct_at(std::span<const index_t> idx) const;

  /// Densify the model (test sizes only).
  [[nodiscard]] tensor::DenseTensor reconstruct_dense() const;
};

/// Fit of a decomposition against X: 1 - ||X - Xhat|| / ||X||. For
/// orthonormal factors ||X - Xhat||^2 = ||X||^2 - ||G||^2 (the quantity the
/// paper's convergence check uses), which avoids forming Xhat.
double fit_from_core_norm(double x_norm2, double core_norm2);

/// Exact fit by evaluating the model at every nonzero and accounting for the
/// model mass off the nonzero support (test sizes only; O(nnz * prod R)).
double fit_exact(const tensor::CooTensor& x, const TuckerDecomposition& t);

}  // namespace ht::core
