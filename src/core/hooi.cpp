#include "core/hooi.hpp"

#include <cmath>
#include <optional>

#include "core/hosvd.hpp"
#include "la/blas.hpp"
#include "parallel/thread_info.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace ht::core {

void validate_hooi_options(const CooTensor& x, const HooiOptions& options) {
  if (x.nnz() == 0) throw InvalidArgument("HOOI needs a nonempty tensor");
  if (options.ranks.size() != x.order()) {
    throw InvalidArgument("need one rank per tensor mode");
  }
  for (std::size_t n = 0; n < x.order(); ++n) {
    if (options.ranks[n] < 1 || options.ranks[n] > x.dim(n)) {
      throw InvalidArgument("rank out of range for mode " + std::to_string(n));
    }
  }
  if (options.max_iterations < 1) {
    throw InvalidArgument("max_iterations must be >= 1");
  }
}

HooiResult hooi(const CooTensor& x, const HooiOptions& options) {
  validate_hooi_options(x, options);
  parallel::ThreadScope threads(options.num_threads);

  WallTimer timer;
  // Only kAuto and an explicit fiber request consult the fiber index; skip
  // the per-row sorts it would cost otherwise (kCsf walks its own trees).
  const bool with_fibers = options.ttmc_kernel == TtmcKernel::kAuto ||
                           options.ttmc_kernel == TtmcKernel::kFiberFactored;
  const SymbolicTtmc symbolic = SymbolicTtmc::build(x, with_fibers);
  const double symbolic_seconds = timer.seconds();

  HooiResult result = hooi(x, options, symbolic);
  result.timers.symbolic += symbolic_seconds;
  return result;
}

HooiResult hooi(const CooTensor& x, const HooiOptions& options,
                const SymbolicTtmc& symbolic) {
  validate_hooi_options(x, options);
  if (options.ttmc_strategy == TtmcStrategy::kDirect || x.order() < 2) {
    return hooi(x, options, symbolic, nullptr);
  }
  WallTimer timer;
  const DimTreePlan tree = DimTreePlan::build(x);
  const double tree_seconds = timer.seconds();
  HooiResult result = hooi(x, options, symbolic, &tree);
  // Plan construction is preprocessing, like the symbolic pass: paid once,
  // amortized over iterations (and sweeps, when the caller reuses it).
  result.timers.symbolic += tree_seconds;
  return result;
}

HooiResult hooi(const CooTensor& x, const HooiOptions& options,
                const SymbolicTtmc& symbolic, const DimTreePlan* tree) {
  return hooi(x, options, symbolic, tree, nullptr);
}

HooiResult hooi(const CooTensor& x, const HooiOptions& options,
                const SymbolicTtmc& symbolic, const DimTreePlan* tree,
                const tensor::CsfTensor* csf) {
  return hooi(x, options, symbolic, tree, csf, nullptr);
}

HooiResult hooi(const CooTensor& x, const HooiOptions& options,
                const SymbolicTtmc& symbolic, const DimTreePlan* tree,
                const tensor::CsfTensor* csf, const tensor::AltoTensor* alto) {
  validate_hooi_options(x, options);
  HT_CHECK_MSG(symbolic.modes.size() == x.order(),
               "symbolic structure does not match tensor");
  parallel::ThreadScope threads(options.num_threads);

  const std::size_t order = x.order();
  HooiResult result;

  std::vector<la::Matrix> factors =
      options.init == HooiInit::kRandom
          ? random_orthonormal_factors(x.shape(), options.ranks, options.seed)
          : randomized_range_factors(x, options.ranks, options.seed);

  const double x_norm2 = x.norm2_squared();
  const TtmcOptions ttmc_options{options.ttmc_schedule, options.ttmc_kernel,
                                 options.ttmc_fiber_threshold,
                                 options.ttmc_strategy,
                                 options.ttmc_structure_budget};

  // CSF trees are preprocessing like the symbolic pass and the tree plan:
  // pattern-only, built once, reused across iterations (and, when the
  // caller passes them in, across runs and rank grids).
  std::optional<tensor::CsfTensor> owned_csf;
  if (csf == nullptr && ttmc_wants_csf(symbolic, ttmc_options)) {
    WallTimer t_csf;
    owned_csf.emplace(tensor::CsfTensor::build(x));
    csf = &*owned_csf;
    result.timers.symbolic += t_csf.seconds();
  }
  // Same contract for the linearized structure: one sorted key array serves
  // every mode, so its (sort-dominated) build cost amortizes identically.
  std::optional<tensor::AltoTensor> owned_alto;
  if (alto == nullptr && ttmc_wants_alto(symbolic, x.shape(), ttmc_options)) {
    WallTimer t_alto;
    owned_alto.emplace(tensor::AltoTensor::build(x));
    alto = &*owned_alto;
    result.timers.symbolic += t_alto.seconds();
  }
  TtmcScheduler scheduler(x, symbolic, tree, options.ranks, ttmc_options,
                          csf, alto);

  la::Matrix y;  // compact Y(n), reused across modes/iterations
  la::Matrix last_compact_u;
  double previous_fit = -1.0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (std::size_t n = 0; n < order; ++n) {
      WallTimer t_ttmc;
      scheduler.compute(factors, n, y);
      result.timers.ttmc += t_ttmc.seconds();

      WallTimer t_trsvd;
      FactorTrsvd svd =
          trsvd_factor(y, symbolic.modes[n].rows, x.dim(n), options.ranks[n],
                       options.trsvd_method, options.trsvd);
      result.timers.trsvd += t_trsvd.seconds();

      factors[n] = std::move(svd.factor);
      if (n + 1 == order) last_compact_u = std::move(svd.compact_u);
    }

    // Core tensor: G(N) = U_N^T Y(N); Y still holds the mode-(N-1) TTMc.
    WallTimer t_core;
    const la::Matrix g_mat = la::gemm_tn(last_compact_u, y);
    tensor::Shape core_shape(options.ranks.begin(), options.ranks.end());
    result.decomposition.core =
        tensor::DenseTensor::dematricize(g_mat, core_shape, order - 1);
    result.timers.core += t_core.seconds();

    const double core_norm = result.decomposition.core.frobenius_norm();
    const double fit = fit_from_core_norm(x_norm2, core_norm * core_norm);
    result.fits.push_back(fit);
    result.iterations = iter + 1;

    if (previous_fit >= 0.0 &&
        std::abs(fit - previous_fit) < options.fit_tolerance) {
      result.converged = true;
      break;
    }
    previous_fit = fit;
  }

  result.decomposition.factors = std::move(factors);
  return result;
}

}  // namespace ht::core
