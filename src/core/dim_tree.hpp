// Dimension-tree TTMc scheduler: cross-mode reuse of partial contractions.
//
// The nonzero-based TTMc (paper Eq. 4 / Algorithm 2) recomputes Y(n) from
// raw nonzeros for every mode of every HOOI sweep, even though consecutive
// modes share all factors but one. The dimension tree removes that
// redundancy (cf. Oh et al., "Scalable Tucker Factorization for Sparse
// Tensors", and CSF/ALTO-style compressed intermediates): split the modes
// into a left group L = [0, split) and a right group R = [split, N), and
// materialize per sweep
//   P_L = X x_{t in L} U_t^T   (semi-sparse in the R modes),
//   P_R = X x_{t in R} U_t^T   (semi-sparse in the L modes).
// Every mode n is then served from the *opposite* partial by contracting
// the remaining factors of its own group:
//   n in L:  Y(n) = P_R x_{t in L \ {n}} U_t^T,
//   n in R:  Y(n) = P_L x_{t in R \ {n}} U_t^T.
// Each partial is built once per sweep instead of each mode re-touching all
// nonzeros, cutting the per-iteration nonzero passes from N to 2 (~half the
// TTMc flops for 3-mode tensors, more for 4/5-mode). HOOI's freshness
// contract survives exactly: modes are updated in increasing order, so P_R
// built at sweep start only depends on factors updated *after* all L modes,
// and P_L is (re)built after the last L update — tree-served Y(n) equals
// the direct computation to rounding.
//
// Block layouts are arranged so a served Y(n) matches ttmc_mode bit-layout:
// partials append their group's ranks in increasing mode order (fastest
// last); serving a left mode prepends the remaining left factors in
// decreasing mode order, serving a right mode appends the remaining right
// factors in increasing mode order.
//
// All merge plans (tensor::TtmPlan) are symbolic: they depend only on the
// nonzero pattern, so one DimTreePlan is reused across iterations, HOOI
// runs, and the rank grid of a rank sweep.
//
// Determinism: plan construction and the numeric applies are pure
// functions of (tensor pattern, factors) — group orders come from stable
// radix sorts and every output block has a single writer accumulating in
// plan order, so results are bitwise reproducible for any thread count or
// schedule. Thread-safety: DimTreePlan is immutable after build() and may
// be shared by any number of concurrent TtmcScheduler instances;
// TtmcScheduler itself is stateful (owns the partial buffers, tracks
// factor freshness) and must not be used from two threads at once — give
// each SPMD rank or concurrent HOOI run its own scheduler over the shared
// plan.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/symbolic.hpp"
#include "core/ttmc.hpp"
#include "tensor/semi_sparse.hpp"

namespace ht::core {

/// Symbolic dimension-tree plan for one tensor. Immutable after build();
/// shared by any number of concurrent TtmcScheduler instances.
class DimTreePlan {
 public:
  DimTreePlan() = default;

  /// Build the contraction and serve plans. Requires order >= 2.
  static DimTreePlan build(const CooTensor& x);

  [[nodiscard]] std::size_t order() const { return order_; }
  /// Left group is [0, split()), right group [split(), order()).
  [[nodiscard]] std::size_t split() const { return split_; }
  [[nodiscard]] bool in_left(std::size_t mode) const { return mode < split_; }

  /// Chain contracting the left (resp. right) group's modes out of X. Its
  /// output partial is semi-sparse in the opposite group's modes and serves
  /// them.
  [[nodiscard]] const std::vector<tensor::TtmPlan>& contract_chain(
      bool left) const {
    return left ? contract_left_ : contract_right_;
  }

  /// Steps applied to the opposite partial to serve this mode; empty when
  /// the mode's group is a singleton (the partial's rows *are* Y(n)).
  [[nodiscard]] const std::vector<tensor::TtmPlan>& serve_chain(
      std::size_t mode) const {
    return serve_[mode];
  }

  /// Rows of the served compact Y(n); equals ModeSymbolic::rows.size().
  [[nodiscard]] std::size_t serve_rows(std::size_t mode) const {
    return serve_rows_[mode];
  }

  /// Cost estimate (flop-equivalents, including per-slot memory-traffic
  /// charges — see dim_tree.cpp) of building the left/right contraction
  /// chain at the given ranks: per step, slots * in_block * rank for the
  /// accumulation plus groups * out_block for the zero-and-write.
  [[nodiscard]] double contract_cost(bool left,
                                     std::span<const index_t> ranks) const;

  /// Cost estimate of serving one mode from its (already built) partial.
  [[nodiscard]] double serve_cost(std::size_t mode,
                                  std::span<const index_t> ranks) const;

 private:
  static double chain_cost(const std::vector<tensor::TtmPlan>& chain,
                           std::size_t in_block,
                           std::span<const index_t> ranks,
                           bool leaf_gathered);

  std::size_t order_ = 0;
  std::size_t split_ = 0;
  std::vector<tensor::TtmPlan> contract_left_;
  std::vector<tensor::TtmPlan> contract_right_;
  std::vector<std::vector<tensor::TtmPlan>> serve_;
  std::vector<std::size_t> serve_rows_;
};

/// Per-run numeric engine. Owns the two partial value buffers and serves
/// compact Y(n) by the selected strategy (direct kernels or tree-served),
/// lazily (re)building a partial when the factors it depends on changed.
///
/// Caller contract (HOOI's access pattern): compute() / compute_subset()
/// is called with the *current* factors, and factors[mode] may be replaced
/// right after the call — the scheduler conservatively invalidates the
/// partial contracted over `mode` on every call. Callers that mutate
/// factors outside this pattern must call invalidate().
class TtmcScheduler {
 public:
  /// `tree` may be null: every mode is then evaluated directly. `csf` and
  /// `alto` may be null: the direct path then never uses the CSF (resp.
  /// ALTO) kernel (callers that want them — hooi, rank_sweep, dist_hooi —
  /// consult ttmc_wants_csf/ttmc_wants_alto and build the structure up
  /// front so its cost lands in the symbolic timers and is reused across
  /// runs). `symbolic`, `tree`, `csf`, `alto`, and `x` must outlive the
  /// scheduler.
  TtmcScheduler(const CooTensor& x, const SymbolicTtmc& symbolic,
                const DimTreePlan* tree, std::span<const index_t> ranks,
                const TtmcOptions& options,
                const tensor::CsfTensor* csf = nullptr,
                const tensor::AltoTensor* alto = nullptr);

  /// Strategy the cost model (or an explicit request) resolved for a mode.
  [[nodiscard]] TtmcStrategy selected(std::size_t mode) const {
    return selected_[mode];
  }

  /// Cost estimates behind the kAuto decision, exposed for tests/benches.
  [[nodiscard]] double direct_cost(std::size_t mode) const {
    return direct_cost_[mode];
  }
  [[nodiscard]] double serve_cost(std::size_t mode) const {
    return serve_cost_[mode];
  }

  /// Compute the full compact Y(mode) into y (resized as needed).
  void compute(const std::vector<la::Matrix>& factors, std::size_t mode,
               la::Matrix& y);

  /// Compute only the listed compact rows: row p of y is compact row
  /// positions[p] (the coarse-grain distributed owned-row path).
  void compute_subset(const std::vector<la::Matrix>& factors,
                      std::size_t mode,
                      std::span<const std::uint32_t> positions, la::Matrix& y);

  /// Force both partials to rebuild on next use (factors changed outside
  /// the compute() protocol).
  void invalidate();

 private:
  struct Partial {
    std::vector<double> values;
    std::size_t block = 1;
    bool valid = false;
  };

  // side 0: output of contract_chain(left=true), serves right modes;
  // side 1: output of contract_chain(left=false), serves left modes.
  [[nodiscard]] std::size_t serving_side(std::size_t mode) const {
    return tree_->in_left(mode) ? 1 : 0;
  }
  void refresh_partial(std::size_t side, const std::vector<la::Matrix>& factors);
  void serve(const std::vector<la::Matrix>& factors, std::size_t mode,
             const std::uint32_t* positions, std::size_t npos, la::Matrix& y);
  void select_strategies();

  [[nodiscard]] const tensor::CsfTree* csf_tree(std::size_t mode) const {
    return csf_ == nullptr ? nullptr : &csf_->modes[mode];
  }

  const CooTensor* x_;
  const SymbolicTtmc* symbolic_;
  const DimTreePlan* tree_;
  const tensor::CsfTensor* csf_ = nullptr;
  const tensor::AltoTensor* alto_ = nullptr;
  std::vector<index_t> ranks_;
  TtmcOptions options_;
  std::vector<TtmcStrategy> selected_;
  std::vector<double> direct_cost_;
  std::vector<double> serve_cost_;
  Partial partial_[2];
  std::vector<double> leaf_values_[2];  // x values pre-permuted per chain
  std::vector<double> chain_scratch_[2];
};

}  // namespace ht::core
