// Shared helpers for the table-regeneration benches.
//
// All benches run at a laptop default (HT_SCALE=0.5, ~200K nonzeros per
// dataset) and grow toward paper-sized inputs via environment variables:
//   HT_SCALE    dataset scale multiplier (1.0 ~ 0.4M nnz per tensor)
//   HT_ITERS    HOOI iterations measured (paper: 5)
//   HT_RANKS    comma-separated simulated rank counts (table II sweep)
//   HT_TENSORS  comma-separated preset subset (default: all four)
//   HT_NPROCS   rank count for single-configuration benches (default 8)
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "tensor/generators.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace htb {

// ---- machine-readable output (--json out.json) ----------------------------
//
// Benches accumulate flat records and write one JSON array so CI publishes
// the perf trajectory (BENCH_*.json artifacts) instead of hand-copied
// tables. Deliberately minimal: flat string/number fields only.

class JsonReport {
 public:
  class Record {
   public:
    Record& num(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Record& str(const std::string& key, const std::string& value) {
      std::string quoted = "\"";
      for (char c : value) {
        if (c == '"' || c == '\\') quoted += '\\';
        quoted += c;
      }
      quoted += '"';
      fields_.emplace_back(key, std::move(quoted));
      return *this;
    }

   private:
    friend class JsonReport;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Empty path disables recording (records are still collected, cheaply).
  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  Record& add() { return records_.emplace_back(); }

  /// Write the array if a path was given; returns whether a file was
  /// written.
  bool write() const {
    if (path_.empty()) return false;
    std::ofstream out(path_);
    if (!out.is_open()) {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                   path_.c_str());
      return false;
    }
    out << "[\n";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << "  {";
      const auto& fields = records_[r].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        out << '"' << fields[f].first << "\": " << fields[f].second;
        if (f + 1 < fields.size()) out << ", ";
      }
      out << (r + 1 < records_.size() ? "},\n" : "}\n");
    }
    out << "]\n";
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "[bench] write to %s failed\n", path_.c_str());
      return false;
    }
    std::fprintf(stderr, "[bench] wrote %zu records to %s\n", records_.size(),
                 path_.c_str());
    return true;
  }

 private:
  std::string path_;
  std::vector<Record> records_;
};

/// Path following a `--json` flag, or empty when absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int a = 1; a + 1 < argc; ++a) {
    if (std::string(argv[a]) == "--json") return argv[a + 1];
  }
  return {};
}

inline double bench_scale(double fallback = 0.5) {
  return ht::env_double("HT_SCALE", fallback);
}

inline int bench_iters() {
  return static_cast<int>(ht::env_int("HT_ITERS", 5));
}

inline int bench_nprocs() {
  return static_cast<int>(ht::env_int("HT_NPROCS", 8));
}

/// HT_SMOKE=1 shrinks benches to one tiny case so CI can prove the kernel
/// benches compile and run without paying for real measurements.
inline bool bench_smoke() { return ht::env_int("HT_SMOKE", 0) != 0; }

inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::string item = csv.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

inline std::vector<std::string> bench_tensors() {
  const std::string csv =
      ht::env_string("HT_TENSORS", "netflix,nell,delicious,flickr");
  return split_csv(csv);
}

inline std::vector<int> bench_rank_counts() {
  const std::string csv = ht::env_string("HT_RANKS", "1,2,4,8,16");
  std::vector<int> out;
  for (const auto& s : split_csv(csv)) out.push_back(std::stoi(s));
  return out;
}

/// Default the simulated network to BlueGene/Q-like parameters (3 us
/// latency, 2 GB/s per link) unless the caller already configured it. Only
/// the distributed benches call this; tests and examples run with a free
/// network.
inline void enable_network_model_default() {
  ::setenv("HT_NET_LATENCY_US", "3", /*overwrite=*/0);
  ::setenv("HT_NET_GBPS", "2", /*overwrite=*/0);
}

struct BenchTensor {
  ht::tensor::PresetSpec spec;
  ht::tensor::CooTensor tensor;
};

inline BenchTensor load_preset(const std::string& name,
                               double scale_fallback = 0.25) {
  BenchTensor bt;
  bt.spec = ht::tensor::paper_preset(name, bench_scale(scale_fallback));
  ht::WallTimer t;
  bt.tensor = ht::tensor::generate_preset(bt.spec, /*seed=*/42);
  std::fprintf(stderr, "[bench] generated %s: %s (%.2fs)\n", name.c_str(),
               bt.tensor.summary().c_str(), t.seconds());
  return bt;
}

}  // namespace htb
