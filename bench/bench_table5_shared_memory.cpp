// Regenerates paper Table V: shared-memory scaling of HOOI (time per
// iteration as OpenMP threads sweep 1..32).
//
// Expected shape: all tensors speed up with threads; tensors whose largest
// mode is comparatively small (Netflix, NELL) scale better because their
// TTMc is latency-bound with more work per row, while huge-mode tensors
// (Delicious, Flickr) saturate memory bandwidth in the TRSVD GEMVs earlier.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "core/hooi.hpp"

int main() {
  using namespace ht;

  const int iters = htb::bench_iters();
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> threads;
  for (int t = 1; t <= std::max(32, hw); t *= 2) {
    threads.push_back(t);
    if (t >= hw && t >= 32) break;
  }

  std::printf(
      "=== Table V: shared-memory time per HOOI iteration (seconds), %d "
      "iterations ===\n(%d hardware threads available)\n",
      iters, hw);

  std::vector<std::string> header = {"#threads"};
  for (const auto& name : htb::bench_tensors()) header.push_back(name);
  TextTable table(header);

  std::vector<htb::BenchTensor> tensors;
  for (const auto& name : htb::bench_tensors()) {
    tensors.push_back(htb::load_preset(name, /*scale_fallback=*/1.0));
  }

  for (int t : threads) {
    std::vector<std::string> row = {std::to_string(t)};
    for (const auto& bt : tensors) {
      core::HooiOptions options;
      options.ranks = bt.spec.ranks;
      options.max_iterations = iters;
      options.fit_tolerance = 0.0;
      options.num_threads = t;
      WallTimer timer;
      const auto result = core::hooi(bt.tensor, options);
      const double per_iter =
          (timer.seconds() - result.timers.symbolic) / result.iterations;
      row.push_back(fmt_time_s(per_iter));
    }
    table.add_row(row);
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
