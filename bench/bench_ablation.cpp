// Ablations for the design choices DESIGN.md calls out (beyond the paper's
// tables):
//   1. symbolic TTMc reuse — preprocessing cost vs per-iteration cost, and
//      its amortization across HOOI runs with different ranks (the paper's
//      Sec. V argument for reusing the symbolic structure);
//   2. dynamic vs static OpenMP scheduling of the TTMc row loop on a skewed
//      tensor (the paper chooses dynamic);
//   3. Lanczos vs Gram-matrix TRSVD (the matrix-free choice);
//   4. per-nnz vs fiber-factored TTMc kernels across fiber-length regimes,
//      and what the kAuto heuristic picks in each (the perf-trajectory
//      entry: fiber factoring must win on fiber-dense tensors and kAuto
//      must not regress fiber-sparse ones);
//   5. direct vs dimension-tree-served TTMc per HOOI iteration, and what
//      the TtmcStrategy::kAuto cost model picks (perf-trajectory entry:
//      tree-serving must win on merge-heavy tensors and kAuto must stay
//      within noise of direct everywhere);
//   6. TRSVD backends on the huge-mode regime where Table IV says TRSVD
//      dominates: scalar Lanczos (bandwidth-bound gemv per step) vs the
//      gemm-rich blocked backends (block Lanczos, randomized subspace
//      iteration) vs Gram, and what TrsvdMethod::kAuto resolves
//      (perf-trajectory entry: a blocked backend must beat scalar Lanczos
//      on the huge mode, kAuto must match the winner there and stay on
//      Lanczos for small modes);
//   7. CSF-tree TTMc against the flat-index kernels across prefix-sharing
//      regimes (perf-trajectory entry: CSF must beat the best flat kernel
//      on prefix-heavy tensors and kAuto must stay within noise of the
//      per-tensor winner everywhere);
//   8. model-store load path — heap (kCopy, checksummed owned buffers) vs
//      mmap (kMap, zero-copy views) bundle loads, cold and warm, plus the
//      first-query latency after each (perf-trajectory entry: the mmap
//      cold load must not scale with model size the way the heap load
//      does, and must copy zero payload bytes);
//   9. serve-path query throughput — the serve::QueryEngine point-query
//      QPS and latency percentiles under a Zipf-skewed user trace (the
//      traffic shape the per-user contraction cache is built for), with
//      the cache on vs off and batched vs single-query submission
//      (perf-trajectory entry: on the skewed trace the cache must be worth
//      >1.5x QPS, and batching must never lose to single-query);
//  11. masked completion vs unmasked HOOI on a planted low-rank tensor with
//      a 1% observed mask and known noise floor (prediction-quality entry:
//      masked training must reach held-out RMSE within 1.15x the noise
//      floor while unmasked HOOI — fitting the zeros — must not, matching
//      the core_completion_test acceptance pin);
//  10. ALTO bit-interleaved linearized kernel against the other three
//      families, plus the structure-memory comparison: one sorted key/value
//      array serving every mode vs the CSF forest's N trees
//      (perf-trajectory entry: ALTO structure memory must stay <= 0.5x the
//      CSF forest on 3-mode tensors, the kAlto TTMc must stay within 1.3x
//      of the best CSF time on scattered-fiber inputs, and kAuto must stay
//      within 1.05x of the per-case winner).
//
// With --json PATH, every arm also appends machine-readable records so CI
// publishes BENCH_ablation.json instead of hand-copied tables.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>

#include "bench_common.hpp"
#include "core/completion.hpp"
#include "core/dim_tree.hpp"
#include "core/hooi.hpp"
#include "core/hosvd.hpp"
#include "core/split.hpp"
#include "core/symbolic.hpp"
#include "core/trsvd.hpp"
#include "core/ttmc.hpp"
#include "core/tucker_model.hpp"
#include "la/lanczos.hpp"
#include "serve/query_engine.hpp"
#include "serve/serve_model.hpp"
#include "storage/bundle.hpp"
#include "tensor/csf.hpp"
#include "tensor/generators.hpp"

namespace {

// Time the mode-`n` TTMc, best of `reps`. Per-mode timing is the unit the
// kernel heuristic decides on: a tensor's modes can sit in different fiber
// regimes (the generator's last mode sees singleton fibers), and kAuto
// picks per mode.
double time_ttmc_mode(const ht::tensor::CooTensor& x,
                      const std::vector<ht::la::Matrix>& factors,
                      const ht::core::SymbolicTtmc& sym, std::size_t n,
                      const ht::core::TtmcOptions& options, int reps,
                      const ht::tensor::CsfTree* csf = nullptr,
                      const ht::tensor::AltoTensor* alto = nullptr) {
  double best = 1e300;
  ht::la::Matrix y;
  for (int rep = 0; rep < reps; ++rep) {
    ht::WallTimer t;
    ht::core::ttmc_mode(x, factors, n, sym.modes[n], y, options, csf, alto);
    best = std::min(best, t.seconds());
  }
  return best;
}

void fiber_kernel_ablation(bool smoke, htb::JsonReport& report) {
  using namespace ht;
  std::printf("=== Ablation 4: per-nnz vs fiber-factored TTMc ===\n");
  const tensor::nnz_t target_nnz = smoke ? 20000 : 2000000;
  const tensor::Shape shape = smoke ? tensor::Shape{200, 200, 400}
                                    : tensor::Shape{3000, 3000, 5000};
  const std::vector<tensor::index_t> ranks(3, 10);
  const int reps = smoke ? 1 : 5;

  // Mode 0 of the fibered generator sees ~fiber_len-long fibers; the last
  // mode (fibers run along it) sees singletons, where kAuto must fall back.
  std::printf("%-10s %10s %12s %12s %9s %6s\n", "fiber_len", "avg_len",
              "per-nnz(s)", "fiber(s)", "speedup", "auto");
  for (const tensor::index_t fiber_len : {1, 2, 4, 8, 16}) {
    const auto x = tensor::random_fibered(shape, target_nnz / fiber_len,
                                          fiber_len, 97);
    const core::SymbolicTtmc sym = core::SymbolicTtmc::build(x);
    const auto factors =
        core::random_orthonormal_factors(x.shape(), ranks, 7);

    core::TtmcOptions per_nnz;
    per_nnz.kernel = core::TtmcKernel::kPerNnz;
    core::TtmcOptions fiber;
    fiber.kernel = core::TtmcKernel::kFiberFactored;

    const double t_nnz = time_ttmc_mode(x, factors, sym, 0, per_nnz, reps);
    const double t_fib = time_ttmc_mode(x, factors, sym, 0, fiber, reps);
    const auto picked =
        core::ttmc_selected_kernel(sym.modes[0], x.order(), {});
    std::printf("%-10u %10.2f %12.4f %12.4f %8.2fx %6s\n", fiber_len,
                sym.modes[0].avg_fiber_length(), t_nnz, t_fib, t_nnz / t_fib,
                picked == core::TtmcKernel::kFiberFactored ? "fiber" : "nnz");
    report.add()
        .str("arm", "fiber_kernel")
        .num("fiber_len", fiber_len)
        .num("nnz", static_cast<double>(x.nnz()))
        .num("avg_fiber_length", sym.modes[0].avg_fiber_length())
        .num("t_per_nnz_s", t_nnz)
        .num("t_fiber_s", t_fib)
        .num("speedup", t_nnz / t_fib)
        .str("auto_pick",
             picked == core::TtmcKernel::kFiberFactored ? "fiber" : "nnz");
  }

  // kAuto on the singleton-fiber mode: must match per-nnz within noise.
  {
    const auto x = tensor::random_fibered(shape, target_nnz, 1, 97);
    const core::SymbolicTtmc sym = core::SymbolicTtmc::build(x);
    const auto factors =
        core::random_orthonormal_factors(x.shape(), ranks, 7);
    core::TtmcOptions per_nnz;
    per_nnz.kernel = core::TtmcKernel::kPerNnz;
    const double t_nnz =
        time_ttmc_mode(x, factors, sym, 0, per_nnz, reps);
    const double t_auto = time_ttmc_mode(x, factors, sym, 0, {}, reps);
    std::printf("fiber-sparse kAuto fallback: per-nnz %.4fs vs auto %.4fs "
                "(%.2fx)\n\n",
                t_nnz, t_auto, t_nnz / t_auto);
    report.add()
        .str("arm", "fiber_kernel_auto_fallback")
        .num("t_per_nnz_s", t_nnz)
        .num("t_auto_s", t_auto)
        .num("auto_vs_direct", t_nnz / t_auto);
  }
}

// Ablation 7: the CSF kernel against the flat-index kernels across prefix
// regimes, timed as a full per-iteration TTMc sweep (every mode once) plus
// a per-mode breakdown. The headline is the prefix-heavy arm: at equal
// flops the CSF walk streams values and trailing coordinates (gathered
// into tree order at build time) where the flat kernels chase nnz_order ->
// values/idx — two random reads per nonzero. The input nonzero order can
// match at most one mode's iteration order, so even when the flat kernels
// stream one mode they scatter on the rest; CSF's per-mode trees stream
// all of them. The prefix-free control pins the kAuto streaming rule: CSF
// only for out-of-cache tensors, flat kernels in cache.
void csf_kernel_ablation(bool smoke, htb::JsonReport& report) {
  using namespace ht;
  std::printf("=== Ablation 7: CSF vs flat-index TTMc kernels ===\n");
  const tensor::nnz_t target_nnz = smoke ? 20000 : 2000000;
  const tensor::Shape shape = smoke ? tensor::Shape{200, 200, 400}
                                    : tensor::Shape{3000, 3000, 5000};
  const std::vector<tensor::index_t> ranks(3, 10);
  const int reps = smoke ? 1 : 5;

  std::printf("%-14s %6s %8s %12s %12s %12s %12s %9s %9s %s\n", "tensor",
              "mode", "avg_len", "per-nnz(s)", "fiber(s)", "csf(s)",
              "auto(s)", "vs_best", "auto_spd", "auto");
  struct Arm {
    std::string name;
    tensor::CooTensor tensor;
  };
  std::vector<Arm> arms;
  for (const tensor::index_t fiber_len : {4, 16}) {
    arms.push_back({"fibered_" + std::to_string(fiber_len),
                    tensor::random_fibered(shape, target_nnz / fiber_len,
                                           fiber_len, 97)});
  }
  arms.push_back({"prefix_free",
                  tensor::random_fibered(shape, target_nnz, 1, 97)});

  for (const Arm& arm : arms) {
    const auto& x = arm.tensor;
    const core::SymbolicTtmc sym = core::SymbolicTtmc::build(x);
    WallTimer t_build;
    const tensor::CsfTensor csf = tensor::CsfTensor::build(x);
    const double csf_build_s = t_build.seconds();
    const auto factors = core::random_orthonormal_factors(x.shape(), ranks, 7);

    core::TtmcOptions per_nnz, fiber, use_csf, use_auto;
    per_nnz.kernel = core::TtmcKernel::kPerNnz;
    fiber.kernel = core::TtmcKernel::kFiberFactored;
    use_csf.kernel = core::TtmcKernel::kCsf;

    // Per mode: interleaved best-of-reps so drift hits all four alike;
    // sweep totals are the per-iteration numbers HOOI sees.
    double s_nnz = 0, s_fib = 0, s_csf = 0, s_auto = 0;
    std::string picks;
    for (std::size_t n = 0; n < x.order(); ++n) {
      double t_nnz = 1e300, t_fib = 1e300, t_csf = 1e300, t_auto = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        t_nnz =
            std::min(t_nnz, time_ttmc_mode(x, factors, sym, n, per_nnz, 1));
        t_fib = std::min(t_fib, time_ttmc_mode(x, factors, sym, n, fiber, 1));
        t_csf = std::min(t_csf, time_ttmc_mode(x, factors, sym, n, use_csf, 1,
                                               &csf.modes[n]));
        t_auto = std::min(t_auto, time_ttmc_mode(x, factors, sym, n, use_auto,
                                                 1, &csf.modes[n]));
      }
      const auto picked = core::ttmc_selected_kernel(sym.modes[n], x.order(),
                                                     {}, &csf.modes[n]);
      const char* pick_name = picked == core::TtmcKernel::kCsf ? "csf"
                              : picked == core::TtmcKernel::kFiberFactored
                                  ? "fiber"
                                  : "nnz";
      picks += pick_name[0];
      const double t_best = std::min({t_nnz, t_fib, t_csf});
      std::printf("%-14s %6zu %8.2f %12.4f %12.4f %12.4f %12.4f %8.2fx "
                  "%8.2fx %s\n",
                  arm.name.c_str(), n, csf.modes[n].avg_leaf_fiber_length(),
                  t_nnz, t_fib, t_csf, t_auto, std::min(t_nnz, t_fib) / t_csf,
                  t_best / t_auto, pick_name);
      report.add()
          .str("arm", "csf_kernel")
          .str("tensor", arm.name)
          .num("mode", static_cast<double>(n))
          .num("nnz", static_cast<double>(x.nnz()))
          .num("avg_leaf_fiber_length", csf.modes[n].avg_leaf_fiber_length())
          .num("prefix_sharing_ratio", csf.modes[n].prefix_sharing_ratio())
          .num("t_per_nnz_s", t_nnz)
          .num("t_fiber_s", t_fib)
          .num("t_csf_s", t_csf)
          .num("t_auto_s", t_auto)
          .num("csf_vs_best_flat", std::min(t_nnz, t_fib) / t_csf)
          .num("auto_vs_winner", t_best / t_auto)
          .str("auto_pick", pick_name);
      s_nnz += t_nnz;
      s_fib += t_fib;
      s_csf += t_csf;
      s_auto += t_auto;
    }
    const double s_best_flat = std::min(s_nnz, s_fib);
    const double s_winner = std::min(s_best_flat, s_csf);
    std::printf("%-14s  sweep          %12.4f %12.4f %12.4f %12.4f %8.2fx "
                "%8.2fx %s (csf build %.2fs)\n",
                arm.name.c_str(), s_nnz, s_fib, s_csf, s_auto,
                s_best_flat / s_csf, s_winner / s_auto, picks.c_str(),
                csf_build_s);
    report.add()
        .str("arm", "csf_kernel_sweep")
        .str("tensor", arm.name)
        .num("nnz", static_cast<double>(x.nnz()))
        .num("t_per_nnz_s", s_nnz)
        .num("t_fiber_s", s_fib)
        .num("t_csf_s", s_csf)
        .num("t_auto_s", s_auto)
        .num("csf_build_s", csf_build_s)
        .num("csf_vs_best_flat", s_best_flat / s_csf)
        .num("auto_vs_winner", s_winner / s_auto)
        .str("auto_picks", picks);
  }
  std::printf("\n");
}

// Arm 10: the ALTO linearized kernel against all three established
// families, per mode and as a full sweep, plus the structure-memory
// headline. The memory comparison is the format's reason to exist: the CSF
// forest keeps one tree per mode (O(order * nnz) pointers + a value copy
// per tree) where ALTO keeps a single sorted key/value/gather-map array
// (~24 B/nnz total) that serves every mode — so on a 3-mode tensor the
// linearized structure must come in at no more than half the forest. The
// time comparison targets the scattered regime (singleton fibers, no
// prefix sharing): there CSF's trees degenerate to flat walks while ALTO
// still gets dense staging blocks from its partition index ranges, so the
// kAlto kernel must stay within 1.3x of the best CSF time while paying a
// fraction of the memory. kAuto (handed both structures) must stay within
// noise of the per-case winner everywhere.
void alto_kernel_ablation(bool smoke, htb::JsonReport& report) {
  using namespace ht;
  std::printf("=== Ablation 10: ALTO linearized vs per-nnz/fiber/CSF ===\n");
  const tensor::nnz_t target_nnz = smoke ? 20000 : 2000000;
  const tensor::Shape shape = smoke ? tensor::Shape{200, 200, 400}
                                    : tensor::Shape{3000, 3000, 5000};
  const std::vector<tensor::index_t> ranks(3, 10);
  const int reps = smoke ? 1 : 5;

  struct Arm {
    std::string name;
    tensor::CooTensor tensor;
  };
  std::vector<Arm> arms;
  arms.push_back({"fibered_8",
                  tensor::random_fibered(shape, target_nnz / 8, 8, 97)});
  arms.push_back({"scattered",
                  tensor::random_fibered(shape, target_nnz, 1, 97)});

  std::printf("%-11s %6s %12s %12s %12s %12s %12s %9s %9s %s\n", "tensor",
              "mode", "per-nnz(s)", "fiber(s)", "csf(s)", "alto(s)",
              "auto(s)", "vs_csf", "auto_spd", "auto");
  for (const Arm& arm : arms) {
    const auto& x = arm.tensor;
    const core::SymbolicTtmc sym = core::SymbolicTtmc::build(x);
    const tensor::CsfTensor csf = tensor::CsfTensor::build(x);
    WallTimer t_build;
    const tensor::AltoTensor alto = tensor::AltoTensor::build(x);
    const double alto_build_s = t_build.seconds();
    const auto factors = core::random_orthonormal_factors(x.shape(), ranks, 7);

    // The memory headline: one linearized array vs the forest's N trees.
    const std::size_t csf_bytes = csf.format_bytes();
    const std::size_t alto_bytes = alto.format_bytes();
    const double mem_ratio =
        static_cast<double>(alto_bytes) / static_cast<double>(csf_bytes);
    std::printf("%-11s structure memory: alto %zu B vs csf forest %zu B "
                "(%.2fx, %u key bits)\n",
                arm.name.c_str(), alto_bytes, csf_bytes, mem_ratio,
                alto.key_bits);
    report.add()
        .str("arm", "alto_memory")
        .str("tensor", arm.name)
        .num("nnz", static_cast<double>(x.nnz()))
        .num("key_bits", alto.key_bits)
        .num("alto_bytes", static_cast<double>(alto_bytes))
        .num("csf_forest_bytes", static_cast<double>(csf_bytes))
        .num("alto_vs_csf_bytes", mem_ratio);

    core::TtmcOptions per_nnz, fiber, use_csf, use_alto, use_auto;
    per_nnz.kernel = core::TtmcKernel::kPerNnz;
    fiber.kernel = core::TtmcKernel::kFiberFactored;
    use_csf.kernel = core::TtmcKernel::kCsf;
    use_alto.kernel = core::TtmcKernel::kAlto;

    double s_nnz = 0, s_fib = 0, s_csf = 0, s_alto = 0, s_auto = 0;
    std::string picks;
    for (std::size_t n = 0; n < x.order(); ++n) {
      double t_nnz = 1e300, t_fib = 1e300, t_csf = 1e300, t_alto = 1e300,
             t_auto = 1e300;
      // Interleaved best-of-reps so machine drift hits all five alike.
      for (int rep = 0; rep < reps; ++rep) {
        t_nnz =
            std::min(t_nnz, time_ttmc_mode(x, factors, sym, n, per_nnz, 1));
        t_fib = std::min(t_fib, time_ttmc_mode(x, factors, sym, n, fiber, 1));
        t_csf = std::min(t_csf, time_ttmc_mode(x, factors, sym, n, use_csf, 1,
                                               &csf.modes[n]));
        t_alto = std::min(t_alto, time_ttmc_mode(x, factors, sym, n, use_alto,
                                                 1, nullptr, &alto));
        t_auto = std::min(t_auto, time_ttmc_mode(x, factors, sym, n, use_auto,
                                                 1, &csf.modes[n], &alto));
      }
      const auto picked = core::ttmc_selected_kernel(sym.modes[n], x.order(),
                                                     {}, &csf.modes[n], &alto);
      const char* pick_name = picked == core::TtmcKernel::kAlto     ? "alto"
                              : picked == core::TtmcKernel::kCsf    ? "csf"
                              : picked == core::TtmcKernel::kFiberFactored
                                  ? "fiber"
                                  : "nnz";
      picks += pick_name[0];
      const double t_best = std::min({t_nnz, t_fib, t_csf, t_alto});
      std::printf("%-11s %6zu %12.4f %12.4f %12.4f %12.4f %12.4f %8.2fx "
                  "%8.2fx %s\n",
                  arm.name.c_str(), n, t_nnz, t_fib, t_csf, t_alto, t_auto,
                  t_csf / t_alto, t_best / t_auto, pick_name);
      report.add()
          .str("arm", "alto_kernel")
          .str("tensor", arm.name)
          .num("mode", static_cast<double>(n))
          .num("nnz", static_cast<double>(x.nnz()))
          .num("t_per_nnz_s", t_nnz)
          .num("t_fiber_s", t_fib)
          .num("t_csf_s", t_csf)
          .num("t_alto_s", t_alto)
          .num("t_auto_s", t_auto)
          .num("alto_vs_csf", t_alto / t_csf)
          .num("alto_vs_best", t_alto / t_best)
          .num("auto_vs_winner", t_auto / t_best)
          .str("auto_pick", pick_name);
      s_nnz += t_nnz;
      s_fib += t_fib;
      s_csf += t_csf;
      s_alto += t_alto;
      s_auto += t_auto;
    }
    const double s_winner = std::min({s_nnz, s_fib, s_csf, s_alto});
    std::printf("%-11s  sweep %12.4f %12.4f %12.4f %12.4f %12.4f %8.2fx "
                "%8.2fx %s (alto build %.2fs)\n",
                arm.name.c_str(), s_nnz, s_fib, s_csf, s_alto, s_auto,
                s_csf / s_alto, s_winner / s_auto, picks.c_str(),
                alto_build_s);
    report.add()
        .str("arm", "alto_kernel_sweep")
        .str("tensor", arm.name)
        .num("nnz", static_cast<double>(x.nnz()))
        .num("t_per_nnz_s", s_nnz)
        .num("t_fiber_s", s_fib)
        .num("t_csf_s", s_csf)
        .num("t_alto_s", s_alto)
        .num("t_auto_s", s_auto)
        .num("alto_build_s", alto_build_s)
        .num("alto_vs_csf", s_alto / s_csf)
        .num("auto_vs_winner", s_auto / s_winner)
        .str("auto_picks", picks);
  }
  std::printf("\n");
}

// Time one HOOI iteration's worth of TTMc per strategy — a full sweep over
// all modes through the scheduler, which reproduces HOOI's partial
// build/invalidate pattern (each partial built once per sweep, rebuilt next
// sweep). Strategies are timed *interleaved* (direct, tree, auto, repeat)
// so machine drift hits all three alike; best of `reps` after a warm-up
// sweep that pays one-time setup (leaf value gathers, buffer growth).
std::vector<double> time_ttmc_sweeps(
    const ht::tensor::CooTensor& x, const ht::core::SymbolicTtmc& sym,
    const ht::core::DimTreePlan* tree,
    const std::vector<ht::la::Matrix>& factors,
    const std::vector<ht::tensor::index_t>& ranks,
    const std::vector<ht::core::TtmcStrategy>& strategies, int reps) {
  std::vector<ht::core::TtmcScheduler> schedulers;
  schedulers.reserve(strategies.size());
  ht::la::Matrix y;
  for (const auto strategy : strategies) {
    ht::core::TtmcOptions opts;
    opts.strategy = strategy;
    schedulers.emplace_back(x, sym, tree, ranks, opts);
    for (std::size_t n = 0; n < x.order(); ++n) {
      schedulers.back().compute(factors, n, y);
    }
  }
  std::vector<double> best(strategies.size(), 1e300);
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
      ht::WallTimer t;
      for (std::size_t n = 0; n < x.order(); ++n) {
        schedulers[s].compute(factors, n, y);
      }
      best[s] = std::min(best[s], t.seconds());
    }
  }
  return best;
}

void tree_scheduler_ablation(bool smoke, htb::JsonReport& report) {
  using namespace ht;
  std::printf("=== Ablation 5: direct vs dimension-tree-served TTMc ===\n");

  struct Arm {
    std::string name;
    tensor::Shape shape;
    tensor::nnz_t nnz;
    tensor::index_t rank;
  };
  // Merge-heavy tensors (small dims relative to nnz: every pair projection
  // saturates), the regime real recommender/NLP tensors sit in, plus one
  // scatter arm where the tree cannot win and kAuto must hold the line.
  std::vector<Arm> arms;
  if (smoke) {
    arms.push_back({"3mode_merged", {36, 36, 36}, 40000, 10});
    arms.push_back({"4mode_merged", {14, 14, 14, 14}, 30000, 5});
    arms.push_back({"3mode_scattered", {300, 300, 300}, 30000, 10});
  } else {
    arms.push_back({"3mode_merged", {150, 150, 150}, 2000000, 10});
    arms.push_back({"4mode_merged", {40, 40, 40, 40}, 2000000, 5});
    arms.push_back({"3mode_scattered", {3000, 3000, 5000}, 2000000, 10});
  }
  const int reps = smoke ? 1 : 3;

  std::printf("%-16s %9s %10s %10s %10s %9s %9s  %s\n", "tensor", "nnz",
              "direct(s)", "tree(s)", "auto(s)", "tree_spd", "auto_spd",
              "auto picks");
  for (const Arm& arm : arms) {
    const auto x = tensor::random_uniform(arm.shape, arm.nnz, 111);
    const std::vector<tensor::index_t> ranks(x.order(), arm.rank);
    const core::SymbolicTtmc sym = core::SymbolicTtmc::build(x);
    const core::DimTreePlan tree = core::DimTreePlan::build(x);
    const auto factors = core::random_orthonormal_factors(x.shape(), ranks, 7);

    const std::vector<double> times = time_ttmc_sweeps(
        x, sym, &tree, factors, ranks,
        {core::TtmcStrategy::kDirect, core::TtmcStrategy::kTree,
         core::TtmcStrategy::kAuto},
        reps);
    const double t_direct = times[0], t_tree = times[1], t_auto = times[2];

    core::TtmcOptions auto_opts;
    const core::TtmcScheduler chooser(x, sym, &tree, ranks, auto_opts);
    std::string picks;
    for (std::size_t n = 0; n < x.order(); ++n) {
      picks += chooser.selected(n) == core::TtmcStrategy::kTree ? 't' : 'd';
    }

    std::printf("%-16s %9llu %10.4f %10.4f %10.4f %8.2fx %8.2fx  %s\n",
                arm.name.c_str(),
                static_cast<unsigned long long>(x.nnz()), t_direct, t_tree,
                t_auto, t_direct / t_tree, t_direct / t_auto, picks.c_str());
    report.add()
        .str("arm", "tree_scheduler")
        .str("tensor", arm.name)
        .num("order", static_cast<double>(x.order()))
        .num("nnz", static_cast<double>(x.nnz()))
        .num("rank", arm.rank)
        .num("t_direct_s", t_direct)
        .num("t_tree_s", t_tree)
        .num("t_auto_s", t_auto)
        .num("tree_speedup", t_direct / t_tree)
        .num("auto_speedup", t_direct / t_auto)
        .str("auto_picks", picks);
  }
  std::printf("\n");
}

// Time one TRSVD step per backend on a fixed compact Y(n), interleaved
// (lanczos, gram, block, rand, auto, repeat) best-of-`reps` so machine
// drift hits every backend alike.
void trsvd_backend_ablation(bool smoke, htb::JsonReport& report) {
  using namespace ht;
  std::printf("=== Ablation 6: TRSVD backends on Y(n) ===\n");

  struct Arm {
    std::string name;
    tensor::Shape shape;
    tensor::nnz_t nnz;
  };
  // The huge-mode arm is the Table IV regime (Netflix-like: one mode with
  // hundreds of thousands of slices, TRSVD+comm dominant); the small-mode
  // arm is the control where kAuto must not leave the scalar solver.
  std::vector<Arm> arms;
  if (smoke) {
    arms.push_back({"huge_mode", {20000, 60, 60}, 60000});
    arms.push_back({"small_mode", {120, 100, 80}, 20000});
  } else {
    arms.push_back({"huge_mode", {500000, 2000, 2000}, 2000000});
    arms.push_back({"small_mode", {200, 200, 200}, 400000});
  }
  const std::vector<tensor::index_t> ranks(3, 10);
  const int reps = smoke ? 1 : 3;

  struct Backend {
    core::TrsvdMethod method;
    double best = 1e300;
    double sigma1 = 0.0;
    std::size_t steps = 0;
    core::TrsvdMethod used = core::TrsvdMethod::kLanczos;
  };

  std::printf("%-11s %10s %8s  %s\n", "tensor", "|J_n|xC", "method",
              "best(s)  speedup  steps");
  for (const Arm& arm : arms) {
    const auto x = tensor::random_uniform(arm.shape, arm.nnz, 2026);
    const core::SymbolicTtmc sym = core::SymbolicTtmc::build(x);
    const auto factors = core::random_orthonormal_factors(x.shape(), ranks, 7);
    la::Matrix y;
    core::ttmc_mode(x, factors, 0, sym.modes[0], y, {});

    std::vector<Backend> backends = {
        {core::TrsvdMethod::kLanczos}, {core::TrsvdMethod::kGram},
        {core::TrsvdMethod::kBlockLanczos}, {core::TrsvdMethod::kRandomized},
        {core::TrsvdMethod::kAuto}};
    la::TrsvdOptions trsvd_opts;
    trsvd_opts.tol = 1e-7;  // the HOOI ALS setting
    for (int rep = 0; rep < reps; ++rep) {
      for (Backend& b : backends) {
        WallTimer t;
        const auto res = core::trsvd_factor(y, sym.modes[0].rows, x.dim(0),
                                            ranks[0], b.method, trsvd_opts);
        b.best = std::min(b.best, t.seconds());
        b.sigma1 = res.sigma[0];
        b.steps = res.solver_steps;
        b.used = res.method_used;
      }
    }

    const double t_lanczos = backends[0].best;
    for (const Backend& b : backends) {
      const bool is_auto = b.method == core::TrsvdMethod::kAuto;
      std::printf("%-11s %7zux%-3zu %8s  %.4fs  %6.2fx  %zu%s\n",
                  arm.name.c_str(), y.rows(), y.cols(),
                  core::trsvd_method_name(b.method), b.best,
                  t_lanczos / b.best, b.steps,
                  is_auto
                      ? (std::string(" (-> ") + core::trsvd_method_name(b.used) +
                         ")").c_str()
                      : "");
      report.add()
          .str("arm", "trsvd_backend")
          .str("tensor", arm.name)
          .num("rows", static_cast<double>(y.rows()))
          .num("cols", static_cast<double>(y.cols()))
          .num("rank", ranks[0])
          .str("method", core::trsvd_method_name(b.method))
          .str("resolved", core::trsvd_method_name(b.used))
          .num("best_s", b.best)
          .num("speedup_vs_lanczos", t_lanczos / b.best)
          .num("sigma_1", b.sigma1)
          .num("steps", static_cast<double>(b.steps));
    }
  }
  std::printf("\n");
}

// Arm 8: the model-store load path. A trained TuckerModel (with CSF trees,
// the large part of a bundle) is saved once, then loaded back through both
// materialization modes. "Cold" is the first in-process load after the
// write and "warm" the best of the following loads — both run against a
// warm page cache, so what the cold/warm gap and the heap/mmap gap measure
// is the work the loader itself does (checksum + copy vs header-and-table
// only), which is exactly the part that scales with model size. The first
// query after each load pays the mmap path's deferred page faults, so
// load + first query is the honest end-to-end latency comparison.
void model_store_ablation(bool smoke, htb::JsonReport& report) {
  using namespace ht;
  std::printf("=== Ablation 8: model store — heap vs mmap bundle load ===\n");

  const tensor::Shape shape =
      smoke ? tensor::Shape{60, 50, 40} : tensor::Shape{800, 600, 400};
  const tensor::nnz_t nnz = smoke ? 20000 : 2000000;
  const std::vector<tensor::index_t> ranks(3, smoke ? 8 : 16);
  const auto x = tensor::random_zipf(shape, nnz, {0.8, 0.9, 0.5}, 23);

  core::HooiOptions options;
  options.ranks = ranks;
  options.max_iterations = 3;
  options.fit_tolerance = 0.0;
  const core::SymbolicTtmc symbolic = core::SymbolicTtmc::build(x);
  auto result = core::hooi(x, options, symbolic, nullptr);
  auto model = core::TuckerModel::from_hooi(x, std::move(result));
  model.csf =
      std::make_shared<tensor::CsfTensor>(tensor::CsfTensor::build(x));

  const std::string path = "bench_model_store.htb";
  storage::save_bundle(model, path);
  const auto info = storage::inspect_bundle(path);

  const std::vector<tensor::index_t> probe{
      static_cast<tensor::index_t>(shape[0] / 2),
      static_cast<tensor::index_t>(shape[1] / 2),
      static_cast<tensor::index_t>(shape[2] / 2)};

  std::printf("bundle: %llu bytes, %zu sections (csf attached)\n",
              static_cast<unsigned long long>(info.header.file_bytes),
              info.sections.size());
  std::printf("%-6s %-5s %10s %14s %14s\n", "path", "temp", "load(s)",
              "first_query(s)", "bytes_copied");
  struct Mode {
    const char* name;
    storage::LoadMode mode;
  };
  for (const Mode& m : {Mode{"heap", storage::LoadMode::kCopy},
                        Mode{"mmap", storage::LoadMode::kMap}}) {
    const int warm_reps = smoke ? 3 : 5;
    double load_s = 0.0, query_s = 0.0;
    std::uint64_t copied = 0;
    double warm_load = 1e300, warm_query = 1e300;
    for (int rep = 0; rep <= warm_reps; ++rep) {
      storage::CopyStats::reset();
      WallTimer t_load;
      const auto loaded = storage::load_bundle(path, m.mode);
      const double tl = t_load.seconds();
      WallTimer t_query;
      const double v = loaded.reconstruct_at(probe);
      const double tq = t_query.seconds();
      if (v == 1e300) std::printf("unreachable\n");  // keep the query live
      if (rep == 0) {
        load_s = tl;
        query_s = tq;
        copied = storage::CopyStats::bytes();
      } else {
        warm_load = std::min(warm_load, tl);
        warm_query = std::min(warm_query, tq);
      }
    }
    std::printf("%-6s %-5s %10.5f %14.6f %14llu\n", m.name, "cold", load_s,
                query_s, static_cast<unsigned long long>(copied));
    std::printf("%-6s %-5s %10.5f %14.6f %14llu\n", m.name, "warm", warm_load,
                warm_query, static_cast<unsigned long long>(copied));
    for (const bool warm : {false, true}) {
      report.add()
          .str("arm", "model_store")
          .str("path", m.name)
          .str("temp", warm ? "warm" : "cold")
          .num("load_s", warm ? warm_load : load_s)
          .num("first_query_s", warm ? warm_query : query_s)
          .num("load_plus_query_s", warm ? warm_load + warm_query
                                         : load_s + query_s)
          .num("bytes_copied", static_cast<double>(copied))
          .num("file_bytes", static_cast<double>(info.header.file_bytes))
          .num("sections", static_cast<double>(info.sections.size()));
    }
  }
  std::remove(path.c_str());
  std::printf("\n");
}

// Arm 9: serve-path throughput. A trained bundle is served through
// serve::QueryEngine and hit with a Zipf-skewed user trace — a few hot
// users dominate, the regime the per-user contraction cache targets. The
// cached arm re-uses each hot user's core contraction (rank-sized dots per
// query); the uncached arm pays the full prod(R) contraction every time.
// Batched submission amortizes the cache lock and lets OpenMP spread the
// trace; answers are bit-identical across all four arms, so the numbers
// compare pure serving overhead.
void serve_qps_ablation(bool smoke, htb::JsonReport& report) {
  using namespace ht;
  std::printf("=== Ablation 9: serve-path QPS (Zipf user trace) ===\n");

  const tensor::Shape shape =
      smoke ? tensor::Shape{400, 120, 12} : tensor::Shape{4000, 600, 24};
  const tensor::nnz_t nnz = smoke ? 40000 : 1000000;
  const std::vector<tensor::index_t> ranks =
      smoke ? std::vector<tensor::index_t>{12, 10, 6}
            : std::vector<tensor::index_t>{16, 16, 8};
  const std::size_t trace_len = smoke ? 50000 : 400000;

  const auto x = tensor::random_zipf(shape, nnz, {0.9, 0.9, 0.4}, 41);
  core::HooiOptions options;
  options.ranks = ranks;
  options.max_iterations = 3;
  options.fit_tolerance = 0.0;
  auto model = core::TuckerModel::from_hooi(x, core::hooi(x, options));

  const std::string path = "bench_serve_qps.htb";
  storage::save_bundle(model, path);
  const auto served = serve::ServeModel::load(path);

  // Zipf(1.1) over users: the head of the distribution carries most of the
  // trace, exactly the skew real per-user traffic shows.
  std::vector<double> weights(shape[0]);
  for (std::size_t u = 0; u < weights.size(); ++u) {
    weights[u] = 1.0 / std::pow(static_cast<double>(u + 1), 1.1);
  }
  std::mt19937_64 rng(4243);
  std::discrete_distribution<tensor::index_t> user_dist(weights.begin(),
                                                        weights.end());
  std::uniform_int_distribution<tensor::index_t> item_dist(0, shape[1] - 1);
  std::uniform_int_distribution<tensor::index_t> ctx_dist(0, shape[2] - 1);
  std::vector<std::vector<tensor::index_t>> trace(trace_len);
  for (auto& q : trace) {
    q = {user_dist(rng), item_dist(rng), ctx_dist(rng)};
  }

  struct ArmResult {
    double qps = 0, p50_us = 0, p99_us = 0, hit_rate = 0;
  };
  auto percentile = [](std::vector<double>& lat, double p) {
    const std::size_t i = static_cast<std::size_t>(p * (lat.size() - 1));
    std::nth_element(lat.begin(), lat.begin() + i, lat.end());
    return lat[i] * 1e6;
  };

  std::printf("%-9s %-8s %12s %10s %10s %9s\n", "cache", "mode", "qps",
              "p50(us)", "p99(us)", "hit_rate");
  ArmResult cached_single, uncached_single;
  for (const std::size_t cache_entries : {std::size_t{0}, std::size_t{4096}}) {
    serve::QueryOptions qopt;
    qopt.cache_entries = cache_entries;
    const char* cache_name = cache_entries ? "on" : "off";

    // Single-query submission: per-query latency percentiles + QPS.
    {
      serve::QueryEngine engine(served, qopt);
      double sink = 0;
      // Warm-up pass populates the cache (steady-state serving, not cold
      // start, is what the arm measures).
      for (std::size_t q = 0; q < trace.size() / 10; ++q) {
        sink += engine.score(trace[q]);
      }
      std::vector<double> lat;
      lat.reserve(trace.size());
      WallTimer total;
      for (const auto& q : trace) {
        WallTimer t;
        sink += engine.score(q);
        lat.push_back(t.seconds());
      }
      const double wall = total.seconds();
      const auto cs = engine.cache_stats();
      ArmResult r;
      r.qps = static_cast<double>(trace.size()) / wall;
      r.p50_us = percentile(lat, 0.50);
      r.p99_us = percentile(lat, 0.99);
      r.hit_rate = cs.hits + cs.misses
                       ? static_cast<double>(cs.hits) / (cs.hits + cs.misses)
                       : 0.0;
      (cache_entries ? cached_single : uncached_single) = r;
      if (sink == 1e300) std::printf("unreachable\n");  // keep queries live
      std::printf("%-9s %-8s %12.0f %10.3f %10.3f %8.1f%%\n", cache_name,
                  "single", r.qps, r.p50_us, r.p99_us, 100 * r.hit_rate);
      report.add()
          .str("arm", "serve_qps")
          .str("cache", cache_name)
          .str("mode", "single")
          .num("cache_entries", static_cast<double>(cache_entries))
          .num("trace_len", static_cast<double>(trace.size()))
          .num("zipf_theta", 1.1)
          .num("qps", r.qps)
          .num("p50_us", r.p50_us)
          .num("p99_us", r.p99_us)
          .num("cache_hit_rate", r.hit_rate);
    }

    // Batched submission: the trace in page-sized chunks through
    // score_batch (per-chunk latency spread over its queries).
    {
      serve::QueryEngine engine(served, qopt);
      const std::size_t batch = 1024;
      std::vector<std::vector<tensor::index_t>> chunk;
      chunk.reserve(batch);
      std::vector<double> lat;
      double sink = 0;
      WallTimer total;
      for (std::size_t begin = 0; begin < trace.size(); begin += batch) {
        const std::size_t end = std::min(trace.size(), begin + batch);
        chunk.assign(trace.begin() + begin, trace.begin() + end);
        WallTimer t;
        const auto scores = engine.score_batch(chunk);
        const double per_query = t.seconds() / chunk.size();
        for (std::size_t q = 0; q < chunk.size(); ++q) {
          sink += scores[q];
          lat.push_back(per_query);
        }
      }
      const double wall = total.seconds();
      const auto cs = engine.cache_stats();
      const double qps = static_cast<double>(trace.size()) / wall;
      const double hit_rate =
          cs.hits + cs.misses
              ? static_cast<double>(cs.hits) / (cs.hits + cs.misses)
              : 0.0;
      if (sink == 1e300) std::printf("unreachable\n");
      std::printf("%-9s %-8s %12.0f %10.3f %10.3f %8.1f%%\n", cache_name,
                  "batched", qps, percentile(lat, 0.50), percentile(lat, 0.99),
                  100 * hit_rate);
      report.add()
          .str("arm", "serve_qps")
          .str("cache", cache_name)
          .str("mode", "batched")
          .num("cache_entries", static_cast<double>(cache_entries))
          .num("trace_len", static_cast<double>(trace.size()))
          .num("batch", static_cast<double>(batch))
          .num("zipf_theta", 1.1)
          .num("qps", qps)
          .num("p50_us", percentile(lat, 0.50))
          .num("p99_us", percentile(lat, 0.99))
          .num("cache_hit_rate", hit_rate);
    }
  }
  const double cache_win = cached_single.qps / uncached_single.qps;
  std::printf("cache win on the skewed trace: %.2fx QPS (hit rate %.1f%%)\n\n",
              cache_win, 100 * cached_single.hit_rate);
  report.add()
      .str("arm", "serve_qps_summary")
      .num("cache_qps_win", cache_win)
      .num("cache_hit_rate", cached_single.hit_rate);
  std::remove(path.c_str());
}

// Arm 11: prediction quality — masked completion vs unmasked HOOI on a
// planted rank-(5,5,5) tensor observed at 1% with Gaussian noise of known
// sigma. Because the generator normalizes the clean signal to unit RMS,
// noise_sigma IS the held-out noise floor: a solver that recovers the
// planted factors lands at RMSE ~ sigma, one that fits the implicit zeros
// (unmasked HOOI's objective) cannot. The full-size arm reproduces the
// core_completion_test acceptance pin (masked <= 1.15x the floor, unmasked
// > 3x masked); the smoke arm runs the same recipe on a smaller tensor
// kept above the mask-density recovery threshold.
void completion_ablation(bool smoke, htb::JsonReport& report) {
  using namespace ht;
  std::printf("=== Ablation 11: masked completion vs unmasked HOOI ===\n");
  const tensor::Shape shape =
      smoke ? tensor::Shape{120, 90, 70} : tensor::Shape{220, 170, 110};
  const tensor::nnz_t target_nnz = smoke ? 28000 : 41140;  // ~1% observed
  const tensor::Shape ranks{5, 5, 5};
  const double noise = 0.1;

  const auto planted = tensor::random_low_rank(shape, target_nnz, ranks,
                                               noise, 38);
  core::SplitOptions split_options;
  split_options.validation_fraction = 0.1;
  split_options.test_fraction = 0.1;
  split_options.seed = 39;
  const auto split = core::split_tensor(planted.tensor, split_options);

  const auto observed_fit = [](const tensor::CooTensor& x, double rmse) {
    double norm_sq = 0;
    for (const double v : x.values()) norm_sq += v * v;
    const double sse = rmse * rmse * static_cast<double>(x.nnz());
    return 1.0 - std::sqrt(sse / norm_sq);
  };

  // Masked: the completion solver with the ridge-annealed schedule the
  // acceptance test pins.
  core::CompletionOptions copt;
  copt.ranks = {5, 5, 5};
  copt.max_sweeps = 40;
  copt.lambda = 0.01;
  copt.lambda_anneal_factor = 100.0;
  copt.lambda_anneal_sweeps = 20;
  copt.core_cg_iterations = 8;
  copt.objective_tolerance = 1e-8;
  copt.early_stopping_patience = 0;
  WallTimer t_masked;
  const auto masked = core::tucker_complete(split.train, &split.validation,
                                            copt);
  const double masked_s = t_masked.seconds();
  const auto masked_eval = core::evaluate_model(split.test,
                                                masked.decomposition);

  // Unmasked: HOOI at the same ranks on the same training entries.
  core::HooiOptions hopt;
  hopt.ranks = {5, 5, 5};
  hopt.max_iterations = 20;
  hopt.fit_tolerance = 1e-6;
  WallTimer t_hooi;
  const auto unmasked = core::hooi(split.train, hopt);
  const double unmasked_s = t_hooi.seconds();
  const auto unmasked_eval = core::evaluate_model(split.test,
                                                  unmasked.decomposition);

  std::printf("%-9s %8s %8s %10s %12s %10s %9s\n", "solver", "sweeps",
              "fit", "train(s)", "test_rmse", "vs_noise", "floor");
  struct Row {
    const char* name;
    int sweeps;
    double fit, train_s, rmse;
  };
  const Row rows[] = {
      {"masked", masked.sweeps,
       observed_fit(split.train, masked.final_train_rmse()), masked_s,
       masked_eval.rmse},
      {"unmasked", unmasked.iterations, unmasked.final_fit(), unmasked_s,
       unmasked_eval.rmse},
  };
  for (const Row& r : rows) {
    std::printf("%-9s %8d %8.4f %10.3f %12.4f %9.2fx %9.2f\n", r.name,
                r.sweeps, r.fit, r.train_s, r.rmse,
                r.rmse / planted.noise_sigma, planted.noise_sigma);
    report.add()
        .str("arm", "completion")
        .str("solver", r.name)
        .num("nnz", static_cast<double>(planted.tensor.nnz()))
        .num("train_nnz", static_cast<double>(split.train.nnz()))
        .num("test_nnz", static_cast<double>(split.test.nnz()))
        .num("rank", 5)
        .num("noise_sigma", planted.noise_sigma)
        .num("sweeps", r.sweeps)
        .num("fit", r.fit)
        .num("train_s", r.train_s)
        .num("test_rmse", r.rmse)
        .num("rmse_vs_noise", r.rmse / planted.noise_sigma);
  }
  const double gap = unmasked_eval.rmse / masked_eval.rmse;
  std::printf("masked reaches %.2fx the noise floor; unmasked held-out RMSE "
              "is %.1fx the masked one\n\n",
              masked_eval.rmse / planted.noise_sigma, gap);
  report.add()
      .str("arm", "completion_summary")
      .num("masked_vs_noise", masked_eval.rmse / planted.noise_sigma)
      .num("unmasked_vs_masked", gap)
      .num("masked_within_1p15_floor",
           masked_eval.rmse <= 1.15 * planted.noise_sigma ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ht;

  htb::JsonReport report(htb::json_path_from_args(argc, argv));
  fiber_kernel_ablation(htb::bench_smoke(), report);
  csf_kernel_ablation(htb::bench_smoke(), report);
  alto_kernel_ablation(htb::bench_smoke(), report);
  tree_scheduler_ablation(htb::bench_smoke(), report);
  trsvd_backend_ablation(htb::bench_smoke(), report);
  model_store_ablation(htb::bench_smoke(), report);
  serve_qps_ablation(htb::bench_smoke(), report);
  completion_ablation(htb::bench_smoke(), report);
  if (htb::bench_smoke()) {
    std::printf("[smoke] skipping ablations 1-3 (HT_SMOKE=1)\n");
    report.write();
    return 0;
  }

  const auto bt = htb::load_preset("netflix");
  const auto& x = bt.tensor;
  const auto& ranks = bt.spec.ranks;

  // ---- 1. symbolic reuse --------------------------------------------------
  std::printf("=== Ablation 1: symbolic TTMc reuse ===\n");
  // The reusable preprocessing is the symbolic update lists *and* the
  // dimension-tree plan (both pattern-only); the reuse arms below pass both
  // to the 4-arg hooi so no per-call plan rebuild pollutes the numbers.
  WallTimer t_sym;
  const core::SymbolicTtmc symbolic = core::SymbolicTtmc::build(x);
  const core::DimTreePlan tree = core::DimTreePlan::build(x);
  const double sym_s = t_sym.seconds();

  core::HooiOptions options;
  options.ranks = ranks;
  options.max_iterations = htb::bench_iters();
  options.fit_tolerance = 0.0;
  WallTimer t_iters;
  const auto run = core::hooi(x, options, symbolic, &tree);
  const double per_iter = t_iters.seconds() / run.iterations;
  std::printf("symbolic build: %.3fs; numeric iteration: %.3fs "
              "(symbolic pays for itself after %.1f iterations)\n",
              sym_s, per_iter, sym_s / per_iter);
  report.add()
      .str("arm", "symbolic_reuse")
      .num("symbolic_s", sym_s)
      .num("iteration_s", per_iter)
      .num("breakeven_iterations", sym_s / per_iter);

  // Reuse across rank choices (paper: "computed once and used for all
  // these executions").
  WallTimer t_reuse;
  for (tensor::index_t r : {4, 6, 8}) {
    core::HooiOptions o = options;
    o.ranks.assign(x.order(), r);
    o.max_iterations = 2;
    (void)core::hooi(x, o, symbolic, &tree);
  }
  const double reuse_s = t_reuse.seconds();
  WallTimer t_rebuild;
  for (tensor::index_t r : {4, 6, 8}) {
    core::HooiOptions o = options;
    o.ranks.assign(x.order(), r);
    o.max_iterations = 2;
    (void)core::hooi(x, o);  // rebuilds symbolic internally
  }
  const double rebuild_s = t_rebuild.seconds();
  std::printf("3 rank sweeps: reuse %.2fs vs rebuild %.2fs (%.2fx)\n\n",
              reuse_s, rebuild_s, rebuild_s / reuse_s);
  report.add()
      .str("arm", "symbolic_reuse_sweep")
      .num("reuse_s", reuse_s)
      .num("rebuild_s", rebuild_s)
      .num("speedup", rebuild_s / reuse_s);

  // ---- 2. dynamic vs static scheduling -----------------------------------
  std::printf("=== Ablation 2: TTMc row-loop scheduling (skewed tensor) ===\n");
  std::vector<la::Matrix> factors;
  {
    core::HooiOptions o = options;
    o.max_iterations = 1;
    factors = core::hooi(x, o, symbolic, &tree).decomposition.factors;
  }
  for (const auto schedule :
       {core::Schedule::kDynamic, core::Schedule::kStatic}) {
    la::Matrix y;
    WallTimer t;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t n = 0; n < x.order(); ++n) {
        core::ttmc_mode(x, factors, n, symbolic.modes[n], y, {schedule});
      }
    }
    std::printf("%s: %.3fs for %d full TTMc sweeps\n",
                schedule == core::Schedule::kDynamic ? "dynamic" : "static ",
                t.seconds(), reps);
    report.add()
        .str("arm", "schedule")
        .str("schedule",
             schedule == core::Schedule::kDynamic ? "dynamic" : "static")
        .num("seconds", t.seconds())
        .num("sweeps", reps);
  }
  std::printf("\n");

  // ---- 3. Lanczos vs Gram TRSVD -------------------------------------------
  std::printf("=== Ablation 3: TRSVD method on Y(1) ===\n");
  la::Matrix y;
  core::ttmc_mode(x, factors, 0, symbolic.modes[0], y, {});
  for (const auto method :
       {core::TrsvdMethod::kLanczos, core::TrsvdMethod::kGram}) {
    WallTimer t;
    const auto res = core::trsvd_factor(y, symbolic.modes[0].rows, x.dim(0),
                                        ranks[0], method);
    std::printf("%s: %.3fs (sigma_1 = %.4f, steps = %zu)\n",
                method == core::TrsvdMethod::kLanczos ? "lanczos" : "gram   ",
                t.seconds(), res.sigma[0], res.solver_steps);
    report.add()
        .str("arm", "trsvd_method")
        .str("method",
             method == core::TrsvdMethod::kLanczos ? "lanczos" : "gram")
        .num("seconds", t.seconds())
        .num("sigma_1", res.sigma[0])
        .num("steps", static_cast<double>(res.solver_steps));
  }
  report.write();
  return 0;
}
