// Ablations for the design choices DESIGN.md calls out (beyond the paper's
// tables):
//   1. symbolic TTMc reuse — preprocessing cost vs per-iteration cost, and
//      its amortization across HOOI runs with different ranks (the paper's
//      Sec. V argument for reusing the symbolic structure);
//   2. dynamic vs static OpenMP scheduling of the TTMc row loop on a skewed
//      tensor (the paper chooses dynamic);
//   3. Lanczos vs Gram-matrix TRSVD (the matrix-free choice).
#include <cstdio>

#include "bench_common.hpp"
#include "core/hooi.hpp"
#include "core/symbolic.hpp"
#include "core/trsvd.hpp"
#include "core/ttmc.hpp"
#include "la/lanczos.hpp"

int main() {
  using namespace ht;

  const auto bt = htb::load_preset("netflix");
  const auto& x = bt.tensor;
  const auto& ranks = bt.spec.ranks;

  // ---- 1. symbolic reuse --------------------------------------------------
  std::printf("=== Ablation 1: symbolic TTMc reuse ===\n");
  WallTimer t_sym;
  const core::SymbolicTtmc symbolic = core::SymbolicTtmc::build(x);
  const double sym_s = t_sym.seconds();

  core::HooiOptions options;
  options.ranks = ranks;
  options.max_iterations = htb::bench_iters();
  options.fit_tolerance = 0.0;
  WallTimer t_iters;
  const auto run = core::hooi(x, options, symbolic);
  const double per_iter = t_iters.seconds() / run.iterations;
  std::printf("symbolic build: %.3fs; numeric iteration: %.3fs "
              "(symbolic pays for itself after %.1f iterations)\n",
              sym_s, per_iter, sym_s / per_iter);

  // Reuse across rank choices (paper: "computed once and used for all
  // these executions").
  WallTimer t_reuse;
  for (tensor::index_t r : {4, 6, 8}) {
    core::HooiOptions o = options;
    o.ranks.assign(x.order(), r);
    o.max_iterations = 2;
    (void)core::hooi(x, o, symbolic);
  }
  const double reuse_s = t_reuse.seconds();
  WallTimer t_rebuild;
  for (tensor::index_t r : {4, 6, 8}) {
    core::HooiOptions o = options;
    o.ranks.assign(x.order(), r);
    o.max_iterations = 2;
    (void)core::hooi(x, o);  // rebuilds symbolic internally
  }
  const double rebuild_s = t_rebuild.seconds();
  std::printf("3 rank sweeps: reuse %.2fs vs rebuild %.2fs (%.2fx)\n\n",
              reuse_s, rebuild_s, rebuild_s / reuse_s);

  // ---- 2. dynamic vs static scheduling -----------------------------------
  std::printf("=== Ablation 2: TTMc row-loop scheduling (skewed tensor) ===\n");
  std::vector<la::Matrix> factors;
  {
    core::HooiOptions o = options;
    o.max_iterations = 1;
    factors = core::hooi(x, o, symbolic).decomposition.factors;
  }
  for (const auto schedule :
       {core::Schedule::kDynamic, core::Schedule::kStatic}) {
    la::Matrix y;
    WallTimer t;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t n = 0; n < x.order(); ++n) {
        core::ttmc_mode(x, factors, n, symbolic.modes[n], y, {schedule});
      }
    }
    std::printf("%s: %.3fs for %d full TTMc sweeps\n",
                schedule == core::Schedule::kDynamic ? "dynamic" : "static ",
                t.seconds(), reps);
  }
  std::printf("\n");

  // ---- 3. Lanczos vs Gram TRSVD -------------------------------------------
  std::printf("=== Ablation 3: TRSVD method on Y(1) ===\n");
  la::Matrix y;
  core::ttmc_mode(x, factors, 0, symbolic.modes[0], y, {});
  for (const auto method :
       {core::TrsvdMethod::kLanczos, core::TrsvdMethod::kGram}) {
    WallTimer t;
    const auto res = core::trsvd_factor(y, symbolic.modes[0].rows, x.dim(0),
                                        ranks[0], method);
    std::printf("%s: %.3fs (sigma_1 = %.4f, steps = %zu)\n",
                method == core::TrsvdMethod::kLanczos ? "lanczos" : "gram   ",
                t.seconds(), res.sigma[0], res.solver_steps);
  }
  return 0;
}
