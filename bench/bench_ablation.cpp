// Ablations for the design choices DESIGN.md calls out (beyond the paper's
// tables):
//   1. symbolic TTMc reuse — preprocessing cost vs per-iteration cost, and
//      its amortization across HOOI runs with different ranks (the paper's
//      Sec. V argument for reusing the symbolic structure);
//   2. dynamic vs static OpenMP scheduling of the TTMc row loop on a skewed
//      tensor (the paper chooses dynamic);
//   3. Lanczos vs Gram-matrix TRSVD (the matrix-free choice);
//   4. per-nnz vs fiber-factored TTMc kernels across fiber-length regimes,
//      and what the kAuto heuristic picks in each (the perf-trajectory
//      entry: fiber factoring must win on fiber-dense tensors and kAuto
//      must not regress fiber-sparse ones).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/hooi.hpp"
#include "core/hosvd.hpp"
#include "core/symbolic.hpp"
#include "core/trsvd.hpp"
#include "core/ttmc.hpp"
#include "la/lanczos.hpp"
#include "tensor/generators.hpp"

namespace {

// Time the mode-`n` TTMc, best of `reps`. Per-mode timing is the unit the
// kernel heuristic decides on: a tensor's modes can sit in different fiber
// regimes (the generator's last mode sees singleton fibers), and kAuto
// picks per mode.
double time_ttmc_mode(const ht::tensor::CooTensor& x,
                      const std::vector<ht::la::Matrix>& factors,
                      const ht::core::SymbolicTtmc& sym, std::size_t n,
                      const ht::core::TtmcOptions& options, int reps) {
  double best = 1e300;
  ht::la::Matrix y;
  for (int rep = 0; rep < reps; ++rep) {
    ht::WallTimer t;
    ht::core::ttmc_mode(x, factors, n, sym.modes[n], y, options);
    best = std::min(best, t.seconds());
  }
  return best;
}

void fiber_kernel_ablation(bool smoke) {
  using namespace ht;
  std::printf("=== Ablation 4: per-nnz vs fiber-factored TTMc ===\n");
  const tensor::nnz_t target_nnz = smoke ? 20000 : 2000000;
  const tensor::Shape shape = smoke ? tensor::Shape{200, 200, 400}
                                    : tensor::Shape{3000, 3000, 5000};
  const std::vector<tensor::index_t> ranks(3, 10);
  const int reps = smoke ? 1 : 5;

  // Mode 0 of the fibered generator sees ~fiber_len-long fibers; the last
  // mode (fibers run along it) sees singletons, where kAuto must fall back.
  std::printf("%-10s %10s %12s %12s %9s %6s\n", "fiber_len", "avg_len",
              "per-nnz(s)", "fiber(s)", "speedup", "auto");
  for (const tensor::index_t fiber_len : {1, 2, 4, 8, 16}) {
    const auto x = tensor::random_fibered(shape, target_nnz / fiber_len,
                                          fiber_len, 97);
    const core::SymbolicTtmc sym = core::SymbolicTtmc::build(x);
    const auto factors =
        core::random_orthonormal_factors(x.shape(), ranks, 7);

    core::TtmcOptions per_nnz;
    per_nnz.kernel = core::TtmcKernel::kPerNnz;
    core::TtmcOptions fiber;
    fiber.kernel = core::TtmcKernel::kFiberFactored;

    const double t_nnz = time_ttmc_mode(x, factors, sym, 0, per_nnz, reps);
    const double t_fib = time_ttmc_mode(x, factors, sym, 0, fiber, reps);
    const auto picked =
        core::ttmc_selected_kernel(sym.modes[0], x.order(), {});
    std::printf("%-10u %10.2f %12.4f %12.4f %8.2fx %6s\n", fiber_len,
                sym.modes[0].avg_fiber_length(), t_nnz, t_fib, t_nnz / t_fib,
                picked == core::TtmcKernel::kFiberFactored ? "fiber" : "nnz");
  }

  // kAuto on the singleton-fiber mode: must match per-nnz within noise.
  {
    const auto x = tensor::random_fibered(shape, target_nnz, 1, 97);
    const core::SymbolicTtmc sym = core::SymbolicTtmc::build(x);
    const auto factors =
        core::random_orthonormal_factors(x.shape(), ranks, 7);
    core::TtmcOptions per_nnz;
    per_nnz.kernel = core::TtmcKernel::kPerNnz;
    const double t_nnz =
        time_ttmc_mode(x, factors, sym, 0, per_nnz, reps);
    const double t_auto = time_ttmc_mode(x, factors, sym, 0, {}, reps);
    std::printf("fiber-sparse kAuto fallback: per-nnz %.4fs vs auto %.4fs "
                "(%.2fx)\n\n",
                t_nnz, t_auto, t_nnz / t_auto);
  }
}

}  // namespace

int main() {
  using namespace ht;

  fiber_kernel_ablation(htb::bench_smoke());
  if (htb::bench_smoke()) {
    std::printf("[smoke] skipping ablations 1-3 (HT_SMOKE=1)\n");
    return 0;
  }

  const auto bt = htb::load_preset("netflix");
  const auto& x = bt.tensor;
  const auto& ranks = bt.spec.ranks;

  // ---- 1. symbolic reuse --------------------------------------------------
  std::printf("=== Ablation 1: symbolic TTMc reuse ===\n");
  WallTimer t_sym;
  const core::SymbolicTtmc symbolic = core::SymbolicTtmc::build(x);
  const double sym_s = t_sym.seconds();

  core::HooiOptions options;
  options.ranks = ranks;
  options.max_iterations = htb::bench_iters();
  options.fit_tolerance = 0.0;
  WallTimer t_iters;
  const auto run = core::hooi(x, options, symbolic);
  const double per_iter = t_iters.seconds() / run.iterations;
  std::printf("symbolic build: %.3fs; numeric iteration: %.3fs "
              "(symbolic pays for itself after %.1f iterations)\n",
              sym_s, per_iter, sym_s / per_iter);

  // Reuse across rank choices (paper: "computed once and used for all
  // these executions").
  WallTimer t_reuse;
  for (tensor::index_t r : {4, 6, 8}) {
    core::HooiOptions o = options;
    o.ranks.assign(x.order(), r);
    o.max_iterations = 2;
    (void)core::hooi(x, o, symbolic);
  }
  const double reuse_s = t_reuse.seconds();
  WallTimer t_rebuild;
  for (tensor::index_t r : {4, 6, 8}) {
    core::HooiOptions o = options;
    o.ranks.assign(x.order(), r);
    o.max_iterations = 2;
    (void)core::hooi(x, o);  // rebuilds symbolic internally
  }
  const double rebuild_s = t_rebuild.seconds();
  std::printf("3 rank sweeps: reuse %.2fs vs rebuild %.2fs (%.2fx)\n\n",
              reuse_s, rebuild_s, rebuild_s / reuse_s);

  // ---- 2. dynamic vs static scheduling -----------------------------------
  std::printf("=== Ablation 2: TTMc row-loop scheduling (skewed tensor) ===\n");
  std::vector<la::Matrix> factors;
  {
    core::HooiOptions o = options;
    o.max_iterations = 1;
    factors = core::hooi(x, o, symbolic).decomposition.factors;
  }
  for (const auto schedule :
       {core::Schedule::kDynamic, core::Schedule::kStatic}) {
    la::Matrix y;
    WallTimer t;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t n = 0; n < x.order(); ++n) {
        core::ttmc_mode(x, factors, n, symbolic.modes[n], y, {schedule});
      }
    }
    std::printf("%s: %.3fs for %d full TTMc sweeps\n",
                schedule == core::Schedule::kDynamic ? "dynamic" : "static ",
                t.seconds(), reps);
  }
  std::printf("\n");

  // ---- 3. Lanczos vs Gram TRSVD -------------------------------------------
  std::printf("=== Ablation 3: TRSVD method on Y(1) ===\n");
  la::Matrix y;
  core::ttmc_mode(x, factors, 0, symbolic.modes[0], y, {});
  for (const auto method :
       {core::TrsvdMethod::kLanczos, core::TrsvdMethod::kGram}) {
    WallTimer t;
    const auto res = core::trsvd_factor(y, symbolic.modes[0].rows, x.dim(0),
                                        ranks[0], method);
    std::printf("%s: %.3fs (sigma_1 = %.4f, steps = %zu)\n",
                method == core::TrsvdMethod::kLanczos ? "lanczos" : "gram   ",
                t.seconds(), res.sigma[0], res.solver_steps);
  }
  return 0;
}
