// Regenerates paper Table IV: relative time of the TTMc, TRSVD(+comm), and
// core(+comm) steps within a HOOI iteration under the fine-hp partition,
// plus the symbolic-TTMc share of total execution reported in the Section V
// text (5-19% at 256 ranks for 5 iterations).
//
// Expected shape: TTMc dominates for most tensors; TRSVD's share grows with
// huge-mode tensors and dominates Netflix-like shapes at scale; the core
// step is negligible.
// With --json PATH, the per-tensor shares (and absolute seconds) are also
// written as machine-readable records for the CI perf trajectory.
// --trsvd-method lanczos|block|rand|auto swaps the TRSVD backend, so the
// trajectory tracks how the blocked backends move the TRSVD+comm share
// (and the measured fold/expand rounds) on the same partitions.
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "core/symbolic.hpp"
#include "dist/dist_hooi.hpp"

int main(int argc, char** argv) {
  using namespace ht;

  htb::JsonReport report(htb::json_path_from_args(argc, argv));
  htb::enable_network_model_default();
  const int p = htb::bench_nprocs();
  const int iters = htb::bench_iters();
  core::TrsvdMethod trsvd_method = core::TrsvdMethod::kLanczos;
  for (int a = 1; a + 1 < argc; ++a) {
    if (std::strcmp(argv[a], "--trsvd-method") == 0) {
      const auto parsed = core::parse_trsvd_method(argv[a + 1]);
      if (!parsed || *parsed == core::TrsvdMethod::kGram) {
        std::fprintf(stderr,
                     "--trsvd-method must be lanczos|block|rand|auto\n");
        return 2;
      }
      trsvd_method = *parsed;
    }
  }
  std::printf(
      "=== Table IV: relative step timings (%%), fine-hp, %d ranks, %d "
      "iterations, trsvd=%s ===\n",
      p, iters, core::trsvd_method_name(trsvd_method));

  std::vector<std::string> header = {"step"};
  for (const auto& name : htb::bench_tensors()) header.push_back(name);
  TextTable table(header);
  std::vector<std::string> row_ttmc = {"TTMc"};
  std::vector<std::string> row_trsvd = {"TRSVD+comm"};
  std::vector<std::string> row_core = {"core+comm"};
  std::vector<std::string> row_symbolic = {"symbolic (of total)"};

  for (const auto& name : htb::bench_tensors()) {
    const auto bt = htb::load_preset(name);

    dist::DistHooiOptions options;
    options.ranks = bt.spec.ranks;
    options.grain = dist::Grain::kFine;
    options.method = dist::Method::kHypergraph;
    options.num_ranks = p;
    options.max_iterations = iters;
    options.trsvd_method = trsvd_method;

    dist::PlanOptions popt;
    popt.grain = options.grain;
    popt.method = options.method;
    popt.num_ranks = p;
    const auto gplan = dist::build_global_plan(bt.tensor, popt);
    const auto rplans =
        dist::build_rank_plans(bt.tensor, gplan, options.ranks, options.seed);

    // Symbolic cost: the slowest rank's symbolic pass over its local tensor
    // (performed once, before the iterations).
    double symbolic_max = 0.0;
    for (const auto& rp : rplans) {
      WallTimer t;
      const auto sym = core::SymbolicTtmc::build(rp.local);
      symbolic_max = std::max(symbolic_max, t.seconds());
    }

    const auto result = dist::dist_hooi(bt.tensor, options, gplan, rplans);
    const double iter_total = result.timers.iteration_total();
    row_ttmc.push_back(fmt_fixed(100.0 * result.timers.ttmc / iter_total, 1));
    row_trsvd.push_back(
        fmt_fixed(100.0 * result.timers.trsvd / iter_total, 1));
    row_core.push_back(fmt_fixed(100.0 * result.timers.core / iter_total, 1));
    row_symbolic.push_back(fmt_fixed(
        100.0 * symbolic_max / (symbolic_max + iter_total), 1));
    std::string resolved;
    for (std::size_t n = 0; n < result.trsvd_methods.size(); ++n) {
      if (n) resolved += ",";
      resolved += core::trsvd_method_name(result.trsvd_methods[n]);
    }
    report.add()
        .str("bench", "table4_step_breakdown")
        .str("tensor", name)
        .num("nnz", static_cast<double>(bt.tensor.nnz()))
        .num("ranks", p)
        .num("iterations", iters)
        .str("trsvd_method", core::trsvd_method_name(trsvd_method))
        .str("trsvd_resolved", resolved)
        .num("trsvd_rounds", static_cast<double>(result.stats.total_trsvd_rounds()))
        .num("ttmc_s", result.timers.ttmc)
        .num("trsvd_s", result.timers.trsvd)
        .num("core_s", result.timers.core)
        .num("symbolic_s", symbolic_max)
        .num("ttmc_pct", 100.0 * result.timers.ttmc / iter_total)
        .num("trsvd_pct", 100.0 * result.timers.trsvd / iter_total)
        .num("core_pct", 100.0 * result.timers.core / iter_total)
        .num("symbolic_of_total_pct",
             100.0 * symbolic_max / (symbolic_max + iter_total));
  }

  table.add_row(row_ttmc);
  table.add_row(row_trsvd);
  table.add_row(row_core);
  table.add_separator();
  table.add_row(row_symbolic);
  std::printf("%s", table.to_string().c_str());
  report.write();
  return 0;
}
