// Regenerates paper Table II: distributed-memory strong scaling. For each
// dataset, sweeps the simulated rank count and reports the time per HOOI
// iteration under the four data distributions (fine-hp, fine-rd, coarse-hp,
// coarse-bl). Partitioning happens offline and is reported separately,
// exactly as in the paper.
//
// Expected shape: times fall with rank count for all configurations;
// fine-hp is the fastest at scale; fine-rd trails fine-hp; both fine
// variants beat the coarse ones. (Absolute numbers differ from the paper's
// BlueGene/Q — this runs on a simulated message-passing runtime.)
#include <cstdio>

#include "bench_common.hpp"
#include "dist/dist_hooi.hpp"

namespace {

using ht::dist::Grain;
using ht::dist::Method;

struct Config {
  Grain grain;
  Method method;
};

const Config kConfigs[] = {
    {Grain::kFine, Method::kHypergraph},
    {Grain::kFine, Method::kRandom},
    {Grain::kCoarse, Method::kHypergraph},
    {Grain::kCoarse, Method::kBlock},
};

}  // namespace

int main() {
  using namespace ht;

  htb::enable_network_model_default();
  const auto rank_counts = htb::bench_rank_counts();
  const int iters = htb::bench_iters();
  std::printf(
      "=== Table II: time per HOOI iteration (seconds), %d iterations ===\n",
      iters);

  for (const auto& name : htb::bench_tensors()) {
    const auto bt = htb::load_preset(name);
    const std::vector<tensor::index_t>& ranks = bt.spec.ranks;

    TextTable table({"#ranks", "fine-hp", "fine-rd", "coarse-hp",
                     "coarse-bl"});
    double prep_seconds = 0.0;

    for (int p : rank_counts) {
      std::vector<std::string> row = {std::to_string(p)};
      for (const auto& config : kConfigs) {
        dist::DistHooiOptions options;
        options.ranks = ranks;
        options.grain = config.grain;
        options.method = config.method;
        options.num_ranks = p;
        options.max_iterations = iters;

        // Offline partitioning (not part of the per-iteration timing).
        dist::PlanOptions popt;
        popt.grain = options.grain;
        popt.method = options.method;
        popt.num_ranks = p;
        popt.seed = options.seed;
        WallTimer prep;
        const auto gplan = dist::build_global_plan(bt.tensor, popt);
        const auto rplans =
            dist::build_rank_plans(bt.tensor, gplan, ranks, options.seed);
        prep_seconds += prep.seconds();

        const auto result = dist::dist_hooi(bt.tensor, options, gplan, rplans);
        row.push_back(fmt_time_s(result.seconds_per_iteration));
      }
      table.add_row(row);
    }

    std::printf("\n--- %s (%s) ---\n%s", name.c_str(),
                bt.tensor.summary().c_str(), table.to_string().c_str());
    std::printf("offline partitioning total: %.1fs (excluded per paper)\n",
                prep_seconds);
  }
  return 0;
}
