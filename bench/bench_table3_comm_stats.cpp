// Regenerates paper Table III: per-mode computation and communication
// statistics (max/avg over ranks) of one HOOI iteration on the Flickr-shaped
// tensor under all four partitionings.
//
// Expected shape: fine-grain W_TTMc is perfectly balanced while coarse-grain
// shows large imbalance on skewed modes; fine-rd inflates W_TRSVD and comm
// volume by roughly an order of magnitude over fine-hp; fine-hp communicates
// the least.
#include <cstdio>

#include "bench_common.hpp"
#include "dist/dist_hooi.hpp"

int main() {
  using namespace ht;

  htb::enable_network_model_default();
  const std::string name = env_string("HT_TENSOR", "flickr");
  const int p = htb::bench_nprocs();
  const auto bt = htb::load_preset(name);

  std::printf(
      "=== Table III: per-mode W_TTMc / W_TRSVD / comm volume, %s, %d ranks "
      "===\n",
      name.c_str(), p);

  struct Config {
    dist::Grain grain;
    dist::Method method;
  };
  const Config configs[] = {
      {dist::Grain::kFine, dist::Method::kHypergraph},
      {dist::Grain::kFine, dist::Method::kRandom},
      {dist::Grain::kCoarse, dist::Method::kHypergraph},
      {dist::Grain::kCoarse, dist::Method::kBlock},
  };

  for (const auto& config : configs) {
    dist::DistHooiOptions options;
    options.ranks = bt.spec.ranks;
    options.grain = config.grain;
    options.method = config.method;
    options.num_ranks = p;
    options.max_iterations = 1;  // Table III reports one iteration
    const auto result = dist::dist_hooi(bt.tensor, options);

    TextTable table({"mode", "W_TTMc max", "W_TTMc avg", "W_TRSVD max",
                     "W_TRSVD avg", "Comm max", "Comm avg"});
    for (std::size_t n = 0; n < result.stats.modes(); ++n) {
      const auto ttmc = result.stats.ttmc_summary(n);
      const auto trsvd = result.stats.trsvd_summary(n);
      const auto comm = result.stats.comm_summary(n);
      table.add_row({std::to_string(n + 1), human_count(ttmc.max),
                     human_count(ttmc.avg), human_count(trsvd.max),
                     human_count(trsvd.avg), human_count(comm.max),
                     human_count(comm.avg)});
    }
    std::printf("\n--- %s ---\n%s", result.label.c_str(),
                table.to_string().c_str());
  }
  return 0;
}
