// Regenerates paper Table I: the dataset inventory. Prints the paper's
// original sizes next to the scaled synthetic stand-ins actually used by
// the other benches (see DESIGN.md "Substitutions").
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ht;

  std::printf("=== Table I: tensors used in the experiments ===\n");
  std::printf("(paper sizes -> scaled synthetic stand-ins at HT_SCALE=%.2f)\n\n",
              htb::bench_scale());

  struct PaperRow {
    const char* name;
    const char* dims;
    const char* nnz;
  };
  const PaperRow paper[] = {
      {"netflix", "480K x 17K x 2K", "100M"},
      {"nell", "3.2M x 301 x 638K", "78M"},
      {"delicious", "1.4K x 532K x 17M x 2.4M", "140M"},
      {"flickr", "731 x 319K x 28M x 1.6M", "112M"},
  };

  TextTable table({"tensor", "paper dims", "paper nnz", "generated dims",
                   "generated nnz", "ranks"});
  for (const auto& row : paper) {
    const auto bt = htb::load_preset(row.name);
    std::string dims, ranks;
    for (std::size_t n = 0; n < bt.spec.shape.size(); ++n) {
      if (n) dims += " x ";
      dims += std::to_string(bt.spec.shape[n]);
    }
    for (std::size_t n = 0; n < bt.spec.ranks.size(); ++n) {
      if (n) ranks += ",";
      ranks += std::to_string(bt.spec.ranks[n]);
    }
    table.add_row({row.name, row.dims, row.nnz, dims,
                   human_count(static_cast<double>(bt.tensor.nnz())), ranks});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
