// Google-benchmark microbenchmarks for the hot kernels: numeric TTMc per
// mode, the Kronecker row update, TRSVD solvers, symbolic preprocessing,
// and the simulated collectives.
#include <benchmark/benchmark.h>

#include <map>

#include "core/hosvd.hpp"
#include "core/symbolic.hpp"
#include "core/trsvd.hpp"
#include "core/ttmc.hpp"
#include "la/lanczos.hpp"
#include "la/linear_operator.hpp"
#include "smp/communicator.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::SymbolicTtmc;
using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

struct TtmcFixture {
  CooTensor x;
  SymbolicTtmc sym;
  std::vector<Matrix> factors;

  static const TtmcFixture& instance() {
    static TtmcFixture f = [] {
      TtmcFixture fx;
      fx.x = ht::tensor::random_zipf(Shape{20000, 1000, 120}, 200000,
                                     {0.9, 1.0, 0.4}, 42);
      fx.sym = SymbolicTtmc::build(fx.x);
      fx.factors = ht::core::random_orthonormal_factors(
          fx.x.shape(), std::vector<index_t>{10, 10, 10}, 7);
      return fx;
    }();
    return f;
  }
};

void BM_TtmcMode(benchmark::State& state) {
  const auto& f = TtmcFixture::instance();
  const auto mode = static_cast<std::size_t>(state.range(0));
  Matrix y;
  for (auto _ : state) {
    ht::core::ttmc_mode(f.x, f.factors, mode, f.sym.modes[mode], y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.x.nnz()));
}
BENCHMARK(BM_TtmcMode)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// Per-nnz vs fiber-factored across fiber-length regimes: one tensor per
// fiber length (constant total nnz), mode 0 (whose fibers run along the
// generator's last-mode runs).
struct FiberFixture {
  CooTensor x;
  SymbolicTtmc sym;
  std::vector<Matrix> factors;
};

const FiberFixture& fiber_fixture(index_t fiber_len) {
  static std::map<index_t, FiberFixture> cache;
  auto it = cache.find(fiber_len);
  if (it == cache.end()) {
    FiberFixture fx;
    fx.x = ht::tensor::random_fibered(Shape{2000, 2000, 3000},
                                      200000 / fiber_len, fiber_len, 97);
    fx.sym = SymbolicTtmc::build(fx.x);
    fx.factors = ht::core::random_orthonormal_factors(
        fx.x.shape(), std::vector<index_t>{10, 10, 10}, 7);
    it = cache.emplace(fiber_len, std::move(fx)).first;
  }
  return it->second;
}

void BM_TtmcKernelByFiberLength(benchmark::State& state) {
  const auto fiber_len = static_cast<index_t>(state.range(0));
  const bool fiber_kernel = state.range(1) != 0;
  const auto& f = fiber_fixture(fiber_len);
  ht::core::TtmcOptions options;
  options.kernel = fiber_kernel ? ht::core::TtmcKernel::kFiberFactored
                                : ht::core::TtmcKernel::kPerNnz;
  Matrix y;
  for (auto _ : state) {
    ht::core::ttmc_mode(f.x, f.factors, 0, f.sym.modes[0], y, options);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.x.nnz()));
}
BENCHMARK(BM_TtmcKernelByFiberLength)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {0, 1}})
    ->ArgNames({"fiber_len", "fiber_kernel"})
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicTtmc(benchmark::State& state) {
  const auto& f = TtmcFixture::instance();
  for (auto _ : state) {
    auto sym = SymbolicTtmc::build(f.x);
    benchmark::DoNotOptimize(sym.modes.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.x.nnz()));
}
BENCHMARK(BM_SymbolicTtmc)->Unit(benchmark::kMillisecond);

void BM_AccumulateKron(benchmark::State& state) {
  const auto& f = TtmcFixture::instance();
  std::vector<double> out(100, 0.0);
  ht::tensor::nnz_t e = 0;
  for (auto _ : state) {
    ht::core::accumulate_kron(f.x, e, f.factors, 0, out);
    e = (e + 1) % f.x.nnz();
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AccumulateKron);

Matrix tall_skinny(std::size_t m, std::size_t c, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, c);
  for (auto& v : a.flat()) v = rng.uniform(-1, 1);
  // Impose decay so Lanczos converges like on real TTMc output.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < c; ++j) a(i, j) /= (1.0 + j);
  }
  return a;
}

void BM_LanczosTrsvd(benchmark::State& state) {
  const Matrix a = tall_skinny(20000, 100, 3);
  for (auto _ : state) {
    ht::la::DenseOperator op(a);
    auto r = ht::la::lanczos_trsvd(op, 10);
    benchmark::DoNotOptimize(r.sigma.data());
  }
}
BENCHMARK(BM_LanczosTrsvd)->Unit(benchmark::kMillisecond);

void BM_GramTrsvd(benchmark::State& state) {
  const Matrix a = tall_skinny(20000, 100, 3);
  for (auto _ : state) {
    auto r = ht::la::gram_trsvd(a, 10);
    benchmark::DoNotOptimize(r.sigma.data());
  }
}
BENCHMARK(BM_GramTrsvd)->Unit(benchmark::kMillisecond);

void BM_AllreduceSum(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = 4096;
  for (auto _ : state) {
    ht::smp::run_spmd(p, [n](ht::smp::Communicator& comm) {
      std::vector<double> v(n, comm.rank());
      comm.allreduce_sum(v);
      benchmark::DoNotOptimize(v.data());
    });
  }
}
BENCHMARK(BM_AllreduceSum)->Arg(2)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
