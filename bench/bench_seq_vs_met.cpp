// Regenerates the sequential comparison from Section V: the paper reports
// 87.2 s for MET (materialized TTM chains, MATLAB Tensor Toolbox evaluation
// order) vs 11.3 s for their fused nonzero-based method on a random
// 10K x 10K x 10K tensor with 1M nonzeros, five HOOI iterations, one core.
//
// Expected shape: the fused formulation wins by a large factor; the gap
// comes from MET materializing (and sorting/merging) semi-sparse
// intermediates per mode.
#include <cstdio>

#include "bench_common.hpp"
#include "core/hooi.hpp"
#include "core/met_baseline.hpp"

int main() {
  using namespace ht;

  // Paper: 10K^3, 1M nnz; scaled by HT_SCALE (0.25 default -> 2.5K^3, 250K).
  const double scale = htb::bench_scale();
  const auto dim = static_cast<tensor::index_t>(10000 * scale);
  const auto nnz = static_cast<tensor::nnz_t>(1e6 * scale);
  const int iters = htb::bench_iters();

  tensor::CooTensor x =
      tensor::random_uniform({dim, dim, dim}, nnz, /*seed=*/42);
  std::printf("=== Sequential MET comparison (Sec. V): %s, %d iterations, 1 "
              "thread ===\n",
              x.summary().c_str(), iters);

  core::HooiOptions options;
  options.ranks = {10, 10, 10};
  options.max_iterations = iters;
  options.fit_tolerance = 0.0;
  options.num_threads = 1;  // the paper's comparison is sequential

  WallTimer t_fused;
  const auto fused = core::hooi(x, options);
  const double fused_s = t_fused.seconds();

  WallTimer t_met;
  const auto met = core::hooi_met_baseline(x, options);
  const double met_s = t_met.seconds();

  TextTable table({"method", "total (s)", "ttmc (s)", "trsvd (s)", "fit"});
  table.add_row({"HyperTensor (fused TTMc)", fmt_time_s(fused_s),
                 fmt_time_s(fused.timers.ttmc), fmt_time_s(fused.timers.trsvd),
                 fmt_fixed(fused.final_fit(), 4)});
  table.add_row({"MET-style (materialized)", fmt_time_s(met_s),
                 fmt_time_s(met.timers.ttmc), fmt_time_s(met.timers.trsvd),
                 fmt_fixed(met.final_fit(), 4)});
  std::printf("%s", table.to_string().c_str());
  std::printf("speedup of fused over MET-style: %.1fx (paper: 87.2/11.3 = "
              "7.7x)\n",
              met_s / fused_s);
  return 0;
}
