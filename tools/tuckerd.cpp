// tuckerd: the HyperTensor model server.
//
// Serves point-reconstruction and top-k queries from a trained .htb model
// bundle over a newline-delimited text protocol (see serve/protocol.hpp),
// on a unix-domain socket or a loopback TCP port. The bundle is mmap'd
// read-only (zero copy); a background watcher polls the bundle path and
// hot-swaps a new model in without dropping in-flight queries — retrain
// with `tucker_cli ... --save-model model.htb` and the daemon picks it up.
//
//   tuckerd --model model.htb --socket /tmp/tuckerd.sock
//   tuckerd --model model.htb --port 7075 --threads 4
//           --cache-entries 8192 --reload-interval 2.0
//
// Query it with `tucker_cli --query /tmp/tuckerd.sock "SCORE 3 17 5"` or
// anything that can write lines to a socket (nc, socat).
#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "serve/dispatcher.hpp"
#include "serve/model_handle.hpp"
#include "serve/net.hpp"
#include "util/version.hpp"

#if !HT_HAVE_SOCKETS
int main() {
  std::fprintf(stderr, "tuckerd requires POSIX sockets\n");
  return 1;
}
#else

namespace {

struct Options {
  std::string model_path;
  std::string socket_path;
  int port = -1;
  int threads = 0;
  std::size_t cache_entries = 4096;
  double reload_interval = 2.0;
  bool verify = true;
  bool print_port = false;
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: tuckerd --model FILE.htb (--socket PATH | --port N)\n"
               "               [--threads T] [--cache-entries N]\n"
               "               [--reload-interval SECONDS] [--no-verify]\n"
               "               [--print-port]\n"
               "\n"
               "Serves SCORE/SCOREB/TOPK/INFO/STATS/RELOAD/SHUTDOWN requests\n"
               "(one per line) against a Tucker model bundle. The bundle is\n"
               "mmap'd zero-copy and re-read automatically when the file\n"
               "changes; --port 0 binds a free port (use --print-port).\n");
}

// SHUTDOWN is handled on a connection thread, but SocketServer::shutdown()
// joins the connection threads — so the request only signals the main
// thread, which does the actual teardown after serve_async keeps running
// long enough to write the "OK bye" response.
std::mutex g_mutex;
std::condition_variable g_cv;
bool g_shutdown = false;

void request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_shutdown = true;
  }
  g_cv.notify_all();
}

void on_signal(int) { request_shutdown(); }

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tuckerd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      opt.model_path = next();
    } else if (arg == "--socket") {
      opt.socket_path = next();
    } else if (arg == "--port") {
      opt.port = std::atoi(next());
    } else if (arg == "--threads") {
      opt.threads = std::atoi(next());
    } else if (arg == "--cache-entries") {
      opt.cache_entries = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--reload-interval") {
      opt.reload_interval = std::atof(next());
    } else if (arg == "--no-verify") {
      opt.verify = false;
    } else if (arg == "--print-port") {
      opt.print_port = true;
    } else if (arg == "--version") {
      std::printf("tuckerd %s (%s)\n", ht::kVersion, ht::kGitHash);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "tuckerd: unknown flag '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (opt.model_path.empty() ||
      (opt.socket_path.empty() && opt.port < 0)) {
    usage(stderr);
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    ht::serve::ModelHandle handle;
    handle.load_and_publish(opt.model_path, opt.verify);
    {
      auto snap = handle.snapshot();
      std::fprintf(stderr,
                   "tuckerd: serving %s (order %zu, fit %.4f, %s)\n",
                   opt.model_path.c_str(), snap->order(), snap->fit(),
                   snap->is_view() ? "mmap" : "heap");
    }
    handle.start_watch(opt.model_path, opt.reload_interval, opt.verify);

    ht::serve::QueryOptions qopt;
    qopt.cache_entries = opt.cache_entries;
    qopt.num_threads = opt.threads;
    ht::serve::DispatcherHooks hooks;
    hooks.reload = [&handle, &opt] {
      handle.load_and_publish(opt.model_path, opt.verify);
    };
    hooks.shutdown = request_shutdown;
    ht::serve::Dispatcher dispatcher(handle, qopt, hooks);

    ht::serve::SocketServer server;
    if (!opt.socket_path.empty()) {
      server.listen_unix(opt.socket_path);
      std::fprintf(stderr, "tuckerd: listening on %s\n",
                   opt.socket_path.c_str());
    } else {
      server.listen_tcp(opt.port);
      std::fprintf(stderr, "tuckerd: listening on 127.0.0.1:%d\n",
                   server.port());
      if (opt.print_port) {
        std::printf("%d\n", server.port());
        std::fflush(stdout);
      }
    }
    server.serve_async(
        [&dispatcher](const std::string& line) {
          return dispatcher.handle_line(line);
        });

    {
      std::unique_lock<std::mutex> lock(g_mutex);
      g_cv.wait(lock, [] { return g_shutdown; });
    }
    std::fprintf(stderr, "tuckerd: shutting down\n");
    server.shutdown();
    handle.stop_watch();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tuckerd: %s\n", e.what());
    return 1;
  }
  return 0;
}

#endif  // HT_HAVE_SOCKETS
