// AltoTensor invariants: adaptive key sizing, encode/decode bijectivity
// (including max-index boundaries and the two-word key path), key-sort
// ordering and bitwise determinism across thread counts, partition balance
// and per-mode index ranges, the 128-bit key-budget rejection, and
// pattern/attach_values consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <type_traits>
#include <vector>

#include "parallel/thread_info.hpp"
#include "tensor/alto.hpp"
#include "tensor/generators.hpp"
#include "util/error.hpp"

namespace {

using ht::tensor::AltoTensor;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

std::vector<CooTensor> bijectivity_cases() {
  std::vector<CooTensor> cases;
  cases.push_back(ht::tensor::random_fibered(Shape{40, 30, 50}, 300, 6, 11));
  cases.push_back(ht::tensor::random_uniform(Shape{40, 30, 50}, 800, 13));
  cases.push_back(
      ht::tensor::random_fibered(Shape{15, 12, 10, 40}, 250, 5, 17));
  cases.push_back(
      ht::tensor::random_fibered(Shape{8, 7, 6, 5, 20}, 150, 4, 23));
  // Two-word keys: 3 x 23 bits = 69 > 64, so key_hi carries real bits.
  cases.push_back(ht::tensor::random_uniform(
      Shape{1u << 22, 1u << 22, 1u << 22}, 500, 29));
  return cases;
}

void expect_bijective(const CooTensor& x, const AltoTensor& a) {
  ASSERT_EQ(a.nnz(), x.nnz());
  ASSERT_EQ(a.order(), x.order());
  for (nnz_t s = 0; s < a.nnz(); ++s) {
    const nnz_t e = a.perm[s];
    for (std::size_t n = 0; n < x.order(); ++n) {
      ASSERT_EQ(a.mode_index(n, s), x.index(n, e))
          << "slot " << s << " mode " << n;
    }
    if (a.has_values()) {
      ASSERT_EQ(a.values[s], x.value(e));
    }
  }
}

TEST(AltoTensorTest, KeyBitsAreSummedCeilLog2) {
  EXPECT_EQ(AltoTensor::key_bits_for(Shape{40, 30, 50}), 6u + 5u + 6u);
  // dim 1 needs zero bits; exact powers of two need exactly log2 bits.
  EXPECT_EQ(AltoTensor::key_bits_for(Shape{1, 8, 9}), 0u + 3u + 4u);
  // Exactly 128 bits is accepted (two full words), 129 is not.
  const Shape at_budget(4, index_t{0xFFFFFFFFu});  // 4 x 32 bits
  EXPECT_EQ(AltoTensor::key_bits_for(at_budget), 128u);
  EXPECT_TRUE(AltoTensor::fits_key_budget(at_budget));
}

TEST(AltoTensorTest, OverBudgetShapeIsRejected) {
  const Shape too_wide(5, index_t{1u << 30});  // 5 x 30 = 150 bits
  EXPECT_FALSE(AltoTensor::fits_key_budget(too_wide));
  try {
    (void)AltoTensor::key_bits_for(too_wide);
    FAIL() << "expected ht::InvalidArgument";
  } catch (const ht::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("128-bit key budget"),
              std::string::npos)
        << e.what();
  }
  // The build paths go through the same throwing check.
  CooTensor x(too_wide);
  const std::vector<index_t> idx(5, 0);
  x.push_back(idx, 1.0);
  EXPECT_THROW((void)AltoTensor::build(x), ht::InvalidArgument);
  EXPECT_THROW((void)AltoTensor::build_pattern(x), ht::InvalidArgument);
}

TEST(AltoTensorTest, EncodeDecodeIsBijective) {
  for (const auto& x : bijectivity_cases()) {
    const AltoTensor a = AltoTensor::build(x);
    EXPECT_EQ(a.key_bits, AltoTensor::key_bits_for(x.shape()));
    EXPECT_EQ(a.key_hi.empty(), a.key_bits <= 64);
    expect_bijective(x, a);
  }
}

TEST(AltoTensorTest, MaxIndexBoundariesRoundTrip) {
  // Non-power-of-two dims with coordinates at every extreme corner: the
  // top bit pattern of each mode must survive interleaving untouched.
  const Shape shape{5, 6, 7, 3};
  CooTensor x(shape);
  for (unsigned corner = 0; corner < 16; ++corner) {
    std::vector<index_t> idx(4);
    for (std::size_t n = 0; n < 4; ++n) {
      idx[n] = (corner >> n) & 1u ? shape[n] - 1 : 0;
    }
    x.push_back(idx, static_cast<double>(corner + 1));
  }
  expect_bijective(x, AltoTensor::build(x));

  // Same at the index_t ceiling on a two-mode, 64-bit-key shape.
  const Shape wide{0xFFFFFFFFu, 0xFFFFFFFFu};
  CooTensor w(wide);
  w.push_back(std::vector<index_t>{0xFFFFFFFEu, 0xFFFFFFFEu}, 1.0);
  w.push_back(std::vector<index_t>{0, 0xFFFFFFFEu}, 2.0);
  w.push_back(std::vector<index_t>{0xFFFFFFFEu, 0}, 3.0);
  expect_bijective(w, AltoTensor::build(w));
}

TEST(AltoTensorTest, KeysSortedAscendingWithStableTieBreak) {
  for (const auto& x : bijectivity_cases()) {
    const AltoTensor a = AltoTensor::build(x);
    for (nnz_t s = 1; s < a.nnz(); ++s) {
      const std::uint64_t hi_prev = a.key_hi.empty() ? 0 : a.key_hi[s - 1];
      const std::uint64_t hi = a.key_hi.empty() ? 0 : a.key_hi[s];
      ASSERT_TRUE(hi_prev < hi ||
                  (hi_prev == hi && a.key_lo[s - 1] < a.key_lo[s]) ||
                  (hi_prev == hi && a.key_lo[s - 1] == a.key_lo[s] &&
                   a.perm[s - 1] < a.perm[s]))
          << "slot " << s;
    }
  }
}

TEST(AltoTensorTest, PartitionsAreBalancedWithTightRanges) {
  const CooTensor x =
      ht::tensor::random_uniform(Shape{60, 50, 40}, 30000, 31);
  const AltoTensor a = AltoTensor::build(x);
  const std::size_t parts = a.num_partitions();
  ASSERT_EQ(parts, (x.nnz() + ht::tensor::kAltoPartNnz - 1) /
                       ht::tensor::kAltoPartNnz);
  ASSERT_EQ(a.part_ptr[0], 0u);
  ASSERT_EQ(a.part_ptr[parts], x.nnz());
  nnz_t mn = x.nnz(), mx = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    mn = std::min(mn, a.partition_nnz(p));
    mx = std::max(mx, a.partition_nnz(p));
    for (std::size_t n = 0; n < x.order(); ++n) {
      index_t lo = x.dim(n), hi = 0;
      for (nnz_t s = a.part_ptr[p]; s < a.part_ptr[p + 1]; ++s) {
        lo = std::min(lo, a.mode_index(n, s));
        hi = std::max(hi, a.mode_index(n, s));
      }
      EXPECT_EQ(a.partition_min(p, n), lo) << "partition " << p;
      EXPECT_EQ(a.partition_max(p, n), hi) << "partition " << p;
    }
  }
  EXPECT_LE(mx - mn, 1u) << "nnz balance";
  EXPECT_LE(mx, ht::tensor::kAltoPartNnz);
}

TEST(AltoTensorTest, BuildIsBitwiseDeterministicAcrossThreadCounts) {
  // Covers the parallel encode, the parallel counting-sort passes, and the
  // parallel partition scans: chunked histograms merge in chunk order, so
  // the structure must match the single-thread build exactly.
  const CooTensor x =
      ht::tensor::random_uniform(Shape{80, 70, 60, 20}, 70000, 37);
  AltoTensor a1, a4;
  {
    ht::parallel::ThreadScope threads(1);
    a1 = AltoTensor::build(x);
  }
  {
    ht::parallel::ThreadScope threads(4);
    a4 = AltoTensor::build(x);
  }
  ASSERT_EQ(a1.nnz(), a4.nnz());
  for (nnz_t s = 0; s < a1.nnz(); ++s) {
    ASSERT_EQ(a1.key_lo[s], a4.key_lo[s]);
    ASSERT_EQ(a1.perm[s], a4.perm[s]);
    ASSERT_EQ(a1.values[s], a4.values[s]);
  }
  ASSERT_EQ(a1.num_partitions(), a4.num_partitions());
  for (std::size_t p = 0; p < a1.num_partitions(); ++p) {
    ASSERT_EQ(a1.part_ptr[p + 1], a4.part_ptr[p + 1]);
    for (std::size_t n = 0; n < a1.order(); ++n) {
      ASSERT_EQ(a1.partition_min(p, n), a4.partition_min(p, n));
      ASSERT_EQ(a1.partition_max(p, n), a4.partition_max(p, n));
    }
  }
}

TEST(AltoTensorTest, PatternThenAttachMatchesBuild) {
  const CooTensor x = ht::tensor::random_fibered(Shape{20, 25, 30}, 120, 5, 7);
  const AltoTensor full = AltoTensor::build(x);
  AltoTensor pattern = AltoTensor::build_pattern(x);
  EXPECT_FALSE(pattern.has_values());
  pattern.attach_values(x);
  ASSERT_TRUE(pattern.has_values());
  for (nnz_t s = 0; s < full.nnz(); ++s) {
    ASSERT_EQ(pattern.values[s], full.values[s]);
    ASSERT_EQ(pattern.perm[s], full.perm[s]);
  }
}

TEST(AltoTensorTest, FormatBytesCountsPersistentArrays) {
  const CooTensor x = ht::tensor::random_uniform(Shape{40, 30, 50}, 800, 13);
  const AltoTensor a = AltoTensor::build(x);
  const std::size_t expected =
      a.key_lo.size() * 8 + a.key_hi.size() * 8 + a.perm.size() * 8 +
      a.values.size() * 8 + a.part_ptr.size() * 8 +
      (a.part_min.size() + a.part_max.size()) * sizeof(index_t);
  EXPECT_EQ(a.format_bytes(), expected);
  // ~24 B/nnz headline for a one-word key with values attached.
  EXPECT_LT(a.format_bytes(), 25.0 * static_cast<double>(a.nnz()));
}

TEST(AltoTensorTest, FromViewsValidatesArrayLengths) {
  const CooTensor x = ht::tensor::random_uniform(Shape{40, 30, 50}, 800, 13);
  const AltoTensor a = AltoTensor::build(x);
  auto copy = [](const auto& span) {
    return std::decay_t<decltype(span)>(
        std::vector(span.begin(), span.end()));
  };
  // Faithful reassembly round-trips.
  const AltoTensor b = AltoTensor::from_views(
      x.shape(), copy(a.key_lo), {}, copy(a.perm), copy(a.values),
      copy(a.part_ptr), copy(a.part_min), copy(a.part_max));
  expect_bijective(x, b);
  // Truncated gather map is rejected.
  std::vector<nnz_t> short_perm(a.perm.begin(), a.perm.end() - 1);
  EXPECT_THROW((void)AltoTensor::from_views(
                   x.shape(), copy(a.key_lo), {},
                   ht::storage::Span<nnz_t>(std::move(short_perm)),
                   copy(a.values), copy(a.part_ptr), copy(a.part_min),
                   copy(a.part_max)),
               ht::Error);
}

}  // namespace
