#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/completion.hpp"
#include "core/hooi.hpp"
#include "core/split.hpp"
#include "core/symbolic.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::CompletionEval;
using ht::core::CompletionOptions;
using ht::core::CompletionResult;
using ht::core::SymbolicTtmc;
using ht::core::TuckerDecomposition;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

CompletionOptions basic_options(std::vector<index_t> ranks, int sweeps = 10) {
  CompletionOptions opt;
  opt.ranks = std::move(ranks);
  opt.max_sweeps = sweeps;
  return opt;
}

CooTensor small_masked_tensor(std::uint64_t seed, nnz_t nnz = 600) {
  CooTensor x =
      ht::tensor::random_uniform(Shape{18, 14, 10}, nnz, seed);
  ht::tensor::plant_low_rank_values(x, 3, 0.05, seed ^ 0xabcdef);
  return x;
}

/// Brute-force d_t for nonzero t of mode `mode`: full core walk, no shared
/// kernels — the independent reference the row solves are checked against.
std::vector<double> dense_delta(const CooTensor& x, nnz_t t, std::size_t mode,
                                const TuckerDecomposition& dec) {
  const Shape& cs = dec.core.shape();
  const std::size_t r_n = cs[mode];
  std::vector<double> delta(r_n, 0.0);
  const std::size_t core_len = dec.core.size();
  const auto core = dec.core.flat();
  for (std::size_t c = 0; c < core_len; ++c) {
    double prod = core[c];
    std::size_t rem = c;
    std::size_t r_mode = 0;
    for (std::size_t n = x.order(); n-- > 0;) {
      const std::size_t r = rem % cs[n];
      rem /= cs[n];
      if (n == mode) {
        r_mode = r;
      } else {
        prod *= dec.factors[n](x.index(n, t), r);
      }
    }
    delta[r_mode] += prod;
  }
  return delta;
}

TEST(CompletionRowUpdateTest, SolvesNormalEquationsAgainstDenseReference) {
  const CooTensor x = small_masked_tensor(31);
  const SymbolicTtmc sym = SymbolicTtmc::build(x, /*with_fibers=*/false);
  const double lambda = 0.05;

  CompletionOptions opt = basic_options({3, 4, 2}, 1);
  opt.lambda = lambda;
  CompletionResult r = ht::core::tucker_complete(x, opt);
  TuckerDecomposition& dec = r.decomposition;

  for (std::size_t mode = 0; mode < x.order(); ++mode) {
    ht::core::masked_update_mode(x, sym.modes[mode], mode, lambda, dec);
    const std::size_t r_n = dec.core.shape()[mode];
    for (std::size_t ord = 0; ord < sym.modes[mode].num_rows(); ++ord) {
      const index_t row = sym.modes[mode].rows[ord];
      // Assemble (B + lambda I) u - c from scratch with the dense reference.
      std::vector<double> b_mat(r_n * r_n, 0.0), c(r_n, 0.0);
      for (const nnz_t t : sym.modes[mode].update_list(ord)) {
        const std::vector<double> d = dense_delta(x, t, mode, dec);
        for (std::size_t i = 0; i < r_n; ++i) {
          c[i] += x.value(t) * d[i];
          for (std::size_t j = 0; j < r_n; ++j) {
            b_mat[i * r_n + j] += d[i] * d[j];
          }
        }
      }
      const auto u = dec.factors[mode].row(row);
      double residual = 0.0;
      for (std::size_t i = 0; i < r_n; ++i) {
        double s = lambda * u[i] - c[i];
        for (std::size_t j = 0; j < r_n; ++j) {
          s += b_mat[i * r_n + j] * u[j];
        }
        residual += s * s;
      }
      EXPECT_LT(std::sqrt(residual), 1e-10)
          << "mode " << mode << " row " << row;
    }
  }
}

TEST(CompletionTest, ObjectiveIsMonotoneNonIncreasing) {
  const CooTensor x = small_masked_tensor(32, 900);
  CompletionOptions opt = basic_options({4, 3, 3}, 12);
  opt.lambda = 1e-2;
  opt.objective_tolerance = 0.0;  // run every sweep
  const CompletionResult r = ht::core::tucker_complete(x, opt);
  ASSERT_GE(r.objective.size(), 2u);
  for (std::size_t i = 1; i < r.objective.size(); ++i) {
    // Exact row minimization + monotone CG: non-increasing up to FP noise.
    EXPECT_LE(r.objective[i],
              r.objective[i - 1] * (1.0 + 1e-12) + 1e-12)
        << "sweep " << i;
  }
  EXPECT_EQ(r.objective.back(),
            ht::core::masked_objective(x, r.decomposition, opt.lambda));
}

TEST(CompletionTest, TinyLambdaOnFullyObservedTensorMatchesHooi) {
  // Fully observed tensor: every position is a nonzero. The masked
  // objective then coincides with the unmasked one, so completion with a
  // vanishing ridge must reach at least HOOI's fit (it drops HOOI's
  // orthonormality constraint).
  const Shape shape{8, 7, 6};
  CooTensor x(shape);
  ht::Rng rng(33);
  std::vector<index_t> idx(3, 0);
  for (index_t i = 0; i < shape[0]; ++i) {
    for (index_t j = 0; j < shape[1]; ++j) {
      for (index_t k = 0; k < shape[2]; ++k) {
        x.push_back(std::vector<index_t>{i, j, k}, rng.uniform(-1.0, 1.0));
      }
    }
  }
  ht::tensor::plant_low_rank_values(x, 3, 0.05, 34);

  ht::core::HooiOptions hopt;
  hopt.ranks = {3, 3, 3};
  hopt.max_iterations = 15;
  const ht::core::HooiResult hooi = ht::core::hooi(x, hopt);

  CompletionOptions copt = basic_options({3, 3, 3}, 25);
  copt.lambda = 1e-12;
  copt.objective_tolerance = 1e-9;
  const CompletionResult comp = ht::core::tucker_complete(x, copt);
  const double sse = comp.final_train_rmse() * comp.final_train_rmse() *
                     static_cast<double>(x.nnz());
  const double fit = 1.0 - std::sqrt(sse / x.norm2_squared());
  EXPECT_GE(fit, hooi.final_fit() - 5e-3);
}

TEST(CompletionTest, BitwiseDeterministicAcrossRunsAndThreadCounts) {
  const CooTensor x = small_masked_tensor(35, 1200);
  CompletionOptions opt = basic_options({3, 3, 3}, 4);
  opt.lambda = 1e-2;

  CompletionOptions one = opt;
  one.num_threads = 1;
  CompletionOptions four = opt;
  four.num_threads = 4;

  const CompletionResult a = ht::core::tucker_complete(x, opt);
  const CompletionResult b = ht::core::tucker_complete(x, opt);
  const CompletionResult c1 = ht::core::tucker_complete(x, one);
  const CompletionResult c4 = ht::core::tucker_complete(x, four);

  const auto expect_bitwise = [](const CompletionResult& lhs,
                                 const CompletionResult& rhs) {
    ASSERT_EQ(lhs.objective.size(), rhs.objective.size());
    for (std::size_t i = 0; i < lhs.objective.size(); ++i) {
      EXPECT_EQ(lhs.objective[i], rhs.objective[i]) << "sweep " << i;
      EXPECT_EQ(lhs.train_rmse[i], rhs.train_rmse[i]) << "sweep " << i;
    }
    const auto lcore = lhs.decomposition.core.flat();
    const auto rcore = rhs.decomposition.core.flat();
    ASSERT_EQ(lcore.size(), rcore.size());
    EXPECT_EQ(std::memcmp(lcore.data(), rcore.data(),
                          lcore.size() * sizeof(double)),
              0);
    for (std::size_t n = 0; n < lhs.decomposition.order(); ++n) {
      const auto lf = lhs.decomposition.factors[n].flat();
      const auto rf = rhs.decomposition.factors[n].flat();
      ASSERT_EQ(lf.size(), rf.size());
      EXPECT_EQ(std::memcmp(lf.data(), rf.data(), lf.size() * sizeof(double)),
                0)
          << "factor " << n;
    }
  };
  expect_bitwise(a, b);
  expect_bitwise(c1, c4);
}

TEST(CompletionTest, EvaluateModelMatchesEvaluatePredictions) {
  const CooTensor x = small_masked_tensor(36);
  CompletionOptions opt = basic_options({3, 3, 3}, 3);
  const CompletionResult r = ht::core::tucker_complete(x, opt);

  std::vector<double> preds(x.nnz());
  std::vector<index_t> idx(x.order());
  for (nnz_t t = 0; t < x.nnz(); ++t) {
    for (std::size_t n = 0; n < x.order(); ++n) idx[n] = x.index(n, t);
    preds[t] = r.decomposition.reconstruct_at(idx);
  }
  const CompletionEval via_model = ht::core::evaluate_model(x, r.decomposition);
  const CompletionEval via_preds = ht::core::evaluate_predictions(x, preds);
  EXPECT_EQ(via_model.rmse, via_preds.rmse);
  EXPECT_EQ(via_model.mae, via_preds.mae);
  EXPECT_EQ(via_model.count, via_preds.count);
}

TEST(CompletionTest, EarlyStoppingRestoresBestSweep) {
  const ht::tensor::LowRankTensor planted = ht::tensor::random_low_rank(
      Shape{40, 30, 20}, 4000, Shape{3, 3, 3}, 0.2, 37);
  ht::core::SplitOptions sopt;
  sopt.validation_fraction = 0.2;
  sopt.test_fraction = 0.0;
  const ht::core::TensorSplit split =
      ht::core::split_tensor(planted.tensor, sopt);

  CompletionOptions opt = basic_options({3, 3, 3}, 40);
  opt.lambda = 0.05;
  opt.objective_tolerance = 0.0;
  opt.early_stopping_patience = 2;
  const CompletionResult r =
      ht::core::tucker_complete(split.train, &split.validation, opt);
  ASSERT_FALSE(r.validation_rmse.empty());
  ASSERT_GE(r.best_sweep, 0);
  // The restored model evaluates to the best sweep's validation RMSE.
  const CompletionEval eval =
      ht::core::evaluate_model(split.validation, r.decomposition);
  double best = r.validation_rmse[0];
  for (const double v : r.validation_rmse) best = std::min(best, v);
  EXPECT_EQ(eval.rmse, best);
}

// ISSUE acceptance pin: planted rank-(5,5,5), 1% observed, relative noise
// 0.1. Masked training must reach held-out RMSE within 1.15x the noise
// floor; unmasked HOOI on the same training entries (zeros elsewhere) must
// not come close.
TEST(CompletionAcceptanceTest, MaskedTrainingReachesNoiseFloorHooiDoesNot) {
  const Shape shape{220, 170, 110};
  const nnz_t nnz = 41140;  // 1% of 220*170*110
  const ht::tensor::LowRankTensor planted =
      ht::tensor::random_low_rank(shape, nnz, Shape{5, 5, 5}, 0.1, 38);

  ht::core::SplitOptions sopt;
  sopt.validation_fraction = 0.1;
  sopt.test_fraction = 0.1;
  sopt.seed = 39;
  const ht::core::TensorSplit split =
      ht::core::split_tensor(planted.tensor, sopt);

  CompletionOptions opt = basic_options({5, 5, 5}, 40);
  opt.lambda = 0.01;
  opt.lambda_anneal_factor = 100.0;
  opt.lambda_anneal_sweeps = 20;
  opt.core_cg_iterations = 8;
  opt.objective_tolerance = 1e-8;
  opt.early_stopping_patience = 0;  // fixed sweep budget, restore the best
  const CompletionResult masked =
      ht::core::tucker_complete(split.train, &split.validation, opt);
  const CompletionEval masked_eval =
      ht::core::evaluate_model(split.test, masked.decomposition);

  ht::core::HooiOptions hopt;
  hopt.ranks = {5, 5, 5};
  hopt.max_iterations = 20;
  const ht::core::HooiResult hooi = ht::core::hooi(split.train, hopt);
  const CompletionEval hooi_eval =
      ht::core::evaluate_model(split.test, hooi.decomposition);

  EXPECT_LE(masked_eval.rmse, 1.15 * planted.noise_sigma)
      << "masked held-out RMSE " << masked_eval.rmse << " vs noise floor "
      << planted.noise_sigma;
  // HOOI fits zeros at the 99% unobserved positions, shrinking every
  // prediction toward 0: its held-out RMSE stays near the signal RMS (~1),
  // an order of magnitude off the floor.
  EXPECT_GT(hooi_eval.rmse, 3.0 * masked_eval.rmse)
      << "unmasked HOOI held-out RMSE " << hooi_eval.rmse;
}

TEST(CompletionTest, CompletionModelCarriesProvenance) {
  const CooTensor x = small_masked_tensor(40);
  CompletionOptions opt = basic_options({3, 3, 3}, 3);
  opt.lambda = 0.01;
  opt.seed = 77;
  CompletionResult r = ht::core::tucker_complete(x, opt);
  const int sweeps = r.sweeps;
  const ht::core::TuckerModel m =
      ht::core::completion_model(x, std::move(r), opt);
  EXPECT_EQ(m.dims, x.shape());
  EXPECT_GT(m.fit, 0.0);
  EXPECT_EQ(m.provenance_value("completion.seed"), "77");
  EXPECT_EQ(m.provenance_value("completion.sweeps"), std::to_string(sweeps));
  EXPECT_FALSE(m.provenance_value("completion.lambda").empty());
  EXPECT_FALSE(m.provenance_value("completion.train_rmse").empty());
}

TEST(CompletionTest, ValidationRejectsBadInput) {
  const CooTensor x = small_masked_tensor(41);
  EXPECT_THROW(ht::core::tucker_complete(x, basic_options({3, 3})),
               ht::InvalidArgument);  // arity
  EXPECT_THROW(ht::core::tucker_complete(x, basic_options({3, 3, 99})),
               ht::InvalidArgument);  // rank > dim
  CompletionOptions bad_lambda = basic_options({3, 3, 3});
  bad_lambda.lambda = -1.0;
  EXPECT_THROW(ht::core::tucker_complete(x, bad_lambda), ht::InvalidArgument);
  CompletionOptions bad_sweeps = basic_options({3, 3, 3});
  bad_sweeps.max_sweeps = 0;
  EXPECT_THROW(ht::core::tucker_complete(x, bad_sweeps), ht::InvalidArgument);
  CooTensor empty(Shape{5, 5, 5});
  EXPECT_THROW(ht::core::tucker_complete(empty, basic_options({2, 2, 2})),
               ht::InvalidArgument);
  // Validation tensor must share the training shape.
  const CooTensor other = small_masked_tensor(42);
  CooTensor wrong_shape(Shape{4, 4, 4});
  wrong_shape.push_back(std::vector<index_t>{0, 1, 2}, 1.0);
  EXPECT_THROW(
      ht::core::tucker_complete(x, &wrong_shape, basic_options({3, 3, 3})),
      ht::InvalidArgument);
}

}  // namespace
