#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/hooi.hpp"
#include "core/hosvd.hpp"
#include "core/met_baseline.hpp"
#include "core/trsvd.hpp"
#include "la/blas.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::HooiOptions;
using ht::core::HooiResult;
using ht::core::TuckerDecomposition;
using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::DenseTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

// Tensor with *exact* Tucker rank: random core times random orthonormal
// factors, stored as COO over every position (small sizes). HOOI with
// matching ranks must reach fit ~= 1.
CooTensor exact_low_rank_tensor(const Shape& shape,
                                const std::vector<index_t>& ranks,
                                std::uint64_t seed) {
  TuckerDecomposition t;
  t.factors = ht::core::random_orthonormal_factors(
      shape, std::span<const index_t>(ranks), seed);
  t.core = DenseTensor(Shape(ranks.begin(), ranks.end()));
  ht::Rng rng(seed ^ 0xc0ffee);
  for (auto& v : t.core.flat()) v = rng.uniform(-1.0, 1.0);

  const DenseTensor dense = t.reconstruct_dense();
  CooTensor x(shape);
  std::vector<index_t> idx(shape.size(), 0);
  for (std::size_t off = 0; off < dense.size(); ++off) {
    if (std::abs(dense.flat()[off]) > 1e-14) {
      x.push_back(idx, dense.flat()[off]);
    }
    for (std::size_t n = shape.size(); n-- > 0;) {
      if (++idx[n] < shape[n]) break;
      idx[n] = 0;
    }
  }
  return x;
}

HooiOptions basic_options(std::vector<index_t> ranks, int iters = 5) {
  HooiOptions opt;
  opt.ranks = std::move(ranks);
  opt.max_iterations = iters;
  return opt;
}

TEST(HooiTest, RecoversExactLowRankTensor) {
  const CooTensor x = exact_low_rank_tensor({8, 9, 7}, {2, 3, 2}, 1);
  const HooiResult r = ht::core::hooi(x, basic_options({2, 3, 2}, 8));
  EXPECT_GT(r.final_fit(), 0.9999);
}

TEST(HooiTest, FourModeExactRecovery) {
  const CooTensor x = exact_low_rank_tensor({5, 6, 4, 5}, {2, 2, 2, 2}, 2);
  const HooiResult r = ht::core::hooi(x, basic_options({2, 2, 2, 2}, 8));
  EXPECT_GT(r.final_fit(), 0.9999);
}

TEST(HooiTest, FitsAreNonDecreasing) {
  CooTensor x = ht::tensor::random_zipf(Shape{40, 30, 20}, 1500,
                                        {0.8, 0.5, 0.2}, 3);
  ht::tensor::plant_low_rank_values(x, 4, 0.1, 4);
  const HooiResult r = ht::core::hooi(x, basic_options({4, 4, 4}, 6));
  for (std::size_t i = 1; i < r.fits.size(); ++i) {
    EXPECT_GE(r.fits[i], r.fits[i - 1] - 1e-8) << "iteration " << i;
  }
  EXPECT_GT(r.final_fit(), 0.0);
}

TEST(HooiTest, ReportedFitMatchesExactFit) {
  CooTensor x = ht::tensor::random_uniform(Shape{10, 11, 12}, 250, 5);
  const HooiResult r = ht::core::hooi(x, basic_options({3, 3, 3}, 4));
  const double exact = ht::core::fit_exact(x, r.decomposition);
  EXPECT_NEAR(r.final_fit(), exact, 1e-8);
}

TEST(HooiTest, FactorsAreOrthonormal) {
  CooTensor x = ht::tensor::random_uniform(Shape{25, 15, 20}, 600, 6);
  const HooiResult r = ht::core::hooi(x, basic_options({4, 3, 5}, 3));
  for (const auto& f : r.decomposition.factors) {
    const Matrix g = ht::la::gemm_tn(f, f);
    for (std::size_t i = 0; i < g.rows(); ++i) {
      for (std::size_t j = 0; j < g.cols(); ++j) {
        EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, 1e-8);
      }
    }
  }
}

TEST(HooiTest, GramAndLanczosMethodsAgree) {
  CooTensor x = ht::tensor::random_zipf(Shape{30, 30, 30}, 1200,
                                        {0.6, 0.6, 0.6}, 7);
  ht::tensor::plant_low_rank_values(x, 5, 0.05, 8);
  HooiOptions lanczos = basic_options({4, 4, 4}, 4);
  HooiOptions gram = basic_options({4, 4, 4}, 4);
  gram.trsvd_method = ht::core::TrsvdMethod::kGram;
  const HooiResult rl = ht::core::hooi(x, lanczos);
  const HooiResult rg = ht::core::hooi(x, gram);
  EXPECT_NEAR(rl.final_fit(), rg.final_fit(), 1e-5);
}

TEST(HooiTest, MetBaselineMatchesFusedHooi) {
  CooTensor x = ht::tensor::random_zipf(Shape{20, 25, 15}, 800,
                                        {0.5, 0.5, 0.5}, 9);
  ht::tensor::plant_low_rank_values(x, 3, 0.1, 10);
  const HooiOptions opt = basic_options({3, 3, 3}, 4);
  const HooiResult fused = ht::core::hooi(x, opt);
  const HooiResult met = ht::core::hooi_met_baseline(x, opt);
  ASSERT_EQ(fused.fits.size(), met.fits.size());
  for (std::size_t i = 0; i < fused.fits.size(); ++i) {
    EXPECT_NEAR(fused.fits[i], met.fits[i], 1e-7) << "iteration " << i;
  }
}

TEST(HooiTest, MetBaselineFourMode) {
  const CooTensor x = exact_low_rank_tensor({4, 5, 4, 3}, {2, 2, 2, 2}, 11);
  const HooiOptions opt = basic_options({2, 2, 2, 2}, 6);
  const HooiResult met = ht::core::hooi_met_baseline(x, opt);
  EXPECT_GT(met.final_fit(), 0.9999);
}

TEST(HooiTest, DeterministicForSeed) {
  CooTensor x = ht::tensor::random_uniform(Shape{20, 20, 20}, 500, 12);
  const HooiOptions opt = basic_options({3, 3, 3}, 3);
  const HooiResult a = ht::core::hooi(x, opt);
  const HooiResult b = ht::core::hooi(x, opt);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fits[i], b.fits[i]);
  }
}

TEST(HooiTest, ThreadCountDoesNotChangeResult) {
  CooTensor x = ht::tensor::random_zipf(Shape{60, 40, 30}, 3000,
                                        {0.9, 0.4, 0.1}, 13);
  ht::tensor::plant_low_rank_values(x, 4, 0.1, 14);
  HooiOptions one = basic_options({4, 4, 4}, 3);
  one.num_threads = 1;
  HooiOptions many = basic_options({4, 4, 4}, 3);
  many.num_threads = 4;
  const HooiResult r1 = ht::core::hooi(x, one);
  const HooiResult r4 = ht::core::hooi(x, many);
  for (std::size_t i = 0; i < r1.fits.size(); ++i) {
    EXPECT_NEAR(r1.fits[i], r4.fits[i], 1e-9);
  }
}

TEST(HooiTest, RandomizedRangeInitSpeedsConvergence) {
  const CooTensor x = exact_low_rank_tensor({10, 9, 8}, {3, 2, 2}, 15);
  HooiOptions opt = basic_options({3, 2, 2}, 1);
  opt.init = ht::core::HooiInit::kRandomizedRange;
  const HooiResult r = ht::core::hooi(x, opt);
  // One sweep from a sketched subspace should capture nearly everything.
  EXPECT_GT(r.final_fit(), 0.99);
}

TEST(HooiTest, ConvergedFlagSetWhenFitStalls) {
  const CooTensor x = exact_low_rank_tensor({8, 8, 8}, {2, 2, 2}, 16);
  HooiOptions opt = basic_options({2, 2, 2}, 50);
  opt.fit_tolerance = 1e-9;
  const HooiResult r = ht::core::hooi(x, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 50);
}

TEST(HooiTest, SymbolicReuseAcrossRankChoices) {
  CooTensor x = ht::tensor::random_uniform(Shape{30, 30, 30}, 900, 17);
  const ht::core::SymbolicTtmc sym = ht::core::SymbolicTtmc::build(x);
  const HooiResult r2 = ht::core::hooi(x, basic_options({2, 2, 2}, 2), sym);
  const HooiResult r5 = ht::core::hooi(x, basic_options({5, 5, 5}, 2), sym);
  EXPECT_GE(r5.final_fit(), r2.final_fit() - 1e-9);  // more rank, better fit
}

TEST(HooiTest, TimersArePopulated) {
  CooTensor x = ht::tensor::random_uniform(Shape{40, 40, 40}, 2000, 18);
  const HooiResult r = ht::core::hooi(x, basic_options({4, 4, 4}, 2));
  EXPECT_GT(r.timers.ttmc, 0.0);
  EXPECT_GT(r.timers.trsvd, 0.0);
  EXPECT_GE(r.timers.core, 0.0);
  EXPECT_GT(r.timers.symbolic, 0.0);
}

TEST(HooiTest, ValidationRejectsBadInput) {
  CooTensor x = ht::tensor::random_uniform(Shape{5, 5, 5}, 20, 19);
  EXPECT_THROW(ht::core::hooi(x, basic_options({2, 2})),
               ht::InvalidArgument);  // arity
  EXPECT_THROW(ht::core::hooi(x, basic_options({2, 2, 9})),
               ht::InvalidArgument);  // rank > dim
  EXPECT_THROW(ht::core::hooi(x, basic_options({0, 2, 2})),
               ht::InvalidArgument);  // zero rank
  HooiOptions bad_iters = basic_options({2, 2, 2});
  bad_iters.max_iterations = 0;
  EXPECT_THROW(ht::core::hooi(x, bad_iters), ht::InvalidArgument);
  CooTensor empty(Shape{5, 5, 5});
  EXPECT_THROW(ht::core::hooi(empty, basic_options({2, 2, 2})),
               ht::InvalidArgument);
}

// ------------------------------------------------------------ trsvd_factor

TEST(TrsvdFactorTest, ScattersRowsToGlobalPositions) {
  // Compact 3-row problem living on global rows {1, 4, 7} of dim 9.
  ht::Rng rng(20);
  Matrix y(3, 5);
  for (auto& v : y.flat()) v = rng.uniform(-1, 1);
  const std::vector<index_t> rows = {1, 4, 7};
  const auto res = ht::core::trsvd_factor(y, rows, 9, 2);
  EXPECT_EQ(res.factor.rows(), 9u);
  EXPECT_EQ(res.factor.cols(), 2u);
  for (index_t i : {0, 2, 3, 5, 6, 8}) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(res.factor(i, j), 0.0) << "row " << i;
    }
  }
  // compact_u mirrors the occupied rows.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(res.compact_u(r, j), res.factor(rows[r], j));
    }
  }
}

TEST(TrsvdFactorTest, CompletesWhenRankExceedsCompactRows) {
  ht::Rng rng(21);
  Matrix y(2, 6);  // only 2 compact rows but rank 4 requested
  for (auto& v : y.flat()) v = rng.uniform(-1, 1);
  const std::vector<index_t> rows = {0, 3};
  const auto res = ht::core::trsvd_factor(y, rows, 10, 4);
  const Matrix g = ht::la::gemm_tn(res.factor, res.factor);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(TrsvdFactorTest, MethodsAgreeOnWellConditionedProblem) {
  ht::Rng rng(22);
  Matrix y(40, 12);
  for (auto& v : y.flat()) v = rng.uniform(-1, 1);
  std::vector<index_t> rows(40);
  for (index_t i = 0; i < 40; ++i) rows[i] = i;
  const auto lz =
      ht::core::trsvd_factor(y, rows, 40, 3, ht::core::TrsvdMethod::kLanczos);
  const auto gr =
      ht::core::trsvd_factor(y, rows, 40, 3, ht::core::TrsvdMethod::kGram);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(lz.sigma[j], gr.sigma[j], 1e-6);
  }
}

TEST(TrsvdFactorTest, RejectsBadArguments) {
  Matrix y(3, 4);
  const std::vector<index_t> rows = {0, 1, 2};
  EXPECT_THROW(ht::core::trsvd_factor(y, rows, 9, 0), ht::Error);
#ifndef NDEBUG
  // The per-row bounds scan is debug-only: it is a serial O(|J_n|) loop in
  // HOOI's per-mode hot path, so Release builds trust the symbolic row map.
  EXPECT_THROW(ht::core::trsvd_factor(y, rows, 2, 1), ht::Error);  // row 2 >= dim
#endif
  const std::vector<index_t> short_rows = {0, 1};
  EXPECT_THROW(ht::core::trsvd_factor(y, short_rows, 9, 1), ht::Error);
}

}  // namespace
