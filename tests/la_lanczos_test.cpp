#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/lanczos.hpp"
#include "la/qr.hpp"
#include "la/linear_operator.hpp"
#include "la/svd.hpp"
#include "util/random.hpp"

namespace {

using ht::la::DenseOperator;
using ht::la::Matrix;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

// Matrix with prescribed singular-value decay for conditioning studies.
Matrix matrix_with_spectrum(std::size_t m, std::size_t n,
                            const std::vector<double>& sigma,
                            std::uint64_t seed) {
  Matrix u = random_matrix(m, sigma.size(), seed);
  Matrix v = random_matrix(n, sigma.size(), seed + 1);
  ht::la::orthonormalize_columns(u);
  ht::la::orthonormalize_columns(v);
  for (std::size_t j = 0; j < sigma.size(); ++j) {
    for (std::size_t i = 0; i < m; ++i) u(i, j) *= sigma[j];
  }
  return ht::la::gemm_nt(u, v);
}

double orthonormality_error(const Matrix& q) {
  const Matrix g = ht::la::gemm_tn(q, q);
  double err = 0;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      err = std::max(err, std::abs(g(i, j) - (i == j ? 1.0 : 0.0)));
    }
  }
  return err;
}

struct LanczosCase {
  int m, n, rank;
};

class LanczosVsJacobi : public ::testing::TestWithParam<LanczosCase> {};

TEST_P(LanczosVsJacobi, MatchesDenseSvd) {
  const auto [m, n, rank] = GetParam();
  const Matrix a = random_matrix(m, n, 777 + m + n * 13 + rank * 101);
  DenseOperator op(a);
  const auto result = ht::la::lanczos_trsvd(op, rank);
  const auto ref = ht::la::svd_jacobi(a);

  ASSERT_EQ(result.sigma.size(), static_cast<std::size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    EXPECT_NEAR(result.sigma[i], ref.s[i], 1e-7 * std::max(1.0, ref.s[0]))
        << "sigma_" << i;
  }
  // Left vectors match the reference up to sign (when gaps are healthy we
  // can compare column-by-column; random matrices have simple spectra).
  for (int j = 0; j < rank; ++j) {
    double dot = 0;
    for (int i = 0; i < m; ++i) dot += result.u(i, j) * ref.u(i, j);
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-5) << "u_" << j;
  }
  EXPECT_LT(orthonormality_error(result.u), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LanczosVsJacobi,
    ::testing::Values(LanczosCase{50, 20, 1}, LanczosCase{50, 20, 5},
                      LanczosCase{200, 30, 10}, LanczosCase{1000, 25, 8},
                      LanczosCase{30, 100, 4}));

TEST(LanczosTest, ClusteredRandomSpectraExactWithFullSteps) {
  // Random rectangular matrices have tightly clustered (Marchenko–Pastur)
  // spectra — the adversarial case for Lanczos. With max_steps = c the
  // factorization is exact and must match the dense SVD tightly.
  for (const auto& [m, c, rank] :
       {std::tuple{500, 125, 5}, std::tuple{300, 100, 10},
        std::tuple{64, 64, 6}}) {
    const Matrix a = random_matrix(m, c, 4242 + m);
    DenseOperator op(a);
    ht::la::TrsvdOptions opt;
    opt.max_steps = static_cast<std::size_t>(c);
    const auto result = ht::la::lanczos_trsvd(op, rank, opt);
    const auto ref = ht::la::svd_jacobi(a);
    for (int i = 0; i < rank; ++i) {
      EXPECT_NEAR(result.sigma[i], ref.s[i], 1e-7 * ref.s[0])
          << "m=" << m << " sigma_" << i;
    }
  }
}

TEST(LanczosTest, ExactLowRankMatrixConvergesEarly) {
  // Rank-3 matrix: Lanczos should nail it and report convergence.
  const Matrix a = matrix_with_spectrum(300, 40, {5.0, 2.0, 1.0}, 9);
  DenseOperator op(a);
  const auto result = ht::la::lanczos_trsvd(op, 3);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.sigma[0], 5.0, 1e-8);
  EXPECT_NEAR(result.sigma[1], 2.0, 1e-8);
  EXPECT_NEAR(result.sigma[2], 1.0, 1e-8);
}

TEST(LanczosTest, RequestingBeyondNumericalRankYieldsZeros) {
  const Matrix a = matrix_with_spectrum(100, 30, {4.0, 3.0}, 10);
  DenseOperator op(a);
  const auto result = ht::la::lanczos_trsvd(op, 5);
  EXPECT_NEAR(result.sigma[0], 4.0, 1e-7);
  EXPECT_NEAR(result.sigma[1], 3.0, 1e-7);
  for (std::size_t i = 2; i < 5; ++i) EXPECT_NEAR(result.sigma[i], 0.0, 1e-6);
}

TEST(LanczosTest, ClusteredSpectrumStillCapturesSubspace) {
  // Two nearly equal leading singular values: individual vectors may mix,
  // but the spanned subspace and values must be right.
  const Matrix a =
      matrix_with_spectrum(150, 30, {3.0, 3.0 - 1e-9, 1.0, 0.5}, 11);
  DenseOperator op(a);
  const auto result = ht::la::lanczos_trsvd(op, 2);
  EXPECT_NEAR(result.sigma[0], 3.0, 1e-6);
  EXPECT_NEAR(result.sigma[1], 3.0, 1e-6);
  // Projector onto the Lanczos pair must match projector from dense SVD.
  const auto ref = ht::la::svd_jacobi(a);
  Matrix uref(150, 2);
  for (std::size_t i = 0; i < 150; ++i) {
    uref(i, 0) = ref.u(i, 0);
    uref(i, 1) = ref.u(i, 1);
  }
  const Matrix overlap = ht::la::gemm_tn(result.u, uref);  // 2x2
  // |det(overlap)| == 1 iff subspaces coincide.
  const double det =
      overlap(0, 0) * overlap(1, 1) - overlap(0, 1) * overlap(1, 0);
  EXPECT_NEAR(std::abs(det), 1.0, 1e-5);
}

TEST(LanczosTest, InvalidRankThrows) {
  const Matrix a = random_matrix(10, 5, 12);
  DenseOperator op(a);
  EXPECT_THROW(ht::la::lanczos_trsvd(op, 0), ht::Error);
  EXPECT_THROW(ht::la::lanczos_trsvd(op, 6), ht::Error);
}

TEST(LanczosTest, DeterministicAcrossRuns) {
  const Matrix a = random_matrix(80, 20, 13);
  DenseOperator op1(a), op2(a);
  const auto r1 = ht::la::lanczos_trsvd(op1, 4);
  const auto r2 = ht::la::lanczos_trsvd(op2, 4);
  ASSERT_EQ(r1.sigma.size(), r2.sigma.size());
  for (std::size_t i = 0; i < r1.sigma.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.sigma[i], r2.sigma[i]);
  }
  EXPECT_TRUE(r1.u.approx_equal(r2.u, 0.0));
}

TEST(GramTrsvdTest, MatchesLanczos) {
  const Matrix a = random_matrix(120, 40, 14);
  DenseOperator op(a);
  const auto lz = ht::la::lanczos_trsvd(op, 6);
  const auto gr = ht::la::gram_trsvd(a, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(lz.sigma[i], gr.sigma[i], 1e-6);
  }
  for (std::size_t j = 0; j < 6; ++j) {
    double dot = 0;
    for (std::size_t i = 0; i < 120; ++i) dot += lz.u(i, j) * gr.u(i, j);
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-5);
  }
}

TEST(GramTrsvdTest, InvalidRankThrows) {
  const Matrix a = random_matrix(10, 5, 15);
  EXPECT_THROW(ht::la::gram_trsvd(a, 0), ht::Error);
  EXPECT_THROW(ht::la::gram_trsvd(a, 6), ht::Error);
}

TEST(LanczosTest, TallThinHooiShapeRegime) {
  // The HOOI regime: m huge, c = prod(ranks) small, rank modest.
  const Matrix a = matrix_with_spectrum(
      5000, 100, {10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 16);
  DenseOperator op(a);
  const auto result = ht::la::lanczos_trsvd(op, 10);
  EXPECT_TRUE(result.converged);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(result.sigma[i], 10.0 - i, 1e-7);
  }
  EXPECT_LT(orthonormality_error(result.u), 1e-7);
}

}  // namespace
