// ModelHandle hot swap: epoch/snapshot semantics, validation gates,
// file-watcher reloads, and — the property the whole RCU design exists
// for — concurrent queries during a swap always see a coherent model:
// every answer matches the old model or the new one bit-exactly, never a
// torn mix, and swapping in a bit-identical bundle never changes answers.
// Run under -DHT_SANITIZE=thread in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/hooi.hpp"
#include "core/tucker_model.hpp"
#include "serve/model_handle.hpp"
#include "serve/query_engine.hpp"
#include "serve/serve_model.hpp"
#include "storage/bundle.hpp"
#include "tensor/generators.hpp"
#include "util/error.hpp"

namespace {

using ht::core::TuckerModel;
using ht::serve::ModelHandle;
using ht::serve::QueryEngine;
using ht::serve::QueryOptions;
using ht::serve::ServeModel;
using ht::tensor::CooTensor;
using ht::tensor::index_t;

class TempFile {
 public:
  explicit TempFile(const std::string& suffix) {
    path_ = ::testing::TempDir() + "ht_serve_handle_" + suffix;
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TuckerModel train(unsigned seed, index_t rank) {
  CooTensor x = ht::tensor::random_zipf({24, 18, 10}, 1200,
                                        {0.8, 0.9, 0.5}, seed);
  ht::tensor::plant_low_rank_values(x, 3, 0.1, seed + 1);
  ht::core::HooiOptions options;
  options.ranks = {rank, rank, rank};
  options.max_iterations = 3;
  return TuckerModel::from_hooi(x, ht::core::hooi(x, options));
}

TEST(ModelHandleTest, PublishBumpsEpochAndSwapsSnapshot) {
  ModelHandle handle;
  EXPECT_EQ(handle.snapshot(), nullptr);
  EXPECT_EQ(handle.epoch(), 0u);

  auto first = std::make_shared<const ServeModel>(train(1, 4));
  handle.publish(first);
  EXPECT_EQ(handle.epoch(), 1u);
  EXPECT_EQ(handle.snapshot().get(), first.get());

  auto second = std::make_shared<const ServeModel>(train(2, 4));
  handle.publish(second);
  EXPECT_EQ(handle.epoch(), 2u);
  EXPECT_EQ(handle.snapshot().get(), second.get());

  // The old model stays alive for existing holders (RCU keep-alive).
  EXPECT_GE(first.use_count(), 1);
}

TEST(ModelHandleTest, RejectsOrderChangeOnSwap) {
  TempFile good("good.htb"), bad("bad.htb");
  ht::storage::save_bundle(train(3, 4), good.path());

  // A 2-mode model cannot replace a 3-mode one.
  CooTensor x2 = ht::tensor::random_zipf({20, 15}, 300, {0.8, 0.8}, 5);
  ht::tensor::plant_low_rank_values(x2, 2, 0.1, 6);
  ht::core::HooiOptions options;
  options.ranks = {3, 3};
  options.max_iterations = 2;
  ht::storage::save_bundle(
      TuckerModel::from_hooi(x2, ht::core::hooi(x2, options)), bad.path());

  ModelHandle handle;
  handle.load_and_publish(good.path());
  const auto before = handle.snapshot();
  EXPECT_THROW(handle.load_and_publish(bad.path()), ht::Error);
  // Rejected swap leaves the old model serving, epoch untouched.
  EXPECT_EQ(handle.snapshot().get(), before.get());
  EXPECT_EQ(handle.epoch(), 1u);
}

TEST(ModelHandleTest, WatcherPicksUpReplacedBundle) {
  TempFile file("watched.htb");
  ht::storage::save_bundle(train(7, 4), file.path());

  ModelHandle handle;
  handle.load_and_publish(file.path());
  handle.start_watch(file.path(), /*interval_s=*/0.02);
  EXPECT_EQ(handle.epoch(), 1u);

  // Replace the bundle (save_bundle is atomic tmp+rename, like a trainer
  // exporting a fresh model) and wait for the watcher to notice.
  const TuckerModel retrained = train(8, 5);
  ht::storage::save_bundle(retrained, file.path());
  for (int spin = 0; spin < 500 && handle.epoch() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  handle.stop_watch();
  ASSERT_EQ(handle.epoch(), 2u) << "watcher never reloaded: "
                                << handle.last_error();
  EXPECT_EQ(handle.reloads(), 1u);

  // The published model is the retrained one, served bit-exactly.
  const auto snap = handle.snapshot();
  const std::vector<index_t> idx = {3, 5, 7};
  EXPECT_EQ(snap->score(idx), retrained.reconstruct_at(idx));
}

TEST(ModelHandleTest, WatcherSurvivesBadBundleAndKeepsServing) {
  TempFile file("corrupt.htb");
  const TuckerModel good = train(9, 4);
  ht::storage::save_bundle(good, file.path());

  ModelHandle handle;
  handle.load_and_publish(file.path());
  handle.start_watch(file.path(), /*interval_s=*/0.02, /*verify=*/true);

  {  // Clobber the bundle with garbage: reload must fail, old model stays.
    // Replace via tmp + rename like a real writer — the live model is a
    // zero-copy view of the OLD inode, which rename leaves intact
    // (truncating the file in place would rip the mapping out from under
    // the served model; the bundle contract is atomic replacement).
    const std::string tmp = file.path() + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    std::fputs("this is not a bundle", f);
    std::fclose(f);
    ASSERT_EQ(std::rename(tmp.c_str(), file.path().c_str()), 0);
  }
  for (int spin = 0; spin < 500 && handle.last_error().empty(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(handle.last_error().empty());
  EXPECT_EQ(handle.epoch(), 1u);
  const std::vector<index_t> idx = {1, 2, 3};
  EXPECT_EQ(handle.snapshot()->score(idx), good.reconstruct_at(idx));

  // A valid replacement after the bad one still gets picked up.
  const TuckerModel fixed = train(10, 4);
  ht::storage::save_bundle(fixed, file.path());
  for (int spin = 0; spin < 500 && handle.epoch() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  handle.stop_watch();
  ASSERT_EQ(handle.epoch(), 2u);
  EXPECT_EQ(handle.snapshot()->score(idx), fixed.reconstruct_at(idx));
}

// The core concurrency property: swap under load never tears a model.
// Reader threads hammer point queries while the main thread publishes
// alternating models; every observed answer must equal what model A or
// model B produces at those coordinates — bitwise — and an engine built on
// one snapshot must stay internally consistent for its lifetime.
TEST(ModelHandleTest, HotSwapUnderLoadNeverTearsAModel) {
  const TuckerModel model_a = train(11, 4);
  const TuckerModel model_b = train(12, 4);
  const auto serve_a = std::make_shared<const ServeModel>(model_a);
  const auto serve_b = std::make_shared<const ServeModel>(model_b);

  ModelHandle handle;
  handle.publish(serve_a);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};
  std::atomic<bool> torn{false};

  const std::size_t readers = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t s = t * 7919 + 1;
      QueryOptions opts;
      opts.cache_entries = 16;
      while (!stop.load(std::memory_order_relaxed)) {
        // Each iteration: grab a snapshot, serve a few queries through a
        // fresh engine on it (the dispatcher pattern), check coherence.
        auto snap = handle.snapshot();
        QueryEngine engine(snap, opts);
        for (int q = 0; q < 16; ++q) {
          std::vector<index_t> idx(3);
          s = s * 6364136223846793005ull + 1442695040888963407ull;
          idx[0] = static_cast<index_t>((s >> 33) % 24);
          idx[1] = static_cast<index_t>((s >> 21) % 18);
          idx[2] = static_cast<index_t>((s >> 40) % 10);
          const double got = engine.score(idx);
          const double want_a = model_a.reconstruct_at(idx);
          const double want_b = model_b.reconstruct_at(idx);
          const double want = snap.get() == serve_a.get() ? want_a : want_b;
          if (got != want) torn.store(true, std::memory_order_relaxed);
          checked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Swap back and forth while the readers run.
  for (int swap = 0; swap < 50; ++swap) {
    handle.publish(swap % 2 == 0 ? serve_b : serve_a);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& th : threads) th.join();

  EXPECT_FALSE(torn.load()) << "a query saw a mix of two models";
  EXPECT_GT(checked.load(), 1000u);
  EXPECT_EQ(handle.epoch(), 51u);
}

TEST(ModelHandleTest, SwappingIdenticalBundleIsBitExact) {
  TempFile file("identical.htb");
  const TuckerModel model = train(13, 4);
  ht::storage::save_bundle(model, file.path());

  ModelHandle handle;
  handle.load_and_publish(file.path());
  std::vector<std::vector<index_t>> probes;
  for (index_t i = 0; i < 20; ++i) {
    probes.push_back({static_cast<index_t>(i % 24),
                      static_cast<index_t>((i * 7) % 18),
                      static_cast<index_t>((i * 3) % 10)});
  }
  std::vector<double> before;
  for (const auto& idx : probes) {
    before.push_back(handle.snapshot()->score(idx));
  }

  // Re-publish the same file several times; answers never move by a bit.
  for (int swap = 0; swap < 3; ++swap) {
    handle.load_and_publish(file.path());
    for (std::size_t p = 0; p < probes.size(); ++p) {
      EXPECT_EQ(handle.snapshot()->score(probes[p]), before[p]);
    }
  }
  EXPECT_EQ(handle.epoch(), 4u);
}

}  // namespace
