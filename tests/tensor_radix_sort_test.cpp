// lexicographic_order edge cases: empty input, single key, already-sorted
// input, stability, and — the regression that motivated the 16-bit digit
// path — keys spanning the full index_t range, which must not drive a
// counter allocation proportional to the key magnitude (~32 GB for u32).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "parallel/thread_info.hpp"
#include "tensor/radix_sort.hpp"
#include "tensor/types.hpp"
#include "util/random.hpp"

namespace {

using ht::tensor::index_t;
using ht::tensor::lexicographic_order;
using ht::tensor::linearized_order;
using ht::tensor::nnz_t;

std::vector<nnz_t> reference_order(
    const std::vector<std::vector<index_t>>& keys) {
  const std::size_t n = keys.empty() ? 0 : keys[0].size();
  std::vector<nnz_t> order(n);
  std::iota(order.begin(), order.end(), nnz_t{0});
  std::stable_sort(order.begin(), order.end(), [&](nnz_t a, nnz_t b) {
    for (const auto& key : keys) {
      if (key[a] != key[b]) return key[a] < key[b];
    }
    return false;  // stable_sort keeps original order for ties
  });
  return order;
}

std::vector<nnz_t> run(const std::vector<std::vector<index_t>>& keys,
                       std::size_t entries) {
  std::vector<std::span<const index_t>> spans;
  for (const auto& key : keys) spans.emplace_back(key.data(), key.size());
  return lexicographic_order(entries, spans);
}

TEST(RadixSortTest, EmptyInput) {
  const std::vector<std::vector<index_t>> keys{{}, {}};
  EXPECT_TRUE(run(keys, 0).empty());
}

TEST(RadixSortTest, NoKeysIsIdentity) {
  const auto order = run({}, 4);
  EXPECT_EQ(order, (std::vector<nnz_t>{0, 1, 2, 3}));
}

TEST(RadixSortTest, SingleEntry) {
  const std::vector<std::vector<index_t>> keys{{5}};
  EXPECT_EQ(run(keys, 1), (std::vector<nnz_t>{0}));
}

TEST(RadixSortTest, SingleKey) {
  const std::vector<std::vector<index_t>> keys{{3, 1, 4, 1, 5, 9, 2, 6}};
  EXPECT_EQ(run(keys, keys[0].size()), reference_order(keys));
}

TEST(RadixSortTest, AlreadySortedStaysIdentity) {
  const std::vector<std::vector<index_t>> keys{{0, 1, 1, 2, 7},
                                               {0, 0, 1, 0, 3}};
  const auto order = run(keys, 5);
  EXPECT_EQ(order, (std::vector<nnz_t>{0, 1, 2, 3, 4}));
}

TEST(RadixSortTest, StableOnEqualKeys) {
  // All keys equal: the order must be the original ordinal order (the
  // determinism the CSF build relies on for tie-breaking).
  const std::vector<std::vector<index_t>> keys{{7, 7, 7, 7}, {2, 2, 2, 2}};
  EXPECT_EQ(run(keys, 4), (std::vector<nnz_t>{0, 1, 2, 3}));
}

TEST(RadixSortTest, MultiKeyLexicographic) {
  const std::vector<std::vector<index_t>> keys{{1, 0, 1, 0, 2, 1},
                                               {5, 3, 0, 3, 1, 5},
                                               {2, 9, 4, 8, 0, 1}};
  EXPECT_EQ(run(keys, 6), reference_order(keys));
}

TEST(RadixSortTest, MaxWidthKeysSortWithoutHugeAllocation) {
  // Keys at and around max(index_t). Before the digit decomposition this
  // allocated a (max_key + 2)-entry counter — tens of gigabytes — and
  // aborted; now it must complete with 64Ki-bucket passes and sort
  // correctly.
  constexpr index_t kMax = std::numeric_limits<index_t>::max();
  const std::vector<std::vector<index_t>> keys{
      {kMax, 0, kMax - 1, 65536, 65535, kMax, 1}};
  EXPECT_EQ(run(keys, keys[0].size()), reference_order(keys));
}

TEST(RadixSortTest, MixedWideAndNarrowKeys) {
  constexpr index_t kMax = std::numeric_limits<index_t>::max();
  // First key wide (digit path), second narrow (direct path): the stable
  // passes must compose exactly as the comparator reference does.
  const std::vector<std::vector<index_t>> keys{
      {kMax, 3, kMax, 3, 70000, 70000},
      {1, 2, 0, 1, 9, 3}};
  EXPECT_EQ(run(keys, 6), reference_order(keys));
}

TEST(RadixSortTest, WideKeyStability) {
  constexpr index_t kBig = index_t{1} << 20;
  const std::vector<std::vector<index_t>> keys{{kBig, kBig, kBig, 0, 0}};
  // Equal wide keys keep ordinal order across the multi-digit passes.
  EXPECT_EQ(run(keys, 5), (std::vector<nnz_t>{3, 4, 0, 1, 2}));
}

std::vector<nnz_t> reference_linearized_order(
    const std::vector<std::uint64_t>& lo, const std::vector<std::uint64_t>& hi) {
  std::vector<nnz_t> order(lo.size());
  std::iota(order.begin(), order.end(), nnz_t{0});
  std::stable_sort(order.begin(), order.end(), [&](nnz_t a, nnz_t b) {
    const std::uint64_t ha = hi.empty() ? 0 : hi[a];
    const std::uint64_t hb = hi.empty() ? 0 : hi[b];
    if (ha != hb) return ha < hb;
    return lo[a] < lo[b];
  });
  return order;
}

TEST(RadixSortTest, LinearizedOneWordMatchesReference) {
  ht::Rng rng(101);
  std::vector<std::uint64_t> lo(5000);
  for (auto& k : lo) {
    k = static_cast<std::uint64_t>(rng.uniform() * 1e18);
  }
  lo[17] = lo[4096];  // force a tie to exercise stability
  EXPECT_EQ(linearized_order(lo, {}), reference_linearized_order(lo, {}));
}

TEST(RadixSortTest, LinearizedTwoWordOrdersHighWordFirst) {
  // The high word dominates; low-word passes must stay stable beneath it.
  const std::vector<std::uint64_t> lo{5, 1, 5, 0, ~0ull, 3};
  const std::vector<std::uint64_t> hi{1, 0, 0, 1, 0, 2};
  EXPECT_EQ(linearized_order(lo, hi), reference_linearized_order(lo, hi));
}

TEST(RadixSortTest, LinearizedEmptyAndSingle) {
  EXPECT_TRUE(linearized_order({}, {}).empty());
  const std::vector<std::uint64_t> one{42};
  EXPECT_EQ(linearized_order(one, {}), (std::vector<nnz_t>{0}));
}

TEST(RadixSortTest, ParallelSortIsBitwiseDeterministic) {
  // Above the parallel grain (1 << 15 entries) the chunked histogram path
  // engages; its chunk-major prefix merge must reproduce the serial
  // permutation exactly for any thread count.
  const std::size_t n = (std::size_t{1} << 16) + 333;
  ht::Rng rng(103);
  std::vector<std::uint64_t> lo(n);
  std::vector<std::uint64_t> hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    lo[i] = static_cast<std::uint64_t>(rng.uniform() * 1e18);
    hi[i] = static_cast<std::uint64_t>(rng.uniform() * 7.0);  // heavy ties
  }
  std::vector<nnz_t> serial, parallel;
  {
    ht::parallel::ThreadScope threads(1);
    serial = linearized_order(lo, hi);
  }
  {
    ht::parallel::ThreadScope threads(4);
    parallel = linearized_order(lo, hi);
  }
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, reference_linearized_order(lo, hi));
}

}  // namespace
