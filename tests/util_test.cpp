#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using ht::RunningStats;

TEST(ErrorTest, CheckThrowsWithLocation) {
  try {
    HT_CHECK(1 == 2);
    FAIL() << "expected throw";
  } catch (const ht::Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, CheckMsgIncludesStreamedMessage) {
  try {
    HT_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const ht::Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(ErrorTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(HT_CHECK(2 + 2 == 4));
  EXPECT_NO_THROW(HT_CHECK_MSG(true, "never rendered"));
}

TEST(ErrorTest, ExceptionHierarchy) {
  EXPECT_THROW(throw ht::InvalidArgument("x"), ht::Error);
  EXPECT_THROW(throw ht::IoError("x"), ht::Error);
  EXPECT_THROW(throw ht::Error("x"), std::runtime_error);
}

TEST(RngTest, DeterministicForSameSeed) {
  ht::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  ht::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  ht::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BelowIsBoundedAndCoversRange) {
  ht::Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NormalHasReasonableMoments) {
  ht::Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, LoadSummaryImbalance) {
  const std::vector<double> loads = {1.0, 2.0, 3.0, 2.0};
  const auto s = ht::summarize_load(std::span<const double>(loads));
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.avg, 2.0);
  EXPECT_DOUBLE_EQ(s.imbalance(), 1.5);
}

TEST(StatsTest, HumanCountFormats) {
  EXPECT_EQ(ht::human_count(42), "42");
  EXPECT_EQ(ht::human_count(543000), "543K");
  EXPECT_EQ(ht::human_count(20e6), "20M");
  EXPECT_EQ(ht::human_count(1744000), "1744K");
}

TEST(TableTest, RendersAlignedTable) {
  ht::TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_separator();
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 3u);  // 2 data + 1 separator
}

TEST(TableTest, RejectsWrongArity) {
  ht::TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ht::Error);
}

TEST(EnvTest, FallbacksAndParsing) {
  ::unsetenv("HT_TEST_ENV_VAR");
  EXPECT_EQ(ht::env_int("HT_TEST_ENV_VAR", 7), 7);
  ::setenv("HT_TEST_ENV_VAR", "123", 1);
  EXPECT_EQ(ht::env_int("HT_TEST_ENV_VAR", 7), 123);
  ::setenv("HT_TEST_ENV_VAR", "1.5", 1);
  EXPECT_DOUBLE_EQ(ht::env_double("HT_TEST_ENV_VAR", 0.0), 1.5);
  ::setenv("HT_TEST_ENV_VAR", "garbage!", 1);
  EXPECT_EQ(ht::env_int("HT_TEST_ENV_VAR", 7), 7);
  EXPECT_EQ(ht::env_string("HT_TEST_ENV_VAR", "x"), "garbage!");
  ::unsetenv("HT_TEST_ENV_VAR");
}

TEST(TimerTest, MeasuresElapsedTime) {
  ht::WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 10.0);
}

TEST(TimerTest, PhaseTimerAccumulates) {
  ht::PhaseTimer t;
  t.start();
  t.stop();
  t.start();
  t.stop();
  EXPECT_EQ(t.intervals(), 2);
  EXPECT_GE(t.total_seconds(), 0.0);
  t.reset();
  EXPECT_EQ(t.intervals(), 0);
}

}  // namespace
