// Storage view layer: Span owned/view semantics, CopyStats accounting,
// MappedFile round trips, and the view discipline of Matrix/DenseTensor.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "storage/arena.hpp"
#include "storage/mapped_file.hpp"
#include "storage/span.hpp"
#include "tensor/dense_tensor.hpp"
#include "util/error.hpp"

namespace {

using ht::storage::ArenaPtr;
using ht::storage::CopyStats;
using ht::storage::HeapArena;
using ht::storage::MappedFile;
using ht::storage::Span;

class TempFile {
 public:
  explicit TempFile(const std::string& suffix) {
    path_ = ::testing::TempDir() + "ht_storage_test_" + suffix;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// An arena over a double payload, for view tests without file I/O.
ArenaPtr make_arena(const std::vector<double>& values) {
  std::vector<std::byte> bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return std::make_shared<HeapArena>(std::move(bytes));
}

const double* arena_doubles(const ArenaPtr& a) {
  return reinterpret_cast<const double*>(a->data());
}

TEST(SpanTest, DefaultIsEmptyOwned) {
  Span<double> s;
  EXPECT_FALSE(s.is_view());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SpanTest, OwnedWrapsVectorAndStaysMutable) {
  Span<int> s(std::vector<int>{1, 2, 3});
  EXPECT_FALSE(s.is_view());
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], 2);
  s.vec().push_back(4);  // growth must be visible through the reads
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.back(), 4);
}

TEST(SpanTest, ViewReadsArenaAndRejectsMutation) {
  const std::vector<double> payload{1.5, -2.0, 3.25};
  ArenaPtr arena = make_arena(payload);
  auto s = Span<double>::view(arena_doubles(arena), payload.size(), arena);
  EXPECT_TRUE(s.is_view());
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[2], 3.25);
  EXPECT_THROW((void)s.vec(), ht::Error);
  EXPECT_THROW((void)s.mutable_data(), ht::Error);
}

TEST(SpanTest, ViewKeepsArenaAlive) {
  const std::vector<double> payload{7.0, 8.0};
  Span<double> s;
  {
    ArenaPtr arena = make_arena(payload);
    s = Span<double>::view(arena_doubles(arena), payload.size(), arena);
  }  // the local ArenaPtr dies; the span's shared ownership must not
  EXPECT_DOUBLE_EQ(s[0], 7.0);
  EXPECT_DOUBLE_EQ(s[1], 8.0);
}

TEST(SpanTest, DetachCopiesAndRecordsCopyStats) {
  const std::vector<double> payload{1.0, 2.0, 3.0, 4.0};
  ArenaPtr arena = make_arena(payload);
  auto s = Span<double>::view(arena_doubles(arena), payload.size(), arena);

  CopyStats::reset();
  s.detach();
  EXPECT_FALSE(s.is_view());
  EXPECT_EQ(CopyStats::count(), 1u);
  EXPECT_EQ(CopyStats::bytes(), payload.size() * sizeof(double));
  s.vec()[0] = 42.0;  // mutable after detach
  EXPECT_DOUBLE_EQ(s[0], 42.0);

  CopyStats::reset();
  s.detach();  // no-op when owned
  EXPECT_EQ(CopyStats::count(), 0u);
}

TEST(SpanTest, EqualityIsElementWiseAcrossStates) {
  const std::vector<double> payload{1.0, 2.0};
  ArenaPtr arena = make_arena(payload);
  auto view = Span<double>::view(arena_doubles(arena), payload.size(), arena);
  Span<double> owned(payload);
  EXPECT_TRUE(view == owned);
  Span<double> other(std::vector<double>{1.0, 2.5});
  EXPECT_FALSE(view == other);
  std::vector<double> materialized = view;  // implicit vector conversion
  EXPECT_EQ(materialized, payload);
}

TEST(MappedFileTest, MapsFileContents) {
  TempFile tmp("mapped.bin");
  const std::vector<double> payload{3.0, 1.0, 4.0, 1.0, 5.0};
  {
    std::ofstream out(tmp.path(), std::ios::binary);
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size() * sizeof(double)));
  }
  auto mf = MappedFile::open(tmp.path());
  ASSERT_EQ(mf->size(), payload.size() * sizeof(double));
  auto s = Span<double>::view(reinterpret_cast<const double*>(mf->data()),
                              payload.size(), mf);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_DOUBLE_EQ(s[i], payload[i]);
  }
}

TEST(MappedFileTest, EmptyFileIsValidEmptyArena) {
  TempFile tmp("empty.bin");
  { std::ofstream out(tmp.path(), std::ios::binary); }
  auto mf = MappedFile::open(tmp.path());
  EXPECT_EQ(mf->size(), 0u);
}

TEST(MappedFileTest, MissingFileThrows) {
  EXPECT_THROW(MappedFile::open("/nonexistent/ht_no_such_file.bin"),
               ht::IoError);
}

TEST(MatrixViewTest, ViewReadsAndRefusesWrites) {
  const std::vector<double> payload{1, 2, 3, 4, 5, 6};
  ArenaPtr arena = make_arena(payload);
  auto m = ht::la::Matrix::view(2, 3, arena_doubles(arena), arena);
  EXPECT_TRUE(m.is_view());
  // Reads go through the const accessors; the non-const element accessors
  // are unchecked hot paths and deliberately fault on views.
  const ht::la::Matrix& cm = m;
  EXPECT_DOUBLE_EQ(cm(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(cm.row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(cm.data()[3], 4.0);
  EXPECT_THROW((void)m.data(), ht::Error);
  EXPECT_THROW((void)m.flat(), ht::Error);
}

TEST(MatrixViewTest, EnsureOwnedDetaches) {
  const std::vector<double> payload{1, 2, 3, 4};
  ArenaPtr arena = make_arena(payload);
  auto m = ht::la::Matrix::view(2, 2, arena_doubles(arena), arena);
  CopyStats::reset();
  m.ensure_owned();
  EXPECT_FALSE(m.is_view());
  EXPECT_EQ(CopyStats::bytes(), payload.size() * sizeof(double));
  m(0, 0) = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixViewTest, CopyOfViewSharesArena) {
  const std::vector<double> payload{1, 2, 3, 4};
  ArenaPtr arena = make_arena(payload);
  auto m = ht::la::Matrix::view(2, 2, arena_doubles(arena), arena);
  const ht::la::Matrix copy = m;  // copies the window, shares the arena
  const ht::la::Matrix& cm = m;
  EXPECT_TRUE(copy.is_view());
  EXPECT_EQ(copy.data(), cm.data());
  EXPECT_DOUBLE_EQ(copy(1, 0), 3.0);
}

TEST(DenseTensorViewTest, ViewReadsAndRefusesWrites) {
  const std::vector<double> payload{1, 2, 3, 4, 5, 6, 7, 8};
  ArenaPtr arena = make_arena(payload);
  auto t = ht::tensor::DenseTensor::view({2, 2, 2}, arena_doubles(arena),
                                         arena);
  EXPECT_TRUE(t.is_view());
  const std::vector<ht::tensor::index_t> idx{1, 0, 1};
  const ht::tensor::DenseTensor& ct = t;
  EXPECT_DOUBLE_EQ(ct.at(idx), 6.0);  // last mode fastest
  EXPECT_THROW((void)t.flat(), ht::Error);
  EXPECT_THROW((void)t.at(idx), ht::Error);
}

}  // namespace
