#include <gtest/gtest.h>

#include "core/hosvd.hpp"
#include "core/rank_sweep.hpp"
#include "la/blas.hpp"
#include "la/svd.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::HooiOptions;
using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

double orthonormality_error(const Matrix& q) {
  const Matrix g = ht::la::gemm_tn(q, q);
  double err = 0;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      err = std::max(err, std::abs(g(i, j) - (i == j ? 1.0 : 0.0)));
    }
  }
  return err;
}

TEST(RandomInitTest, FactorsAreOrthonormalAndDeterministic) {
  const Shape shape{40, 30, 20};
  const std::vector<index_t> ranks{5, 4, 3};
  const auto a = ht::core::random_orthonormal_factors(shape, ranks, 7);
  const auto b = ht::core::random_orthonormal_factors(shape, ranks, 7);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(a[n].rows(), shape[n]);
    EXPECT_EQ(a[n].cols(), ranks[n]);
    EXPECT_LT(orthonormality_error(a[n]), 1e-10);
    EXPECT_TRUE(a[n].approx_equal(b[n], 0.0));
  }
  const auto c = ht::core::random_orthonormal_factors(shape, ranks, 8);
  EXPECT_FALSE(a[0].approx_equal(c[0], 1e-3));
}

TEST(RandomInitTest, RejectsBadRanks) {
  const Shape shape{10, 10};
  EXPECT_THROW(ht::core::random_orthonormal_factors(
                   shape, std::vector<index_t>{5}, 1),
               ht::Error);
  EXPECT_THROW(ht::core::random_orthonormal_factors(
                   shape, std::vector<index_t>{11, 5}, 1),
               ht::Error);
}

TEST(RangeInitTest, FactorsAreOrthonormal) {
  const CooTensor x =
      ht::tensor::random_uniform(Shape{60, 50, 40}, 2000, 11);
  const std::vector<index_t> ranks{4, 4, 4};
  const auto factors = ht::core::randomized_range_factors(x, ranks, 13);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(factors[n].rows(), x.dim(n));
    EXPECT_EQ(factors[n].cols(), 4u);
    EXPECT_LT(orthonormality_error(factors[n]), 1e-8);
  }
}

TEST(RangeInitTest, CapturesRangeOfExactlyLowRankTensor) {
  // Exactly rank-(3,3,3) tensor stored with full support: the sketch range
  // is contained in the true 3-dimensional range of X(1), so the sketched
  // factor must span it exactly. (On merely *approximately* low-rank data
  // a single-pass sketch only approximates the subspace — that warm-start
  // behaviour is covered by HooiTest.RandomizedRangeInitSpeedsConvergence.)
  const Shape shape{25, 8, 6};
  const std::vector<index_t> ranks{3, 3, 3};
  ht::core::TuckerDecomposition model;
  model.factors = ht::core::random_orthonormal_factors(shape, ranks, 17);
  model.core = ht::tensor::DenseTensor(Shape{3, 3, 3});
  ht::Rng rng(18);
  for (auto& v : model.core.flat()) v = rng.uniform(-1.0, 1.0);
  const auto dense = model.reconstruct_dense();

  CooTensor x(shape);
  std::vector<index_t> idx(3, 0);
  for (std::size_t off = 0; off < dense.size(); ++off) {
    x.push_back(idx, dense.flat()[off]);
    for (std::size_t n = 3; n-- > 0;) {
      if (++idx[n] < shape[n]) break;
      idx[n] = 0;
    }
  }

  const auto factors =
      ht::core::randomized_range_factors(x, ranks, 19, /*oversample=*/5);
  const auto x1 = dense.matricize(0);
  const auto svd = ht::la::svd_jacobi(x1);
  Matrix u_exact(shape[0], 3);
  for (index_t i = 0; i < shape[0]; ++i) {
    for (std::size_t j = 0; j < 3; ++j) u_exact(i, j) = svd.u(i, j);
  }
  // Principal angles: the overlap's smallest singular value measures the
  // alignment of the sketched and exact subspaces.
  const Matrix overlap = ht::la::gemm_tn(u_exact, factors[0]);
  const auto overlap_svd = ht::la::svd_jacobi(overlap);
  EXPECT_GT(overlap_svd.s[2], 0.999);
}

TEST(RangeInitTest, DeterministicForSeed) {
  const CooTensor x = ht::tensor::random_uniform(Shape{30, 30, 30}, 700, 21);
  const std::vector<index_t> ranks{3, 3, 3};
  const auto a = ht::core::randomized_range_factors(x, ranks, 5);
  const auto b = ht::core::randomized_range_factors(x, ranks, 5);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_TRUE(a[n].approx_equal(b[n], 0.0));
  }
}

// ------------------------------------------------------------ rank sweep

TEST(RankSweepTest, FitsIncreaseWithRank) {
  CooTensor x = ht::tensor::random_zipf(Shape{40, 35, 30}, 1500,
                                        {0.7, 0.5, 0.3}, 23);
  ht::tensor::plant_low_rank_values(x, 6, 0.05, 24);

  HooiOptions base;
  base.max_iterations = 3;
  const std::vector<std::vector<index_t>> candidates = {
      {2, 2, 2}, {4, 4, 4}, {6, 6, 6}};
  const auto sweep = ht::core::rank_sweep(x, candidates, base);
  ASSERT_EQ(sweep.entries.size(), 3u);
  EXPECT_GE(sweep.entries[1].fit, sweep.entries[0].fit - 1e-9);
  EXPECT_GE(sweep.entries[2].fit, sweep.entries[1].fit - 1e-9);
  EXPECT_GT(sweep.symbolic_seconds, 0.0);
}

TEST(RankSweepTest, PickPrefersSmallestSufficientCore) {
  // Full-support exactly-rank-2 tensor (a sparse *mask* of a low-rank
  // tensor is not low rank, so full support is required for the elbow).
  const Shape shape{10, 9, 8};
  CooTensor x(shape);
  ht::Rng rng(25);
  std::vector<double> a(shape[0]), b(shape[1]), c(shape[2]);
  std::vector<double> a2(shape[0]), b2(shape[1]), c2(shape[2]);
  for (auto* v : {&a, &b, &c, &a2, &b2, &c2}) {
    for (auto& e : *v) e = rng.uniform(0.2, 1.0);
  }
  for (index_t i = 0; i < shape[0]; ++i) {
    for (index_t j = 0; j < shape[1]; ++j) {
      for (index_t k = 0; k < shape[2]; ++k) {
        const double v = a[i] * b[j] * c[k] + 0.5 * a2[i] * b2[j] * c2[k];
        x.push_back(std::vector<index_t>{i, j, k}, v);
      }
    }
  }
  HooiOptions base;
  base.max_iterations = 6;
  const std::vector<std::vector<index_t>> candidates = {
      {2, 2, 2}, {5, 5, 5}, {8, 8, 8}};
  const auto sweep = ht::core::rank_sweep(x, candidates, base);
  // Rank 2 already explains the data; pick() should not choose a larger core.
  const auto& chosen = sweep.pick(0.95);
  EXPECT_EQ(chosen.ranks, (std::vector<index_t>{2, 2, 2}));
  EXPECT_GT(sweep.entries[0].fit, 0.999);
}

TEST(RankSweepTest, EmptyCandidatesThrow) {
  CooTensor x = ht::tensor::random_uniform(Shape{10, 10}, 30, 27);
  HooiOptions base;
  EXPECT_THROW(ht::core::rank_sweep(x, {}, base), ht::Error);
}

}  // namespace
