#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tensor/coo_tensor.hpp"
#include "tensor/generators.hpp"

namespace {

using ht::tensor::CooTensor;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

TEST(GeneratorsTest, UniformReachesTargetNnz) {
  const CooTensor x = ht::tensor::random_uniform(Shape{100, 100, 100}, 5000, 1);
  EXPECT_EQ(x.nnz(), 5000u);
  EXPECT_NO_THROW(x.validate());
}

TEST(GeneratorsTest, UniformIsDeterministic) {
  const CooTensor a = ht::tensor::random_uniform(Shape{50, 60}, 800, 42);
  const CooTensor b = ht::tensor::random_uniform(Shape{50, 60}, 800, 42);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (nnz_t t = 0; t < a.nnz(); ++t) {
    EXPECT_EQ(a.index(0, t), b.index(0, t));
    EXPECT_EQ(a.index(1, t), b.index(1, t));
    EXPECT_DOUBLE_EQ(a.value(t), b.value(t));
  }
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  const CooTensor a = ht::tensor::random_uniform(Shape{50, 60}, 800, 1);
  const CooTensor b = ht::tensor::random_uniform(Shape{50, 60}, 800, 2);
  nnz_t same = 0;
  const nnz_t n = std::min(a.nnz(), b.nnz());
  for (nnz_t t = 0; t < n; ++t) {
    same += (a.index(0, t) == b.index(0, t) && a.index(1, t) == b.index(1, t));
  }
  EXPECT_LT(same, n / 2);
}

TEST(GeneratorsTest, NoDuplicateCoordinates) {
  CooTensor x = ht::tensor::random_uniform(Shape{30, 30}, 500, 3);
  const nnz_t before = x.nnz();
  x.sum_duplicates();
  EXPECT_EQ(x.nnz(), before);
}

TEST(GeneratorsTest, RejectsImpossibleNnz) {
  EXPECT_THROW(ht::tensor::random_uniform(Shape{3, 3}, 100, 1), ht::Error);
}

TEST(GeneratorsTest, ZipfSkewsSliceSizes) {
  // With theta > 1 the largest slice should hold far more than 1/I of the
  // nonzeros; with theta = 0 slices should be near-uniform.
  const Shape shape{2000, 2000};
  const nnz_t n = 20000;
  const CooTensor skew =
      ht::tensor::random_zipf(shape, n, {1.3, 0.0}, 11);
  const CooTensor flat = ht::tensor::random_zipf(shape, n, {0.0, 0.0}, 11);

  const auto hist_max = [](const CooTensor& x) {
    const auto h = x.slice_nnz(0);
    return *std::max_element(h.begin(), h.end());
  };
  EXPECT_GT(hist_max(skew), 8 * hist_max(flat));
}

TEST(GeneratorsTest, ZipfThetaArityChecked) {
  EXPECT_THROW(ht::tensor::random_zipf(Shape{10, 10}, 5, {1.0}, 1), ht::Error);
}

TEST(GeneratorsTest, PlantLowRankProducesStructuredValues) {
  CooTensor x = ht::tensor::random_uniform(Shape{40, 40, 40}, 2000, 5);
  ht::tensor::plant_low_rank_values(x, 4, 0.0, 6);
  // All values strictly positive (products of positives) and nonconstant.
  double mn = 1e30, mx = -1e30;
  for (nnz_t t = 0; t < x.nnz(); ++t) {
    mn = std::min(mn, x.value(t));
    mx = std::max(mx, x.value(t));
  }
  EXPECT_GT(mn, 0.0);
  EXPECT_GT(mx, mn);
}

TEST(GeneratorsTest, PresetSpecsMatchPaperTableOne) {
  // Table I mode counts: Netflix/NELL 3-mode, Delicious/Flickr 4-mode;
  // ranks 10 for 3-mode, 5 for 4-mode (Section V).
  for (const auto& name : ht::tensor::paper_preset_names()) {
    const auto spec = ht::tensor::paper_preset(name);
    if (name == "netflix" || name == "nell") {
      EXPECT_EQ(spec.shape.size(), 3u) << name;
      EXPECT_EQ(spec.ranks[0], 10u) << name;
    } else {
      EXPECT_EQ(spec.shape.size(), 4u) << name;
      EXPECT_EQ(spec.ranks[0], 5u) << name;
    }
    EXPECT_GT(spec.nnz, 0u);
    EXPECT_EQ(spec.theta.size(), spec.shape.size());
  }
}

TEST(GeneratorsTest, PresetShapeRatiosPreserved) {
  // Netflix: I1 >> I2 >> I3 must survive scaling.
  const auto spec = ht::tensor::paper_preset("netflix");
  EXPECT_GT(spec.shape[0], spec.shape[1]);
  EXPECT_GT(spec.shape[1], spec.shape[2]);
  // Delicious: huge third mode (tags).
  const auto del = ht::tensor::paper_preset("delicious");
  EXPECT_GT(del.shape[2], del.shape[1]);
  EXPECT_GT(del.shape[2], del.shape[3]);
}

TEST(GeneratorsTest, PresetScaleGrowsSizes) {
  const auto s1 = ht::tensor::paper_preset("netflix", 1.0);
  const auto s2 = ht::tensor::paper_preset("netflix", 2.0);
  EXPECT_GT(s2.shape[0], s1.shape[0]);
  EXPECT_GT(s2.nnz, s1.nnz);
}

TEST(GeneratorsTest, UnknownPresetThrows) {
  EXPECT_THROW(ht::tensor::paper_preset("imdb"), ht::InvalidArgument);
}

TEST(GeneratorsTest, GeneratePresetSmokesAllFour) {
  for (const auto& name : ht::tensor::paper_preset_names()) {
    auto spec = ht::tensor::paper_preset(name, 0.05);  // tiny for test speed
    const CooTensor x = ht::tensor::generate_preset(spec, 9);
    EXPECT_GT(x.nnz(), spec.nnz / 2) << name;
    EXPECT_NO_THROW(x.validate());
    EXPECT_EQ(x.order(), spec.shape.size());
  }
}

TEST(GeneratorsTest, RandomLowRankPlantsUnitRmsSignalWithKnownNoise) {
  const auto planted = ht::tensor::random_low_rank(Shape{50, 40, 30}, 5000,
                                                   Shape{4, 3, 2}, 0.1, 10);
  const CooTensor& x = planted.tensor;
  EXPECT_NO_THROW(x.validate());
  ASSERT_EQ(planted.clean.size(), x.nnz());
  EXPECT_DOUBLE_EQ(planted.noise_sigma, 0.1);

  // Clean signal is normalized to unit RMS over the observed entries.
  double sum_sq = 0.0;
  for (const double v : planted.clean) sum_sq += v * v;
  EXPECT_NEAR(std::sqrt(sum_sq / static_cast<double>(x.nnz())), 1.0, 1e-12);

  // The residual values - clean is the injected noise: its empirical RMS
  // concentrates around noise_sigma (a few percent at 5000 samples).
  double noise_sq = 0.0;
  for (nnz_t t = 0; t < x.nnz(); ++t) {
    const double d = x.value(t) - planted.clean[t];
    noise_sq += d * d;
  }
  const double noise_rms = std::sqrt(noise_sq / static_cast<double>(x.nnz()));
  EXPECT_NEAR(noise_rms, planted.noise_sigma, 0.05 * planted.noise_sigma);
}

TEST(GeneratorsTest, RandomLowRankNoiselessIsExactlyClean) {
  const auto planted = ht::tensor::random_low_rank(Shape{20, 15, 10}, 800,
                                                   Shape{2, 2, 2}, 0.0, 11);
  EXPECT_DOUBLE_EQ(planted.noise_sigma, 0.0);
  for (nnz_t t = 0; t < planted.tensor.nnz(); ++t) {
    EXPECT_EQ(planted.tensor.value(t), planted.clean[t]);
  }
}

TEST(GeneratorsTest, RandomLowRankDeterministicForSeed) {
  const auto a = ht::tensor::random_low_rank(Shape{25, 20, 15}, 1000,
                                             Shape{3, 3, 3}, 0.2, 12);
  const auto b = ht::tensor::random_low_rank(Shape{25, 20, 15}, 1000,
                                             Shape{3, 3, 3}, 0.2, 12);
  ASSERT_EQ(a.tensor.nnz(), b.tensor.nnz());
  for (nnz_t t = 0; t < a.tensor.nnz(); ++t) {
    EXPECT_EQ(a.tensor.value(t), b.tensor.value(t));
    EXPECT_EQ(a.clean[t], b.clean[t]);
  }
}

TEST(GeneratorsTest, RandomLowRankRejectsBadArguments) {
  EXPECT_THROW(ht::tensor::random_low_rank(Shape{10, 10}, 50, Shape{2},
                                           0.1, 13),
               ht::Error);  // rank arity
  EXPECT_THROW(ht::tensor::random_low_rank(Shape{10, 10}, 50, Shape{2, 11},
                                           0.1, 13),
               ht::Error);  // rank > dim
  EXPECT_THROW(ht::tensor::random_low_rank(Shape{10, 10}, 50, Shape{2, 2},
                                           -0.5, 13),
               ht::Error);  // negative noise
}

}  // namespace
