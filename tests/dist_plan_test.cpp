#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/hosvd.hpp"
#include "dist/partition_plan.hpp"
#include "tensor/generators.hpp"

namespace {

using ht::dist::build_global_plan;
using ht::dist::build_rank_plans;
using ht::dist::GlobalPlan;
using ht::dist::Grain;
using ht::dist::Method;
using ht::dist::PlanOptions;
using ht::dist::RankPlan;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

CooTensor test_tensor(std::uint64_t seed = 7) {
  CooTensor x = ht::tensor::random_zipf(Shape{60, 45, 30}, 1200,
                                        {1.0, 0.6, 0.2}, seed);
  ht::tensor::plant_low_rank_values(x, 3, 0.1, seed + 1);
  return x;
}

PlanOptions opts(Grain g, Method m, int p) {
  PlanOptions o;
  o.grain = g;
  o.method = m;
  o.num_ranks = p;
  return o;
}

TEST(ConfigLabelTest, MatchesPaperNames) {
  EXPECT_EQ(ht::dist::config_label(Grain::kFine, Method::kHypergraph),
            "fine-hp");
  EXPECT_EQ(ht::dist::config_label(Grain::kFine, Method::kRandom), "fine-rd");
  EXPECT_EQ(ht::dist::config_label(Grain::kCoarse, Method::kHypergraph),
            "coarse-hp");
  EXPECT_EQ(ht::dist::config_label(Grain::kCoarse, Method::kBlock),
            "coarse-bl");
}

class PlanConfigs
    : public ::testing::TestWithParam<std::tuple<Grain, Method, int>> {};

TEST_P(PlanConfigs, GlobalPlanIsWellFormed) {
  const auto [grain, method, p] = GetParam();
  const CooTensor x = test_tensor();
  const GlobalPlan plan = build_global_plan(x, opts(grain, method, p));

  EXPECT_EQ(plan.num_ranks, p);
  ASSERT_EQ(plan.row_owner.size(), 3u);
  for (std::size_t n = 0; n < 3; ++n) {
    ASSERT_EQ(plan.row_owner[n].size(), x.dim(n));
    for (int o : plan.row_owner[n]) {
      EXPECT_GE(o, 0);
      EXPECT_LT(o, p);
    }
  }
  if (grain == Grain::kFine) {
    ASSERT_EQ(plan.nnz_owner.size(), x.nnz());
    for (int o : plan.nnz_owner) {
      EXPECT_GE(o, 0);
      EXPECT_LT(o, p);
    }
  }
}

TEST_P(PlanConfigs, RankPlansCoverTheTensor) {
  const auto [grain, method, p] = GetParam();
  const CooTensor x = test_tensor();
  const GlobalPlan plan = build_global_plan(x, opts(grain, method, p));
  const std::vector<index_t> ranks = {4, 4, 4};
  const auto rplans = build_rank_plans(x, plan, ranks, 42);
  ASSERT_EQ(rplans.size(), static_cast<std::size_t>(p));

  // Fine grain: local nnz counts sum to nnz (disjoint). Coarse: >= nnz
  // (replication), and each rank holds exactly the union of its slices.
  nnz_t total = 0;
  for (const auto& rp : rplans) total += rp.local.nnz();
  if (grain == Grain::kFine) {
    EXPECT_EQ(total, x.nnz());
  } else {
    EXPECT_GE(total, x.nnz());
    EXPECT_LE(total, 3 * x.nnz());
  }

  // Every mode's owned rows are disjoint across ranks and cover all
  // globally non-empty rows.
  for (std::size_t n = 0; n < 3; ++n) {
    std::set<index_t> seen;
    std::size_t total_owned = 0;
    for (const auto& rp : rplans) {
      for (index_t g : rp.modes[n].owned_rows) {
        EXPECT_TRUE(seen.insert(g).second) << "row owned twice";
        EXPECT_EQ(plan.row_owner[n][g], rp.rank);
      }
      total_owned += rp.modes[n].owned_rows.size();
    }
    std::size_t non_empty = 0;
    for (auto c : x.slice_nnz(n)) non_empty += (c > 0);
    EXPECT_EQ(total_owned, non_empty);
  }
}

TEST_P(PlanConfigs, LocalTensorsAreConsistentlyReindexed) {
  const auto [grain, method, p] = GetParam();
  const CooTensor x = test_tensor();
  const GlobalPlan plan = build_global_plan(x, opts(grain, method, p));
  const std::vector<index_t> ranks = {4, 4, 4};
  const auto rplans = build_rank_plans(x, plan, ranks, 42);

  double total_value = 0.0;
  double x_value = 0.0;
  for (nnz_t e = 0; e < x.nnz(); ++e) x_value += x.value(e);

  for (const auto& rp : rplans) {
    for (nnz_t e = 0; e < rp.local.nnz(); ++e) {
      for (std::size_t n = 0; n < 3; ++n) {
        const index_t local_id = rp.local.index(n, e);
        ASSERT_LT(local_id, rp.modes[n].local_rows.size());
      }
    }
    if (grain == Grain::kFine) {
      for (nnz_t e = 0; e < rp.local.nnz(); ++e) {
        total_value += rp.local.value(e);
      }
    }
  }
  if (grain == Grain::kFine) {
    EXPECT_NEAR(total_value, x_value, 1e-9 * std::abs(x_value) + 1e-9);
  }
}

TEST_P(PlanConfigs, CommunicationListsAreSymmetric) {
  const auto [grain, method, p] = GetParam();
  const CooTensor x = test_tensor();
  const GlobalPlan plan = build_global_plan(x, opts(grain, method, p));
  const std::vector<index_t> ranks = {4, 4, 4};
  const auto rplans = build_rank_plans(x, plan, ranks, 42);

  for (std::size_t n = 0; n < 3; ++n) {
    // Sum of send list sizes == sum of matching recv list sizes, per pair.
    for (int a = 0; a < p; ++a) {
      for (const auto& send : rplans[a].modes[n].factor_send) {
        std::size_t recv_size = 0;
        for (const auto& recv : rplans[send.peer].modes[n].factor_recv) {
          if (recv.peer == a) recv_size = recv.positions.size();
        }
        EXPECT_EQ(send.positions.size(), recv_size)
            << "factor rows " << a << "->" << send.peer << " mode " << n;
      }
      for (const auto& send : rplans[a].modes[n].fold_send) {
        std::size_t recv_size = 0;
        for (const auto& recv : rplans[send.peer].modes[n].fold_recv) {
          if (recv.peer == a) recv_size = recv.positions.size();
        }
        EXPECT_EQ(send.positions.size(), recv_size)
            << "fold " << a << "->" << send.peer << " mode " << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PlanConfigs,
    ::testing::Values(
        std::tuple{Grain::kFine, Method::kHypergraph, 4},
        std::tuple{Grain::kFine, Method::kRandom, 4},
        std::tuple{Grain::kFine, Method::kRandom, 7},
        std::tuple{Grain::kCoarse, Method::kHypergraph, 4},
        std::tuple{Grain::kCoarse, Method::kBlock, 4},
        std::tuple{Grain::kCoarse, Method::kRandom, 3},
        std::tuple{Grain::kFine, Method::kHypergraph, 1},
        std::tuple{Grain::kCoarse, Method::kBlock, 1}));

TEST(PlanTest, FineGrainAnchoringGivesOwnersLocalNonzeros) {
  const CooTensor x = test_tensor();
  const GlobalPlan plan =
      build_global_plan(x, opts(Grain::kFine, Method::kRandom, 5));
  const std::vector<index_t> ranks = {4, 4, 4};
  const auto rplans = build_rank_plans(x, plan, ranks, 42);
  // owned rows must appear among the rank's local rows (anchoring).
  for (const auto& rp : rplans) {
    for (std::size_t n = 0; n < 3; ++n) {
      for (index_t g : rp.modes[n].owned_rows) {
        const auto& lr = rp.modes[n].local_rows;
        EXPECT_TRUE(std::binary_search(lr.begin(), lr.end(), g));
      }
    }
  }
}

TEST(PlanTest, CoarseGrainOwnersHoldWholeSlices) {
  const CooTensor x = test_tensor();
  const GlobalPlan plan =
      build_global_plan(x, opts(Grain::kCoarse, Method::kBlock, 4));
  const std::vector<index_t> ranks = {4, 4, 4};
  const auto rplans = build_rank_plans(x, plan, ranks, 42);

  // For every nonzero and mode, the owner of that mode's slice must hold
  // the nonzero locally: count local nonzeros per (rank, mode-0 row) and
  // compare against the global histogram for owned rows.
  const auto hist = x.slice_nnz(0);
  for (const auto& rp : rplans) {
    const auto& mp = rp.modes[0];
    std::vector<nnz_t> local_hist(mp.local_rows.size(), 0);
    for (nnz_t e = 0; e < rp.local.nnz(); ++e) {
      ++local_hist[rp.local.index(0, e)];
    }
    for (index_t g : mp.owned_rows) {
      const auto it =
          std::lower_bound(mp.local_rows.begin(), mp.local_rows.end(), g);
      const auto local_id = static_cast<std::size_t>(it - mp.local_rows.begin());
      EXPECT_EQ(local_hist[local_id], hist[g]) << "slice " << g;
    }
  }
}

TEST(PlanTest, InitialFactorsIndependentOfGlobalPlanSeed) {
  // Guards the PrebuiltPlansCanBeReused contract in dist_hooi_test: the
  // initial factors a RankPlan carries depend only on the seed passed to
  // build_rank_plans (they are local slices of the deterministic global
  // factors), never on the seed the partition was built with. A plan
  // partitioned offline with any seed must still reproduce the same HOOI
  // starting point.
  const CooTensor x = test_tensor();
  const std::vector<index_t> ranks = {4, 3, 5};
  const std::uint64_t factor_seed = 42;

  PlanOptions a = opts(Grain::kCoarse, Method::kHypergraph, 3);
  a.seed = 7;
  PlanOptions b = a;
  b.seed = 12345;

  const auto init = ht::core::random_orthonormal_factors(
      x.shape(), std::span<const index_t>(ranks), factor_seed);

  for (const PlanOptions& po : {a, b}) {
    const GlobalPlan plan = build_global_plan(x, po);
    const auto rplans = build_rank_plans(x, plan, ranks, factor_seed);
    for (const auto& rp : rplans) {
      ASSERT_EQ(rp.initial_factors.size(), 3u);
      for (std::size_t n = 0; n < 3; ++n) {
        const auto& lr = rp.modes[n].local_rows;
        for (std::size_t i = 0; i < lr.size(); ++i) {
          for (std::size_t j = 0; j < ranks[n]; ++j) {
            ASSERT_DOUBLE_EQ(rp.initial_factors[n](i, j), init[n](lr[i], j))
                << "plan seed " << po.seed << " rank " << rp.rank << " mode "
                << n << " local row " << i;
          }
        }
      }
    }
  }
}

TEST(PlanTest, InvalidOptionsThrow) {
  const CooTensor x = test_tensor();
  EXPECT_THROW(build_global_plan(x, opts(Grain::kFine, Method::kRandom, 0)),
               ht::Error);
  CooTensor empty(Shape{5, 5, 5});
  EXPECT_THROW(build_global_plan(empty, opts(Grain::kFine, Method::kRandom, 2)),
               ht::Error);
}

TEST(PlanTest, FourModePlansWork) {
  CooTensor x = ht::tensor::random_zipf(Shape{20, 25, 30, 15}, 900,
                                        {0.5, 0.8, 1.0, 0.3}, 11);
  const GlobalPlan plan =
      build_global_plan(x, opts(Grain::kFine, Method::kHypergraph, 3));
  const std::vector<index_t> ranks = {3, 3, 3, 3};
  const auto rplans = build_rank_plans(x, plan, ranks, 42);
  nnz_t total = 0;
  for (const auto& rp : rplans) {
    total += rp.local.nnz();
    EXPECT_EQ(rp.modes.size(), 4u);
    EXPECT_EQ(rp.initial_factors.size(), 4u);
  }
  EXPECT_EQ(total, x.nnz());
}

}  // namespace
