#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/symbolic.hpp"
#include "tensor/generators.hpp"

namespace {

using ht::core::ModeSymbolic;
using ht::core::SymbolicTtmc;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

TEST(SymbolicTest, UpdateListsPartitionNonzeros) {
  const CooTensor x = ht::tensor::random_zipf(Shape{40, 30, 20}, 600,
                                              {1.0, 0.5, 0.0}, 3);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  ASSERT_EQ(sym.modes.size(), 3u);

  for (std::size_t mode = 0; mode < 3; ++mode) {
    const ModeSymbolic& m = sym.modes[mode];
    // nnz_order is a permutation of all nonzeros.
    std::vector<nnz_t> sorted(m.nnz_order);
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(sorted.size(), x.nnz());
    for (nnz_t t = 0; t < x.nnz(); ++t) EXPECT_EQ(sorted[t], t);

    // Every update list entry has the right mode index.
    for (std::size_t r = 0; r < m.num_rows(); ++r) {
      for (nnz_t e : m.update_list(r)) {
        EXPECT_EQ(x.index(mode, e), m.rows[r]);
      }
      EXPECT_GT(m.update_list(r).size(), 0u);  // J_n rows are non-empty
    }
  }
}

TEST(SymbolicTest, RowsAreSortedAndUnique) {
  const CooTensor x =
      ht::tensor::random_uniform(Shape{100, 50}, 300, 5);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  for (const auto& m : sym.modes) {
    EXPECT_TRUE(std::is_sorted(m.rows.begin(), m.rows.end()));
    EXPECT_TRUE(std::adjacent_find(m.rows.begin(), m.rows.end()) ==
                m.rows.end());
  }
}

TEST(SymbolicTest, EmptyRowsAreCompactedAway) {
  CooTensor x(Shape{100, 100});
  x.push_back(std::vector<index_t>{5, 7}, 1.0);
  x.push_back(std::vector<index_t>{5, 9}, 2.0);
  x.push_back(std::vector<index_t>{90, 7}, 3.0);
  const ModeSymbolic m0 = ht::core::build_mode_symbolic(x, 0);
  ASSERT_EQ(m0.num_rows(), 2u);
  EXPECT_EQ(m0.rows[0], 5u);
  EXPECT_EQ(m0.rows[1], 90u);
  EXPECT_EQ(m0.update_list(0).size(), 2u);
  EXPECT_EQ(m0.update_list(1).size(), 1u);
}

TEST(SymbolicTest, SliceHistogramAgrees) {
  const CooTensor x = ht::tensor::random_zipf(Shape{64, 32, 16}, 900,
                                              {1.2, 0.3, 0.0}, 9);
  const auto hist = x.slice_nnz(0);
  const ModeSymbolic m = ht::core::build_mode_symbolic(x, 0);
  for (std::size_t r = 0; r < m.num_rows(); ++r) {
    EXPECT_EQ(m.update_list(r).size(), hist[m.rows[r]]);
  }
}

TEST(SymbolicTest, FourModeTensor) {
  const CooTensor x = ht::tensor::random_uniform(Shape{10, 12, 14, 16}, 500, 11);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  ASSERT_EQ(sym.modes.size(), 4u);
  for (std::size_t mode = 0; mode < 4; ++mode) {
    nnz_t total = 0;
    for (std::size_t r = 0; r < sym.modes[mode].num_rows(); ++r) {
      total += sym.modes[mode].update_list(r).size();
    }
    EXPECT_EQ(total, x.nnz());
  }
}

TEST(SymbolicTest, SingleNonzero) {
  CooTensor x(Shape{5, 5, 5});
  x.push_back(std::vector<index_t>{1, 2, 3}, 4.0);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  for (std::size_t mode = 0; mode < 3; ++mode) {
    EXPECT_EQ(sym.modes[mode].num_rows(), 1u);
    EXPECT_EQ(sym.modes[mode].update_list(0).size(), 1u);
  }
}

TEST(SymbolicTest, InvalidModeThrows) {
  CooTensor x(Shape{5, 5});
  x.push_back(std::vector<index_t>{0, 0}, 1.0);
  EXPECT_THROW(ht::core::build_mode_symbolic(x, 2), ht::Error);
}

}  // namespace
