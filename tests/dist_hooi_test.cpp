#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/hooi.hpp"
#include "dist/dist_hooi.hpp"
#include "la/blas.hpp"
#include "tensor/generators.hpp"

namespace {

using ht::core::HooiOptions;
using ht::core::HooiResult;
using ht::dist::DistHooiOptions;
using ht::dist::DistHooiResult;
using ht::dist::Grain;
using ht::dist::Method;
using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

CooTensor test_tensor(std::uint64_t seed = 3) {
  CooTensor x = ht::tensor::random_zipf(Shape{50, 40, 30}, 1500,
                                        {0.9, 0.5, 0.2}, seed);
  ht::tensor::plant_low_rank_values(x, 4, 0.1, seed + 1);
  return x;
}

// Shared-memory reference with the same seed/init as the distributed run.
HooiResult reference_hooi(const CooTensor& x, const std::vector<index_t>& r,
                          int iters, std::uint64_t seed) {
  HooiOptions opt;
  opt.ranks = r;
  opt.max_iterations = iters;
  opt.fit_tolerance = 0.0;  // run all iterations, like the dist default
  opt.seed = seed;
  return ht::core::hooi(x, opt);
}

DistHooiOptions dist_options(std::vector<index_t> r, Grain g, Method m, int p,
                             int iters, std::uint64_t seed) {
  DistHooiOptions opt;
  opt.ranks = std::move(r);
  opt.grain = g;
  opt.method = m;
  opt.num_ranks = p;
  opt.max_iterations = iters;
  opt.seed = seed;
  return opt;
}

TEST(DistHooiTest, SingleRankMatchesSharedMemoryExactly) {
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  const HooiResult shared = reference_hooi(x, r, 3, 42);
  const DistHooiResult dist = ht::dist::dist_hooi(
      x, dist_options(r, Grain::kFine, Method::kRandom, 1, 3, 42));
  ASSERT_EQ(dist.fits.size(), shared.fits.size());
  for (std::size_t i = 0; i < dist.fits.size(); ++i) {
    EXPECT_NEAR(dist.fits[i], shared.fits[i], 1e-12) << "iteration " << i;
  }
}

struct DistCase {
  Grain grain;
  Method method;
  int ranks;
};

class DistVsShared : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistVsShared, FitsMatchSharedMemory) {
  const auto [grain, method, p] = GetParam();
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  const HooiResult shared = reference_hooi(x, r, 3, 42);
  const DistHooiResult dist =
      ht::dist::dist_hooi(x, dist_options(r, grain, method, p, 3, 42));
  ASSERT_EQ(dist.fits.size(), shared.fits.size());
  for (std::size_t i = 0; i < dist.fits.size(); ++i) {
    EXPECT_NEAR(dist.fits[i], shared.fits[i], 1e-6)
        << ht::dist::config_label(grain, method) << " p=" << p << " iter "
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DistVsShared,
    ::testing::Values(DistCase{Grain::kFine, Method::kHypergraph, 2},
                      DistCase{Grain::kFine, Method::kHypergraph, 4},
                      DistCase{Grain::kFine, Method::kRandom, 4},
                      DistCase{Grain::kFine, Method::kRandom, 7},
                      DistCase{Grain::kCoarse, Method::kHypergraph, 4},
                      DistCase{Grain::kCoarse, Method::kBlock, 4},
                      DistCase{Grain::kCoarse, Method::kRandom, 3},
                      DistCase{Grain::kCoarse, Method::kBlock, 8}));

TEST(DistHooiTest, FourModeTensorAllConfigs) {
  CooTensor x = ht::tensor::random_zipf(Shape{18, 22, 26, 14}, 800,
                                        {0.4, 0.7, 0.9, 0.3}, 5);
  ht::tensor::plant_low_rank_values(x, 3, 0.1, 6);
  const std::vector<index_t> r = {3, 3, 3, 3};
  const HooiResult shared = reference_hooi(x, r, 2, 11);
  for (const auto grain : {Grain::kFine, Grain::kCoarse}) {
    for (const auto method : {Method::kHypergraph, Method::kRandom}) {
      const DistHooiResult dist =
          ht::dist::dist_hooi(x, dist_options(r, grain, method, 3, 2, 11));
      ASSERT_EQ(dist.fits.size(), shared.fits.size());
      EXPECT_NEAR(dist.fits.back(), shared.fits.back(), 1e-6)
          << ht::dist::config_label(grain, method);
    }
  }
}

TEST(DistHooiTest, AssembledFactorsAreOrthonormal) {
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 3, 5};
  const DistHooiResult dist = ht::dist::dist_hooi(
      x, dist_options(r, Grain::kFine, Method::kHypergraph, 4, 3, 42));
  for (const auto& f : dist.decomposition.factors) {
    const Matrix g = ht::la::gemm_tn(f, f);
    for (std::size_t i = 0; i < g.rows(); ++i) {
      for (std::size_t j = 0; j < g.cols(); ++j) {
        EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, 1e-6);
      }
    }
  }
}

TEST(DistHooiTest, ReportedFitMatchesExactFit) {
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  const DistHooiResult dist = ht::dist::dist_hooi(
      x, dist_options(r, Grain::kCoarse, Method::kBlock, 3, 3, 42));
  const double exact = ht::core::fit_exact(x, dist.decomposition);
  EXPECT_NEAR(dist.fits.back(), exact, 1e-6);
}

TEST(DistHooiTest, StatsArePopulated) {
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  const DistHooiResult dist = ht::dist::dist_hooi(
      x, dist_options(r, Grain::kFine, Method::kRandom, 4, 2, 42));
  ASSERT_EQ(dist.stats.modes(), 3u);
  ASSERT_EQ(dist.stats.ranks(), 4u);
  for (std::size_t n = 0; n < 3; ++n) {
    std::uint64_t ttmc_total = 0;
    for (std::size_t k = 0; k < 4; ++k) {
      ttmc_total += dist.stats.at(n, k).w_ttmc;
    }
    // Fine grain: every nonzero processed exactly once per mode.
    EXPECT_EQ(ttmc_total, x.nnz()) << "mode " << n;
    // Multi-rank runs must communicate.
    EXPECT_GT(dist.stats.comm_summary(n).avg, 0.0);
  }
  EXPECT_EQ(dist.label, "fine-rd");
  EXPECT_GT(dist.seconds_per_iteration, 0.0);
}

TEST(DistHooiTest, FineGrainTtmcIsPerfectlyBalancedByConstruction) {
  // Paper Table III: fine-grain W_TTMc is (near-)uniform across ranks.
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  const DistHooiResult dist = ht::dist::dist_hooi(
      x, dist_options(r, Grain::kFine, Method::kRandom, 4, 1, 42));
  for (std::size_t n = 0; n < 3; ++n) {
    const auto s = dist.stats.ttmc_summary(n);
    EXPECT_LT(s.imbalance(), 1.05) << "mode " << n;
  }
}

TEST(DistHooiTest, HypergraphPartitionCommunicatesLessThanRandom) {
  // Paper's headline communication claim (fine-hp vs fine-rd).
  CooTensor x = ht::tensor::random_zipf(Shape{80, 60, 40}, 4000,
                                        {1.1, 0.7, 0.3}, 13);
  ht::tensor::plant_low_rank_values(x, 4, 0.1, 14);
  const std::vector<index_t> r = {4, 4, 4};
  const DistHooiResult hp = ht::dist::dist_hooi(
      x, dist_options(r, Grain::kFine, Method::kHypergraph, 4, 1, 42));
  const DistHooiResult rd = ht::dist::dist_hooi(
      x, dist_options(r, Grain::kFine, Method::kRandom, 4, 1, 42));
  EXPECT_LT(hp.stats.total_comm_entries(), rd.stats.total_comm_entries());
}

TEST(DistHooiTest, EarlyStopOnFitTolerance) {
  const CooTensor x = test_tensor();
  DistHooiOptions opt =
      dist_options({4, 4, 4}, Grain::kFine, Method::kRandom, 3, 25, 42);
  opt.fit_tolerance = 1e-5;
  const DistHooiResult dist = ht::dist::dist_hooi(x, opt);
  EXPECT_LT(dist.iterations, 25);
  EXPECT_EQ(dist.fits.size(), static_cast<std::size_t>(dist.iterations));
}

TEST(DistHooiTest, DeterministicAcrossRuns) {
  const CooTensor x = test_tensor();
  const auto opt =
      dist_options({4, 4, 4}, Grain::kFine, Method::kHypergraph, 4, 2, 42);
  const DistHooiResult a = ht::dist::dist_hooi(x, opt);
  const DistHooiResult b = ht::dist::dist_hooi(x, opt);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fits[i], b.fits[i]);
  }
}

TEST(DistHooiTest, MoreRanksThanUsefulStillCorrect) {
  // 12 ranks on a small tensor: some ranks may be nearly empty.
  CooTensor x = ht::tensor::random_uniform(Shape{20, 18, 16}, 300, 15);
  const std::vector<index_t> r = {3, 3, 3};
  const HooiResult shared = reference_hooi(x, r, 2, 21);
  const DistHooiResult dist = ht::dist::dist_hooi(
      x, dist_options(r, Grain::kFine, Method::kRandom, 12, 2, 21));
  EXPECT_NEAR(dist.fits.back(), shared.fits.back(), 1e-6);
}

TEST(DistHooiTest, InvalidOptionsThrow) {
  const CooTensor x = test_tensor();
  auto opt = dist_options({4, 4}, Grain::kFine, Method::kRandom, 2, 2, 1);
  EXPECT_THROW(ht::dist::dist_hooi(x, opt), ht::Error);  // rank arity
  auto opt2 = dist_options({4, 4, 99}, Grain::kFine, Method::kRandom, 2, 2, 1);
  EXPECT_THROW(ht::dist::dist_hooi(x, opt2), ht::Error);  // rank too large
  auto opt3 = dist_options({4, 4, 4}, Grain::kFine, Method::kRandom, 2, 0, 1);
  EXPECT_THROW(ht::dist::dist_hooi(x, opt3), ht::Error);  // no iterations
}

TEST(DistHooiTest, PrebuiltPlansCanBeReused) {
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  const auto opt =
      dist_options(r, Grain::kCoarse, Method::kHypergraph, 3, 2, 42);
  ht::dist::PlanOptions popt;
  popt.grain = opt.grain;
  popt.method = opt.method;
  popt.num_ranks = opt.num_ranks;
  popt.seed = opt.seed;
  const auto gplan = ht::dist::build_global_plan(x, popt);
  const auto rplans = ht::dist::build_rank_plans(x, gplan, r, opt.seed);
  const DistHooiResult a = ht::dist::dist_hooi(x, opt, gplan, rplans);
  const DistHooiResult b = ht::dist::dist_hooi(x, opt, gplan, rplans);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fits[i], b.fits[i]);
  }
}

TEST(DistTrsvdBackends, MatchSharedMemoryAcrossGrains) {
  // Each blocked backend over the distributed operator (batched
  // fold/expand, allreduced Grams) must reproduce the shared-memory run of
  // the *same* backend — fine and coarse grain alike.
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  for (const auto method : {ht::core::TrsvdMethod::kBlockLanczos,
                            ht::core::TrsvdMethod::kRandomized,
                            ht::core::TrsvdMethod::kAuto}) {
    HooiOptions sopt;
    sopt.ranks = r;
    sopt.max_iterations = 3;
    sopt.fit_tolerance = 0.0;
    sopt.seed = 42;
    sopt.trsvd_method = method;
    const HooiResult shared = ht::core::hooi(x, sopt);
    // Krylov backends iterate each subspace to tolerance, so distributed
    // reduction-order noise washes out (1e-6). The randomized sketch's
    // Rayleigh–Ritz rotation is sensitive to last-bit Gram differences on
    // this tensor's clustered spectra, so its ALS trajectory tracks at fit
    // tolerance grade instead.
    const double tol =
        method == ht::core::TrsvdMethod::kRandomized ? 5e-4 : 1e-6;
    for (const auto grain : {Grain::kFine, Grain::kCoarse}) {
      DistHooiOptions dopt =
          dist_options(r, grain, Method::kHypergraph, 4, 3, 42);
      dopt.trsvd_method = method;
      const DistHooiResult dist = ht::dist::dist_hooi(x, dopt);
      ASSERT_EQ(dist.fits.size(), shared.fits.size());
      for (std::size_t i = 0; i < dist.fits.size(); ++i) {
        EXPECT_NEAR(dist.fits[i], shared.fits[i], tol)
            << ht::core::trsvd_method_name(method) << " "
            << (grain == Grain::kFine ? "fine" : "coarse") << " iter " << i;
      }
    }
  }
}

TEST(DistTrsvdBackends, SingleRankBitMatchesSharedMemory) {
  // p = 1: empty comm lists, identity collectives, and the operator's
  // row_gram takes the same gemm_tn path as the shared-memory default —
  // every backend must reproduce core::hooi exactly.
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  for (const auto method : {ht::core::TrsvdMethod::kBlockLanczos,
                            ht::core::TrsvdMethod::kRandomized}) {
    HooiOptions sopt;
    sopt.ranks = r;
    sopt.max_iterations = 3;
    sopt.fit_tolerance = 0.0;
    sopt.seed = 42;
    sopt.trsvd_method = method;
    const HooiResult shared = ht::core::hooi(x, sopt);
    DistHooiOptions dopt =
        dist_options(r, Grain::kFine, Method::kRandom, 1, 3, 42);
    dopt.trsvd_method = method;
    const DistHooiResult dist = ht::dist::dist_hooi(x, dopt);
    ASSERT_EQ(dist.fits.size(), shared.fits.size());
    for (std::size_t i = 0; i < dist.fits.size(); ++i) {
      EXPECT_NEAR(dist.fits[i], shared.fits[i], 1e-12)
          << ht::core::trsvd_method_name(method) << " iteration " << i;
    }
  }
}

TEST(DistTrsvdBackends, BatchedFoldExpandReducesMessageRounds) {
  // The blocked backends carry b vectors per fold/expand round and batch
  // the column-space allreduce, so the measured per-TRSVD round count must
  // drop by roughly the block width versus scalar Lanczos on the same
  // partition.
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  auto opt = dist_options(r, Grain::kFine, Method::kHypergraph, 4, 2, 42);
  opt.trsvd_method = ht::core::TrsvdMethod::kLanczos;
  const DistHooiResult scalar = ht::dist::dist_hooi(x, opt);
  opt.trsvd_method = ht::core::TrsvdMethod::kBlockLanczos;
  const DistHooiResult blocked = ht::dist::dist_hooi(x, opt);
  opt.trsvd_method = ht::core::TrsvdMethod::kRandomized;
  const DistHooiResult randomized = ht::dist::dist_hooi(x, opt);

  const auto scalar_rounds = scalar.stats.total_trsvd_rounds();
  ASSERT_GT(scalar_rounds, 0u);
  // Block width is 4 here (clamp(rank, 4, 16)); batching must shave at
  // least 2x even counting the per-step Gram allreduces the scalar solver
  // does not make.
  EXPECT_LT(2 * blocked.stats.total_trsvd_rounds(), scalar_rounds);
  EXPECT_LT(2 * randomized.stats.total_trsvd_rounds(), scalar_rounds);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_GT(scalar.stats.trsvd_rounds_summary(n).avg, 0.0);
  }
}

TEST(DistTrsvdBackends, RandomizedSketchDeterministicAcrossRunsAndRanks) {
  // Fixed seed: the sketch is identical across runs, and identical on
  // every simulated rank (column-space data is replicated) — so repeated
  // runs bit-match and the assembled factors agree across rank counts to
  // reduction-order noise.
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  auto opt = dist_options(r, Grain::kFine, Method::kHypergraph, 4, 2, 42);
  opt.trsvd_method = ht::core::TrsvdMethod::kRandomized;
  const DistHooiResult a = ht::dist::dist_hooi(x, opt);
  const DistHooiResult b = ht::dist::dist_hooi(x, opt);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fits[i], b.fits[i]);
  }
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_TRUE(a.decomposition.factors[n].approx_equal(
        b.decomposition.factors[n], 0.0));
  }

  // Across rank counts the sketch is the same but allreduce groupings
  // differ at the last bit, which the clustered-spectrum Ritz rotation
  // amplifies — fits agree at ALS fit-tolerance grade.
  auto opt2 = dist_options(r, Grain::kFine, Method::kHypergraph, 2, 2, 42);
  opt2.trsvd_method = ht::core::TrsvdMethod::kRandomized;
  const DistHooiResult c = ht::dist::dist_hooi(x, opt2);
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_NEAR(a.fits[i], c.fits[i], 5e-4) << "p=4 vs p=2 iteration " << i;
  }
}

TEST(DistTrsvdBackends, AutoResolutionIsRecorded) {
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  auto opt = dist_options(r, Grain::kCoarse, Method::kBlock, 3, 1, 42);
  opt.trsvd_method = ht::core::TrsvdMethod::kAuto;
  const DistHooiResult dist = ht::dist::dist_hooi(x, opt);
  ASSERT_EQ(dist.trsvd_methods.size(), 3u);
  for (const auto m : dist.trsvd_methods) {
    // Small compact problems resolve to the scalar solver.
    EXPECT_EQ(m, ht::core::TrsvdMethod::kLanczos);
  }
}

TEST(DistTrsvdBackends, GramIsRejected) {
  const CooTensor x = test_tensor();
  auto opt = dist_options({4, 4, 4}, Grain::kFine, Method::kRandom, 2, 1, 42);
  opt.trsvd_method = ht::core::TrsvdMethod::kGram;
  EXPECT_THROW(ht::dist::dist_hooi(x, opt), ht::Error);
}

TEST(DistHooiTest, CheckpointRestartContinuesFitTrajectory) {
  // A 2-iteration run that checkpoints, restarted for 2 more iterations
  // over the same plan, must walk the same fit trajectory as 4 straight
  // iterations: the checkpoint replaces only the random initialization.
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  const std::string dir = ::testing::TempDir() + "ht_dist_ckpt";
  (void)std::system(("mkdir -p " + dir).c_str());

  auto cold = dist_options(r, Grain::kFine, Method::kRandom, 2, 4, 42);
  const DistHooiResult straight = ht::dist::dist_hooi(x, cold);

  auto first = dist_options(r, Grain::kFine, Method::kRandom, 2, 2, 42);
  first.checkpoint_dir = dir;
  const DistHooiResult half = ht::dist::dist_hooi(x, first);
  const DistHooiResult resumed = ht::dist::dist_hooi(x, first);

  ASSERT_EQ(straight.fits.size(), 4u);
  ASSERT_EQ(half.fits.size(), 2u);
  ASSERT_EQ(resumed.fits.size(), 2u);
  EXPECT_NEAR(half.fits[0], straight.fits[0], 1e-12);
  EXPECT_NEAR(half.fits[1], straight.fits[1], 1e-12);
  EXPECT_NEAR(resumed.fits[0], straight.fits[2], 1e-12);
  EXPECT_NEAR(resumed.fits[1], straight.fits[3], 1e-12);

  for (int rank = 0; rank < 2; ++rank) {
    std::remove((dir + "/rank" + std::to_string(rank) + ".htb").c_str());
  }
}

TEST(DistHooiTest, StaleCheckpointShapeIsRejected) {
  const CooTensor x = test_tensor();
  const std::string dir = ::testing::TempDir() + "ht_dist_ckpt_stale";
  (void)std::system(("mkdir -p " + dir).c_str());

  auto opt = dist_options({4, 4, 4}, Grain::kFine, Method::kRandom, 2, 1, 42);
  opt.checkpoint_dir = dir;
  (void)ht::dist::dist_hooi(x, opt);

  // Same directory, different ranks: the stored slices no longer match the
  // plan and must be rejected loudly instead of silently corrupting a run.
  auto other = dist_options({5, 5, 5}, Grain::kFine, Method::kRandom, 2, 1, 42);
  other.checkpoint_dir = dir;
  EXPECT_THROW(ht::dist::dist_hooi(x, other), ht::Error);

  for (int rank = 0; rank < 2; ++rank) {
    std::remove((dir + "/rank" + std::to_string(rank) + ".htb").c_str());
  }
}

TEST(DistHooiTest, HybridThreadsPerRankAgrees) {
  const CooTensor x = test_tensor();
  const std::vector<index_t> r = {4, 4, 4};
  auto opt1 = dist_options(r, Grain::kFine, Method::kRandom, 2, 2, 42);
  opt1.threads_per_rank = 1;
  auto opt2 = dist_options(r, Grain::kFine, Method::kRandom, 2, 2, 42);
  opt2.threads_per_rank = 4;
  const DistHooiResult a = ht::dist::dist_hooi(x, opt1);
  const DistHooiResult b = ht::dist::dist_hooi(x, opt2);
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_NEAR(a.fits[i], b.fits[i], 1e-9);
  }
}

}  // namespace
