#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tensor/coo_tensor.hpp"
#include "tensor/generators.hpp"
#include "tensor/io.hpp"

namespace {

using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

class TempFile {
 public:
  explicit TempFile(const std::string& suffix) {
    path_ = ::testing::TempDir() + "ht_io_test_" + suffix;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(TnsIoTest, ReadsSimpleFile) {
  std::istringstream in(
      "# comment line\n"
      "1 1 1 3.5\n"
      "\n"
      "2 3 4 -1.25\n");
  const CooTensor x = ht::tensor::read_tns(in);
  EXPECT_EQ(x.order(), 3u);
  EXPECT_EQ(x.nnz(), 2u);
  EXPECT_EQ(x.shape(), (Shape{2, 3, 4}));
  EXPECT_DOUBLE_EQ(x.value(0), 3.5);
  EXPECT_EQ(x.index(2, 1), 3u);  // 0-based
}

TEST(TnsIoTest, RespectsExplicitShape) {
  std::istringstream in("1 1 2.0\n");
  const CooTensor x = ht::tensor::read_tns(in, Shape{5, 5});
  EXPECT_EQ(x.shape(), (Shape{5, 5}));
}

TEST(TnsIoTest, RejectsIndexBeyondExplicitShape) {
  std::istringstream in("9 1 2.0\n");
  EXPECT_THROW(ht::tensor::read_tns(in, Shape{5, 5}), ht::IoError);
}

TEST(TnsIoTest, RejectsEmptyFile) {
  std::istringstream in("# nothing\n");
  EXPECT_THROW(ht::tensor::read_tns(in), ht::IoError);
}

TEST(TnsIoTest, RejectsZeroBasedIndices) {
  std::istringstream in("0 1 2.0\n");
  EXPECT_THROW(ht::tensor::read_tns(in), ht::IoError);
}

TEST(TnsIoTest, RejectsInconsistentArity) {
  std::istringstream in(
      "1 1 1 2.0\n"
      "1 1 3.0\n");
  EXPECT_THROW(ht::tensor::read_tns(in), ht::IoError);
}

TEST(TnsIoTest, RejectsFractionalIndices) {
  std::istringstream in("1.5 1 2.0\n");
  EXPECT_THROW(ht::tensor::read_tns(in), ht::IoError);
}

// Regression: indices that do not fit index_t used to be truncated through
// static_cast (2^32 + 1 silently became index 0) instead of raising IoError.
TEST(TnsIoTest, RejectsIndexOverflowingIndexType) {
  std::istringstream in("4294967297 1 2.0\n");  // 2^32 + 1
  EXPECT_THROW(ht::tensor::read_tns(in), ht::IoError);
}

// Regression: indices at or beyond 2^53 lose integer precision in the
// double-based parser; they must be rejected, not rounded and truncated.
TEST(TnsIoTest, RejectsIndexBeyondDoublePrecision) {
  std::istringstream in("9007199254740993 1 2.0\n");  // 2^53 + 1
  EXPECT_THROW(ht::tensor::read_tns(in), ht::IoError);
}

TEST(TnsIoTest, AcceptsLargestRepresentableIndex) {
  // 1-based 2^32 - 1 is the largest index that can also satisfy a shape
  // check (mode sizes are index_t themselves).
  std::istringstream in("4294967295 1 2.0\n");
  const CooTensor x = ht::tensor::read_tns(in, Shape{4294967295u, 1});
  ASSERT_EQ(x.nnz(), 1u);
  EXPECT_EQ(x.index(0, 0), 4294967294u);
}

TEST(TnsIoTest, TextRoundTrip) {
  CooTensor x(Shape{4, 6, 3});
  x.push_back(std::vector<index_t>{0, 5, 2}, 1.5);
  x.push_back(std::vector<index_t>{3, 0, 0}, -2.75);
  std::ostringstream out;
  ht::tensor::write_tns(out, x);
  std::istringstream in(out.str());
  const CooTensor y = ht::tensor::read_tns(in, x.shape());
  ASSERT_EQ(y.nnz(), x.nnz());
  for (ht::tensor::nnz_t t = 0; t < x.nnz(); ++t) {
    for (std::size_t n = 0; n < x.order(); ++n) {
      EXPECT_EQ(y.index(n, t), x.index(n, t));
    }
    EXPECT_DOUBLE_EQ(y.value(t), x.value(t));
  }
}

TEST(TnsIoTest, MissingFileThrows) {
  EXPECT_THROW(ht::tensor::read_tns_file("/nonexistent/path/x.tns"),
               ht::IoError);
}

TEST(BinaryIoTest, RoundTripsGeneratedTensor) {
  const CooTensor x =
      ht::tensor::random_uniform(Shape{50, 40, 30}, 500, /*seed=*/7);
  TempFile f("bin1");
  ht::tensor::write_binary_file(f.path(), x);
  const CooTensor y = ht::tensor::read_binary_file(f.path());
  ASSERT_EQ(y.nnz(), x.nnz());
  EXPECT_EQ(y.shape(), x.shape());
  for (ht::tensor::nnz_t t = 0; t < x.nnz(); ++t) {
    for (std::size_t n = 0; n < x.order(); ++n) {
      EXPECT_EQ(y.index(n, t), x.index(n, t));
    }
    EXPECT_DOUBLE_EQ(y.value(t), x.value(t));
  }
}

TEST(BinaryIoTest, RejectsBadMagic) {
  TempFile f("bin2");
  std::ofstream out(f.path(), std::ios::binary);
  out << "NOTATENSOR";
  out.close();
  EXPECT_THROW(ht::tensor::read_binary_file(f.path()), ht::IoError);
}

TEST(BinaryIoTest, RejectsTruncatedFile) {
  const CooTensor x = ht::tensor::random_uniform(Shape{10, 10}, 50, 8);
  TempFile f("bin3");
  ht::tensor::write_binary_file(f.path(), x);
  // Truncate the file to half size.
  std::ifstream in(f.path(), std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(f.path(), std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size() / 2));
  out.close();
  EXPECT_THROW(ht::tensor::read_binary_file(f.path()), ht::IoError);
}

// Regression: a corrupt header declaring an absurd nonzero count used to be
// trusted for allocation (throwing std::length_error / bad_alloc — or worse,
// attempting a multi-TB allocation) before any payload validation ran.
TEST(BinaryIoTest, RejectsHeaderDeclaringMoreDataThanPresent) {
  TempFile f("bin4");
  {
    std::ofstream out(f.path(), std::ios::binary);
    out << "HTNSB1";
    const std::uint64_t order = 3;
    out.write(reinterpret_cast<const char*>(&order), sizeof order);
    const std::uint32_t dim = 10;
    for (int n = 0; n < 3; ++n) {
      out.write(reinterpret_cast<const char*>(&dim), sizeof dim);
    }
    const std::uint64_t nnz = 1ULL << 61;  // ~46 exabytes of payload
    out.write(reinterpret_cast<const char*>(&nnz), sizeof nnz);
    const double lonely_value = 1.0;
    out.write(reinterpret_cast<const char*>(&lonely_value),
              sizeof lonely_value);
  }
  EXPECT_THROW(ht::tensor::read_binary_file(f.path()), ht::IoError);
}

// Same class of bug at a size small enough to allocate: the declared nnz
// exceeds the payload actually present, which must be a clean IoError.
TEST(BinaryIoTest, RejectsOverdeclaredNnz) {
  const CooTensor x = ht::tensor::random_uniform(Shape{10, 10}, 50, 9);
  TempFile f("bin5");
  ht::tensor::write_binary_file(f.path(), x);
  // Patch the header nnz (offset: magic 6 + order 8 + shape 2*4) upward.
  std::fstream io(f.path(),
                  std::ios::binary | std::ios::in | std::ios::out);
  io.seekp(6 + 8 + 2 * 4, std::ios::beg);
  const std::uint64_t inflated = x.nnz() + 1;
  io.write(reinterpret_cast<const char*>(&inflated), sizeof inflated);
  io.close();
  EXPECT_THROW(ht::tensor::read_binary_file(f.path()), ht::IoError);
}

TEST(BinaryIoTest, MissingFileThrows) {
  EXPECT_THROW(ht::tensor::read_binary_file("/nonexistent/x.bin"),
               ht::IoError);
}

// Regression: trailing bytes after the declared payload (e.g. an
// interrupted in-place rewrite over a larger file) used to be silently
// ignored, returning a tensor matching neither old nor new contents.
TEST(BinaryIoTest, RejectsTrailingBytes) {
  const CooTensor x = ht::tensor::random_uniform(Shape{10, 10}, 50, 10);
  TempFile f("bin6");
  ht::tensor::write_binary_file(f.path(), x);
  std::ofstream out(f.path(), std::ios::binary | std::ios::app);
  out << "leftover";
  out.close();
  EXPECT_THROW(ht::tensor::read_binary_file(f.path()), ht::IoError);
}

TEST(BinaryIoTest, RejectsZeroSizedMode) {
  TempFile f("bin7");
  {
    std::ofstream out(f.path(), std::ios::binary);
    out << "HTNSB1";
    const std::uint64_t order = 2;
    out.write(reinterpret_cast<const char*>(&order), sizeof order);
    const std::uint32_t dims[2] = {5, 0};
    out.write(reinterpret_cast<const char*>(dims), sizeof dims);
    const std::uint64_t nnz = 0;
    out.write(reinterpret_cast<const char*>(&nnz), sizeof nnz);
  }
  EXPECT_THROW(ht::tensor::read_binary_file(f.path()), ht::IoError);
}

// Regression: an index outside the declared shape must surface as a clean
// IoError naming the nonzero, not as a downstream invariant failure.
TEST(BinaryIoTest, RejectsIndexOutsideDeclaredShape) {
  const CooTensor x = ht::tensor::random_uniform(Shape{10, 10}, 50, 11);
  TempFile f("bin8");
  ht::tensor::write_binary_file(f.path(), x);
  // Patch the first mode-0 index (right after the header) out of range.
  std::fstream io(f.path(), std::ios::binary | std::ios::in | std::ios::out);
  io.seekp(6 + 8 + 2 * 4 + 8, std::ios::beg);
  const std::uint32_t bad = 10;  // shape is 10, valid indices are 0..9
  io.write(reinterpret_cast<const char*>(&bad), sizeof bad);
  io.close();
  EXPECT_THROW(ht::tensor::read_binary_file(f.path()), ht::IoError);
}

}  // namespace
