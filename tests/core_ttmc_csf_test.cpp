// CSF tree invariants, golden equivalence of the CSF TTMc kernel against
// the per-nnz and fiber-factored kernels across orders and entry points,
// the extended kAuto selection, and thread-count determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/hooi.hpp"
#include "core/rank_sweep.hpp"
#include "core/symbolic.hpp"
#include "core/ttmc.hpp"
#include "dist/dist_hooi.hpp"
#include "la/matrix.hpp"
#include "parallel/thread_info.hpp"
#include "tensor/csf.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::ModeSymbolic;
using ht::core::Schedule;
using ht::core::SymbolicTtmc;
using ht::core::TtmcKernel;
using ht::core::TtmcOptions;
using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::CsfTensor;
using ht::tensor::CsfTree;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

std::vector<Matrix> random_factors(const Shape& shape,
                                   const std::vector<index_t>& ranks,
                                   std::uint64_t seed) {
  std::vector<Matrix> f;
  for (std::size_t n = 0; n < shape.size(); ++n) {
    f.push_back(random_matrix(shape[n], ranks[n], seed + n));
  }
  return f;
}

// The CSF walk reassociates additions (and may reorder the Kronecker
// digits), so equivalence is to a tight absolute tolerance.
constexpr double kTol = 1e-11;

struct CsfCase {
  std::string name;
  CooTensor tensor;
  std::vector<index_t> ranks;
};

std::vector<CsfCase> equivalence_cases() {
  std::vector<CsfCase> cases;
  cases.push_back({"order3_fibered",
                   ht::tensor::random_fibered(Shape{40, 30, 50}, 300, 6, 11),
                   {4, 3, 5}});
  cases.push_back({"order3_scattered",
                   ht::tensor::random_uniform(Shape{40, 30, 50}, 800, 13),
                   {4, 3, 5}});
  cases.push_back({"order4_fibered",
                   ht::tensor::random_fibered(Shape{15, 12, 10, 40}, 250, 5, 17),
                   {3, 2, 4, 3}});
  cases.push_back({"order4_scattered",
                   ht::tensor::random_uniform(Shape{15, 12, 10, 40}, 700, 19),
                   {3, 2, 4, 3}});
  cases.push_back({"order5_fibered",
                   ht::tensor::random_fibered(Shape{8, 7, 6, 5, 20}, 150, 4, 23),
                   {2, 2, 2, 2, 3}});
  return cases;
}

TEST(CsfTreeTest, StructureInvariantsHoldPerMode) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const CsfTensor csf = CsfTensor::build(x);
    ASSERT_EQ(csf.order(), x.order());
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    for (std::size_t n = 0; n < x.order(); ++n) {
      const CsfTree& t = csf.modes[n];
      const std::size_t L = t.levels();
      ASSERT_EQ(L, x.order()) << c.name;
      ASSERT_EQ(t.root_mode(), n);

      // Level modes: a permutation with the internal part shortest-first.
      std::vector<std::size_t> seen = t.level_modes;
      std::sort(seen.begin(), seen.end());
      for (std::size_t m = 0; m < L; ++m) ASSERT_EQ(seen[m], m);
      for (std::size_t d = 2; d < L; ++d) {
        ASSERT_LE(x.dim(t.level_modes[d - 1]), x.dim(t.level_modes[d]))
            << c.name << " mode " << n << ": internal levels not shortest-first";
      }

      // Root nodes are exactly the compact symbolic rows, in order.
      ASSERT_EQ(t.num_roots(), sym.modes[n].num_rows());
      for (std::size_t k = 0; k < t.num_roots(); ++k) {
        ASSERT_EQ(t.idx[0][k], sym.modes[n].rows[k]);
      }

      // CSR nesting: ptr[d] spans cover the next level exactly, leaves
      // count the nonzeros, and leaf_entry is a permutation.
      ASSERT_EQ(t.num_leaves(), x.nnz());
      for (std::size_t d = 1; d < L; ++d) {
        ASSERT_EQ(t.ptr[d].size(), t.num_nodes(d - 1) + 1);
        ASSERT_EQ(t.ptr[d].front(), 0u);
        ASSERT_EQ(t.ptr[d].back(), t.num_nodes(d));
        for (std::size_t k = 0; k + 1 < t.ptr[d].size(); ++k) {
          ASSERT_LT(t.ptr[d][k], t.ptr[d][k + 1]) << "empty node";
        }
      }
      std::vector<nnz_t> perm_sorted = t.leaf_entry;
      std::sort(perm_sorted.begin(), perm_sorted.end());
      for (nnz_t e = 0; e < x.nnz(); ++e) ASSERT_EQ(perm_sorted[e], e);

      // Every leaf below a node shares the node's prefix coordinates, and
      // values were gathered through the same permutation.
      for (nnz_t s = 0; s < t.num_leaves(); ++s) {
        const nnz_t e = t.leaf_entry[s];
        ASSERT_EQ(t.values[s], x.value(e));
        ASSERT_EQ(t.idx[L - 1][s], x.index(t.level_modes[L - 1], e));
      }
      // Walk each level's spans down to leaves and compare coordinates.
      for (std::size_t d = 0; d + 1 < L; ++d) {
        // leaf span of node k at level d: compose ptr[d+1..L-1].
        for (std::size_t k = 0; k < t.num_nodes(d); ++k) {
          nnz_t lo = k, hi = k + 1;
          for (std::size_t e = d + 1; e < L; ++e) {
            lo = t.ptr[e][lo];
            hi = t.ptr[e][hi];
          }
          for (nnz_t s = lo; s < hi; ++s) {
            ASSERT_EQ(x.index(t.level_modes[d], t.leaf_entry[s]), t.idx[d][k])
                << c.name << " mode " << n << " level " << d;
          }
          if (d == 0) {
            ASSERT_EQ(t.root_leaf_ptr[k], lo);
            ASSERT_EQ(t.root_leaf_ptr[k + 1], hi);
          }
        }
      }

      EXPECT_GT(t.prefix_sharing_ratio(), 0.99);
      EXPECT_GT(t.avg_leaf_fiber_length(), 0.0);
    }
  }
}

TEST(CsfTreeTest, PatternThenAttachMatchesBuild) {
  const CooTensor x = ht::tensor::random_fibered(Shape{20, 25, 30}, 120, 5, 7);
  const CsfTensor full = CsfTensor::build(x);
  CsfTensor pattern = CsfTensor::build_pattern(x);
  for (const auto& t : pattern.modes) EXPECT_FALSE(t.has_values());
  pattern.attach_values(x);
  for (std::size_t n = 0; n < x.order(); ++n) {
    ASSERT_TRUE(pattern.modes[n].has_values());
    EXPECT_EQ(pattern.modes[n].values, full.modes[n].values);
    EXPECT_EQ(pattern.modes[n].leaf_entry, full.modes[n].leaf_entry);
  }
}

TEST(CsfTtmcTest, MatchesOtherKernelsFullModeAllSchedules) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const auto factors = random_factors(x.shape(), c.ranks, 31);
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    const CsfTensor csf = CsfTensor::build(x);
    for (std::size_t n = 0; n < x.order(); ++n) {
      for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
        Matrix y_nnz, y_fib, y_csf;
        ht::core::ttmc_mode(x, factors, n, sym.modes[n], y_nnz,
                            {s, TtmcKernel::kPerNnz});
        ht::core::ttmc_mode(x, factors, n, sym.modes[n], y_fib,
                            {s, TtmcKernel::kFiberFactored});
        ht::core::ttmc_mode(x, factors, n, sym.modes[n], y_csf,
                            {s, TtmcKernel::kCsf}, &csf.modes[n]);
        ASSERT_EQ(y_nnz.rows(), y_csf.rows());
        ASSERT_EQ(y_nnz.cols(), y_csf.cols());
        EXPECT_TRUE(y_nnz.approx_equal(y_csf, kTol))
            << c.name << " mode " << n << " vs per-nnz, schedule "
            << (s == Schedule::kDynamic ? "dynamic" : "static");
        EXPECT_TRUE(y_fib.approx_equal(y_csf, kTol))
            << c.name << " mode " << n << " vs fiber";
      }
    }
  }
}

TEST(CsfTtmcTest, MatchesPerNnzSubsetPath) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const auto factors = random_factors(x.shape(), c.ranks, 37);
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    const CsfTensor csf = CsfTensor::build(x);
    for (std::size_t n = 0; n < x.order(); ++n) {
      // Every other compact row, as the coarse-grain owners would request.
      std::vector<std::uint32_t> positions;
      for (std::uint32_t p = 0; p < sym.modes[n].num_rows(); p += 2) {
        positions.push_back(p);
      }
      for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
        Matrix y_nnz, y_csf;
        ht::core::ttmc_mode_subset(x, factors, n, sym.modes[n], positions,
                                   y_nnz, {s, TtmcKernel::kPerNnz});
        ht::core::ttmc_mode_subset(x, factors, n, sym.modes[n], positions,
                                   y_csf, {s, TtmcKernel::kCsf},
                                   &csf.modes[n]);
        EXPECT_TRUE(y_nnz.approx_equal(y_csf, kTol)) << c.name << " mode " << n;
      }
    }
  }
}

TEST(CsfTtmcTest, CsfRequestWithoutTreeDegradesExactly) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 200, 5, 43);
  const auto factors = random_factors(x.shape(), {3, 3, 3}, 47);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  // No tree supplied: kCsf resolves to the closest factored kernel.
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym.modes[0], 3,
                                           {.kernel = TtmcKernel::kCsf}),
            TtmcKernel::kFiberFactored);
  Matrix y_fib, y_csf;
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y_fib,
                      {Schedule::kDynamic, TtmcKernel::kFiberFactored});
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y_csf,
                      {Schedule::kDynamic, TtmcKernel::kCsf});
  EXPECT_TRUE(y_fib.approx_equal(y_csf, 0.0));  // same kernel ran

  // Without fibers either, the fallback bottoms out at per-nnz.
  const SymbolicTtmc bare = SymbolicTtmc::build(x, /*with_fibers=*/false);
  EXPECT_EQ(ht::core::ttmc_selected_kernel(bare.modes[0], 3,
                                           {.kernel = TtmcKernel::kCsf}),
            TtmcKernel::kPerNnz);
}

TEST(CsfTtmcTest, AutoSelectionPinsPrefixRegimes) {
  // Prefix-heavy: long fibers -> kCsf once a tree is in hand, fiber
  // otherwise; prefix-free: singleton fibers -> per-nnz either way.
  const CooTensor heavy =
      ht::tensor::random_fibered(Shape{30, 30, 60}, 200, 8, 43);
  const CooTensor free_ =
      ht::tensor::random_uniform(Shape{200, 200, 200}, 500, 47);
  const SymbolicTtmc sym_heavy = SymbolicTtmc::build(heavy);
  const SymbolicTtmc sym_free = SymbolicTtmc::build(free_);
  const CsfTensor csf_heavy = CsfTensor::build(heavy);
  const CsfTensor csf_free = CsfTensor::build(free_);

  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym_heavy.modes[0], 3, {},
                                           &csf_heavy.modes[0]),
            TtmcKernel::kCsf);
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym_heavy.modes[0], 3, {}),
            TtmcKernel::kFiberFactored);
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym_free.modes[0], 3, {},
                                           &csf_free.modes[0]),
            TtmcKernel::kPerNnz);

  // ttmc_wants_csf mirrors the same statistics.
  EXPECT_TRUE(ht::core::ttmc_wants_csf(sym_heavy, {}));
  EXPECT_FALSE(ht::core::ttmc_wants_csf(sym_free, {}));
  EXPECT_TRUE(
      ht::core::ttmc_wants_csf(sym_free, {.kernel = TtmcKernel::kCsf}));
  EXPECT_FALSE(
      ht::core::ttmc_wants_csf(sym_heavy, {.kernel = TtmcKernel::kPerNnz}));
  // Order >= 5 has no flat fiber index: kAuto asks for trees.
  const CooTensor five =
      ht::tensor::random_fibered(Shape{8, 7, 6, 5, 20}, 150, 4, 23);
  EXPECT_TRUE(ht::core::ttmc_wants_csf(SymbolicTtmc::build(five), {}));
}

TEST(CsfTtmcTest, DeterministicAcrossThreadCounts) {
  // One row is accumulated by exactly one thread in tree order, and the
  // tile boundaries do not depend on the team size: results are bitwise
  // identical for any thread count, under both schedules.
  const CooTensor x = ht::tensor::random_fibered(Shape{40, 30, 50}, 400, 6, 61);
  const auto factors = random_factors(x.shape(), {4, 3, 5}, 67);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  const CsfTensor csf = CsfTensor::build(x);
  for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
    Matrix y1, y4;
    {
      ht::parallel::ThreadScope threads(1);
      ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y1,
                          {s, TtmcKernel::kCsf}, &csf.modes[0]);
    }
    {
      ht::parallel::ThreadScope threads(4);
      ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y4,
                          {s, TtmcKernel::kCsf}, &csf.modes[0]);
    }
    EXPECT_TRUE(y1.approx_equal(y4, 0.0));
  }
}

TEST(CsfTtmcTest, HooiConvergesIdenticallyUnderCsfKernel) {
  for (const Shape& shape : {Shape{25, 20, 40}, Shape{12, 10, 8, 25}}) {
    const CooTensor x = ht::tensor::random_fibered(shape, 300, 5, 53);
    ht::core::HooiOptions base;
    base.ranks.assign(x.order(), 3);
    base.max_iterations = 3;
    base.fit_tolerance = 0.0;

    ht::core::HooiOptions per_nnz = base;
    per_nnz.ttmc_kernel = TtmcKernel::kPerNnz;
    ht::core::HooiOptions with_csf = base;
    with_csf.ttmc_kernel = TtmcKernel::kCsf;

    const auto a = ht::core::hooi(x, per_nnz);
    const auto b = ht::core::hooi(x, with_csf);
    ASSERT_EQ(a.fits.size(), b.fits.size()) << x.order() << "-mode";
    for (std::size_t i = 0; i < a.fits.size(); ++i) {
      EXPECT_NEAR(a.fits[i], b.fits[i], 1e-8) << "sweep " << i;
    }

    // Prebuilt trees through the fully-preprocessed overload: same run.
    const SymbolicTtmc sym = SymbolicTtmc::build(x, /*with_fibers=*/false);
    const CsfTensor csf = CsfTensor::build(x);
    const auto c = ht::core::hooi(x, with_csf, sym, nullptr, &csf);
    ASSERT_EQ(b.fits.size(), c.fits.size());
    for (std::size_t i = 0; i < b.fits.size(); ++i) {
      // Strategy kAuto may resolve differently with/without a dim tree;
      // fits still agree to ALS grade.
      EXPECT_NEAR(b.fits[i], c.fits[i], 1e-8) << "sweep " << i;
    }
  }
}

TEST(CsfTtmcTest, RankSweepReusesTreesAcrossGrid) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 300, 5, 71);
  ht::core::HooiOptions base;
  base.max_iterations = 2;
  base.ttmc_kernel = TtmcKernel::kCsf;
  const std::vector<std::vector<index_t>> grid = {{2, 2, 2}, {3, 3, 3}};
  const auto swept = ht::core::rank_sweep(x, grid, base);
  ASSERT_EQ(swept.entries.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ht::core::HooiOptions o = base;
    o.ranks = grid[i];
    const auto solo = ht::core::hooi(x, o);
    EXPECT_NEAR(swept.entries[i].fit, solo.final_fit(), 1e-10);
  }
}

TEST(CsfTtmcTest, DistHooiMatchesUnderCsfKernelBothGrains) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 250, 5, 59);
  for (const auto grain : {ht::dist::Grain::kCoarse, ht::dist::Grain::kFine}) {
    ht::dist::DistHooiOptions base;
    base.ranks = {3, 3, 3};
    base.max_iterations = 2;
    base.num_ranks = 4;
    base.grain = grain;  // coarse exercises the CSF subset path

    ht::dist::DistHooiOptions per_nnz = base;
    per_nnz.ttmc_kernel = TtmcKernel::kPerNnz;
    ht::dist::DistHooiOptions with_csf = base;
    with_csf.ttmc_kernel = TtmcKernel::kCsf;

    const auto a = ht::dist::dist_hooi(x, per_nnz);
    const auto b = ht::dist::dist_hooi(x, with_csf);
    ASSERT_EQ(a.fits.size(), b.fits.size());
    for (std::size_t i = 0; i < a.fits.size(); ++i) {
      EXPECT_NEAR(a.fits[i], b.fits[i], 1e-8)
          << (grain == ht::dist::Grain::kCoarse ? "coarse" : "fine")
          << " sweep " << i;
    }
  }
}

}  // namespace
