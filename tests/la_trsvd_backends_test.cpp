// Backend-equivalence suite for the blocked TRSVD solvers: randomized
// subspace iteration and block Lanczos against the Gram/Jacobi references,
// the block-apply == repeated-scalar-apply operator contract, and
// fixed-seed determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/blas.hpp"
#include "la/block_lanczos.hpp"
#include "la/block_ops.hpp"
#include "la/lanczos.hpp"
#include "la/linear_operator.hpp"
#include "la/qr.hpp"
#include "la/randomized_trsvd.hpp"
#include "la/svd.hpp"
#include "util/random.hpp"

namespace {

using ht::la::DenseOperator;
using ht::la::Matrix;
using ht::la::TrsvdOptions;
using ht::la::TrsvdResult;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

Matrix matrix_with_spectrum(std::size_t m, std::size_t n,
                            const std::vector<double>& sigma,
                            std::uint64_t seed) {
  Matrix u = random_matrix(m, sigma.size(), seed);
  Matrix v = random_matrix(n, sigma.size(), seed + 1);
  ht::la::orthonormalize_columns(u);
  ht::la::orthonormalize_columns(v);
  for (std::size_t j = 0; j < sigma.size(); ++j) {
    for (std::size_t i = 0; i < m; ++i) u(i, j) *= sigma[j];
  }
  return ht::la::gemm_nt(u, v);
}

double orthonormality_error(const Matrix& q) {
  const Matrix g = ht::la::gemm_tn(q, q);
  double err = 0;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      err = std::max(err, std::abs(g(i, j) - (i == j ? 1.0 : 0.0)));
    }
  }
  return err;
}

// Largest principal angle (as 1 - |cos|) between the subspaces spanned by
// the leading `k` columns of a and b: 1 - sigma_min(a^T b).
double subspace_gap(const Matrix& a, const Matrix& b, std::size_t k) {
  Matrix ak(a.rows(), k), bk(b.rows(), k);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      ak(i, j) = a(i, j);
      bk(i, j) = b(i, j);
    }
  }
  const Matrix overlap = ht::la::gemm_tn(ak, bk);
  const auto svd = ht::la::svd_jacobi(overlap);
  return 1.0 - svd.s.back();
}

// Operator that only exposes the scalar entry points, so every block call
// exercises the TrsvdOperator default implementations.
class ScalarOnlyOperator final : public ht::la::TrsvdOperator {
 public:
  explicit ScalarOnlyOperator(const Matrix& a) : inner_(a) {}
  [[nodiscard]] std::size_t row_local_size() const override {
    return inner_.row_local_size();
  }
  [[nodiscard]] std::size_t col_size() const override {
    return inner_.col_size();
  }
  void apply(std::span<const double> v, std::span<double> u) override {
    inner_.apply(v, u);
  }
  void apply_transpose(std::span<const double> u,
                       std::span<double> v) override {
    inner_.apply_transpose(u, v);
  }

 private:
  DenseOperator inner_;
};

TEST(BlockOperatorContract, BlockApplyMatchesRepeatedScalarApply) {
  const Matrix a = random_matrix(300, 40, 21);
  DenseOperator dense(a);
  ScalarOnlyOperator scalar(a);
  const Matrix v = random_matrix(40, 7, 22);

  Matrix u_dense, u_scalar;
  dense.apply_block(v, u_dense);
  scalar.apply_block(v, u_scalar);
  ASSERT_EQ(u_dense.rows(), 300u);
  ASSERT_EQ(u_dense.cols(), 7u);
  EXPECT_TRUE(u_dense.approx_equal(u_scalar, 1e-13));

  Matrix w_dense, w_scalar;
  dense.apply_transpose_block(u_dense, w_dense);
  scalar.apply_transpose_block(u_dense, w_scalar);
  ASSERT_EQ(w_dense.rows(), 40u);
  ASSERT_EQ(w_dense.cols(), 7u);
  EXPECT_TRUE(w_dense.approx_equal(w_scalar, 1e-13));
}

TEST(BlockOperatorContract, SolversAgreeOnDefaultAndOverriddenOperators) {
  // The blocked solvers must produce the same result through the default
  // (loop-of-scalar-applies) block interface as through the gemm overrides.
  const Matrix a = matrix_with_spectrum(200, 30, {9, 7, 5, 3, 2, 1}, 23);
  DenseOperator dense(a);
  ScalarOnlyOperator scalar(a);
  const auto r1 = ht::la::randomized_trsvd(dense, 4);
  const auto r2 = ht::la::randomized_trsvd(scalar, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(r1.sigma[i], r2.sigma[i], 1e-10);
  }
  EXPECT_TRUE(r1.u.approx_equal(r2.u, 1e-8));

  const auto b1 = ht::la::block_lanczos_trsvd(dense, 4);
  const auto b2 = ht::la::block_lanczos_trsvd(scalar, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(b1.sigma[i], b2.sigma[i], 1e-10);
  }
  EXPECT_TRUE(b1.u.approx_equal(b2.u, 1e-8));
}

TEST(BlockOps, OrthonormalizeAndReorthogonalize) {
  Matrix u = random_matrix(500, 8, 31);
  Matrix scratch;
  DenseOperator op(random_matrix(500, 10, 32));  // only for row_gram default
  const std::size_t kept = ht::la::orthonormalize_rowspace_block(op, u, scratch);
  EXPECT_EQ(kept, 8u);
  EXPECT_LT(orthonormality_error(u), 1e-12);

  // Rank-deficient block: duplicated columns collapse to zero columns.
  Matrix d(60, 4);
  const Matrix base = random_matrix(60, 2, 33);
  for (std::size_t i = 0; i < 60; ++i) {
    d(i, 0) = base(i, 0);
    d(i, 1) = base(i, 1);
    d(i, 2) = base(i, 0);  // duplicate
    d(i, 3) = base(i, 0) + base(i, 1);  // dependent
  }
  const std::size_t kept_d = ht::la::orthonormalize_colspace_block(d, scratch);
  EXPECT_EQ(kept_d, 2u);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_DOUBLE_EQ(d(i, 2), 0.0);
    EXPECT_DOUBLE_EQ(d(i, 3), 0.0);
  }

  // Block reorthogonalization drives basis projections to ~0.
  Matrix basis_cols = random_matrix(80, 5, 34);
  ht::la::orthonormalize_columns(basis_cols);
  Matrix basis_rows = basis_cols.transposed();
  Matrix w = random_matrix(80, 3, 35);
  ht::la::reorthogonalize_block(w, basis_rows);
  const Matrix proj = ht::la::gemm_tn(basis_cols, w);
  for (double v : proj.flat()) EXPECT_NEAR(v, 0.0, 1e-12);
}

struct BackendCase {
  int m, n, rank;
};

class BlockedBackendsVsGram : public ::testing::TestWithParam<BackendCase> {};

TEST_P(BlockedBackendsVsGram, SingularValuesAndSubspacesMatch) {
  const auto [m, n, rank] = GetParam();
  // Decaying spectrum with an exactly captured tail: the randomized
  // sketch's l = rank + 8 columns cover the whole numerical range, so both
  // blocked backends must match the Gram reference tightly.
  std::vector<double> spectrum;
  for (int i = 0; i < std::min(n, rank + 6); ++i) {
    spectrum.push_back(10.0 * std::pow(0.6, i));
  }
  const Matrix a = matrix_with_spectrum(m, n, spectrum, 700 + m + n + rank);
  const auto ref = ht::la::gram_trsvd(a, rank);

  DenseOperator op_r(a);
  const auto rnd = ht::la::randomized_trsvd(op_r, rank);
  DenseOperator op_b(a);
  const auto blk = ht::la::block_lanczos_trsvd(op_b, rank);

  for (int i = 0; i < rank; ++i) {
    EXPECT_NEAR(rnd.sigma[i], ref.sigma[i], 1e-7 * ref.sigma[0])
        << "randomized sigma_" << i;
    EXPECT_NEAR(blk.sigma[i], ref.sigma[i], 1e-7 * ref.sigma[0])
        << "block sigma_" << i;
  }
  EXPECT_LT(orthonormality_error(rnd.u), 1e-8);
  EXPECT_LT(orthonormality_error(blk.u), 1e-8);
  EXPECT_LT(subspace_gap(rnd.u, ref.u, rank), 1e-7);
  EXPECT_LT(subspace_gap(blk.u, ref.u, rank), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedBackendsVsGram,
    ::testing::Values(BackendCase{200, 30, 5}, BackendCase{1000, 25, 8},
                      BackendCase{2000, 16, 4},    // tall and skinny
                      BackendCase{64, 64, 6},      // square
                      BackendCase{50, 100, 4}));   // wide

TEST(BlockedBackends, RankDeficientYieldsZeroSigmas) {
  // Numerical rank 2, requested rank 5: trailing singular values ~0 and
  // the leading pair exact — on both blocked backends.
  const Matrix a = matrix_with_spectrum(150, 30, {4.0, 3.0}, 41);
  DenseOperator op_r(a);
  const auto rnd = ht::la::randomized_trsvd(op_r, 5);
  DenseOperator op_b(a);
  const auto blk = ht::la::block_lanczos_trsvd(op_b, 5);
  for (const auto* r : {&rnd, &blk}) {
    EXPECT_NEAR(r->sigma[0], 4.0, 1e-7);
    EXPECT_NEAR(r->sigma[1], 3.0, 1e-7);
    for (std::size_t i = 2; i < 5; ++i) EXPECT_NEAR(r->sigma[i], 0.0, 1e-6);
  }
}

TEST(BlockedBackends, FullWidthSketchIsExactOnAnyMatrix) {
  // l = c captures the whole column space: exact on a clustered
  // (Marchenko–Pastur) spectrum, the adversarial case for Krylov methods.
  const Matrix a = random_matrix(400, 20, 43);
  const auto ref = ht::la::svd_jacobi(a);
  TrsvdOptions opt;
  opt.oversample = 20;  // rank + 20 > c = 20 -> clamped to full width
  DenseOperator op(a);
  const auto rnd = ht::la::randomized_trsvd(op, 6, opt);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(rnd.sigma[i], ref.s[i], 1e-8 * ref.s[0]);
  }
}

TEST(BlockedBackends, BlockLanczosHandlesClusteredSpectrumWithFullSteps) {
  const Matrix a = random_matrix(300, 40, 44);
  const auto ref = ht::la::svd_jacobi(a);
  TrsvdOptions opt;
  opt.max_steps = 40;  // full column space
  DenseOperator op(a);
  const auto blk = ht::la::block_lanczos_trsvd(op, 10, opt);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(blk.sigma[i], ref.s[i], 1e-7 * ref.s[0]) << "sigma_" << i;
  }
  EXPECT_LT(orthonormality_error(blk.u), 1e-6);
}

TEST(BlockedBackends, BlockSizeSweepAgrees) {
  const Matrix a = matrix_with_spectrum(
      500, 40, {10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 45);
  const auto ref = ht::la::gram_trsvd(a, 6);
  for (const std::size_t b : {1u, 2u, 3u, 6u, 11u}) {
    TrsvdOptions opt;
    opt.block_size = b;
    DenseOperator op(a);
    const auto blk = ht::la::block_lanczos_trsvd(op, 6, opt);
    for (int i = 0; i < 6; ++i) {
      EXPECT_NEAR(blk.sigma[i], ref.sigma[i], 1e-7 * ref.sigma[0])
          << "b=" << b << " sigma_" << i;
    }
    EXPECT_LT(subspace_gap(blk.u, ref.u, 6), 1e-6) << "b=" << b;
  }
}

TEST(BlockedBackends, PowerIterationsSharpenTheSketch) {
  // Slowly decaying tail beyond the sketch: more power iterations must not
  // worsen (and should improve) the captured subspace.
  std::vector<double> spectrum(30);
  for (int i = 0; i < 30; ++i) spectrum[i] = std::pow(0.92, i);
  const Matrix a = matrix_with_spectrum(800, 30, spectrum, 46);
  const auto ref = ht::la::gram_trsvd(a, 4);
  std::vector<double> gaps;
  for (const std::size_t q : {0u, 1u, 3u}) {
    TrsvdOptions opt;
    opt.oversample = 2;  // deliberately tight sketch
    opt.power_iterations = q;
    DenseOperator op(a);
    const auto rnd = ht::la::randomized_trsvd(op, 4, opt);
    gaps.push_back(subspace_gap(rnd.u, ref.u, 4));
    if (gaps.size() > 1) {
      EXPECT_LE(gaps.back(), gaps[gaps.size() - 2] + 1e-9) << "q=" << q;
    }
  }
  // sigma_4/sigma_5 = 0.92 is nearly clustered, so the trailing direction
  // converges slowly — require a clear improvement, not tight capture.
  EXPECT_LT(gaps.back(), 0.25 * gaps.front());
}

TEST(BlockedBackends, DeterministicAcrossRuns) {
  const Matrix a = random_matrix(120, 24, 47);
  for (int which = 0; which < 2; ++which) {
    DenseOperator op1(a), op2(a);
    const TrsvdResult r1 = which == 0 ? ht::la::randomized_trsvd(op1, 5)
                                      : ht::la::block_lanczos_trsvd(op1, 5);
    const TrsvdResult r2 = which == 0 ? ht::la::randomized_trsvd(op2, 5)
                                      : ht::la::block_lanczos_trsvd(op2, 5);
    ASSERT_EQ(r1.sigma.size(), r2.sigma.size());
    for (std::size_t i = 0; i < r1.sigma.size(); ++i) {
      EXPECT_DOUBLE_EQ(r1.sigma[i], r2.sigma[i]);
    }
    EXPECT_TRUE(r1.u.approx_equal(r2.u, 0.0));
  }
}

TEST(BlockedBackends, InvalidRankThrows) {
  const Matrix a = random_matrix(10, 5, 48);
  DenseOperator op(a);
  EXPECT_THROW(ht::la::randomized_trsvd(op, 0), ht::Error);
  EXPECT_THROW(ht::la::randomized_trsvd(op, 6), ht::Error);
  EXPECT_THROW(ht::la::block_lanczos_trsvd(op, 0), ht::Error);
  EXPECT_THROW(ht::la::block_lanczos_trsvd(op, 6), ht::Error);
}

TEST(BlockedBackends, OperatorAppliesAreCounted) {
  const Matrix a = matrix_with_spectrum(300, 30, {5, 4, 3, 2, 1}, 49);
  DenseOperator op_r(a);
  const auto rnd = ht::la::randomized_trsvd(op_r, 3);
  // (2q+2) block passes of width l plus nothing else.
  const std::size_t l = 3 + TrsvdOptions{}.oversample;
  EXPECT_EQ(rnd.operator_applies, (2 * TrsvdOptions{}.power_iterations + 2) * l);
  DenseOperator op_b(a);
  const auto blk = ht::la::block_lanczos_trsvd(op_b, 3);
  EXPECT_GE(blk.operator_applies, 2 * blk.steps);
}

}  // namespace
